package mmv2v

import (
	"io"

	"mmv2v/internal/obs"
)

// Statistics: set ScenarioConfig.Stats to true and every layer — world,
// medium, faults, SND/DCM/UDT and both baselines — records named counters,
// gauges and histograms into Result.Obs. Per-trial registries merge in
// trial order, so pooled statistics are bit-identical for any worker
// count. With Stats false (the default) every instrumented site is a
// nil-handle no-op. See DESIGN.md §9 for the schema.

// StatsRegistry holds one run's (or one pooled trial set's) statistics.
type StatsRegistry = obs.Registry

// StatsRow is one exported statistic in flattened form.
type StatsRow = obs.Row

// StatsRows flattens a registry into sorted rows under a scope label.
// The registry may be nil (a run with Stats off), yielding no rows.
func StatsRows(r *StatsRegistry, scope string) []StatsRow { return r.Rows(scope) }

// SortStatsRows orders rows by (scope, name) for deterministic export.
func SortStatsRows(rows []StatsRow) { obs.SortRows(rows) }

// WriteStatsJSONL emits one JSON object per row.
func WriteStatsJSONL(w io.Writer, rows []StatsRow) error { return obs.WriteJSONL(w, rows) }

// WriteStatsCSV emits the rows as CSV with a header line.
func WriteStatsCSV(w io.Writer, rows []StatsRow) error { return obs.WriteCSV(w, rows) }

// WriteStatsSummary prints a human-readable statistics table.
func WriteStatsSummary(w io.Writer, rows []StatsRow) { obs.WriteSummary(w, rows) }
