package mmv2v

import (
	"io"

	"mmv2v/internal/obs"
)

// Statistics: set ScenarioConfig.Stats to true and every layer — world,
// medium, faults, SND/DCM/UDT and both baselines — records named counters,
// gauges and histograms into Result.Obs. Per-trial registries merge in
// trial order, so pooled statistics are bit-identical for any worker
// count. With Stats false (the default) every instrumented site is a
// nil-handle no-op. See DESIGN.md §9 for the schema.

// StatsRegistry holds one run's (or one pooled trial set's) statistics.
type StatsRegistry = obs.Registry

// StatsRow is one exported statistic in flattened form.
type StatsRow = obs.Row

// StatsRows flattens a registry into sorted rows under a scope label.
// The registry may be nil (a run with Stats off), yielding no rows.
func StatsRows(r *StatsRegistry, scope string) []StatsRow { return r.Rows(scope) }

// SortStatsRows orders rows by (scope, name) for deterministic export.
func SortStatsRows(rows []StatsRow) { obs.SortRows(rows) }

// WriteStatsJSONL emits one JSON object per row.
func WriteStatsJSONL(w io.Writer, rows []StatsRow) error { return obs.WriteJSONL(w, rows) }

// WriteStatsCSV emits the rows as CSV with a header line.
func WriteStatsCSV(w io.Writer, rows []StatsRow) error { return obs.WriteCSV(w, rows) }

// WriteStatsSummary prints a human-readable statistics table.
func WriteStatsSummary(w io.Writer, rows []StatsRow) { obs.WriteSummary(w, rows) }

// Time series: set ScenarioConfig.Series to true (it implies Stats) and the
// run additionally samples the registry at every drained-window boundary,
// landing per-window deltas in Result.Series. Per-trial series merge in
// trial order exactly like registries, so exports are bit-identical for any
// worker count, and the series rides through checkpoints: a resumed run
// continues its series with no gap or duplicate window. See DESIGN.md §9.

// Series holds one run's (or one pooled trial set's) windowed samples.
type Series = obs.Series

// SeriesPoint is one sampled window: its index plus the registry deltas
// accumulated since the previous sample.
type SeriesPoint = obs.SeriesPoint

// SeriesRow is one exported sample in flattened form.
type SeriesRow = obs.SeriesRow

// SeriesRows flattens sampled points into rows under a scope label,
// window-major. Nil or empty input yields no rows.
func SeriesRows(points []SeriesPoint, scope string) []SeriesRow {
	return obs.SeriesRows(points, scope)
}

// SortSeriesRows orders rows by (scope, window, name, kind) for
// deterministic export of multi-scope collections.
func SortSeriesRows(rows []SeriesRow) { obs.SortSeriesRows(rows) }

// WriteSeriesJSONL emits one JSON object per series row.
func WriteSeriesJSONL(w io.Writer, rows []SeriesRow) error { return obs.WriteSeriesJSONL(w, rows) }

// WriteSeriesCSV emits the series rows as CSV with a header line.
func WriteSeriesCSV(w io.Writer, rows []SeriesRow) error { return obs.WriteSeriesCSV(w, rows) }
