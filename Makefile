# Development targets for the mmV2V reproduction.

GO ?= go

.PHONY: all build vet lint unitcheck persistcheck sharecheck alloccheck test test-short race bench bench-json bench-gate profile experiments examples faults city replay fuzz-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & simulation-hygiene analyzer (DESIGN.md §8). Exits non-zero
# on any contract violation; see cmd/mmv2v-lint -list for the pass catalog.
lint:
	$(GO) run ./cmd/mmv2v-lint ./...

# Physical-units pass alone (fast iteration while refactoring physics code;
# make lint runs the full catalog).
unitcheck:
	$(GO) run ./cmd/mmv2v-lint -passes unitcheck ./...

# Checkpoint-codec field-coverage pass alone (fast iteration while editing
# SaveState/LoadState codecs; DESIGN.md §8 ↔ §11).
persistcheck:
	$(GO) run ./cmd/mmv2v-lint -passes persistcheck ./...

# Shared-mutable-state pass alone (fast iteration on goroutine-facing code).
sharecheck:
	$(GO) run ./cmd/mmv2v-lint -passes sharecheck ./...

# Hot-path allocation-discipline pass alone (fast iteration while tuning the
# //mmv2v:hotpath call closures; DESIGN.md §8).
alloccheck:
	$(GO) run ./cmd/mmv2v-lint -passes alloccheck ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the parallel trial runner and experiment fan-out.
race:
	$(GO) test -race -short ./...

# One benchmark per paper table/figure plus simulator workloads.
bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot a full benchmark run as structured JSON for archiving/diffing.
bench-json:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/mmv2v-bench2json > BENCH_$$(date +%F).json

# Regression gate: re-run the benchmarks and fail on any ns/op slowdown of
# more than 15% — or any allocs/op or B/op growth of more than 25% — against
# the committed baseline snapshot. Zero-alloc baselines fail on any fresh
# allocation. CI enforces this gate; its thresholds are tunable via the
# BENCH_GATE_THRESHOLD and BENCH_ALLOC_GATE_THRESHOLD repository variables
# when a runner generation turns out noisy (see README).
bench-gate:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/mmv2v-bench2json \
		-baseline BENCH_2026-08-09.json -threshold 0.15 -alloc-threshold 0.25 > /dev/null

# CPU + heap profiles of a representative pooled run with statistics on;
# inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/mmv2v-sim -density 20 -trials 4 -stats stats.jsonl \
		-cpuprofile cpu.pprof -memprofile mem.pprof

# Regenerate the paper's full evaluation (minutes; see -trials).
experiments:
	$(GO) run ./cmd/mmv2v-experiments -fig all

# Graceful-degradation fault sweep at a small trial count (minutes).
faults:
	$(GO) run ./cmd/mmv2v-experiments -fig faults -trials 1

# City-grid scale mode: 10k-vehicle mobility + link-table drive, then the
# protocol comparison on a small city grid (minutes; see -trials).
city:
	$(GO) run ./cmd/mmv2v-sim -world grid -drive 10
	$(GO) run ./cmd/mmv2v-experiments -fig city -trials 1

# Replay the committed golden run log and diff a live re-execution against
# its recorded per-window digests; fails on the first divergence (the
# byte-identical replay gate, DESIGN.md §11).
replay:
	$(GO) run ./cmd/mmv2v-replay -verify testdata/golden.runlog

# Short fuzzing pass over the geometry, channel, spatial-index and
# persistence-codec kernels (mirrors CI).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzSegmentBlocked -fuzztime=10s ./internal/geom/
	$(GO) test -run='^$$' -fuzz=FuzzSINR -fuzztime=10s ./internal/channel/
	$(GO) test -run='^$$' -fuzz=FuzzCellCoord -fuzztime=10s ./internal/world/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=10s ./internal/persist/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeLog -fuzztime=10s ./internal/persist/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/platoon
	$(GO) run ./examples/tuning
	$(GO) run ./examples/tracing
	$(GO) run ./examples/densitysweep

clean:
	$(GO) clean ./...
