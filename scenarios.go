package mmv2v

// Prebuilt vehicle-placement generators for RunCustom: the controlled
// formations cooperative-driving studies use. Compose the returned slices
// (append them together) and hand the result to RunCustom. All positions
// are arc positions along the vehicle's own direction of travel.

// PlatoonSpec places n vehicles in one lane at a fixed headway, leader at
// startM + (n−1)·headway, all at the same speed — the cooperative-driving
// formation from the paper's introduction.
func PlatoonSpec(dir Direction, lane, n int, startM, headwayM, speedMS float64) []VehicleSpec {
	out := make([]VehicleSpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, VehicleSpec{
			Dir:       dir,
			Lane:      lane,
			PositionM: startM + float64(i)*headwayM,
			SpeedMS:   speedMS,
		})
	}
	return out
}

// ConvoySpec places a platoon with escort vehicles in the adjacent lanes,
// alternating sides, offset midway between platoon members — the formation
// that keeps diagonal LOS links available when same-lane paths are blocked.
func ConvoySpec(dir Direction, lane, n int, startM, headwayM, speedMS float64) []VehicleSpec {
	out := PlatoonSpec(dir, lane, n, startM, headwayM, speedMS)
	for i := 0; i < n-1; i++ {
		escortLane := lane + 1
		if i%2 == 1 {
			escortLane = lane - 1
		}
		if escortLane < 0 {
			escortLane = lane + 1
		}
		out = append(out, VehicleSpec{
			Dir:       dir,
			Lane:      escortLane,
			PositionM: startM + (float64(i)+0.5)*headwayM,
			SpeedMS:   speedMS,
		})
	}
	return out
}

// OncomingSpec places n vehicles in the opposite direction, spread across
// lanes round-robin at the given headway — transient high-relative-speed
// neighbors that stress discovery and beam refinement.
func OncomingSpec(dir Direction, n int, startM, headwayM, speedMS float64, lanes int) []VehicleSpec {
	opposite := Eastbound
	if dir == Eastbound {
		opposite = Westbound
	}
	out := make([]VehicleSpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, VehicleSpec{
			Dir:       opposite,
			Lane:      i % lanes,
			PositionM: startM + float64(i)*headwayM,
			SpeedMS:   speedMS,
		})
	}
	return out
}

// JamSpec places a dense stopped (or crawling) block of vehicles across all
// the given lanes — the worst case for blockage and for the OHM task size.
func JamSpec(dir Direction, lanes, perLane int, startM, gapM, speedMS float64) []VehicleSpec {
	out := make([]VehicleSpec, 0, lanes*perLane)
	for lane := 0; lane < lanes; lane++ {
		for i := 0; i < perLane; i++ {
			out = append(out, VehicleSpec{
				Dir:       dir,
				Lane:      lane,
				PositionM: startM + float64(i)*gapM,
				SpeedMS:   speedMS,
			})
		}
	}
	return out
}
