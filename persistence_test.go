// End-to-end tests of deterministic persistence (DESIGN.md §11): snapshots
// must be an exact pause button (checkpointed, resumed and crash-recovered
// runs byte-identical to uninterrupted ones, for any worker count), and
// every decode path must turn corrupted input into structured errors, never
// panics.
package mmv2v_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mmv2v"
	"mmv2v/internal/obs"
	"mmv2v/internal/persist"
	"mmv2v/internal/sim"
)

// persistScenario is the small scenario persistence tests run: several
// windows so checkpoints are actually written, short windows so the suite
// stays fast.
func persistScenario(seed uint64) mmv2v.ScenarioConfig {
	cfg := mmv2v.DefaultScenario(10, seed)
	cfg.WindowSec = 0.2
	cfg.Windows = 3
	return cfg
}

// comparable strips a Result to the deterministic fields the byte-identity
// contract covers (Obs holds pointers and Retried/Failures describe the
// execution, not the outcome).
type comparableResult struct {
	Protocol      string
	Windows       []mmv2v.WindowResult
	Stats         []mmv2v.VehicleStats
	Summary       mmv2v.Summary
	AvgNeighbors  float64
	LatencySumSec float64
	LatencyPairs  int
	Events        uint64
	Trials        int
}

func stripResult(r *mmv2v.Result) comparableResult {
	return comparableResult{
		Protocol:      r.Protocol,
		Windows:       r.Windows,
		Stats:         r.Stats,
		Summary:       r.Summary,
		AvgNeighbors:  r.AvgNeighbors,
		LatencySumSec: r.LatencySumSec,
		LatencyPairs:  r.LatencyPairs,
		Events:        r.Events,
		Trials:        r.Trials,
	}
}

func requireSameResult(t *testing.T, label string, want, got *mmv2v.Result) {
	t.Helper()
	if !reflect.DeepEqual(stripResult(want), stripResult(got)) {
		t.Fatalf("%s: results differ\nwant: %+v\ngot:  %+v", label, stripResult(want), stripResult(got))
	}
}

// TestCheckpointedRunMatchesUncheckpointed pins that writing snapshots is
// observationally free: a run with Config.Checkpoint set produces the same
// bytes as one without.
func TestCheckpointedRunMatchesUncheckpointed(t *testing.T) {
	cfg := persistScenario(21)
	cfg.Workers = 2
	clean, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = t.TempDir()
	ckpt, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "checkpointed vs clean", clean, ckpt)
	for tr := 0; tr < 2; tr++ {
		if _, err := os.Stat(mmv2v.CheckpointPath(cfg.Checkpoint, tr)); err != nil {
			t.Errorf("trial %d snapshot missing: %v", tr, err)
		}
	}
}

// TestResumeMatchesUninterrupted pins the pause-button contract: resuming a
// trial from its last snapshot reproduces the uninterrupted trial's result
// byte-for-byte, including the DES event count.
func TestResumeMatchesUninterrupted(t *testing.T) {
	for _, proto := range []struct {
		name string
		f    mmv2v.Factory
	}{
		{"mmv2v", mmv2v.MMV2V(mmv2v.DefaultParams())},
		{"rop", mmv2v.ROP(mmv2v.DefaultROPParams())},
		{"ad", mmv2v.AD(mmv2v.DefaultADParams())},
		{"oracle", mmv2v.Oracle(mmv2v.DefaultParams())},
	} {
		t.Run(proto.name, func(t *testing.T) {
			cfg := persistScenario(9)
			cfg.Checkpoint = t.TempDir()
			full, err := mmv2v.RunTrials(cfg, proto.f, 1)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := mmv2v.Resume(cfg, proto.f, mmv2v.CheckpointPath(cfg.Checkpoint, 0))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "resumed vs uninterrupted", full, resumed)
		})
	}
}

// seriesExport renders a result's pooled series canonically, for byte
// comparison.
func seriesExport(t *testing.T, res *mmv2v.Result) []byte {
	t.Helper()
	if res.Series == nil {
		t.Fatal("series run returned nil Series")
	}
	var buf bytes.Buffer
	if err := obs.WriteSeriesJSONL(&buf, obs.SeriesRows(res.Series.Points(), "run")); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeContinuesSeries pins the series half of the pause-button
// contract: a resumed trial's windowed series is byte-identical to the
// uninterrupted one — every window present exactly once, no gap where the
// interruption fell and no re-sampled duplicate.
func TestResumeContinuesSeries(t *testing.T) {
	cfg := persistScenario(9)
	cfg.Series = true
	cfg.Checkpoint = t.TempDir()
	full, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 1)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := mmv2v.Resume(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), mmv2v.CheckpointPath(cfg.Checkpoint, 0))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "resumed vs uninterrupted", full, resumed)
	if got, want := seriesExport(t, resumed), seriesExport(t, full); !bytes.Equal(got, want) {
		t.Fatalf("resumed series diverged:\nresumed:\n%s\nfull:\n%s", got, want)
	}
	wins := make([]int, 0, cfg.Windows)
	for _, pt := range resumed.Series.Points() {
		wins = append(wins, pt.Window)
	}
	want := make([]int, cfg.Windows)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(wins, want) {
		t.Fatalf("resumed series windows = %v, want %v (no gap, no duplicate)", wins, want)
	}
}

// TestResumeRejectsScenarioMismatch pins the fingerprint guard: a snapshot
// must not resume under a different scenario.
func TestResumeRejectsScenarioMismatch(t *testing.T) {
	cfg := persistScenario(4)
	cfg.Checkpoint = t.TempDir()
	if _, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 1); err != nil {
		t.Fatal(err)
	}
	path := mmv2v.CheckpointPath(cfg.Checkpoint, 0)
	other := cfg
	other.DemandBits *= 2
	if _, err := mmv2v.Resume(other, mmv2v.MMV2V(mmv2v.DefaultParams()), path); err == nil {
		t.Error("resume under a different scenario succeeded")
	} else if !strings.Contains(err.Error(), "different scenario") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := mmv2v.Resume(cfg, mmv2v.ROP(mmv2v.DefaultROPParams()), path); err == nil {
		t.Error("resume under a different protocol succeeded")
	}
}

// crashSet makes the injected crash fire exactly once per trial seed, so
// the retried (resumed) attempt survives.
type crashSet struct {
	mu   sync.Mutex
	done map[uint64]bool
}

func (s *crashSet) first(seed uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done[seed] {
		return false
	}
	s.done[seed] = true
	return true
}

// crashingProto delegates to a real protocol but panics at a seed-hashed
// frame in window >= 1 on the first attempt per trial — after a checkpoint
// exists, before the run completes.
type crashingProto struct {
	inner      sim.Stateful
	seed       uint64
	crashFrame int
	set        *crashSet
}

func (p *crashingProto) Name() string { return p.inner.Name() }

func (p *crashingProto) RunFrame(frame int) {
	if frame == p.crashFrame && p.set.first(p.seed) {
		panic(fmt.Sprintf("torture: injected crash at frame %d (seed %#x)", frame, p.seed))
	}
	p.inner.RunFrame(frame)
}

func (p *crashingProto) SaveState(e *persist.Encoder)       { p.inner.SaveState(e) }
func (p *crashingProto) LoadState(d *persist.Decoder) error { return p.inner.LoadState(d) }

func crashingFactory(f mmv2v.Factory, set *crashSet, framesPerWindow, windows int) mmv2v.Factory {
	return func(env *sim.Env) sim.Protocol {
		inner := f(env).(sim.Stateful)
		span := framesPerWindow * (windows - 1)
		return &crashingProto{
			inner:      inner,
			seed:       env.Seed,
			crashFrame: framesPerWindow + int(env.Seed%uint64(span)),
			set:        set,
		}
	}
}

// TestCrashResumeTortureByteIdentical is the torture smoke: every trial
// panics mid-run at a seed-hashed frame, RunTrials retries from the trial's
// last checkpoint, and the pooled tables must still be byte-identical to a
// clean run — across worker counts.
func TestCrashResumeTortureByteIdentical(t *testing.T) {
	const trials = 3
	base := persistScenario(77)
	base.Series = true // crash-resume must also splice the series seamlessly
	framesPerWindow := int(base.WindowSec / base.Timing.Frame.Seconds())
	clean, err := mmv2v.RunTrials(base, mmv2v.MMV2V(mmv2v.DefaultParams()), trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := base
			cfg.Workers = workers
			cfg.Retry = 1
			cfg.Checkpoint = t.TempDir()
			factory := crashingFactory(mmv2v.MMV2V(mmv2v.DefaultParams()),
				&crashSet{done: map[uint64]bool{}}, framesPerWindow, cfg.Windows)
			res, err := mmv2v.RunTrials(cfg, factory, trials)
			if err != nil {
				t.Fatal(err)
			}
			if res.Retried != trials {
				t.Errorf("retried = %d, want %d (every trial crashes once)", res.Retried, trials)
			}
			if len(res.Failures) != 0 {
				t.Errorf("failures = %v", res.Failures)
			}
			requireSameResult(t, "crash-resumed vs clean", clean, res)
			if got, want := seriesExport(t, res), seriesExport(t, clean); !bytes.Equal(got, want) {
				t.Fatal("crash-resumed series diverged from the clean run")
			}
		})
	}
}

// TestTrialErrorCarriesCheckpoint pins the repro upgrade: a trial that dies
// with checkpointing on reports its last snapshot and a -resume repro.
func TestTrialErrorCarriesCheckpoint(t *testing.T) {
	cfg := persistScenario(5)
	cfg.Checkpoint = t.TempDir()
	framesPerWindow := int(cfg.WindowSec / cfg.Timing.Frame.Seconds())
	// A crash set that never reports "done" keeps the trial dying through
	// its whole retry budget.
	factory := func(env *sim.Env) sim.Protocol {
		inner := mmv2v.MMV2V(mmv2v.DefaultParams())(env).(sim.Stateful)
		return &crashingProto{inner: inner, seed: env.Seed,
			crashFrame: framesPerWindow + 1, set: &crashSet{done: nil}}
	}
	res, err := mmv2v.RunTrials(cfg, factory, 1)
	if res != nil || err == nil {
		t.Fatalf("run with a always-crashing trial returned %v, %v", res, err)
	}
	var te *mmv2v.TrialError
	if !asTrialError(err, &te) {
		t.Fatalf("error %T does not unwrap to a TrialError: %v", err, err)
	}
	want := mmv2v.CheckpointPath(cfg.Checkpoint, 0)
	if te.Checkpoint != want {
		t.Errorf("TrialError.Checkpoint = %q, want %q", te.Checkpoint, want)
	}
	if !strings.Contains(te.Repro(), "-resume "+want) {
		t.Errorf("repro %q lacks -resume %s", te.Repro(), want)
	}
}

// asTrialError unwraps err to a TrialError (errors.As through the join).
func asTrialError(err error, te **mmv2v.TrialError) bool {
	type unwrapper interface{ Unwrap() []error }
	if t, ok := err.(*mmv2v.TrialError); ok {
		*te = t
		return true
	}
	if u, ok := err.(unwrapper); ok {
		for _, e := range u.Unwrap() {
			if asTrialError(e, te) {
				return true
			}
		}
	}
	return false
}

// TestResumeCorruptedSnapshotNeverPanics feeds systematically damaged
// snapshot files — truncations, raw bit flips, and bit flips with the frame
// CRC re-stamped so the damage reaches the state decoders — through Resume.
// Every variant must produce a structured error or a clean result, never a
// panic. The corpus is deterministic, so a pass here is stable.
func TestResumeCorruptedSnapshotNeverPanics(t *testing.T) {
	cfg := mmv2v.DefaultScenario(5, 13) // sparse road: small snapshot, fast re-runs
	cfg.WindowSec = 0.2
	cfg.Windows = 2
	cfg.Checkpoint = t.TempDir()
	if _, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 1); err != nil {
		t.Fatal(err)
	}
	path := mmv2v.CheckpointPath(cfg.Checkpoint, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	try := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%s: resume panicked: %v", label, p)
			}
		}()
		mut := filepath.Join(dir, "mut.ckpt")
		if err := os.WriteFile(mut, b, 0o600); err != nil {
			t.Fatal(err)
		}
		// Either outcome is fine; the contract under corruption is only
		// "structured error or success, never a panic".
		_, _ = mmv2v.Resume(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), mut)
	}

	step := len(data)/97 + 1
	if testing.Short() {
		step = len(data)/29 + 1
	}
	for n := 0; n < len(data); n += step {
		try(fmt.Sprintf("truncate to %d", n), data[:n])
	}
	for off := 0; off < len(data); off += step {
		b := append([]byte(nil), data...)
		b[off] ^= 1 << (off % 8)
		try(fmt.Sprintf("flip byte %d", off), b)
	}
	// Re-stamp the payload CRC (frame layout: 8 magic, 4 version, 8 length,
	// 4 CRC, payload) so flips get past the container and into the decoders.
	crcTable := crc32.MakeTable(crc32.Castagnoli)
	for off := 24; off < len(data); off += step {
		b := append([]byte(nil), data...)
		b[off] ^= 1 << (off % 8)
		binary.LittleEndian.PutUint32(b[20:24], crc32.Checksum(b[24:], crcTable))
		try(fmt.Sprintf("flip byte %d with CRC re-stamped", off), b)
	}
}

// TestRunLogRoundTrip pins the replay contract end to end: a logged run
// re-renders byte-identically, verifies against live re-execution at
// several worker counts, detects tampering, and survives torn tails.
func TestRunLogRoundTrip(t *testing.T) {
	cfg := persistScenario(31)
	h := mmv2v.RunLogHeader{
		Protocol: "mmv2v", K: 3, M: 40, C: 7,
		DensityVPL: 10, Seed: 31, Trials: 2,
		WindowSec: cfg.WindowSec, Windows: cfg.Windows, DemandBits: cfg.DemandBits,
	}
	path := filepath.Join(t.TempDir(), "run.log")
	live, err := mmv2v.RunTrialsLogged(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 2, h, path)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := mmv2v.ReadRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "replayed vs live", live, rl.Result())
	for _, workers := range []int{1, 4} {
		div, err := rl.Verify(workers)
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("verify (workers=%d) diverged: %s", workers, div)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A torn tail (the end record loses bytes) still replays the complete
	// records before it.
	torn := filepath.Join(t.TempDir(), "torn.log")
	if err := os.WriteFile(torn, data[:len(data)-5], 0o600); err != nil {
		t.Fatal(err)
	}
	trl, err := mmv2v.ReadRunLog(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !trl.Truncated {
		t.Error("torn log not flagged truncated")
	}
	requireSameResult(t, "torn-tail replay", live, trl.Result())

	// An interior bit flip is real corruption: a structured error, never a
	// panic, and never a silently different table.
	bad := filepath.Join(t.TempDir(), "bad.log")
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	if err := os.WriteFile(bad, flipped, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := mmv2v.ReadRunLog(bad); err == nil {
		t.Error("bit-flipped log decoded cleanly")
	}

	// A forged window record (contents and digest rewritten consistently,
	// record CRC re-stamped) parses — and -verify catches it as the first
	// divergence against live re-execution.
	forged := forgeWindowRecord(t, data)
	forgedPath := filepath.Join(t.TempDir(), "forged.log")
	if err := os.WriteFile(forgedPath, forged, 0o600); err != nil {
		t.Fatal(err)
	}
	frl, err := mmv2v.ReadRunLog(forgedPath)
	if err != nil {
		t.Fatalf("forged log should parse (tampering is semantically valid): %v", err)
	}
	div, err := frl.Verify(0)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("verify missed the forged window")
	}
	if div.Trial != 0 || div.Window != 0 {
		t.Errorf("first divergence at (%d, %d), want (0, 0)", div.Trial, div.Window)
	}
}

// forgeWindowRecord rewrites the first window record of a run log: it
// perturbs the window's AvgNeighbors, recomputes the digest so the log
// stays self-consistent, and re-stamps the record CRC.
func forgeWindowRecord(t *testing.T, data []byte) []byte {
	t.Helper()
	recs, truncated, err := persist.ReadLog(data)
	if err != nil || truncated {
		t.Fatalf("ReadLog: %v (truncated=%v)", err, truncated)
	}
	log := persist.NewLog()
	forgedOne := false
	for _, rec := range recs {
		payload := append([]byte(nil), rec.Payload...)
		if rec.Type == 2 && !forgedOne { // first window record
			d := persist.NewDecoder(payload)
			tr := d.Int()
			_ = d.U64()
			w := sim.DecodeWindowResult(d)
			if err := d.Err(); err != nil {
				t.Fatal(err)
			}
			w.AvgNeighbors++
			var e persist.Encoder
			e.Int(tr)
			e.U64(sim.WindowDigest(tr, w))
			sim.EncodeWindowResult(&e, w)
			payload = e.Bytes()
			forgedOne = true
		}
		log = persist.AppendRecord(log, rec.Type, payload)
	}
	if !forgedOne {
		t.Fatal("no window record found to forge")
	}
	return log
}

// TestGoldenRunLogReplays pins the committed golden run log: the current
// build must re-render it and re-execute it digest-identically — the CI
// replay gate against silent determinism regressions. Regenerate with
//
//	go run ./cmd/mmv2v-sim -density 10 -seed 7 -trials 2 -seconds 0.2 \
//	    -windows 2 -runlog testdata/golden.runlog
//
// only when a change intentionally alters simulation results.
func TestGoldenRunLogReplays(t *testing.T) {
	rl, err := mmv2v.ReadRunLog(filepath.Join("testdata", "golden.runlog"))
	if err != nil {
		t.Fatal(err)
	}
	if rl.Truncated {
		t.Error("golden log has a torn tail")
	}
	res := rl.Result()
	if res.Trials != rl.Header.Trials {
		t.Errorf("golden log replays %d trials, header declares %d", res.Trials, rl.Header.Trials)
	}
	div, err := rl.Verify(0)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("this build diverges from the golden run log: %s", div)
	}
}

// TestRunLogHeaderMustReconstructScenario pins that RunTrialsLogged refuses
// to write a log that could not replay the run it records.
func TestRunLogHeaderMustReconstructScenario(t *testing.T) {
	cfg := persistScenario(31)
	h := mmv2v.RunLogHeader{
		Protocol: "mmv2v", K: 3, M: 40, C: 7,
		DensityVPL: 12, // does not match cfg's density 10
		Seed:       31, Trials: 1,
		WindowSec: cfg.WindowSec, Windows: cfg.Windows, DemandBits: cfg.DemandBits,
	}
	path := filepath.Join(t.TempDir(), "run.log")
	if _, err := mmv2v.RunTrialsLogged(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 1, h, path); err == nil {
		t.Fatal("mismatched header accepted")
	} else if !strings.Contains(err.Error(), "reconstruct") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("log file written despite header mismatch")
	}
}
