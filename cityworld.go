package mmv2v

import (
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// GridWorld is a city-grid mobility + link-table drive without a radio
// protocol: a road-graph fleet and its world, advanced one 5 ms tick at a
// time. It exists for scale studies — CLIs time Tick around this
// deterministic core to report wall-clock per refresh at 10k+ vehicles —
// and for smoke tests that only need the geometry/link layers.
type GridWorld struct {
	network *traffic.Network
	world   *world.World
	dt      float64
}

// NewGridWorld builds the grid fleet and its world. The first link table is
// computed before returning, so the world is immediately queryable.
func NewGridWorld(grid GridConfig, seed uint64) (*GridWorld, error) {
	nw, err := traffic.NewNetwork(grid.Network(), xrand.New(seed))
	if err != nil {
		return nil, err
	}
	w, err := world.New(world.DefaultConfig(), nw)
	if err != nil {
		return nil, err
	}
	return &GridWorld{
		network: nw,
		world:   w,
		dt:      phy.DefaultTiming().PositionUpdate.Seconds(),
	}, nil
}

// Tick advances traffic by one 5 ms position update and refreshes the link
// table — the same per-tick work a protocol run performs below the radio.
func (g *GridWorld) Tick() {
	g.network.Step(g.dt)
	g.world.Refresh()
}

// StepTraffic advances traffic by one 5 ms position update without
// refreshing the link table. Scale drives step mobility at full fidelity
// but may refresh the (much more expensive) link table at a coarser
// cadence: with no radio protocol on top there is no beam-coherence
// constraint tying the table to the 5 ms clock.
func (g *GridWorld) StepTraffic() { g.network.Step(g.dt) }

// RefreshLinks recomputes the link table for the current vehicle poses.
func (g *GridWorld) RefreshLinks() { g.world.Refresh() }

// TickSeconds returns the simulated seconds one Tick advances (5 ms).
func (g *GridWorld) TickSeconds() float64 { return g.dt }

// NumVehicles returns the fleet size.
func (g *GridWorld) NumVehicles() int { return g.world.NumVehicles() }

// TotalLinks returns the directed link-table entry count of the current
// snapshot.
func (g *GridWorld) TotalLinks() int { return g.world.TotalLinks() }

// AvgNeighbors returns the current mean LOS neighbor count.
func (g *GridWorld) AvgNeighbors() float64 { return g.world.AvgNeighborCount() }
