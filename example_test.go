package mmv2v_test

import (
	"fmt"

	"mmv2v"
)

// ExampleDiscoveryRatio reproduces the Theorem 2 numbers the paper quotes:
// 87.5 % of neighbors identified per frame at K = 3, and the K needed for
// the "99.8 % after 3 frames" claim.
func ExampleDiscoveryRatio() {
	fmt.Printf("K=3: %.3f\n", mmv2v.DiscoveryRatio(0.5, 3))
	fmt.Printf("K=9: %.4f\n", mmv2v.DiscoveryRatio(0.5, 9)) // ≈ 3 frames × 3 rounds
	fmt.Printf("rounds for 0.875: %d\n", mmv2v.RoundsForRatio(0.875))
	// Output:
	// K=3: 0.875
	// K=9: 0.9980
	// rounds for 0.875: 3
}

// ExampleBudget shows the paper's frame airtime split at the chosen
// operating point (K=3 discovery rounds, M=40 negotiation slots).
func ExampleBudget() {
	b, err := mmv2v.Budget(3, 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SND %v, DCM %v, UDT fraction %.1f%%\n", b.SND, b.DCM, b.UDTFraction*100)
	// Output:
	// SND 2.304ms, DCM 1.2ms, UDT fraction 81.5%
}

// ExampleLink evaluates the 60 GHz link budget at the paper's 15 vpl
// headway (≈66 m) with refined 3° beams: comfortably MCS12.
func ExampleLink() {
	lb, err := mmv2v.Link(66, mmv2v.DegToRad(3), mmv2v.DegToRad(3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s at %.1f dB SNR\n", lb.MCS, lb.SNRdB)
	// Output:
	// MCS12 at 23.9 dB SNR
}

// ExampleRun runs the paper's standard scenario under mmV2V. (Not verified
// output: the metrics depend on the full simulation.)
func ExampleRun() {
	cfg := mmv2v.DefaultScenario(15, 42) // 15 vehicles/lane/km, seed 42
	res, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("OCR=%.3f ATP=%.3f DTP=%.3f", res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP)
}

// ExampleRunCustom builds a hand-placed three-vehicle scenario.
func ExampleRunCustom() {
	cfg := mmv2v.DefaultScenario(0, 7)
	cfg.WarmupSec = 0
	specs := []mmv2v.VehicleSpec{
		{Dir: mmv2v.Eastbound, Lane: 0, PositionM: 0, SpeedMS: 15},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 20, SpeedMS: 15},
		{Dir: mmv2v.Eastbound, Lane: 2, PositionM: 40, SpeedMS: 15},
	}
	res, err := mmv2v.RunCustom(cfg, specs, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d vehicles measured", res.Summary.Vehicles)
}
