package mmv2v

import (
	"mmv2v/internal/obs"
	"mmv2v/internal/obs/live"
	"mmv2v/internal/sim"
)

// Live introspection: a LiveServer is a stdlib net/http surface over a
// running simulation — /healthz, /metrics (current pooled statistics rows
// as JSON Lines), /series (windowed samples so far), /progress (counts,
// fraction, ETA) and net/http/pprof under /debug/pprof/. The server only
// ever reads immutable published snapshots; the simulation publishes by
// atomic pointer swap, so serving traffic cannot perturb a deterministic
// run. Wire one in with ScenarioConfig.Monitor, or push snapshots by hand
// with Publish. See DESIGN.md §9.

// LiveServer serves live run telemetry over HTTP.
type LiveServer = live.Server

// NewLiveServer returns a server with an empty published snapshot. Start it
// with Start(addr) or mount Handler() yourself.
func NewLiveServer() *LiveServer { return live.NewServer() }

// ProgressState is the structured completion state served at /progress.
type ProgressState = obs.ProgressState

// Monitor observes a run's progress from inside the trial loop: the
// simulator invokes it synchronously after every drained window and every
// finished trial with freshly copied snapshots. A LiveServer is a Monitor.
// Monitors are execution-only observers — they are excluded from the
// scenario fingerprint and never feed back into the simulation — but
// callbacks arrive on worker goroutines, so implementations must be safe
// for concurrent use.
type Monitor = sim.Monitor
