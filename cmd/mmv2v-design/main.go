// Command mmv2v-design is a closed-form design calculator for the mmV2V
// protocol: frame airtime budgets, link budgets per distance, operating
// ranges per beam pair, discovery-round requirements and task feasibility —
// the arithmetic behind the paper's parameter choices, without running a
// simulation.
//
// Usage:
//
//	mmv2v-design                 # paper operating point (K=3, M=40)
//	mmv2v-design -K 2 -M 20 -demand 100e6
package main

import (
	"flag"
	"fmt"
	"os"

	"mmv2v/internal/analytic"
	"mmv2v/internal/channel"
	"mmv2v/internal/phy"
	"mmv2v/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-design:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		k      = flag.Int("K", 3, "discovery rounds")
		m      = flag.Int("M", 40, "negotiation slots")
		demand = flag.Float64("demand", 200e6, "task demand per neighbor (bits)")
		target = flag.Float64("discovery", 0.875, "target per-frame discovery ratio")
	)
	flag.Parse()

	timing := phy.DefaultTiming()
	cb := phy.DefaultCodebook()
	params := channel.DefaultParams()

	b, err := analytic.Budget(timing, cb, *k, *m)
	if err != nil {
		return err
	}
	fmt.Printf("frame budget (K=%d, M=%d, S=%d sectors, s=%d narrow beams):\n",
		*k, *m, cb.Sectors.Count, cb.RefinementBeams())
	fmt.Printf("  SND        %8v\n", b.SND)
	fmt.Printf("  DCM        %8v\n", b.DCM)
	fmt.Printf("  refinement %8v\n", b.Refinement)
	fmt.Printf("  UDT        %8v  (%.1f%% of the %v frame)\n",
		b.UDT, b.UDTFraction*100, timing.Frame)

	fmt.Printf("\ndiscovery (Theorem 2, p = %.1f):\n", analytic.OptimalRoleProbability())
	for _, kk := range []int{1, 2, 3, 4, 5} {
		fmt.Printf("  K=%d  expected ratio %.4f\n", kk, analytic.DiscoveryRatio(0.5, kk))
	}
	fmt.Printf("  rounds for ≥%.3f: K=%d\n", *target, analytic.RoundsForRatio(*target))

	fmt.Println("\nlink budget (boresight, no blockers):")
	fmt.Printf("  %-6s %-22s %-22s\n", "dist", "discovery (30°/12°)", "data (3°/3°)")
	for _, d := range []units.Meter{10, 25, 50, 66, 100, 150} {
		disc, err := analytic.Link(params, d, cb.TxWidth, cb.RxWidth)
		if err != nil {
			return err
		}
		data, err := analytic.Link(params, d, cb.NarrowWidth, cb.NarrowWidth)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4.0fm  %5.1f dB  %-11s  %5.1f dB  %s (%.2f Gb/s)\n",
			d, disc.SNRdB, mcsName(disc.MCS), data.SNRdB, mcsName(data.MCS), data.RateBps/1e9)
	}

	fmt.Println("\noperating ranges:")
	rows := []struct {
		label    string
		tx, rx   units.Radian
		minSNRdB units.DB
	}{
		{"control decode, discovery beams", cb.TxWidth, cb.RxWidth, phy.MCS(0).MinSNRdB()},
		{"16 dB admission, discovery beams", cb.TxWidth, cb.RxWidth, 16},
		{"MCS12 (4.62 Gb/s), data beams", cb.NarrowWidth, cb.NarrowWidth, phy.MCS(12).MinSNRdB()},
		{"MCS1 (385 Mb/s), data beams", cb.NarrowWidth, cb.NarrowWidth, phy.MCS(1).MinSNRdB()},
	}
	for _, r := range rows {
		rng, err := analytic.RangeForSNR(params, r.tx, r.rx, r.minSNRdB)
		if err != nil {
			return err
		}
		fmt.Printf("  %-34s %6.1f m\n", r.label, rng)
	}

	fmt.Printf("\ntask feasibility (%.0f Mb per neighbor):\n", *demand/1e6)
	for _, mcs := range []phy.MCS{12, 9, 6, 3} {
		frames := analytic.FramesToComplete(b, mcs.Rate(), *demand)
		fmt.Printf("  at %s (%.2f Gb/s): %d dedicated frame(s), %.0f ms\n",
			mcs, mcs.Rate()/1e9, frames, float64(frames)*timing.Frame.Seconds()*1000)
	}
	fmt.Printf("\nrandom-matching yield for reference (1 round, degree d): 1/d\n")
	for _, d := range []float64{5, 8, 12} {
		fmt.Printf("  d=%-3.0f %.3f of vehicles matched per frame\n", d, analytic.RandomMatchYield(d))
	}
	return nil
}

func mcsName(m phy.MCS) string {
	if m < 0 {
		return "no link"
	}
	return m.String()
}
