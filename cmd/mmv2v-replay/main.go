// Command mmv2v-replay re-renders a recorded run from its run log — without
// re-simulating — and, under -verify, re-executes the run live and diffs it
// against the recorded per-window digests (DESIGN.md §11).
//
// Usage:
//
//	mmv2v-sim -density 15 -trials 3 -runlog run.log   # record
//	mmv2v-replay run.log                              # re-render the tables
//	mmv2v-replay -verify run.log                      # replay + diff digests
//
// Replay reconstructs the per-trial results from the log and pools them
// through the same trial merge the live run used, so the rendered table is
// byte-identical to the original run's. -verify re-runs every trial from
// the recipe stored in the log header (any -workers count — results are
// worker-count invariant) and reports the first divergent (trial, window),
// exiting non-zero; a divergence means the build no longer reproduces the
// recorded simulation byte-for-byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mmv2v"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		verify  = flag.Bool("verify", false, "re-execute the run and diff live per-window digests against the recorded ones")
		workers = flag.Int("workers", 0, "worker pool size for -verify re-execution (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit the replayed summary as JSON instead of a table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: mmv2v-replay [-verify] [-workers N] [-json] <run.log>")
	}
	path := flag.Arg(0)
	rl, err := mmv2v.ReadRunLog(path)
	if err != nil {
		return err
	}
	if rl.Truncated {
		fmt.Fprintln(os.Stderr, "mmv2v-replay: log has a torn tail (crash mid-append); replaying the records before it")
	}
	h := rl.Header
	res := rl.Result()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Protocol     string  `json:"protocol"`
			DensityVPL   float64 `json:"density_vpl"`
			OCR          float64 `json:"ocr"`
			ATP          float64 `json:"atp"`
			DTP          float64 `json:"dtp"`
			AvgNeighbors float64 `json:"avg_neighbors"`
			Events       uint64  `json:"des_events"`
			Trials       int     `json:"trials"`
		}{res.Protocol, h.DensityVPL, res.Summary.MeanOCR, res.Summary.MeanATP,
			res.Summary.MeanDTP, res.AvgNeighbors, res.Events, res.Trials}); err != nil {
			return err
		}
	} else {
		if h.Grid {
			fmt.Printf("replay of %s: %dx%d grid, %.0f m blocks, %d vehicles, seed %d, %d trial(s) × %d window(s) × %.2f s, demand %.0f Mb/neighbor\n",
				path, h.GridRows, h.GridCols, h.GridBlockM, h.GridVehicles, h.Seed, h.Trials, h.Windows, h.WindowSec, h.DemandBits/1e6)
		} else {
			fmt.Printf("replay of %s: %.0f vpl, seed %d, %d trial(s) × %d window(s) × %.2f s, demand %.0f Mb/neighbor\n",
				path, h.DensityVPL, h.Seed, h.Trials, h.Windows, h.WindowSec, h.DemandBits/1e6)
		}
		fmt.Printf("%-10s %-8s %-8s %-8s %-8s %-10s\n", "protocol", "OCR", "ATP", "DTP", "avg |N|", "DES events")
		fmt.Printf("%-10s %-8.3f %-8.3f %-8.3f %-8.1f %-10d\n",
			res.Protocol, res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP,
			res.AvgNeighbors, res.Events)
	}
	if !*verify {
		return nil
	}
	div, err := rl.Verify(*workers)
	if err != nil {
		return err
	}
	if div != nil {
		return fmt.Errorf("%s: %s", path, div)
	}
	fmt.Printf("verified: %d trial(s) × %d window(s) re-executed; every digest matches the log\n", h.Trials, h.Windows)
	return nil
}
