// Command mmv2v-sim runs one OHM scenario and prints the paper's metrics.
//
// Usage:
//
//	mmv2v-sim -density 15 -protocol mmv2v -trials 3 -seconds 1
//	mmv2v-sim -density 20 -faults 0.5            # stress at half intensity
//	mmv2v-sim -world grid -grid-vehicles 240     # protocols on a city grid
//	mmv2v-sim -world grid -drive 10              # 10k-vehicle scale drive
//
// Protocols: mmv2v (default), rop, ad, oracle, all.
//
// -world grid replaces the paper's straight road with a Manhattan road
// network (-rows × -cols intersections, -block m blocks). -drive N skips
// the radio protocol entirely and drives 5 ms traffic steps plus link-table
// refreshes every -refresh-ms simulated milliseconds for N simulated
// seconds, reporting link-table size and wall-clock per refresh — the scale
// mode for city-sized fleets (default 10000 vehicles).
//
// -faults scales the standard fault profile (control loss, blockage bursts,
// radio churn, slot jitter; see internal/faults) by the given intensity;
// 0 (the default) is a clean channel. Trials are crash-isolated: a trial
// that panics is retried -retry times and then reported on stderr as a
// TrialError with a repro command, while the remaining trials still pool.
//
// -checkpoint <dir> makes every trial write a versioned, checksummed
// snapshot of its full state after each completed measurement window; under
// -retry, failed trials resume from their last snapshot instead of tick
// zero, and -resume <file> re-runs one interrupted trial from its snapshot
// (the other flags must reproduce the snapshot's scenario). -runlog <file>
// records a replayable run log of the whole pooled run — re-render or
// verify it with mmv2v-replay. See DESIGN.md §11.
//
// -stats <path> records per-layer statistics (discovery sweeps, control
// frames, SINR histograms, airtime per MCS, ...) and writes them to the
// path as JSON Lines — or CSV when the path ends in .csv — plus a summary
// table; see DESIGN.md §9 for the schema. -cpuprofile/-memprofile write
// pprof profiles of the run.
//
// -series <path> additionally samples the statistics registry at every
// window boundary and writes the per-window deltas as JSON Lines (CSV when
// the path ends in .csv), one scope per protocol. -http <addr> serves live
// run telemetry — /healthz, /metrics, /series, /progress and
// /debug/pprof/ — while the run executes; it implies -series sampling
// (which, like -stats, is part of the checkpoint fingerprint) but changes
// nothing on stdout. Under -drive the HTTP surface reports per-refresh
// link-table gauges instead. See DESIGN.md §9 for the contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mmv2v"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-sim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		density   = flag.Float64("density", 15, "traffic density in vehicles/lane/km (paper: 15-30)")
		protocol  = flag.String("protocol", "mmv2v", "protocol: mmv2v, rop, ad, oracle, all")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		trials    = flag.Int("trials", 1, "independent trials to pool")
		seconds   = flag.Float64("seconds", 1, "measurement window length (s)")
		windows   = flag.Int("windows", 1, "number of consecutive windows")
		demand    = flag.Float64("demand", 200e6, "HRIE task demand per neighbor per window (bits)")
		k         = flag.Int("K", 3, "mmV2V discovery rounds")
		m         = flag.Int("M", 40, "mmV2V negotiation slots")
		c         = flag.Int("C", 7, "mmV2V CNS hash constant")
		jsonOut   = flag.Bool("json", false, "emit per-protocol summaries as JSON instead of a table")
		traceOut  = flag.String("trace", "", "write protocol events as JSON Lines to this file")
		intensity = flag.Float64("faults", 0, "fault-injection intensity: scales the standard stress profile (0 = clean channel, 1 = full profile)")
		retry     = flag.Int("retry", 0, "re-run a failed trial up to this many times before recording it as lost")
		statsOut  = flag.String("stats", "", "record per-layer statistics and write them to this file (CSV if the path ends in .csv, JSON Lines otherwise)")
		cpuOut    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memOut    = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		ckptDir   = flag.String("checkpoint", "", "directory for per-trial snapshots after every completed window; with -retry, failed trials resume from their last snapshot (per-protocol subdirectories under -protocol all)")
		resumeCkp = flag.String("resume", "", "resume one trial from this snapshot file and report it alone (requires a single -protocol; flags must reproduce the snapshot's scenario)")
		runlogOut = flag.String("runlog", "", "write a replayable run log to this file (requires a single -protocol; verify or re-render it with mmv2v-replay)")
		worldKind = flag.String("world", "road", "mobility substrate: road (straight 1 km road) or grid (Manhattan road network)")
		gridRows  = flag.Int("rows", 0, "grid world: intersection rows (0 = 3 for protocol runs, 12 for -drive)")
		gridCols  = flag.Int("cols", 0, "grid world: intersection columns (0 = 3 for protocol runs, 12 for -drive)")
		gridBlock = flag.Float64("block", 0, "grid world: block edge length in m (0 = 200 for protocol runs, 500 for -drive)")
		gridVeh   = flag.Int("grid-vehicles", 0, "grid world: vehicle count (0 = 240 for protocol runs, 10000 for -drive)")
		driveSec  = flag.Float64("drive", 0, "drive traffic + link refreshes for this many simulated seconds without a protocol (grid world scale mode)")
		refreshMs = flag.Float64("refresh-ms", 100, "scale drive: link-table refresh period in simulated ms (traffic always steps at 5 ms)")
		seriesOut = flag.String("series", "", "sample per-layer statistics at every window boundary and write the per-window deltas to this file (CSV if the path ends in .csv, JSON Lines otherwise)")
		httpAddr  = flag.String("http", "", "serve live run telemetry (/healthz /metrics /series /progress /debug/pprof/) on this address; implies -series sampling")
	)
	flag.Parse()
	if *worldKind != "road" && *worldKind != "grid" {
		return fmt.Errorf("unknown world %q (want road or grid)", *worldKind)
	}
	var srv *mmv2v.LiveServer
	if *httpAddr != "" {
		srv = mmv2v.NewLiveServer()
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			return err
		}
		// The snapshot endpoints stay serveable until the process exits; a
		// close error here can only race process teardown, so drop it.
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "mmv2v-sim: live introspection on http://%s\n", addr)
	}
	if *driveSec > 0 {
		if *worldKind != "grid" {
			return fmt.Errorf("-drive requires -world grid")
		}
		if *seriesOut != "" {
			return fmt.Errorf("-drive runs no protocol and samples no registry; drop -series")
		}
		return driveGrid(gridConfig(*gridRows, *gridCols, *gridBlock, *gridVeh, driveGridDefaults), *seed, *driveSec, *refreshMs, srv)
	}

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return err
		}
		// The profile is flushed by StopCPUProfile; a close error here can
		// only lose an artifact the run already reported on, so drop it
		// explicitly.
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := mmv2v.DefaultScenario(*density, *seed)
	if *worldKind == "grid" {
		grid := gridConfig(*gridRows, *gridCols, *gridBlock, *gridVeh, protocolGridDefaults)
		cfg = mmv2v.GridScenario(grid, *seed)
	}
	cfg.Stats = *statsOut != ""
	// -http implies the windowed series so /series and /metrics have data;
	// both knobs are scenario-defining (fingerprint) like -stats.
	cfg.Series = *seriesOut != "" || *httpAddr != ""
	cfg.WindowSec = *seconds
	cfg.Windows = *windows
	cfg.DemandBits = *demand
	cfg.Retry = *retry
	if *intensity < 0 {
		return fmt.Errorf("negative fault intensity %v", *intensity)
	}
	if *intensity > 0 {
		profile := mmv2v.DefaultFaultConfig().Scale(*intensity)
		cfg.Faults = &profile
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		// Trace events stream to f during the run; surface a close error
		// (lost events) unless the run already failed for another reason.
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		cfg.Trace = mmv2v.NewTraceRecorder(mmv2v.NewTraceJSONL(f))
	}

	params := mmv2v.DefaultParams()
	params.K = *k
	params.M = *m
	params.C = *c
	if err := params.Validate(); err != nil {
		return err
	}

	factories := map[string]mmv2v.Factory{
		"mmv2v":  mmv2v.MMV2V(params),
		"rop":    mmv2v.ROP(mmv2v.DefaultROPParams()),
		"ad":     mmv2v.AD(mmv2v.DefaultADParams()),
		"oracle": mmv2v.Oracle(params),
	}
	var names []string
	if *protocol == "all" {
		names = []string{"mmv2v", "rop", "ad", "oracle"}
	} else {
		if _, ok := factories[*protocol]; !ok {
			return fmt.Errorf("unknown protocol %q", *protocol)
		}
		names = []string{*protocol}
	}
	if *resumeCkp != "" || *runlogOut != "" {
		if len(names) > 1 {
			return fmt.Errorf("-resume and -runlog need a single -protocol, not all")
		}
		if *resumeCkp != "" && *runlogOut != "" {
			return fmt.Errorf("-resume replays one trial and cannot record a full run log")
		}
		if *resumeCkp != "" && *traceOut != "" {
			return fmt.Errorf("-resume cannot reconstruct trace events of completed windows; drop -trace")
		}
		if *runlogOut != "" && *statsOut != "" {
			return fmt.Errorf("-runlog records metric tables, not the -stats registry; drop one of the two")
		}
		if *runlogOut != "" && cfg.Series {
			return fmt.Errorf("-runlog's recorded recipe cannot reproduce the series registry; drop -series/-http")
		}
	}

	if !*jsonOut {
		if cfg.Grid != nil {
			fmt.Printf("scenario: %dx%d grid, %.0f m blocks, %d vehicles, seed %d, %d trial(s) × %d window(s) × %.2f s, demand %.0f Mb/neighbor\n",
				cfg.Grid.Rows, cfg.Grid.Cols, cfg.Grid.BlockM, cfg.Grid.Vehicles, *seed, *trials, *windows, *seconds, *demand/1e6)
		} else {
			fmt.Printf("scenario: %.0f vpl, seed %d, %d trial(s) × %d window(s) × %.2f s, demand %.0f Mb/neighbor\n",
				*density, *seed, *trials, *windows, *seconds, *demand/1e6)
		}
		fmt.Printf("%-10s %-8s %-8s %-8s %-8s %-10s\n", "protocol", "OCR", "ATP", "DTP", "avg |N|", "DES events")
	}
	type jsonRow struct {
		Protocol     string  `json:"protocol"`
		DensityVPL   float64 `json:"density_vpl"`
		OCR          float64 `json:"ocr"`
		ATP          float64 `json:"atp"`
		DTP          float64 `json:"dtp"`
		AvgNeighbors float64 `json:"avg_neighbors"`
		Events       uint64  `json:"des_events"`
	}
	var rows []jsonRow
	var statsRows []mmv2v.StatsRow
	var seriesRows []mmv2v.SeriesRow
	if srv != nil {
		totalTrials := len(names) * *trials
		srv.SetTotals(len(names), totalTrials, totalTrials*(*windows))
	}
	for _, name := range names {
		pcfg := cfg
		if srv != nil {
			// Each protocol is one cell; trial indices restart per cell, so
			// StartRun drops the previous protocol's accumulators.
			srv.StartRun(name)
			pcfg.Monitor = srv
		}
		if *ckptDir != "" {
			pcfg.Checkpoint = *ckptDir
			if len(names) > 1 {
				// Checkpoint files are keyed by trial index alone; give each
				// protocol its own directory so they cannot collide.
				pcfg.Checkpoint = filepath.Join(*ckptDir, name)
			}
		}
		var res *mmv2v.Result
		var err error
		switch {
		case *resumeCkp != "":
			res, err = mmv2v.Resume(pcfg, factories[name], *resumeCkp)
		case *runlogOut != "":
			res, err = mmv2v.RunTrialsLogged(pcfg, factories[name], *trials, runLogHeader(name, cfg, *density, *seed, *trials, *seconds, *windows, *demand, *intensity, *k, *m, *c), *runlogOut)
		default:
			res, err = mmv2v.RunTrials(pcfg, factories[name], *trials)
		}
		if err != nil {
			return err
		}
		if *statsOut != "" {
			statsRows = append(statsRows, mmv2v.StatsRows(res.Obs, res.Protocol)...)
		}
		if *seriesOut != "" {
			seriesRows = append(seriesRows, mmv2v.SeriesRows(res.Series.Points(), res.Protocol)...)
		}
		if srv != nil {
			srv.CellDone(res.Protocol)
		}
		for _, te := range res.Failures {
			fmt.Fprintf(os.Stderr, "mmv2v-sim: %v\n", te)
		}
		if res.Retried > 0 || len(res.Failures) > 0 {
			fmt.Fprintf(os.Stderr, "mmv2v-sim: %s: %d/%d trial(s) pooled (%d retried, %d lost)\n",
				res.Protocol, res.Trials, *trials, res.Retried, len(res.Failures))
		}
		if *jsonOut {
			rows = append(rows, jsonRow{
				Protocol:     res.Protocol,
				DensityVPL:   *density,
				OCR:          res.Summary.MeanOCR,
				ATP:          res.Summary.MeanATP,
				DTP:          res.Summary.MeanDTP,
				AvgNeighbors: res.AvgNeighbors,
				Events:       res.Events,
			})
			continue
		}
		fmt.Printf("%-10s %-8.3f %-8.3f %-8.3f %-8.1f %-10d\n",
			res.Protocol, res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP,
			res.AvgNeighbors, res.Events)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, statsRows, *jsonOut); err != nil {
			return err
		}
	}
	if *seriesOut != "" {
		if err := writeSeries(*seriesOut, seriesRows); err != nil {
			return err
		}
	}
	return writeMemProfile(*memOut)
}

// runLogHeader assembles the run-log scenario recipe from the CLI flags;
// RunTrialsLogged cross-checks it against the running config's fingerprint
// before simulating anything, so a recipe that would not replay this run
// fails loudly up front.
func runLogHeader(protocol string, cfg mmv2v.ScenarioConfig, density float64, seed uint64, trials int, seconds float64, windows int, demand, intensity float64, k, m, c int) mmv2v.RunLogHeader {
	h := mmv2v.RunLogHeader{
		Protocol:       protocol,
		K:              k,
		M:              m,
		C:              c,
		DensityVPL:     density,
		Seed:           seed,
		Trials:         trials,
		WindowSec:      seconds,
		Windows:        windows,
		DemandBits:     demand,
		FaultIntensity: intensity,
	}
	if cfg.Grid != nil {
		h.Grid = true
		h.DensityVPL = 0
		h.GridRows, h.GridCols = cfg.Grid.Rows, cfg.Grid.Cols
		h.GridBlockM = cfg.Grid.BlockM
		h.GridVehicles = cfg.Grid.Vehicles
	}
	return h
}

// writeStats exports the pooled statistics rows to path — CSV when the
// suffix asks for it, JSON Lines otherwise — and prints the summary table:
// to stdout normally, to stderr under -json so stdout stays parseable.
func writeStats(path string, rows []mmv2v.StatsRow, jsonMode bool) error {
	mmv2v.SortStatsRows(rows)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = mmv2v.WriteStatsCSV(f, rows)
	} else {
		err = mmv2v.WriteStatsJSONL(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	out := os.Stdout
	if jsonMode {
		out = os.Stderr
	}
	fmt.Fprintln(out)
	mmv2v.WriteStatsSummary(out, rows)
	return nil
}

// writeSeries exports the per-window series rows to path — CSV when the
// suffix asks for it, JSON Lines otherwise. Unlike -stats there is no
// summary table: the series is a machine-readable artifact, and stdout
// stays byte-identical with or without it.
func writeSeries(path string, rows []mmv2v.SeriesRow) error {
	mmv2v.SortSeriesRows(rows)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = mmv2v.WriteSeriesCSV(f, rows)
	} else {
		err = mmv2v.WriteSeriesJSONL(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mmv2v-sim: wrote %d series rows to %s\n", len(rows), path)
	return nil
}

// gridDefaults are the per-mode fallbacks for unset grid geometry flags:
// protocol runs get a dense downtown grid so neighborhoods match the
// paper's 5–8 band at 240 vehicles; the scale drive gets the full city.
type gridDefaults struct {
	rows, cols int
	blockM     float64
	vehicles   int
}

var (
	protocolGridDefaults = gridDefaults{rows: 3, cols: 3, blockM: 200, vehicles: 240}
	driveGridDefaults    = gridDefaults{rows: 12, cols: 12, blockM: 500, vehicles: 10000}
)

// gridConfig assembles the grid world from the CLI flags; zero-valued flags
// fall back to the mode's defaults.
func gridConfig(rows, cols int, blockM float64, vehicles int, def gridDefaults) mmv2v.GridConfig {
	if rows == 0 {
		rows = def.rows
	}
	if cols == 0 {
		cols = def.cols
	}
	if blockM <= 0 {
		blockM = def.blockM
	}
	if vehicles == 0 {
		vehicles = def.vehicles
	}
	g := mmv2v.DefaultGridConfig(vehicles)
	g.Rows, g.Cols = rows, cols
	g.BlockM = blockM
	return g
}

// driveGrid is the protocol-free scale mode: advance traffic at the 5 ms
// mobility cadence, refresh the link table every refreshMs simulated
// milliseconds, and report table size plus wall-clock per refresh. All
// timing lives here in the CLI; the library loop is deterministic. With a
// live server attached, every refresh publishes a fresh gauge snapshot and
// tick progress, so /metrics and /progress track a 10k drive in flight.
func driveGrid(grid mmv2v.GridConfig, seed uint64, seconds, refreshMs float64, srv *mmv2v.LiveServer) error {
	buildStart := time.Now()
	g, err := mmv2v.NewGridWorld(grid, seed)
	if err != nil {
		return err
	}
	fmt.Printf("grid world: %dx%d intersections, %.0f m blocks, %d vehicles (built in %v)\n",
		grid.Rows, grid.Cols, grid.BlockM, g.NumVehicles(), time.Since(buildStart).Round(time.Millisecond))
	ticks := int(seconds / g.TickSeconds())
	every := max(int(refreshMs/(g.TickSeconds()*1000)), 1)
	refreshes := 0
	var inRefresh time.Duration
	start := time.Now()
	for t := 1; t <= ticks; t++ {
		g.StepTraffic()
		if t%every == 0 {
			rs := time.Now()
			g.RefreshLinks()
			inRefresh += time.Since(rs)
			refreshes++
			if srv != nil {
				publishDrive(srv, g, t, ticks, refreshes)
			}
		}
	}
	elapsed := time.Since(start)
	perRefresh := inRefresh / time.Duration(max(refreshes, 1))
	fmt.Printf("drove %.1f s simulated (%d ticks, link refresh every %d ms) in %v wall (%.1fx real time)\n",
		float64(ticks)*g.TickSeconds(), ticks, every*int(g.TickSeconds()*1000),
		elapsed.Round(time.Millisecond), seconds/elapsed.Seconds())
	fmt.Printf("%d link refreshes, %.2f ms/refresh\n", refreshes, float64(perRefresh.Microseconds())/1000)
	fmt.Printf("final link table: %d directed entries, avg |N| %.1f\n", g.TotalLinks(), g.AvgNeighbors())
	return nil
}

// publishDrive pushes the drive's current link-table shape to the live
// server: one snapshot per refresh, rows pre-sorted by name so /metrics is
// byte-stable between refreshes. Tick counts stand in for windows in
// /progress — the drive has no measurement windows.
func publishDrive(srv *mmv2v.LiveServer, g *mmv2v.GridWorld, tick, ticks, refreshes int) {
	avgN := g.AvgNeighbors()
	links := float64(g.TotalLinks())
	rows := []mmv2v.StatsRow{
		{Name: "drive.avg_neighbors", Kind: "gauge", Count: 1, Sum: avgN, Min: avgN, Max: avgN},
		{Name: "drive.links", Kind: "gauge", Count: 1, Sum: links, Min: links, Max: links},
		{Name: "drive.refreshes", Kind: "counter", Count: uint64(refreshes)},
		{Name: "drive.ticks", Kind: "counter", Count: uint64(tick)},
	}
	srv.Publish(rows, nil, mmv2v.ProgressState{Label: "drive", WindowsDone: tick, WindowsTotal: ticks})
}

// writeMemProfile snapshots the heap (after forcing a GC so the profile
// reflects live objects) when -memprofile asked for one.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
