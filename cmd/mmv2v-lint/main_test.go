package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the mmv2v-lint binary once per test run so the exit
// codes under test are exactly what CI and make lint observe.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mmv2v-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runLint executes the binary and returns stdout, stderr and the exit code.
func runLint(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// fixture resolves a module under internal/lint/testdata.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "internal", "lint", "testdata"}, parts...)...)
}

// TestJSONGolden pins the -json schema byte-for-byte: an array of findings
// with pass/msg/file/line/col, root-relative slash paths, sorted by
// position, exit code 1 because findings exist.
func TestJSONGolden(t *testing.T) {
	bin := buildLint(t)
	stdout, _, code := runLint(t, bin, "-C", fixture("errdrop"), "-passes", "errdrop", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present)", code)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "errdrop.json"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(golden) {
		t.Errorf("-json output drifted from testdata/errdrop.json\n got:\n%s\nwant:\n%s", stdout, golden)
	}
}

// TestJSONEmptyArray keeps a clean tree's -json output a parseable empty
// array, never null.
func TestJSONEmptyArray(t *testing.T) {
	bin := buildLint(t)
	stdout, _, code := runLint(t, bin, "-C", fixture("errdrop"), "-passes", "floateq", "-json", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want empty array", stdout)
	}
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings, 2 on
// load or usage errors (README "Lint").
func TestExitCodes(t *testing.T) {
	bin := buildLint(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-C", fixture("errdrop"), "-passes", "floateq", "./..."}, 0},
		{"findings", []string{"-C", fixture("errdrop"), "-passes", "errdrop", "./..."}, 1},
		{"syntax error", []string{"-C", fixture("broken", "syntax"), "./..."}, 2},
		{"missing package", []string{"-C", fixture("broken", "missing"), "./..."}, 2},
		{"import cycle", []string{"-C", fixture("broken", "cycle"), "./..."}, 2},
		{"unknown pass", []string{"-C", fixture("errdrop"), "-passes", "nope", "./..."}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runLint(t, bin, tc.args...)
			if code != tc.want {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.want, stderr)
			}
			if tc.want == 2 && strings.TrimSpace(stderr) == "" {
				t.Errorf("exit 2 with empty stderr; load/usage errors must be reported")
			}
		})
	}
}
