package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the mmv2v-lint binary once per test run so the exit
// codes under test are exactly what CI and make lint observe.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mmv2v-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runLint executes the binary and returns stdout, stderr and the exit code.
func runLint(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// fixture resolves a module under internal/lint/testdata.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "internal", "lint", "testdata"}, parts...)...)
}

// TestJSONGolden pins the -json schema byte-for-byte: an array of findings
// with pass/msg/file/line/col, root-relative slash paths, sorted by
// position, exit code 1 because findings exist. The sharecheck and
// persistcheck rows pin the interprocedural suite's messages (directive
// suppression keeps the justified sites out of the arrays), and the
// wallclock_transitive rows pin the taint witness chains — rerun twice to
// hold run-to-run byte stability.
func TestJSONGolden(t *testing.T) {
	bin := buildLint(t)
	cases := []struct {
		golden string
		args   []string
	}{
		{"errdrop.json", []string{"-C", fixture("errdrop"), "-passes", "errdrop", "-json", "./..."}},
		{"sharecheck.json", []string{"-C", fixture("sharecheck"), "-passes", "sharecheck", "-json", "./..."}},
		{"persistcheck.json", []string{"-C", fixture("persistcheck"), "-passes", "persistcheck", "-json", "./..."}},
		{"wallclock_transitive.json", []string{"-C", fixture("wallclock"), "-passes", "wallclock", "-json", "./internal/caller"}},
		{"alloccheck.json", []string{"-C", fixture("alloccheck"), "-passes", "alloccheck", "-json", "./..."}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			golden, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			for run := 0; run < 2; run++ {
				stdout, _, code := runLint(t, bin, tc.args...)
				if code != 1 {
					t.Fatalf("run %d: exit code = %d, want 1 (findings present)", run, code)
				}
				if stdout != string(golden) {
					t.Errorf("run %d: -json output drifted from testdata/%s\n got:\n%s\nwant:\n%s", run, tc.golden, stdout, golden)
				}
			}
		})
	}
}

// TestJSONEmptyArray keeps a clean tree's -json output a parseable empty
// array, never null.
func TestJSONEmptyArray(t *testing.T) {
	bin := buildLint(t)
	stdout, _, code := runLint(t, bin, "-C", fixture("errdrop"), "-passes", "floateq", "-json", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want empty array", stdout)
	}
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings, 2 on
// load or usage errors (README "Lint").
func TestExitCodes(t *testing.T) {
	bin := buildLint(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-C", fixture("errdrop"), "-passes", "floateq", "./..."}, 0},
		{"findings", []string{"-C", fixture("errdrop"), "-passes", "errdrop", "./..."}, 1},
		{"syntax error", []string{"-C", fixture("broken", "syntax"), "./..."}, 2},
		{"missing package", []string{"-C", fixture("broken", "missing"), "./..."}, 2},
		{"import cycle", []string{"-C", fixture("broken", "cycle"), "./..."}, 2},
		{"unknown pass", []string{"-C", fixture("errdrop"), "-passes", "nope", "./..."}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runLint(t, bin, tc.args...)
			if code != tc.want {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.want, stderr)
			}
			if tc.want == 2 && strings.TrimSpace(stderr) == "" {
				t.Errorf("exit 2 with empty stderr; load/usage errors must be reported")
			}
		})
	}
}

// TestUnknownPassUsage pins the unknown-pass contract beyond the exit code:
// the name is rejected before any load work, stderr names the offender and
// every valid pass, and the usage listing follows.
func TestUnknownPassUsage(t *testing.T) {
	bin := buildLint(t)
	_, stderr, code := runLint(t, bin, "-C", fixture("errdrop"), "-passes", "errdrop,nope", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{
		`unknown pass "nope"`,
		"valid passes:",
		"usage: mmv2v-lint",
		"maprange", "wallclock", "globalrand", "goroutine", "floateq",
		"errdrop", "unitcheck", "persistcheck", "sharecheck", "alloccheck",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}
