// Command mmv2v-lint enforces the repo's determinism and simulation-hygiene
// contract (DESIGN.md §8) with ten stdlib-only static-analysis passes.
//
// Usage:
//
//	mmv2v-lint [-passes list] [-json] [-C dir] [packages]
//
// Package arguments are root-relative directories or ./... patterns
// ("./internal/metrics", "./internal/...", "./..."); with no arguments the
// whole module is analyzed. The exit status is 0 when the tree is clean,
// 1 when findings are reported, and 2 on usage or load errors. Findings are
// printed one per line as "file:line: pass: message".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mmv2v/internal/lint"
)

func main() {
	passes := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
	chdir := flag.String("C", "", "module root to analyze (default: nearest go.mod at or above the working directory)")
	list := flag.Bool("list", false, "list the available passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mmv2v-lint [flags] [packages]\n\npasses:\n")
		for _, p := range lint.Passes() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", p.Name, p.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	var opts lint.Options
	if *passes != "" {
		opts.Passes = strings.Split(*passes, ",")
		// Reject unknown pass names before the (slow) whole-module load, so
		// a typo fails in milliseconds with the valid names in hand.
		known := make(map[string]bool)
		var names []string
		for _, p := range lint.Passes() {
			known[p.Name] = true
			names = append(names, p.Name)
		}
		for _, n := range opts.Passes {
			if !known[n] {
				fmt.Fprintf(os.Stderr, "mmv2v-lint: unknown pass %q\nvalid passes: %s\n",
					n, strings.Join(names, ", "))
				flag.Usage()
				os.Exit(2)
			}
		}
	}
	for _, arg := range flag.Args() {
		opts.Dirs = append(opts.Dirs, normalizePattern(arg))
	}

	findings, err := lint.Run(root, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mmv2v-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// normalizePattern turns a go-style package pattern into a root-relative
// directory prefix for lint.Options.Dirs: "./..." → "", "./internal/..." →
// "internal", "./internal/metrics" → "internal/metrics".
func normalizePattern(arg string) string {
	p := filepath.ToSlash(arg)
	p = strings.TrimPrefix(p, "./")
	p = strings.TrimSuffix(p, "...")
	p = strings.TrimSuffix(p, "/")
	if p == "." {
		p = ""
	}
	return p
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mmv2v-lint: no go.mod found at or above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
