// Command mmv2v-experiments regenerates the paper's evaluation figures.
//
// Usage:
//
//	mmv2v-experiments -fig 9 -trials 3          # Fig. 9 comparison
//	mmv2v-experiments -fig all -trials 2        # everything
//	mmv2v-experiments -fig t2                   # Theorem 2 validation
//	mmv2v-experiments -fig ablation             # design-choice ablation
//	mmv2v-experiments -fig city                 # protocols on a city grid
//
// Results print as text tables with the same rows/series the paper plots.
// The paper repeats each experiment 100 times; -trials trades fidelity for
// runtime (full Fig. 9 at -trials 3 takes a few minutes).
//
// Trials run on a bounded worker pool; -workers caps the concurrency
// (0, the default, uses all CPU cores). Tables are bit-identical for any
// -workers value: trials are independently seeded and merged in trial
// order.
//
// -progress prints per-cell completion with elapsed wall-clock time to
// stderr while the tables build. -stats <path> additionally records
// per-layer statistics for the figures that support them (9 and the fault
// sweep) and writes them to the path as JSON Lines — or CSV when the path
// ends in .csv — with a summary table on stderr; the stdout tables are
// byte-identical with or without it. -cpuprofile/-memprofile write pprof
// profiles of the whole run.
//
// -series <path> records windowed per-layer samples for the same figures
// (9 and the fault sweep) as JSON Lines — or CSV when the path ends in
// .csv. -http <addr> serves live telemetry while the figures build:
// /healthz, /progress (completed cells; totals are unknown up front, so no
// ETA) and /debug/pprof/. The stdout tables are byte-identical with or
// without either flag.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"mmv2v"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, t2, ablation, trucks, warmup, faults, city, all")
		trials    = flag.Int("trials", 0, "trials per data point (0 = per-figure default)")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		format    = flag.String("format", "table", "output format: table or csv")
		workers   = flag.Int("workers", 0, "max concurrent trial simulations (0 = all CPU cores); results are identical for any value")
		faultRun  = flag.Bool("faults", false, "shorthand for -fig faults: the graceful-degradation fault sweep")
		verbose   = flag.Bool("progress", false, "print per-cell completion progress with elapsed wall-clock time to stderr")
		statsOut  = flag.String("stats", "", "record per-layer statistics (figures 9 and faults) and write them to this file (CSV if the path ends in .csv, JSON Lines otherwise)")
		seriesOut = flag.String("series", "", "record windowed per-layer samples (figures 9 and faults) and write them to this file (CSV if the path ends in .csv, JSON Lines otherwise)")
		httpAddr  = flag.String("http", "", "serve live run telemetry (/healthz /progress /debug/pprof/) on this address")
		cpuOut    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memOut    = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	)
	flag.Parse()
	if *faultRun {
		*fig = "faults"
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return err
		}
		// The profile is flushed by StopCPUProfile; a close error here can
		// only lose an artifact the run already reported on, so drop it
		// explicitly.
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var srv *mmv2v.LiveServer
	if *httpAddr != "" {
		srv = mmv2v.NewLiveServer()
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			return err
		}
		// The snapshot endpoints stay serveable until the process exits; a
		// close error here can only race process teardown, so drop it.
		defer func() { _ = srv.Close() }()
		fmt.Fprintln(os.Stderr, "mmv2v-experiments: live introspection on http://"+addr)
	}
	// Progress callbacks fire from concurrent experiment cells; serialize
	// the printer. Wall-clock time is measured here, never inside the
	// deterministic experiment layer. The live server keeps its own lock,
	// so CellDone rides the same callback without widening the mutex.
	runStart := time.Now()
	var progress func(cell string)
	if *verbose || srv != nil {
		var mu sync.Mutex
		progress = func(cell string) {
			if srv != nil {
				srv.CellDone(cell)
			}
			if *verbose {
				mu.Lock()
				defer mu.Unlock()
				fmt.Fprintf(os.Stderr, "[%v] %s\n", time.Since(runStart).Round(time.Millisecond), cell)
			}
		}
	}
	recordStats := *statsOut != ""
	recordSeries := *seriesOut != ""
	var statsRows []mmv2v.StatsRow
	var seriesRows []mmv2v.SeriesRow
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("negative worker count %d", *workers)
	}
	csvMode := *format == "csv"

	runners := map[string]func() error{
		"6": func() error {
			opts := mmv2v.DefaultFig6Options()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.ReproduceFig6(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintf(w, "best C per scenario: %v (paper: C ≈ |N_i|, C = 7 as a good practice)\n\n", res.BestC())
			return nil
		},
		"7": func() error {
			opts := mmv2v.DefaultFig7Options()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.ReproduceFig7(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintf(w, "best K: %d (paper: K = 3)\n\n", res.BestK())
			return nil
		},
		"8": func() error {
			opts := mmv2v.DefaultFig8Options()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.ReproduceFig8(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintf(w, "best M: %d (paper: M = 40)\n\n", res.BestM())
			return nil
		},
		"9": func() error {
			opts := mmv2v.DefaultFig9Options()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			opts.Stats = recordStats
			opts.Series = recordSeries
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.ReproduceFig9(opts)
			if err != nil {
				return err
			}
			statsRows = append(statsRows, res.StatsRows()...)
			seriesRows = append(seriesRows, res.SeriesRows()...)
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w, "paper reference @15 vpl: mmV2V 0.742, ROP 0.319, 802.11ad 0.465")
			fmt.Fprintln(w, "paper reference @30 vpl: mmV2V 0.576, ROP 0.227, 802.11ad 0.192")
			fmt.Fprintln(w)
			return nil
		},
		"t2": func() error {
			opts := mmv2v.DefaultTheorem2Options()
			opts.Seed = *seed
			res, err := mmv2v.ValidateTheorem2(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
		"warmup": func() error {
			opts := mmv2v.DefaultWarmupOptions()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.RunWarmup(opts)
			if err != nil {
				return err
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
		"trucks": func() error {
			opts := mmv2v.DefaultTrucksOptions()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.RunTrucks(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
		"faults": func() error {
			opts := mmv2v.DefaultFaultsOptions()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			opts.Stats = recordStats
			opts.Series = recordSeries
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.RunFaultSweep(opts)
			if err != nil {
				return err
			}
			statsRows = append(statsRows, res.StatsRows()...)
			seriesRows = append(seriesRows, res.SeriesRows()...)
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
		"city": func() error {
			opts := mmv2v.DefaultCityOptions()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.ReproduceCity(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
		"ablation": func() error {
			opts := mmv2v.DefaultAblationOptions()
			opts.Seed = *seed
			opts.Workers = *workers
			opts.Progress = progress
			if *trials > 0 {
				opts.Trials = *trials
			}
			res, err := mmv2v.RunAblation(opts)
			if err != nil {
				return err
			}
			if csvMode {
				return res.WriteCSV(w)
			}
			res.WriteTable(w)
			fmt.Fprintln(w)
			return nil
		},
	}

	// "all" keeps its pre-fault-layer composition so full-suite output
	// stays byte-identical; run the fault sweep with -fig faults/-faults and
	// the city-grid comparison with -fig city.
	order := []string{"t2", "6", "7", "8", "9", "ablation", "trucks", "warmup"}
	if *fig != "all" {
		if _, ok := runners[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 6, 7, 8, 9, t2, ablation, trucks, warmup, faults, city, all)", *fig)
		}
		order = []string{*fig}
	}
	for _, name := range order {
		start := time.Now()
		if err := runners[name](); err != nil {
			return fmt.Errorf("figure %s: %w", name, err)
		}
		if !csvMode {
			fmt.Fprintf(w, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if recordStats {
		if err := writeStats(*statsOut, statsRows); err != nil {
			return err
		}
	}
	if recordSeries {
		if err := writeSeries(*seriesOut, seriesRows); err != nil {
			return err
		}
	}
	return writeMemProfile(*memOut)
}

// writeStats exports the collected statistics rows to path — CSV when the
// suffix asks for it, JSON Lines otherwise — and prints the summary table
// to stderr so the stdout figure tables stay byte-identical.
func writeStats(path string, rows []mmv2v.StatsRow) error {
	mmv2v.SortStatsRows(rows)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = mmv2v.WriteStatsCSV(f, rows)
	} else {
		err = mmv2v.WriteStatsJSONL(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr)
	mmv2v.WriteStatsSummary(os.Stderr, rows)
	return nil
}

// writeSeries exports the collected per-window series rows to path — CSV
// when the suffix asks for it, JSON Lines otherwise. No summary table: the
// series is a machine-readable artifact, and stdout stays byte-identical
// with or without it.
func writeSeries(path string, rows []mmv2v.SeriesRow) error {
	mmv2v.SortSeriesRows(rows)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = mmv2v.WriteSeriesCSV(f, rows)
	} else {
		err = mmv2v.WriteSeriesJSONL(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mmv2v-experiments: wrote %d series rows to %s\n", len(rows), path)
	return nil
}

// writeMemProfile snapshots the heap (after forcing a GC so the profile
// reflects live objects) when -memprofile asked for one.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
