// Command mmv2v-traffic inspects the microscopic traffic substrate (the
// VENUS replacement): it generates a scenario, steps it, and reports flow
// statistics — or dumps a CSV trace of vehicle positions for plotting.
//
// Usage:
//
//	mmv2v-traffic -density 20 -seconds 30            # flow statistics
//	mmv2v-traffic -density 20 -seconds 5 -csv trace  # per-vehicle trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-traffic:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		density = flag.Float64("density", 15, "traffic density in vehicles/lane/km")
		seed    = flag.Uint64("seed", 1, "scenario seed")
		seconds = flag.Float64("seconds", 30, "simulated duration")
		csvMode = flag.Bool("csv", false, "dump a per-vehicle CSV trace to stdout instead of stats")
		every   = flag.Float64("every", 1.0, "trace sample interval (s)")
	)
	flag.Parse()

	road, err := traffic.New(traffic.DefaultConfig(*density), xrand.New(*seed))
	if err != nil {
		return err
	}
	cfg := road.Config()

	if *csvMode {
		fmt.Println("t,vehicle,dir,lane,x,y,speed_ms")
		const dt = 0.005
		next := 0.0
		for t := 0.0; t <= *seconds; t += dt {
			if t >= next {
				for _, v := range road.Vehicles() {
					p := cfg.Position(v)
					fmt.Printf("%.2f,%d,%s,%d,%.2f,%.2f,%.2f\n",
						t, v.ID, v.Dir, v.Lane, p.X, p.Y, v.V)
				}
				next += *every
			}
			road.Step(dt)
		}
		return nil
	}

	const dt = 0.005
	steps := int(*seconds / dt)
	laneChanges := 0
	lastLane := make(map[int]int, road.NumVehicles())
	for _, v := range road.Vehicles() {
		lastLane[v.ID] = v.Lane
	}
	for s := 0; s < steps; s++ {
		road.Step(dt)
		for _, v := range road.Vehicles() {
			if v.Lane != lastLane[v.ID] {
				laneChanges++
				lastLane[v.ID] = v.Lane
			}
		}
	}

	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %.0f vpl on %.0f m road, %d vehicles, %.0f s simulated\n",
		*density, cfg.Length, road.NumVehicles(), *seconds)
	fmt.Printf("lane changes: %d (%.2f per vehicle per minute)\n",
		laneChanges, float64(laneChanges)/float64(road.NumVehicles())/(*seconds)*60)

	byLane := map[int][]float64{}
	for _, v := range road.Vehicles() {
		byLane[v.Lane] = append(byLane[v.Lane], v.V)
	}
	lanes := make([]int, 0, len(byLane))
	//mmv2v:sorted pure key collection; sorted below before printing
	for l := range byLane {
		lanes = append(lanes, l)
	}
	sort.Ints(lanes)
	fmt.Println("lane  vehicles  mean speed (km/h)  band (km/h)")
	for _, l := range lanes {
		sum := 0.0
		for _, v := range byLane[l] {
			sum += v
		}
		band := cfg.SpeedBands[l]
		fmt.Printf("%-5d %-9d %-18.1f %.0f-%.0f\n",
			l, len(byLane[l]), traffic.MsToKmh(sum/float64(len(byLane[l]))),
			traffic.MsToKmh(band.Low), traffic.MsToKmh(band.High))
	}
	fmt.Printf("LOS neighbors: mean %.2f per vehicle (comm range %.0f m)\n",
		w.AvgNeighborCount(), w.Config().CommRange)
	blocked, inDisk := 0, 0
	for i := 0; i < w.NumVehicles(); i++ {
		for _, l := range w.Links(i) {
			if l.Dist <= w.Config().CommRange {
				inDisk++
				if !l.LOS() {
					blocked++
				}
			}
		}
	}
	if inDisk > 0 {
		fmt.Printf("blockage: %.1f%% of in-disk links are NLOS\n", 100*float64(blocked)/float64(inDisk))
	}
	return nil
}
