// Command mmv2v-bench2json converts `go test -bench` text output into a
// structured JSON document, so benchmark runs can be archived and diffed
// (see `make bench-json`, which snapshots a run as BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | mmv2v-bench2json -date 2026-08-06
//
// The converter reads stdin, groups benchmark lines under the pkg: headers
// `go test` prints per package, splits the -N GOMAXPROCS suffix off each
// name, and carries every value/unit pair (ns/op, B/op, allocs/op, custom
// units) into a metrics map. Non-benchmark lines (PASS, ok, failures) are
// ignored, so piping a full `make bench` run through it just works.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Date       string            `json:"date,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the report")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *date); err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-bench2json:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, date string) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Date = date
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// envKeys are the `key: value` header lines `go test -bench` prints; pkg is
// handled separately because it changes per package section.
var envKeys = map[string]bool{"goos": true, "goarch": true, "cpu": true}

// parse consumes `go test -bench` output and keeps only what a diff needs.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(key, " ") {
			switch {
			case key == "pkg":
				pkg = val
			case envKeys[key]:
				if rep.Env == nil {
					rep.Env = map[string]string{}
				}
				rep.Env[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseBenchLine splits "BenchmarkName-8  100  123 ns/op  4 B/op ..." into
// its name, GOMAXPROCS suffix, iteration count and value/unit metric pairs.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	b.Metrics = make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: bad metric value %q: %w", line, fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
