// Command mmv2v-bench2json converts `go test -bench` text output into a
// structured JSON document, so benchmark runs can be archived and diffed
// (see `make bench-json`, which snapshots a run as BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | mmv2v-bench2json -date 2026-08-06
//	go test -bench=. ./... | mmv2v-bench2json -baseline BENCH_2026-08-08.json -threshold 0.15
//
// The converter reads stdin, groups benchmark lines under the pkg: headers
// `go test` prints per package, splits the -N GOMAXPROCS suffix off each
// name, and carries every value/unit pair (ns/op, B/op, allocs/op, custom
// units) into a metrics map. Non-benchmark lines (PASS, ok, failures) are
// ignored, so piping a full `make bench` run through it just works.
//
// -commit stamps the report with the source revision it measured; CI passes
// its checkout SHA so archived reports are traceable. The converter never
// execs git itself — provenance is the caller's claim, not a subprocess.
//
// With -baseline, the converted run doubles as a regression gate: each
// fresh (pkg, name) ns/op is compared against the committed baseline
// report, and the command exits nonzero when any pinned hot path slowed by
// more than the -threshold fraction. Baseline entries missing from the
// fresh run are skipped — partial bench runs gate only what they measured.
//
// -alloc-threshold (off when negative, the default) additionally gates
// allocs/op and B/op by the same fractional rule. Unlike the ns/op gate,
// zero baselines are not skipped: a hot path measured at 0 allocs/op is a
// contract, and any fresh allocation on it fails at every threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Date       string            `json:"date,omitempty"`
	Commit     string            `json:"commit,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the report")
	commit := flag.String("commit", "", "commit hash to stamp into the report (CI passes its checkout SHA; the converter never execs git)")
	baseline := flag.String("baseline", "", "baseline report JSON to gate ns/op against; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op slowdown over the baseline")
	allocThreshold := flag.Float64("alloc-threshold", -1, "allowed fractional allocs/op and B/op growth over the baseline; negative disables the allocation gate")
	flag.Parse()
	rep, err := run(os.Stdin, os.Stdout, *date, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-bench2json:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmv2v-bench2json:", err)
		os.Exit(1)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mmv2v-bench2json: %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	regressions, compared := compare(&base, rep, *threshold, *allocThreshold)
	fmt.Fprintf(os.Stderr, "mmv2v-bench2json: compared %d benchmark(s) against %s (threshold %+.0f%%)\n",
		compared, *baseline, *threshold*100)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "mmv2v-bench2json: REGRESSION:", r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, date, commit string) (*Report, error) {
	rep, err := parse(in)
	if err != nil {
		return nil, err
	}
	rep.Date = date
	rep.Commit = commit
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// allocUnits are the -benchmem metrics the allocation gate covers.
var allocUnits = []string{"allocs/op", "B/op"}

// compare gates the fresh run against a baseline report: every baseline
// (pkg, name) whose ns/op the fresh run also measured must not be slower by
// more than the nsThreshold fraction, and — when allocThreshold is
// non-negative — its allocs/op and B/op must not grow by more than the
// allocThreshold fraction. It returns one message per regression and the
// number of benchmarks compared on at least one metric; baseline entries
// the fresh run did not exercise are skipped. Zero ns/op baselines are
// skipped as unmeasured, but zero allocation baselines gate: 0 allocs/op is
// a contract, and any fresh allocation on such a path fails at every
// threshold.
func compare(base, fresh *Report, nsThreshold, allocThreshold float64) (regressions []string, compared int) {
	measured := make(map[string]map[string]float64, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		measured[b.Pkg+" "+b.Name] = b.Metrics
	}
	for _, b := range base.Benchmarks {
		now, ok := measured[b.Pkg+" "+b.Name]
		if !ok {
			continue
		}
		hit := false
		if was, ok := b.Metrics["ns/op"]; ok && was > 0 {
			if ns, ok := now["ns/op"]; ok {
				hit = true
				if ns > was*(1+nsThreshold) {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s: %.0f ns/op -> %.0f ns/op (%+.1f%%, allowed %+.0f%%)",
						b.Pkg, b.Name, was, ns, (ns/was-1)*100, nsThreshold*100))
				}
			}
		}
		if allocThreshold >= 0 {
			for _, unit := range allocUnits {
				was, ok := b.Metrics[unit]
				if !ok {
					continue
				}
				v, ok := now[unit]
				if !ok {
					continue
				}
				hit = true
				if v > was*(1+allocThreshold) {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s: %g %s -> %g %s (allowed %+.0f%%)",
						b.Pkg, b.Name, was, unit, v, unit, allocThreshold*100))
				}
			}
		}
		if hit {
			compared++
		}
	}
	return regressions, compared
}

// envKeys are the `key: value` header lines `go test -bench` prints; pkg is
// handled separately because it changes per package section.
var envKeys = map[string]bool{"goos": true, "goarch": true, "cpu": true}

// parse consumes `go test -bench` output and keeps only what a diff needs.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(key, " ") {
			switch {
			case key == "pkg":
				pkg = val
			case envKeys[key]:
				if rep.Env == nil {
					rep.Env = map[string]string{}
				}
				rep.Env[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseBenchLine splits "BenchmarkName-8  100  123 ns/op  4 B/op ..." into
// its name, GOMAXPROCS suffix, iteration count and value/unit metric pairs.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	b.Metrics = make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: bad metric value %q: %w", line, fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
