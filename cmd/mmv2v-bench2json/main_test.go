package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mmv2v/internal/world
cpu: Example CPU @ 3.00GHz
BenchmarkRefresh15vpl-8   	     100	  11859939 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	mmv2v/internal/world	2.011s
pkg: mmv2v/internal/obs
BenchmarkNilRegistryCounterInc-8 	1000000000	         0.2504 ns/op
ok  	mmv2v/internal/obs	0.412s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Env["goos"]; got != "linux" {
		t.Errorf("env goos = %q, want linux", got)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "mmv2v/internal/world" || b.Name != "Refresh15vpl" || b.Procs != 8 {
		t.Errorf("benchmark[0] = %+v, want Refresh15vpl-8 in internal/world", b)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 11859939 ||
		b.Metrics["B/op"] != 12345 || b.Metrics["allocs/op"] != 67 {
		t.Errorf("benchmark[0] metrics = %+v", b)
	}
	o := rep.Benchmarks[1]
	if o.Pkg != "mmv2v/internal/obs" || o.Metrics["ns/op"] != 0.2504 {
		t.Errorf("benchmark[1] = %+v, want obs no-op result", o)
	}
}

func TestParseSubBenchmarkName(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkHistogram/observe-16 500 3.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Benchmarks[0]
	if b.Name != "Histogram/observe" || b.Procs != 16 {
		t.Errorf("sub-benchmark parsed as %+v", b)
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 1 ns/op\n")); err == nil {
		t.Error("malformed iteration count did not error")
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if _, err := run(strings.NewReader(sample), &out, "2026-08-06", "abc1234"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"date": "2026-08-06"`, `"commit": "abc1234"`, `"name": "Refresh15vpl"`, `"ns/op": 11859939`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out.String())
		}
	}
}

// TestRunOmitsEmptyCommit keeps local runs (no -commit) byte-compatible with
// pre-commit-stamp reports: the field must vanish, not appear empty.
func TestRunOmitsEmptyCommit(t *testing.T) {
	var out strings.Builder
	if _, err := run(strings.NewReader(sample), &out, "2026-08-06", ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `"commit"`) {
		t.Errorf("empty commit stamp serialized:\n%s", out.String())
	}
}

// bench builds a one-metric benchmark entry for gate tests.
func bench(pkg, name string, ns float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Metrics: map[string]float64{"ns/op": ns}}
}

// TestCompareGate covers the baseline regression gate: slowdowns beyond the
// threshold regress, slowdowns within it pass, speedups pass, and baseline
// entries the fresh run did not measure are skipped rather than failed.
func TestCompareGate(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		bench("mmv2v", "Fig6CapacityVsSlots", 1000),
		bench("mmv2v", "Theorem2Validation", 1000),
		bench("mmv2v/internal/world", "Refresh15vpl", 1000),
		bench("mmv2v", "Ablation", 1000),
	}}
	fresh := &Report{Benchmarks: []Benchmark{
		bench("mmv2v", "Fig6CapacityVsSlots", 1300),        // +30%: regression
		bench("mmv2v", "Theorem2Validation", 1100),         // +10%: within threshold
		bench("mmv2v/internal/world", "Refresh15vpl", 700), // speedup
		// Ablation not measured this run: skipped.
		bench("mmv2v", "BrandNew", 9999), // not in baseline: ignored
	}}
	regressions, compared := compare(base, fresh, 0.15, -1)
	if compared != 3 {
		t.Errorf("compared = %d, want 3 (Ablation skipped)", compared)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "Fig6CapacityVsSlots") {
		t.Errorf("regressions = %v, want exactly the +30%% Fig6 entry", regressions)
	}
	if !strings.Contains(regressions[0], "+30.0%") {
		t.Errorf("regression message %q missing the slowdown percentage", regressions[0])
	}

	if regs, _ := compare(base, fresh, 0.5, -1); len(regs) != 0 {
		t.Errorf("50%% threshold should pass a +30%% slowdown, got %v", regs)
	}
}

// membench builds a benchmark entry with -benchmem metrics for gate tests.
func membench(pkg, name string, ns, bytes, allocs float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Metrics: map[string]float64{
		"ns/op": ns, "B/op": bytes, "allocs/op": allocs,
	}}
}

// TestCompareAllocGate covers the -alloc-threshold gate: allocs/op and B/op
// growth beyond the threshold regresses, growth within it passes, a
// zero-alloc baseline fails on any fresh allocation at every threshold, and
// a negative threshold disables the gate entirely.
func TestCompareAllocGate(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		membench("mmv2v/internal/world", "Refresh15vpl", 1000, 2000, 20),
		membench("mmv2v/internal/world", "LinkLookup", 10, 0, 0),
		membench("mmv2v/internal/traffic", "Step15vpl", 1000, 2000, 20),
	}}
	fresh := &Report{Benchmarks: []Benchmark{
		membench("mmv2v/internal/world", "Refresh15vpl", 1000, 2100, 30), // +50% allocs: regression
		membench("mmv2v/internal/world", "LinkLookup", 10, 16, 1),        // zero baseline: any alloc fails
		membench("mmv2v/internal/traffic", "Step15vpl", 1000, 2200, 22),  // +10%: within threshold
	}}
	regressions, compared := compare(base, fresh, 0.15, 0.25)
	if compared != 3 {
		t.Errorf("compared = %d, want 3", compared)
	}
	if len(regressions) != 3 {
		t.Fatalf("regressions = %v, want Refresh allocs/op plus both LinkLookup metrics", regressions)
	}
	joined := strings.Join(regressions, "\n")
	for _, want := range []string{
		"Refresh15vpl: 20 allocs/op -> 30 allocs/op",
		"LinkLookup: 0 B/op -> 16 B/op",
		"LinkLookup: 0 allocs/op -> 1 allocs/op",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}

	// The zero-alloc contract holds at any threshold.
	if regs, _ := compare(base, fresh, 10, 10); len(regs) != 2 {
		t.Errorf("huge thresholds must still fail the zero-alloc baseline, got %v", regs)
	}
	// Negative threshold turns the allocation gate off.
	if regs, _ := compare(base, fresh, 10, -1); len(regs) != 0 {
		t.Errorf("disabled alloc gate still regressed: %v", regs)
	}
}

// TestCompareAllocGateSkipsUnmeasured keeps partial runs partial: a fresh
// run without -benchmem metrics gates only ns/op even with the allocation
// gate enabled.
func TestCompareAllocGateSkipsUnmeasured(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		membench("mmv2v/internal/world", "Refresh15vpl", 1000, 2000, 20),
	}}
	fresh := &Report{Benchmarks: []Benchmark{
		bench("mmv2v/internal/world", "Refresh15vpl", 1000),
	}}
	regressions, compared := compare(base, fresh, 0.15, 0)
	if compared != 1 || len(regressions) != 0 {
		t.Errorf("compared = %d, regressions = %v; want 1 compared, none regressed", compared, regressions)
	}
}

// TestCompareAgainstCommittedBaseline keeps the gate wired to the real
// committed baseline: the pinned hot paths must parse out of the repo's
// BENCH_*.json with usable ns/op values.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_2026-08-09.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
	// A fresh run identical to the baseline must pass at any threshold,
	// with the allocation gate enabled at zero tolerance.
	regressions, compared := compare(&base, &base, 0, 0)
	if len(regressions) != 0 {
		t.Errorf("self-comparison regressed: %v", regressions)
	}
	if compared == 0 {
		t.Error("self-comparison compared no benchmarks; ns/op metrics missing from baseline")
	}
}
