package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mmv2v/internal/world
cpu: Example CPU @ 3.00GHz
BenchmarkRefresh15vpl-8   	     100	  11859939 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	mmv2v/internal/world	2.011s
pkg: mmv2v/internal/obs
BenchmarkNilRegistryCounterInc-8 	1000000000	         0.2504 ns/op
ok  	mmv2v/internal/obs	0.412s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Env["goos"]; got != "linux" {
		t.Errorf("env goos = %q, want linux", got)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "mmv2v/internal/world" || b.Name != "Refresh15vpl" || b.Procs != 8 {
		t.Errorf("benchmark[0] = %+v, want Refresh15vpl-8 in internal/world", b)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 11859939 ||
		b.Metrics["B/op"] != 12345 || b.Metrics["allocs/op"] != 67 {
		t.Errorf("benchmark[0] metrics = %+v", b)
	}
	o := rep.Benchmarks[1]
	if o.Pkg != "mmv2v/internal/obs" || o.Metrics["ns/op"] != 0.2504 {
		t.Errorf("benchmark[1] = %+v, want obs no-op result", o)
	}
}

func TestParseSubBenchmarkName(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkHistogram/observe-16 500 3.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Benchmarks[0]
	if b.Name != "Histogram/observe" || b.Procs != 16 {
		t.Errorf("sub-benchmark parsed as %+v", b)
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 1 ns/op\n")); err == nil {
		t.Error("malformed iteration count did not error")
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out, "2026-08-06"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"date": "2026-08-06"`, `"name": "Refresh15vpl"`, `"ns/op": 11859939`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out.String())
		}
	}
}
