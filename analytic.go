package mmv2v

import (
	"mmv2v/internal/analytic"
	"mmv2v/internal/channel"
	"mmv2v/internal/phy"
	"mmv2v/internal/units"
)

// Closed-form design models (internal/analytic), re-exported for downstream
// users who size deployments without running simulations.

// DiscoveryRatio returns Theorem 2's expected identified-neighbor ratio
// after k discovery rounds with transmitter probability p:
// 1 − [p² + (1−p)²]^k.
func DiscoveryRatio(p float64, k int) float64 { return analytic.DiscoveryRatio(p, k) }

// RoundsForRatio returns the smallest K reaching a target discovery ratio
// at p = 0.5.
func RoundsForRatio(target float64) int { return analytic.RoundsForRatio(target) }

// FrameBudget decomposes a protocol frame into SND/DCM/refinement/UDT.
type FrameBudget = analytic.FrameBudget

// Budget computes the frame airtime split for an operating point (K, M)
// with the paper's timing and codebook.
func Budget(k, m int) (FrameBudget, error) {
	return analytic.Budget(phy.DefaultTiming(), phy.DefaultCodebook(), k, m)
}

// LinkBudget is a boresight link evaluation at one distance.
type LinkBudget = analytic.LinkBudget

// Link evaluates the paper's channel at a distance for given 3 dB beam
// widths in radians (use DegToRad for degrees).
func Link(distM, txWidthRad, rxWidthRad float64) (LinkBudget, error) {
	return analytic.Link(channel.DefaultParams(), units.Meter(distM), units.Radian(txWidthRad), units.Radian(rxWidthRad))
}

// RangeForSNR returns the largest distance at which a boresight link still
// reaches the given SNR with the paper's channel.
func RangeForSNR(txWidthRad, rxWidthRad, minSNRdB float64) (float64, error) {
	rng, err := analytic.RangeForSNR(channel.DefaultParams(), units.Radian(txWidthRad), units.Radian(rxWidthRad), units.DB(minSNRdB))
	return rng.M(), err
}

// FramesToComplete returns how many dedicated frames a pair needs to move
// demandBits at rateBps under a frame budget.
func FramesToComplete(b FrameBudget, rateBps, demandBits float64) int {
	return analytic.FramesToComplete(b, rateBps, demandBits)
}

// DegToRad converts degrees to radians (beam widths in the public API are
// radians).
func DegToRad(deg float64) float64 { return deg * 3.141592653589793 / 180 }
