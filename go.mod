module mmv2v

go 1.22
