// Package mmv2v is a from-scratch Go reproduction of "mmV2V: Combating
// One-hop Multicasting in Millimeter-wave Vehicular Networks" (ICDCS 2022):
// a fully distributed one-hop multicasting (OHM) scheme for 60 GHz
// vehicular networks built from three protocols — Synchronized Neighbor
// Discovery (SND), Distributed Consensual Matching (DCM) and Unicast Data
// Transmission (UDT) — evaluated against a Random OHM Protocol (ROP) and an
// IEEE 802.11ad PBSS baseline on a microscopic traffic + mmWave channel
// simulator.
//
// This package is the public facade: scenario configuration, protocol
// parameters, single runs and trial pools, custom hand-placed scenarios,
// and the paper's full experiment suite (Fig. 6–9, Theorem 2, ablations).
// The substrates live in internal/ packages (see DESIGN.md for the map).
//
// Quick start:
//
//	cfg := mmv2v.DefaultScenario(15, 42) // 15 vehicles/lane/km, seed 42
//	res, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()))
//	if err != nil { ... }
//	fmt.Printf("OCR=%.3f ATP=%.3f DTP=%.3f\n",
//	    res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP)
package mmv2v

import (
	"fmt"

	"mmv2v/internal/baseline"
	"mmv2v/internal/core"
	"mmv2v/internal/faults"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// ScenarioConfig describes a simulation scenario: road traffic, channel,
// PHY timing, HRIE task demand and measurement windows.
type ScenarioConfig = sim.Config

// Result is the outcome of a run: per-vehicle OCR/ATP/DTP stats, pooled
// summaries and diagnostics.
type Result = sim.Result

// WindowResult carries the metrics of one measurement window.
type WindowResult = sim.WindowResult

// Summary aggregates per-vehicle metrics.
type Summary = metrics.Summary

// VehicleStats holds one vehicle's OCR, ATP and DTP for a window.
type VehicleStats = metrics.VehicleStats

// Params are the mmV2V protocol parameters (P, K, M, C, beam codebook).
type Params = core.Params

// ROPParams configure the Random OHM Protocol baseline.
type ROPParams = baseline.ROPParams

// ADParams configure the IEEE 802.11ad PBSS baseline.
type ADParams = baseline.ADParams

// FaultConfig parameterizes the deterministic fault-injection layer
// (control-frame loss, blockage bursts, radio churn, slot jitter). Assign
// one to ScenarioConfig.Faults to stress a run; see internal/faults.
type FaultConfig = faults.Config

// TrialError describes one trial abandoned by RunTrials after its retry
// budget: the scenario, trial index, derived seed, captured stack and a
// one-line repro command (TrialError.Repro). Collected in Result.Failures.
type TrialError = sim.TrialError

// Protocol is a runnable OHM scheme bound to a scenario environment.
type Protocol = sim.Protocol

// Factory constructs a protocol for an environment; obtain one from MMV2V,
// ROP, AD or Oracle.
type Factory = sim.Factory

// DefaultScenario returns the paper's scenario at a traffic density in
// vehicles/lane/km: a 1 km road with three 5 m lanes per direction, 40–80
// km/h speed bands, the 60 GHz channel of Sec. IV-A, 20 ms frames, and a
// 200 Mb/s-per-neighbor HRIE task measured over 1 s windows.
func DefaultScenario(densityVPL float64, seed uint64) ScenarioConfig {
	return sim.DefaultConfig(densityVPL, seed)
}

// GridConfig describes a Manhattan-grid road network for city-scale
// scenarios: Rows × Cols intersections, BlockM-long blocks, one directed
// segment per travel direction per edge. Assign one to
// ScenarioConfig.Grid (see GridScenario) to replace the straight road.
type GridConfig = traffic.GridConfig

// DefaultGridConfig returns an urban grid sized for the given vehicle
// count: 12×12 intersections, 500 m blocks, two lanes each way at 30–60 km/h.
func DefaultGridConfig(vehicles int) GridConfig { return traffic.DefaultGridConfig(vehicles) }

// GridScenario returns the paper's channel/task scenario moved onto a city
// road-graph network: same 60 GHz channel, frames and HRIE task, with the
// straight road replaced by the given grid.
func GridScenario(grid GridConfig, seed uint64) ScenarioConfig {
	cfg := sim.DefaultConfig(15, seed)
	cfg.Grid = &grid
	return cfg
}

// DefaultParams returns the paper's chosen mmV2V configuration:
// p=0.5, K=3, M=40, C=7, S=24 sectors, α=30°, β=12°, θ_min=3°.
func DefaultParams() Params { return core.DefaultParams() }

// DefaultROPParams returns the ROP baseline configuration.
func DefaultROPParams() ROPParams { return baseline.DefaultROPParams() }

// DefaultADParams returns the 802.11ad baseline configuration.
func DefaultADParams() ADParams { return baseline.DefaultADParams() }

// DefaultFaultConfig returns the standard intensity-1 stress profile; use
// FaultConfig.Scale to sweep intensity (Scale(0) disables everything).
func DefaultFaultConfig() FaultConfig { return faults.DefaultConfig() }

// MMV2V returns a factory for the paper's protocol.
func MMV2V(p Params) Factory { return core.Factory(p) }

// ROP returns a factory for the Random OHM Protocol baseline.
func ROP(p ROPParams) Factory { return baseline.ROPFactory(p) }

// AD returns a factory for the IEEE 802.11ad baseline.
func AD(p ADParams) Factory { return baseline.ADFactory(p) }

// Oracle returns a factory for the centralized greedy matching upper bound.
func Oracle(p Params) Factory { return core.OracleFactory(p) }

// Run executes one scenario under a protocol.
func Run(cfg ScenarioConfig, f Factory) (*Result, error) { return sim.Run(cfg, f) }

// RunTrials repeats a scenario with derived seeds and pools the per-vehicle
// stats, mirroring the paper's repeated-experiment methodology.
func RunTrials(cfg ScenarioConfig, f Factory, trials int) (*Result, error) {
	return sim.RunTrials(cfg, f, trials)
}

// Resume continues a single trial from a snapshot file written under
// ScenarioConfig.Checkpoint, producing a Result byte-identical to the run
// the interrupted trial would have produced (DESIGN.md §11). cfg must
// describe the same scenario the snapshot was taken under; the snapshot's
// stored per-trial seed overrides cfg.Seed.
func Resume(cfg ScenarioConfig, f Factory, path string) (*Result, error) {
	return sim.Resume(cfg, f, path)
}

// CheckpointPath returns the snapshot file a given trial writes inside a
// checkpoint directory (ScenarioConfig.Checkpoint).
func CheckpointPath(dir string, trial int) string { return sim.CheckpointPath(dir, trial) }

// Direction of travel for custom scenarios.
type Direction = traffic.Direction

// Travel directions.
const (
	Eastbound = traffic.Eastbound
	Westbound = traffic.Westbound
)

// VehicleSpec places one vehicle in a custom scenario.
type VehicleSpec struct {
	// Dir is the travel direction.
	Dir Direction
	// Lane is the lane index, 0 (outermost) to LanesPerDir-1.
	Lane int
	// PositionM is the arc position along the direction of travel (m).
	PositionM float64
	// SpeedMS is the initial and desired speed (m/s).
	SpeedMS float64
}

// RunCustom executes a protocol over hand-placed vehicles instead of
// density-generated traffic (useful for platoons and controlled
// experiments). The scenario's Traffic.DensityVPL is ignored; its road
// geometry, channel, task and window settings apply. Vehicles keep their
// given speeds as desired speeds and follow the car-following model.
func RunCustom(cfg ScenarioConfig, vehicles []VehicleSpec, f Factory) (*Result, error) {
	if len(vehicles) == 0 {
		return nil, fmt.Errorf("mmv2v: no vehicles in custom scenario")
	}
	tc := cfg.Traffic
	tc.DensityVPL = 0
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	road, err := traffic.New(tc, xrand.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	for _, v := range vehicles {
		if v.Lane < 0 || v.Lane >= tc.LanesPerDir {
			return nil, fmt.Errorf("mmv2v: lane %d outside [0, %d)", v.Lane, tc.LanesPerDir)
		}
		road.Add(&traffic.Vehicle{
			Dir:      v.Dir,
			Lane:     v.Lane,
			S:        v.PositionM,
			V:        v.SpeedMS,
			DesiredV: v.SpeedMS,
			Quantile: 0.5,
		})
	}
	return runOnRoad(cfg, road, f)
}

// runOnRoad runs the window loop of sim.Run over a pre-built road.
func runOnRoad(cfg ScenarioConfig, road *traffic.Road, f Factory) (*Result, error) {
	if err := cfg.World.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	dt := cfg.Timing.PositionUpdate.Seconds()
	for t := 0.0; t < cfg.WarmupSec; t += dt {
		road.Step(dt)
	}
	w, err := world.New(cfg.World, road)
	if err != nil {
		return nil, err
	}
	env, err := sim.NewEnvWithWorld(cfg, w)
	if err != nil {
		return nil, err
	}
	return sim.RunOnEnv(cfg, env, f)
}
