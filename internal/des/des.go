// Package des implements the discrete-event simulation kernel the rest of
// the system runs on: a virtual clock, a binary-heap event queue with
// deterministic tie-breaking, and helpers for periodic processes.
//
// The paper evaluates mmV2V on VENUS, a closed-source vehicular network
// simulator; this package is the event-scheduling substrate of our
// replacement. Determinism matters: events scheduled for the same instant
// fire in scheduling order (FIFO by sequence number), so a simulation is a
// pure function of its configuration and seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Infinity is a sentinel timestamp later than any schedulable event.
const Infinity Time = math.MaxInt64

// At constructs a Time from a time.Duration offset from the simulation start.
func At(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d.Nanoseconds()) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the timestamp as a duration from the simulation start.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return time.Duration(t).String()
}

// event is a scheduled callback. seq breaks ties between events at the same
// timestamp so execution order is deterministic and FIFO.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	name string
	// canceled marks an event removed via its Handle; it is skipped when
	// popped rather than being deleted from the heap eagerly.
	canceled bool
	index    int
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("des: pushed non-event %T", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Handle identifies a scheduled event and allows canceling it.
type Handle struct {
	ev *event
}

// Cancel prevents the event from running. Canceling an already-executed or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

// Simulator is the discrete-event engine. The zero value is ready to use.
// Simulator is not safe for concurrent use; the simulation is single-threaded
// by design (determinism over parallelism).
type Simulator struct {
	queue    eventQueue
	now      Time
	seq      uint64
	executed uint64
	running  bool
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events run so far (for diagnostics).
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled (including
// canceled events not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Drained reports whether no live event remains scheduled: canceled
// events awaiting lazy reaping do not count. A drained simulator's future
// behavior is fully determined by (Now, Executed) plus whatever its
// owners schedule next, which is what makes a checkpoint at a drained
// instant exact (DESIGN.md §11).
func (s *Simulator) Drained() bool {
	for _, ev := range s.queue {
		if !ev.canceled {
			return false
		}
	}
	return true
}

// Restore forces the clock and executed-event counter of a fresh
// simulator to a previously checkpointed position. It is only valid on a
// simulator that has never scheduled or run anything; restoring a
// simulator with queued events would silently invalidate their
// timestamps, so that is an error.
func (s *Simulator) Restore(now Time, executed uint64) error {
	if len(s.queue) != 0 || s.running || s.seq != 0 {
		return fmt.Errorf("des: Restore on a used simulator (%d queued, seq %d)", len(s.queue), s.seq)
	}
	if now < 0 {
		return fmt.Errorf("des: Restore to negative time %d", now)
	}
	s.now = now
	s.executed = executed
	return nil
}

// ScheduleAt runs fn at the given absolute time. Scheduling in the past
// (before Now) is a programming error and panics. The name is used only for
// diagnostics.
func (s *Simulator) ScheduleAt(at Time, name string, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule %q at %v before now %v", name, at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn, name: name}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// ScheduleAfter runs fn d after the current time.
func (s *Simulator) ScheduleAfter(d time.Duration, name string, fn func()) Handle {
	return s.ScheduleAt(s.now.Add(d), name, fn)
}

// Every schedules fn to run at start, start+period, start+2·period, …
// until (and excluding) end, or forever if end is Infinity. fn receives the
// tick index starting at 0. The returned Handle cancels the *next* pending
// occurrence and all subsequent ones.
func (s *Simulator) Every(start Time, period time.Duration, end Time, name string, fn func(tick int)) Handle {
	if period <= 0 {
		panic(fmt.Sprintf("des: non-positive period %v for %q", period, name))
	}
	// controller owns the live handle so cancellation survives rescheduling.
	ctl := &event{}
	var schedule func(at Time, tick int)
	schedule = func(at Time, tick int) {
		if at >= end {
			return
		}
		h := s.ScheduleAt(at, name, func() {
			if ctl.canceled {
				return
			}
			fn(tick)
			schedule(at.Add(period), tick+1)
		})
		// Propagate cancellation to the pending occurrence.
		if ctl.canceled {
			h.Cancel()
		}
	}
	schedule(start, 0)
	return Handle{ev: ctl}
}

// Run executes events in timestamp order until the queue is empty or the
// next event is at or after until. The clock is left at the time of the last
// executed event, or advanced to until if given a finite bound.
func (s *Simulator) Run(until Time) {
	if s.running {
		panic("des: reentrant Run")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at >= until {
			break
		}
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			panic("des: heap corrupted")
		}
		if popped.canceled {
			continue
		}
		s.now = popped.at
		popped.fn()
		s.executed++
	}
	if until != Infinity && until > s.now {
		s.now = until
	}
}

// RunAll executes every scheduled event.
func (s *Simulator) RunAll() { s.Run(Infinity) }

// Step executes exactly one event if any is pending and returns whether an
// event ran.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			panic("des: heap corrupted")
		}
		if popped.canceled {
			continue
		}
		s.now = popped.at
		popped.fn()
		s.executed++
		return true
	}
	return false
}
