package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tm := At(20 * time.Millisecond)
	if tm != Time(20_000_000) {
		t.Errorf("At(20ms) = %d", tm)
	}
	if got := tm.Add(5 * time.Millisecond); got != Time(25_000_000) {
		t.Errorf("Add = %d", got)
	}
	if got := tm.Sub(At(15 * time.Millisecond)); got != 5*time.Millisecond {
		t.Errorf("Sub = %v", got)
	}
	if got := At(time.Second).Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
	if Infinity.String() != "+inf" {
		t.Errorf("Infinity.String = %q", Infinity.String())
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.ScheduleAt(At(30*time.Microsecond), "c", func() { order = append(order, 3) })
	s.ScheduleAt(At(10*time.Microsecond), "a", func() { order = append(order, 1) })
	s.ScheduleAt(At(20*time.Microsecond), "b", func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != At(30*time.Microsecond) {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Executed() != 3 {
		t.Errorf("Executed = %d", s.Executed())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(At(time.Millisecond), "tie", func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleAfterNesting(t *testing.T) {
	s := New()
	var times []Time
	s.ScheduleAfter(time.Millisecond, "outer", func() {
		times = append(times, s.Now())
		s.ScheduleAfter(time.Millisecond, "inner", func() {
			times = append(times, s.Now())
		})
	})
	s.RunAll()
	if len(times) != 2 || times[0] != At(time.Millisecond) || times[1] != At(2*time.Millisecond) {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := New()
	ran := 0
	s.ScheduleAt(At(time.Millisecond), "early", func() { ran++ })
	s.ScheduleAt(At(3*time.Millisecond), "late", func() { ran++ })
	s.Run(At(2 * time.Millisecond))
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if s.Now() != At(2*time.Millisecond) {
		t.Errorf("Now = %v, want 2ms", s.Now())
	}
	s.RunAll()
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestEventAtBoundaryNotRun(t *testing.T) {
	s := New()
	ran := false
	s.ScheduleAt(At(time.Millisecond), "boundary", func() { ran = true })
	s.Run(At(time.Millisecond))
	if ran {
		t.Error("event at until-boundary should not run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.ScheduleAt(At(time.Millisecond), "x", func() { ran = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	s.RunAll()
	if ran {
		t.Error("canceled event ran")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.ScheduleAt(At(time.Millisecond), "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.ScheduleAt(0, "past", func() {})
	})
	s.RunAll()
}

func TestEvery(t *testing.T) {
	s := New()
	var ticks []int
	var at []Time
	s.Every(At(time.Millisecond), 5*time.Millisecond, At(20*time.Millisecond), "tick", func(tick int) {
		ticks = append(ticks, tick)
		at = append(at, s.Now())
	})
	s.RunAll()
	if len(ticks) != 4 {
		t.Fatalf("ticks = %v, want 4 entries", ticks)
	}
	for i, tk := range ticks {
		if tk != i {
			t.Errorf("tick %d = %d", i, tk)
		}
	}
	if at[3] != At(16*time.Millisecond) {
		t.Errorf("last tick at %v, want 16ms", at[3])
	}
}

func TestEveryCancelMidway(t *testing.T) {
	s := New()
	count := 0
	var h Handle
	h = s.Every(0, time.Millisecond, Infinity, "tick", func(tick int) {
		count++
		if tick == 2 {
			h.Cancel()
		}
	})
	s.Run(At(100 * time.Millisecond))
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every with zero period should panic")
		}
	}()
	New().Every(0, 0, Infinity, "bad", func(int) {})
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.ScheduleAt(At(time.Millisecond), "a", func() { n++ })
	s.ScheduleAt(At(2*time.Millisecond), "b", func() { n++ })
	if !s.Step() || n != 1 {
		t.Errorf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Errorf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestPendingCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.ScheduleAt(At(time.Millisecond), "e", func() {})
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.RunAll()
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	// Events scheduled in arbitrary order always execute in time order.
	f := func(offsets []uint32) bool {
		s := New()
		var fired []Time
		for _, off := range offsets {
			at := Time(off % 1_000_000)
			s.ScheduleAt(at, "r", func() { fired = append(fired, s.Now()) })
		}
		s.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	s := New()
	s.ScheduleAt(At(time.Millisecond), "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run should panic")
			}
		}()
		s.RunAll()
	})
	s.RunAll()
}
