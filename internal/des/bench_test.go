package des

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for k := 0; k < 1000; k++ {
			s.ScheduleAt(At(time.Duration(k)*time.Microsecond), "e", func() {})
		}
		s.RunAll()
	}
}

func BenchmarkNestedScheduling(b *testing.B) {
	// The simulator's hot pattern: each event schedules the next.
	for i := 0; i < b.N; i++ {
		s := New()
		n := 0
		var next func()
		next = func() {
			n++
			if n < 1000 {
				s.ScheduleAfter(time.Microsecond, "chain", next)
			}
		}
		s.ScheduleAfter(time.Microsecond, "chain", next)
		s.RunAll()
	}
}

func BenchmarkEvery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		s.Every(0, time.Millisecond, At(time.Second), "tick", func(int) {})
		s.RunAll()
	}
}
