package sim_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"mmv2v/internal/obs"
	"mmv2v/internal/sim"
)

// seriesJSONL renders a result's pooled series as the canonical export.
func seriesJSONL(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	if res.Series == nil {
		t.Fatal("Series run returned nil Series")
	}
	var buf bytes.Buffer
	if err := obs.WriteSeriesJSONL(&buf, obs.SeriesRows(res.Series.Points(), "test")); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunTrialsSeriesIdenticalAcrossWorkers pins the series-merge contract:
// the pooled windowed export is byte-identical for any worker count.
func TestRunTrialsSeriesIdenticalAcrossWorkers(t *testing.T) {
	const trials = 4
	run := func(workers int) []byte {
		cfg := sim.DefaultConfig(10, 22)
		cfg.WindowSec = 0.1
		cfg.Windows = 3
		cfg.Workers = workers
		cfg.Series = true
		res, err := sim.RunTrials(cfg, greedyFactory(), trials)
		if err != nil {
			t.Fatal(err)
		}
		if res.Series.Len() != cfg.Windows {
			t.Fatalf("pooled series has %d windows, want %d", res.Series.Len(), cfg.Windows)
		}
		return seriesJSONL(t, res)
	}
	one := run(1)
	eight := run(8)
	if len(one) == 0 {
		t.Fatal("series run exported no rows")
	}
	if !bytes.Equal(one, eight) {
		t.Fatalf("series exports differ:\nworkers=1:\n%s\nworkers=8:\n%s", one, eight)
	}
}

// TestSeriesOffKeepsNil pins the zero-cost default, and that Series alone
// (Stats off) still brings up the registry it samples.
func TestSeriesOffKeepsNil(t *testing.T) {
	cfg := sim.DefaultConfig(5, 23)
	cfg.WindowSec = 0.1
	res, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Fatal("Series should be nil when Config.Series is off")
	}

	cfg.Series = true
	res, err = sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || res.Obs == nil {
		t.Fatal("Series run should carry both the series and the registry it samples")
	}
	if res.Series.Len() != cfg.Windows {
		t.Fatalf("series has %d windows, want %d", res.Series.Len(), cfg.Windows)
	}
}

// countingMonitor records callback arrivals under a mutex (callbacks fire
// from worker goroutines).
type countingMonitor struct {
	mu         sync.Mutex
	windows    int
	trials     int
	maxWindows int
}

func (m *countingMonitor) WindowDone(trial, window, windows int, rows []obs.Row, points []obs.SeriesPoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windows++
	m.maxWindows = windows
	if len(points) != window+1 {
		panic("monitor saw a series with the wrong number of windows")
	}
}

func (m *countingMonitor) TrialDone(trial int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trials++
}

// TestMonitorObservesWithoutPerturbing pins the observation contract: a
// monitored run fires the expected callbacks and produces output
// byte-identical to an unmonitored one.
func TestMonitorObservesWithoutPerturbing(t *testing.T) {
	const trials = 3
	base := sim.DefaultConfig(10, 24)
	base.WindowSec = 0.1
	base.Windows = 2
	base.Series = true
	base.Workers = 4

	clean, err := sim.RunTrials(base, greedyFactory(), trials)
	if err != nil {
		t.Fatal(err)
	}

	mon := &countingMonitor{}
	monitored := base
	monitored.Monitor = mon
	res, err := sim.RunTrials(monitored, greedyFactory(), trials)
	if err != nil {
		t.Fatal(err)
	}

	if mon.windows != trials*base.Windows {
		t.Errorf("WindowDone fired %d times, want %d", mon.windows, trials*base.Windows)
	}
	if mon.trials != trials {
		t.Errorf("TrialDone fired %d times, want %d", mon.trials, trials)
	}
	if mon.maxWindows != base.Windows {
		t.Errorf("WindowDone reported %d total windows, want %d", mon.maxWindows, base.Windows)
	}
	if !reflect.DeepEqual(clean.Windows, res.Windows) {
		t.Fatal("monitoring changed the window results")
	}
	if got, want := seriesJSONL(t, res), seriesJSONL(t, clean); !bytes.Equal(got, want) {
		t.Fatalf("monitoring changed the series export:\nmonitored:\n%s\nclean:\n%s", got, want)
	}
}
