package sim_test

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"mmv2v/internal/sim"
)

func TestRunnerDefaultsToGOMAXPROCS(t *testing.T) {
	if w := sim.NewRunner(0).Workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := sim.NewRunner(3).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
}

func TestRunnerDoBoundsConcurrency(t *testing.T) {
	const workers, jobs = 2, 16
	r := sim.NewRunner(workers)
	var cur, max int64
	var mu sync.Mutex
	err := r.Do(jobs, func(int) error {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > max {
			max = n
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", max, workers)
	}
}

func TestRunnerDoReturnsLowestIndexError(t *testing.T) {
	r := sim.NewRunner(4)
	errA, errB := errors.New("job 2"), errors.New("job 5")
	err := r.Do(8, func(i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Errorf("err = %v, want lowest-index error %v", err, errA)
	}
}

func TestGatherRunsAllJobs(t *testing.T) {
	var n int64
	if err := sim.Gather(10, func(int) error {
		atomic.AddInt64(&n, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("ran %d jobs, want 10", n)
	}
	want := errors.New("boom")
	if err := sim.Gather(3, func(i int) error {
		if i == 1 {
			return want
		}
		return nil
	}); err != want {
		t.Errorf("err = %v, want %v", err, want)
	}
}

// TestRunTrialsDeterministicAcrossWorkers pins the parallel engine's core
// contract: with the same seed, the pooled Result is bit-identical for any
// worker count, because trials are independently seeded and merged in trial
// order.
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	const trials = 4
	var results []*sim.Result
	for _, workers := range []int{1, 4, 8} {
		c := cfg
		c.Workers = workers
		res, err := sim.RunTrials(c, greedyFactory(), trials)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("Workers=1 and Workers=%d results differ", []int{1, 4, 8}[i])
		}
	}
}

func TestConfigValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := sim.DefaultConfig(10, 1)
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Workers should fail validation")
	}
}
