package sim_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mmv2v/internal/sim"
	"mmv2v/internal/xrand"
)

func TestRunnerDefaultsToGOMAXPROCS(t *testing.T) {
	if w := sim.NewRunner(0).Workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := sim.NewRunner(3).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
}

func TestRunnerDoBoundsConcurrency(t *testing.T) {
	const workers, jobs = 2, 16
	r := sim.NewRunner(workers)
	var cur, max int64
	var mu sync.Mutex
	err := r.Do(jobs, func(int) error {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > max {
			max = n
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", max, workers)
	}
}

func TestRunnerDoJoinsAllErrorsLowestFirst(t *testing.T) {
	r := sim.NewRunner(4)
	errA, errB := errors.New("job 2 failed"), errors.New("job 5 failed")
	err := r.Do(8, func(i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want both job errors wrapped", err)
	}
	msg := err.Error()
	if ia, ib := strings.Index(msg, errA.Error()), strings.Index(msg, errB.Error()); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("err = %q, want lowest-index error first", msg)
	}
}

func TestGatherRunsAllJobs(t *testing.T) {
	var n int64
	if err := sim.Gather(10, func(int) error {
		atomic.AddInt64(&n, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("ran %d jobs, want 10", n)
	}
	want := errors.New("boom")
	if err := sim.Gather(3, func(i int) error {
		if i == 1 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Errorf("err = %v, want wrapped %v", err, want)
	}
}

// TestRunTrialsDeterministicAcrossWorkers pins the parallel engine's core
// contract: with the same seed, the pooled Result is bit-identical for any
// worker count, because trials are independently seeded and merged in trial
// order.
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	const trials = 4
	var results []*sim.Result
	for _, workers := range []int{1, 4, 8} {
		c := cfg
		c.Workers = workers
		res, err := sim.RunTrials(c, greedyFactory(), trials)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("Workers=1 and Workers=%d results differ", []int{1, 4, 8}[i])
		}
	}
}

// panicOnSeed wraps a factory so the trial whose derived scenario seed
// matches badSeed panics — deterministically, regardless of worker count.
func panicOnSeed(base sim.Factory, badSeed uint64) sim.Factory {
	return func(env *sim.Env) sim.Protocol {
		if env.Seed == badSeed {
			panic("deliberate test panic")
		}
		return base(env)
	}
}

// TestRunTrialsRecoversPanicIntoTrialError pins the crash-isolation
// contract: a panicking trial becomes a structured TrialError carrying
// scenario, trial index, derived seed and stack, while the remaining
// trials complete and merge.
func TestRunTrialsRecoversPanicIntoTrialError(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	cfg.Workers = 4
	const trials = 4
	badSeed := xrand.Mix(cfg.Seed, 1)
	res, err := sim.RunTrials(cfg, panicOnSeed(greedyFactory(), badSeed), trials)
	if err != nil {
		t.Fatalf("partial failure must not fail the run: %v", err)
	}
	if res.Trials != trials-1 {
		t.Errorf("Trials = %d, want %d survivors", res.Trials, trials-1)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("Failures = %d, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	if f.Trial != 1 || f.Seed != badSeed || f.BaseSeed != cfg.Seed {
		t.Errorf("TrialError = trial %d seed %#x base %#x, want trial 1 seed %#x base %#x",
			f.Trial, f.Seed, f.BaseSeed, badSeed, cfg.Seed)
	}
	if !strings.Contains(f.Scenario, "density=10") {
		t.Errorf("Scenario = %q, want density context", f.Scenario)
	}
	if !strings.Contains(f.Stack, "goroutine") {
		t.Errorf("Stack not captured: %q", f.Stack)
	}
	var pe *sim.PanicError
	if !errors.As(f, &pe) || pe.Value != "deliberate test panic" {
		t.Errorf("Unwrap chain lost the panic: %v", f.Err)
	}
	if repro := f.Repro(); !strings.Contains(repro, "-seed 5") || !strings.Contains(repro, "-trials 2") {
		t.Errorf("Repro = %q, want -seed 5 -trials 2", repro)
	}
}

// TestRunTrialsRetryRecoversFlakyTrial checks the bounded retry policy: a
// trial that fails on its first attempt only is salvaged and counted.
func TestRunTrialsRetryRecoversFlakyTrial(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	cfg.Workers = 2
	cfg.Retry = 1
	badSeed := xrand.Mix(cfg.Seed, 2)
	var tripped atomic.Bool
	factory := func(env *sim.Env) sim.Protocol {
		if env.Seed == badSeed && tripped.CompareAndSwap(false, true) {
			panic("flaky first attempt")
		}
		return greedyFactory()(env)
	}
	res, err := sim.RunTrials(cfg, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 3 || res.Retried != 1 || len(res.Failures) != 0 {
		t.Errorf("Trials/Retried/Failures = %d/%d/%d, want 3/1/0",
			res.Trials, res.Retried, len(res.Failures))
	}
}

// TestRunTrialsAllFailedReturnsJoinedError: when every trial fails, the
// run fails with the join of all TrialErrors, lowest trial first.
func TestRunTrialsAllFailedReturnsJoinedError(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	cfg.Workers = 4
	factory := func(*sim.Env) sim.Protocol { panic("always down") }
	res, err := sim.RunTrials(cfg, sim.Factory(factory), 3)
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v, want nil result and joined error", res, err)
	}
	var te *sim.TrialError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TrialError in chain", err)
	}
	msg := err.Error()
	if i0, i2 := strings.Index(msg, "trial 0"), strings.Index(msg, "trial 2"); i0 < 0 || i2 < 0 || i0 > i2 {
		t.Errorf("joined error %q not in trial order", msg)
	}
}

func TestConfigValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := sim.DefaultConfig(10, 1)
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Workers should fail validation")
	}
}
