package sim_test

import (
	"testing"
	"time"

	"mmv2v/internal/metrics"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
	"mmv2v/internal/udt"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// nullProtocol does nothing; frames pass with no transmissions.
type nullProtocol struct {
	frames []int
}

func (n *nullProtocol) Name() string           { return "null" }
func (n *nullProtocol) RunFrame(frame int)     { n.frames = append(n.frames, frame) }
func nullFactory(np *nullProtocol) sim.Factory { return func(*sim.Env) sim.Protocol { return np } }

// greedyAll is a minimal protocol that pairs every LOS neighbor pair it can
// (greedy by index) and streams for the full frame — used to exercise the
// runner end to end without the full mmV2V stack.
type greedyAll struct {
	env     *sim.Env
	session *udt.Session
	cb      phy.Codebook
}

func (g *greedyAll) Name() string { return "greedy-test" }

func (g *greedyAll) RunFrame(frame int) {
	if g.session != nil {
		g.session.Stop()
		g.session = nil
	}
	used := make(map[int]bool)
	var pairs []udt.Pair
	for i := 0; i < g.env.N(); i++ {
		if used[i] {
			continue
		}
		for _, j := range g.env.World.Neighbors(i) {
			if used[j] || g.env.PairDone(i, j) {
				continue
			}
			beamA, beamB := udt.RefineBeams(g.env, i, j, g.cb, -1, -1)
			pairs = append(pairs, udt.Pair{A: i, B: j, BeamA: beamA, BeamB: beamB})
			used[i] = true
			used[j] = true
			break
		}
	}
	if len(pairs) > 0 {
		g.session = udt.Start(g.env, pairs, frame)
	}
}

func greedyFactory() sim.Factory {
	return func(env *sim.Env) sim.Protocol {
		g := &greedyAll{env: env, cb: phy.DefaultCodebook()}
		env.OnRefresh(func() {
			if g.session != nil {
				g.session.OnRefresh()
			}
		})
		return g
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*sim.Config)
	}{
		{"bad traffic", func(c *sim.Config) { c.Traffic.Length = -1 }},
		{"bad world", func(c *sim.Config) { c.World.CommRange = 0 }},
		{"bad timing", func(c *sim.Config) { c.Timing.Frame = 0 }},
		{"negative demand", func(c *sim.Config) { c.DemandBits = -1 }},
		{"zero window", func(c *sim.Config) { c.WindowSec = 0 }},
		{"zero windows", func(c *sim.Config) { c.Windows = 0 }},
		{"negative warmup", func(c *sim.Config) { c.WarmupSec = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := sim.DefaultConfig(10, 1)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	if err := sim.DefaultConfig(10, 1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRunInvokesFramesInOrder(t *testing.T) {
	cfg := sim.DefaultConfig(5, 1)
	cfg.WindowSec = 0.2 // 10 frames
	cfg.WarmupSec = 0
	np := &nullProtocol{}
	res, err := sim.Run(cfg, nullFactory(np))
	if err != nil {
		t.Fatal(err)
	}
	if len(np.frames) != 10 {
		t.Fatalf("frames = %v", np.frames)
	}
	for i, f := range np.frames {
		if f != i {
			t.Errorf("frame %d reported as %d", i, f)
		}
	}
	if res.Protocol != "null" {
		t.Errorf("protocol = %q", res.Protocol)
	}
}

func TestRunMultipleWindowsContinueFrameNumbers(t *testing.T) {
	cfg := sim.DefaultConfig(5, 1)
	cfg.WindowSec = 0.1 // 5 frames per window
	cfg.Windows = 3
	cfg.WarmupSec = 0
	np := &nullProtocol{}
	res, err := sim.Run(cfg, nullFactory(np))
	if err != nil {
		t.Fatal(err)
	}
	if len(np.frames) != 15 {
		t.Fatalf("frames = %d, want 15", len(np.frames))
	}
	if np.frames[14] != 14 {
		t.Errorf("last frame = %d, want 14", np.frames[14])
	}
	if len(res.Windows) != 3 {
		t.Errorf("windows = %d", len(res.Windows))
	}
}

func TestNullProtocolScoresZero(t *testing.T) {
	cfg := sim.DefaultConfig(10, 2)
	cfg.WindowSec = 0.1
	res, err := sim.Run(cfg, nullFactory(&nullProtocol{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanOCR != 0 || res.Summary.MeanATP != 0 {
		t.Errorf("null protocol scored %+v", res.Summary)
	}
	if res.AvgNeighbors <= 0 {
		t.Errorf("avg neighbors = %v", res.AvgNeighbors)
	}
}

func TestGreedyProtocolMakesProgress(t *testing.T) {
	cfg := sim.DefaultConfig(10, 3)
	cfg.WindowSec = 0.2
	res, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanATP <= 0 {
		t.Error("greedy test protocol made no progress")
	}
}

func TestLedgerResetBetweenWindows(t *testing.T) {
	cfg := sim.DefaultConfig(10, 4)
	cfg.WindowSec = 0.2
	cfg.Windows = 2
	res, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	// Each window's metrics must be from a fresh ledger: with identical
	// traffic continuing, window 2 cannot inherit window 1's completions
	// (progress would then be ≈ double).
	w0 := res.Windows[0].Summary.MeanATP
	w1 := res.Windows[1].Summary.MeanATP
	if w1 > 2.5*w0+0.2 {
		t.Errorf("window ATPs implausible: %v then %v (ledger leak?)", w0, w1)
	}
}

func TestRunTrialsDistinctSeeds(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	res, err := sim.RunTrials(cfg, greedyFactory(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	// Trials use different seeds, so traffic differs: window summaries
	// should not all be byte-identical.
	a, b, c := res.Windows[0].Summary, res.Windows[1].Summary, res.Windows[2].Summary
	if a == b && b == c {
		t.Error("all trials produced identical summaries; seeds not varied?")
	}
}

func TestRunTrialsInvalidCount(t *testing.T) {
	cfg := sim.DefaultConfig(5, 1)
	if _, err := sim.RunTrials(cfg, nullFactory(&nullProtocol{}), 0); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestEnvPairDoneThreshold(t *testing.T) {
	cfg := sim.DefaultConfig(5, 6)
	env, err := sim.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.PairDone(0, 1) {
		t.Error("pair done before any exchange")
	}
	env.Ledger.Add(0, 1, cfg.DemandBits)
	if !env.PairDone(0, 1) {
		t.Error("pair not done after full demand")
	}
}

func TestEnvRefreshHooks(t *testing.T) {
	cfg := sim.DefaultConfig(5, 7)
	cfg.WindowSec = 0.1 // 5 frames = 20 ticks
	cfg.WarmupSec = 0
	hookCalls := 0
	_, err := sim.Run(cfg, func(env *sim.Env) sim.Protocol {
		env.OnRefresh(func() { hookCalls++ })
		return &nullProtocol{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookCalls != 20 {
		t.Errorf("hook calls = %d, want 20 (one per 5 ms tick)", hookCalls)
	}
}

func TestWindowTooSmallForFrame(t *testing.T) {
	cfg := sim.DefaultConfig(5, 1)
	cfg.WindowSec = 0.01 // below one 20 ms frame
	if _, err := sim.Run(cfg, nullFactory(&nullProtocol{})); err == nil {
		t.Error("want error for window smaller than a frame")
	}
}

func TestNewEnvWithWorldCustom(t *testing.T) {
	tc := traffic.DefaultConfig(0)
	road, err := traffic.New(tc, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: 1, S: 0, V: 10, DesiredV: 10})
	road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: 1, S: 30, V: 10, DesiredV: 10})
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(0, 9)
	env, err := sim.NewEnvWithWorld(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if env.N() != 2 {
		t.Errorf("N = %d", env.N())
	}
	res, err := sim.RunOnEnv(cfg, env, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanATP <= 0 {
		t.Error("custom world made no progress")
	}
}

func TestDriveFramesRespectsFirstFrame(t *testing.T) {
	cfg := sim.DefaultConfig(5, 10)
	env, err := sim.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	np := &nullProtocol{}
	env.DriveFrames(np, 7, 3)
	if len(np.frames) != 3 || np.frames[0] != 7 || np.frames[2] != 9 {
		t.Errorf("frames = %v", np.frames)
	}
	if env.Sim.Now() != 0 { // 3 frames elapsed
		if env.Sim.Now().Sub(0) != 3*cfg.Timing.Frame {
			t.Errorf("clock at %v", env.Sim.Now())
		}
	}
}

// metricsSanity double-checks VehicleStats wiring through the runner.
func TestStatsComeFromWindowStartNeighbors(t *testing.T) {
	cfg := sim.DefaultConfig(10, 11)
	cfg.WindowSec = 0.1
	res, err := sim.Run(cfg, nullFactory(&nullProtocol{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		if s.Neighbors <= 0 {
			t.Errorf("vehicle %d has %d neighbors in stats", s.Vehicle, s.Neighbors)
		}
	}
	var _ []metrics.VehicleStats = res.Stats
	_ = time.Second
}
