package sim_test

import (
	"math"
	"reflect"
	"testing"

	"mmv2v/internal/faults"
	"mmv2v/internal/sim"
)

// TestFaultsDisabledIsExactNoOp pins the acceptance criterion that a
// zero-intensity fault config changes nothing: the simulator skips injector
// construction entirely, so the Result is deeply identical to a run with no
// fault config at all.
func TestFaultsDisabledIsExactNoOp(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	clean, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	zero := faults.Config{}
	cfg.Faults = &zero
	withZero, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, withZero) {
		t.Error("zero fault config changed the result; must be an exact no-op")
	}
	scaled := faults.DefaultConfig().Scale(0)
	cfg.Faults = &scaled
	withScaled, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, withScaled) {
		t.Error("Scale(0) fault config changed the result; must be an exact no-op")
	}
}

// TestFaultedRunTrialsDeterministicAcrossWorkers extends the parallel-engine
// determinism contract to fault injection: every fault decision is a pure
// function of (seed, entity, time), so fault-injected pooled results are
// bit-identical for any worker count.
func TestFaultedRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := sim.DefaultConfig(10, 5)
	cfg.WindowSec = 0.1
	profile := faults.DefaultConfig()
	cfg.Faults = &profile
	const trials = 4
	var results []*sim.Result
	for _, workers := range []int{1, 4, 8} {
		c := cfg
		c.Workers = workers
		res, err := sim.RunTrials(c, greedyFactory(), trials)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("faulted Workers=1 and Workers=%d results differ", []int{1, 4, 8}[i])
		}
	}
}

// TestFaultsDegradeCompletion is the graceful-degradation sanity check: the
// full-intensity profile must hurt (or at least never help) the completion
// metrics relative to a clean channel, and the injector must actually fire.
func TestFaultsDegradeCompletion(t *testing.T) {
	cfg := sim.DefaultConfig(15, 3)
	cfg.WindowSec = 0.2
	clean, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	profile := faults.DefaultConfig()
	cfg.Faults = &profile
	faulted, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Summary.MeanATP > clean.Summary.MeanATP {
		t.Errorf("faults improved ATP: clean %v, faulted %v",
			clean.Summary.MeanATP, faulted.Summary.MeanATP)
	}
	if lat := clean.MeanLatencySec(); !math.IsNaN(lat) && lat < 0 {
		t.Errorf("negative mean latency %v", lat)
	}
}
