package sim

import "mmv2v/internal/obs"

// Monitor observes a run live. The window loop invokes it synchronously at
// deterministic points — after each completed measurement window and after
// each finished trial — handing over freshly-copied snapshots the monitor
// owns outright. A monitor therefore cannot perturb the simulation: it
// never sees mutable state, draws from no random stream, and its presence
// is excluded from the scenario fingerprint (Config.Monitor documents the
// concurrency contract under RunTrials).
//
// internal/obs/live.Server implements Monitor; the interface lives here so
// sim depends only on obs, never on the network layer.
type Monitor interface {
	// WindowDone fires after window `window` of `windows` completes in
	// trial `trial`. rows is the trial's cumulative statistics snapshot
	// (nil when the registry is off); points are the trial's series
	// windows so far (nil when the series is off).
	WindowDone(trial, window, windows int, rows []obs.Row, points []obs.SeriesPoint)
	// TrialDone fires after trial `trial` finishes all its windows.
	TrialDone(trial int)
}
