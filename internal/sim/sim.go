// Package sim runs OHM protocols over the simulated road + channel: it owns
// the scenario lifecycle (traffic warm-up, the 5 ms position/link refresh,
// the 20 ms protocol frame loop, 1 s measurement windows) and the HRIE task
// bookkeeping, and reduces runs to the paper's per-vehicle metrics.
//
// Protocols (mmV2V in internal/core, the ROP and IEEE 802.11ad baselines in
// internal/baseline) plug in through the Protocol interface and the shared
// Env, so all candidates are evaluated under identical traffic, channel and
// task conditions — the comparison discipline of Sec. IV.
package sim

import (
	"fmt"
	"math"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/faults"
	"mmv2v/internal/medium"
	"mmv2v/internal/metrics"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/trace"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// Config describes one simulation scenario.
type Config struct {
	// Seed drives every random stream in the scenario.
	Seed uint64
	// Traffic is the road scenario (density, lanes, models).
	Traffic traffic.Config
	// Grid, when non-nil, replaces the straight road with a Manhattan-grid
	// road network (the city-scale scenario): NewEnv builds a
	// traffic.Network from it and Traffic is ignored.
	Grid *traffic.GridConfig
	// World holds comm range and channel parameters.
	World world.Config
	// Timing holds the PHY control-plane constants.
	Timing phy.Timing
	// DemandBits is the HRIE task volume per neighbor per window
	// (paper: 200 Mb/s × 1 s window).
	DemandBits float64
	// WindowSec is the measurement window length (paper: metrics at the end
	// of every second).
	WindowSec float64
	// Windows is how many consecutive windows to run.
	Windows int
	// WarmupSec steps traffic before the radio protocol starts so the flow
	// reaches a steady state.
	WarmupSec float64
	// Workers bounds how many trials RunTrials executes concurrently; 0 (the
	// default) uses runtime.GOMAXPROCS(0). Every trial gets its own road,
	// world and RNG streams and results merge in trial order, so the pooled
	// output — metrics, statistics and the trace stream — is bit-identical
	// for any worker count.
	Workers int
	// Faults, when non-nil and enabled, injects deterministic channel and
	// radio faults — control-frame loss, transient blockage bursts, radio
	// churn, slot jitter — seeded from Seed (see internal/faults). Nil, or
	// a config with every intensity zero, is an exact no-op: outputs are
	// byte-identical to a run without fault injection.
	Faults *faults.Config
	// Retry re-runs a failed (errored or panicking) trial up to this many
	// times before RunTrials records it as a TrialError. Default 0.
	Retry int
	// Trace, when non-nil, receives structured protocol events
	// (discoveries, matches, streams, completions). Nil disables tracing
	// at zero cost. Pooled runs replay per-trial captures into this
	// recorder in trial order, each event stamped with its trial index.
	Trace *trace.Recorder
	// Stats, when true, gives every trial an obs.Registry recording
	// per-layer statistics (control frames, collisions, per-MCS airtime,
	// beam switches, refresh sizes, fault events, matches/break-ups);
	// pooled registries merge in trial order into Result.Obs. False (the
	// default) keeps every instrumented hot path a zero-cost no-op.
	Stats bool
	// Series, when true, additionally samples the statistics registry at
	// every measurement-window boundary into an obs.Series of per-window
	// deltas (implies the registry itself, so Series works with Stats off).
	// Per-trial series merge slot-per-trial into Result.Series exactly like
	// registries, so series exports are byte-identical for any worker
	// count. False (the default) costs nothing.
	Series bool
	// Monitor, when non-nil, receives live notifications at window and
	// trial boundaries (see the Monitor interface). Like Workers or Trace
	// it only changes how a run is observed, never what it computes, so it
	// is excluded from the scenario fingerprint. Callbacks fire from worker
	// goroutines under RunTrials; implementations must be safe for
	// concurrent use.
	Monitor Monitor
	// Checkpoint, when non-empty, is a directory where each trial writes a
	// versioned, checksummed snapshot of its full state after every
	// completed measurement window (at drained event-queue boundaries, so
	// the snapshot is exact; see DESIGN.md §11). A crashed or killed trial
	// then resumes from its last good snapshot via Resume — and under
	// Config.Retry, RunTrials retries failed trials from their checkpoint
	// instead of from tick zero. Requires the protocol to implement
	// Stateful (all protocols in this repository do). Empty (the default)
	// disables checkpointing entirely.
	Checkpoint string
	// Trial names this run's checkpoint file inside the Checkpoint
	// directory (CheckpointPath). RunTrials sets it to the trial index;
	// single runs default to 0.
	Trial int
}

// DefaultConfig returns the paper's scenario at a given traffic density
// (vehicles per lane per km) with the 200 Mb/s HRIE task.
func DefaultConfig(densityVPL float64, seed uint64) Config {
	return Config{
		Seed:       seed,
		Traffic:    traffic.DefaultConfig(densityVPL),
		World:      world.DefaultConfig(),
		Timing:     phy.DefaultTiming(),
		DemandBits: 200e6,
		WindowSec:  1.0,
		Windows:    1,
		WarmupSec:  10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Grid != nil {
		if err := c.Grid.Validate(); err != nil {
			return err
		}
	} else if err := c.Traffic.Validate(); err != nil {
		return err
	}
	if err := c.World.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	switch {
	case c.DemandBits < 0:
		return fmt.Errorf("sim: negative demand %v", c.DemandBits)
	case c.WindowSec <= 0:
		return fmt.Errorf("sim: non-positive window %v", c.WindowSec)
	case c.Windows <= 0:
		return fmt.Errorf("sim: non-positive window count %d", c.Windows)
	case c.WarmupSec < 0:
		return fmt.Errorf("sim: negative warmup %v", c.WarmupSec)
	case c.Workers < 0:
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	case c.Retry < 0:
		return fmt.Errorf("sim: negative retry budget %d", c.Retry)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Env is the shared simulation environment handed to protocols.
type Env struct {
	Sim    *des.Simulator
	World  *world.World
	Medium *medium.Medium
	Ledger *metrics.Ledger
	Rand   *xrand.Source
	Timing phy.Timing
	// Seed is the scenario seed this environment was built from (for a
	// pooled trial, the derived per-trial seed) — the one value needed to
	// reproduce the run, carried here so error contexts can report it.
	Seed uint64
	// Faults is the active fault injector, nil on a clean channel.
	Faults *faults.Injector
	// DemandBits is the per-neighbor task volume of the current window.
	DemandBits float64
	// Trace receives protocol events; nil (the default) is a valid no-op.
	Trace *trace.Recorder
	// Obs is the trial's statistics registry; nil (the default) hands out
	// nil handles, making every instrumented path a no-op.
	Obs *obs.Registry
	// Series is the trial's windowed time-series; nil (the default) makes
	// sampling a no-op. The window loop owns it — layers never touch it.
	Series *obs.Series

	refreshHooks []func()
}

// N returns the number of vehicles.
func (e *Env) N() int { return e.World.NumVehicles() }

// PairDone reports whether pair (i, j) has completed its exchange in the
// current window — the paper's "all sensory data have been exchanged"
// condition that removes a neighbor from the working set.
func (e *Env) PairDone(i, j int) bool {
	return e.Ledger.Complete(i, j, e.DemandBits)
}

// OnRefresh registers a hook invoked after every 5 ms position/link refresh
// (protocols use it for UDT rate adaptation).
func (e *Env) OnRefresh(fn func()) {
	e.refreshHooks = append(e.refreshHooks, fn)
}

// FireRefreshHooks invokes all registered refresh hooks; the runner calls it
// on every tick, and tests that drive frames manually do the same.
func (e *Env) FireRefreshHooks() {
	for _, h := range e.refreshHooks {
		h()
	}
}

// Protocol is one OHM scheme under evaluation.
type Protocol interface {
	// Name identifies the scheme in reports.
	Name() string
	// RunFrame is invoked at each frame boundary; the implementation
	// schedules all of the frame's events on env.Sim and must finish its
	// activity before the next frame boundary.
	RunFrame(frame int)
}

// Factory constructs a protocol bound to an environment.
type Factory func(*Env) Protocol

// WindowResult carries the metrics of one measurement window.
type WindowResult struct {
	Window  int
	Stats   []metrics.VehicleStats
	Summary metrics.Summary
	// AvgNeighbors is the mean LOS neighbor count at window start.
	AvgNeighbors float64
	// LatencySumSec and LatencyPairs accumulate the time from window start
	// to each neighbor pair's first exchanged bit — the discovery + matching
	// latency observable uniformly across protocols. Pairs that never
	// exchanged anything are excluded.
	LatencySumSec float64
	LatencyPairs  int
}

// Result aggregates a full run.
type Result struct {
	Protocol string
	Windows  []WindowResult
	// Stats pools per-vehicle stats across all windows.
	Stats []metrics.VehicleStats
	// Summary aggregates the pooled stats.
	Summary metrics.Summary
	// AvgNeighbors is the mean over windows.
	AvgNeighbors float64
	// LatencySumSec and LatencyPairs pool the window latency accumulators.
	LatencySumSec float64
	LatencyPairs  int
	// Events is the number of DES events executed (diagnostics).
	Events uint64
	// Trials is the number of successful trials pooled into this result
	// (1 for a single Run).
	Trials int
	// Retried counts trial re-executions performed under Config.Retry, and
	// Failures lists trials abandoned after the retry budget (in trial
	// order). Both are zero/nil for a single Run.
	Retried  int
	Failures []*TrialError
	// Obs carries the run's layer statistics when Config.Stats (or
	// Config.Series, which implies the registry) was set, pooled in trial
	// order for a RunTrials result; nil otherwise.
	Obs *obs.Registry
	// Series carries the run's windowed statistics deltas when
	// Config.Series was set (pooled in trial order for a RunTrials
	// result); nil otherwise.
	Series *obs.Series
}

// MeanLatencySec returns the pooled mean time-to-first-exchange in seconds,
// or NaN when no pair exchanged anything.
func (r *Result) MeanLatencySec() float64 {
	if r.LatencyPairs == 0 {
		return math.NaN()
	}
	return r.LatencySumSec / float64(r.LatencyPairs)
}

// NewEnv builds the simulation environment of a scenario — warmed-up
// traffic, world, medium, ledger — without running any protocol. Run uses
// it; experiment harnesses that need custom instrumentation use it directly
// with DriveFrames.
func NewEnv(cfg Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rand := xrand.New(cfg.Seed)
	var fleet traffic.Fleet
	if cfg.Grid != nil {
		nw, err := traffic.NewNetwork(cfg.Grid.Network(), rand)
		if err != nil {
			return nil, err
		}
		fleet = nw
	} else {
		road, err := traffic.New(cfg.Traffic, rand)
		if err != nil {
			return nil, err
		}
		fleet = road
	}
	dt := cfg.Timing.PositionUpdate.Seconds()
	for t := 0.0; t < cfg.WarmupSec; t += dt {
		fleet.Step(dt)
	}
	w, err := world.New(cfg.World, fleet)
	if err != nil {
		return nil, err
	}
	return NewEnvWithWorld(cfg, w)
}

// NewEnvWithWorld builds an environment over a caller-constructed world
// (e.g. hand-placed vehicles). The scenario's traffic settings are not
// re-applied; only timing, demand and seed matter.
func NewEnvWithWorld(cfg Config, w *world.World) (*Env, error) {
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	sim := des.New()
	env := &Env{
		Sim:        sim,
		World:      w,
		Medium:     medium.New(sim, w),
		Ledger:     metrics.NewLedger(w.NumVehicles()),
		Rand:       xrand.New(cfg.Seed).Child("protocol"),
		Timing:     cfg.Timing,
		Seed:       cfg.Seed,
		DemandBits: cfg.DemandBits,
		Trace:      cfg.Trace,
	}
	if cfg.Stats || cfg.Series {
		env.Obs = obs.New()
	}
	if cfg.Series {
		env.Series = obs.NewSeries()
	}
	// SetObs calls are nil-safe: with Stats off they hand every layer nil
	// handles, keeping the instrumented hot paths no-ops.
	w.SetObs(env.Obs)
	env.Medium.SetObs(env.Obs)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		// The injector draws from a dedicated stream family mixed from the
		// scenario seed, so fault histories are reproducible from the seed
		// and independent of every other random stream.
		inj := faults.NewInjector(*cfg.Faults,
			xrand.Mix(cfg.Seed, xrand.HashString("faults")), sim)
		env.Faults = inj
		inj.SetObs(env.Obs)
		w.SetLinkFault(inj)
		env.Medium.SetFaults(inj)
	}
	return env, nil
}

// DriveFrames advances the environment by the given number of protocol
// frames: the 5 ms tick steps traffic, refreshes the world, fires refresh
// hooks and starts a frame on each frame boundary. firstFrame offsets the
// frame indices passed to the protocol.
func (e *Env) DriveFrames(proto Protocol, firstFrame, frames int) {
	ticksPerFrame := int(e.Timing.Frame / e.Timing.PositionUpdate)
	dt := e.Timing.PositionUpdate.Seconds()
	start := e.Sim.Now()
	end := start.Add(e.Timing.Frame * time.Duration(frames))
	e.Sim.Every(start, e.Timing.PositionUpdate, end, "sim.tick", func(tick int) {
		if tick > 0 {
			e.World.Fleet().Step(dt)
			e.World.Refresh()
		}
		e.FireRefreshHooks()
		if tick%ticksPerFrame == 0 && tick/ticksPerFrame < frames {
			proto.RunFrame(firstFrame + tick/ticksPerFrame)
		}
	})
	e.Sim.Run(end)
}

// Run executes a scenario under the given protocol factory.
func Run(cfg Config, factory Factory) (*Result, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	return RunOnEnv(cfg, env, factory)
}

// RunOnEnv executes the window loop over an existing environment (used by
// Run and by custom-scenario entry points).
func RunOnEnv(cfg Config, env *Env, factory Factory) (*Result, error) {
	if cfg.Windows <= 0 || cfg.WindowSec <= 0 {
		return nil, fmt.Errorf("sim: invalid window settings (%d × %v s)", cfg.Windows, cfg.WindowSec)
	}
	return runWindows(cfg, env, factory(env), nil, 0)
}

// runWindows executes measurement windows [firstWin, cfg.Windows) over the
// environment and folds the results onto any previously completed windows
// (Resume passes the snapshot's; a fresh run passes none). When
// cfg.Checkpoint is set, a snapshot is written after each completed window
// whose boundary left the event queue drained — boundaries with residual
// events (which window timing never produces, but nothing forbids) simply
// keep the previous snapshot valid.
func runWindows(cfg Config, env *Env, proto Protocol, completed []WindowResult, firstWin int) (*Result, error) {
	res := &Result{Protocol: proto.Name()}
	framesPerWindow := int(cfg.WindowSec / cfg.Timing.Frame.Seconds())
	if framesPerWindow < 1 {
		return nil, fmt.Errorf("sim: window %vs cannot hold a %v frame", cfg.WindowSec, cfg.Timing.Frame)
	}
	var st Stateful
	if cfg.Checkpoint != "" {
		var ok bool
		if st, ok = proto.(Stateful); !ok {
			return nil, fmt.Errorf("sim: protocol %q does not support checkpointing (no SaveState/LoadState)", proto.Name())
		}
	}
	for _, w := range completed {
		res.Windows = append(res.Windows, w)
		res.Stats = append(res.Stats, w.Stats...)
		res.AvgNeighbors += w.AvgNeighbors
		res.LatencySumSec += w.LatencySumSec
		res.LatencyPairs += w.LatencyPairs
	}

	for win := firstWin; win < cfg.Windows; win++ {
		env.Ledger.Reset()
		env.Medium.Reset()
		denominator := env.World.NeighborSnapshot()
		avgN := env.World.AvgNeighborCount()
		winStartSec := env.Sim.Now().Seconds()

		env.DriveFrames(proto, win*framesPerWindow, framesPerWindow)

		stats := metrics.Compute(denominator, env.Ledger, cfg.DemandBits)
		latSum, latPairs := pairLatency(denominator, env.Ledger, winStartSec)
		res.Windows = append(res.Windows, WindowResult{
			Window:        win,
			Stats:         stats,
			Summary:       metrics.Summarize(stats),
			AvgNeighbors:  avgN,
			LatencySumSec: latSum,
			LatencyPairs:  latPairs,
		})
		res.Stats = append(res.Stats, stats...)
		res.AvgNeighbors += avgN
		res.LatencySumSec += latSum
		res.LatencyPairs += latPairs

		// Sample the series before any checkpoint so the snapshot carries
		// this window's point: a resumed run continues at the next window
		// with no gap or duplicate.
		env.Series.Sample(win, env.Obs)
		if cfg.Monitor != nil {
			// Rows and Points return fresh copies, so the monitor owns what
			// it receives and can publish it to concurrent readers.
			cfg.Monitor.WindowDone(cfg.Trial, win, cfg.Windows, env.Obs.Rows(""), env.Series.Points())
		}

		// A snapshot after the final window would never be resumed; skip it.
		if st != nil && win < cfg.Windows-1 && env.Sim.Drained() {
			if err := writeCheckpoint(cfg, env, st, res.Windows); err != nil {
				return nil, err
			}
		}
	}
	res.Summary = metrics.Summarize(res.Stats)
	res.AvgNeighbors /= float64(cfg.Windows)
	res.Events = env.Sim.Executed()
	res.Trials = 1
	res.Obs = env.Obs
	res.Series = env.Series
	if cfg.Monitor != nil {
		cfg.Monitor.TrialDone(cfg.Trial)
	}
	return res, nil
}

// pairLatency sums, over every neighbor pair with any recorded exchange,
// the window-relative time of its first exchanged bit.
func pairLatency(neighbors [][]int, l *metrics.Ledger, winStartSec float64) (sum float64, pairs int) {
	for i, ns := range neighbors {
		for _, j := range ns {
			if j <= i {
				continue
			}
			if at, ok := l.FirstExchangeSec(i, j); ok {
				sum += at - winStartSec
				pairs++
			}
		}
	}
	return sum, pairs
}

// RunTrials runs the same scenario with distinct seeds and pools the
// per-vehicle stats, mirroring the paper's repeated-experiment methodology.
// Trials execute on a worker pool bounded by cfg.Workers (0 = GOMAXPROCS)
// and merge in trial order; see Runner.RunTrials for the determinism
// contract.
func RunTrials(cfg Config, factory Factory, trials int) (*Result, error) {
	return NewRunner(cfg.Workers).RunTrials(cfg, factory, trials)
}
