// Crash isolation for trial execution: a panic anywhere inside one trial —
// protocol bug, poisoned scenario, substrate invariant violation — must
// degrade that one data point, not kill a multi-thousand-trial experiment.
// RunTrials runs every trial under recover() and converts failures into
// structured TrialErrors that carry everything needed to reproduce the
// crash deterministically: the scenario, the trial index, the derived seed
// and the recovered stack, plus a one-line repro command.

package sim

import (
	"fmt"
	"os"
	"runtime/debug"
	"strings"
)

// TrialError describes one trial abandoned by RunTrials after exhausting
// the Config.Retry budget.
type TrialError struct {
	// Scenario is a human-readable summary of the failing configuration.
	Scenario string
	// DensityVPL and BaseSeed echo the scenario inputs the repro command
	// needs; Trial is the failing index and Seed the derived per-trial
	// scenario seed (Seed = xrand.Mix(BaseSeed, Trial)).
	DensityVPL float64
	BaseSeed   uint64
	Trial      int
	Seed       uint64
	// FaultsOn records whether fault injection was active in the run.
	FaultsOn bool
	// Checkpoint is the failing trial's last good snapshot file, when
	// Config.Checkpoint was set and a snapshot had been written; the repro
	// command resumes from it so the crash reproduces from the last window
	// boundary instead of replaying the whole trial.
	Checkpoint string
	// Err is the underlying failure; a recovered panic is wrapped as a
	// PanicError. Stack is the goroutine stack captured at recovery
	// (empty when the trial returned an ordinary error).
	Err   error
	Stack string
}

// Error renders the failure with its repro command; the stack is available
// separately so logs stay one line unless callers want it.
func (e *TrialError) Error() string {
	return fmt.Sprintf("sim: trial %d (%s, seed %#x) failed: %v [repro: %s]",
		e.Trial, e.Scenario, e.Seed, e.Err, e.Repro())
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// Repro returns a one-line command that deterministically replays the
// failing trial (trials 0..Trial re-run; all are pure functions of the
// seed, so the crash reproduces on the last one).
func (e *TrialError) Repro() string {
	cmd := fmt.Sprintf("go run ./cmd/mmv2v-sim -density %g -seed %d -trials %d",
		e.DensityVPL, e.BaseSeed, e.Trial+1)
	if e.Checkpoint != "" {
		cmd += fmt.Sprintf(" -resume %s", e.Checkpoint)
	}
	if e.FaultsOn {
		cmd += " -faults <intensity>  # re-apply this run's FaultConfig"
	}
	return cmd
}

// PanicError wraps a value recovered from a panicking trial so it can
// travel as an error through the retry and aggregation machinery.
type PanicError struct {
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// runIsolated executes one trial with panics converted into PanicErrors.
func runIsolated(cfg Config, factory Factory) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	return Run(cfg, factory)
}

// resumeIsolated resumes one trial from a snapshot with panics converted
// into PanicErrors (a deterministic crash recurs on resume just as it
// would on a scratch re-run).
func resumeIsolated(cfg Config, factory Factory, path string) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	return Resume(cfg, factory, path)
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// scenarioLabel summarizes a config for TrialError messages.
func scenarioLabel(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "density=%g vpl, %d×%gs windows", cfg.Traffic.DensityVPL, cfg.Windows, cfg.WindowSec)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		b.WriteString(", faults on")
	}
	return b.String()
}
