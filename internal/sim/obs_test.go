package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"mmv2v/internal/obs"
	"mmv2v/internal/sim"
	"mmv2v/internal/trace"
)

// TestRunTrialsTraceIdenticalAcrossWorkers pins the parallel-trace contract:
// traced pooled runs use every worker, and the replayed event stream —
// trial-stamped, trial-major — is identical for any worker count.
func TestRunTrialsTraceIdenticalAcrossWorkers(t *testing.T) {
	const trials = 4
	run := func(workers int) []trace.Event {
		cfg := sim.DefaultConfig(10, 21)
		cfg.WindowSec = 0.1
		cfg.Workers = workers
		cap := trace.NewCapture()
		cfg.Trace = trace.New(cap)
		if _, err := sim.RunTrials(cfg, greedyFactory(), trials); err != nil {
			t.Fatal(err)
		}
		return cap.Events()
	}
	one := run(1)
	eight := run(8)
	if len(one) == 0 {
		t.Fatal("traced run recorded no events")
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("trace streams differ: %d events with 1 worker, %d with 8", len(one), len(eight))
	}
	// The replay stamps trial indices and orders trial-major.
	seenLast := -1
	for _, e := range one {
		if e.Trial < seenLast {
			t.Fatalf("trial order regressed: %d after %d", e.Trial, seenLast)
		}
		seenLast = e.Trial
	}
	if seenLast == 0 {
		t.Fatal("all events stamped trial 0; expected events from later trials")
	}
}

// TestRunTrialsStatsIdenticalAcrossWorkers pins the stats-merge contract:
// the pooled registry's export is byte-identical for any worker count.
func TestRunTrialsStatsIdenticalAcrossWorkers(t *testing.T) {
	const trials = 4
	run := func(workers int) []byte {
		cfg := sim.DefaultConfig(10, 22)
		cfg.WindowSec = 0.1
		cfg.Workers = workers
		cfg.Stats = true
		res, err := sim.RunTrials(cfg, greedyFactory(), trials)
		if err != nil {
			t.Fatal(err)
		}
		if res.Obs == nil {
			t.Fatal("Stats run returned nil Obs")
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, res.Obs.Rows("test")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := run(1)
	eight := run(8)
	if len(one) == 0 {
		t.Fatal("stats run exported no rows")
	}
	if !bytes.Equal(one, eight) {
		t.Fatalf("stats exports differ:\nworkers=1:\n%s\nworkers=8:\n%s", one, eight)
	}
}

// TestStatsOffKeepsObsNil pins the zero-cost default: without Config.Stats
// the result carries no registry and layers hold nil handles.
func TestStatsOffKeepsObsNil(t *testing.T) {
	cfg := sim.DefaultConfig(5, 23)
	cfg.WindowSec = 0.1
	res, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatal("Obs should be nil when Stats is off")
	}
}

// TestStatsRecordLayerActivity checks a Stats run actually populates the
// world- and data-plane metrics the greedy test protocol exercises.
func TestStatsRecordLayerActivity(t *testing.T) {
	cfg := sim.DefaultConfig(10, 24)
	cfg.WindowSec = 0.1
	cfg.Stats = true
	res, err := sim.Run(cfg, greedyFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("Stats run returned nil Obs")
	}
	if n := res.Obs.Counter("world.refreshes").Value(); n == 0 {
		t.Error("world.refreshes = 0, want > 0")
	}
	if n := res.Obs.Counter("medium.stream_starts").Value(); n == 0 {
		t.Error("medium.stream_starts = 0, want > 0")
	}
}
