// Deterministic persistence (DESIGN.md §11): versioned, checksummed
// per-trial snapshots at drained window boundaries, and crash-resume that
// reproduces the uncheckpointed run byte-for-byte.
//
// A snapshot captures everything a trial's future depends on: the DES
// clock and executed-event counter, the fleet kinematics and RNG cursors,
// the world's x-order permutation and link table (saved, not re-derived —
// re-running pair enumeration on restore would re-query the fault hook and
// advance its chains), the medium's stream-ID allocator, the fault
// injector's lazy chain maps, the statistics registry, the task ledger,
// the completed windows' results and the protocol's durable state. Resume
// rebuilds the environment from (config, seed) exactly as a fresh run
// would — so everything derived purely from the seed is identical — and
// then overlays the snapshot's mutable state.
//
// A config fingerprint stored in the snapshot rejects resuming under a
// different scenario; the CRC-framed codec (internal/persist) rejects
// truncated or bit-flipped files with structured errors, never a panic.
package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"mmv2v/internal/des"
	"mmv2v/internal/metrics"
	"mmv2v/internal/persist"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// Stateful is a Protocol whose durable state can be checkpointed and
// restored. All protocols in this repository implement it; checkpointing
// (Config.Checkpoint) and Resume require it.
type Stateful interface {
	Protocol
	// SaveState appends the protocol's durable (cross-frame) state.
	SaveState(e *persist.Encoder)
	// LoadState restores state checkpointed by SaveState onto a protocol
	// freshly built over the resumed environment. Corrupted input returns
	// a structured error and must never panic.
	LoadState(d *persist.Decoder) error
}

// Fingerprint hashes the scenario-defining configuration fields: everything
// that changes what a trial computes (seed, traffic, world, timing, demand,
// windows, warm-up, faults, stats) and nothing that only changes how it is
// executed (workers, retry budget, tracing, checkpoint location). A
// snapshot stores the fingerprint of the config it was taken under, so
// resuming with mismatched flags fails loudly instead of diverging
// silently.
func Fingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d|traffic=%#v|world=%#v|timing=%#v|demand=%d|winsec=%d|windows=%d|warmup=%d|stats=%t",
		cfg.Seed, cfg.Traffic, cfg.World, cfg.Timing,
		math.Float64bits(cfg.DemandBits), math.Float64bits(cfg.WindowSec),
		cfg.Windows, math.Float64bits(cfg.WarmupSec), cfg.Stats)
	if cfg.Grid != nil {
		fmt.Fprintf(h, "|grid=%#v", *cfg.Grid)
	}
	if cfg.Faults != nil {
		fmt.Fprintf(h, "|faults=%#v", *cfg.Faults)
	}
	// Appended conditionally so every pre-series fingerprint (committed run
	// logs, old snapshots) stays valid for runs without a series.
	if cfg.Series {
		fmt.Fprintf(h, "|series=true")
	}
	return h.Sum64()
}

// CheckpointPath returns the snapshot file a trial writes inside a
// checkpoint directory. Trials of one pooled run share the directory and
// are distinguished by index.
func CheckpointPath(dir string, trial int) string {
	return filepath.Join(dir, fmt.Sprintf("trial%03d.ckpt", trial))
}

const (
	fleetKindRoad    = 0
	fleetKindNetwork = 1

	// vehicleStatsWire and windowWireMin are minimum encoded sizes used to
	// clamp hostile element counts while decoding.
	vehicleStatsWire = 8 + 8 + 3*8
	windowWireMin    = 8 + 4 + (8 + 3*8) + 8 + 8 + 8
)

// EncodeWindowResult appends one window's results in the canonical form
// shared by snapshots and run-log digests: field order is fixed and floats
// are encoded as IEEE-754 bits, so equal results always produce equal
// bytes.
func EncodeWindowResult(e *persist.Encoder, w WindowResult) {
	e.Int(w.Window)
	e.U32(uint32(len(w.Stats)))
	for _, vs := range w.Stats {
		e.Int(vs.Vehicle)
		e.Int(vs.Neighbors)
		e.F64(vs.OCR)
		e.F64(vs.ATP)
		e.F64(vs.DTP)
	}
	e.Int(w.Summary.Vehicles)
	e.F64(w.Summary.MeanOCR)
	e.F64(w.Summary.MeanATP)
	e.F64(w.Summary.MeanDTP)
	e.F64(w.AvgNeighbors)
	e.F64(w.LatencySumSec)
	e.Int(w.LatencyPairs)
}

// DecodeWindowResult restores one window's results from the canonical form.
func DecodeWindowResult(d *persist.Decoder) WindowResult {
	var w WindowResult
	w.Window = d.Int()
	ns := d.Count(vehicleStatsWire)
	for i := 0; i < ns; i++ {
		w.Stats = append(w.Stats, metrics.VehicleStats{
			Vehicle:   d.Int(),
			Neighbors: d.Int(),
			OCR:       d.F64(),
			ATP:       d.F64(),
			DTP:       d.F64(),
		})
		if d.Err() != nil {
			return w
		}
	}
	w.Summary.Vehicles = d.Int()
	w.Summary.MeanOCR = d.F64()
	w.Summary.MeanATP = d.F64()
	w.Summary.MeanDTP = d.F64()
	w.AvgNeighbors = d.F64()
	w.LatencySumSec = d.F64()
	w.LatencyPairs = d.Int()
	return w
}

// WindowDigest hashes one window's results in canonical form, prefixed with
// the trial index so equal windows of different trials digest differently.
// Run logs record one digest per (trial, window); replay -verify re-executes
// the run and compares digests to pin byte-identical reproduction.
func WindowDigest(trial int, w WindowResult) uint64 {
	var e persist.Encoder
	e.Int(trial)
	EncodeWindowResult(&e, w)
	h := fnv.New64a()
	// fnv's Write never fails; the hash.Hash interface just carries error.
	_, _ = h.Write(e.Bytes())
	return h.Sum64()
}

// snapshotPayload encodes the full trial state. windows are the completed
// windows' results; the next window to run is len(windows).
func snapshotPayload(cfg Config, env *Env, proto Stateful, windows []WindowResult) []byte {
	var e persist.Encoder
	e.U64(Fingerprint(cfg))
	e.U64(cfg.Seed)
	e.String(proto.Name())
	e.Int(len(windows))
	e.Int(cfg.Windows)
	e.I64(int64(env.Sim.Now()))
	e.U64(env.Sim.Executed())
	e.U64(env.Rand.Cursor())
	if _, ok := env.World.Fleet().(*traffic.Network); ok {
		e.U8(fleetKindNetwork)
	} else {
		e.U8(fleetKindRoad)
	}
	env.World.Fleet().SaveState(&e)
	env.World.SaveState(&e)
	env.Medium.SaveState(&e)
	e.Bool(env.Faults != nil)
	if env.Faults != nil {
		env.Faults.SaveState(&e)
	}
	e.Bool(env.Obs != nil)
	if env.Obs != nil {
		env.Obs.SaveState(&e)
	}
	e.Bool(env.Series != nil)
	if env.Series != nil {
		env.Series.SaveState(&e)
	}
	env.Ledger.SaveState(&e)
	e.U32(uint32(len(windows)))
	for _, w := range windows {
		EncodeWindowResult(&e, w)
	}
	proto.SaveState(&e)
	return e.Bytes()
}

// writeCheckpoint atomically replaces the trial's snapshot file with the
// current state.
func writeCheckpoint(cfg Config, env *Env, proto Stateful, windows []WindowResult) error {
	if err := os.MkdirAll(cfg.Checkpoint, 0o755); err != nil {
		return fmt.Errorf("sim: checkpoint dir: %w", err)
	}
	data := persist.EncodeSnapshot(snapshotPayload(cfg, env, proto, windows))
	path := CheckpointPath(cfg.Checkpoint, cfg.Trial)
	if err := persist.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	return nil
}

// Resume continues a trial from a snapshot file written under
// Config.Checkpoint, producing a Result byte-identical to the run that
// would have happened without the interruption. cfg must describe the same
// scenario the snapshot was taken under (any seed — the snapshot's derived
// per-trial seed overrides cfg.Seed; everything else is checked against
// the stored fingerprint). Tracing cannot be resumed: events of completed
// windows are gone, so cfg.Trace must be nil.
func Resume(cfg Config, factory Factory, path string) (*Result, error) {
	if cfg.Trace != nil {
		return nil, fmt.Errorf("sim: resume cannot reconstruct trace events of completed windows; disable tracing or rerun from scratch")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: resume: %w", err)
	}
	payload, err := persist.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	d := persist.NewDecoder(payload)
	fp := d.U64()
	seed := d.U64()
	protoName := d.String()
	nextWin := d.Int()
	totalWin := d.Int()
	desNow := des.Time(d.I64())
	desExec := d.U64()
	randCursor := d.U64()
	fleetKind := d.U8()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}

	c := cfg
	c.Seed = seed
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if got := Fingerprint(c); got != fp {
		return nil, fmt.Errorf("sim: checkpoint %s was taken under a different scenario (snapshot fingerprint %#x, this config %#x)",
			path, fp, got)
	}
	if totalWin != c.Windows || nextWin < 1 || nextWin > totalWin {
		return nil, fmt.Errorf("sim: checkpoint %s has corrupt window cursor %d/%d (config: %d windows)",
			path, nextWin, totalWin, c.Windows)
	}

	// Rebuild the substrate from (config, seed) exactly as a fresh run
	// would — minus the warm-up, whose effect is contained in the restored
	// kinematic state.
	rand := xrand.New(c.Seed)
	var fleet traffic.Fleet
	if c.Grid != nil {
		if fleetKind != fleetKindNetwork {
			return nil, fmt.Errorf("sim: checkpoint %s holds a ring-road fleet but the config is a grid scenario", path)
		}
		nw, err := traffic.NewNetwork(c.Grid.Network(), rand)
		if err != nil {
			return nil, err
		}
		fleet = nw
	} else {
		if fleetKind != fleetKindRoad {
			return nil, fmt.Errorf("sim: checkpoint %s holds a grid fleet but the config is a ring-road scenario", path)
		}
		road, err := traffic.New(c.Traffic, rand)
		if err != nil {
			return nil, err
		}
		fleet = road
	}
	if err := fleet.LoadState(d); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s fleet: %w", path, err)
	}
	w, err := world.New(c.World, fleet)
	if err != nil {
		return nil, err
	}
	env, err := NewEnvWithWorld(c, w)
	if err != nil {
		return nil, err
	}
	if err := env.Sim.Restore(desNow, desExec); err != nil {
		return nil, err
	}
	env.Rand.SetCursor(randCursor)
	if err := env.World.LoadState(d); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s world: %w", path, err)
	}
	if err := env.Medium.LoadState(d); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s medium: %w", path, err)
	}
	hasFaults := d.Bool()
	if d.Err() != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, d.Err())
	}
	if hasFaults != (env.Faults != nil) {
		return nil, fmt.Errorf("sim: checkpoint %s fault-injection state does not match the config", path)
	}
	if env.Faults != nil {
		if err := env.Faults.LoadState(d); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s faults: %w", path, err)
		}
	}
	hasObs := d.Bool()
	if d.Err() != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, d.Err())
	}
	if hasObs != (env.Obs != nil) {
		return nil, fmt.Errorf("sim: checkpoint %s statistics state does not match the config", path)
	}
	if env.Obs != nil {
		if err := env.Obs.LoadState(d); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s stats: %w", path, err)
		}
	}
	hasSeries := d.Bool()
	if d.Err() != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, d.Err())
	}
	if hasSeries != (env.Series != nil) {
		return nil, fmt.Errorf("sim: checkpoint %s series state does not match the config", path)
	}
	if env.Series != nil {
		if err := env.Series.LoadState(d); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s series: %w", path, err)
		}
	}
	if err := env.Ledger.LoadState(d); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s ledger: %w", path, err)
	}
	nw := d.Count(windowWireMin)
	if d.Err() == nil && nw != nextWin {
		d.Failf("snapshot carries %d completed windows but its cursor says %d", nw, nextWin)
	}
	completed := make([]WindowResult, 0, nw)
	for i := 0; i < nw && d.Err() == nil; i++ {
		completed = append(completed, DecodeWindowResult(d))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s windows: %w", path, err)
	}

	proto := factory(env)
	if proto.Name() != protoName {
		return nil, fmt.Errorf("sim: checkpoint %s is for protocol %q, not %q", path, protoName, proto.Name())
	}
	st, ok := proto.(Stateful)
	if !ok {
		return nil, fmt.Errorf("sim: protocol %q does not support checkpoint restore", proto.Name())
	}
	if err := st.LoadState(d); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s protocol: %w", path, err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("sim: checkpoint %s: %w (%d trailing bytes)", path, persist.ErrCorrupt, d.Remaining())
	}
	return runWindows(c, env, proto, completed, nextWin)
}
