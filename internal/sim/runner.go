// Trial execution engine: a bounded worker pool that runs independent
// simulation trials concurrently without giving up determinism.
//
// Every trial is a pure function of its config and derived seed (own road,
// world, DES and RNG streams), so trials can run in any order on any number
// of workers. Results land in a slot-per-trial buffer and merge in trial
// order, which makes the pooled output bit-identical to a serial loop for
// every worker count — the invariant the determinism regression tests pin.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"mmv2v/internal/metrics"
	"mmv2v/internal/xrand"
)

// Runner executes independent simulation jobs on a bounded worker pool. One
// Runner can be shared by many concurrent submitters (e.g. every cell of an
// experiment grid), which bounds the total simulation concurrency of the
// whole experiment rather than per call site.
type Runner struct {
	workers int
	sem     chan struct{}
}

// NewRunner returns a Runner with the given worker bound; workers <= 0 uses
// runtime.GOMAXPROCS(0).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Do runs jobs 0..n-1 with at most Workers executing at once and blocks
// until all complete. Jobs must write their results into caller-owned
// per-index slots; Do returns the lowest-index error so that failure
// reporting does not depend on completion order. Jobs themselves must not
// submit further work to the same Runner while holding their slot — use
// Gather for coordinator fan-out above the pool.
func (r *Runner) Do(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	return firstError(errs)
}

// Gather runs n coordinator jobs concurrently — without occupying pool
// slots — and returns the lowest-index error. Coordinators only submit leaf
// work to a shared Runner and merge slot buffers, so they are cheap and
// bounding them would only risk starving the pool they feed.
func Gather(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	return firstError(errs)
}

// firstError returns the lowest-index non-nil error, keeping error
// propagation deterministic under concurrency.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunTrials runs the same scenario with distinct per-trial seeds on the
// pool and merges the results in trial order. The per-trial seed depends
// only on (cfg.Seed, trial) and every trial builds its own environment, so
// the pooled Result is bit-identical for any worker count — and to the
// serial loop this engine replaced. cfg.Workers is ignored here: the
// receiver's bound governs, so experiment grids sharing one Runner get one
// global concurrency budget. When cfg.Trace is set, trials run on a single
// worker so the recorded event stream keeps a deterministic order.
func (r *Runner) RunTrials(cfg Config, factory Factory, trials int) (*Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	pool := r
	if cfg.Trace != nil && r.workers > 1 {
		pool = NewRunner(1)
	}
	results := make([]*Result, trials)
	err := pool.Do(trials, func(tr int) error {
		c := cfg
		c.Seed = xrand.Mix(cfg.Seed, uint64(tr))
		res, err := Run(c, factory)
		results[tr] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeTrials(results), nil
}

// mergeTrials pools per-trial results in slice (= trial) order.
func mergeTrials(results []*Result) *Result {
	pooled := &Result{}
	parts := make([][]metrics.VehicleStats, 0, len(results))
	for _, r := range results {
		pooled.Protocol = r.Protocol
		pooled.Windows = append(pooled.Windows, r.Windows...)
		parts = append(parts, r.Stats)
		pooled.AvgNeighbors += r.AvgNeighbors
		pooled.Events += r.Events
	}
	pooled.Stats, pooled.Summary = metrics.Merge(parts)
	pooled.AvgNeighbors /= float64(len(results))
	return pooled
}
