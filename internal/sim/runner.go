// Trial execution engine: a bounded worker pool that runs independent
// simulation trials concurrently without giving up determinism, and
// isolates each trial so a crash degrades one data point instead of the
// whole experiment.
//
// Every trial is a pure function of its config and derived seed (own road,
// world, DES and RNG streams), so trials can run in any order on any number
// of workers. Results land in a slot-per-trial buffer and merge in trial
// order, which makes the pooled output bit-identical to a serial loop for
// every worker count — the invariant the determinism regression tests pin.
//
// Each trial runs under recover(): a panic (or error) is retried up to
// Config.Retry times and then recorded as a TrialError carrying the
// scenario, trial index, derived seed, stack and a repro command. RunTrials
// merges the surviving trials and only fails outright when no trial
// succeeded.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mmv2v/internal/metrics"
	"mmv2v/internal/obs"
	"mmv2v/internal/trace"
	"mmv2v/internal/xrand"
)

// Runner executes independent simulation jobs on a bounded worker pool. One
// Runner can be shared by many concurrent submitters (e.g. every cell of an
// experiment grid), which bounds the total simulation concurrency of the
// whole experiment rather than per call site.
type Runner struct {
	workers int
	sem     chan struct{}
}

// NewRunner returns a Runner with the given worker bound; workers <= 0 uses
// runtime.GOMAXPROCS(0).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Do runs jobs 0..n-1 with at most Workers executing at once and blocks
// until all complete. Jobs must write their results into caller-owned
// per-index slots; Do joins every job error in index order (lowest first),
// so failure reporting does not depend on completion order and no error is
// discarded. Jobs themselves must not submit further work to the same
// Runner while holding their slot — use Gather for coordinator fan-out
// above the pool.
func (r *Runner) Do(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Gather runs n coordinator jobs concurrently — without occupying pool
// slots — and joins their errors in index order. Coordinators only submit
// leaf work to a shared Runner and merge slot buffers, so they are cheap
// and bounding them would only risk starving the pool they feed.
func Gather(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunTrials runs the same scenario with distinct per-trial seeds on the
// pool and merges the results in trial order. The per-trial seed depends
// only on (cfg.Seed, trial) and every trial builds its own environment, so
// the pooled Result is bit-identical for any worker count — and to the
// serial loop this engine replaced. cfg.Workers is ignored here: the
// receiver's bound governs, so experiment grids sharing one Runner get one
// global concurrency budget. When cfg.Trace is set, every trial records
// into its own private capture and the captures replay into cfg.Trace in
// trial order after the pool drains, each event stamped with its trial
// index — so traced runs use every worker and still emit a deterministic
// stream.
//
// Each trial is crash-isolated: a panicking or erroring trial is re-run up
// to cfg.Retry times, and if it still fails it becomes a TrialError in
// Result.Failures while the remaining trials complete and merge. The
// returned error is non-nil only when every trial failed (the join of all
// TrialErrors, lowest trial first).
func (r *Runner) RunTrials(cfg Config, factory Factory, trials int) (*Result, error) {
	return r.RunTrialsEach(cfg, factory, trials, nil)
}

// RunTrialsEach runs like RunTrials and, after the pool drains, additionally
// invokes each(trial, result) for every successful trial in ascending trial
// order — the hook the run-log writer uses to record per-trial windows and
// digests. Because the hook fires from the per-index slot buffer after all
// workers finish, its call sequence is deterministic for any worker count.
// A nil hook is valid (RunTrials passes one).
func (r *Runner) RunTrialsEach(cfg Config, factory Factory, trials int, each func(trial int, res *Result)) (*Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	results := make([]*Result, trials)
	failures := make([]*TrialError, trials)
	captures := make([]*trace.Capture, trials)
	var retriedMu sync.Mutex
	retried := 0
	_ = r.Do(trials, func(tr int) error {
		c := cfg
		c.Seed = xrand.Mix(cfg.Seed, uint64(tr))
		c.Trial = tr
		var res *Result
		var err error
		for attempt := 0; attempt <= cfg.Retry; attempt++ {
			if attempt > 0 {
				retriedMu.Lock()
				retried++
				retriedMu.Unlock()
				// With checkpointing on, retry from the trial's last good
				// snapshot instead of tick zero — the resumed result is
				// byte-identical to an uninterrupted run. A missing or
				// corrupt snapshot (crash before the first window, torn
				// file) falls back to a scratch re-run; traced runs always
				// re-run from scratch because completed windows' events
				// cannot be reconstructed.
				if c.Checkpoint != "" && cfg.Trace == nil {
					if rres, rerr := resumeIsolated(c, factory, CheckpointPath(c.Checkpoint, tr)); rerr == nil {
						res, err = rres, nil
						break
					}
				}
			}
			// Each attempt traces into a fresh private capture so a
			// retried crash leaves no partial events behind; only the
			// succeeding attempt's capture is kept for replay.
			var cp *trace.Capture
			if cfg.Trace != nil {
				cp = trace.NewCapture()
				c.Trace = trace.New(cp)
			}
			res, err = runIsolated(c, factory)
			if err == nil {
				captures[tr] = cp
				break
			}
		}
		if err != nil {
			te := &TrialError{
				Scenario:   scenarioLabel(c),
				DensityVPL: c.Traffic.DensityVPL,
				BaseSeed:   cfg.Seed,
				Trial:      tr,
				Seed:       c.Seed,
				FaultsOn:   c.Faults != nil && c.Faults.Enabled(),
				Err:        err,
			}
			if c.Checkpoint != "" {
				if p := CheckpointPath(c.Checkpoint, tr); fileExists(p) {
					te.Checkpoint = p
				}
			}
			var pe *PanicError
			if errors.As(err, &pe) {
				te.Stack = pe.Stack
			}
			failures[tr] = te
			return te
		}
		results[tr] = res
		return nil
	})
	if cfg.Trace != nil {
		// Replay trial-major: slot order is deterministic for any worker
		// count, so the merged stream matches a serial traced run.
		for tr, cp := range captures {
			if cp == nil {
				continue
			}
			for _, e := range cp.Events() {
				e.Trial = tr
				cfg.Trace.Emit(e)
			}
		}
	}
	if each != nil {
		for tr, res := range results {
			if res != nil {
				each(tr, res)
			}
		}
	}
	pooled := MergeTrials(results)
	pooled.Retried = retried
	for _, f := range failures {
		if f != nil {
			pooled.Failures = append(pooled.Failures, f)
		}
	}
	if pooled.Trials == 0 {
		errs := make([]error, 0, len(pooled.Failures))
		for _, f := range pooled.Failures {
			errs = append(errs, f)
		}
		return nil, errors.Join(errs...)
	}
	return pooled, nil
}

// MergeTrials pools per-trial results in slice (= trial) order, skipping
// failed (nil) slots; each failure degrades one data point, not the run.
// Exported for the run-log replay path, which reconstructs the per-trial
// results from a log and re-pools them exactly as the original run did.
func MergeTrials(results []*Result) *Result {
	pooled := &Result{}
	parts := make([][]metrics.VehicleStats, 0, len(results))
	regs := make([]*obs.Registry, 0, len(results))
	series := make([]*obs.Series, 0, len(results))
	for _, r := range results {
		if r == nil {
			continue
		}
		pooled.Protocol = r.Protocol
		pooled.Windows = append(pooled.Windows, r.Windows...)
		parts = append(parts, r.Stats)
		regs = append(regs, r.Obs)
		series = append(series, r.Series)
		pooled.AvgNeighbors += r.AvgNeighbors
		pooled.LatencySumSec += r.LatencySumSec
		pooled.LatencyPairs += r.LatencyPairs
		pooled.Events += r.Events
		pooled.Trials++
	}
	pooled.Stats, pooled.Summary = metrics.Merge(parts)
	pooled.Obs = obs.Merge(regs)
	pooled.Series = obs.MergeSeries(series)
	if pooled.Trials > 0 {
		pooled.AvgNeighbors /= float64(pooled.Trials)
	}
	return pooled
}
