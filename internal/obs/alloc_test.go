package obs_test

import (
	"testing"

	"mmv2v/internal/obs"
)

// TestNilHandleAllocFree pins the "zero-cost when disabled" contract
// independently of the alloccheck lint pass and the benchmark gate: the
// nil-handle no-op path of every handle type must not allocate at all.
func TestNilHandleAllocFree(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("hot.path")
	g := r.Gauge("hot.path")
	h := r.Histogram("hot.path", []float64{1, 2, 3})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Observe(1.5)
		h.Observe(2.5)
	}); n != 0 {
		t.Errorf("nil-handle no-op path allocates %v times per run, want 0", n)
	}
}

// TestLiveHandleUpdateAllocFree pins the enabled-statistics steady state:
// once a handle exists, updating it must not allocate either — counters and
// gauges mutate in place, and histogram buckets are fixed at creation.
func TestLiveHandleUpdateAllocFree(t *testing.T) {
	r := obs.New()
	c := r.Counter("hot.path")
	g := r.Gauge("hot.path")
	h := r.Histogram("hot.path", []float64{1, 2, 3})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Observe(1.5)
		h.Observe(2.5)
	}); n != 0 {
		t.Errorf("live-handle update path allocates %v times per run, want 0", n)
	}
}
