package obs

// ProgressState is a structured snapshot of how far a run has advanced,
// generalizing the free-text Progress callbacks the experiment runners
// already expose: cells are experiment-grid points, trials are seeds within
// a cell, windows are measurement windows within a trial. Totals of zero
// mean "unknown"; consumers skip that level when estimating completion.
type ProgressState struct {
	// Label names the unit of work most recently finished or started
	// ("fig9/density=120/mmV2V", "trial 3/10", ...).
	Label        string `json:"label,omitempty"`
	CellsDone    int    `json:"cells_done"`
	CellsTotal   int    `json:"cells_total"`
	TrialsDone   int    `json:"trials_done"`
	TrialsTotal  int    `json:"trials_total"`
	WindowsDone  int    `json:"windows_done"`
	WindowsTotal int    `json:"windows_total"`
}

// Fraction estimates completed work in [0, 1] from the finest level with a
// known total: windows, then trials, then cells. It returns 0 when no level
// has a total, and clamps overshoot (e.g. retried trials) to 1.
func (p ProgressState) Fraction() float64 {
	frac := 0.0
	switch {
	case p.WindowsTotal > 0:
		frac = float64(p.WindowsDone) / float64(p.WindowsTotal)
	case p.TrialsTotal > 0:
		frac = float64(p.TrialsDone) / float64(p.TrialsTotal)
	case p.CellsTotal > 0:
		frac = float64(p.CellsDone) / float64(p.CellsTotal)
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}
