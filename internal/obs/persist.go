// Checkpoint support (DESIGN.md §11): a registry serializes every
// instrument with names in sorted order — a canonical encoding — and
// restores IN PLACE, mutating existing instruments rather than replacing
// them. In-place restoration matters because instrumented layers hold
// pre-fetched handles into the registry: a resumed environment first
// rebuilds its layers (which re-register their handles with zero values),
// then LoadState overwrites the live instruments with checkpointed values
// without invalidating any handle.
package obs

import (
	"sort"

	"mmv2v/internal/persist"
)

// sortedNames returns the keys of a string-keyed map in ascending order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SaveState appends the registry's full contents in canonical order.
func (r *Registry) SaveState(e *persist.Encoder) {
	e.U32(uint32(len(r.counters)))
	for _, name := range sortedNames(r.counters) {
		e.String(name)
		e.U64(r.counters[name].n)
	}
	e.U32(uint32(len(r.gauges)))
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		e.String(name)
		e.U64(g.count)
		e.F64(g.sum)
		e.F64(g.min)
		e.F64(g.max)
	}
	e.U32(uint32(len(r.hists)))
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		e.String(name)
		e.U32(uint32(len(h.bounds)))
		for _, b := range h.bounds {
			e.F64(b)
		}
		for _, c := range h.counts {
			e.U64(c)
		}
		e.U64(h.count)
		e.F64(h.sum)
	}
}

// LoadState restores contents checkpointed by SaveState, creating missing
// instruments and overwriting existing ones in place. A histogram that
// already exists (re-registered by a rebuilt layer) must carry the same
// bucket schema as the checkpoint; restored schemas are validated as
// non-empty and sorted, so the registry's construction invariant holds
// even for hostile input.
func (r *Registry) LoadState(d *persist.Decoder) error {
	nc := d.Count(8 + 4)
	for i := 0; i < nc; i++ {
		name := d.String()
		n := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		r.Counter(name).n = n
	}
	ng := d.Count(4 + 8*4)
	for i := 0; i < ng; i++ {
		name := d.String()
		count := d.U64()
		sum := d.F64()
		min := d.F64()
		max := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		g := r.Gauge(name)
		g.count, g.sum, g.min, g.max = count, sum, min, max
	}
	nh := d.Count(4 + 4 + 8 + 8 + 8)
	for i := 0; i < nh; i++ {
		name := d.String()
		nb := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		bounds := make([]float64, nb)
		for k := range bounds {
			bounds[k] = d.F64()
		}
		counts := make([]uint64, nb+1)
		for k := range counts {
			counts[k] = d.U64()
		}
		count := d.U64()
		sum := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
			d.Failf("histogram %q has empty or unsorted bounds", name)
			return d.Err()
		}
		h := r.hists[name]
		if h == nil {
			h = r.Histogram(name, bounds)
		}
		if len(h.bounds) != len(bounds) {
			d.Failf("histogram %q bucket schema mismatch (%d vs %d bounds)", name, len(h.bounds), len(bounds))
			return d.Err()
		}
		copy(h.bounds, bounds)
		copy(h.counts, counts)
		h.count, h.sum = count, sum
	}
	return d.Err()
}
