// Checkpoint support (DESIGN.md §11): a registry serializes every
// instrument with names in sorted order — a canonical encoding — and
// restores IN PLACE, mutating existing instruments rather than replacing
// them. In-place restoration matters because instrumented layers hold
// pre-fetched handles into the registry: a resumed environment first
// rebuilds its layers (which re-register their handles with zero values),
// then LoadState overwrites the live instruments with checkpointed values
// without invalidating any handle.
package obs

import (
	"sort"

	"mmv2v/internal/persist"
)

// sortedNames returns the keys of a string-keyed map in ascending order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SaveState appends the registry's full contents in canonical order.
func (r *Registry) SaveState(e *persist.Encoder) {
	e.U32(uint32(len(r.counters)))
	for _, name := range sortedNames(r.counters) {
		e.String(name)
		e.U64(r.counters[name].n)
	}
	e.U32(uint32(len(r.gauges)))
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		e.String(name)
		e.U64(g.count)
		e.F64(g.sum)
		e.F64(g.min)
		e.F64(g.max)
	}
	e.U32(uint32(len(r.hists)))
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		e.String(name)
		e.U32(uint32(len(h.bounds)))
		for _, b := range h.bounds {
			e.F64(b)
		}
		for _, c := range h.counts {
			e.U64(c)
		}
		e.U64(h.count)
		e.F64(h.sum)
	}
}

// encodeRow appends one export row in canonical field order. Scope is
// included so the codec round-trips any row, though series-internal rows
// always carry an empty scope.
func encodeRow(e *persist.Encoder, row Row) {
	e.String(row.Scope)
	e.String(row.Name)
	e.String(row.Kind)
	e.U64(row.Count)
	e.F64(row.Sum)
	e.F64(row.Min)
	e.F64(row.Max)
	e.U32(uint32(len(row.Buckets)))
	for _, b := range row.Buckets {
		e.String(b.LE)
		e.U64(b.N)
	}
}

// rowWireMin is the minimum encoded size of one row (three empty strings,
// the four aggregates, the bucket count), used to clamp hostile counts.
const rowWireMin = 3*4 + 8 + 3*8 + 4

// decodeRow restores one export row encoded by encodeRow.
func decodeRow(d *persist.Decoder) Row {
	var row Row
	row.Scope = d.String()
	row.Name = d.String()
	row.Kind = d.String()
	row.Count = d.U64()
	row.Sum = d.F64()
	row.Min = d.F64()
	row.Max = d.F64()
	nb := d.Count(4 + 8)
	for k := 0; k < nb && d.Err() == nil; k++ {
		row.Buckets = append(row.Buckets, BucketCount{LE: d.String(), N: d.U64()})
	}
	return row
}

// SaveState appends the series' full contents — the previous cumulative
// snapshot the next delta will be computed against, and every sampled
// point — so a resumed run continues its series with no gap or duplicate
// window.
func (s *Series) SaveState(e *persist.Encoder) {
	e.U32(uint32(len(s.prev)))
	for _, row := range s.prev {
		encodeRow(e, row)
	}
	e.U32(uint32(len(s.points)))
	for _, pt := range s.points {
		e.Int(pt.Window)
		e.U32(uint32(len(pt.Rows)))
		for _, row := range pt.Rows {
			encodeRow(e, row)
		}
	}
}

// LoadState restores contents checkpointed by Series.SaveState, replacing
// the receiver's snapshot and points wholesale (a series holds no live
// handles, so in-place patching buys nothing).
func (s *Series) LoadState(d *persist.Decoder) error {
	np := d.Count(rowWireMin)
	prev := make([]Row, 0, np)
	for i := 0; i < np && d.Err() == nil; i++ {
		prev = append(prev, decodeRow(d))
	}
	nw := d.Count(8 + 4)
	points := make([]SeriesPoint, 0, nw)
	for i := 0; i < nw && d.Err() == nil; i++ {
		pt := SeriesPoint{Window: d.Int()}
		nr := d.Count(rowWireMin)
		for k := 0; k < nr && d.Err() == nil; k++ {
			pt.Rows = append(pt.Rows, decodeRow(d))
		}
		points = append(points, pt)
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.prev = prev
	s.points = points
	return nil
}

// LoadState restores contents checkpointed by SaveState, creating missing
// instruments and overwriting existing ones in place. A histogram that
// already exists (re-registered by a rebuilt layer) must carry the same
// bucket schema as the checkpoint; restored schemas are validated as
// non-empty and sorted, so the registry's construction invariant holds
// even for hostile input.
func (r *Registry) LoadState(d *persist.Decoder) error {
	nc := d.Count(8 + 4)
	for i := 0; i < nc; i++ {
		name := d.String()
		n := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		r.Counter(name).n = n
	}
	ng := d.Count(4 + 8*4)
	for i := 0; i < ng; i++ {
		name := d.String()
		count := d.U64()
		sum := d.F64()
		min := d.F64()
		max := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		g := r.Gauge(name)
		g.count, g.sum, g.min, g.max = count, sum, min, max
	}
	nh := d.Count(4 + 4 + 8 + 8 + 8)
	for i := 0; i < nh; i++ {
		name := d.String()
		nb := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		bounds := make([]float64, nb)
		for k := range bounds {
			bounds[k] = d.F64()
		}
		counts := make([]uint64, nb+1)
		for k := range counts {
			counts[k] = d.U64()
		}
		count := d.U64()
		sum := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
			d.Failf("histogram %q has empty or unsorted bounds", name)
			return d.Err()
		}
		h := r.hists[name]
		if h == nil {
			h = r.Histogram(name, bounds)
		}
		if len(h.bounds) != len(bounds) {
			d.Failf("histogram %q bucket schema mismatch (%d vs %d bounds)", name, len(h.bounds), len(bounds))
			return d.Err()
		}
		copy(h.bounds, bounds)
		copy(h.counts, counts)
		h.count, h.sum = count, sum
	}
	return d.Err()
}
