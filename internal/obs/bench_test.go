package obs_test

import (
	"testing"

	"mmv2v/internal/obs"
)

// The nil-handle benchmarks pin the "zero-cost when disabled" contract: with
// statistics off, every instrumented hot path pays one predictable branch.
// CI runs these once as a smoke check (see .github/workflows/ci.yml).

func BenchmarkNilCounterInc(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilGaugeObserve(b *testing.B) {
	var r *obs.Registry
	g := r.Gauge("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Observe(float64(i))
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *obs.Registry
	h := r.Histogram("hot.path", []float64{1, 2, 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := obs.New().Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.New().Histogram("hot.path", obs.ExpBuckets(16, 2, 11))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkRegistryMerge(b *testing.B) {
	parts := make([]*obs.Registry, 8)
	for tr := range parts {
		r := obs.New()
		for k := 0; k < 16; k++ {
			r.Counter("ctr").Add(uint64(k))
			r.Gauge("gauge").Observe(float64(k))
			r.Histogram("hist", []float64{4, 8, 12}).Observe(float64(k))
		}
		parts[tr] = r
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.Merge(parts)
	}
}
