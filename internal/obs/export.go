// Export surface of the stats registry: stable Row snapshots plus JSONL,
// CSV and human-readable summary renderings. All three are deterministic —
// rows sort by (name, kind) and floats format with strconv's shortest
// round-trip representation — so byte-comparing two exports is a valid
// determinism check.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric kinds as they appear in exported rows.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// BucketCount is one histogram bucket in an exported row: the upper bound
// (inclusive; "+Inf" for the overflow bucket) and its count.
type BucketCount struct {
	LE string `json:"le"`
	N  uint64 `json:"n"`
}

// Row is one metric's exported snapshot. Scope labels the run or experiment
// cell the metric came from (e.g. "fig9/density=15/mmV2V"); Count/Sum/Min/
// Max carry the kind's aggregates (a counter uses Count only).
type Row struct {
	Scope   string        `json:"scope,omitempty"`
	Name    string        `json:"name"`
	Kind    string        `json:"kind"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Rows snapshots every metric as a Row, sorted by (name, kind), all stamped
// with the given scope. A nil registry yields nil.
func (r *Registry) Rows(scope string) []Row {
	if r == nil {
		return nil
	}
	out := make([]Row, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	//mmv2v:sorted pure row collection; sorted below before any rendering
	for name, c := range r.counters {
		out = append(out, Row{Scope: scope, Name: name, Kind: KindCounter, Count: c.n})
	}
	//mmv2v:sorted pure row collection; sorted below before any rendering
	for name, g := range r.gauges {
		row := Row{Scope: scope, Name: name, Kind: KindGauge, Count: g.count, Sum: g.sum}
		if g.count > 0 {
			row.Min = g.min
			row.Max = g.max
		}
		out = append(out, row)
	}
	//mmv2v:sorted pure row collection; sorted below before any rendering
	for name, h := range r.hists {
		row := Row{Scope: scope, Name: name, Kind: KindHistogram, Count: h.count, Sum: h.sum}
		row.Buckets = make([]BucketCount, 0, len(h.counts))
		for k, n := range h.counts {
			le := "+Inf"
			if k < len(h.bounds) {
				le = formatFloat(h.bounds[k])
			}
			row.Buckets = append(row.Buckets, BucketCount{LE: le, N: n})
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

// sortRows orders rows by (scope, name, kind) — the stable export order.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Kind < b.Kind
	})
}

// SortRows orders a concatenation of row snapshots by (scope, name, kind) —
// used when pooling rows from several experiment cells into one export.
func SortRows(rows []Row) { sortRows(rows) }

// formatFloat renders a float with the shortest representation that
// round-trips — the deterministic format used by CSV and summary output.
func formatFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// WriteJSONL writes rows as JSON Lines in slice order.
func WriteJSONL(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	for _, row := range rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes rows as CSV with a fixed header. Histogram buckets render
// in one column as "le=n;le=n;...".
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "scope,name,kind,count,sum,min,max,buckets"); err != nil {
		return err
	}
	for _, row := range rows {
		var buckets strings.Builder
		for k, b := range row.Buckets {
			if k > 0 {
				_ = buckets.WriteByte(';') // strings.Builder never errors
			}
			fmt.Fprintf(&buckets, "%s=%d", b.LE, b.N)
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%s,%s,%s,%s\n",
			row.Scope, row.Name, row.Kind, row.Count,
			formatFloat(row.Sum), formatFloat(row.Min), formatFloat(row.Max),
			buckets.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders rows as a human-readable aligned table: counters show
// their count, gauges count/sum/mean/min/max, histograms count/sum/mean plus
// a bucket breakdown line. Rows render in slice order.
func WriteSummary(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "no statistics recorded")
		return
	}
	nameW := len("name")
	for _, row := range rows {
		label := row.Name
		if row.Scope != "" {
			label = row.Scope + " " + row.Name
		}
		if len(label) > nameW {
			nameW = len(label)
		}
	}
	fmt.Fprintf(w, "%-*s  %-9s %12s %14s %14s %14s %14s\n",
		nameW, "name", "kind", "count", "sum", "mean", "min", "max")
	for _, row := range rows {
		label := row.Name
		if row.Scope != "" {
			label = row.Scope + " " + row.Name
		}
		switch row.Kind {
		case KindCounter:
			fmt.Fprintf(w, "%-*s  %-9s %12d %14s %14s %14s %14s\n",
				nameW, label, row.Kind, row.Count, "-", "-", "-", "-")
		case KindGauge:
			fmt.Fprintf(w, "%-*s  %-9s %12d %14s %14s %14s %14s\n",
				nameW, label, row.Kind, row.Count,
				summaryFloat(row.Sum), summaryMean(row.Sum, row.Count),
				summaryFloat(row.Min), summaryFloat(row.Max))
		case KindHistogram:
			fmt.Fprintf(w, "%-*s  %-9s %12d %14s %14s %14s %14s\n",
				nameW, label, row.Kind, row.Count,
				summaryFloat(row.Sum), summaryMean(row.Sum, row.Count), "-", "-")
			var b strings.Builder
			for k, bc := range row.Buckets {
				if k > 0 {
					_ = b.WriteByte(' ') // strings.Builder never errors
				}
				fmt.Fprintf(&b, "≤%s:%d", bc.LE, bc.N)
			}
			fmt.Fprintf(w, "%-*s    buckets: %s\n", nameW, "", b.String())
		}
	}
}

// summaryFloat formats a float for the summary table with fixed precision.
func summaryFloat(x float64) string {
	if math.Abs(x) >= 1e6 {
		return strconv.FormatFloat(x, 'e', 4, 64)
	}
	return strconv.FormatFloat(x, 'f', 4, 64)
}

// summaryMean renders sum/count, or "-" for an empty metric.
func summaryMean(sum float64, count uint64) string {
	if count == 0 {
		return "-"
	}
	return summaryFloat(sum / float64(count))
}
