package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"mmv2v/internal/obs"
)

// goldenRegistry mirrors TestGoldenJSONL's registry so all three export
// formats are goldened against the same data.
func goldenRegistry() *obs.Registry {
	r := obs.New()
	r.Counter("snd.ssw_tx").Add(144)
	g := r.Gauge("udt.airtime_sec.mcs12")
	g.Observe(0.25)
	g.Observe(0.5)
	h := r.Histogram("world.refresh_links", []float64{16, 64})
	h.Observe(12)
	h.Observe(80)
	return r
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteCSV(&buf, goldenRegistry().Rows("fig9/density=15/mmV2V")); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"scope,name,kind,count,sum,min,max,buckets",
		"fig9/density=15/mmV2V,snd.ssw_tx,counter,144,0,0,0,",
		"fig9/density=15/mmV2V,udt.airtime_sec.mcs12,gauge,2,0.75,0.25,0.5,",
		"fig9/density=15/mmV2V,world.refresh_links,histogram,2,92,0,0,16=1;64=0;+Inf=1",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("golden CSV mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestGoldenSummary(t *testing.T) {
	var buf bytes.Buffer
	obs.WriteSummary(&buf, goldenRegistry().Rows(""))
	want := strings.Join([]string{
		"name                   kind             count            sum           mean            min            max",
		"snd.ssw_tx             counter            144              -              -              -              -",
		"udt.airtime_sec.mcs12  gauge                2         0.7500         0.3750         0.2500         0.5000",
		"world.refresh_links    histogram            2        92.0000        46.0000              -              -",
		"                         buckets: ≤16:1 ≤64:0 ≤+Inf:1",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("golden summary mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}
