package obs_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mmv2v/internal/obs"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := obs.New()
	c := r.Counter("layer.events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("layer.events") != c {
		t.Fatal("same name should return the same counter handle")
	}

	g := r.Gauge("layer.dt")
	g.Observe(2)
	g.Observe(-1)
	g.Observe(5)
	if g.Count() != 3 || g.Sum() != 6 {
		t.Fatalf("gauge count/sum = %d/%v, want 3/6", g.Count(), g.Sum())
	}

	h := r.Histogram("layer.sizes", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(10)
	h.Observe(11)
	rows := r.Rows("")
	var hist obs.Row
	for _, row := range rows {
		if row.Kind == obs.KindHistogram {
			hist = row
		}
	}
	want := []obs.BucketCount{{LE: "1", N: 1}, {LE: "10", N: 1}, {LE: "+Inf", N: 1}}
	if !reflect.DeepEqual(hist.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", hist.Buckets, want)
	}
	if hist.Count != 3 || hist.Sum != 21.5 {
		t.Fatalf("hist count/sum = %d/%v, want 3/21.5", hist.Count, hist.Sum)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := obs.New()
	h := r.Histogram("h", []float64{0, 10, 20})
	// Exact bounds land in their own bucket (<= semantics).
	h.Observe(0)
	h.Observe(10)
	h.Observe(20)
	// Strictly above the last bound overflows.
	h.Observe(20.5)
	// NaN is dropped entirely; ±Inf is bucketed but excluded from the sum.
	h.Observe(nan())
	h.Observe(inf(1))
	h.Observe(inf(-1))
	rows := r.Rows("")
	got := rows[0]
	want := []obs.BucketCount{
		{LE: "0", N: 2},    // 0 and -Inf
		{LE: "10", N: 1},   // 10
		{LE: "20", N: 1},   // 20
		{LE: "+Inf", N: 2}, // 20.5 and +Inf
	}
	if !reflect.DeepEqual(got.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", got.Buckets, want)
	}
	if got.Count != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", got.Count)
	}
	if got.Sum != 50.5 {
		t.Fatalf("sum = %v, want 50.5 (±Inf excluded)", got.Sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds should panic")
		}
	}()
	obs.New().Histogram("bad", []float64{5, 1})
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay 0")
	}
	g := r.Gauge("y")
	g.Observe(3)
	if g.Count() != 0 || g.Sum() != 0 {
		t.Fatal("nil gauge should stay empty")
	}
	h := r.Histogram("z", []float64{1})
	h.Observe(3)
	if h.Count() != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	if rows := r.Rows("scope"); rows != nil {
		t.Fatalf("nil registry rows = %v, want nil", rows)
	}
	if merged := obs.Merge([]*obs.Registry{nil, nil}); merged != nil {
		t.Fatal("merging all-nil parts should stay nil")
	}
}

// trialRegistry builds a deterministic per-trial registry keyed by the trial
// index, with integer-valued floats so sums are exact under any fold order.
func trialRegistry(trial int) *obs.Registry {
	r := obs.New()
	r.Counter("ctr.a").Add(uint64(trial + 1))
	r.Counter("ctr.b").Add(uint64(2 * trial))
	g := r.Gauge("gauge.x")
	for k := 0; k <= trial; k++ {
		g.Observe(float64(trial - 2*k))
	}
	h := r.Histogram("hist.y", []float64{2, 8})
	for k := 0; k < 3; k++ {
		h.Observe(float64(trial * k))
	}
	return r
}

func TestMergeSlotOrderInvariance(t *testing.T) {
	// Slot-per-trial semantics: registries constructed in any order merge
	// identically as long as they land in the same slots.
	const trials = 6
	forward := make([]*obs.Registry, trials)
	for tr := 0; tr < trials; tr++ {
		forward[tr] = trialRegistry(tr)
	}
	backward := make([]*obs.Registry, trials)
	for tr := trials - 1; tr >= 0; tr-- {
		backward[tr] = trialRegistry(tr)
	}
	a := obs.Merge(forward).Rows("")
	b := obs.Merge(backward).Rows("")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("construction order changed the merge:\n%v\nvs\n%v", a, b)
	}
}

func TestMergeAssociativityAndCommutativity(t *testing.T) {
	x, y, z := trialRegistry(0), trialRegistry(1), trialRegistry(2)
	all := obs.Merge([]*obs.Registry{x, y, z}).Rows("")
	// Associativity: (x⊕y)⊕z == x⊕y⊕z.
	xy := obs.Merge([]*obs.Registry{trialRegistry(0), trialRegistry(1)})
	nested := obs.Merge([]*obs.Registry{xy, trialRegistry(2)}).Rows("")
	if !reflect.DeepEqual(all, nested) {
		t.Fatalf("merge is not associative:\n%v\nvs\n%v", all, nested)
	}
	// Commutativity holds for these integer-valued metrics (exact float
	// sums), which is what lets failed-trial slots drop out cleanly.
	rev := obs.Merge([]*obs.Registry{trialRegistry(2), trialRegistry(1), trialRegistry(0)}).Rows("")
	if !reflect.DeepEqual(all, rev) {
		t.Fatalf("merge of integer-valued parts is not commutative:\n%v\nvs\n%v", all, rev)
	}
	// Nil slots (failed trials) are skipped, not zero-merged.
	withNil := obs.Merge([]*obs.Registry{trialRegistry(0), nil, trialRegistry(1), trialRegistry(2)}).Rows("")
	if !reflect.DeepEqual(all, withNil) {
		t.Fatalf("nil slot changed the merge:\n%v\nvs\n%v", all, withNil)
	}
}

func TestGoldenJSONL(t *testing.T) {
	r := obs.New()
	r.Counter("snd.ssw_tx").Add(144)
	g := r.Gauge("udt.airtime_sec.mcs12")
	g.Observe(0.25)
	g.Observe(0.5)
	h := r.Histogram("world.refresh_links", []float64{16, 64})
	h.Observe(12)
	h.Observe(80)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, r.Rows("fig9/density=15/mmV2V")); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"scope":"fig9/density=15/mmV2V","name":"snd.ssw_tx","kind":"counter","count":144,"sum":0,"min":0,"max":0}`,
		`{"scope":"fig9/density=15/mmV2V","name":"udt.airtime_sec.mcs12","kind":"gauge","count":2,"sum":0.75,"min":0.25,"max":0.5}`,
		`{"scope":"fig9/density=15/mmV2V","name":"world.refresh_links","kind":"histogram","count":2,"sum":92,"min":0,"max":0,"buckets":[{"le":"16","n":1},{"le":"64","n":0},{"le":"+Inf","n":1}]}`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("golden JSONL mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	rows := obs.Merge([]*obs.Registry{trialRegistry(0), trialRegistry(1)}).Rows("cell")
	var a, b bytes.Buffer
	if err := obs.WriteCSV(&a, rows); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV rendering is not deterministic")
	}
	if !strings.HasPrefix(a.String(), "scope,name,kind,count,sum,min,max,buckets\n") {
		t.Fatalf("missing CSV header:\n%s", a.String())
	}
}

func TestWriteSummaryCoversKinds(t *testing.T) {
	rows := trialRegistry(3).Rows("")
	var buf bytes.Buffer
	obs.WriteSummary(&buf, rows)
	out := buf.String()
	for _, want := range []string{"ctr.a", "gauge.x", "hist.y", "buckets:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	obs.WriteSummary(&empty, nil)
	if !strings.Contains(empty.String(), "no statistics recorded") {
		t.Fatalf("empty summary = %q", empty.String())
	}
}

func TestSortRowsPoolsScopes(t *testing.T) {
	a := trialRegistry(1).Rows("b-scope")
	b := trialRegistry(2).Rows("a-scope")
	pooled := append(append([]obs.Row{}, a...), b...)
	obs.SortRows(pooled)
	if pooled[0].Scope != "a-scope" {
		t.Fatalf("first scope = %q, want a-scope", pooled[0].Scope)
	}
	for i := 1; i < len(pooled); i++ {
		if pooled[i].Scope < pooled[i-1].Scope {
			t.Fatal("rows not sorted by scope")
		}
	}
}

// nan/inf avoid untyped-constant tricks in test bodies.
func nan() float64 { return inf(1) - inf(1) }

func inf(sign int) float64 {
	x := 0.0
	if sign >= 0 {
		return 1 / x
	}
	return -1 / x
}
