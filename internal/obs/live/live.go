// Package live is the HTTP introspection surface of a running simulation
// (DESIGN.md §9): /healthz, /metrics (current pooled Row snapshot, JSONL),
// /series (windowed deltas so far, JSONL), /progress (structured
// obs.ProgressState + ETA) and net/http/pprof.
//
// It is the repository's only sanctioned network boundary, and it keeps the
// determinism contract by construction: the simulation side publishes
// immutable snapshots via an atomic pointer swap, and network goroutines
// only ever read the latest published snapshot — they never touch live
// simulation state, never feed anything back, and never block the window
// loop (the "network threads only enqueue/dequeue" discipline). Publishing
// draws from no random stream and the server's presence changes no
// simulation output; wall-clock time is read only here, for ETA, where it
// can never reach simulation state. Two GETs of /metrics or /series between
// publishes return identical bytes, because both render purely from the
// same snapshot.
package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mmv2v/internal/obs"
)

// Snapshot is one published view of the run: pooled cumulative rows, pooled
// series windows and progress. Snapshots are immutable after publication —
// handlers share them freely.
type Snapshot struct {
	Rows     []obs.Row
	Series   []obs.SeriesPoint
	Progress obs.ProgressState
}

// Server aggregates per-trial telemetry into published snapshots and serves
// them. It implements sim.Monitor, so wiring is one field assignment:
// cfg.Monitor = srv. All methods are safe for concurrent use — monitor
// callbacks arrive from worker goroutines.
type Server struct {
	start time.Time
	snap  atomic.Pointer[Snapshot]

	// mu guards the publisher side: per-trial accumulators and progress.
	// Handlers never take it — they load the atomic snapshot.
	mu          sync.Mutex
	prog        obs.ProgressState
	trialRows   map[int][]obs.Row
	trialPoints map[int][]obs.SeriesPoint

	ln  net.Listener
	srv *http.Server
}

// NewServer returns a server with an empty published snapshot. Start brings
// up the listener; until then the server is a plain Monitor sink.
func NewServer() *Server {
	s := &Server{
		start:       time.Now(),
		trialRows:   map[int][]obs.Row{},
		trialPoints: map[int][]obs.SeriesPoint{},
	}
	s.snap.Store(&Snapshot{})
	return s
}

// Start listens on addr (":0" picks a free port) and serves in the
// background. It returns the bound address, e.g. "127.0.0.1:38217".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// listener died, which only kills observation, never the run.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Safe to call before Start (no-op).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// SetTotals declares the run's full extent for progress fractions and ETA.
// Levels left 0 render as unknown.
func (s *Server) SetTotals(cells, trials, windows int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prog.CellsTotal = cells
	s.prog.TrialsTotal = trials
	s.prog.WindowsTotal = windows
	s.publishLocked()
}

// StartRun labels the next unit of work and drops per-trial accumulators —
// required between protocol runs of one process, whose trial indices start
// over at 0.
func (s *Server) StartRun(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prog.Label = label
	s.trialRows = map[int][]obs.Row{}
	s.trialPoints = map[int][]obs.SeriesPoint{}
	s.publishLocked()
}

// WindowDone implements sim.Monitor: it folds the trial's freshly-copied
// snapshots into the accumulators and republishes.
func (s *Server) WindowDone(trial, window, windows int, rows []obs.Row, points []obs.SeriesPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trialRows[trial] = rows
	s.trialPoints[trial] = points
	s.prog.WindowsDone++
	s.publishLocked()
}

// TrialDone implements sim.Monitor.
func (s *Server) TrialDone(trial int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prog.TrialsDone++
	s.publishLocked()
}

// CellDone advances the cell counter — experiment harnesses call it from
// their Progress hooks with the finished cell's label.
func (s *Server) CellDone(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prog.CellsDone++
	s.prog.Label = label
	s.publishLocked()
}

// Publish replaces the published snapshot wholesale — the entry point for
// runs that are not trial-structured (the -drive loop). The caller hands
// over ownership of rows and points.
func (s *Server) Publish(rows []obs.Row, points []obs.SeriesPoint, prog obs.ProgressState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prog = prog
	s.snap.Store(&Snapshot{Rows: rows, Series: points, Progress: prog})
}

// publishLocked merges the per-trial accumulators slot-per-trial — ascending
// trial order, exactly like the end-of-run merge — and swaps in a fresh
// snapshot. Callers hold mu.
func (s *Server) publishLocked() {
	trials := make([]int, 0, len(s.trialPoints))
	//mmv2v:sorted pure key collection; sorted below before merging
	for tr := range s.trialPoints {
		trials = append(trials, tr)
	}
	//mmv2v:sorted pure key collection; sorted below before merging
	for tr := range s.trialRows {
		if _, ok := s.trialPoints[tr]; !ok {
			trials = append(trials, tr)
		}
	}
	sort.Ints(trials)
	rowParts := make([][]obs.Row, 0, len(trials))
	pointParts := make([][]obs.SeriesPoint, 0, len(trials))
	for _, tr := range trials {
		rowParts = append(rowParts, s.trialRows[tr])
		pointParts = append(pointParts, s.trialPoints[tr])
	}
	s.snap.Store(&Snapshot{
		Rows:     obs.MergeRows(rowParts),
		Series:   obs.MergePoints(pointParts),
		Progress: s.prog,
	})
}

// Snapshot returns the latest published snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Handler returns the introspection mux — exposed so tests can drive it
// without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Write errors mean the client hung up; there is nowhere to report them.
	_ = obs.WriteJSONL(w, s.snap.Load().Rows)
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteSeriesJSONL(w, obs.SeriesRows(s.snap.Load().Series, ""))
}

// progressBody is the /progress response: the structured state plus wall
// clock derived estimates. ETA is omitted until some fraction is known.
type progressBody struct {
	obs.ProgressState
	Fraction   float64  `json:"fraction"`
	ElapsedSec float64  `json:"elapsed_sec"`
	EtaSec     *float64 `json:"eta_sec,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	prog := s.snap.Load().Progress
	body := progressBody{
		ProgressState: prog,
		Fraction:      prog.Fraction(),
		ElapsedSec:    time.Since(s.start).Seconds(),
	}
	if body.Fraction > 0 {
		eta := body.ElapsedSec * (1 - body.Fraction) / body.Fraction
		body.EtaSec = &eta
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}
