package live_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mmv2v/internal/obs"
	"mmv2v/internal/obs/live"
)

// get performs one in-process GET against the server's handler.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// sampleTrial fabricates one trial's monitor payload: cumulative rows and
// the series points so far.
func sampleTrial(trial, windows int) ([]obs.Row, []obs.SeriesPoint) {
	r := obs.New()
	s := obs.NewSeries()
	for w := 0; w < windows; w++ {
		r.Counter("snd.ssw_tx").Add(uint64(10*trial + w + 1))
		r.Gauge("udt.goodput").Observe(float64(trial + w))
		s.Sample(w, r)
	}
	return r.Rows(""), s.Points()
}

func TestEndpointsServePublishedSnapshot(t *testing.T) {
	srv := live.NewServer()
	h := srv.Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != `{"status":"ok"}` {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Before any publish: empty but well-formed.
	if code, body := get(t, h, "/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("empty /metrics = %d %q", code, body)
	}

	rows, points := sampleTrial(0, 2)
	srv.WindowDone(0, 0, 2, rows[:len(rows):len(rows)], points[:1])
	srv.WindowDone(0, 1, 2, rows, points)
	srv.TrialDone(0)

	code, body = get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, `"name":"snd.ssw_tx"`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get(t, h, "/series")
	if code != http.StatusOK || !strings.Contains(body, `"window":1`) {
		t.Fatalf("/series = %d %q", code, body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var parsed map[string]any
		if err := json.Unmarshal([]byte(line), &parsed); err != nil {
			t.Fatalf("/series line %q is not JSON: %v", line, err)
		}
	}
}

// TestMetricsAndSeriesByteStable pins the snapshot contract: two
// consecutive GETs with no publish in between return identical bytes.
func TestMetricsAndSeriesByteStable(t *testing.T) {
	srv := live.NewServer()
	h := srv.Handler()
	for trial := 0; trial < 3; trial++ {
		rows, points := sampleTrial(trial, 2)
		srv.WindowDone(trial, 1, 2, rows, points)
	}
	for _, path := range []string{"/metrics", "/series"} {
		_, first := get(t, h, path)
		_, second := get(t, h, path)
		if first == "" {
			t.Fatalf("%s returned no rows", path)
		}
		if first != second {
			t.Fatalf("%s not byte-stable:\nfirst:\n%s\nsecond:\n%s", path, first, second)
		}
	}
}

// TestPublishMergesTrialsInSlotOrder pins that the live view pools exactly
// like the end-of-run merge: arrival order must not matter.
func TestPublishMergesTrialsInSlotOrder(t *testing.T) {
	render := func(order []int) string {
		srv := live.NewServer()
		for _, trial := range order {
			rows, points := sampleTrial(trial, 2)
			srv.WindowDone(trial, 1, 2, rows, points)
		}
		_, body := get(t, srv.Handler(), "/series")
		return body
	}
	if a, b := render([]int{0, 1, 2}), render([]int{2, 0, 1}); a != b {
		t.Fatalf("arrival order changed the published series:\n%s\nvs\n%s", a, b)
	}
}

func TestProgressReportsStateAndETA(t *testing.T) {
	srv := live.NewServer()
	h := srv.Handler()
	var body struct {
		obs.ProgressState
		Fraction   float64  `json:"fraction"`
		ElapsedSec float64  `json:"elapsed_sec"`
		EtaSec     *float64 `json:"eta_sec"`
	}
	decode := func() {
		t.Helper()
		code, raw := get(t, h, "/progress")
		if code != http.StatusOK {
			t.Fatalf("/progress = %d", code)
		}
		body = struct {
			obs.ProgressState
			Fraction   float64  `json:"fraction"`
			ElapsedSec float64  `json:"elapsed_sec"`
			EtaSec     *float64 `json:"eta_sec"`
		}{}
		if err := json.Unmarshal([]byte(raw), &body); err != nil {
			t.Fatalf("/progress body %q: %v", raw, err)
		}
	}

	decode()
	if body.Fraction != 0 || body.EtaSec != nil {
		t.Fatalf("fresh server progress = %+v, want zero fraction and no ETA", body)
	}

	srv.SetTotals(2, 4, 8)
	srv.StartRun("mmv2v")
	rows, points := sampleTrial(0, 1)
	srv.WindowDone(0, 0, 8, rows, points)
	srv.WindowDone(0, 1, 8, rows, points)
	decode()
	if body.WindowsDone != 2 || body.WindowsTotal != 8 || body.Label != "mmv2v" {
		t.Fatalf("progress = %+v, want 2/8 windows labelled mmv2v", body)
	}
	if body.Fraction != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", body.Fraction)
	}
	if body.EtaSec == nil || *body.EtaSec < 0 {
		t.Fatalf("eta = %v, want a non-negative estimate", body.EtaSec)
	}

	srv.CellDone("fig9/density=15")
	srv.TrialDone(0)
	decode()
	if body.CellsDone != 1 || body.TrialsDone != 1 || body.Label != "fig9/density=15" {
		t.Fatalf("progress after cell/trial = %+v", body)
	}
}

// TestStartRunResetsTrialAccumulators pins the multi-protocol contract:
// trial indices restart per protocol, so a new run must not merge into the
// previous protocol's slots.
func TestStartRunResetsTrialAccumulators(t *testing.T) {
	srv := live.NewServer()
	h := srv.Handler()
	rows, points := sampleTrial(0, 2)
	srv.StartRun("first")
	srv.WindowDone(0, 1, 2, rows, points)
	_, firstBody := get(t, h, "/metrics")

	srv.StartRun("second")
	srv.WindowDone(0, 1, 2, rows, points)
	_, secondBody := get(t, h, "/metrics")
	if firstBody != secondBody {
		t.Fatalf("second run merged into the first run's slots:\n%s\nvs\n%s", firstBody, secondBody)
	}
}

// TestStartServesOverTCP exercises the real listener path end to end.
func TestStartServesOverTCP(t *testing.T) {
	srv := live.NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(raw)) != `{"status":"ok"}` {
		t.Fatalf("GET /healthz over TCP = %d %q", resp.StatusCode, raw)
	}
}

// TestServerImplementsMonitorShape guards the structural contract with
// sim.Monitor without importing sim (which would be an import cycle through
// nothing — live must stay leaf-level below cmd).
func TestServerImplementsMonitorShape(t *testing.T) {
	var _ interface {
		WindowDone(trial, window, windows int, rows []obs.Row, points []obs.SeriesPoint)
		TrialDone(trial int)
	} = live.NewServer()
}
