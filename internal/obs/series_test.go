package obs_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mmv2v/internal/obs"
	"mmv2v/internal/persist"
)

// findSeriesRow returns the first row in a point matching (name, kind), or
// fails the test.
func findSeriesRow(t *testing.T, pt obs.SeriesPoint, name, kind string) obs.Row {
	t.Helper()
	for _, row := range pt.Rows {
		if row.Name == name && row.Kind == kind {
			return row
		}
	}
	t.Fatalf("window %d has no row %s/%s: %v", pt.Window, name, kind, pt.Rows)
	return obs.Row{}
}

func TestSeriesDeltaSemantics(t *testing.T) {
	r := obs.New()
	s := obs.NewSeries()

	// Window 0: every kind active.
	r.Counter("c").Add(3)
	g := r.Gauge("g")
	g.Observe(4)
	g.Observe(2)
	h := r.Histogram("h", []float64{5})
	h.Observe(1)
	h.Observe(9)
	s.Sample(0, r)

	// Window 1: counter idle, gauge observes a new global max, histogram
	// fills only the overflow bucket.
	g.Observe(10)
	h.Observe(7)
	s.Sample(1, r)

	pts := s.Points()
	if len(pts) != 2 || pts[0].Window != 0 || pts[1].Window != 1 {
		t.Fatalf("points = %+v, want windows [0 1]", pts)
	}

	// Window 0 deltas equal the cumulative values (first sample).
	if got := findSeriesRow(t, pts[0], "c", obs.KindCounter); got.Count != 3 {
		t.Fatalf("window 0 counter delta = %d, want 3", got.Count)
	}
	g0 := findSeriesRow(t, pts[0], "g", obs.KindGauge)
	if g0.Count != 2 || g0.Sum != 6 || g0.Min != 2 || g0.Max != 4 {
		t.Fatalf("window 0 gauge = %+v, want count 2 sum 6 min 2 max 4", g0)
	}

	// Window 1: idle counter omitted; gauge count/sum are deltas while
	// min/max stay cumulative; histogram buckets are per-window deltas.
	for _, row := range pts[1].Rows {
		if row.Name == "c" {
			t.Fatalf("idle counter should be omitted from window 1: %v", pts[1].Rows)
		}
	}
	g1 := findSeriesRow(t, pts[1], "g", obs.KindGauge)
	if g1.Count != 1 || g1.Sum != 10 {
		t.Fatalf("window 1 gauge delta = %+v, want count 1 sum 10", g1)
	}
	if g1.Min != 2 || g1.Max != 10 {
		t.Fatalf("window 1 gauge extrema = min %v max %v, want cumulative 2/10", g1.Min, g1.Max)
	}
	h1 := findSeriesRow(t, pts[1], "h", obs.KindHistogram)
	if h1.Count != 1 || h1.Sum != 7 {
		t.Fatalf("window 1 hist delta = %+v, want count 1 sum 7", h1)
	}
	wantBuckets := []obs.BucketCount{{LE: "5", N: 0}, {LE: "+Inf", N: 1}}
	if !reflect.DeepEqual(h1.Buckets, wantBuckets) {
		t.Fatalf("window 1 hist buckets = %v, want %v", h1.Buckets, wantBuckets)
	}
}

func TestSeriesNilSafety(t *testing.T) {
	var s *obs.Series
	s.Sample(0, obs.New())
	if s.Points() != nil || s.Len() != 0 {
		t.Fatal("nil series should yield no points")
	}
	live := obs.NewSeries()
	live.Sample(0, nil)
	if live.Len() != 0 {
		t.Fatal("sampling a nil registry should be a no-op")
	}
	// An active but empty registry still appends a point so window indices
	// stay aligned with the sim loop.
	live.Sample(0, obs.New())
	if live.Len() != 1 {
		t.Fatalf("empty registry sample: len = %d, want 1", live.Len())
	}
	if merged := obs.MergeSeries([]*obs.Series{nil, nil}); merged != nil {
		t.Fatal("merging all-nil series should stay nil")
	}
}

// trialSeries samples trialRegistry-style activity over the given number of
// windows, keyed by the trial index, with integer-valued floats.
func trialSeries(trial, windows int) *obs.Series {
	r := obs.New()
	s := obs.NewSeries()
	for w := 0; w < windows; w++ {
		r.Counter("ctr.a").Add(uint64(trial + w + 1))
		r.Gauge("gauge.x").Observe(float64(trial*10 + w))
		h := r.Histogram("hist.y", []float64{2, 8})
		h.Observe(float64(trial + 3*w))
		s.Sample(w, r)
	}
	return s
}

func TestMergeSeriesSlotOrderInvariance(t *testing.T) {
	const trials, windows = 5, 4
	forward := make([]*obs.Series, trials)
	for tr := 0; tr < trials; tr++ {
		forward[tr] = trialSeries(tr, windows)
	}
	backward := make([]*obs.Series, trials)
	for tr := trials - 1; tr >= 0; tr-- {
		backward[tr] = trialSeries(tr, windows)
	}
	a := obs.SeriesRows(obs.MergeSeries(forward).Points(), "")
	b := obs.SeriesRows(obs.MergeSeries(backward).Points(), "")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("construction order changed the series merge:\n%v\nvs\n%v", a, b)
	}
	// Nil slots (failed trials) drop out without shifting windows.
	withNil := obs.MergeSeries([]*obs.Series{forward[0], nil, forward[1], forward[2], forward[3], forward[4]})
	if withNil.Len() != windows {
		t.Fatalf("merged len = %d, want %d", withNil.Len(), windows)
	}
}

func TestMergeSeriesMatchesRegistryMerge(t *testing.T) {
	// The last window's cumulative totals (sum of all deltas) must agree
	// with merging the same activity through plain registries: the series
	// is the time decomposition of the cumulative merge.
	const trials, windows = 3, 3
	series := make([]*obs.Series, trials)
	regs := make([]*obs.Registry, trials)
	for tr := 0; tr < trials; tr++ {
		series[tr] = trialSeries(tr, windows)
		r := obs.New()
		for w := 0; w < windows; w++ {
			r.Counter("ctr.a").Add(uint64(tr + w + 1))
			r.Gauge("gauge.x").Observe(float64(tr*10 + w))
			r.Histogram("hist.y", []float64{2, 8}).Observe(float64(tr + 3*w))
		}
		regs[tr] = r
	}
	merged := obs.MergeSeries(series).Points()
	totals := map[string]uint64{}
	var sums = map[string]float64{}
	for _, pt := range merged {
		for _, row := range pt.Rows {
			totals[row.Name] += row.Count
			sums[row.Name] += row.Sum
		}
	}
	for _, want := range obs.Merge(regs).Rows("") {
		if totals[want.Name] != want.Count {
			t.Fatalf("%s: summed window counts = %d, want cumulative %d", want.Name, totals[want.Name], want.Count)
		}
		if want.Kind != obs.KindCounter && sums[want.Name] != want.Sum {
			t.Fatalf("%s: summed window sums = %v, want cumulative %v", want.Name, sums[want.Name], want.Sum)
		}
	}
}

func TestSeriesCodecResumeContinuity(t *testing.T) {
	// Sample two windows, checkpoint, restore into a fresh series, then
	// continue sampling both the original and the restored series from
	// identically-advanced registries: the full exports must match byte
	// for byte — the "no gap, no duplicate window" resume property.
	advance := func(r *obs.Registry, w int) {
		r.Counter("c").Add(uint64(w + 1))
		r.Gauge("g").Observe(float64(5 - w))
		r.Histogram("h", []float64{3}).Observe(float64(2 * w))
	}
	r1 := obs.New()
	s1 := obs.NewSeries()
	for w := 0; w < 2; w++ {
		advance(r1, w)
		s1.Sample(w, r1)
	}

	var e persist.Encoder
	s1.SaveState(&e)
	regBytes := func() []byte {
		var re persist.Encoder
		r1.SaveState(&re)
		return re.Bytes()
	}()

	s2 := obs.NewSeries()
	if err := s2.LoadState(persist.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	r2 := obs.New()
	if err := r2.LoadState(persist.NewDecoder(regBytes)); err != nil {
		t.Fatal(err)
	}

	for w := 2; w < 4; w++ {
		advance(r1, w)
		s1.Sample(w, r1)
		advance(r2, w)
		s2.Sample(w, r2)
	}

	render := func(s *obs.Series) string {
		var buf bytes.Buffer
		if err := obs.WriteSeriesJSONL(&buf, obs.SeriesRows(s.Points(), "run")); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if got, want := render(s2), render(s1); got != want {
		t.Fatalf("resumed series diverged:\ngot:\n%swant:\n%s", got, want)
	}
	wins := make([]int, 0, 4)
	for _, pt := range s2.Points() {
		wins = append(wins, pt.Window)
	}
	if !reflect.DeepEqual(wins, []int{0, 1, 2, 3}) {
		t.Fatalf("resumed windows = %v, want [0 1 2 3]", wins)
	}
}

func TestSeriesCodecRejectsTruncation(t *testing.T) {
	s := trialSeries(1, 3)
	var e persist.Encoder
	s.SaveState(&e)
	raw := e.Bytes()
	if err := obs.NewSeries().LoadState(persist.NewDecoder(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated series state should fail to decode")
	}
}

func TestSeriesGoldenExports(t *testing.T) {
	r := obs.New()
	s := obs.NewSeries()
	r.Counter("snd.ssw_tx").Add(100)
	r.Gauge("udt.goodput").Observe(0.5)
	s.Sample(0, r)
	r.Counter("snd.ssw_tx").Add(44)
	r.Histogram("world.links", []float64{16}).Observe(12)
	s.Sample(1, r)

	rows := obs.SeriesRows(s.Points(), "drive")
	var jb bytes.Buffer
	if err := obs.WriteSeriesJSONL(&jb, rows); err != nil {
		t.Fatal(err)
	}
	wantJSONL := strings.Join([]string{
		`{"scope":"drive","window":0,"name":"snd.ssw_tx","kind":"counter","count":100,"sum":0,"min":0,"max":0}`,
		`{"scope":"drive","window":0,"name":"udt.goodput","kind":"gauge","count":1,"sum":0.5,"min":0.5,"max":0.5}`,
		`{"scope":"drive","window":1,"name":"snd.ssw_tx","kind":"counter","count":44,"sum":0,"min":0,"max":0}`,
		`{"scope":"drive","window":1,"name":"world.links","kind":"histogram","count":1,"sum":12,"min":0,"max":0,"buckets":[{"le":"16","n":1},{"le":"+Inf","n":0}]}`,
	}, "\n") + "\n"
	if jb.String() != wantJSONL {
		t.Fatalf("golden series JSONL mismatch:\ngot:\n%swant:\n%s", jb.String(), wantJSONL)
	}

	var cb bytes.Buffer
	if err := obs.WriteSeriesCSV(&cb, rows); err != nil {
		t.Fatal(err)
	}
	wantCSV := strings.Join([]string{
		"scope,window,name,kind,count,sum,min,max,buckets",
		"drive,0,snd.ssw_tx,counter,100,0,0,0,",
		"drive,0,udt.goodput,gauge,1,0.5,0.5,0.5,",
		"drive,1,snd.ssw_tx,counter,44,0,0,0,",
		"drive,1,world.links,histogram,1,12,0,0,16=1;+Inf=0",
	}, "\n") + "\n"
	if cb.String() != wantCSV {
		t.Fatalf("golden series CSV mismatch:\ngot:\n%swant:\n%s", cb.String(), wantCSV)
	}
}

func TestSortSeriesRowsPoolsScopes(t *testing.T) {
	a := obs.SeriesRows(trialSeries(0, 2).Points(), "b-cell")
	b := obs.SeriesRows(trialSeries(1, 2).Points(), "a-cell")
	pooled := append(append([]obs.SeriesRow{}, a...), b...)
	obs.SortSeriesRows(pooled)
	if pooled[0].Scope != "a-cell" {
		t.Fatalf("first scope = %q, want a-cell", pooled[0].Scope)
	}
	for i := 1; i < len(pooled); i++ {
		p, q := pooled[i-1], pooled[i]
		if q.Scope < p.Scope || (q.Scope == p.Scope && q.Window < p.Window) {
			t.Fatal("rows not sorted by (scope, window)")
		}
	}
}

func TestProgressStateFraction(t *testing.T) {
	cases := []struct {
		name string
		p    obs.ProgressState
		want float64
	}{
		{"empty", obs.ProgressState{}, 0},
		{"cells only", obs.ProgressState{CellsDone: 1, CellsTotal: 4}, 0.25},
		{"trials win over cells", obs.ProgressState{CellsDone: 1, CellsTotal: 4, TrialsDone: 1, TrialsTotal: 2}, 0.5},
		{"windows win over trials", obs.ProgressState{TrialsDone: 1, TrialsTotal: 2, WindowsDone: 3, WindowsTotal: 4}, 0.75},
		{"overshoot clamps", obs.ProgressState{WindowsDone: 9, WindowsTotal: 4}, 1},
	}
	for _, tc := range cases {
		if got := tc.p.Fraction(); got != tc.want {
			t.Errorf("%s: Fraction() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
