// Time dimension of the stats registry (DESIGN.md §9): a Series samples a
// registry at measurement-window boundaries and stores, per window, the
// delta of every metric since the previous sample — the per-interval trace
// stream mmWave simulators treat as the primary experiment output.
//
// Sampling is pull-based and allocation-bounded: the window loop calls
// Sample once per window at the same drained-event-queue boundary used for
// checkpoints, so a series never observes a half-executed window. Like the
// cumulative registry, series merge slot-per-trial (MergeSeries mirrors
// Merge/metrics.Merge): integer deltas are order-free and float sums fold
// in slot order, so pooled series exports are bit-identical for any worker
// count.
//
// Delta semantics per kind:
//
//   - counter: Count is the window's increment;
//   - gauge: Count and Sum are window deltas; Min and Max are cumulative up
//     to and including the window (extrema are not delta-able);
//   - histogram: Count, Sum and every bucket count are window deltas.
//
// Metrics with no activity in a window (zero count delta) are omitted from
// that window's rows, so idle windows stay cheap and exports stay dense.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SeriesPoint is one window's sampled deltas: rows sorted by (name, kind),
// scope left empty (exports stamp it).
type SeriesPoint struct {
	Window int
	Rows   []Row
}

// Series accumulates windowed registry deltas. The zero value is not ready;
// create with NewSeries. A nil *Series ignores Sample and yields no points,
// so "series disabled" propagates like a nil Registry.
type Series struct {
	// prev is the cumulative row snapshot at the last sample; the next
	// sample's deltas are computed against it.
	prev []Row
	// points are the sampled windows in sample (= window) order.
	points []SeriesPoint
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Sample records the registry's delta since the previous Sample call as the
// given window's point. A nil series or nil registry is a no-op (an empty
// registry still appends an empty point, keeping window indices aligned).
func (s *Series) Sample(window int, r *Registry) {
	if s == nil || r == nil {
		return
	}
	cur := r.Rows("")
	s.points = append(s.points, SeriesPoint{Window: window, Rows: deltaRows(cur, s.prev)})
	s.prev = cur
}

// Points returns a copy of the sampled points. Rows inside points are never
// mutated after sampling, so the returned slice is safe to publish to
// concurrent readers.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	return append([]SeriesPoint(nil), s.points...)
}

// Len returns the number of sampled windows.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.points)
}

// deltaRows computes per-metric deltas of cur against prev (both sorted by
// (name, kind)). Metrics absent from prev delta against zero; metrics with
// a zero count delta are dropped.
func deltaRows(cur, prev []Row) []Row {
	prevBy := make(map[string]Row, len(prev))
	for _, row := range prev {
		prevBy[row.Name+"\x00"+row.Kind] = row
	}
	var out []Row
	for _, row := range cur {
		p, ok := prevBy[row.Name+"\x00"+row.Kind]
		if !ok {
			if row.Count == 0 {
				continue
			}
			out = append(out, row)
			continue
		}
		d := row
		d.Count -= p.Count
		if d.Count == 0 {
			continue
		}
		d.Sum -= p.Sum
		// Min/Max stay cumulative: row already carries the extrema to date.
		if len(p.Buckets) == len(row.Buckets) {
			d.Buckets = make([]BucketCount, len(row.Buckets))
			for k := range row.Buckets {
				d.Buckets[k] = BucketCount{LE: row.Buckets[k].LE, N: row.Buckets[k].N - p.Buckets[k].N}
			}
		}
		out = append(out, d)
	}
	return out
}

// MergeRows pools row snapshots by (scope, name, kind) in slot order:
// counts and bucket counts sum, float sums fold in slot order, extrema take
// min/max. Histogram bucket schemas must match, exactly like Registry
// merging. The result is sorted by (scope, name, kind).
func MergeRows(parts [][]Row) []Row {
	merged := make(map[string]*Row)
	var order []string
	for _, rows := range parts {
		for _, row := range rows {
			key := row.Scope + "\x00" + row.Name + "\x00" + row.Kind
			dst, ok := merged[key]
			if !ok {
				cp := row
				cp.Buckets = append([]BucketCount(nil), row.Buckets...)
				merged[key] = &cp
				order = append(order, key)
				continue
			}
			if row.Count > 0 {
				if dst.Count == 0 || row.Min < dst.Min {
					dst.Min = row.Min
				}
				if dst.Count == 0 || row.Max > dst.Max {
					dst.Max = row.Max
				}
			}
			dst.Count += row.Count
			dst.Sum += row.Sum
			if len(row.Buckets) > 0 {
				if len(dst.Buckets) != len(row.Buckets) {
					panic(fmt.Sprintf("obs: histogram %q bucket schema mismatch in row merge (%d vs %d buckets)",
						row.Name, len(dst.Buckets), len(row.Buckets)))
				}
				for k := range row.Buckets {
					dst.Buckets[k].N += row.Buckets[k].N
				}
			}
		}
	}
	out := make([]Row, 0, len(order))
	for _, key := range order {
		out = append(out, *merged[key])
	}
	sortRows(out)
	return out
}

// MergePoints pools per-trial point lists window by window in slot order:
// window k's merged rows are the MergeRows of every part's window-k rows.
// The result covers the union of windows, ascending.
func MergePoints(parts [][]SeriesPoint) []SeriesPoint {
	byWindow := make(map[int][][]Row)
	var windows []int
	for _, points := range parts {
		for _, pt := range points {
			if _, ok := byWindow[pt.Window]; !ok {
				windows = append(windows, pt.Window)
			}
			byWindow[pt.Window] = append(byWindow[pt.Window], pt.Rows)
		}
	}
	sort.Ints(windows)
	out := make([]SeriesPoint, 0, len(windows))
	for _, win := range windows {
		out = append(out, SeriesPoint{Window: win, Rows: MergeRows(byWindow[win])})
	}
	return out
}

// MergeSeries pools per-trial series in slot (= trial) order, skipping nil
// slots, and returns nil when every part is nil — exactly like Merge for
// registries, so "series disabled" propagates through the trial runner. The
// merged result depends only on slot contents and order, never on which
// trial finished first.
func MergeSeries(parts []*Series) *Series {
	var pointParts [][]SeriesPoint
	var prevParts [][]Row
	for _, p := range parts {
		if p == nil {
			continue
		}
		pointParts = append(pointParts, p.points)
		prevParts = append(prevParts, p.prev)
	}
	if pointParts == nil {
		return nil
	}
	return &Series{prev: MergeRows(prevParts), points: MergePoints(pointParts)}
}

// SeriesRow is one metric's delta in one window, flattened for export.
type SeriesRow struct {
	Scope   string        `json:"scope,omitempty"`
	Window  int           `json:"window"`
	Name    string        `json:"name"`
	Kind    string        `json:"kind"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// SeriesRows flattens points into export rows, all stamped with the given
// scope: window-major, then (name, kind) within a window.
func SeriesRows(points []SeriesPoint, scope string) []SeriesRow {
	var out []SeriesRow
	for _, pt := range points {
		for _, row := range pt.Rows {
			out = append(out, SeriesRow{
				Scope:   scope,
				Window:  pt.Window,
				Name:    row.Name,
				Kind:    row.Kind,
				Count:   row.Count,
				Sum:     row.Sum,
				Min:     row.Min,
				Max:     row.Max,
				Buckets: row.Buckets,
			})
		}
	}
	return out
}

// SortSeriesRows orders a concatenation of series exports by (scope,
// window, name, kind) — used when pooling several experiment cells' series
// into one file.
func SortSeriesRows(rows []SeriesRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Kind < b.Kind
	})
}

// WriteSeriesJSONL writes series rows as JSON Lines in slice order.
func WriteSeriesJSONL(w io.Writer, rows []SeriesRow) error {
	enc := json.NewEncoder(w)
	for _, row := range rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV writes series rows as CSV with a fixed header; histogram
// buckets render in one column as "le=n;le=n;...", like WriteCSV.
func WriteSeriesCSV(w io.Writer, rows []SeriesRow) error {
	if _, err := fmt.Fprintln(w, "scope,window,name,kind,count,sum,min,max,buckets"); err != nil {
		return err
	}
	for _, row := range rows {
		var buckets strings.Builder
		for k, b := range row.Buckets {
			if k > 0 {
				_ = buckets.WriteByte(';') // strings.Builder never errors
			}
			fmt.Fprintf(&buckets, "%s=%d", b.LE, b.N)
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%d,%s,%s,%s,%s\n",
			row.Scope, row.Window, row.Name, row.Kind, row.Count,
			formatFloat(row.Sum), formatFloat(row.Min), formatFloat(row.Max),
			buckets.String()); err != nil {
			return err
		}
	}
	return nil
}
