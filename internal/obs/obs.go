// Package obs is the simulator's deterministic, allocation-light statistics
// registry: named counters, gauges and fixed-bucket histograms that layers
// (medium, world, faults, protocols, UDT) update through pre-fetched handles
// on their hot paths.
//
// Two invariants shape the design:
//
//   - Zero-cost when disabled. A nil *Registry hands out nil handles, and
//     every handle method no-ops on a nil receiver with a single predictable
//     branch — no map lookup, no allocation, no atomic. Instrumented hot
//     paths (world refresh, frame delivery, UDT accrual) run at seed speed
//     when statistics are off.
//
//   - Deterministic merge. One Registry serves one trial (the DES is
//     single-threaded, so handles need no synchronization); the parallel
//     trial runner merges per-trial registries in slot (= trial) order,
//     exactly like metrics.Merge. Counters and bucket counts are integers
//     (order-free); float sums are reduced in slot order, so the pooled
//     registry — and everything rendered from it — is bit-identical for any
//     worker count.
package obs

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is
// ready; a nil *Counter ignores every update (the disabled-stats fast path).
type Counter struct {
	n uint64
}

// Inc adds one.
//
//mmv2v:hotpath nil-handle no-op must stay a single branch; pinned by BenchmarkNilCounterInc
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add adds delta.
//
//mmv2v:hotpath nil-handle no-op must stay a single branch; pinned by BenchmarkNilCounterInc
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n += delta
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge summarizes a stream of observations with order-free aggregates:
// count, sum, min and max. (Sums of observations merge deterministically in
// slot order; min/max are fully commutative.) A nil *Gauge ignores every
// observation.
type Gauge struct {
	count uint64
	sum   float64
	min   float64
	max   float64
}

// Observe records one sample. Non-finite samples (NaN, ±Inf) are dropped:
// they would poison the aggregates and cannot be JSON-encoded.
//
//mmv2v:hotpath per-frame gauge update; nil-handle no-op pinned by BenchmarkNilGaugeObserve
func (g *Gauge) Observe(x float64) {
	if g == nil || math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if g.count == 0 || x < g.min {
		g.min = x
	}
	if g.count == 0 || x > g.max {
		g.max = x
	}
	g.count++
	g.sum += x
}

// Count returns the number of recorded samples.
func (g *Gauge) Count() uint64 {
	if g == nil {
		return 0
	}
	return g.count
}

// Sum returns the sum of recorded samples.
func (g *Gauge) Sum() float64 {
	if g == nil {
		return 0
	}
	return g.sum
}

// Histogram counts observations into fixed upper-bound buckets: sample x
// lands in the first bucket with x <= bound, and above the last bound in the
// implicit overflow bucket. Bounds are fixed at creation, so per-trial
// histograms of the same metric always merge bucket-by-bucket. A nil
// *Histogram ignores every observation.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last = overflow
	count  uint64
	sum    float64
}

// Observe records one sample. NaN is dropped; ±Inf is bucketed (first bucket
// for -Inf, overflow for +Inf) but excluded from the sum so exports stay
// JSON-encodable.
//
//mmv2v:hotpath per-frame histogram update; nil-handle no-op pinned by BenchmarkNilHistogramObserve
func (h *Histogram) Observe(x float64) {
	if h == nil || math.IsNaN(x) {
		return
	}
	k := sort.SearchFloat64s(h.bounds, x)
	h.counts[k]++
	h.count++
	if !math.IsInf(x, 0) {
		h.sum += x
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns count upper bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// Registry holds one trial's named metrics. Create with New; a nil
// *Registry is the valid "statistics disabled" registry: every accessor
// returns a nil handle and every export is empty.
//
// A Registry is not safe for concurrent use — the DES is single-threaded,
// and the trial runner gives every trial its own Registry, merging them
// afterwards with Merge.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given sorted
// upper bounds on first use. Later calls return the existing histogram and
// ignore bounds: the first registration fixes the schema. Panics on empty or
// unsorted bounds (programmer error).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h != nil {
		return h
	}
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q needs non-empty sorted bounds, got %v", name, bounds))
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// merge folds another registry into r. Gauge and histogram float sums
// accumulate in call order, so callers must fold parts in a fixed order
// (Merge folds in slot order).
func (r *Registry) merge(other *Registry) {
	//mmv2v:sorted integer counter accumulation into a keyed map; commutative
	for name, c := range other.counters {
		r.Counter(name).n += c.n
	}
	//mmv2v:sorted per-name gauge fold; cross-name order is irrelevant because every name's partial sums still fold in the caller's slot order
	for name, g := range other.gauges {
		dst := r.Gauge(name)
		if g.count == 0 {
			continue
		}
		if dst.count == 0 || g.min < dst.min {
			dst.min = g.min
		}
		if dst.count == 0 || g.max > dst.max {
			dst.max = g.max
		}
		dst.count += g.count
		dst.sum += g.sum
	}
	//mmv2v:sorted per-name histogram fold; cross-name order is irrelevant because every name's partial sums still fold in the caller's slot order
	for name, h := range other.hists {
		dst := r.hists[name]
		if dst == nil {
			dst = r.Histogram(name, h.bounds)
		}
		if len(dst.bounds) != len(h.bounds) {
			panic(fmt.Sprintf("obs: histogram %q bucket schema mismatch (%d vs %d bounds)",
				name, len(dst.bounds), len(h.bounds)))
		}
		for k, n := range h.counts {
			dst.counts[k] += n
		}
		dst.count += h.count
		dst.sum += h.sum
	}
}

// Merge pools per-trial registries in slot (= trial) order, skipping nil
// slots (failed trials, or runs without statistics). It returns nil when
// every part is nil, so "statistics disabled" propagates through the trial
// runner unchanged. Like metrics.Merge, the result depends only on slot
// contents and order — never on which trial finished first — making pooled
// statistics bit-identical for any worker count.
func Merge(parts []*Registry) *Registry {
	var out *Registry
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = New()
		}
		out.merge(p)
	}
	return out
}
