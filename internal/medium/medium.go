// Package medium arbitrates the shared 60 GHz wireless channel. Control
// frames (SSW, negotiation, beacons) are short timed transmissions whose
// reception is decided by Eq. 3 SINR at each listening vehicle — so
// collisions, deafness (receiver aimed elsewhere), capture and side-lobe
// interference all emerge from geometry rather than being assumed.
//
// Two planes share the medium:
//
//   - Control frames via Transmit + StartListen: reception resolves at the
//     frame's end against all transmissions that overlapped it in time.
//   - Data streams via StartStream/StopStream: long-lived directional
//     transmissions (the UDT phase) that both generate interference for
//     control frames and are rate-adapted by querying SINRNow each link
//     refresh.
//
// The co-channel deployment, uniform transmit power and half-duplex
// constraints of the paper's system model are enforced here.
package medium

import (
	"fmt"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/units"
	"mmv2v/internal/world"
)

// Delivery reports a successfully decoded control frame.
type Delivery struct {
	From    int
	To      int
	Payload any
	// SINRdB is the signal-to-interference-plus-noise ratio the frame was
	// decoded at (Eq. 3).
	SINRdB units.DB
	// SNRdB is the interference-free link quality (RSSI over noise) — what
	// a receiver's range/admission filter sees.
	SNRdB units.DB
	At    des.Time
}

// Handler consumes decoded control frames at a listening vehicle.
type Handler func(d Delivery)

// StreamID identifies a data-plane stream.
type StreamID int64

// transmission is one on-air signal, either a control frame (finite End,
// resolved on completion) or a data stream (End = Infinity until stopped).
type transmission struct {
	id      int64
	from    int
	beam    phy.Beam
	start   des.Time
	end     des.Time
	payload any
	stream  bool
	// resolved marks a delivered control frame kept around only so that
	// later partially-overlapping frames still see its interference.
	resolved bool
}

// listener is a vehicle's receive state.
type listener struct {
	beam    phy.Beam
	since   des.Time
	handler Handler
	active  bool
}

// FaultModel is the medium's fault-injection hook (see internal/faults).
// When installed, the medium consults it on every transmission and
// delivery; protocols never see it, so any scheme running on this medium is
// stressed without code changes. A nil model is the clean channel.
type FaultModel interface {
	// RadioUp reports whether vehicle i's radio is alive at time `at`. A
	// down radio neither transmits, receives nor interferes.
	RadioUp(i int, at des.Time) bool
	// DropControl reports whether the control frame from → to resolving at
	// time `at` is lost despite a decodable SINR.
	DropControl(from, to int, at des.Time) bool
	// TxDelay returns the slot-timing jitter added to a control
	// transmission by vehicle `from` at time `at`.
	TxDelay(from int, at des.Time) time.Duration
}

// Medium is the shared channel. Create with New; not safe for concurrent
// use (the DES is single-threaded).
type Medium struct {
	sim *des.Simulator //mmv2v:derived wiring to the host simulator, re-injected on construction
	w   *world.World   //mmv2v:derived wiring to the world, re-injected on construction

	active    []*transmission //mmv2v:derived in-flight transmissions; checkpoints land at frame boundaries when the channel is quiescent
	listeners []listener      //mmv2v:derived in-frame listener registrations; empty at frame-boundary checkpoints
	// nextID starts at 1 so the zero StreamID is never a live stream.
	nextID int64
	// resolveAt de-duplicates end-of-frame resolution events.
	resolveAt map[des.Time]bool //mmv2v:derived event de-dup cache for pending resolutions; empty at frame-boundary checkpoints

	// faults, when non-nil, injects radio churn, control-frame loss and
	// slot jitter into every transmission and delivery.
	faults FaultModel //mmv2v:derived wiring re-attached by SetFaults; the injector checkpoints its own state

	// Delivered counts decoded control frames (diagnostics).
	Delivered uint64
	// Lost counts control frames that at least one aligned listener failed
	// to decode due to SINR (diagnostics; deaf listeners don't count).
	Lost uint64
	// FaultLost counts decodable control frames killed by the fault model's
	// loss process, and FaultMutedTx counts transmissions suppressed because
	// the transmitter's radio was down (diagnostics).
	FaultLost    uint64
	FaultMutedTx uint64

	// Statistics handles (nil-safe no-ops until SetObs installs a live
	// registry).
	obsControlTx     *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsControlDeliv  *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsControlLost   *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsControlFault  *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsFaultMuted    *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsRxAims        *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsStreamStarts  *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsControlSINRdB *obs.Histogram //mmv2v:derived statistics handle reinstalled by SetObs
}

// SetFaults installs a fault model; nil restores the clean channel.
func (m *Medium) SetFaults(f FaultModel) { m.faults = f }

// SetObs installs the statistics registry. A nil registry (the default)
// hands out nil handles, so every instrumented path stays a no-op.
func (m *Medium) SetObs(r *obs.Registry) {
	m.obsControlTx = r.Counter("medium.control_tx")
	m.obsControlDeliv = r.Counter("medium.control_delivered")
	m.obsControlLost = r.Counter("medium.control_lost_sinr")
	m.obsControlFault = r.Counter("medium.control_fault_lost")
	m.obsFaultMuted = r.Counter("medium.fault_muted_tx")
	m.obsRxAims = r.Counter("medium.rx_beam_aims")
	m.obsStreamStarts = r.Counter("medium.stream_starts")
	m.obsControlSINRdB = r.Histogram("medium.control_sinr_db", obs.LinearBuckets(-10, 5, 9))
}

// New builds a Medium over a world and simulator.
func New(sim *des.Simulator, w *world.World) *Medium {
	return &Medium{
		sim:       sim,
		w:         w,
		nextID:    1,
		listeners: make([]listener, w.NumVehicles()),
		resolveAt: make(map[des.Time]bool),
	}
}

// StartListen aims vehicle i's receive beam and registers a handler for
// decodable frames. Re-aiming mid-frame makes the earlier frame undecodable
// for i (the receiver moved away). A nil handler panics.
func (m *Medium) StartListen(i int, beam phy.Beam, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("medium: nil handler for listener %d", i))
	}
	m.listeners[i] = listener{beam: beam, since: m.sim.Now(), handler: h, active: true}
	m.obsRxAims.Inc()
}

// StopListen clears vehicle i's receive state.
func (m *Medium) StopListen(i int) {
	m.listeners[i].active = false
	m.listeners[i].handler = nil
}

// Listening reports whether vehicle i currently has an active receiver.
func (m *Medium) Listening(i int) bool { return m.listeners[i].active }

// Transmit puts a control frame on the air from vehicle `from` for the given
// duration. Reception resolves when the frame ends. Under a fault model the
// frame may start late (slot jitter) or not at all (radio down).
func (m *Medium) Transmit(from int, beam phy.Beam, dur time.Duration, payload any) {
	if dur <= 0 {
		panic(fmt.Sprintf("medium: non-positive frame duration %v", dur))
	}
	now := m.sim.Now()
	start := now
	if m.faults != nil {
		if !m.faults.RadioUp(from, now) {
			m.FaultMutedTx++
			m.obsFaultMuted.Inc()
			return
		}
		start = now.Add(m.faults.TxDelay(from, now))
	}
	tx := &transmission{
		id:      m.nextID,
		from:    from,
		beam:    beam,
		start:   start,
		end:     start.Add(dur),
		payload: payload,
	}
	m.nextID++
	m.active = append(m.active, tx)
	m.obsControlTx.Inc()
	if !m.resolveAt[tx.end] {
		m.resolveAt[tx.end] = true
		m.sim.ScheduleAt(tx.end, "medium.resolve", m.resolve)
	}
}

// StartStream opens a persistent directional data transmission (UDT). The
// stream interferes with control frames and other streams until stopped.
func (m *Medium) StartStream(from int, beam phy.Beam) StreamID {
	now := m.sim.Now()
	tx := &transmission{
		id:     m.nextID,
		from:   from,
		beam:   beam,
		start:  now,
		end:    des.Infinity,
		stream: true,
	}
	m.nextID++
	m.active = append(m.active, tx)
	m.obsStreamStarts.Inc()
	return StreamID(tx.id)
}

// StopStream removes a data stream. Stopping an unknown id is a no-op.
func (m *Medium) StopStream(id StreamID) {
	for k, tx := range m.active {
		if tx.id == int64(id) && tx.stream {
			m.active = append(m.active[:k], m.active[k+1:]...)
			return
		}
	}
}

// ActiveTransmissions returns the number of signals currently on the air.
func (m *Medium) ActiveTransmissions() int { return len(m.active) }

// overlaps reports whether two [start, end) intervals intersect.
func overlaps(aStart, aEnd, bStart, bEnd des.Time) bool {
	return aStart < bEnd && bStart < aEnd
}

// retireGrace is how long an ended control frame stays in the active list
// after delivery: frames that started before it ended (possible under clock
// jitter) must still count its interference at their own resolution.
const retireGrace = 100 * time.Microsecond

// resolve delivers every control frame ending now, then retires frames old
// enough that nothing still on the air overlapped them.
func (m *Medium) resolve() {
	now := m.sim.Now()
	delete(m.resolveAt, now)
	var group []*transmission
	for _, tx := range m.active {
		if tx.end == now && !tx.stream && !tx.resolved {
			tx.resolved = true
			group = append(group, tx)
		}
	}
	if len(group) > 0 {
		m.deliverGroup(group)
	}
	kept := m.active[:0]
	cutoff := now.Add(-retireGrace)
	for _, tx := range m.active {
		if tx.end > now || (tx.resolved && tx.end > cutoff) {
			kept = append(kept, tx)
		}
	}
	m.active = kept
}

// deliverGroup resolves reception of a batch of frames sharing an end time.
// For each listening vehicle the total incident power is computed once; each
// frame's SINR then counts every other overlapping signal as interference
// (Eq. 3).
func (m *Medium) deliverGroup(group []*transmission) {
	noise := m.w.Channel().NoiseMw()
	n := m.w.NumVehicles()
	now := m.sim.Now()
	for j := 0; j < n; j++ {
		l := &m.listeners[j]
		if !l.active {
			continue
		}
		// A listener whose radio is down hears nothing (and, not being
		// aligned in any meaningful sense, does not count toward Lost).
		if m.faults != nil && !m.faults.RadioUp(j, now) {
			continue
		}
		// Incident power from every signal overlapping the group window,
		// and whether j itself was transmitting (half-duplex: cannot hear).
		groupStart := group[0].start
		for _, g := range group {
			if g.start < groupStart {
				groupStart = g.start
			}
		}
		total := units.MilliWatt(0)
		selfBusy := false
		for _, tx := range m.active {
			if !overlaps(tx.start, tx.end, groupStart, now) {
				continue
			}
			if tx.from == j {
				selfBusy = true
				continue
			}
			// A transmitter whose radio died mid-frame radiates nothing.
			if m.faults != nil && !m.faults.RadioUp(tx.from, now) {
				continue
			}
			total += m.w.RxPowerMw(tx.from, j, tx.beam, l.beam)
		}
		if selfBusy {
			continue
		}
		for _, g := range group {
			if g.from == j {
				continue
			}
			// The listener must have been aimed for the whole frame.
			if l.since > g.start {
				continue
			}
			// A frame whose sender's radio died mid-air is gone.
			if m.faults != nil && !m.faults.RadioUp(g.from, now) {
				continue
			}
			desired := m.w.RxPowerMw(g.from, j, g.beam, l.beam)
			//mmv2v:exact RxPowerMw returns exactly 0 as its out-of-range/beam-miss sentinel
			if desired == 0 {
				continue
			}
			sinr := units.RatioDB(desired, noise+(total-desired))
			m.obsControlSINRdB.Observe(sinr.Decibels())
			if phy.ControlDecodable(sinr) {
				if m.faults != nil && m.faults.DropControl(g.from, j, now) {
					m.FaultLost++
					m.obsControlFault.Inc()
					continue
				}
				m.Delivered++
				m.obsControlDeliv.Inc()
				// Handler may re-aim or stop the listener; re-check.
				h := l.handler
				h(Delivery{
					From:    g.from,
					To:      j,
					Payload: g.payload,
					SINRdB:  sinr,
					SNRdB:   units.RatioDB(desired, noise),
					At:      m.sim.Now(),
				})
				if !l.active {
					break
				}
			} else if sinr > -10 {
				// Near-miss: an aligned listener lost a decodable-class
				// frame to interference or blockage.
				m.Lost++
				m.obsControlLost.Inc()
			}
		}
	}
}

// SINRNow returns the instantaneous data-plane SINR from tx to rx with the
// given beams. All active signals except those transmitted by tx or rx
// count as interference (rx cannot receive while transmitting — callers
// handle TDD — and tx's own stream is the desired signal).
//
//mmv2v:hotpath the per-refresh SINR accumulation the UDT rate adapter queries
func (m *Medium) SINRNow(tx, rx int, txBeam, rxBeam phy.Beam) units.DB {
	now := m.sim.Now()
	if m.faults != nil && (!m.faults.RadioUp(tx, now) || !m.faults.RadioUp(rx, now)) {
		return -300
	}
	desired := m.w.RxPowerMw(tx, rx, txBeam, rxBeam)
	//mmv2v:exact RxPowerMw returns exactly 0 as its out-of-range/beam-miss sentinel
	if desired == 0 {
		return -300
	}
	interference := units.MilliWatt(0)
	for _, t := range m.active {
		if t.from == tx || t.from == rx {
			continue
		}
		if t.end <= now {
			continue // retired frame lingering in its grace window
		}
		if m.faults != nil && !m.faults.RadioUp(t.from, now) {
			continue
		}
		interference += m.w.RxPowerMw(t.from, rx, t.beam, rxBeam)
	}
	return units.RatioDB(desired, m.w.Channel().NoiseMw()+interference)
}

// Reset clears all transmissions and listeners (used between frames or
// trials sharing a medium).
func (m *Medium) Reset() {
	m.active = m.active[:0]
	for i := range m.listeners {
		m.listeners[i] = listener{}
	}
	// Pending resolve events will find empty groups and are harmless.
}
