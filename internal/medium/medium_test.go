package medium

import (
	"math"
	"testing"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/geom"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/units"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// lineWorld builds a deterministic world with vehicles placed at the given
// eastbound arc positions in the given lanes (parallel same-direction
// traffic, stationary for the duration of a test).
func lineWorld(t *testing.T, lanes []int, positions []float64) (*world.World, *des.Simulator, *Medium) {
	t.Helper()
	if len(lanes) != len(positions) {
		t.Fatal("lanes and positions length mismatch")
	}
	cfg := traffic.DefaultConfig(0)
	cfg.LaneChangeCheckEvery = 0
	road, err := traffic.New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := range positions {
		road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: lanes[k], S: positions[k], V: 0, DesiredV: 15})
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	return w, sim, New(sim, w)
}

// aim returns beams pointing from i to j and from j to i with given widths.
func aim(w *world.World, i, j int, txW, rxW units.Radian) (phy.Beam, phy.Beam) {
	l, ok := w.Link(i, j)
	if !ok {
		panic("no link")
	}
	back, _ := w.Link(j, i)
	return phy.Beam{Bearing: l.Bearing, Width: txW}, phy.Beam{Bearing: back.Bearing, Width: rxW}
}

func TestAlignedFrameDelivered(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	var got []Delivery
	m.StartListen(1, rxBeam, func(d Delivery) { got = append(got, d) })
	m.Transmit(0, txBeam, 15*time.Microsecond, "ssw")
	sim.RunAll()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	d := got[0]
	if d.From != 0 || d.To != 1 || d.Payload != "ssw" {
		t.Errorf("delivery = %+v", d)
	}
	if d.SINRdB < 10 {
		t.Errorf("SINR = %v dB, want strong at 40 m", d.SINRdB)
	}
	if d.At != des.At(15*time.Microsecond) {
		t.Errorf("delivered at %v", d.At)
	}
	if m.Delivered != 1 {
		t.Errorf("Delivered = %d", m.Delivered)
	}
}

func TestMisalignedListenerHearsNothing(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	// Aim the receiver 180° away.
	rxBeam.Bearing = geom.NormalizeBearing(rxBeam.Bearing + geom.Bearing(math.Pi))
	delivered := 0
	m.StartListen(1, rxBeam, func(Delivery) { delivered++ })
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("misaligned listener decoded %d frames", delivered)
	}
}

func TestNotListeningHearsNothing(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	if m.Delivered != 0 {
		t.Errorf("Delivered = %d without listeners", m.Delivered)
	}
	_ = w
}

func TestStopListen(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	delivered := 0
	m.StartListen(1, rxBeam, func(Delivery) { delivered++ })
	m.StopListen(1)
	if m.Listening(1) {
		t.Error("still listening after StopListen")
	}
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("delivered = %d after StopListen", delivered)
	}
}

func TestLateListenerMissesFrame(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	delivered := 0
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	// Listener tunes in 5 µs into the frame: must not decode.
	sim.ScheduleAt(des.At(5*time.Microsecond), "tune", func() {
		m.StartListen(1, rxBeam, func(Delivery) { delivered++ })
	})
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("late listener decoded %d frames", delivered)
	}
}

func TestCollisionNeitherDecodedWhenComparable(t *testing.T) {
	// Two transmitters equidistant from the listener transmit
	// simultaneously into its beam: mutual interference must kill both.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx0, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	tx2, _ := aim(w, 2, 1, geom.Deg(30), geom.Deg(12))
	// Listener uses a wide (quasi-omni) beam to hear both directions.
	delivered := 0
	m.StartListen(1, phy.Omni, func(Delivery) { delivered++ })
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	m.Transmit(2, tx2, 15*time.Microsecond, nil)
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("comparable collision still delivered %d frames", delivered)
	}
	if m.Lost == 0 {
		t.Error("collision not recorded as loss")
	}
}

func TestCaptureEffect(t *testing.T) {
	// A much closer transmitter should be captured despite a far interferer.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 10, 220})
	tx0, rx := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	tx2, _ := aim(w, 2, 1, geom.Deg(30), geom.Deg(12))
	var froms []int
	m.StartListen(1, rx, func(d Delivery) { froms = append(froms, d.From) })
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	m.Transmit(2, tx2, 15*time.Microsecond, nil)
	sim.RunAll()
	if len(froms) != 1 || froms[0] != 0 {
		t.Errorf("captured froms = %v, want [0]", froms)
	}
}

func TestHalfDuplexTransmitterCannotReceive(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	tx0, rx1 := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	tx1, rx0 := aim(w, 1, 0, geom.Deg(30), geom.Deg(12))
	got := map[int]int{}
	m.StartListen(0, rx0, func(d Delivery) { got[0]++ })
	m.StartListen(1, rx1, func(d Delivery) { got[1]++ })
	// Both transmit simultaneously at each other: neither can decode
	// because both are busy transmitting (half duplex).
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	m.Transmit(1, tx1, 15*time.Microsecond, nil)
	sim.RunAll()
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("half-duplex violated: %v", got)
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx0, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	tx2, _ := aim(w, 2, 1, geom.Deg(30), geom.Deg(12))
	var froms []int
	m.StartListen(1, phy.Omni, func(d Delivery) { froms = append(froms, d.From) })
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	sim.ScheduleAt(des.At(16*time.Microsecond), "second", func() {
		m.Transmit(2, tx2, 15*time.Microsecond, nil)
	})
	sim.RunAll()
	if len(froms) != 2 {
		t.Fatalf("froms = %v, want two sequential deliveries", froms)
	}
}

func TestStreamInterferesWithControl(t *testing.T) {
	// An ongoing data stream aimed at the listener corrupts a control frame
	// that would otherwise decode.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx0, rx := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	streamBeam, _ := aim(w, 2, 1, geom.Deg(3), geom.Deg(3))
	delivered := 0
	m.StartListen(1, phy.Omni, func(Delivery) { delivered++ })
	id := m.StartStream(2, streamBeam)
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("control frame decoded through a data stream beam: %d", delivered)
	}
	m.StopStream(id)
	// Only the already-resolved control frame may linger in its retirement
	// grace window; the stream must be gone.
	if m.ActiveTransmissions() > 1 {
		t.Errorf("active = %d after stop", m.ActiveTransmissions())
	}
	// After the stream stops, a retry succeeds.
	m.StartListen(1, rx, func(Delivery) { delivered++ })
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	sim.RunAll()
	if delivered != 1 {
		t.Errorf("retry delivered = %d, want 1", delivered)
	}
}

func TestSINRNow(t *testing.T) {
	w, _, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx, rx := aim(w, 0, 1, geom.Deg(3), geom.Deg(3))
	clean := m.SINRNow(0, 1, tx, rx)
	if clean < 20 {
		t.Fatalf("clean SINR = %v, want strong", clean)
	}
	// Add an interfering stream pointed at the receiver.
	ib, _ := aim(w, 2, 1, geom.Deg(3), geom.Deg(3))
	m.StartStream(2, ib)
	dirty := m.SINRNow(0, 1, tx, rx)
	if dirty >= clean {
		t.Errorf("interference did not reduce SINR: %v vs %v", dirty, clean)
	}
}

func TestSINRNowExcludesEndpoints(t *testing.T) {
	w, _, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	tx, rx := aim(w, 0, 1, geom.Deg(3), geom.Deg(3))
	base := m.SINRNow(0, 1, tx, rx)
	// The pair's own streams (tx's forward stream, rx's reverse half) must
	// not self-interfere.
	m.StartStream(0, tx)
	back, fwd := aim(w, 1, 0, geom.Deg(3), geom.Deg(3))
	m.StartStream(1, back)
	_ = fwd
	if got := m.SINRNow(0, 1, tx, rx); got != base {
		t.Errorf("own streams changed SINR: %v vs %v", got, base)
	}
}

func TestSINRNowOutOfRange(t *testing.T) {
	_, _, m := lineWorld(t, []int{1, 1}, []float64{0, 900})
	if got := m.SINRNow(0, 1, phy.Omni, phy.Omni); got != -300 {
		t.Errorf("out-of-range SINR = %v, want -300 sentinel", got)
	}
}

func TestReset(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	m.StartListen(1, rxBeam, func(Delivery) {})
	m.StartStream(0, txBeam)
	m.Reset()
	if m.ActiveTransmissions() != 0 || m.Listening(1) {
		t.Error("Reset did not clear state")
	}
	_ = sim
}

func TestNilHandlerPanics(t *testing.T) {
	_, _, m := lineWorld(t, []int{1}, []float64{0})
	defer func() {
		if recover() == nil {
			t.Error("nil handler should panic")
		}
	}()
	m.StartListen(0, phy.Omni, nil)
}

func TestNonPositiveDurationPanics(t *testing.T) {
	_, _, m := lineWorld(t, []int{1}, []float64{0})
	defer func() {
		if recover() == nil {
			t.Error("zero duration should panic")
		}
	}()
	m.Transmit(0, phy.Omni, 0, nil)
}

func TestBlockedFrameNotDelivered(t *testing.T) {
	// Three vehicles in a row, same lane: the middle body blocks 0→2.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 20, 40})
	l, ok := w.Link(0, 2)
	if !ok || l.Blockers == 0 {
		t.Fatalf("expected blocked link, got %+v ok=%v", l, ok)
	}
	txBeam, rxBeam := aim(w, 0, 2, geom.Deg(30), geom.Deg(12))
	delivered := 0
	m.StartListen(2, rxBeam, func(Delivery) { delivered++ })
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	// One blocker costs 15 dB; at 40 m the link often survives one blocker,
	// so assert only consistency with the SINR math rather than a hard no.
	snr := w.SNRdB(0, 2, txBeam, rxBeam)
	wantDecodable := phy.ControlDecodable(snr)
	if (delivered == 1) != wantDecodable {
		t.Errorf("delivered=%d but SNR=%.1f dB decodable=%v", delivered, snr, wantDecodable)
	}
}

func TestListenerReaimLosesInFlightFrame(t *testing.T) {
	// A receiver that re-aims mid-frame (even to the same bearing) must not
	// decode the in-flight frame: its dwell was interrupted.
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	delivered := 0
	m.StartListen(1, rxBeam, func(Delivery) { delivered++ })
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.ScheduleAt(des.At(8*time.Microsecond), "reaim", func() {
		m.StartListen(1, rxBeam, func(Delivery) { delivered++ })
	})
	sim.RunAll()
	if delivered != 0 {
		t.Errorf("re-aimed listener decoded %d frames", delivered)
	}
}

func TestHandlerReaimAffectsLaterFramesOnly(t *testing.T) {
	// A handler that re-aims on delivery keeps receiving later frames.
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	var got []int
	var handler Handler
	handler = func(d Delivery) {
		got = append(got, d.Payload.(int))
		m.StartListen(1, rxBeam, handler) // re-aim from inside the handler
	}
	m.StartListen(1, rxBeam, handler)
	m.Transmit(0, txBeam, 15*time.Microsecond, 1)
	sim.ScheduleAt(des.At(20*time.Microsecond), "second", func() {
		m.Transmit(0, txBeam, 15*time.Microsecond, 2)
	})
	sim.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
}

func TestStopListenInsideHandler(t *testing.T) {
	// Stopping the listener from a handler must halt further deliveries in
	// the same resolution group without panicking.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx0, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	delivered := 0
	m.StartListen(1, phy.Omni, func(Delivery) {
		delivered++
		m.StopListen(1)
	})
	m.Transmit(0, tx0, 15*time.Microsecond, nil)
	sim.ScheduleAt(des.At(20*time.Microsecond), "later", func() {
		m.Transmit(0, tx0, 15*time.Microsecond, nil)
	})
	sim.RunAll()
	if delivered != 1 {
		t.Errorf("delivered = %d, want exactly 1", delivered)
	}
}

func TestStopUnknownStreamIsNoop(t *testing.T) {
	_, _, m := lineWorld(t, []int{1}, []float64{0})
	m.StopStream(999) // must not panic
	if m.ActiveTransmissions() != 0 {
		t.Error("phantom transmission appeared")
	}
}

func TestDeliveryCarriesBothSNRAndSINR(t *testing.T) {
	// With an interferer, SINR < SNR; without, they coincide.
	w, sim, m := lineWorld(t, []int{1, 1, 0}, []float64{0, 40, 20})
	txBeam, rxBeam := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	var clean Delivery
	m.StartListen(1, rxBeam, func(d Delivery) { clean = d })
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	if clean.SNRdB == 0 {
		t.Fatal("no delivery")
	}
	if math.Abs((clean.SNRdB - clean.SINRdB).Decibels()) > 1e-9 {
		t.Errorf("clean channel: SNR %v != SINR %v", clean.SNRdB, clean.SINRdB)
	}

	// Now add a stream from vehicle 2 pointed at the listener.
	ib, _ := aim(w, 2, 1, geom.Deg(12), geom.Deg(12))
	m.StartStream(2, ib)
	var dirty Delivery
	m.StartListen(1, rxBeam, func(d Delivery) { dirty = d })
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	if dirty.SNRdB != 0 && dirty.SINRdB >= dirty.SNRdB {
		t.Errorf("interfered frame: SINR %v not below SNR %v", dirty.SINRdB, dirty.SNRdB)
	}
}

func TestPartialOverlapInterferenceCounted(t *testing.T) {
	// Frame B starts halfway through frame A and ends after it. At B's
	// resolution, A has already been delivered — but A's energy overlapped
	// B, so B must still fail if A was comparable. Both transmitters sit in
	// the listener's beam at similar range.
	w, sim, m := lineWorld(t, []int{1, 1, 1}, []float64{0, 40, 80})
	tx0, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	tx2, _ := aim(w, 2, 1, geom.Deg(30), geom.Deg(12))
	var froms []int
	m.StartListen(1, phy.Omni, func(d Delivery) { froms = append(froms, d.From) })
	m.Transmit(0, tx0, 15*time.Microsecond, nil) // [0, 15µs)
	sim.ScheduleAt(des.At(8*time.Microsecond), "late", func() {
		m.Transmit(2, tx2, 15*time.Microsecond, nil) // [8, 23µs)
	})
	sim.RunAll()
	// A itself is corrupted by B's second half; B is corrupted by A's
	// tail (which must still be visible at B's resolution at 23 µs).
	for _, f := range froms {
		if f == 2 {
			t.Error("late frame decoded despite overlap with the earlier frame")
		}
	}
}

func TestResolvedFramesEventuallyRetired(t *testing.T) {
	w, sim, m := lineWorld(t, []int{1, 1}, []float64{0, 40})
	txBeam, _ := aim(w, 0, 1, geom.Deg(30), geom.Deg(12))
	m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	sim.RunAll()
	// Grace keeps it briefly; a later transmission's resolution prunes it.
	sim.ScheduleAt(des.At(time.Millisecond), "later", func() {
		m.Transmit(0, txBeam, 15*time.Microsecond, nil)
	})
	sim.RunAll()
	if m.ActiveTransmissions() > 1 {
		t.Errorf("stale frames retained: %d", m.ActiveTransmissions())
	}
}
