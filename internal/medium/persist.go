// Checkpoint support (DESIGN.md §11). Checkpoints are taken at drained
// window boundaries, where no control frame is in flight and the next
// window begins with Reset — so the medium's durable state is only the
// stream-ID allocator (restored sessions hold previously issued IDs, and
// new IDs must not collide with them) plus the run-scope diagnostics.
package medium

import "mmv2v/internal/persist"

// SaveState appends the medium's durable state.
func (m *Medium) SaveState(e *persist.Encoder) {
	e.I64(m.nextID)
	e.U64(m.Delivered)
	e.U64(m.Lost)
	e.U64(m.FaultLost)
	e.U64(m.FaultMutedTx)
}

// LoadState restores state checkpointed by SaveState.
func (m *Medium) LoadState(d *persist.Decoder) error {
	nextID := d.I64()
	delivered := d.U64()
	lost := d.U64()
	faultLost := d.U64()
	faultMuted := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if nextID < 1 {
		d.Failf("medium stream allocator cursor %d below 1", nextID)
		return d.Err()
	}
	m.nextID = nextID
	m.Delivered = delivered
	m.Lost = lost
	m.FaultLost = faultLost
	m.FaultMutedTx = faultMuted
	return nil
}
