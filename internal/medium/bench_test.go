package medium

import (
	"testing"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/geom"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// BenchmarkSectorSlotResolution measures one SND-style sector slot at the
// paper's density: half the vehicles transmit SSWs while the other half
// listen — the simulator's hottest control-plane operation.
func BenchmarkSectorSlotResolution(b *testing.B) {
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		b.Fatal(err)
	}
	sectors := geom.Sectors{Count: 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		m := New(sim, w)
		sector := i % 24
		txBeam := phy.Beam{Bearing: sectors.Center(sector), Width: geom.Deg(30)}
		rxBeam := phy.Beam{Bearing: sectors.Center(sectors.Opposite(sector)), Width: geom.Deg(12)}
		for v := 0; v < w.NumVehicles(); v++ {
			if v%2 == 0 {
				m.StartListen(v, rxBeam, func(Delivery) {})
			}
		}
		for v := 0; v < w.NumVehicles(); v++ {
			if v%2 == 1 {
				m.Transmit(v, txBeam, 15*time.Microsecond, v)
			}
		}
		sim.RunAll()
	}
}

func BenchmarkSINRNow(b *testing.B) {
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		b.Fatal(err)
	}
	sim := des.New()
	m := New(sim, w)
	// 20 interfering streams.
	for v := 0; v < 40; v += 2 {
		if ls := w.Links(v); len(ls) > 0 {
			m.StartStream(v, phy.Beam{Bearing: ls[0].Bearing, Width: geom.Deg(3)})
		}
	}
	var tx, rx int
	for i := 1; i < w.NumVehicles(); i += 2 {
		if ls := w.Links(i); len(ls) > 0 {
			tx, rx = i, ls[0].J
			break
		}
	}
	lnk, _ := w.Link(tx, rx)
	back, _ := w.Link(rx, tx)
	txBeam := phy.Beam{Bearing: lnk.Bearing, Width: geom.Deg(3)}
	rxBeam := phy.Beam{Bearing: back.Bearing, Width: geom.Deg(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SINRNow(tx, rx, txBeam, rxBeam)
	}
}
