// Package xrand provides deterministic, splittable pseudo-random streams.
//
// Every source of randomness in the simulator — traffic generation, the
// paper's probabilistic role selection, random sector choices in the ROP
// baseline, PCP election in the 802.11ad baseline — derives from a single
// 64-bit scenario seed through named sub-streams, so that an entire
// simulation is reproducible bit-for-bit from one seed. Sub-streams are
// derived by hashing (seed, label, index) with SplitMix64 so that, e.g.,
// vehicle 7's round-3 coin flip is independent of everything else and stable
// across runs regardless of event ordering.
package xrand

import "math/rand"

// splitMix64 advances the SplitMix64 generator state and returns the next
// output. It is the standard 64-bit finalizer-based mixer from Steele et al.,
// used here to derive independent seeds.
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Mix hashes together an arbitrary list of 64-bit values into one
// well-distributed 64-bit value. It is the derivation function used for all
// sub-stream seeds.
func Mix(vs ...uint64) uint64 {
	state := uint64(0x6a09e667f3bcc909) // fractional bits of sqrt(2)
	var out uint64
	for _, v := range vs {
		state ^= v
		state, out = splitMix64(state)
		state ^= out
	}
	_, out = splitMix64(state)
	return out
}

// HashString folds a string into a 64-bit value using FNV-1a, for deriving
// sub-streams from labels.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// sm64 is a SplitMix64 generator implementing math/rand's Source64: 8 bytes
// of state instead of the 5 KB of the default source, which matters because
// the simulator derives millions of child streams.
type sm64 struct {
	state uint64
}

func (s *sm64) Uint64() uint64 {
	var out uint64
	s.state, out = splitMix64(s.state)
	return out
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(seed int64) { s.state = uint64(seed) }

// Source is a deterministic random stream backed by SplitMix64, exposed
// through math/rand for its distribution helpers, and supporting derivation
// of independent child streams.
type Source struct {
	seed  uint64
	state *sm64
	rng   *rand.Rand
}

// New returns a Source rooted at the given seed.
func New(seed uint64) *Source {
	st := &sm64{state: Mix(seed)}
	return &Source{seed: seed, state: st, rng: rand.New(st)}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Cursor returns the stream's position: the raw SplitMix64 state after
// every draw consumed so far. Together with Seed it pins the stream
// exactly, so a checkpointed simulation resumes mid-stream (DESIGN.md
// §11). Only the 8-byte generator state is captured; none of the wrapped
// math/rand distribution helpers used by the simulator buffer additional
// state between calls.
func (s *Source) Cursor() uint64 { return s.state.state }

// SetCursor repositions the stream at a cursor previously captured from a
// source with the same seed.
func (s *Source) SetCursor(c uint64) { s.state.state = c }

// Child derives an independent stream identified by a label and an arbitrary
// list of indices (for example ("role", vehicleID, round)). Calling Child
// with the same arguments always yields an identically seeded stream, and it
// does not consume state from the parent, so derivation order is irrelevant.
func (s *Source) Child(label string, idx ...uint64) *Source {
	vs := make([]uint64, 0, len(idx)+2)
	vs = append(vs, s.seed, HashString(label))
	vs = append(vs, idx...)
	return New(Mix(vs...))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// UniformRange returns a uniform value in [lo, hi).
func (s *Source) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }
