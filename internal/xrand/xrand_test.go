package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	a := Mix(1, 2, 3)
	b := Mix(1, 2, 3)
	if a != b {
		t.Errorf("Mix not deterministic: %x != %x", a, b)
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Error("Mix should be order-sensitive")
	}
	if Mix(0) == Mix(0, 0) {
		t.Error("Mix should be length-sensitive")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix(0xdeadbeef)
	totalFlips := 0
	const trials = 64
	for bit := 0; bit < trials; bit++ {
		v := Mix(0xdeadbeef ^ (1 << uint(bit)))
		totalFlips += popcount(base ^ v)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average = %.1f bits, want ≈32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashString(t *testing.T) {
	if HashString("") != 14695981039346656037 {
		t.Error("empty string should hash to FNV offset basis")
	}
	if HashString("role") == HashString("sector") {
		t.Error("distinct labels should hash differently")
	}
	if HashString("ab") == HashString("ba") {
		t.Error("hash should be order-sensitive")
	}
}

func TestSourceDeterminism(t *testing.T) {
	s1 := New(42)
	s2 := New(42)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same-seed sources diverged")
		}
	}
}

func TestChildIndependentOfParentState(t *testing.T) {
	s1 := New(7)
	s2 := New(7)
	// Consuming parent state must not change child derivation.
	for i := 0; i < 10; i++ {
		s1.Uint64()
	}
	c1 := s1.Child("traffic", 3)
	c2 := s2.Child("traffic", 3)
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("child streams depend on parent consumption")
		}
	}
}

func TestChildDistinctByLabelAndIndex(t *testing.T) {
	s := New(7)
	a := s.Child("role", 1).Uint64()
	b := s.Child("role", 2).Uint64()
	c := s.Child("sector", 1).Uint64()
	if a == b || a == c || b == c {
		t.Errorf("child streams collide: %x %x %x", a, b, c)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(99)
	const n = 20000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Bool(%v) frequency = %v", p, got)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.UniformRange(40, 60)
		if v < 40 || v >= 60 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-50) > 0.5 {
		t.Errorf("UniformRange mean = %v, want ≈50", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n)%20 + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixUniformity(t *testing.T) {
	// Bucket Mix outputs of sequential inputs; expect near-uniform spread.
	const buckets = 16
	const n = 16000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[Mix(uint64(i))%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d, want ≈%d", b, c, want)
		}
	}
}
