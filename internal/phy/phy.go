// Package phy models the IEEE 802.11ad physical layer the paper adopts:
// the MCS0–12 single-carrier rate set (up to 4.62 Gb/s), the EVM↔SINR rule
// the paper cites (EVM = SINR^{-1/2}), the control-plane frame timings of
// Sec. IV-A (SSW 15 µs, beam-switch 1 µs, SIFS 3 µs, control preamble
// 4.3 µs, negotiation slot 30 µs), and the multi-level beam codebook
// (sector-level wide beams plus refined narrow beams).
package phy

import (
	"fmt"
	"math"
	"time"

	"mmv2v/internal/geom"
	"mmv2v/internal/units"
)

// MCS is an 802.11ad modulation-and-coding-scheme index (0 = control PHY,
// 1–12 = single-carrier data rates).
type MCS int

// mcsEntry pairs a PHY rate with the SNR it requires.
type mcsEntry struct {
	rateBps  float64
	minSNRdB units.DB
}

// mcsTable lists the 802.11ad control + SC PHY rates. The paper does not
// print SNR thresholds (it references the per-MCS EVM requirement); these
// thresholds are the standard values used in 802.11ad system-level studies
// (see DESIGN.md §2).
var mcsTable = []mcsEntry{
	{27.5e6, 1.0},    // MCS0  control PHY
	{385e6, 3.0},     // MCS1
	{770e6, 4.5},     // MCS2
	{962.5e6, 5.5},   // MCS3
	{1155e6, 6.5},    // MCS4
	{1251.25e6, 7.5}, // MCS5
	{1540e6, 9.0},    // MCS6
	{1925e6, 10.5},   // MCS7
	{2310e6, 12.0},   // MCS8
	{2502.5e6, 13.5}, // MCS9
	{3080e6, 16.0},   // MCS10
	{3850e6, 18.5},   // MCS11
	{4620e6, 21.0},   // MCS12
}

// NumMCS is the number of defined MCS levels (including control).
const NumMCS = 13

// Rate returns the PHY rate of an MCS in bits per second.
func (m MCS) Rate() float64 {
	if m < 0 || int(m) >= len(mcsTable) {
		return 0
	}
	return mcsTable[m].rateBps
}

// MinSNRdB returns the SNR threshold required to operate the MCS.
func (m MCS) MinSNRdB() units.DB {
	if m < 0 || int(m) >= len(mcsTable) {
		return units.DB(math.Inf(1))
	}
	return mcsTable[m].minSNRdB
}

// MaxEVM returns the maximum tolerable error vector magnitude for the MCS,
// derived from the paper's cited rule EVM = SINR^{-1/2} (linear SINR).
func (m MCS) MaxEVM() float64 {
	return 1 / math.Sqrt(m.MinSNRdB().Linear())
}

func (m MCS) String() string { return fmt.Sprintf("MCS%d", int(m)) }

// BestMCS returns the highest MCS whose threshold the given SINR meets and
// whether even the control PHY is decodable. MCS0 is reserved for control;
// data transmission uses MCS1–12, so a SINR between the MCS0 and MCS1
// thresholds yields (MCS0, true) but DataRate of 0.
func BestMCS(sinr units.DB) (MCS, bool) {
	best := MCS(-1)
	for i := range mcsTable {
		if sinr >= mcsTable[i].minSNRdB {
			best = MCS(i)
		}
	}
	return best, best >= 0
}

// DataRate returns the data-PHY rate (bps) achievable at a SINR: the rate of
// the best MCS ≥ 1, or 0 if the link cannot carry data.
func DataRate(sinr units.DB) float64 {
	m, ok := BestMCS(sinr)
	if !ok || m < 1 {
		return 0
	}
	return m.Rate()
}

// ControlDecodable reports whether a control-PHY frame (MCS0) is decodable
// at the given SINR.
func ControlDecodable(sinr units.DB) bool { return sinr >= mcsTable[0].minSNRdB }

// EVMFromSINR converts a SINR in dB to EVM via the paper's cited rule
// (ref [14]): EVM = SINR^{-1/2} with SINR linear.
func EVMFromSINR(sinr units.DB) float64 {
	return 1 / math.Sqrt(sinr.Linear())
}

// Timing collects the control-plane durations from Sec. IV-A.
type Timing struct {
	// Frame is the protocol frame length (paper: 20 ms).
	Frame time.Duration
	// SSW is one sector-sweep frame (paper: 15 µs).
	SSW time.Duration
	// BeamSwitch is the phased-array reconfiguration delay (paper: 1 µs).
	BeamSwitch time.Duration
	// SIFS is the receive-and-process turnaround (paper: 3 µs).
	SIFS time.Duration
	// ControlPreamble is aControlPHYPreambleLength (paper: 4.3 µs), the cost
	// of one candidate setup or update message.
	ControlPreamble time.Duration
	// NegotiationSlot is one DCM slot (paper: 0.03 ms).
	NegotiationSlot time.Duration
	// PositionUpdate is the mobility/link refresh cadence (paper: 5 ms).
	PositionUpdate time.Duration
}

// DefaultTiming returns the paper's timing constants.
func DefaultTiming() Timing {
	return Timing{
		Frame:           20 * time.Millisecond,
		SSW:             15 * time.Microsecond,
		BeamSwitch:      time.Microsecond,
		SIFS:            3 * time.Microsecond,
		ControlPreamble: 4300 * time.Nanosecond,
		NegotiationSlot: 30 * time.Microsecond,
		PositionUpdate:  5 * time.Millisecond,
	}
}

// Validate reports timing configuration errors.
func (t Timing) Validate() error {
	if t.Frame <= 0 || t.SSW <= 0 || t.BeamSwitch < 0 || t.SIFS < 0 ||
		t.ControlPreamble <= 0 || t.NegotiationSlot <= 0 || t.PositionUpdate <= 0 {
		return fmt.Errorf("phy: non-positive timing value in %+v", t)
	}
	if t.NegotiationSlot < 2*t.ControlPreamble {
		return fmt.Errorf("phy: negotiation slot %v cannot fit two control messages of %v",
			t.NegotiationSlot, t.ControlPreamble)
	}
	return nil
}

// SectorSlot returns the duration of one sweep/sense step: a beam switch
// followed by one SSW frame (paper: 16 µs, giving 24·16·2 ≈ 0.8 ms per SND
// round).
func (t Timing) SectorSlot() time.Duration { return t.BeamSwitch + t.SSW }

// Codebook is the multi-level beam codebook of a phased array: S sector-level
// wide positions for sweeping (width α for Tx, β for Rx) and a dense ring of
// narrow beams (pitch θ_min) for refinement.
type Codebook struct {
	// Sectors is the sector grid (paper: S = 24, pitch θ = 15°).
	Sectors geom.Sectors
	// TxWidth is the sector-sweep transmit beam width α (paper: 30°).
	TxWidth units.Radian
	// RxWidth is the sector-sense receive beam width β (paper: 12°).
	RxWidth units.Radian
	// NarrowWidth is the refined-beam width and pitch θ_min (DESIGN.md: 3°).
	NarrowWidth units.Radian
}

// DefaultCodebook returns the paper's beam configuration.
func DefaultCodebook() Codebook {
	return Codebook{
		Sectors:     geom.Sectors{Count: 24},
		TxWidth:     geom.Deg(30),
		RxWidth:     geom.Deg(12),
		NarrowWidth: geom.Deg(3),
	}
}

// Validate reports codebook configuration errors.
func (c Codebook) Validate() error {
	switch {
	case c.Sectors.Count <= 0 || c.Sectors.Count%2 != 0:
		return fmt.Errorf("phy: sector count %d must be positive and even", c.Sectors.Count)
	case c.TxWidth <= 0 || c.RxWidth <= 0 || c.NarrowWidth <= 0:
		return fmt.Errorf("phy: non-positive beam width")
	case c.NarrowWidth > c.Sectors.Pitch():
		return fmt.Errorf("phy: narrow beam %v wider than sector pitch %v", c.NarrowWidth, c.Sectors.Pitch())
	}
	return nil
}

// RefinementBeams returns s = ⌊θ/θ_min⌋ + 1, the number of narrow beams each
// side searches during UDT beam refinement (Sec. III-D).
func (c Codebook) RefinementBeams() int {
	return int(math.Floor(c.Sectors.Pitch().Over(c.NarrowWidth))) + 1
}

// NarrowBeamBearing returns the bearing of the k-th refinement beam
// (k in [0, RefinementBeams())) centered around a coarse bearing: the beams
// tile ±θ/2 around it at θ_min pitch.
func (c Codebook) NarrowBeamBearing(coarse geom.Bearing, k int) geom.Bearing {
	s := c.RefinementBeams()
	offset := c.NarrowWidth.Times(float64(k) - float64(s-1)/2)
	return geom.NormalizeBearing(coarse + geom.Bearing(offset))
}

// Beam is a steered antenna configuration: a boresight bearing and a 3 dB
// width. A zero-width beam means quasi-omni.
type Beam struct {
	Bearing geom.Bearing
	Width   units.Radian
}

// Omni is the quasi-omni beam configuration.
var Omni = Beam{}

// IsOmni reports whether the beam is quasi-omni.
//
//mmv2v:exact zero-value sentinel: Omni is the literal Beam{} and real beams always have Width > 0
func (b Beam) IsOmni() bool { return b.Width == 0 }
