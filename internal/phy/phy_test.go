package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mmv2v/internal/geom"
	"mmv2v/internal/units"
)

func TestMCSRates(t *testing.T) {
	if got := MCS(0).Rate(); got != 27.5e6 {
		t.Errorf("MCS0 rate = %v", got)
	}
	if got := MCS(12).Rate(); got != 4.62e9 {
		t.Errorf("MCS12 rate = %v, want 4.62 Gb/s", got)
	}
	if got := MCS(13).Rate(); got != 0 {
		t.Errorf("out-of-range MCS rate = %v", got)
	}
	if got := MCS(-1).Rate(); got != 0 {
		t.Errorf("negative MCS rate = %v", got)
	}
}

func TestMCSMonotonic(t *testing.T) {
	for m := MCS(1); m < NumMCS; m++ {
		if m.Rate() <= (m - 1).Rate() {
			t.Errorf("%v rate %v not above %v rate %v", m, m.Rate(), m-1, (m - 1).Rate())
		}
		if m.MinSNRdB() <= (m - 1).MinSNRdB() {
			t.Errorf("%v threshold not above %v", m, m-1)
		}
	}
}

func TestBestMCS(t *testing.T) {
	tests := []struct {
		sinr   units.DB
		want   MCS
		wantOK bool
	}{
		{-5, -1, false},
		{1.0, 0, true},
		{2.9, 0, true},
		{3.0, 1, true},
		{10.6, 7, true},
		{21.0, 12, true},
		{40, 12, true},
	}
	for _, tt := range tests {
		got, ok := BestMCS(tt.sinr)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("BestMCS(%v) = %v,%v want %v,%v", tt.sinr, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestDataRate(t *testing.T) {
	if got := DataRate(-10); got != 0 {
		t.Errorf("DataRate(-10) = %v", got)
	}
	if got := DataRate(2); got != 0 {
		t.Errorf("DataRate(2) = %v, control-only SINR must carry no data", got)
	}
	if got := DataRate(3.5); got != 385e6 {
		t.Errorf("DataRate(3.5) = %v", got)
	}
	if got := DataRate(50); got != 4.62e9 {
		t.Errorf("DataRate(50) = %v", got)
	}
}

func TestDataRateMonotonicProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 40)
		b = math.Mod(b, 40)
		lo, hi := units.DB(math.Min(a, b)), units.DB(math.Max(a, b))
		return DataRate(lo) <= DataRate(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestControlDecodable(t *testing.T) {
	if ControlDecodable(0.5) {
		t.Error("0.5 dB should not decode control PHY")
	}
	if !ControlDecodable(1.0) {
		t.Error("1.0 dB should decode control PHY")
	}
}

func TestEVMRule(t *testing.T) {
	// EVM = SINR^{-1/2}: at 20 dB (linear 100) EVM = 0.1.
	if got := EVMFromSINR(20); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("EVMFromSINR(20) = %v", got)
	}
	if got := EVMFromSINR(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("EVMFromSINR(0) = %v", got)
	}
	// MaxEVM must shrink as MCS grows (tighter constellations).
	for m := MCS(1); m < NumMCS; m++ {
		if m.MaxEVM() >= (m - 1).MaxEVM() {
			t.Errorf("MaxEVM not decreasing at %v", m)
		}
	}
}

func TestMCSString(t *testing.T) {
	if got := MCS(7).String(); got != "MCS7" {
		t.Errorf("String = %q", got)
	}
}

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.Frame != 20*time.Millisecond {
		t.Errorf("Frame = %v", tm.Frame)
	}
	if got := tm.SectorSlot(); got != 16*time.Microsecond {
		t.Errorf("SectorSlot = %v, want 16µs", got)
	}
	// Paper: "For scanning 24 sectors, one round of SND takes 0.8 ms."
	// One round = 2 half-rounds × 24 sector slots.
	round := 2 * 24 * tm.SectorSlot()
	if round < 700*time.Microsecond || round > 800*time.Microsecond {
		t.Errorf("SND round duration = %v, want ≈0.8 ms", round)
	}
}

func TestTimingValidate(t *testing.T) {
	tm := DefaultTiming()
	tm.NegotiationSlot = 8 * time.Microsecond // < 2 × 4.3 µs
	if err := tm.Validate(); err == nil {
		t.Error("slot too small for two control messages should fail")
	}
	tm = DefaultTiming()
	tm.Frame = 0
	if err := tm.Validate(); err == nil {
		t.Error("zero frame should fail")
	}
}

func TestDefaultCodebook(t *testing.T) {
	cb := DefaultCodebook()
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	if cb.Sectors.Count != 24 {
		t.Errorf("sectors = %d", cb.Sectors.Count)
	}
	if got := geom.ToDeg(cb.Sectors.Pitch()); math.Abs(got-15) > 1e-9 {
		t.Errorf("pitch = %v°, want 15°", got)
	}
	// s = ⌊15/3⌋ + 1 = 6 narrow beams (paper: "s is usually very small").
	if got := cb.RefinementBeams(); got != 6 {
		t.Errorf("RefinementBeams = %d, want 6", got)
	}
}

func TestCodebookValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Codebook)
	}{
		{"odd sectors", func(c *Codebook) { c.Sectors.Count = 23 }},
		{"zero tx width", func(c *Codebook) { c.TxWidth = 0 }},
		{"narrow wider than pitch", func(c *Codebook) { c.NarrowWidth = geom.Deg(20) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cb := DefaultCodebook()
			tt.mutate(&cb)
			if err := cb.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestNarrowBeamTiling(t *testing.T) {
	cb := DefaultCodebook()
	coarse := geom.Bearing(geom.Deg(90))
	s := cb.RefinementBeams()
	// Beams must be symmetric around the coarse bearing and θ_min apart.
	for k := 0; k < s-1; k++ {
		b1 := cb.NarrowBeamBearing(coarse, k)
		b2 := cb.NarrowBeamBearing(coarse, k+1)
		if d := geom.AngleDiff(b1, b2); math.Abs((d - cb.NarrowWidth).Rad()) > 1e-9 {
			t.Errorf("beam pitch %v, want %v", d, cb.NarrowWidth)
		}
	}
	first := cb.NarrowBeamBearing(coarse, 0)
	last := cb.NarrowBeamBearing(coarse, s-1)
	if math.Abs(geom.AngleDiff(first, coarse).Rad()) != math.Abs(geom.AngleDiff(coarse, last).Rad()) {
		t.Error("refinement beams not symmetric around coarse bearing")
	}
	// The span must cover the sector pitch.
	span := geom.AngleDiff(first, last)
	if span < cb.Sectors.Pitch()-1e-9 {
		t.Errorf("refinement span %v below sector pitch %v", span, cb.Sectors.Pitch())
	}
}

func TestOmniBeam(t *testing.T) {
	if !Omni.IsOmni() {
		t.Error("Omni should be omni")
	}
	if (Beam{Width: geom.Deg(30)}).IsOmni() {
		t.Error("steered beam misreported as omni")
	}
}
