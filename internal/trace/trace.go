// Package trace records structured protocol events — discoveries, matches,
// break-ups, stream starts and rate changes — so simulation runs can be
// debugged and analyzed offline. Protocols emit events through a Recorder;
// sinks keep them in memory (ring buffer, for tests and summaries) or write
// them as JSON Lines (for external tooling).
//
// Tracing is optional and zero-cost when disabled: a nil *Recorder is a
// valid no-op receiver for every Emit call.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"mmv2v/internal/des"
)

// Kind classifies an event.
type Kind int

// Event kinds. Start at 1 so the zero value is invalid.
const (
	KindDiscovery Kind = iota + 1
	KindNegotiation
	KindMatch
	KindBreakup
	KindStreamStart
	KindStreamStop
	KindRate
	KindCompletion
	KindAssociation
)

var kindNames = map[Kind]string{
	KindDiscovery:   "discovery",
	KindNegotiation: "negotiation",
	KindMatch:       "match",
	KindBreakup:     "breakup",
	KindStreamStart: "stream_start",
	KindStreamStop:  "stream_stop",
	KindRate:        "rate",
	KindCompletion:  "completion",
	KindAssociation: "association",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one protocol occurrence.
type Event struct {
	// Trial is the pooled-run trial index the event belongs to. Emitters
	// leave it 0; the trial runner stamps it while replaying per-trial
	// captures into the caller's recorder (single runs are trial 0).
	Trial int `json:"trial"`
	// At is the simulation timestamp.
	At des.Time `json:"at_ns"`
	// Frame is the protocol frame index.
	Frame int `json:"frame"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// A and B are the vehicles involved (B may be -1 for solo events).
	A int `json:"a"`
	B int `json:"b"`
	// Value carries a kind-specific quantity (SNR dB for discoveries,
	// bits/s for rates, bits for completions).
	Value float64 `json:"value,omitempty"`
}

// Sink consumes events.
type Sink interface {
	Record(Event)
}

// Recorder fans events out to sinks. The zero value and the nil pointer
// are both valid no-op recorders.
type Recorder struct {
	mu    sync.Mutex
	sinks []Sink
}

// New builds a recorder over the given sinks.
func New(sinks ...Sink) *Recorder { return &Recorder{sinks: sinks} }

// Attach adds a sink.
func (r *Recorder) Attach(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinks = append(r.sinks, s)
}

// Emit records an event; nil recorders drop it.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sinks := r.sinks
	r.mu.Unlock()
	for _, s := range sinks {
		s.Record(e)
	}
}

// Ring is a fixed-capacity in-memory sink keeping the most recent events.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
}

// NewRing builds a ring buffer sink; capacity must be positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive ring capacity %d", capacity))
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// CountByKind tallies retained events per kind.
func (r *Ring) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// Capture is an unbounded in-memory sink retaining every event in emission
// order. The trial runner attaches one private Capture per trial and replays
// them in trial order after the pool drains, which is what lets traced runs
// use every worker without reordering the merged stream.
type Capture struct {
	mu     sync.Mutex
	events []Event
}

// NewCapture builds an empty capture sink.
func NewCapture() *Capture { return &Capture{} }

// Record implements Sink.
func (c *Capture) Record(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Len returns the number of captured events.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of the captured events in emission order.
func (c *Capture) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// JSONL streams events as JSON Lines to a writer. Errors are sticky: the
// first write error stops output and is reported by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL builds a JSON Lines sink.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// Record implements Sink.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Filter wraps a sink, keeping only events whose kind is in the set.
type Filter struct {
	Next  Sink
	Kinds map[Kind]bool
}

// Record implements Sink.
func (f Filter) Record(e Event) {
	if f.Kinds[e.Kind] {
		f.Next.Record(e)
	}
}
