package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func ev(frame int, k Kind, a, b int) Event {
	return Event{Frame: frame, Kind: k, A: a, B: b}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit(ev(0, KindMatch, 1, 2)) // must not panic
}

func TestRecorderFansOut(t *testing.T) {
	a := NewRing(10)
	b := NewRing(10)
	r := New(a)
	r.Attach(b)
	r.Emit(ev(0, KindDiscovery, 1, 2))
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(ev(i, KindRate, i, -1))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	got := r.Events()
	for i, e := range got {
		if e.Frame != i+2 {
			t.Errorf("event %d frame = %d, want %d", i, e.Frame, i+2)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(0, KindMatch, 1, 2))
	r.Record(ev(1, KindBreakup, 1, 2))
	got := r.Events()
	if len(got) != 2 || got[0].Kind != KindMatch || got[1].Kind != KindBreakup {
		t.Errorf("events = %v", got)
	}
}

func TestRingCountByKind(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(0, KindMatch, 1, 2))
	r.Record(ev(0, KindMatch, 3, 4))
	r.Record(ev(0, KindBreakup, 1, 2))
	c := r.CountByKind()
	if c[KindMatch] != 2 || c[KindBreakup] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewRing(0)
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{At: 1000, Frame: 2, Kind: KindDiscovery, A: 3, B: 4, Value: 21.5})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var decoded map[string]any
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["kind"] != "discovery" {
		t.Errorf("kind = %v", decoded["kind"])
	}
	if decoded["a"] != float64(3) || decoded["value"] != 21.5 {
		t.Errorf("decoded = %v", decoded)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	j.Record(ev(0, KindMatch, 1, 2))
	if j.Err() == nil {
		t.Fatal("want error")
	}
	j.Record(ev(1, KindMatch, 1, 2)) // must not panic, stays failed
	if j.Err() == nil {
		t.Error("error not sticky")
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(10)
	f := Filter{Next: r, Kinds: map[Kind]bool{KindMatch: true}}
	f.Record(ev(0, KindMatch, 1, 2))
	f.Record(ev(0, KindRate, 1, 2))
	if r.Len() != 1 || r.Events()[0].Kind != KindMatch {
		t.Errorf("filter passed wrong events: %v", r.Events())
	}
}

func TestKindString(t *testing.T) {
	if KindStreamStart.String() != "stream_start" {
		t.Errorf("String = %q", KindStreamStart)
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind = %q", Kind(99))
	}
}
