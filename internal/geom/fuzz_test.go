package geom

import (
	"math"
	"testing"
)

func FuzzNormalizeBearing(f *testing.F) {
	f.Add(0.0)
	f.Add(math.Pi)
	f.Add(-7.5)
	f.Add(123456.789)
	f.Fuzz(func(t *testing.T, b float64) {
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e12 {
			t.Skip()
		}
		got := float64(NormalizeBearing(Bearing(b)))
		if got < 0 || got >= 2*math.Pi {
			t.Fatalf("NormalizeBearing(%v) = %v outside [0, 2π)", b, got)
		}
	})
}

func FuzzSectorsFromBearing(f *testing.F) {
	f.Add(24, 1.0)
	f.Add(8, -0.5)
	f.Fuzz(func(t *testing.T, count int, b float64) {
		if count <= 0 || count > 720 || count%2 != 0 {
			t.Skip()
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e9 {
			t.Skip()
		}
		s := Sectors{Count: count}
		idx := s.FromBearing(Bearing(b))
		if idx < 0 || idx >= count {
			t.Fatalf("FromBearing out of range: %d of %d", idx, count)
		}
		// The chosen sector's center is within half a pitch of the bearing.
		if d := AbsAngleDiff(s.Center(idx), NormalizeBearing(Bearing(b))); d > s.Pitch()/2+1e-9 {
			t.Fatalf("sector %d center off by %v > pitch/2", idx, d)
		}
	})
}

// FuzzSegmentBlocked fuzzes the whole LOS-blockage decision the world layer
// makes (world.Refresh: does the segment between two vehicles cross a
// blocker's body rectangle?) — arbitrary endpoints AND arbitrary blocker
// pose — asserting it never panics and is symmetric in the endpoints.
func FuzzSegmentBlocked(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 0.7, 2.3, 0.9)
	f.Add(-3.0, 4.0, -3.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 1.0, 2.0, 2.0, 1.5, 1.5, 6.2, 100.0, 100.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, heading, halfLen, halfWid float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, heading, halfLen, halfWid} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		r := Rect{Center: Vec{cx, cy}, Heading: Bearing(heading), HalfLen: halfLen, HalfWid: halfWid}
		a, b := Vec{ax, ay}, Vec{bx, by}
		if SegmentIntersectsRect(a, b, r) != SegmentIntersectsRect(b, a, r) {
			t.Fatalf("blockage not symmetric in endpoints: a=%v b=%v rect=%+v", a, b, r)
		}
	})
}

func FuzzSegmentIntersectsRectSymmetry(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by float64) {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		r := Rect{Center: Vec{5, 5}, Heading: Bearing(0.7), HalfLen: 2.3, HalfWid: 0.9}
		a, b := Vec{ax, ay}, Vec{bx, by}
		if SegmentIntersectsRect(a, b, r) != SegmentIntersectsRect(b, a, r) {
			t.Fatal("intersection not symmetric in endpoints")
		}
	})
}
