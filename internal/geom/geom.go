// Package geom provides the 2-D geometric primitives used throughout the
// simulator: points/vectors in road coordinates, compass bearings, sector
// arithmetic for beam sweeping, and segment/rectangle intersection tests for
// line-of-sight blockage checks.
//
// Coordinate convention: x grows east (along the road), y grows north.
// Compass bearings follow GPS convention: 0 rad points north (+y) and angles
// grow clockwise, so east (+x) is +π/2. This matches the paper's sector
// indexing, which starts at north and proceeds clockwise.
package geom

import (
	"math"

	"mmv2v/internal/units"
)

// Vec is a 2-D point or displacement in meters.
type Vec struct {
	X float64
	Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product v × w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() units.Meter { return units.Meter(math.Hypot(v.X, v.Y)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) units.Meter { return units.Meter(math.Hypot(v.X-w.X, v.Y-w.Y)) }

// Bearing is a compass bearing in radians: 0 is north, clockwise positive,
// normalized to [0, 2π).
type Bearing float64

// BearingTo returns the compass bearing of the direction from v to w.
func (v Vec) BearingTo(w Vec) Bearing {
	d := w.Sub(v)
	return NormalizeBearing(Bearing(math.Atan2(d.X, d.Y)))
}

// NormalizeBearing maps b into [0, 2π).
func NormalizeBearing(b Bearing) Bearing {
	r := math.Mod(float64(b), 2*math.Pi)
	if r < 0 {
		r += 2 * math.Pi
	}
	return Bearing(r)
}

// AngleDiff returns the signed smallest rotation from bearing a to bearing b,
// in (-π, π]. Positive means b is clockwise of a.
func AngleDiff(a, b Bearing) units.Radian {
	d := math.Mod(float64(b-a), 2*math.Pi)
	switch {
	case d > math.Pi:
		d -= 2 * math.Pi
	case d <= -math.Pi:
		d += 2 * math.Pi
	}
	return units.Radian(d)
}

// AbsAngleDiff returns the absolute smallest angle between two bearings,
// in [0, π].
func AbsAngleDiff(a, b Bearing) units.Radian {
	return units.Radian(math.Abs(AngleDiff(a, b).Rad()))
}

// Deg converts degrees to radians.
func Deg(deg float64) units.Radian { return units.Degrees(deg) }

// ToDeg converts radians to degrees.
func ToDeg(rad units.Radian) float64 { return rad.Deg() }

// Sectors describes an equal division of the horizon into S sectors indexed
// clockwise from north, as used by the paper's synchronized sector sweep:
// sector 0 is centered on north and sector i is centered on i·(360°/S).
type Sectors struct {
	// Count is the number of sectors S; must be positive and even for the
	// paper's 180° opposite-sector rule to be exact.
	Count int
}

// Pitch returns the angular interval θ = 2π/S between consecutive sectors.
func (s Sectors) Pitch() units.Radian { return units.Radian(2 * math.Pi / float64(s.Count)) }

// Center returns the compass bearing of the center of sector i.
func (s Sectors) Center(i int) Bearing {
	return NormalizeBearing(Bearing(float64(i) * s.Pitch().Rad()))
}

// Opposite returns the index of the sector 180° away from sector i, i.e.
// (i + S/2) mod S — the paper's synchronized sensing sector.
func (s Sectors) Opposite(i int) int { return (i + s.Count/2) % s.Count }

// FromBearing returns the index of the sector whose center is nearest to b.
func (s Sectors) FromBearing(b Bearing) int {
	pitch := s.Pitch().Rad()
	i := int(math.Round(float64(NormalizeBearing(b)) / pitch))
	return i % s.Count
}

// Contains reports whether bearing b falls within ±width/2 of the center of
// sector i.
func (s Sectors) Contains(i int, b Bearing, width units.Radian) bool {
	return AbsAngleDiff(s.Center(i), b) <= width/2
}

// Rect is an oriented rectangle: a center, a heading (compass bearing of the
// +length axis), and half-extents. It models a vehicle body footprint.
type Rect struct {
	Center  Vec
	Heading Bearing
	// HalfLen is half the body length (meters) along the heading.
	HalfLen float64
	// HalfWid is half the body width (meters) across the heading.
	HalfWid float64
}

// Corners returns the four corners of the rectangle in order.
func (r Rect) Corners() [4]Vec {
	// Heading is a compass bearing; the unit vector along the heading is
	// (sin h, cos h) and the left-normal is (-cos h, sin h).
	sh, ch := math.Sincos(float64(r.Heading))
	fwd := Vec{sh, ch}.Scale(r.HalfLen)
	side := Vec{ch, -sh}.Scale(r.HalfWid)
	return [4]Vec{
		r.Center.Add(fwd).Add(side),
		r.Center.Add(fwd).Sub(side),
		r.Center.Sub(fwd).Sub(side),
		r.Center.Sub(fwd).Add(side),
	}
}

// ContainsPoint reports whether p lies inside (or on the edge of) r.
func (r Rect) ContainsPoint(p Vec) bool {
	sh, ch := math.Sincos(float64(r.Heading))
	d := p.Sub(r.Center)
	along := d.X*sh + d.Y*ch
	across := d.X*ch - d.Y*sh
	return math.Abs(along) <= r.HalfLen+1e-12 && math.Abs(across) <= r.HalfWid+1e-12
}

// SegmentIntersectsRect reports whether the open segment a–b crosses the
// rectangle r. Endpoints that merely touch the rectangle boundary count as
// intersecting; callers exclude the transmitter's and receiver's own bodies
// before invoking this.
func SegmentIntersectsRect(a, b Vec, r Rect) bool {
	f := NewBodyFrame(r)
	return f.SegmentIntersects(a, b)
}

// BodyFrame caches the trigonometric frame and corners of a Rect for
// repeated segment-intersection queries against the same body — the
// blockage hot path tests every candidate body against many LOS segments
// per snapshot, and recomputing sincos per query dominates otherwise. The
// cached values are produced by exactly the arithmetic Rect.Corners and
// Rect.ContainsPoint use, so query results are identical to the one-shot
// SegmentIntersectsRect.
type BodyFrame struct {
	center           Vec
	sh, ch           float64
	halfLen, halfWid float64
	corners          [4]Vec
}

// NewBodyFrame precomputes the query frame of r.
func NewBodyFrame(r Rect) BodyFrame {
	sh, ch := math.Sincos(float64(r.Heading))
	fwd := Vec{sh, ch}.Scale(r.HalfLen)
	side := Vec{ch, -sh}.Scale(r.HalfWid)
	return BodyFrame{
		center:  r.Center,
		sh:      sh,
		ch:      ch,
		halfLen: r.HalfLen,
		halfWid: r.HalfWid,
		corners: [4]Vec{
			r.Center.Add(fwd).Add(side),
			r.Center.Add(fwd).Sub(side),
			r.Center.Sub(fwd).Sub(side),
			r.Center.Sub(fwd).Add(side),
		},
	}
}

// ContainsPoint reports whether p lies inside (or on the edge of) the body,
// with the same tolerance as Rect.ContainsPoint.
func (f *BodyFrame) ContainsPoint(p Vec) bool {
	d := p.Sub(f.center)
	along := d.X*f.sh + d.Y*f.ch
	across := d.X*f.ch - d.Y*f.sh
	return math.Abs(along) <= f.halfLen+1e-12 && math.Abs(across) <= f.halfWid+1e-12
}

// SegmentIntersects reports whether the segment a–b crosses the body; it is
// SegmentIntersectsRect over the precomputed frame.
func (f *BodyFrame) SegmentIntersects(a, b Vec) bool {
	if f.ContainsPoint(a) || f.ContainsPoint(b) {
		return true
	}
	c := &f.corners
	return segmentsIntersect(a, b, c[0], c[1]) ||
		segmentsIntersect(a, b, c[1], c[2]) ||
		segmentsIntersect(a, b, c[2], c[3]) ||
		segmentsIntersect(a, b, c[3], c[0])
}

// segmentsIntersect reports whether segments p1–p2 and p3–p4 intersect,
// including collinear-overlap and endpoint-touch cases.
func segmentsIntersect(p1, p2, p3, p4 Vec) bool {
	d1 := direction(p3, p4, p1)
	d2 := direction(p3, p4, p2)
	d3 := direction(p1, p2, p3)
	d4 := direction(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	// Collinear endpoints: an exactly-zero cross product is the standard
	// computational-geometry degeneracy test, not a tolerance compare.
	switch {
	case d1 == 0 && onSegment(p3, p4, p1): //mmv2v:exact zero cross product = exact collinearity
		return true
	case d2 == 0 && onSegment(p3, p4, p2): //mmv2v:exact zero cross product = exact collinearity
		return true
	case d3 == 0 && onSegment(p1, p2, p3): //mmv2v:exact zero cross product = exact collinearity
		return true
	case d4 == 0 && onSegment(p1, p2, p4): //mmv2v:exact zero cross product = exact collinearity
		return true
	}
	return false
}

func direction(a, b, c Vec) float64 { return b.Sub(a).Cross(c.Sub(a)) }

func onSegment(a, b, p Vec) bool {
	return math.Min(a.X, b.X)-1e-12 <= p.X && p.X <= math.Max(a.X, b.X)+1e-12 &&
		math.Min(a.Y, b.Y)-1e-12 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-12
}
