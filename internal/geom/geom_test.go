package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := Vec{3, 4}
	w := Vec{-1, 2}
	if got := v.Add(w); got != (Vec{2, 6}) {
		t.Errorf("Add = %v, want {2 6}", got)
	}
	if got := v.Sub(w); got != (Vec{4, 2}) {
		t.Errorf("Sub = %v, want {4 2}", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Errorf("Scale = %v, want {6 8}", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := v.Cross(w); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Dist(Vec{0, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestBearingTo(t *testing.T) {
	origin := Vec{0, 0}
	tests := []struct {
		name string
		to   Vec
		want float64 // radians
	}{
		{"north", Vec{0, 1}, 0},
		{"east", Vec{1, 0}, math.Pi / 2},
		{"south", Vec{0, -1}, math.Pi},
		{"west", Vec{-1, 0}, 3 * math.Pi / 2},
		{"northeast", Vec{1, 1}, math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := float64(origin.BearingTo(tt.to))
			if !almostEq(got, tt.want, 1e-12) {
				t.Errorf("BearingTo(%v) = %v, want %v", tt.to, got, tt.want)
			}
		})
	}
}

func TestNormalizeBearing(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{7 * math.Pi / 2, 3 * math.Pi / 2},
	}
	for _, tt := range tests {
		if got := float64(NormalizeBearing(Bearing(tt.in))); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("NormalizeBearing(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, math.Pi / 2, math.Pi / 2},
		{math.Pi / 2, 0, -math.Pi / 2},
		{0, math.Pi, math.Pi},
		{3 * math.Pi / 2, 0, math.Pi / 2},  // wrap clockwise
		{0, 3 * math.Pi / 2, -math.Pi / 2}, // wrap counterclockwise
		{0.1, 2*math.Pi - 0.1, -0.2},       // near-wrap
	}
	for _, tt := range tests {
		if got := AngleDiff(Bearing(tt.a), Bearing(tt.b)); !almostEq(got.Rad(), tt.want, 1e-12) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	// AngleDiff is always in (-π, π] and adding it to a recovers b.
	f := func(a, b float64) bool {
		a = math.Mod(a, 1000)
		b = math.Mod(b, 1000)
		d := AngleDiff(NormalizeBearing(Bearing(a)), NormalizeBearing(Bearing(b)))
		if d <= -math.Pi || d > math.Pi+1e-9 {
			return false
		}
		got := NormalizeBearing(Bearing(a + d.Rad()))
		want := NormalizeBearing(Bearing(b))
		return AbsAngleDiff(got, want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectors(t *testing.T) {
	s := Sectors{Count: 24}
	if got := s.Pitch(); !almostEq(got.Rad(), Deg(15).Rad(), 1e-12) {
		t.Errorf("Pitch = %v, want 15°", ToDeg(got))
	}
	if got := float64(s.Center(0)); got != 0 {
		t.Errorf("Center(0) = %v, want 0", got)
	}
	if got := float64(s.Center(6)); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Center(6) = %v, want π/2", got)
	}
	if got := s.Opposite(0); got != 12 {
		t.Errorf("Opposite(0) = %d, want 12", got)
	}
	if got := s.Opposite(20); got != 8 {
		t.Errorf("Opposite(20) = %d, want 8", got)
	}
}

func TestSectorsFromBearingRoundTrip(t *testing.T) {
	s := Sectors{Count: 24}
	for i := 0; i < s.Count; i++ {
		if got := s.FromBearing(s.Center(i)); got != i {
			t.Errorf("FromBearing(Center(%d)) = %d", i, got)
		}
	}
	// A bearing slightly clockwise of a center still maps to that sector.
	if got := s.FromBearing(s.Center(3) + Bearing(Deg(7))); got != 3 {
		t.Errorf("FromBearing(center3+7°) = %d, want 3", got)
	}
	if got := s.FromBearing(s.Center(3) + Bearing(Deg(8))); got != 4 {
		t.Errorf("FromBearing(center3+8°) = %d, want 4", got)
	}
}

func TestSectorsOppositeIsInvolution(t *testing.T) {
	f := func(count uint8, i uint16) bool {
		c := 2 * (int(count)%32 + 1) // even, 2..64
		s := Sectors{Count: c}
		idx := int(i) % c
		return s.Opposite(s.Opposite(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectorsContains(t *testing.T) {
	s := Sectors{Count: 24}
	if !s.Contains(0, Bearing(Deg(10)), Deg(30)) {
		t.Error("10° should be inside a 30° beam on sector 0")
	}
	if s.Contains(0, Bearing(Deg(20)), Deg(30)) {
		t.Error("20° should be outside a 30° beam on sector 0")
	}
	if !s.Contains(0, Bearing(Deg(350)), Deg(30)) {
		t.Error("350° should be inside a 30° beam on sector 0 (wraparound)")
	}
}

func TestRectCorners(t *testing.T) {
	// A car heading north: length axis along +y.
	r := Rect{Center: Vec{0, 0}, Heading: 0, HalfLen: 2, HalfWid: 1}
	c := r.Corners()
	wantXs := map[float64]int{}
	wantYs := map[float64]int{}
	for _, p := range c {
		wantXs[math.Round(p.X)]++
		wantYs[math.Round(p.Y)]++
	}
	if wantXs[1] != 2 || wantXs[-1] != 2 || wantYs[2] != 2 || wantYs[-2] != 2 {
		t.Errorf("Corners = %v", c)
	}
}

func TestRectContainsPoint(t *testing.T) {
	// Heading east: length axis along +x.
	r := Rect{Center: Vec{10, 0}, Heading: Bearing(math.Pi / 2), HalfLen: 2.3, HalfWid: 0.9}
	tests := []struct {
		p    Vec
		want bool
	}{
		{Vec{10, 0}, true},
		{Vec{12.2, 0}, true},
		{Vec{12.4, 0}, false},
		{Vec{10, 0.85}, true},
		{Vec{10, 1.0}, false},
		{Vec{7.6, -0.85}, false}, // corner region outside
	}
	for _, tt := range tests {
		if got := r.ContainsPoint(tt.p); got != tt.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	blocker := Rect{Center: Vec{50, 0}, Heading: Bearing(math.Pi / 2), HalfLen: 2.3, HalfWid: 0.9}
	tests := []struct {
		name string
		a, b Vec
		want bool
	}{
		{"straight through", Vec{0, 0}, Vec{100, 0}, true},
		{"parallel above", Vec{0, 5}, Vec{100, 5}, false},
		{"diagonal miss", Vec{0, 10}, Vec{100, 12}, false},
		{"diagonal hit", Vec{0, -5}, Vec{100, 5}, true},
		{"short of blocker", Vec{0, 0}, Vec{40, 0}, false},
		{"endpoint inside", Vec{50, 0}, Vec{100, 20}, true},
		{"clip corner", Vec{47.7, 2}, Vec{52.3, -2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentIntersectsRect(tt.a, tt.b, blocker); got != tt.want {
				t.Errorf("SegmentIntersectsRect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentIntersectsRectSymmetry(t *testing.T) {
	// Swapping segment endpoints never changes the answer.
	r := Rect{Center: Vec{5, 5}, Heading: Bearing(1), HalfLen: 2, HalfWid: 1}
	f := func(ax, ay, bx, by float64) bool {
		a := Vec{math.Mod(ax, 20), math.Mod(ay, 20)}
		b := Vec{math.Mod(bx, 20), math.Mod(by, 20)}
		return SegmentIntersectsRect(a, b, r) == SegmentIntersectsRect(b, a, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDegToDegRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		d = math.Mod(d, 1e6)
		return almostEq(ToDeg(Deg(d)), d, math.Abs(d)*1e-12+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
