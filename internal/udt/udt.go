// Package udt implements the shared data plane used by every OHM protocol
// in this repository: once a protocol has agreed on transmitter/receiver
// pairs and refined beams, a Session streams data between them under TDD
// alternation, re-pricing each link's 802.11ad MCS rate at every 5 ms link
// refresh with Eq. 3 interference from all concurrent streams, and credits
// the exchanged bits to the task ledger.
//
// mmV2V's UDT phase (Sec. III-D), the ROP baseline's transfer phase and the
// 802.11ad baseline's service periods all run on this component, so rate
// adaptation and interference are modeled identically across schemes.
package udt

import (
	"fmt"
	"math"

	"mmv2v/internal/des"
	"mmv2v/internal/geom"
	"mmv2v/internal/medium"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/trace"
	"mmv2v/internal/units"
)

// mcsAirtimeNames precomputes the per-MCS airtime gauge names so the accrual
// hot path never formats strings.
var mcsAirtimeNames [phy.NumMCS]string

func init() {
	for m := range mcsAirtimeNames {
		mcsAirtimeNames[m] = fmt.Sprintf("udt.airtime_sec.mcs%02d", m)
	}
}

// Pair is one agreed data link: endpoints and their refined beams.
type Pair struct {
	A, B int
	// BeamA is A's beam toward B; BeamB the reverse.
	BeamA, BeamB phy.Beam
}

// pairState is the live transfer state of a Pair.
type pairState struct {
	Pair
	dirAB       bool
	stream      medium.StreamID
	rate        float64
	mcs         phy.MCS
	lastAccrual des.Time
	done        bool
}

// Session is a running transfer over a set of pairs. Create with Start;
// wire OnRefresh into the protocol's refresh hook; Stop before the pairs'
// agreement expires (normally the frame boundary).
type Session struct {
	env   *sim.Env //mmv2v:derived wiring to the host simulator, re-supplied by Restore
	pairs []*pairState
	open  bool
	// track re-aims each pair's narrow beams at every refresh (beam
	// tracking, an extension beyond the paper's refine-once-per-frame).
	track   bool
	trackCB phy.Codebook

	// Statistics handles (nil-safe no-ops when Env.Obs is nil). airtime[m]
	// accrues streaming seconds spent at MCS m.
	airtime        [phy.NumMCS]*obs.Gauge //mmv2v:derived statistics handles re-acquired from Env.Obs by Restore
	obsCompletions *obs.Counter           //mmv2v:derived statistics handle re-acquired from Env.Obs by Restore
}

// EnableTracking turns on per-refresh beam re-refinement with the given
// codebook, modeling a receiver that tracks its peer within the discovery
// sector instead of holding the frame-start beams.
func (s *Session) EnableTracking(cb phy.Codebook) {
	s.track = true
	s.trackCB = cb
}

// Start opens streams for all pairs and prices initial rates. The parity
// argument staggers initial TDD directions (pass the frame index). Pairs
// whose task is already complete are skipped.
func Start(env *sim.Env, pairs []Pair, parity int) *Session {
	s := &Session{env: env, open: true}
	if env.Obs != nil {
		for m := range s.airtime {
			s.airtime[m] = env.Obs.Gauge(mcsAirtimeNames[m])
		}
		s.obsCompletions = env.Obs.Counter("udt.completions")
		env.Obs.Counter("udt.sessions").Inc()
		env.Obs.Counter("udt.pairs_started").Add(uint64(len(pairs)))
	}
	now := env.Sim.Now()
	for _, p := range pairs {
		ps := &pairState{Pair: p, dirAB: (parity+p.A+p.B)%2 == 0, lastAccrual: now}
		if env.PairDone(p.A, p.B) {
			ps.done = true
		}
		s.pairs = append(s.pairs, ps)
	}
	for _, ps := range s.pairs {
		if !ps.done {
			tx, beam := ps.txSide()
			ps.stream = s.env.Medium.StartStream(tx, beam)
			env.Trace.Emit(trace.Event{
				At: now, Frame: parity, Kind: trace.KindStreamStart, A: ps.A, B: ps.B,
			})
		}
	}
	s.reprice()
	return s
}

func (ps *pairState) txSide() (int, phy.Beam) {
	if ps.dirAB {
		return ps.A, ps.BeamA
	}
	return ps.B, ps.BeamB
}

func (ps *pairState) rxSide() (int, phy.Beam) {
	if ps.dirAB {
		return ps.B, ps.BeamB
	}
	return ps.A, ps.BeamA
}

// reprice recomputes every live pair's MCS rate under current interference,
// tracing rate changes.
func (s *Session) reprice() {
	for _, ps := range s.pairs {
		if ps.done {
			continue
		}
		tx, txBeam := ps.txSide()
		rx, rxBeam := ps.rxSide()
		m, ok := phy.BestMCS(s.env.Medium.SINRNow(tx, rx, txBeam, rxBeam))
		rate := 0.0
		if !ok || m < 1 {
			m = 0
		} else {
			rate = m.Rate()
		}
		//mmv2v:exact change detection on a discrete MCS table rate; equal bits mean the same table entry
		if rate != ps.rate {
			s.env.Trace.Emit(trace.Event{
				At: s.env.Sim.Now(), Kind: trace.KindRate, A: ps.A, B: ps.B, Value: rate,
			})
		}
		ps.rate = rate
		ps.mcs = m
	}
}

// accrue credits the ledger for the elapsed interval at the priced rates.
func (s *Session) accrue(now des.Time) {
	for _, ps := range s.pairs {
		if ps.done {
			continue
		}
		dt := now.Sub(ps.lastAccrual).Seconds()
		if dt > 0 && ps.rate > 0 {
			// Stamped with the interval start: the pair was exchanging from
			// the moment the priced stream began, not when it was settled.
			s.env.Ledger.AddAt(ps.A, ps.B, ps.rate*dt, ps.lastAccrual.Seconds())
			s.airtime[ps.mcs].Observe(dt)
		}
		ps.lastAccrual = now
	}
}

// OnRefresh settles the elapsed interval, retires completed pairs, flips
// TDD directions and re-prices. Call from the protocol's 5 ms refresh hook
// while the session is live.
func (s *Session) OnRefresh() {
	if !s.open {
		return
	}
	now := s.env.Sim.Now()
	s.accrue(now)
	for _, ps := range s.pairs {
		if ps.done {
			continue
		}
		s.env.Medium.StopStream(ps.stream)
		if s.env.PairDone(ps.A, ps.B) {
			ps.done = true
			s.obsCompletions.Inc()
			s.env.Trace.Emit(trace.Event{
				At: now, Kind: trace.KindCompletion, A: ps.A, B: ps.B,
				Value: s.env.Ledger.Exchanged(ps.A, ps.B),
			})
			continue
		}
		if s.track {
			ps.BeamA, ps.BeamB = RefineBeams(s.env, ps.A, ps.B, s.trackCB, -1, -1)
		}
		ps.dirAB = !ps.dirAB
		tx, beam := ps.txSide()
		ps.stream = s.env.Medium.StartStream(tx, beam)
	}
	s.reprice()
}

// Stop settles the ledger and removes all streams. Safe to call twice.
func (s *Session) Stop() {
	if !s.open {
		return
	}
	s.accrue(s.env.Sim.Now())
	for _, ps := range s.pairs {
		if !ps.done {
			s.env.Medium.StopStream(ps.stream)
		}
	}
	s.open = false
}

// ActivePairs returns the number of pairs still streaming.
func (s *Session) ActivePairs() int {
	if !s.open {
		return 0
	}
	n := 0
	for _, ps := range s.pairs {
		if !ps.done {
			n++
		}
	}
	return n
}

// RefineBeams returns both endpoints' best narrow beams for a pair, modeling
// the cross search of Sec. III-D: each side probes its s = ⌊θ/θ_min⌋+1
// narrow beams within the wide discovery sector and both adopt the pair with
// the best response — the beams whose boresights are nearest the true
// bearing. The caller charges the search's time cost.
//
// coarseA/coarseB are the sector indices each side discovered the other on;
// pass a negative value to search around the true bearing's sector (used by
// oracle/centralized schemes).
func RefineBeams(env *sim.Env, a, b int, cb phy.Codebook, coarseA, coarseB int) (phy.Beam, phy.Beam) {
	// Each side probes its full narrow-beam set once during the cross search.
	env.Obs.Counter("udt.refine_probes").Add(uint64(2 * cb.RefinementBeams()))
	return bestNarrow(env, a, b, cb, coarseA), bestNarrow(env, b, a, cb, coarseB)
}

func bestNarrow(env *sim.Env, owner, peer int, cb phy.Codebook, coarseSector int) phy.Beam {
	lnk, ok := env.World.Link(owner, peer)
	if !ok {
		return phy.Beam{Bearing: cb.Sectors.Center(0), Width: cb.NarrowWidth}
	}
	if coarseSector < 0 {
		coarseSector = cb.Sectors.FromBearing(lnk.Bearing)
	}
	coarse := cb.Sectors.Center(coarseSector)
	best := phy.Beam{Bearing: coarse, Width: cb.NarrowWidth}
	bestOff := units.Radian(math.Inf(1))
	for k := 0; k < cb.RefinementBeams(); k++ {
		cand := cb.NarrowBeamBearing(coarse, k)
		if off := geom.AbsAngleDiff(cand, lnk.Bearing); off < bestOff {
			bestOff = off
			best = phy.Beam{Bearing: cand, Width: cb.NarrowWidth}
		}
	}
	return best
}

// DebugPairs returns (rate, done) per pair for diagnostics in tests.
func (s *Session) DebugPairs() []float64 {
	out := make([]float64, 0, len(s.pairs))
	for _, ps := range s.pairs {
		out = append(out, ps.rate)
	}
	return out
}
