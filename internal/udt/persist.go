// Checkpoint support (DESIGN.md §11). A restored session must NOT go
// through Start: Start opens fresh streams and increments the
// "udt.sessions"/"udt.pairs_started" counters, both of which are already
// accounted for in the restored registry. Restore rebuilds the statistics
// handles without counting and carries the checkpointed stream IDs as-is —
// checkpoints land at drained window boundaries where Medium.Reset has
// cleared all live transmissions, so the IDs are stale in exactly the way
// they are on the uncheckpointed path (StopStream on a stale ID is a
// no-op, and the next OnRefresh opens fresh streams).
package udt

import (
	"mmv2v/internal/des"
	"mmv2v/internal/geom"
	"mmv2v/internal/medium"
	"mmv2v/internal/persist"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/units"
)

// pairWireBytes is the minimum encoded size of one pairState, used to clamp
// hostile pair counts.
const pairWireBytes = 2*8 + 4*8 + 1 + 8 + 8 + 8 + 8 + 1

// SaveState appends the session's full transfer state.
func (s *Session) SaveState(e *persist.Encoder) {
	e.Bool(s.open)
	e.Bool(s.track)
	if s.track {
		e.Int(s.trackCB.Sectors.Count)
		e.F64(s.trackCB.TxWidth.Rad())
		e.F64(s.trackCB.RxWidth.Rad())
		e.F64(s.trackCB.NarrowWidth.Rad())
	}
	e.U32(uint32(len(s.pairs)))
	for _, ps := range s.pairs {
		e.Int(ps.A)
		e.Int(ps.B)
		e.F64(float64(ps.BeamA.Bearing))
		e.F64(ps.BeamA.Width.Rad())
		e.F64(float64(ps.BeamB.Bearing))
		e.F64(ps.BeamB.Width.Rad())
		e.Bool(ps.dirAB)
		e.I64(int64(ps.stream))
		e.F64(ps.rate)
		e.Int(int(ps.mcs))
		e.I64(int64(ps.lastAccrual))
		e.Bool(ps.done)
	}
}

// Restore rebuilds a session checkpointed by SaveState over a resumed
// environment. Pair endpoints must be valid vehicle indices and MCS values
// must index the rate table (the airtime gauge array is MCS-indexed).
func Restore(env *sim.Env, d *persist.Decoder) (*Session, error) {
	s := &Session{env: env}
	if env.Obs != nil {
		for m := range s.airtime {
			s.airtime[m] = env.Obs.Gauge(mcsAirtimeNames[m])
		}
		s.obsCompletions = env.Obs.Counter("udt.completions")
	}
	s.open = d.Bool()
	s.track = d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if s.track {
		cb := phy.Codebook{
			Sectors:     geom.Sectors{Count: d.Int()},
			TxWidth:     units.Radian(d.F64()),
			RxWidth:     units.Radian(d.F64()),
			NarrowWidth: units.Radian(d.F64()),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if err := cb.Validate(); err != nil {
			d.Failf("session tracking codebook invalid: %v", err)
			return nil, d.Err()
		}
		s.trackCB = cb
	}
	n := env.World.NumVehicles()
	np := d.Count(pairWireBytes)
	for i := 0; i < np; i++ {
		ps := &pairState{}
		ps.A = d.Int()
		ps.B = d.Int()
		ps.BeamA = phy.Beam{Bearing: geom.Bearing(d.F64()), Width: units.Radian(d.F64())}
		ps.BeamB = phy.Beam{Bearing: geom.Bearing(d.F64()), Width: units.Radian(d.F64())}
		ps.dirAB = d.Bool()
		ps.stream = medium.StreamID(d.I64())
		ps.rate = d.F64()
		mcs := d.Int()
		ps.lastAccrual = des.Time(d.I64())
		ps.done = d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if ps.A < 0 || ps.A >= n || ps.B < 0 || ps.B >= n || ps.A == ps.B {
			d.Failf("session pair %d endpoints (%d, %d) invalid for %d vehicles", i, ps.A, ps.B, n)
			return nil, d.Err()
		}
		if mcs < 0 || mcs >= phy.NumMCS {
			d.Failf("session pair %d MCS %d outside [0, %d)", i, mcs, phy.NumMCS)
			return nil, d.Err()
		}
		ps.mcs = phy.MCS(mcs)
		s.pairs = append(s.pairs, ps)
	}
	return s, nil
}
