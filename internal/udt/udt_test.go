package udt_test

import (
	"math"
	"testing"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/geom"
	"mmv2v/internal/medium"
	"mmv2v/internal/metrics"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
	"mmv2v/internal/udt"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// buildEnv places stationary eastbound vehicles and wires an environment.
func buildEnv(t *testing.T, demandBits float64, lanes []int, positions []float64) *sim.Env {
	t.Helper()
	cfg := traffic.DefaultConfig(0)
	cfg.LaneChangeCheckEvery = 0
	road, err := traffic.New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := range positions {
		road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: lanes[k], S: positions[k], V: 0, DesiredV: 0})
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	s := des.New()
	return &sim.Env{
		Sim:        s,
		World:      w,
		Medium:     medium.New(s, w),
		Ledger:     metrics.NewLedger(w.NumVehicles()),
		Rand:       xrand.New(7),
		Timing:     phy.DefaultTiming(),
		DemandBits: demandBits,
	}
}

// pairFor builds a refined pair between vehicles a and b.
func pairFor(env *sim.Env, a, b int) udt.Pair {
	cb := phy.DefaultCodebook()
	beamA, beamB := udt.RefineBeams(env, a, b, cb, -1, -1)
	return udt.Pair{A: a, B: b, BeamA: beamA, BeamB: beamB}
}

func TestSessionAccruesOverRefreshes(t *testing.T) {
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	if s.ActivePairs() != 1 {
		t.Fatalf("active = %d", s.ActivePairs())
	}
	// Simulate three 5 ms refreshes.
	for k := 1; k <= 3; k++ {
		env.Sim.ScheduleAt(des.At(time.Duration(k)*5*time.Millisecond), "tick", s.OnRefresh)
	}
	env.Sim.RunAll()
	got := env.Ledger.Exchanged(0, 1)
	// 15 ms at MCS12 (4.62 Gb/s) = 69.3 Mb.
	want := 4.62e9 * 0.015
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("exchanged %v bits, want ≈%v", got, want)
	}
}

func TestSessionStopSettlesRemainder(t *testing.T) {
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	env.Sim.ScheduleAt(des.At(7*time.Millisecond), "stop", s.Stop)
	env.Sim.RunAll()
	got := env.Ledger.Exchanged(0, 1)
	want := 4.62e9 * 0.007
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("exchanged %v bits, want ≈%v (stop settles partial interval)", got, want)
	}
	if s.ActivePairs() != 0 {
		t.Error("pairs active after stop")
	}
	if env.Medium.ActiveTransmissions() != 0 {
		t.Error("streams left on the medium after stop")
	}
	s.Stop() // idempotent
}

func TestSessionCompletionRetiresPair(t *testing.T) {
	env := buildEnv(t, 20e6, []int{1, 1}, []float64{0, 30}) // ≈4.3 ms at MCS12
	s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	for k := 1; k <= 4; k++ {
		env.Sim.ScheduleAt(des.At(time.Duration(k)*5*time.Millisecond), "tick", s.OnRefresh)
	}
	env.Sim.RunAll()
	if !env.PairDone(0, 1) {
		t.Fatal("pair not complete")
	}
	if s.ActivePairs() != 0 {
		t.Error("completed pair still active")
	}
	// Overshoot bounded by one refresh interval at full rate.
	if got := env.Ledger.Exchanged(0, 1); got > 20e6+4.62e9*0.005+1 {
		t.Errorf("overshoot: %v bits", got)
	}
}

func TestSessionSkipsAlreadyDonePairs(t *testing.T) {
	env := buildEnv(t, 10e6, []int{1, 1}, []float64{0, 30})
	env.Ledger.Add(0, 1, 10e6)
	s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	if s.ActivePairs() != 0 {
		t.Errorf("done pair started streaming: %d", s.ActivePairs())
	}
}

func TestConcurrentPairsInterfere(t *testing.T) {
	// Two pairs side by side: rates under concurrency must not exceed the
	// clean rate, and on a collinear highway the near pair's interference
	// should usually cost the far pair some SINR.
	env := buildEnv(t, 1e12, []int{1, 1, 0, 0}, []float64{0, 30, 10, 40})
	solo := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	env.Sim.ScheduleAt(des.At(5*time.Millisecond), "tick", solo.OnRefresh)
	env.Sim.RunAll()
	soloBits := env.Ledger.Exchanged(0, 1)
	solo.Stop()

	env2 := buildEnv(t, 1e12, []int{1, 1, 0, 0}, []float64{0, 30, 10, 40})
	both := udt.Start(env2, []udt.Pair{pairFor(env2, 0, 1), pairFor(env2, 2, 3)}, 0)
	env2.Sim.ScheduleAt(des.At(5*time.Millisecond), "tick", both.OnRefresh)
	env2.Sim.RunAll()
	bothBits := env2.Ledger.Exchanged(0, 1)
	both.Stop()

	if bothBits > soloBits+1 {
		t.Errorf("pair rate rose under interference: %v vs %v", bothBits, soloBits)
	}
}

func TestTDDParityFlips(t *testing.T) {
	// The same pair with different parities starts in opposite directions;
	// the ledger total is identical either way (pair accounting), so just
	// verify both run and accrue equally in a symmetric scenario.
	run := func(parity int) float64 {
		env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
		s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, parity)
		env.Sim.ScheduleAt(des.At(5*time.Millisecond), "tick", s.OnRefresh)
		env.Sim.RunAll()
		s.Stop()
		return env.Ledger.Exchanged(0, 1)
	}
	if a, b := run(0), run(1); math.Abs(a-b) > 1 {
		t.Errorf("parity changed pair total: %v vs %v", a, b)
	}
}

func TestRefineBeamsPointAtTrueBearing(t *testing.T) {
	env := buildEnv(t, 1e12, []int{0, 2}, []float64{0, 40})
	cb := phy.DefaultCodebook()
	beamA, beamB := udt.RefineBeams(env, 0, 1, cb, -1, -1)
	lnk, _ := env.World.Link(0, 1)
	back, _ := env.World.Link(1, 0)
	if off := geom.AbsAngleDiff(beamA.Bearing, lnk.Bearing); off > cb.NarrowWidth {
		t.Errorf("beam A off by %v rad", off)
	}
	if off := geom.AbsAngleDiff(beamB.Bearing, back.Bearing); off > cb.NarrowWidth {
		t.Errorf("beam B off by %v rad", off)
	}
	if beamA.Width != cb.NarrowWidth || beamB.Width != cb.NarrowWidth {
		t.Error("refined beams not narrow")
	}
}

func TestRefineBeamsConstrainedToCoarseSector(t *testing.T) {
	// With a wrong coarse sector, the search stays within that sector's
	// span (the paper refines only within the discovery beam).
	env := buildEnv(t, 1e12, []int{0, 2}, []float64{0, 40})
	cb := phy.DefaultCodebook()
	lnk, _ := env.World.Link(0, 1)
	trueSector := cb.Sectors.FromBearing(lnk.Bearing)
	wrongSector := (trueSector + 6) % cb.Sectors.Count // 90° off
	beamA, _ := udt.RefineBeams(env, 0, 1, cb, wrongSector, -1)
	// The chosen beam must lie within the wrong sector's refinement span,
	// i.e. far from the true bearing.
	if off := geom.AbsAngleDiff(beamA.Bearing, lnk.Bearing); off < geom.Deg(45) {
		t.Errorf("beam escaped its coarse sector: off=%v", geom.ToDeg(off))
	}
}

func TestRefineBeamsOutOfRange(t *testing.T) {
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 900})
	cb := phy.DefaultCodebook()
	beamA, beamB := udt.RefineBeams(env, 0, 1, cb, -1, -1)
	if beamA.Width != cb.NarrowWidth || beamB.Width != cb.NarrowWidth {
		t.Error("fallback beams should still be narrow")
	}
}

func TestSessionRepricesAfterTopologyChange(t *testing.T) {
	// Move the vehicles apart between refreshes: the rate must drop.
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	s := udt.Start(env, []udt.Pair{pairFor(env, 0, 1)}, 0)
	env.Sim.ScheduleAt(des.At(5*time.Millisecond), "tick1", func() {
		s.OnRefresh()
		// Teleport vehicle 1 to 190 m and refresh the world.
		env.World.Road().Vehicles()[1].S = 190
		env.World.Refresh()
	})
	env.Sim.ScheduleAt(des.At(10*time.Millisecond), "tick2", s.OnRefresh)
	env.Sim.ScheduleAt(des.At(15*time.Millisecond), "tick3", s.OnRefresh)
	env.Sim.RunAll()
	s.Stop()
	got := env.Ledger.Exchanged(0, 1)
	closeRate := 4.62e9 * 0.005 // first 5 ms at MCS12
	// After the move the beams still point at the old bearing but the
	// distance is 160 m: the rate must be well below MCS12.
	if got >= closeRate*3 {
		t.Errorf("rate did not degrade after separation: %v bits total", got)
	}
}
