package persist

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U64(math.MaxUint64)
	e.U32(0xdeadbeef)
	e.U8(7)
	e.I64(-42)
	e.Int(-1)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.Bool(true)
	e.Bool(false)
	e.String("mmV2V")
	e.Blob([]byte{1, 2, 3})
	e.Blob(nil)

	d := NewDecoder(e.Bytes())
	if got := d.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -1 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); !math.Signbit(got) || got != 0 {
		t.Errorf("F64 negative zero = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, 1) {
		t.Errorf("F64 +inf = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.String(); got != "mmV2V" {
		t.Errorf("String = %q", got)
	}
	if got := d.Blob(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Blob = %v", got)
	}
	if got := d.Blob(); len(got) != 0 {
		t.Errorf("empty Blob = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	var e Encoder
	e.U32(5)
	d := NewDecoder(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Errorf("truncated U64 = %d", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	// Every later read returns zero values without disturbing the error.
	if d.U32() != 0 || d.String() != "" || d.Bool() || d.F64() != 0 {
		t.Error("reads after a latched error must return zero values")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("latched error was overwritten: %v", d.Err())
	}
}

func TestDecoderCountClamp(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // a count no remaining input could satisfy
	d := NewDecoder(e.Bytes())
	if got := d.Count(8); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", d.Err())
	}
}

func TestDecoderFailf(t *testing.T) {
	d := NewDecoder(nil)
	d.Failf("sector %d out of range", 99)
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", d.Err())
	}
}

func TestSnapshotFrameRoundTrip(t *testing.T) {
	payload := []byte("protocol state goes here")
	frame := EncodeSnapshot(payload)
	got, err := DecodeSnapshot(frame)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestSnapshotFrameRejectsCorruption(t *testing.T) {
	frame := EncodeSnapshot([]byte("payload"))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrMagic},
		{"future version", func(b []byte) []byte { b[8] = 99; return b }, ErrVersion},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-2] }, ErrTruncated},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrChecksum},
	}
	for _, tc := range cases {
		b := append([]byte(nil), frame...)
		if _, err := DecodeSnapshot(tc.mutate(b)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	log := NewLog()
	log = AppendRecord(log, 1, []byte("header"))
	log = AppendRecord(log, 2, []byte("window 0"))
	log = AppendRecord(log, 2, nil)
	recs, truncated, err := ReadLog(log)
	if err != nil || truncated {
		t.Fatalf("ReadLog: recs=%d truncated=%v err=%v", len(recs), truncated, err)
	}
	if len(recs) != 3 || recs[0].Type != 1 || string(recs[1].Payload) != "window 0" || len(recs[2].Payload) != 0 {
		t.Errorf("records = %+v", recs)
	}
}

func TestLogTruncatedTailRecovery(t *testing.T) {
	log := NewLog()
	log = AppendRecord(log, 1, []byte("keep me"))
	full := AppendRecord(append([]byte(nil), log...), 2, []byte("torn away"))
	// Cut the final append anywhere inside it: the first record survives.
	for cut := len(log) + 1; cut < len(full); cut++ {
		recs, truncated, err := ReadLog(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
		if !truncated {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "keep me" {
			t.Fatalf("cut %d: records = %+v", cut, recs)
		}
	}
}

func TestLogInteriorCorruption(t *testing.T) {
	log := NewLog()
	log = AppendRecord(log, 1, []byte("first"))
	mark := len(log)
	log = AppendRecord(log, 2, []byte("second"))
	log[mark+recHdrLen] ^= 0x40 // flip a payload bit of the complete second record
	recs, _, err := ReadLog(log)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Errorf("records before corruption = %+v", recs)
	}
}

func TestLogRejectsBadHeader(t *testing.T) {
	if _, _, err := ReadLog([]byte("short")); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	if _, _, err := ReadLog([]byte("WRONGMAG\x01\x00\x00\x00")); !errors.Is(err, ErrMagic) {
		t.Errorf("magic: %v", err)
	}
	bad := NewLog()
	bad[8] = 99
	if _, _, err := ReadLog(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trial000.ckpt")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}

// FuzzDecodeSnapshot drives arbitrary bytes through the snapshot frame and
// a representative payload decode. The contract under corruption is a
// structured error, never a panic.
func FuzzDecodeSnapshot(f *testing.F) {
	var e Encoder
	e.U64(42)
	e.String("proto")
	e.U32(3)
	e.F64(1.5)
	e.F64(-2.5)
	e.F64(0)
	e.Bool(true)
	e.Blob([]byte{1, 2, 3})
	valid := EncodeSnapshot(e.Bytes())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := DecodeSnapshot(b)
		if err != nil {
			if payload != nil {
				t.Fatalf("payload returned alongside error %v", err)
			}
			return
		}
		d := NewDecoder(payload)
		_ = d.U64()
		_ = d.String()
		n := d.Count(8)
		for i := 0; i < n; i++ {
			_ = d.F64()
		}
		_ = d.Bool()
		_ = d.Blob()
		_ = d.Int()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}

// FuzzDecodeLog drives arbitrary bytes through the record-log reader; torn
// tails must be flagged, interior corruption must error, and nothing may
// panic.
func FuzzDecodeLog(f *testing.F) {
	log := NewLog()
	log = AppendRecord(log, 1, []byte("header"))
	log = AppendRecord(log, 2, make([]byte, 32))
	log = AppendRecord(log, 3, nil)
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add([]byte("MMV2VLOG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, truncated, err := ReadLog(b)
		if err != nil && truncated {
			t.Fatalf("both error (%v) and truncated", err)
		}
		for _, r := range recs {
			_ = r.Type
			_ = len(r.Payload)
		}
	})
}
