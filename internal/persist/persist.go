// Package persist is the deterministic persistence substrate (DESIGN.md
// §11): a little-endian binary codec plus two checksummed container
// formats — a versioned snapshot frame for checkpoint files and an
// append-only record log for run logs.
//
// The package is deliberately stdlib-only and knows nothing about the
// simulator: every layer (traffic, world, faults, metrics, obs, protocols,
// sim) encodes its own state through an Encoder and restores it through a
// Decoder. The decoder is hostile-input safe by construction: every read is
// bounds-checked, every length prefix is validated against the bytes that
// remain, the first failure latches and all subsequent reads return zero
// values. Corrupted input yields a structured error, never a panic.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// castagnoli is the CRC-32C polynomial table used for every checksum in
// the formats below (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c returns the CRC-32C checksum of b.
func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Structured decode errors. Callers branch on these with errors.Is; every
// failure path in this package wraps exactly one of them.
var (
	// ErrTruncated means the input ended before a complete frame, record
	// or field.
	ErrTruncated = errors.New("persist: truncated input")
	// ErrChecksum means a CRC over a payload did not match its header.
	ErrChecksum = errors.New("persist: checksum mismatch")
	// ErrMagic means the input does not start with the expected format tag.
	ErrMagic = errors.New("persist: bad magic")
	// ErrVersion means the format version is newer than this build reads.
	ErrVersion = errors.New("persist: unsupported version")
	// ErrCorrupt means a structurally invalid value (impossible length,
	// out-of-range index, non-canonical ordering) inside a payload.
	ErrCorrupt = errors.New("persist: corrupt payload")
)

// Encoder appends fixed-width little-endian primitives to a buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends an unsigned 64-bit value.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// U32 appends an unsigned 32-bit value.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// I64 appends a signed 64-bit value (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a signed 64-bit value.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit-exactly (IEEE 754 bits; NaN payloads and
// signed zeros round-trip).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice (a nested payload).
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads the Encoder's wire format back with sticky-error
// semantics: the first failure latches, every later read returns the zero
// value, and Err reports the latched failure. No method panics on any
// input.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail latches the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Failf latches a caller-level structural error wrapping ErrCorrupt; used
// by state loaders that discover an out-of-range value after a
// syntactically valid read.
func (d *Decoder) Failf(format string, args ...any) {
	d.fail(fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...))
}

// take returns the next n bytes, or nil after latching ErrTruncated.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(d.buf)-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads an unsigned 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads an unsigned 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit-exactly.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean; any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice (aliasing the input buffer).
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Count reads a u32 element count and validates it against the bytes that
// remain, given a per-element lower bound in bytes. This clamps attacker-
// controlled counts so loaders can allocate count-sized slices without an
// out-of-memory hazard: a count that could not possibly be satisfied by
// the remaining input latches ErrCorrupt and returns 0.
func (d *Decoder) Count(minElemBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > d.Remaining()/minElemBytes {
		d.fail(fmt.Errorf("%w: count %d exceeds remaining input", ErrCorrupt, n))
		return 0
	}
	return n
}

// Snapshot frame: magic, format version, payload length, CRC-32
// (Castagnoli) of the payload, payload bytes.
const (
	snapshotMagic   = "MMV2VSNP"
	SnapshotVersion = 1
	snapshotHdrLen  = 8 + 4 + 8 + 4
)

// EncodeSnapshot wraps a payload in the versioned, checksummed snapshot
// frame.
func EncodeSnapshot(payload []byte) []byte {
	var e Encoder
	e.buf = append(e.buf, snapshotMagic...)
	e.U32(SnapshotVersion)
	e.U64(uint64(len(payload)))
	e.U32(crc32c(payload))
	e.buf = append(e.buf, payload...)
	return e.buf
}

// DecodeSnapshot validates a snapshot frame and returns its payload.
func DecodeSnapshot(b []byte) ([]byte, error) {
	if len(b) < snapshotHdrLen {
		return nil, fmt.Errorf("%w: %d-byte input shorter than snapshot header", ErrTruncated, len(b))
	}
	if string(b[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: want %q", ErrMagic, snapshotMagic)
	}
	v := binary.LittleEndian.Uint32(b[8:12])
	if v != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d (this build reads %d)", ErrVersion, v, SnapshotVersion)
	}
	n := binary.LittleEndian.Uint64(b[12:20])
	if n != uint64(len(b)-snapshotHdrLen) {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, frame carries %d", ErrTruncated, n, len(b)-snapshotHdrLen)
	}
	payload := b[snapshotHdrLen:]
	if got, want := crc32c(payload), binary.LittleEndian.Uint32(b[20:24]); got != want {
		return nil, fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrChecksum, got, want)
	}
	return payload, nil
}

// Record log: magic, format version, then a sequence of records, each
// [type u8][len u32][crc u32][payload]. The log is append-only; a crash
// mid-append leaves a short or checksum-broken tail, which ReadLog
// recovers from by returning every record before it.
const (
	logMagic   = "MMV2VLOG"
	LogVersion = 1
	logHdrLen  = 8 + 4
	recHdrLen  = 1 + 4 + 4
)

// Record is one entry of a record log.
type Record struct {
	Type    uint8
	Payload []byte
}

// NewLog returns the log file header that records are appended to.
func NewLog() []byte {
	var e Encoder
	e.buf = append(e.buf, logMagic...)
	e.U32(LogVersion)
	return e.buf
}

// AppendRecord appends one checksummed record to a log buffer.
func AppendRecord(log []byte, typ uint8, payload []byte) []byte {
	var e Encoder
	e.buf = log
	e.U8(typ)
	e.U32(uint32(len(payload)))
	e.U32(crc32c(payload))
	e.buf = append(e.buf, payload...)
	return e.buf
}

// ReadLog parses a record log. It returns every intact record in order
// plus a truncated flag: true when the log ends in an incomplete tail
// (the signature of a crash mid-append), in which case the preceding
// records are still returned and err is nil. A checksum mismatch on an
// interior or complete record is real corruption and returns ErrChecksum
// alongside the records that preceded it.
func ReadLog(b []byte) (recs []Record, truncated bool, err error) {
	if len(b) < logHdrLen {
		return nil, false, fmt.Errorf("%w: %d-byte input shorter than log header", ErrTruncated, len(b))
	}
	if string(b[:8]) != logMagic {
		return nil, false, fmt.Errorf("%w: want %q", ErrMagic, logMagic)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != LogVersion {
		return nil, false, fmt.Errorf("%w: log version %d (this build reads %d)", ErrVersion, v, LogVersion)
	}
	off := logHdrLen
	for off < len(b) {
		if len(b)-off < recHdrLen {
			return recs, true, nil // short tail: torn final append
		}
		typ := b[off]
		n := int(binary.LittleEndian.Uint32(b[off+1 : off+5]))
		want := binary.LittleEndian.Uint32(b[off+5 : off+9])
		if n > len(b)-off-recHdrLen {
			return recs, true, nil // payload runs past EOF: torn final append
		}
		payload := b[off+recHdrLen : off+recHdrLen+n]
		if got := crc32c(payload); got != want {
			return recs, false, fmt.Errorf("%w: record %d (type %d) CRC %08x, header says %08x",
				ErrChecksum, len(recs), typ, got, want)
		}
		recs = append(recs, Record{Type: typ, Payload: payload})
		off += recHdrLen + n
	}
	return recs, false, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a half-written snapshot and a crash
// mid-write leaves the previous file intact.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		// Best-effort cleanup of the temp file; the write error is the
		// failure being reported.
		_ = os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
