// Checkpoint support (DESIGN.md §11) for both baselines. As with the mmV2V
// engine, checkpoints land at drained window boundaries: durable state is
// whatever survives across RunFrame calls — ROP's discovered sets, sticky
// matches and idle counters; 802.11ad's PBSS memberships (sticky for
// ReassocEvery frames), heard beacons and round-robin rotations — plus any
// still-open UDT sessions. Map keys are encoded sorted so the bytes are
// canonical.
package baseline

import (
	"sort"

	"mmv2v/internal/des"
	"mmv2v/internal/persist"
	"mmv2v/internal/udt"
	"mmv2v/internal/units"
)

// discoveryWireBytes is the minimum encoded size of one discovery entry,
// used to clamp hostile entry counts.
const discoveryWireBytes = 8 + 8 + 8 + 8

// saveDiscoveryMap appends one vehicle's discovery map in ascending key
// order (shared by ROP's discovered sets and AD's heard-beacon sets).
func saveDiscoveryMap(e *persist.Encoder, m map[int]*discovery) {
	keys := make([]int, 0, len(m))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for j := range m {
		keys = append(keys, j)
	}
	sort.Ints(keys)
	e.U32(uint32(len(keys)))
	for _, j := range keys {
		info := m[j]
		e.Int(j)
		e.F64(info.snrDB.Decibels())
		e.Int(info.towardSector)
		e.Int(info.lastFrame)
	}
}

// loadDiscoveryMap restores one vehicle's discovery map. Peers must be
// valid vehicle indices other than the owner; sectors must index the
// codebook.
func loadDiscoveryMap(d *persist.Decoder, owner, n, sectors int) map[int]*discovery {
	cnt := d.Count(discoveryWireBytes)
	m := make(map[int]*discovery, cnt)
	for k := 0; k < cnt; k++ {
		j := d.Int()
		info := &discovery{
			snrDB:        units.DB(d.F64()),
			towardSector: d.Int(),
			lastFrame:    d.Int(),
		}
		if d.Err() != nil {
			return m
		}
		if j < 0 || j >= n || j == owner {
			d.Failf("vehicle %d discovered invalid peer %d (of %d vehicles)", owner, j, n)
			return m
		}
		if info.towardSector < 0 || info.towardSector >= sectors {
			d.Failf("vehicle %d sector %d toward peer %d outside [0, %d)", owner, info.towardSector, j, sectors)
			return m
		}
		m[j] = info
	}
	return m
}

// SaveState appends ROP's durable state (sim.Stateful).
func (r *ROP) SaveState(e *persist.Encoder) {
	e.Int(r.frame)
	e.I64(int64(r.frameEnd))
	for i := range r.discovered {
		saveDiscoveryMap(e, r.discovered[i])
	}
	for _, m := range r.matched {
		e.Int(m)
	}
	for _, b := range r.pairBits {
		e.F64(b)
	}
	for _, f := range r.idleFrames {
		e.Int(f)
	}
	e.Bool(r.session != nil)
	if r.session != nil {
		r.session.SaveState(e)
	}
}

// LoadState restores state checkpointed by SaveState (sim.Stateful).
func (r *ROP) LoadState(d *persist.Decoder) error {
	frame := d.Int()
	frameEnd := des.Time(d.I64())
	if err := d.Err(); err != nil {
		return err
	}
	n := r.env.N()
	discovered := make([]map[int]*discovery, n)
	for i := 0; i < n; i++ {
		discovered[i] = loadDiscoveryMap(d, i, n, r.cfg.Codebook.Sectors.Count)
		if d.Err() != nil {
			return d.Err()
		}
	}
	matched := make([]int, n)
	for i := range matched {
		m := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if m != -1 && (m < 0 || m >= n || m == i) {
			d.Failf("vehicle %d matched to invalid partner %d (of %d vehicles)", i, m, n)
			return d.Err()
		}
		matched[i] = m
	}
	pairBits := make([]float64, n)
	for i := range pairBits {
		pairBits[i] = d.F64()
	}
	idleFrames := make([]int, n)
	for i := range idleFrames {
		idleFrames[i] = d.Int()
	}
	if err := d.Err(); err != nil {
		return err
	}
	var session *udt.Session
	if d.Bool() {
		var err error
		if session, err = udt.Restore(r.env, d); err != nil {
			return err
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	r.frame = frame
	r.frameEnd = frameEnd
	r.discovered = discovered
	r.matched = matched
	r.pairBits = pairBits
	r.idleFrames = idleFrames
	r.session = session
	return nil
}

// SaveState appends the 802.11ad baseline's durable state (sim.Stateful).
func (a *AD) SaveState(e *persist.Encoder) {
	e.Int(a.frame)
	for _, p := range a.isPCP {
		e.Bool(p)
	}
	for i := range a.heardBeacons {
		saveDiscoveryMap(e, a.heardBeacons[i])
	}
	for _, j := range a.joined {
		e.Int(j)
	}
	e.Bool(a.members != nil)
	if a.members != nil {
		pcps := make([]int, 0, len(a.members))
		//mmv2v:sorted pure key collection; sorted below before encoding
		for p := range a.members {
			pcps = append(pcps, p)
		}
		sort.Ints(pcps)
		e.U32(uint32(len(pcps)))
		for _, p := range pcps {
			e.Int(p)
			ms := a.members[p]
			e.U32(uint32(len(ms)))
			for _, m := range ms {
				e.Int(m)
			}
		}
	}
	rotKeys := make([]int, 0, len(a.spRotation))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for p := range a.spRotation {
		rotKeys = append(rotKeys, p)
	}
	sort.Ints(rotKeys)
	e.U32(uint32(len(rotKeys)))
	for _, p := range rotKeys {
		e.Int(p)
		e.Int(a.spRotation[p])
	}
	e.U32(uint32(len(a.sessions)))
	for _, s := range a.sessions {
		s.SaveState(e)
	}
}

// LoadState restores state checkpointed by SaveState (sim.Stateful).
func (a *AD) LoadState(d *persist.Decoder) error {
	frame := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	n := a.env.N()
	isPCP := make([]bool, n)
	for i := range isPCP {
		isPCP[i] = d.Bool()
	}
	heard := make([]map[int]*discovery, n)
	for i := 0; i < n; i++ {
		heard[i] = loadDiscoveryMap(d, i, n, a.cfg.Codebook.Sectors.Count)
		if d.Err() != nil {
			return d.Err()
		}
	}
	joined := make([]int, n)
	for i := range joined {
		j := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if j != -1 && (j < 0 || j >= n) {
			d.Failf("vehicle %d joined invalid PBSS %d (of %d vehicles)", i, j, n)
			return d.Err()
		}
		joined[i] = j
	}
	var members map[int][]int
	if d.Bool() {
		np := d.Count(2 * 8)
		members = make(map[int][]int, np)
		for k := 0; k < np; k++ {
			p := d.Int()
			nm := d.Count(8)
			if d.Err() != nil {
				return d.Err()
			}
			if p < 0 || p >= n {
				d.Failf("PBSS keyed by invalid PCP %d (of %d vehicles)", p, n)
				return d.Err()
			}
			ms := make([]int, 0, nm)
			for x := 0; x < nm; x++ {
				m := d.Int()
				if d.Err() != nil {
					return d.Err()
				}
				if m < 0 || m >= n {
					d.Failf("PBSS %d has invalid member %d (of %d vehicles)", p, m, n)
					return d.Err()
				}
				ms = append(ms, m)
			}
			members[p] = ms
		}
	}
	nr := d.Count(2 * 8)
	rotation := make(map[int]int, nr)
	for k := 0; k < nr; k++ {
		p := d.Int()
		v := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		rotation[p] = v
	}
	ns := d.Count(2)
	sessions := make([]*udt.Session, 0, ns)
	for k := 0; k < ns; k++ {
		s, err := udt.Restore(a.env, d)
		if err != nil {
			return err
		}
		sessions = append(sessions, s)
	}
	if err := d.Err(); err != nil {
		return err
	}
	a.frame = frame
	a.isPCP = isPCP
	a.heardBeacons = heard
	a.joined = joined
	a.members = members
	a.spRotation = rotation
	a.sessions = sessions
	return nil
}
