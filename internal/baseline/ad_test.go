package baseline

import (
	"testing"

	"mmv2v/internal/trace"
)

func TestADMembershipStickyBetweenReassociations(t *testing.T) {
	env := buildEnv(t, 1e12, []int{0, 1, 2, 1, 0}, []float64{0, 15, 30, 45, 60})
	params := DefaultADParams()
	params.ReassocEvery = 5
	a := NewAD(env, params)
	runFrames(env, a, 3) // frames 0..2: one association round at frame 0
	joinedAt2 := append([]int(nil), a.joined...)
	runFrames2 := func(from, n int) {
		env.DriveFrames(a, from, n)
	}
	runFrames2(3, 1) // frame 3, still inside the same association period
	for i, j := range a.joined {
		if j != joinedAt2[i] {
			t.Errorf("vehicle %d membership changed mid-period: %d → %d", i, joinedAt2[i], j)
		}
	}
}

func TestADSPRotationCoversPairs(t *testing.T) {
	// With one PBSS of three members and several SPs per frame, the
	// round-robin must visit different pairs rather than repeating one.
	env := buildEnv(t, 1e15, []int{0, 1, 2}, []float64{0, 20, 40})
	ring := trace.NewRing(10000)
	env.Trace = trace.New(ring)
	a := NewAD(env, DefaultADParams())
	runFrames(env, a, 10)
	// Collect distinct streaming pairs from the trace.
	pairs := map[[2]int]bool{}
	for _, e := range ring.Events() {
		if e.Kind == trace.KindStreamStart {
			x, y := e.A, e.B
			if x > y {
				x, y = y, x
			}
			pairs[[2]int{x, y}] = true
		}
	}
	if len(pairs) < 2 {
		t.Errorf("SP rotation visited only %d distinct pairs", len(pairs))
	}
}

func TestADNoPCPsNoTraffic(t *testing.T) {
	// With PCP probability driven to (almost) zero via seed-independent
	// means we can't force "no PCP", but an isolated single vehicle can
	// never exchange regardless of election.
	env := buildEnv(t, 1e12, []int{1}, []float64{0})
	a := NewAD(env, DefaultADParams())
	runFrames(env, a, 5)
	if env.Ledger.TotalBits() != 0 {
		t.Error("single vehicle exchanged data")
	}
}

func TestADReassocValidate(t *testing.T) {
	p := DefaultADParams()
	p.ReassocEvery = 0
	if err := p.Validate(); err == nil {
		t.Error("zero reassociation period should fail")
	}
}
