// Package baseline implements the two comparison schemes of Sec. IV-A:
// the Random OHM Protocol (ROP) — random neighbor discovery and random
// mutual-choice matching — and an IEEE 802.11ad PBSS-based scheme with PCP
// election, sector-sweep beaconing, A-BFT association and DTI service
// periods. Both run over exactly the same medium, channel, timing and task
// bookkeeping as mmV2V.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/udt"
	"mmv2v/internal/units"
)

// discovery is what a vehicle learned about a peer from received sweeps.
type discovery struct {
	snrDB        units.DB
	towardSector int
	lastFrame    int
}

// ROPParams configures the Random OHM Protocol. The control budget
// (discovery slots, matching slots) defaults to exactly mmV2V's, so the
// comparison isolates coordination quality rather than airtime.
type ROPParams struct {
	// RoleP is the per-slot transmitter probability.
	RoleP float64
	// DiscoverySlots is the number of random sweep/sense slots per frame
	// (mmV2V uses K·2·S = 144).
	DiscoverySlots int
	// MatchRounds is the number of random matching rounds per frame. The
	// paper's rule — "a pair of vehicles are matched if they are both
	// unmatched before and choose each other" — is applied as an idealized
	// logical round (no message-level failures, favoring the baseline);
	// the default is a single round per frame.
	MatchRounds int
	// Codebook is the beam configuration (shared with mmV2V).
	Codebook phy.Codebook
	// StalenessFrames expires stale discoveries, as in mmV2V.
	StalenessFrames int
	// FreshFrames is how recent both endpoints' mutual discovery must be
	// for a matched pair to beam-align and transfer in a frame: unlike
	// mmV2V, ROP has no synchronized re-discovery, so a pair communicates
	// only in frames where random sweeps re-found the partner.
	FreshFrames int
	// BreakAfterIdle dissolves a match after this many consecutive frames
	// without progress (endpoints drifted or can't re-align).
	BreakAfterIdle int
	// MinLinkSNRdB is the discovery admission threshold, as in mmV2V.
	MinLinkSNRdB units.DB
}

// DefaultROPParams returns the budget-matched ROP configuration.
func DefaultROPParams() ROPParams {
	cb := phy.DefaultCodebook()
	return ROPParams{
		RoleP:          0.5,
		DiscoverySlots: 3 * 2 * cb.Sectors.Count,
		MatchRounds:    1,
		Codebook:       cb,
		// Random discovery is slow and interference-limited, so ROP keeps
		// identified neighbors for a full second (the paper's ROP carries
		// its discovered set across the window).
		StalenessFrames: 50,
		FreshFrames:     3,
		BreakAfterIdle:  3,
		MinLinkSNRdB:    16,
	}
}

// Validate reports configuration errors.
func (p ROPParams) Validate() error {
	switch {
	case p.RoleP <= 0 || p.RoleP >= 1:
		return fmt.Errorf("baseline: ROP role probability %v outside (0,1)", p.RoleP)
	case p.DiscoverySlots <= 0:
		return fmt.Errorf("baseline: non-positive discovery slots %d", p.DiscoverySlots)
	case p.MatchRounds <= 0:
		return fmt.Errorf("baseline: non-positive match rounds %d", p.MatchRounds)
	case p.StalenessFrames <= 0:
		return fmt.Errorf("baseline: non-positive staleness %d", p.StalenessFrames)
	case p.FreshFrames <= 0:
		return fmt.Errorf("baseline: non-positive freshness window %d", p.FreshFrames)
	case p.BreakAfterIdle <= 0:
		return fmt.Errorf("baseline: non-positive idle break %d", p.BreakAfterIdle)
	}
	return p.Codebook.Validate()
}

// ropSweep is the payload of a random discovery sweep.
type ropSweep struct {
	from   int
	sector int
}

// ROP is the Random OHM Protocol baseline (Sec. IV-A): in discovery, each
// vehicle randomly picks a role and a direction each slot; a neighbor is
// identified when beams happen to align. In matching, each vehicle picks a
// uniformly random discovered neighbor; a pair matches only when the choice
// is mutual (confirmed by decoding each other's requests).
type ROP struct {
	env *sim.Env  //mmv2v:derived construction parameter re-supplied by NewROP on restore
	cfg ROPParams //mmv2v:derived construction parameter; config is run identity, not state

	discovered []map[int]*discovery
	// pick[i] is i's matching choice this round (-1 idle).
	pick []int //mmv2v:derived scratch for the current matching round; recomputed every frame
	// matched[i] is i's agreed partner (-1 none). Matches persist across
	// frames — the paper matches vehicles that are "both unmatched before"
	// — until the pair completes its exchange or the link breaks.
	matched []int
	// pairBits tracks each vehicle's pair exchange at the last frame
	// boundary, and idleFrames counts consecutive frames without progress.
	pairBits   []float64
	idleFrames []int

	frame    int
	frameEnd des.Time
	session  *udt.Session

	// Statistics handles (nil-safe no-ops when Env.Obs is nil).
	obsSweepTx     *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewROP
	obsDiscoveries *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewROP
	obsMatches     *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewROP
}

// NewROP builds the ROP baseline.
func NewROP(env *sim.Env, cfg ROPParams) *ROP {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("baseline: invalid ROP params for scenario seed %#x (%d vehicles): %v",
			env.Seed, env.N(), err))
	}
	n := env.N()
	r := &ROP{
		env:        env,
		cfg:        cfg,
		discovered: make([]map[int]*discovery, n),
		pick:       make([]int, n),
		matched:    make([]int, n),
		pairBits:   make([]float64, n),
		idleFrames: make([]int, n),
	}
	for i := range r.matched {
		r.matched[i] = -1
	}
	for i := range r.discovered {
		r.discovered[i] = make(map[int]*discovery)
	}
	r.obsSweepTx = env.Obs.Counter("rop.sweep_tx")
	r.obsDiscoveries = env.Obs.Counter("rop.discoveries")
	r.obsMatches = env.Obs.Counter("rop.matches")
	env.OnRefresh(r.onRefresh)
	return r
}

// Name implements sim.Protocol.
func (r *ROP) Name() string { return "ROP" }

// ROPFactory returns a sim.Factory for this configuration.
func ROPFactory(cfg ROPParams) sim.Factory {
	return func(env *sim.Env) sim.Protocol { return NewROP(env, cfg) }
}

// RunFrame implements sim.Protocol.
func (r *ROP) RunFrame(frame int) {
	if r.session != nil {
		r.session.Stop()
		r.session = nil
	}
	r.frame = frame
	now := r.env.Sim.Now()
	r.frameEnd = now.Add(r.env.Timing.Frame)
	// Matches persist, but dissolve when the pair completed its demand or
	// made no progress for BreakAfterIdle frames (endpoints drifted apart
	// or keep failing to re-align).
	for i := range r.matched {
		r.pick[i] = -1
		j := r.matched[i]
		if j < 0 {
			continue
		}
		cur := r.env.Ledger.Exchanged(i, j)
		//mmv2v:exact intentional exact no-progress check: any accrual changes the ledger value bit-for-bit
		if cur == r.pairBits[i] {
			r.idleFrames[i]++
		} else {
			r.idleFrames[i] = 0
			r.pairBits[i] = cur
		}
		if r.env.PairDone(i, j) || r.idleFrames[i] >= r.cfg.BreakAfterIdle {
			r.matched[i] = -1
			if r.matched[j] == i {
				r.matched[j] = -1
			}
		}
	}
	slot := r.env.Timing.SectorSlot()
	for k := 0; k < r.cfg.DiscoverySlots; k++ {
		at := now.Add(time.Duration(k) * slot).Add(r.env.Timing.BeamSwitch)
		k := k
		r.env.Sim.ScheduleAt(at, "rop.discover", func() { r.discoverSlot(k) })
	}
	matchStart := now.Add(time.Duration(r.cfg.DiscoverySlots) * slot)
	slotDur := r.env.Timing.NegotiationSlot
	for m := 0; m < r.cfg.MatchRounds; m++ {
		slotStart := matchStart.Add(time.Duration(m) * slotDur)
		m := m
		r.env.Sim.ScheduleAt(slotStart, "rop.match", func() { r.matchRound(m) })
	}
	udtStart := matchStart.Add(time.Duration(r.cfg.MatchRounds) * slotDur)
	r.env.Sim.ScheduleAt(udtStart, "rop.udt", r.startUDT)
}

// discoverSlot: every vehicle flips a role coin and points at a uniformly
// random sector; transmitters sweep, receivers sense. Alignment is luck.
func (r *ROP) discoverSlot(k int) {
	n := r.env.N()
	cb := r.cfg.Codebook
	type txPlan struct {
		i      int
		sector int
	}
	var txs []txPlan
	for i := 0; i < n; i++ {
		rng := r.env.Rand.Child("rop.slot", uint64(i), uint64(r.frame), uint64(k))
		sector := rng.Intn(cb.Sectors.Count)
		if rng.Bool(r.cfg.RoleP) {
			txs = append(txs, txPlan{i: i, sector: sector})
			r.env.Medium.StopListen(i)
		} else {
			beam := phy.Beam{Bearing: cb.Sectors.Center(sector), Width: cb.RxWidth}
			i, sector := i, sector
			r.env.Medium.StartListen(i, beam, func(d medium.Delivery) { r.onSweep(i, sector, d) })
		}
	}
	for _, tx := range txs {
		beam := phy.Beam{Bearing: cb.Sectors.Center(tx.sector), Width: cb.TxWidth}
		r.env.Medium.Transmit(tx.i, beam, r.env.Timing.SSW, ropSweep{from: tx.i, sector: tx.sector})
		r.obsSweepTx.Inc()
	}
}

// onSweep records a decoded random sweep, keeping the strongest reception
// per frame like mmV2V's SND.
func (r *ROP) onSweep(me, senseSector int, d medium.Delivery) {
	msg, ok := d.Payload.(ropSweep)
	if !ok {
		return
	}
	if d.SINRdB < r.cfg.MinLinkSNRdB {
		return
	}
	info := r.discovered[me][msg.from]
	if info == nil {
		info = &discovery{}
		r.discovered[me][msg.from] = info
		r.obsDiscoveries.Inc()
	}
	if info.lastFrame == r.frame && info.snrDB >= d.SINRdB {
		return
	}
	info.snrDB = d.SINRdB
	info.towardSector = senseSector
	info.lastFrame = r.frame
}

// eligible returns i's fresh, incomplete discovered neighbors, sorted.
func (r *ROP) eligible(i int) []int {
	out := make([]int, 0, len(r.discovered[i]))
	//mmv2v:sorted pure key collection with order-free filter; sorted below before returning
	for j, info := range r.discovered[i] {
		if r.frame-info.lastFrame >= r.cfg.StalenessFrames {
			continue
		}
		if r.env.PairDone(i, j) {
			continue
		}
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// matchRound applies the paper's matching rule once: every still-unmatched
// vehicle picks a uniformly random eligible neighbor; a pair is matched iff
// both were unmatched before and chose each other. The rule is applied as a
// logical round (the paper specifies no request/response protocol for ROP).
func (r *ROP) matchRound(m int) {
	n := r.env.N()
	for i := 0; i < n; i++ {
		r.pick[i] = -1
		if r.matched[i] >= 0 {
			continue
		}
		elig := r.eligible(i)
		// Exclude already-matched peers: they won't reciprocate.
		filtered := elig[:0]
		for _, j := range elig {
			if r.matched[j] < 0 {
				filtered = append(filtered, j)
			}
		}
		if len(filtered) == 0 {
			continue
		}
		rng := r.env.Rand.Child("rop.pick", uint64(i), uint64(r.frame), uint64(m))
		r.pick[i] = filtered[rng.Intn(len(filtered))]
	}
	for i := 0; i < n; i++ {
		j := r.pick[i]
		if j < 0 || j < i {
			continue
		}
		if r.pick[j] == i {
			r.matched[i] = j
			r.matched[j] = i
			r.obsMatches.Inc()
			r.pairBits[i] = r.env.Ledger.Exchanged(i, j)
			r.pairBits[j] = r.pairBits[i]
			r.idleFrames[i] = 0
			r.idleFrames[j] = 0
		}
	}
}

// startUDT streams data between matched pairs for the rest of the frame,
// after the same beam-refinement cost mmV2V pays.
func (r *ROP) startUDT() {
	var pairs []udt.Pair
	n := r.env.N()
	for i := 0; i < n; i++ {
		j := r.matched[i]
		if j <= i {
			continue
		}
		if r.matched[j] != i || r.env.PairDone(i, j) {
			continue
		}
		// Without synchronized re-discovery, the pair can only align if
		// both sides re-found each other recently.
		infoI, infoJ := r.discovered[i][j], r.discovered[j][i]
		if infoI == nil || infoJ == nil ||
			r.frame-infoI.lastFrame >= r.cfg.FreshFrames ||
			r.frame-infoJ.lastFrame >= r.cfg.FreshFrames {
			continue
		}
		coarseI, coarseJ := infoI.towardSector, infoJ.towardSector
		beamI, beamJ := udt.RefineBeams(r.env, i, j, r.cfg.Codebook, coarseI, coarseJ)
		pairs = append(pairs, udt.Pair{A: i, B: j, BeamA: beamI, BeamB: beamJ})
	}
	if len(pairs) == 0 {
		return
	}
	s := time.Duration(r.cfg.Codebook.RefinementBeams())
	refine := 2*s*r.env.Timing.SectorSlot() + 2*r.env.Timing.SIFS
	streamStart := r.env.Sim.Now().Add(refine)
	if streamStart >= r.frameEnd {
		return
	}
	r.env.Sim.ScheduleAt(streamStart, "rop.udt.stream", func() {
		r.session = udt.Start(r.env, pairs, r.frame)
	})
}

func (r *ROP) onRefresh() {
	if r.session != nil {
		r.session.OnRefresh()
	}
}

// MatchedCount returns the number of matched vehicles this frame (tests).
func (r *ROP) MatchedCount() int {
	n := 0
	for _, m := range r.matched {
		if m >= 0 {
			n++
		}
	}
	return n
}
