package baseline

import (
	"fmt"
	"sort"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/trace"
	"mmv2v/internal/udt"
)

// ADParams configures the IEEE 802.11ad PBSS baseline of Sec. IV-A: beacon
// intervals of one frame, a 30 % PCP election probability, and random PBSS
// join among heard beacons.
type ADParams struct {
	// PCPProb is the per-frame probability a vehicle elects itself PCP
	// (paper: 30 %).
	PCPProb float64
	// ABFTSlots is the number of association beamforming-training slots
	// following the BTI (802.11ad default: 8).
	ABFTSlots int
	// SPDuration is the service-period length the PCP allocates inside the
	// DTI; pairs rotate round-robin across SPs and frames.
	SPDuration time.Duration
	// ReassocEvery is how many beacon intervals a PBSS membership persists
	// before PCPs are re-elected and vehicles re-join (802.11ad association
	// is sticky; re-forming every 20 ms frame would be unrealistically
	// favorable for the OHM task).
	ReassocEvery int
	// Codebook is the beam configuration (shared with the other schemes).
	Codebook phy.Codebook
}

// DefaultADParams returns the paper's 802.11ad configuration.
func DefaultADParams() ADParams {
	return ADParams{
		PCPProb:      0.3,
		ABFTSlots:    8,
		SPDuration:   4 * time.Millisecond,
		ReassocEvery: 10,
		Codebook:     phy.DefaultCodebook(),
	}
}

// Validate reports configuration errors.
func (p ADParams) Validate() error {
	switch {
	case p.PCPProb <= 0 || p.PCPProb >= 1:
		return fmt.Errorf("baseline: PCP probability %v outside (0,1)", p.PCPProb)
	case p.ABFTSlots <= 0:
		return fmt.Errorf("baseline: non-positive A-BFT slots %d", p.ABFTSlots)
	case p.SPDuration <= 0:
		return fmt.Errorf("baseline: non-positive SP duration %v", p.SPDuration)
	case p.ReassocEvery <= 0:
		return fmt.Errorf("baseline: non-positive reassociation period %d", p.ReassocEvery)
	}
	return p.Codebook.Validate()
}

// beacon is a DMG beacon swept by a PCP during the BTI.
type beacon struct {
	pcp    int
	sector int
}

// assocReq is an A-BFT association frame from a member toward its PCP.
type assocReq struct {
	from, pcp int
	// towardSector is the member's own sector index pointing at the PCP, so
	// the PCP can reply on the opposite sector.
	towardSector int
}

// AD is the IEEE 802.11ad PBSS baseline: per beacon interval (= one frame),
// vehicles elect PCPs, PCPs beacon via sector sweep, non-PCPs join a random
// heard PBSS via slotted A-BFT, and the PCP time-shares the DTI among member
// pairs as service periods. Multiple PBSSs share the channel co-channel,
// so inter-PBSS interference is real.
type AD struct {
	env *sim.Env //mmv2v:derived construction parameter re-supplied by NewAD on restore
	cfg ADParams //mmv2v:derived construction parameter; config is run identity, not state

	// isPCP[i] marks this frame's PCPs.
	isPCP []bool
	// heardBeacons[i] maps PCP → (best SNR, member's toward-sector).
	heardBeacons []map[int]*discovery
	// joined[i] is the PBSS (PCP id) vehicle i associated with (-1 none).
	joined []int
	// members[p] lists vehicles associated to PCP p this frame (incl. p).
	members map[int][]int
	// spRotation persists round-robin fairness across frames, per PCP.
	spRotation map[int]int

	frame    int
	sessions []*udt.Session

	// Statistics handles (nil-safe no-ops when Env.Obs is nil).
	obsBeaconTx     *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewAD
	obsAssocTx      *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewAD
	obsAssociations *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by NewAD
}

// NewAD builds the 802.11ad baseline.
func NewAD(env *sim.Env, cfg ADParams) *AD {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("baseline: invalid 802.11ad params for scenario seed %#x (%d vehicles): %v",
			env.Seed, env.N(), err))
	}
	n := env.N()
	a := &AD{
		env:          env,
		cfg:          cfg,
		isPCP:        make([]bool, n),
		heardBeacons: make([]map[int]*discovery, n),
		joined:       make([]int, n),
		spRotation:   make(map[int]int),
	}
	for i := range a.heardBeacons {
		a.heardBeacons[i] = make(map[int]*discovery)
	}
	a.obsBeaconTx = env.Obs.Counter("ad.beacon_tx")
	a.obsAssocTx = env.Obs.Counter("ad.assoc_tx")
	a.obsAssociations = env.Obs.Counter("ad.associations")
	env.OnRefresh(a.onRefresh)
	return a
}

// Name implements sim.Protocol.
func (a *AD) Name() string { return "802.11ad" }

// ADFactory returns a sim.Factory for this configuration.
func ADFactory(cfg ADParams) sim.Factory {
	return func(env *sim.Env) sim.Protocol { return NewAD(env, cfg) }
}

// RunFrame implements sim.Protocol: BTI (beacon sector sweep) → A-BFT
// (slotted association) → DTI (service periods).
func (a *AD) RunFrame(frame int) {
	for _, s := range a.sessions {
		s.Stop()
	}
	a.sessions = nil
	a.frame = frame
	now := a.env.Sim.Now()
	n := a.env.N()

	slot := a.env.Timing.SectorSlot()
	s := a.cfg.Codebook.Sectors.Count
	btiEnd := now.Add(time.Duration(s) * slot)
	abftSlot := a.env.Timing.SectorSlot() + a.env.Timing.SIFS
	abftEnd := btiEnd.Add(time.Duration(a.cfg.ABFTSlots) * abftSlot)
	frameEnd := now.Add(a.env.Timing.Frame)

	if frame%a.cfg.ReassocEvery == 0 {
		// Re-form PBSSs: elect PCPs, beacon, associate.
		a.members = make(map[int][]int)
		for i := 0; i < n; i++ {
			a.joined[i] = -1
			a.heardBeacons[i] = make(map[int]*discovery)
			a.isPCP[i] = a.env.Rand.Child("ad.pcp", uint64(i), uint64(frame)).Bool(a.cfg.PCPProb)
		}
		for sector := 0; sector < s; sector++ {
			at := now.Add(time.Duration(sector) * slot).Add(a.env.Timing.BeamSwitch)
			sector := sector
			a.env.Sim.ScheduleAt(at, "ad.bti", func() { a.btiSlot(sector) })
		}
		a.env.Sim.ScheduleAt(btiEnd, "ad.abft.plan", a.planABFT)
		for k := 0; k < a.cfg.ABFTSlots; k++ {
			at := btiEnd.Add(time.Duration(k) * abftSlot).Add(a.env.Timing.BeamSwitch)
			k := k
			a.env.Sim.ScheduleAt(at, "ad.abft", func() { a.abftSlot(k) })
		}
	}
	// Beacon intervals keep the same structure whether or not PBSSs were
	// re-formed (PCPs still beacon in reality); the DTI starts after the
	// BTI + A-BFT window.
	a.env.Sim.ScheduleAt(abftEnd, "ad.dti", func() { a.startDTI(abftEnd, frameEnd) })
}

// btiSlot transmits every PCP's beacon on the given sector while non-PCPs
// listen quasi-omni.
func (a *AD) btiSlot(sector int) {
	cb := a.cfg.Codebook
	n := a.env.N()
	for i := 0; i < n; i++ {
		if a.isPCP[i] {
			continue
		}
		i := i
		a.env.Medium.StartListen(i, phy.Omni, func(d medium.Delivery) { a.onBeacon(i, d) })
	}
	beam := phy.Beam{Bearing: cb.Sectors.Center(sector), Width: cb.TxWidth}
	for i := 0; i < n; i++ {
		if !a.isPCP[i] {
			continue
		}
		a.env.Medium.Transmit(i, beam, a.env.Timing.SSW, beacon{pcp: i, sector: sector})
		a.obsBeaconTx.Inc()
	}
}

// onBeacon records the strongest beacon reception per PCP; the sweep sector
// of the strongest beacon reveals the member's direction toward the PCP
// (sectors are indexed from absolute north for everyone, so the member's
// toward-sector is the opposite of the PCP's best sweep sector).
func (a *AD) onBeacon(me int, d medium.Delivery) {
	b, ok := d.Payload.(beacon)
	if !ok {
		return
	}
	info := a.heardBeacons[me][b.pcp]
	if info == nil {
		info = &discovery{snrDB: d.SNRdB, towardSector: a.cfg.Codebook.Sectors.Opposite(b.sector), lastFrame: a.frame}
		a.heardBeacons[me][b.pcp] = info
		return
	}
	if d.SNRdB > info.snrDB {
		info.snrDB = d.SNRdB
		info.towardSector = a.cfg.Codebook.Sectors.Opposite(b.sector)
	}
}

// planABFT: each non-PCP that heard beacons joins a uniformly random heard
// PBSS ("a vehicle will randomly choose a PBSS to join in") and picks a
// random A-BFT slot.
func (a *AD) planABFT() {
	n := a.env.N()
	for i := 0; i < n; i++ {
		if a.isPCP[i] || len(a.heardBeacons[i]) == 0 {
			continue
		}
		pcps := make([]int, 0, len(a.heardBeacons[i]))
		//mmv2v:sorted pure key collection; sorted below before the random draw
		for p := range a.heardBeacons[i] {
			pcps = append(pcps, p)
		}
		sort.Ints(pcps)
		rng := a.env.Rand.Child("ad.join", uint64(i), uint64(a.frame))
		a.joined[i] = pcps[rng.Intn(len(pcps))]
	}
}

// abftSlot: members whose random slot is k transmit their association frame
// toward their PBSS's PCP; PCPs listen quasi-omni. Two members of the same
// PBSS in the same slot collide at the PCP — the 802.11ad contention the
// paper's baseline inherits.
func (a *AD) abftSlot(k int) {
	cb := a.cfg.Codebook
	n := a.env.N()
	for i := 0; i < n; i++ {
		if !a.isPCP[i] {
			continue
		}
		i := i
		a.env.Medium.StartListen(i, phy.Omni, func(d medium.Delivery) { a.onAssoc(i, d) })
	}
	for i := 0; i < n; i++ {
		p := a.joined[i]
		if a.isPCP[i] || p < 0 {
			continue
		}
		rng := a.env.Rand.Child("ad.abftslot", uint64(i), uint64(a.frame))
		if rng.Intn(a.cfg.ABFTSlots) != k {
			continue
		}
		info := a.heardBeacons[i][p]
		beam := phy.Beam{Bearing: cb.Sectors.Center(info.towardSector), Width: cb.TxWidth}
		a.env.Medium.Transmit(i, beam, a.env.Timing.SSW,
			assocReq{from: i, pcp: p, towardSector: info.towardSector})
		a.obsAssocTx.Inc()
	}
}

// onAssoc registers a successfully decoded association at the PCP.
func (a *AD) onAssoc(pcp int, d medium.Delivery) {
	req, ok := d.Payload.(assocReq)
	if !ok || req.pcp != pcp {
		return
	}
	for _, m := range a.members[pcp] {
		if m == req.from {
			return
		}
	}
	a.members[pcp] = append(a.members[pcp], req.from)
	a.obsAssociations.Inc()
	a.env.Trace.Emit(trace.Event{
		At: d.At, Frame: a.frame, Kind: trace.KindAssociation, A: req.from, B: pcp,
	})
}

// startDTI carves the remaining beacon interval into service periods. At
// each SP boundary every PBSS picks its next member pair round-robin
// (rotation persists across frames for fairness); the pair runs an SLS
// refinement (time cost) and then streams until the SP ends. PBSSs operate
// co-channel, so their SPs interfere with each other.
func (a *AD) startDTI(dtiStart, frameEnd des.Time) {
	spDur := a.cfg.SPDuration
	for t := dtiStart; t.Add(spDur) <= frameEnd; t = t.Add(spDur) {
		t := t
		a.env.Sim.ScheduleAt(t, "ad.sp", func() { a.servicePeriod(t.Add(spDur)) })
	}
}

// pbssPairs lists the unordered communication pairs of a PBSS: the PCP and
// all its associated members.
func (a *AD) pbssPairs(pcp int) [][2]int {
	all := append([]int{pcp}, a.members[pcp]...)
	sort.Ints(all)
	var out [][2]int
	for x := 0; x < len(all); x++ {
		for y := x + 1; y < len(all); y++ {
			out = append(out, [2]int{all[x], all[y]})
		}
	}
	return out
}

// servicePeriod runs one SP: each PBSS schedules one pair.
func (a *AD) servicePeriod(spEnd des.Time) {
	for _, s := range a.sessions {
		s.Stop()
	}
	a.sessions = nil

	pcps := make([]int, 0, len(a.members))
	//mmv2v:sorted pure key collection; sorted below before pair scheduling
	for p := range a.members {
		pcps = append(pcps, p)
	}
	sort.Ints(pcps)
	var pairs []udt.Pair
	for _, p := range pcps {
		cand := a.pbssPairs(p)
		if len(cand) == 0 {
			continue
		}
		// Round-robin with completed pairs skipped.
		var chosen *[2]int
		for k := 0; k < len(cand); k++ {
			pr := cand[(a.spRotation[p]+k)%len(cand)]
			if !a.env.PairDone(pr[0], pr[1]) {
				chosen = &pr
				a.spRotation[p] += k + 1
				break
			}
		}
		if chosen == nil {
			continue
		}
		// The PCP coordinates an SLS between the pair at SP start (charged
		// below); the search lands on the true-bearing narrow beams.
		beamA, beamB := udt.RefineBeams(a.env, chosen[0], chosen[1], a.cfg.Codebook, -1, -1)
		pairs = append(pairs, udt.Pair{A: chosen[0], B: chosen[1], BeamA: beamA, BeamB: beamB})
	}
	if len(pairs) == 0 {
		return
	}
	refine := 2*time.Duration(a.cfg.Codebook.RefinementBeams())*a.env.Timing.SectorSlot() + 2*a.env.Timing.SIFS
	streamStart := a.env.Sim.Now().Add(refine)
	if streamStart >= spEnd {
		return
	}
	a.env.Sim.ScheduleAt(streamStart, "ad.sp.stream", func() {
		a.sessions = append(a.sessions, udt.Start(a.env, pairs, a.frame))
	})
}

func (a *AD) onRefresh() {
	for _, s := range a.sessions {
		s.OnRefresh()
	}
}

// PBSSCount returns the number of PBSSs with at least one member this frame
// (for tests).
func (a *AD) PBSSCount() int { return len(a.members) }

// MemberCount returns the total number of associated members (for tests).
func (a *AD) MemberCount() int {
	n := 0
	//mmv2v:sorted commutative integer count; order cannot affect the total
	for _, ms := range a.members {
		n += len(ms)
	}
	return n
}
