package baseline

import (
	"testing"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/metrics"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// buildEnv assembles an environment over hand-placed eastbound vehicles.
func buildEnv(t *testing.T, demandBits float64, lanes []int, positions []float64) *sim.Env {
	t.Helper()
	cfg := traffic.DefaultConfig(0)
	cfg.LaneChangeCheckEvery = 0
	road, err := traffic.New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := range positions {
		road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: lanes[k], S: positions[k], V: 14, DesiredV: 14, Quantile: 0.5})
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	s := des.New()
	return &sim.Env{
		Sim:        s,
		World:      w,
		Medium:     medium.New(s, w),
		Ledger:     metrics.NewLedger(w.NumVehicles()),
		Rand:       xrand.New(7),
		Timing:     phy.DefaultTiming(),
		DemandBits: demandBits,
	}
}

func runFrames(env *sim.Env, proto sim.Protocol, frames int) {
	ticksPerFrame := int(env.Timing.Frame / env.Timing.PositionUpdate)
	dt := env.Timing.PositionUpdate.Seconds()
	start := env.Sim.Now()
	end := start.Add(env.Timing.Frame * time.Duration(frames))
	env.Sim.Every(start, env.Timing.PositionUpdate, end, "test.tick", func(tick int) {
		if tick > 0 {
			env.World.Road().Step(dt)
			env.World.Refresh()
		}
		env.FireRefreshHooks()
		if tick%ticksPerFrame == 0 && tick/ticksPerFrame < frames {
			proto.RunFrame(tick / ticksPerFrame)
		}
	})
	env.Sim.Run(end)
}

func TestROPParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ROPParams)
	}{
		{"p zero", func(p *ROPParams) { p.RoleP = 0 }},
		{"zero discovery", func(p *ROPParams) { p.DiscoverySlots = 0 }},
		{"zero match", func(p *ROPParams) { p.MatchRounds = 0 }},
		{"zero staleness", func(p *ROPParams) { p.StalenessFrames = 0 }},
		{"bad codebook", func(p *ROPParams) { p.Codebook.TxWidth = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultROPParams()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	if err := DefaultROPParams().Validate(); err != nil {
		t.Errorf("default ROP params invalid: %v", err)
	}
}

func TestADParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ADParams)
	}{
		{"p zero", func(p *ADParams) { p.PCPProb = 0 }},
		{"p one", func(p *ADParams) { p.PCPProb = 1 }},
		{"zero abft", func(p *ADParams) { p.ABFTSlots = 0 }},
		{"zero sp", func(p *ADParams) { p.SPDuration = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultADParams()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	if err := DefaultADParams().Validate(); err != nil {
		t.Errorf("default AD params invalid: %v", err)
	}
}

func TestROPBudgetMatchesMmV2V(t *testing.T) {
	p := DefaultROPParams()
	if p.DiscoverySlots != 144 {
		t.Errorf("DiscoverySlots = %d, want K·2·S = 144", p.DiscoverySlots)
	}
	if p.MatchRounds != 1 {
		t.Errorf("MatchRounds = %d, want the paper's single-round matching", p.MatchRounds)
	}
}

func TestROPEventuallyDiscoversAndExchanges(t *testing.T) {
	// Random discovery is slow but over enough frames a close pair must
	// meet (mutual fresh discovery + mutual pick) and move data.
	env := buildEnv(t, 200e6, []int{1, 1}, []float64{0, 30})
	r := NewROP(env, DefaultROPParams())
	runFrames(env, r, 25)
	if got := env.Ledger.Exchanged(0, 1); got <= 0 {
		t.Errorf("ROP exchanged %v bits over 25 frames", got)
	}
}

func TestROPMutualChoiceOnly(t *testing.T) {
	// With exactly two vehicles, any match must be 0↔1 and data flows only
	// between them.
	env := buildEnv(t, 200e6, []int{1, 1}, []float64{0, 30})
	r := NewROP(env, DefaultROPParams())
	runFrames(env, r, 5)
	if r.MatchedCount()%2 != 0 {
		t.Errorf("odd matched count %d", r.MatchedCount())
	}
}

func TestROPDeterminism(t *testing.T) {
	run := func() float64 {
		env := buildEnv(t, 200e6, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		r := NewROP(env, DefaultROPParams())
		runFrames(env, r, 5)
		return env.Ledger.TotalBits()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic ROP: %v vs %v", a, b)
	}
}

func TestADFormsPBSSAndExchanges(t *testing.T) {
	// Several vehicles in range: over a handful of frames some PCP election
	// must succeed, members associate, and data flows.
	env := buildEnv(t, 200e6, []int{0, 1, 2, 1, 0}, []float64{0, 15, 30, 45, 60})
	a := NewAD(env, DefaultADParams())
	runFrames(env, a, 10)
	if env.Ledger.TotalBits() <= 0 {
		t.Error("802.11ad moved no data in 10 frames")
	}
}

func TestADMembersJoinOnlyHeardPCPs(t *testing.T) {
	env := buildEnv(t, 200e6, []int{0, 1, 2, 1}, []float64{0, 15, 30, 45})
	a := NewAD(env, DefaultADParams())
	runFrames(env, a, 3)
	// All recorded members must reference a PCP of the last frame.
	for p, ms := range a.members {
		if !a.isPCP[p] {
			t.Errorf("PBSS led by non-PCP %d", p)
		}
		for _, m := range ms {
			if a.isPCP[m] {
				t.Errorf("PCP %d associated as member of %d", m, p)
			}
			if a.joined[m] != p {
				t.Errorf("member %d recorded in PBSS %d but joined %d", m, p, a.joined[m])
			}
		}
	}
}

func TestADDeterminism(t *testing.T) {
	run := func() float64 {
		env := buildEnv(t, 200e6, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		a := NewAD(env, DefaultADParams())
		runFrames(env, a, 5)
		return env.Ledger.TotalBits()
	}
	if x, y := run(), run(); x != y {
		t.Errorf("non-deterministic AD: %v vs %v", x, y)
	}
}

func TestADIsolatedVehicleIdles(t *testing.T) {
	env := buildEnv(t, 200e6, []int{1, 1, 1}, []float64{0, 30, 500})
	a := NewAD(env, DefaultADParams())
	runFrames(env, a, 5)
	if got := env.Ledger.Exchanged(0, 2) + env.Ledger.Exchanged(1, 2); got != 0 {
		t.Errorf("isolated vehicle exchanged %v bits", got)
	}
}

func TestROPIsolatedVehicleIdles(t *testing.T) {
	env := buildEnv(t, 200e6, []int{1, 1, 1}, []float64{0, 30, 500})
	r := NewROP(env, DefaultROPParams())
	runFrames(env, r, 5)
	if got := env.Ledger.Exchanged(0, 2) + env.Ledger.Exchanged(1, 2); got != 0 {
		t.Errorf("isolated vehicle exchanged %v bits", got)
	}
}
