// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV): the parameter-configuration studies of Fig. 6
// (CNS constant C), Fig. 7 (discovery rounds K) and Fig. 8 (negotiation
// slots M), the protocol comparison of Fig. 9 (OCR/ATP/DTP vs traffic
// density for mmV2V, ROP and IEEE 802.11ad), the Theorem 2 discovery-ratio
// validation, and an ablation study (our addition) against the centralized
// greedy oracle and beam-width/role-probability variants.
//
// Every experiment takes an options struct with paper defaults, returns a
// typed result, and can print itself as an aligned text table whose
// rows/series mirror what the paper plots.
package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/sim"
	"mmv2v/internal/xrand"
)

// trialSeed derives the seed of one trial from the experiment seed.
func trialSeed(seed uint64, trial int) uint64 {
	return xrand.Mix(seed, 0xe9, uint64(trial))
}

// scenario builds the paper's standard scenario config at a density.
func scenario(density float64, seed uint64) sim.Config {
	return sim.DefaultConfig(density, seed)
}

// writeHeader prints an experiment banner.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}

// reportProgress invokes a per-cell progress callback, if set, with a
// formatted completed-cell label. Cells complete on concurrent Gather
// goroutines, so installed callbacks must be safe for concurrent use (the
// CLI wraps its printer in a mutex).
func reportProgress(fn func(string), format string, args ...any) {
	if fn != nil {
		fn(fmt.Sprintf(format, args...))
	}
}
