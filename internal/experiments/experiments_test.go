package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Small option sets keep the experiment tests fast while still exercising
// every code path; the full paper-scale runs live behind the CLI and the
// benchmarks.

func smallFig6() Fig6Options {
	return Fig6Options{
		Seed:      1,
		Trials:    1,
		Densities: []float64{12},
		CValues:   []int{1, 7},
		MaxSlots:  20,
		Frames:    1,
	}
}

func TestFig6SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := Fig6(smallFig6())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 || len(res.Scenarios[0].Series) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	sc := res.Scenarios[0]
	if sc.AvgNeighbors <= 0 {
		t.Errorf("avg neighbors = %v", sc.AvgNeighbors)
	}
	for _, s := range sc.Series {
		if len(s.CapacityBps) != 20 {
			t.Fatalf("series length %d", len(s.CapacityBps))
		}
		// Capacity is cumulative matching quality: the final slot should be
		// at least as good as the first.
		if s.CapacityBps[19] < s.CapacityBps[0] {
			t.Errorf("C=%d capacity decreased: first %v last %v", s.C, s.CapacityBps[0], s.CapacityBps[19])
		}
		if s.CapacityBps[19] <= 0 {
			t.Errorf("C=%d no capacity at all", s.C)
		}
	}
	// C=7 should reach at least the capacity of C=1 at the end (the paper's
	// point: tiny C wastes slots on collisions).
	c1 := sc.Series[0].CapacityBps[19]
	c7 := sc.Series[1].CapacityBps[19]
	if c7 < c1*0.8 {
		t.Errorf("C=7 capacity %v far below C=1 %v", c7, c1)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Error("table missing header")
	}
	if best := res.BestC(); best[12] <= 0 {
		t.Errorf("BestC = %v", best)
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := Fig7Options{Seed: 1, Trials: 1, DensityVPL: 12, KValues: []int{1, 3}, M: 40, CurvePoints: 5}
	res, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.MeanOCR < 0 || c.MeanOCR > 1 || c.MeanATP < 0 || c.MeanATP > 1 {
			t.Errorf("K=%d means out of range: %+v", c.K, c)
		}
		if c.OCRCDF.Len() == 0 {
			t.Errorf("K=%d empty CDF", c.K)
		}
		// CDF at 1.0 must be exactly 1 (all values ≤ 1).
		if got := c.OCRCDF.P(1.0); got != 1 {
			t.Errorf("K=%d OCR CDF(1) = %v", c.K, got)
		}
	}
	// More discovery rounds must not find fewer partners on average: K=3
	// should beat K=1 on ATP in a sparse, easy setting.
	if res.Curves[1].MeanATP < res.Curves[0].MeanATP*0.8 {
		t.Errorf("K=3 ATP %v far below K=1 %v", res.Curves[1].MeanATP, res.Curves[0].MeanATP)
	}
	if best := res.BestK(); best != 1 && best != 3 {
		t.Errorf("BestK = %d", best)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "K=3") {
		t.Error("table missing K=3 row")
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := Fig8Options{Seed: 1, Trials: 1, DensityVPL: 12, MValues: []int{20, 40}, K: 3, CurvePoints: 5}
	res, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	if best := res.BestM(); best != 20 && best != 40 {
		t.Errorf("BestM = %d", best)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "M=40") {
		t.Error("table missing M=40 row")
	}
}

func TestFig9SmokeAndOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := Fig9Options{Seed: 1, Trials: 1, Densities: []float64{15}}
	res, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Cells) != 3 {
		t.Fatalf("unexpected shape %+v", res)
	}
	mm, ok1 := res.Get(15, "mmV2V")
	rop, ok2 := res.Get(15, "ROP")
	ad, ok3 := res.Get(15, "802.11ad")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing protocol summaries")
	}
	// The paper's headline ordering at normal density: mmV2V > 802.11ad >
	// ROP on OCR.
	if !(mm.MeanOCR > ad.MeanOCR && ad.MeanOCR > rop.MeanOCR) {
		t.Errorf("ordering violated: mmV2V=%.3f ad=%.3f ROP=%.3f",
			mm.MeanOCR, ad.MeanOCR, rop.MeanOCR)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"(a) OCR", "(b) ATP", "(c) DTP", "mmV2V"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestTheorem2MatchesAnalytic(t *testing.T) {
	opts := Theorem2Options{
		Seed:         1,
		Pairs:        20000,
		KValues:      []int{1, 3},
		PValues:      []float64{0.3, 0.5},
		MeasureInSim: false,
	}
	res, err := Theorem2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if math.Abs(c.Empirical-c.Analytic) > 0.02 {
			t.Errorf("p=%v K=%d: empirical %v vs analytic %v", c.P, c.K, c.Empirical, c.Analytic)
		}
	}
	// p = 0.5 must dominate p = 0.3 at equal K.
	get := func(p float64, k int) float64 {
		for _, c := range res.Cells {
			if c.P == p && c.K == k {
				return c.Empirical
			}
		}
		t.Fatalf("missing cell %v %v", p, k)
		return 0
	}
	if get(0.5, 3) <= get(0.3, 3) {
		t.Error("p=0.5 not optimal")
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "Theorem 2") {
		t.Error("table missing header")
	}
}

func TestTheorem2InSimBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := Theorem2Options{
		Seed:         1,
		Pairs:        1000,
		KValues:      []int{3},
		PValues:      []float64{0.5},
		MeasureInSim: true,
		DensityVPL:   12,
	}
	res, err := Theorem2(opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.SimRatioPerK[3]
	bound := 1 - math.Pow(0.5, 3)
	if ratio <= 0 || ratio > bound+0.05 {
		t.Errorf("in-sim ratio %v outside (0, %v]", ratio, bound)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := AblationOptions{Seed: 1, Trials: 1, DensityVPL: 12}
	res, err := Ablation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	oracle, ok := res.Get("oracle (centralized greedy)")
	if !ok {
		t.Fatal("missing oracle row")
	}
	paper, ok := res.Get("mmV2V (paper config)")
	if !ok {
		t.Fatal("missing paper row")
	}
	// The zero-overhead centralized oracle bounds the distributed protocol.
	if paper.MeanOCR > oracle.MeanOCR+0.05 {
		t.Errorf("mmV2V OCR %v above oracle %v", paper.MeanOCR, oracle.MeanOCR)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("table missing header")
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := Fig6(Fig6Options{}); err == nil {
		t.Error("Fig6 zero options should fail")
	}
	if _, err := Fig7(Fig7Options{}); err == nil {
		t.Error("Fig7 zero options should fail")
	}
	if _, err := Fig8(Fig8Options{}); err == nil {
		t.Error("Fig8 zero options should fail")
	}
	if _, err := Fig9(Fig9Options{}); err == nil {
		t.Error("Fig9 zero options should fail")
	}
	if _, err := Theorem2(Theorem2Options{}); err == nil {
		t.Error("Theorem2 zero options should fail")
	}
	if _, err := Ablation(AblationOptions{}); err == nil {
		t.Error("Ablation zero options should fail")
	}
}

func TestTrucksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := TrucksOptions{Seed: 1, Trials: 1, DensityVPL: 15, Fractions: []float64{0, 0.3}}
	res, err := Trucks(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Structural checks only: the single-trial neighbor delta is noisy (the
	// blockage direction is pinned by TestTrucksIncreaseBlockage in the
	// world package and by the multi-trial CLI run).
	clean, ok1 := res.Get(0, "mmV2V")
	heavy, ok2 := res.Get(0.3, "mmV2V")
	if !ok1 || !ok2 {
		t.Fatal("missing mmV2V summaries")
	}
	for _, s := range []float64{clean.MeanOCR, heavy.MeanOCR} {
		if s < 0 || s > 1 {
			t.Errorf("OCR out of range: %v", s)
		}
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "truck") {
		t.Error("table missing header")
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryConvergenceMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := Theorem2Options{
		Seed:              1,
		Pairs:             100,
		KValues:           []int{3},
		PValues:           []float64{0.5},
		MeasureInSim:      false,
		ConvergenceFrames: 3,
		DensityVPL:        12,
	}
	res, err := Theorem2(opts)
	if err != nil {
		t.Fatal(err)
	}
	conv := res.ConvergencePerFrame
	if len(conv) != 3 {
		t.Fatalf("convergence series = %v", conv)
	}
	for f := 1; f < len(conv); f++ {
		if conv[f] < conv[f-1]-0.05 {
			t.Errorf("convergence regressed at frame %d: %v", f, conv)
		}
	}
	if conv[2] <= conv[0] {
		t.Errorf("no convergence growth: %v", conv)
	}
	if conv[2] > 1 {
		t.Errorf("ratio above 1: %v", conv)
	}
}

func TestWarmupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opts := WarmupOptions{Seed: 1, Trials: 1, DensityVPL: 12, Windows: 2}
	res, err := Warmup(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Summary.MeanOCR < 0 || row.Summary.MeanOCR > 1 {
			t.Errorf("window %d OCR = %v", row.Window, row.Summary.MeanOCR)
		}
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "cold start") {
		t.Error("table missing header")
	}
	if _, err := Warmup(WarmupOptions{}); err == nil {
		t.Error("zero options should fail")
	}
}
