package experiments

import (
	"fmt"
	"io"
	"math"

	"mmv2v/internal/baseline"
	"mmv2v/internal/core"
	"mmv2v/internal/faults"
	"mmv2v/internal/metrics"
	"mmv2v/internal/obs"
	"mmv2v/internal/sim"
)

// FaultsOptions parameterize the graceful-degradation study (our addition
// beyond the paper): mmV2V, ROP and IEEE 802.11ad under the deterministic
// fault-injection layer of internal/faults, swept over fault intensity.
type FaultsOptions struct {
	Seed   uint64
	Trials int
	// DensityVPL is the traffic density of every cell (one density: the
	// sweep axis is fault intensity, not load).
	DensityVPL float64
	// WindowSec overrides the measurement window length when positive
	// (0 = the paper's 1 s window); tests use short windows.
	WindowSec float64
	// Intensities are the fault levels: Profile.Scale(intensity) per cell.
	// 0 is the clean channel; 1 is the full profile.
	Intensities []float64
	// Profile is the intensity-1 fault mix.
	Profile faults.Config
	// Retry is the per-trial retry budget forwarded to sim.Config.
	Retry int
	// Workers bounds concurrent trial simulations across all cells
	// (0 = GOMAXPROCS). The tables are identical for any value.
	Workers int
	// Stats enables per-cell layer statistics (see Fig9Options.Stats).
	Stats bool
	// Series additionally samples each cell's registry at every window
	// boundary (see Fig9Options.Series).
	Series bool
	// Progress, when non-nil, is invoked once per completed (intensity,
	// protocol) cell with a short label. Cells complete on concurrent
	// goroutines, so the callback must be safe for concurrent use.
	Progress func(cell string)
}

// DefaultFaultsOptions returns the default sweep: the paper's 20 vpl
// scenario under the standard stress profile at 0/¼/½/1 intensity.
func DefaultFaultsOptions() FaultsOptions {
	return FaultsOptions{
		Seed:        1,
		Trials:      3,
		DensityVPL:  20,
		Intensities: []float64{0, 0.25, 0.5, 1},
		Profile:     faults.DefaultConfig(),
	}
}

// FaultsCell is one (intensity, protocol) measurement.
type FaultsCell struct {
	Protocol string
	Summary  metrics.Summary
	// MeanLatencySec is the mean time from window start to each neighbor
	// pair's first exchanged bit (NaN when nothing was exchanged).
	MeanLatencySec float64
	// Trials/Retried/Failures echo the crash-isolation summary of the
	// cell's pooled run.
	Trials   int
	Retried  int
	Failures int
	// Obs is the cell's pooled layer statistics (nil unless Options.Stats).
	Obs *obs.Registry
	// Series is the cell's pooled windowed samples (nil unless
	// Options.Series).
	Series *obs.Series
}

// FaultsRow is one intensity's measurements.
type FaultsRow struct {
	Intensity float64
	Cells     []FaultsCell
}

// FaultsResult is the full graceful-degradation table.
type FaultsResult struct {
	Opts      FaultsOptions
	Protocols []string
	Rows      []FaultsRow
}

// FaultSweep runs the study. Cells share one runner, and results assemble
// in option-list order, so output is byte-identical for any worker count.
func FaultSweep(opts FaultsOptions) (*FaultsResult, error) {
	if opts.Trials <= 0 || len(opts.Intensities) == 0 || opts.DensityVPL <= 0 {
		return nil, fmt.Errorf("experiments: invalid fault-sweep options %+v", opts)
	}
	factories := []sim.Factory{
		core.Factory(core.DefaultParams()),
		baseline.ROPFactory(baseline.DefaultROPParams()),
		baseline.ADFactory(baseline.DefaultADParams()),
	}
	runner := sim.NewRunner(opts.Workers)
	nf := len(factories)
	cells := make([]FaultsCell, len(opts.Intensities)*nf)
	err := sim.Gather(len(cells), func(k int) error {
		ii, fi := k/nf, k%nf
		cfg := scenario(opts.DensityVPL, opts.Seed)
		if opts.WindowSec > 0 {
			cfg.WindowSec = opts.WindowSec
		}
		cfg.Retry = opts.Retry
		cfg.Stats = opts.Stats
		cfg.Series = opts.Series
		profile := opts.Profile.Scale(opts.Intensities[ii])
		cfg.Faults = &profile
		pooled, err := runner.RunTrials(cfg, factories[fi], opts.Trials)
		if err != nil {
			return err
		}
		cells[k] = FaultsCell{
			Protocol:       pooled.Protocol,
			Summary:        pooled.Summary,
			MeanLatencySec: pooled.MeanLatencySec(),
			Trials:         pooled.Trials,
			Retried:        pooled.Retried,
			Failures:       len(pooled.Failures),
			Obs:            pooled.Obs,
			Series:         pooled.Series,
		}
		reportProgress(opts.Progress, "faults intensity=%g %s", opts.Intensities[ii], pooled.Protocol)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &FaultsResult{Opts: opts}
	for ii, intensity := range opts.Intensities {
		row := FaultsRow{Intensity: intensity}
		for fi := 0; fi < nf; fi++ {
			row.Cells = append(row.Cells, cells[ii*nf+fi])
			if ii == 0 {
				res.Protocols = append(res.Protocols, cells[fi].Protocol)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Get returns a protocol's cell at an intensity.
func (r *FaultsResult) Get(intensity float64, protocol string) (FaultsCell, bool) {
	for _, row := range r.Rows {
		//mmv2v:exact grid lookup: intensities are exact sweep literals carried through unmodified
		if row.Intensity != intensity {
			continue
		}
		for _, c := range row.Cells {
			if c.Protocol == protocol {
				return c, true
			}
		}
	}
	return FaultsCell{}, false
}

// StatsRows exports every cell's layer statistics (when the run had
// Options.Stats), each row scoped "faults/intensity=<i>/<protocol>", sorted
// by (scope, name, kind). Nil-Obs cells contribute nothing.
func (r *FaultsResult) StatsRows() []obs.Row {
	var rows []obs.Row
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			scope := fmt.Sprintf("faults/intensity=%g/%s", row.Intensity, c.Protocol)
			rows = append(rows, c.Obs.Rows(scope)...)
		}
	}
	obs.SortRows(rows)
	return rows
}

// SeriesRows exports every cell's windowed samples (when the run had
// Options.Series), each row scoped "faults/intensity=<i>/<protocol>",
// sorted by (scope, window, name, kind). Nil-Series cells contribute
// nothing.
func (r *FaultsResult) SeriesRows() []obs.SeriesRow {
	var rows []obs.SeriesRow
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			scope := fmt.Sprintf("faults/intensity=%g/%s", row.Intensity, c.Protocol)
			rows = append(rows, obs.SeriesRows(c.Series.Points(), scope)...)
		}
	}
	obs.SortSeriesRows(rows)
	return rows
}

// WriteTable prints the degradation table: (a) OCR, (b) time to first
// exchange, (c) ATP by intensity and protocol, plus a crash-isolation
// summary line when any trial was retried or lost.
func (r *FaultsResult) WriteTable(w io.Writer) {
	writeHeader(w, "Fault sweep — graceful degradation under channel/radio faults")
	fmt.Fprintf(w, "density %g vpl; profile at intensity 1: %+v\n", r.Opts.DensityVPL, r.Opts.Profile)
	metricsOf := []struct {
		name string
		get  func(FaultsCell) float64
	}{
		{"(a) OCR", func(c FaultsCell) float64 { return c.Summary.MeanOCR }},
		{"(b) first-exchange latency (ms)", func(c FaultsCell) float64 { return c.MeanLatencySec * 1e3 }},
		{"(c) ATP", func(c FaultsCell) float64 { return c.Summary.MeanATP }},
	}
	for _, m := range metricsOf {
		fmt.Fprintf(w, "%s:\n%-10s", m.name, "intensity")
		for _, p := range r.Protocols {
			fmt.Fprintf(w, "  %-10s", p)
		}
		fmt.Fprintln(w)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-10.2f", row.Intensity)
			for _, c := range row.Cells {
				if math.IsNaN(m.get(c)) {
					fmt.Fprintf(w, "  %-10s", "-")
				} else {
					fmt.Fprintf(w, "  %-10.3f", m.get(c))
				}
			}
			fmt.Fprintln(w)
		}
	}
	retried, failed := 0, 0
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			retried += c.Retried
			failed += c.Failures
		}
	}
	if retried > 0 || failed > 0 {
		fmt.Fprintf(w, "trial health: %d retried, %d failed after retries\n", retried, failed)
	}
}
