package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mmv2v/internal/baseline"
	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
)

// CityOptions parameterize the city-grid scenario (not in the paper): the
// OHM protocol comparison moved from the straight 1 km road onto a
// Manhattan road-graph network, where intersections, cross-street blockage
// and turning traffic stress discovery and matching differently than
// highway platooning does.
type CityOptions struct {
	Seed   uint64
	Trials int
	// Grid is the road-network scenario (intersection counts, block length,
	// vehicle count).
	Grid traffic.GridConfig
	// Workers bounds concurrent trial simulations (0 = GOMAXPROCS). Tables
	// are byte-identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed protocol cell;
	// must be safe for concurrent use.
	Progress func(cell string)
}

// DefaultCityOptions returns a 3×3-intersection downtown grid with 180
// vehicles — small enough for interactive runs, dense enough that every
// street segment carries traffic. (The 10k-vehicle scale run lives in the
// CLIs, where wall-clock may be measured.)
func DefaultCityOptions() CityOptions {
	g := traffic.DefaultGridConfig(180)
	g.Rows, g.Cols = 3, 3
	g.BlockM = 200
	return CityOptions{
		Seed:   1,
		Trials: 3,
		Grid:   g,
	}
}

// CityCell is one protocol's pooled measurement on the grid.
type CityCell struct {
	Protocol string
	Summary  metrics.Summary
	// OCRCI95 is the half-width of the 95 % CI over per-vehicle OCR.
	OCRCI95 float64
}

// CityResult is the full city-grid comparison.
type CityResult struct {
	Opts CityOptions
	// AvgNeighbors is the mean LOS neighbor count on the grid (mmV2V run).
	AvgNeighbors float64
	Cells        []CityCell
}

// City runs the OHM protocol comparison on the grid network.
func City(opts CityOptions) (*CityResult, error) {
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("experiments: invalid City options %+v", opts)
	}
	if err := opts.Grid.Validate(); err != nil {
		return nil, err
	}
	factories := []sim.Factory{
		core.Factory(core.DefaultParams()),
		baseline.ROPFactory(baseline.DefaultROPParams()),
		baseline.ADFactory(baseline.DefaultADParams()),
	}
	runner := sim.NewRunner(opts.Workers)
	cells := make([]CityCell, len(factories))
	avgN := make([]float64, len(factories))
	err := sim.Gather(len(factories), func(k int) error {
		grid := opts.Grid
		cfg := scenario(15, opts.Seed)
		cfg.Grid = &grid
		pooled, err := runner.RunTrials(cfg, factories[k], opts.Trials)
		if err != nil {
			return err
		}
		ocrs := make([]float64, 0, len(pooled.Stats))
		for _, st := range pooled.Stats {
			ocrs = append(ocrs, st.OCR)
		}
		_, ci := metrics.MeanCI95(ocrs)
		cells[k] = CityCell{Protocol: pooled.Protocol, Summary: pooled.Summary, OCRCI95: ci}
		avgN[k] = pooled.AvgNeighbors
		reportProgress(opts.Progress, "city %s", pooled.Protocol)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CityResult{Opts: opts, AvgNeighbors: avgN[0], Cells: cells}, nil
}

// WriteTable prints the protocol comparison on the grid.
func (r *CityResult) WriteTable(w io.Writer) {
	g := r.Opts.Grid
	writeHeader(w, "City grid — OHM protocols on a Manhattan road network")
	fmt.Fprintf(w, "grid: %dx%d intersections, %g m blocks, %d vehicles, avg |N| %.1f\n",
		g.Rows, g.Cols, g.BlockM, g.Vehicles, r.AvgNeighbors)
	fmt.Fprintf(w, "%-14s %-16s %-10s %-10s\n", "protocol", "OCR", "ATP", "DTP")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-14s %-6.3f ±%-7.3f %-10.3f %-10.3f\n",
			c.Protocol, c.Summary.MeanOCR, c.OCRCI95, c.Summary.MeanATP, c.Summary.MeanDTP)
	}
}

// WriteCSV emits protocol, ocr, ocr_ci95, atp, dtp rows.
func (r *CityResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"rows", "cols", "block_m", "vehicles", "avg_neighbors", "protocol", "ocr", "ocr_ci95", "atp", "dtp"}}
	g := r.Opts.Grid
	for _, c := range r.Cells {
		rows = append(rows, []string{
			strconv.Itoa(g.Rows), strconv.Itoa(g.Cols), f(g.BlockM), strconv.Itoa(g.Vehicles),
			f(r.AvgNeighbors), c.Protocol,
			f(c.Summary.MeanOCR), f(c.OCRCI95), f(c.Summary.MeanATP), f(c.Summary.MeanDTP),
		})
	}
	return writeAll(cw, rows)
}
