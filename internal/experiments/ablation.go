package experiments

import (
	"fmt"
	"io"
	"time"

	"mmv2v/internal/core"
	"mmv2v/internal/geom"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
	"mmv2v/internal/units"
)

// AblationOptions parameterize the ablation study (our addition, motivated
// by the paper's design discussion): mmV2V against the centralized greedy
// oracle and against variants that disable one design choice at a time —
// the heterogeneous Tx/Rx beam widths (Sec. III-B), the p = 0.5 role
// probability optimum (Theorem 2), and the K = 3 / M = 40 operating point.
type AblationOptions struct {
	Seed       uint64
	Trials     int
	DensityVPL float64
	// Workers bounds concurrent trial simulations across all variants
	// (0 = GOMAXPROCS). The table is identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed variant; must
	// be safe for concurrent use.
	Progress func(cell string)
}

// DefaultAblationOptions returns the standard setting.
func DefaultAblationOptions() AblationOptions {
	return AblationOptions{Seed: 1, Trials: 3, DensityVPL: 20}
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	Summary metrics.Summary
}

// AblationResult is the full study.
type AblationResult struct {
	Opts AblationOptions
	Rows []AblationRow
}

// Ablation runs the study.
func Ablation(opts AblationOptions) (*AblationResult, error) {
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("experiments: invalid ablation options %+v", opts)
	}
	variants := []struct {
		name    string
		factory sim.Factory
		mutate  func(*sim.Config)
	}{
		{"mmV2V (paper config)", core.Factory(core.DefaultParams()), nil},
		{"oracle (centralized greedy)", core.OracleFactory(core.DefaultParams()), nil},
		{"homogeneous wide beams (β=30°)", core.Factory(withCodebookRx(geom.Deg(30))), nil},
		{"homogeneous narrow beams (α=12°)", core.Factory(withCodebookTx(geom.Deg(12))), nil},
		{"role probability p=0.3", core.Factory(withP(0.3)), nil},
		{"role probability p=0.7", core.Factory(withP(0.7)), nil},
		{"single discovery round (K=1)", core.Factory(withK(1)), nil},
		{"sparse negotiation (M=10)", core.Factory(withM(10)), nil},
		{"fairness-biased matching (+10 dB)", core.Factory(withFairness(units.DB(10))), nil},
		{"beam tracking in UDT", core.Factory(withTracking()), nil},
		{"GPS sync error ±5 µs", core.Factory(withJitter(5 * time.Microsecond)), nil},
		{"explicit on-air refinement", core.Factory(withExplicitRefinement()), nil},
		{"log-normal shadowing σ=4 dB", core.Factory(core.DefaultParams()),
			func(c *sim.Config) { c.World.Channel.ShadowSigmaDB = 4 }},
	}
	// One cell per variant, all submitting trials to a shared runner; the
	// slot-per-variant buffer keeps the row order fixed by the variant list.
	runner := sim.NewRunner(opts.Workers)
	rows := make([]AblationRow, len(variants))
	err := sim.Gather(len(variants), func(vi int) error {
		v := variants[vi]
		cfg := scenario(opts.DensityVPL, opts.Seed)
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		pooled, err := runner.RunTrials(cfg, v.factory, opts.Trials)
		if err != nil {
			return err
		}
		rows[vi] = AblationRow{Variant: v.name, Summary: pooled.Summary}
		reportProgress(opts.Progress, "ablation %s", v.name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Opts: opts, Rows: rows}, nil
}

func withCodebookRx(rxWidth units.Radian) core.Params {
	p := core.DefaultParams()
	p.Codebook.RxWidth = rxWidth
	return p
}

func withCodebookTx(txWidth units.Radian) core.Params {
	p := core.DefaultParams()
	p.Codebook.TxWidth = txWidth
	return p
}

func withP(prob float64) core.Params {
	p := core.DefaultParams()
	p.P = prob
	return p
}

func withK(k int) core.Params {
	p := core.DefaultParams()
	p.K = k
	return p
}

func withM(m int) core.Params {
	p := core.DefaultParams()
	p.M = m
	return p
}

func withFairness(biasDB units.DB) core.Params {
	p := core.DefaultParams()
	p.FairnessBiasDB = biasDB
	return p
}

func withTracking() core.Params {
	p := core.DefaultParams()
	p.BeamTracking = true
	return p
}

func withJitter(j time.Duration) core.Params {
	p := core.DefaultParams()
	p.SyncJitter = j
	return p
}

func withExplicitRefinement() core.Params {
	p := core.DefaultParams()
	p.ExplicitRefinement = true
	return p
}

// Get returns the summary of a named variant.
func (r *AblationResult) Get(variant string) (metrics.Summary, bool) {
	for _, row := range r.Rows {
		if row.Variant == variant {
			return row.Summary, true
		}
	}
	return metrics.Summary{}, false
}

// WriteTable prints the study.
func (r *AblationResult) WriteTable(w io.Writer) {
	writeHeader(w, "Ablation — mmV2V design choices vs centralized oracle")
	fmt.Fprintf(w, "%-34s %-8s %-8s %-8s\n", "variant", "OCR", "ATP", "DTP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-34s %-8.3f %-8.3f %-8.3f\n",
			row.Variant, row.Summary.MeanOCR, row.Summary.MeanATP, row.Summary.MeanDTP)
	}
}
