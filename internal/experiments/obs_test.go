package experiments

import (
	"bytes"
	"sync"
	"testing"

	"mmv2v/internal/obs"
)

// TestFig9StatsByteIdenticalAcrossWorkers pins the observability merge
// invariant at the experiment level: with Stats on, both the stats JSONL
// export and the rendered summary table of the Fig. 9 scenario are
// byte-identical whether cells and trials run on one worker or eight —
// and so is the figure table itself.
func TestFig9StatsByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment determinism test")
	}
	render := func(workers int) (table, jsonl, summary []byte) {
		opts := Fig9Options{Seed: 1, Trials: 2, Densities: []float64{12}, Workers: workers, Stats: true}
		res, err := Fig9(opts)
		if err != nil {
			t.Fatal(err)
		}
		var tbl bytes.Buffer
		res.WriteTable(&tbl)
		rows := res.StatsRows()
		if len(rows) == 0 {
			t.Fatal("Stats run produced no stats rows")
		}
		var jl, sum bytes.Buffer
		if err := obs.WriteJSONL(&jl, rows); err != nil {
			t.Fatal(err)
		}
		obs.WriteSummary(&sum, rows)
		return tbl.Bytes(), jl.Bytes(), sum.Bytes()
	}
	t1, j1, s1 := render(1)
	t8, j8, s8 := render(8)
	if !bytes.Equal(j1, j8) {
		t.Errorf("stats JSONL differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", j1, j8)
	}
	if !bytes.Equal(s1, s8) {
		t.Error("stats summary table differs between Workers=1 and Workers=8")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("Fig. 9 table differs between Workers=1 and Workers=8 with Stats on")
	}
}

// TestFig9StatsOffLeavesTableUnchanged pins the zero-cost contract at the
// experiment level: enabling nothing (the default) must not change the
// rendered table relative to a run that never heard of statistics, and
// cells carry no registries.
func TestFig9StatsOffLeavesTableUnchanged(t *testing.T) {
	opts := Fig9Options{Seed: 7, Trials: 1, Densities: []float64{12}}
	res, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			if c.Obs != nil {
				t.Fatalf("cell %s carries a registry with Stats off", c.Protocol)
			}
		}
	}
	if rows := res.StatsRows(); rows != nil {
		t.Fatalf("StatsRows = %v with Stats off, want nil", rows)
	}
}

// TestFig9ProgressReportsEveryCell checks the per-cell progress callback
// fires exactly once per (density, protocol) cell.
func TestFig9ProgressReportsEveryCell(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	opts := Fig9Options{
		Seed: 1, Trials: 1, Densities: []float64{12},
		Progress: func(cell string) {
			mu.Lock()
			seen = append(seen, cell)
			mu.Unlock()
		},
	}
	if _, err := Fig9(opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("progress fired %d times (%v), want one per cell (3)", len(seen), seen)
	}
}
