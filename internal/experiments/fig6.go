package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/core"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
)

// Fig6Options parameterize the Fig. 6 study: "the capability of the
// constant C to separate neighbors in different negotiation slots" —
// average communication capacity per vehicle as a function of the number of
// negotiation slots, for C = 1..12, under four traffic scenarios whose
// average neighbor counts are ≈5, 6, 7 and 8.
type Fig6Options struct {
	Seed uint64
	// Trials per (scenario, C) cell.
	Trials int
	// Densities are calibrated so the average LOS neighbor count matches
	// the paper's 5, 6, 7, 8 labels (see the world-package calibration).
	Densities []float64
	// CValues is the sweep of the CNS constant (paper: 1..12 step 1).
	CValues []int
	// MaxSlots is how many negotiation slots to observe (paper plots up to
	// ≈80).
	MaxSlots int
	// Frames averaged per trial (matching evolves identically each frame in
	// a near-static topology, so a few suffice).
	Frames int
	// Workers bounds concurrent trial simulations across all
	// (scenario, C) cells (0 = GOMAXPROCS). The curves are identical for
	// any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed (density, C)
	// cell; must be safe for concurrent use.
	Progress func(cell string)
}

// DefaultFig6Options returns the paper's configuration.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{
		Seed:      1,
		Trials:    3,
		Densities: []float64{12, 15, 17, 19},
		CValues:   []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		MaxSlots:  80,
		Frames:    2,
	}
}

// Fig6Series is the capacity curve of one C value.
type Fig6Series struct {
	C int
	// CapacityBps[m] is the mean capacity per vehicle after negotiation
	// slot m (0-indexed).
	CapacityBps []float64
}

// Fig6Scenario holds one traffic setting's curves.
type Fig6Scenario struct {
	DensityVPL   float64
	AvgNeighbors float64
	Series       []Fig6Series
}

// Fig6Result is the full study.
type Fig6Result struct {
	Opts      Fig6Options
	Scenarios []Fig6Scenario
}

// Fig6 runs the study: the mmV2V protocol is instrumented with a slot
// observer; after every negotiation slot the network capacity is the sum
// over mutually agreed pairs of the interference-free MCS rate their
// refined beams would achieve, divided by the number of vehicles.
func Fig6(opts Fig6Options) (*Fig6Result, error) {
	if opts.Trials <= 0 || opts.MaxSlots <= 0 || opts.Frames <= 0 {
		return nil, fmt.Errorf("experiments: invalid Fig6 options %+v", opts)
	}
	// One cell per (scenario, C) pair; within a cell, each trial runs on the
	// shared pool with its own environment and per-slot sums, which merge in
	// trial order so the curves are identical for any worker count.
	runner := sim.NewRunner(opts.Workers)
	nc := len(opts.CValues)
	type fig6Cell struct {
		sums []float64
		avgN float64
	}
	cells := make([]fig6Cell, len(opts.Densities)*nc)
	err := sim.Gather(len(cells), func(k int) error {
		di, ci := k/nc, k%nc
		c := opts.CValues[ci]
		trialSums := make([][]float64, opts.Trials)
		trialAvgN := make([]float64, opts.Trials)
		if err := runner.Do(opts.Trials, func(trial int) error {
			cfg := scenario(opts.Densities[di], trialSeed(opts.Seed, trial))
			// A huge demand keeps every pair hungry: Fig. 6 measures
			// matching capacity, not task completion.
			cfg.DemandBits = 1e15
			env, err := sim.NewEnv(cfg)
			if err != nil {
				return err
			}
			params := core.DefaultParams()
			params.C = c
			params.M = opts.MaxSlots
			proto := core.New(env, params)
			sums := make([]float64, opts.MaxSlots)
			proto.SetSlotObserver(func(frame, slot int) {
				sums[slot] += capacityPerVehicle(env, proto, params.Codebook)
			})
			env.DriveFrames(proto, 0, opts.Frames)
			trialSums[trial] = sums
			trialAvgN[trial] = env.World.AvgNeighborCount()
			return nil
		}); err != nil {
			return err
		}
		cell := &cells[k]
		cell.sums = make([]float64, opts.MaxSlots)
		for trial := 0; trial < opts.Trials; trial++ {
			for m, v := range trialSums[trial] {
				cell.sums[m] += v
			}
			cell.avgN += trialAvgN[trial] / float64(opts.Trials)
		}
		reportProgress(opts.Progress, "fig6 density=%g C=%d", opts.Densities[di], c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Opts: opts}
	for di, density := range opts.Densities {
		sc := Fig6Scenario{DensityVPL: density, AvgNeighbors: cells[di*nc].avgN}
		for ci, c := range opts.CValues {
			cell := cells[di*nc+ci]
			samples := float64(opts.Trials * opts.Frames)
			series := Fig6Series{C: c, CapacityBps: make([]float64, opts.MaxSlots)}
			for m := range cell.sums {
				series.CapacityBps[m] = cell.sums[m] / samples
			}
			sc.Series = append(sc.Series, series)
		}
		res.Scenarios = append(res.Scenarios, sc)
	}
	return res, nil
}

// capacityPerVehicle sums the clean-channel MCS rate of every mutually
// agreed pair's refined beams and divides by the vehicle count.
func capacityPerVehicle(env *sim.Env, proto *core.Protocol, cb phy.Codebook) float64 {
	total := 0.0
	for _, pr := range proto.MutualPairs() {
		beamA, beamB := refineForCapacity(env, pr[0], pr[1], cb)
		snr := env.World.SNRdB(pr[0], pr[1], beamA, beamB)
		total += phy.DataRate(snr)
	}
	return total / float64(env.N())
}

// refineForCapacity models the refined narrow beams a matched pair would
// use (full-precision cross search around the true bearing).
func refineForCapacity(env *sim.Env, a, b int, cb phy.Codebook) (phy.Beam, phy.Beam) {
	la, okA := env.World.Link(a, b)
	lb, okB := env.World.Link(b, a)
	if !okA || !okB {
		return phy.Beam{Width: cb.NarrowWidth}, phy.Beam{Width: cb.NarrowWidth}
	}
	return phy.Beam{Bearing: la.Bearing, Width: cb.NarrowWidth},
		phy.Beam{Bearing: lb.Bearing, Width: cb.NarrowWidth}
}

// WriteTable prints, per scenario, capacity-per-vehicle rows for selected
// slot counts across all C values (the series the paper plots).
func (r *Fig6Result) WriteTable(w io.Writer) {
	writeHeader(w, "Fig. 6 — capacity per vehicle vs negotiation slots, per CNS constant C")
	checkpoints := []int{4, 9, 19, 39, 59, 79}
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "scenario: %.0f vpl (avg neighbors %.1f)\n", sc.DensityVPL, sc.AvgNeighbors)
		fmt.Fprintf(w, "%-6s", "C")
		for _, m := range checkpoints {
			if m < r.Opts.MaxSlots {
				fmt.Fprintf(w, "  slots=%-3d", m+1)
			}
		}
		fmt.Fprintln(w)
		for _, s := range sc.Series {
			fmt.Fprintf(w, "C=%-4d", s.C)
			for _, m := range checkpoints {
				if m < len(s.CapacityBps) {
					fmt.Fprintf(w, "  %7.0fM", s.CapacityBps[m]/1e6)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// BestC returns, per scenario, the C whose final-slot capacity is highest —
// the paper's conclusion is that C ≈ |N_i| is ideal and C = 7 is a good
// practice.
func (r *Fig6Result) BestC() map[float64]int {
	out := make(map[float64]int, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		best, bestCap := 0, -1.0
		for _, s := range sc.Series {
			if c := s.CapacityBps[len(s.CapacityBps)-1]; c > bestCap {
				bestCap = c
				best = s.C
			}
		}
		out[sc.DensityVPL] = best
	}
	return out
}
