package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
)

// Fig7Options parameterize the Fig. 7 study: CDFs of OCR and ATP for
// different numbers of neighbor discovery rounds K (paper: K = 1..4 at
// 20 vpl with M = 40, repeated trials, metrics at the end of each second).
type Fig7Options struct {
	Seed       uint64
	Trials     int
	DensityVPL float64
	KValues    []int
	M          int
	// CurvePoints samples each CDF for printing.
	CurvePoints int
	// Workers bounds concurrent trial simulations across all K cells
	// (0 = GOMAXPROCS). The curves are identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed K cell; must be
	// safe for concurrent use.
	Progress func(cell string)
}

// DefaultFig7Options returns the paper's configuration (with fewer trials
// than the paper's 100 by default; raise Trials to match).
func DefaultFig7Options() Fig7Options {
	return Fig7Options{
		Seed:        1,
		Trials:      5,
		DensityVPL:  20,
		KValues:     []int{1, 2, 3, 4},
		M:           40,
		CurvePoints: 11,
	}
}

// Fig7Curve holds one K value's pooled distribution.
type Fig7Curve struct {
	K       int
	MeanOCR float64
	MeanATP float64
	OCRCDF  metrics.CDF
	ATPCDF  metrics.CDF
}

// Fig7Result is the full study.
type Fig7Result struct {
	Opts   Fig7Options
	Curves []Fig7Curve
}

// Fig7 runs the study.
func Fig7(opts Fig7Options) (*Fig7Result, error) {
	if opts.Trials <= 0 || len(opts.KValues) == 0 {
		return nil, fmt.Errorf("experiments: invalid Fig7 options %+v", opts)
	}
	// One cell per K value, all submitting trials to a shared runner; the
	// slot-per-cell buffer keeps the curve order fixed by KValues.
	runner := sim.NewRunner(opts.Workers)
	curves := make([]Fig7Curve, len(opts.KValues))
	err := sim.Gather(len(curves), func(ki int) error {
		params := core.DefaultParams()
		params.K = opts.KValues[ki]
		params.M = opts.M
		cfg := scenario(opts.DensityVPL, opts.Seed)
		pooled, err := runner.RunTrials(cfg, core.Factory(params), opts.Trials)
		if err != nil {
			return err
		}
		var ocrs, atps []float64
		for _, s := range pooled.Stats {
			ocrs = append(ocrs, s.OCR)
			atps = append(atps, s.ATP)
		}
		curves[ki] = Fig7Curve{
			K:       opts.KValues[ki],
			MeanOCR: pooled.Summary.MeanOCR,
			MeanATP: pooled.Summary.MeanATP,
			OCRCDF:  metrics.NewCDF(ocrs),
			ATPCDF:  metrics.NewCDF(atps),
		}
		reportProgress(opts.Progress, "fig7 K=%d", opts.KValues[ki])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Opts: opts, Curves: curves}, nil
}

// BestK returns the K with the highest mean OCR (paper: K = 3).
func (r *Fig7Result) BestK() int {
	best, bestOCR := 0, -1.0
	for _, c := range r.Curves {
		if c.MeanOCR > bestOCR {
			bestOCR = c.MeanOCR
			best = c.K
		}
	}
	return best
}

// WriteTable prints the CDF curves (x, P(X≤x)) and the means.
func (r *Fig7Result) WriteTable(w io.Writer) {
	writeHeader(w, "Fig. 7 — effect of discovery rounds K (CDFs of OCR and ATP)")
	fmt.Fprintf(w, "%-4s  %-9s %-9s\n", "K", "mean OCR", "mean ATP")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "K=%-2d  %-9.3f %-9.3f\n", c.K, c.MeanOCR, c.MeanATP)
	}
	writeCDFs(w, "OCR CDF", r.Opts.CurvePoints, func(i int) (string, metrics.CDF) {
		return fmt.Sprintf("K=%d", r.Curves[i].K), r.Curves[i].OCRCDF
	}, len(r.Curves))
	writeCDFs(w, "ATP CDF", r.Opts.CurvePoints, func(i int) (string, metrics.CDF) {
		return fmt.Sprintf("K=%d", r.Curves[i].K), r.Curves[i].ATPCDF
	}, len(r.Curves))
}

// writeCDFs prints a family of CDFs sampled on a common [0, 1] grid.
func writeCDFs(w io.Writer, title string, points int, curve func(i int) (string, metrics.CDF), n int) {
	if points < 2 {
		points = 2
	}
	fmt.Fprintf(w, "%s:\n%-8s", title, "x")
	for i := 0; i < n; i++ {
		name, _ := curve(i)
		fmt.Fprintf(w, "  %-6s", name)
	}
	fmt.Fprintln(w)
	for p := 0; p < points; p++ {
		x := float64(p) / float64(points-1)
		fmt.Fprintf(w, "%-8.2f", x)
		for i := 0; i < n; i++ {
			_, cdf := curve(i)
			fmt.Fprintf(w, "  %-6.3f", cdf.P(x))
		}
		fmt.Fprintln(w)
	}
}
