package experiments

import (
	"fmt"
	"io"
	"math"

	"mmv2v/internal/core"
	"mmv2v/internal/sim"
	"mmv2v/internal/xrand"
)

// Theorem2Options parameterize the Theorem 2 validation: the expected ratio
// of neighbors identified after K discovery rounds is 1 − [p² + (1−p)²]^K,
// maximized at p = 0.5.
type Theorem2Options struct {
	Seed uint64
	// Pairs is the Monte Carlo sample size for the role-coin model.
	Pairs int
	// KValues is the sweep of discovery round counts.
	KValues []int
	// PValues is the sweep of role probabilities.
	PValues []float64
	// MeasureInSim additionally measures the end-to-end identified ratio
	// in a full simulation frame (includes channel/admission losses).
	MeasureInSim bool
	// ConvergenceFrames additionally measures the cumulative in-sim ratio
	// over this many consecutive frames at K=3 (the paper claims 99.8 %
	// of neighbors identified after 3 frames in the coin model). 0 skips.
	ConvergenceFrames int
	// DensityVPL for the in-sim measurement.
	DensityVPL float64
}

// DefaultTheorem2Options returns the standard validation setting.
func DefaultTheorem2Options() Theorem2Options {
	return Theorem2Options{
		Seed:              1,
		Pairs:             50000,
		KValues:           []int{1, 2, 3, 4, 5},
		PValues:           []float64{0.3, 0.4, 0.5, 0.6, 0.7},
		MeasureInSim:      true,
		ConvergenceFrames: 4,
		DensityVPL:        20,
	}
}

// Theorem2Cell is one (p, K) measurement.
type Theorem2Cell struct {
	P float64
	K int
	// Analytic is 1 − [p² + (1−p)²]^K.
	Analytic float64
	// Empirical is the Monte Carlo role-coin ratio.
	Empirical float64
}

// Theorem2Result is the full validation.
type Theorem2Result struct {
	Opts  Theorem2Options
	Cells []Theorem2Cell
	// SimRatioPerK is the end-to-end in-simulation identified ratio after
	// one frame for each K (p = 0.5), bounded above by the analytic value.
	SimRatioPerK map[int]float64
	// ConvergencePerFrame[f] is the cumulative in-sim identified ratio of
	// the frame-0 neighbor set after f+1 frames at K=3 — the in-sim
	// counterpart of the paper's "after 3 frames 99.8%" coin-model claim.
	ConvergencePerFrame []float64
}

// Theorem2 runs the validation.
func Theorem2(opts Theorem2Options) (*Theorem2Result, error) {
	if opts.Pairs <= 0 || len(opts.KValues) == 0 || len(opts.PValues) == 0 {
		return nil, fmt.Errorf("experiments: invalid Theorem2 options %+v", opts)
	}
	res := &Theorem2Result{Opts: opts, SimRatioPerK: make(map[int]float64)}
	rng := xrand.New(opts.Seed)
	for _, p := range opts.PValues {
		for _, k := range opts.KValues {
			missed := 0
			for pair := 0; pair < opts.Pairs; pair++ {
				same := true
				for round := 0; round < k; round++ {
					a := rng.Child("t2", uint64(pair), 0, uint64(round)).Bool(p)
					b := rng.Child("t2", uint64(pair), 1, uint64(round)).Bool(p)
					if a != b {
						same = false
						break
					}
				}
				if same {
					missed++
				}
			}
			res.Cells = append(res.Cells, Theorem2Cell{
				P:         p,
				K:         k,
				Analytic:  1 - math.Pow(p*p+(1-p)*(1-p), float64(k)),
				Empirical: 1 - float64(missed)/float64(opts.Pairs),
			})
		}
	}
	if opts.MeasureInSim {
		for _, k := range opts.KValues {
			ratio, err := simDiscoveryRatio(opts.DensityVPL, opts.Seed, k)
			if err != nil {
				return nil, err
			}
			res.SimRatioPerK[k] = ratio
		}
	}
	if opts.ConvergenceFrames > 0 {
		conv, err := simDiscoveryConvergence(opts.DensityVPL, opts.Seed, opts.ConvergenceFrames)
		if err != nil {
			return nil, err
		}
		res.ConvergencePerFrame = conv
	}
	return res, nil
}

// simDiscoveryConvergence runs K=3 SND for several frames and reports, per
// frame, the cumulative fraction of the frame-0 LOS neighbor set each
// vehicle has identified (the denominator is frozen at frame 0 so the
// series is monotone in expectation and comparable to the coin model's
// 1 − (0.5³)^f).
func simDiscoveryConvergence(density float64, seed uint64, frames int) ([]float64, error) {
	cfg := scenario(density, seed)
	env, err := sim.NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	proto := core.New(env, core.DefaultParams())
	targets := env.World.NeighborSnapshot()
	out := make([]float64, 0, frames)
	for f := 0; f < frames; f++ {
		env.DriveFrames(proto, f, 1)
		trueLinks, found := 0, 0
		for i := 0; i < env.N(); i++ {
			disc := make(map[int]bool)
			for _, j := range proto.Discovered(i) {
				disc[j] = true
			}
			for _, j := range targets[i] {
				trueLinks++
				if disc[j] {
					found++
				}
			}
		}
		if trueLinks == 0 {
			return nil, fmt.Errorf("experiments: no LOS links at density %v", density)
		}
		out = append(out, float64(found)/float64(trueLinks))
	}
	return out, nil
}

// simDiscoveryRatio measures the fraction of true LOS neighbors a vehicle
// identifies after one frame of SND with the given K.
func simDiscoveryRatio(density float64, seed uint64, k int) (float64, error) {
	cfg := scenario(density, seed)
	env, err := sim.NewEnv(cfg)
	if err != nil {
		return 0, err
	}
	params := core.DefaultParams()
	params.K = k
	proto := core.New(env, params)
	env.DriveFrames(proto, 0, 1)
	trueLinks, found := 0, 0
	for i := 0; i < env.N(); i++ {
		disc := make(map[int]bool)
		for _, j := range proto.Discovered(i) {
			disc[j] = true
		}
		for _, j := range env.World.Neighbors(i) {
			trueLinks++
			if disc[j] {
				found++
			}
		}
	}
	if trueLinks == 0 {
		return 0, fmt.Errorf("experiments: no LOS links at density %v", density)
	}
	return float64(found) / float64(trueLinks), nil
}

// WriteTable prints the validation.
func (r *Theorem2Result) WriteTable(w io.Writer) {
	writeHeader(w, "Theorem 2 — identified-neighbor ratio 1 − [p²+(1−p)²]^K")
	fmt.Fprintf(w, "%-6s %-4s %-10s %-10s\n", "p", "K", "analytic", "empirical")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-6.2f %-4d %-10.4f %-10.4f\n", c.P, c.K, c.Analytic, c.Empirical)
	}
	if len(r.SimRatioPerK) > 0 {
		fmt.Fprintln(w, "end-to-end in-sim ratio after one frame (p=0.5; includes channel losses):")
		for _, k := range r.Opts.KValues {
			if v, ok := r.SimRatioPerK[k]; ok {
				fmt.Fprintf(w, "K=%-3d %-10.4f (coin-model bound %.4f)\n",
					k, v, 1-math.Pow(0.5, float64(k)))
			}
		}
	}
	if len(r.ConvergencePerFrame) > 0 {
		fmt.Fprintln(w, "cumulative in-sim ratio of the frame-0 neighbor set, K=3 (paper's")
		fmt.Fprintln(w, "coin model: 99.8% after 3 frames):")
		for f, v := range r.ConvergencePerFrame {
			bound := 1 - math.Pow(0.125, float64(f+1))
			fmt.Fprintf(w, "after %d frame(s): %-8.4f (coin-model bound %.4f)\n", f+1, v, bound)
		}
	}
}
