package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
)

// WarmupOptions parameterize the cold-start study (beyond the paper): the
// paper measures OCR/ATP "at the end of every second"; the first window
// starts with empty discovery tables while later windows inherit the
// working neighbor set ∪_f N_i^f. This experiment quantifies the warm-start
// benefit across consecutive windows.
type WarmupOptions struct {
	Seed       uint64
	Trials     int
	DensityVPL float64
	Windows    int
	// Workers bounds concurrent trial simulations (0 = GOMAXPROCS). The
	// table is identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed trial; must be
	// safe for concurrent use.
	Progress func(cell string)
}

// DefaultWarmupOptions returns the standard setting.
func DefaultWarmupOptions() WarmupOptions {
	return WarmupOptions{Seed: 1, Trials: 3, DensityVPL: 20, Windows: 3}
}

// WarmupRow is one window's pooled metrics.
type WarmupRow struct {
	Window  int
	Summary metrics.Summary
}

// WarmupResult is the full study.
type WarmupResult struct {
	Opts WarmupOptions
	Rows []WarmupRow
}

// Warmup runs the study.
func Warmup(opts WarmupOptions) (*WarmupResult, error) {
	if opts.Trials <= 0 || opts.Windows <= 0 {
		return nil, fmt.Errorf("experiments: invalid warmup options %+v", opts)
	}
	// Trials run on the pool into a slot-per-trial buffer; the per-window
	// pools below merge in trial order, independent of completion order.
	runner := sim.NewRunner(opts.Workers)
	results := make([]*sim.Result, opts.Trials)
	err := runner.Do(opts.Trials, func(trial int) error {
		cfg := scenario(opts.DensityVPL, trialSeed(opts.Seed, trial))
		cfg.Windows = opts.Windows
		res, err := sim.Run(cfg, core.Factory(core.DefaultParams()))
		results[trial] = res
		if err == nil {
			reportProgress(opts.Progress, "warmup trial=%d", trial)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	perWindow := make([][]metrics.VehicleStats, opts.Windows)
	for _, res := range results {
		for w, win := range res.Windows {
			perWindow[w] = append(perWindow[w], win.Stats...)
		}
	}
	out := &WarmupResult{Opts: opts}
	for w, stats := range perWindow {
		out.Rows = append(out.Rows, WarmupRow{Window: w, Summary: metrics.Summarize(stats)})
	}
	return out, nil
}

// WriteTable prints the study.
func (r *WarmupResult) WriteTable(w io.Writer) {
	writeHeader(w, "Extension — cold start vs warm windows")
	fmt.Fprintf(w, "%-8s %-8s %-8s %-8s\n", "window", "OCR", "ATP", "DTP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-8.3f %-8.3f %-8.3f\n",
			row.Window+1, row.Summary.MeanOCR, row.Summary.MeanATP, row.Summary.MeanDTP)
	}
}
