package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
)

// Fig8Options parameterize the Fig. 8 study: CDFs of OCR and ATP for
// different numbers of negotiation slots M (paper: M = 20..80 step 20 at
// 20 vpl with K = 3).
type Fig8Options struct {
	Seed        uint64
	Trials      int
	DensityVPL  float64
	MValues     []int
	K           int
	CurvePoints int
	// Workers bounds concurrent trial simulations across all M cells
	// (0 = GOMAXPROCS). The curves are identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed M cell; must be
	// safe for concurrent use.
	Progress func(cell string)
}

// DefaultFig8Options returns the paper's configuration.
func DefaultFig8Options() Fig8Options {
	return Fig8Options{
		Seed:        1,
		Trials:      5,
		DensityVPL:  20,
		MValues:     []int{20, 40, 60, 80},
		K:           3,
		CurvePoints: 11,
	}
}

// Fig8Curve holds one M value's pooled distribution.
type Fig8Curve struct {
	M       int
	MeanOCR float64
	MeanATP float64
	OCRCDF  metrics.CDF
	ATPCDF  metrics.CDF
}

// Fig8Result is the full study.
type Fig8Result struct {
	Opts   Fig8Options
	Curves []Fig8Curve
}

// Fig8 runs the study.
func Fig8(opts Fig8Options) (*Fig8Result, error) {
	if opts.Trials <= 0 || len(opts.MValues) == 0 {
		return nil, fmt.Errorf("experiments: invalid Fig8 options %+v", opts)
	}
	// One cell per M value, all submitting trials to a shared runner; the
	// slot-per-cell buffer keeps the curve order fixed by MValues.
	runner := sim.NewRunner(opts.Workers)
	curves := make([]Fig8Curve, len(opts.MValues))
	err := sim.Gather(len(curves), func(mi int) error {
		params := core.DefaultParams()
		params.K = opts.K
		params.M = opts.MValues[mi]
		cfg := scenario(opts.DensityVPL, opts.Seed)
		pooled, err := runner.RunTrials(cfg, core.Factory(params), opts.Trials)
		if err != nil {
			return err
		}
		var ocrs, atps []float64
		for _, s := range pooled.Stats {
			ocrs = append(ocrs, s.OCR)
			atps = append(atps, s.ATP)
		}
		curves[mi] = Fig8Curve{
			M:       opts.MValues[mi],
			MeanOCR: pooled.Summary.MeanOCR,
			MeanATP: pooled.Summary.MeanATP,
			OCRCDF:  metrics.NewCDF(ocrs),
			ATPCDF:  metrics.NewCDF(atps),
		}
		reportProgress(opts.Progress, "fig8 M=%d", opts.MValues[mi])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Opts: opts, Curves: curves}, nil
}

// BestM returns the M with the highest mean OCR (paper: M = 40).
func (r *Fig8Result) BestM() int {
	best, bestOCR := 0, -1.0
	for _, c := range r.Curves {
		if c.MeanOCR > bestOCR {
			bestOCR = c.MeanOCR
			best = c.M
		}
	}
	return best
}

// WriteTable prints the CDF curves and means.
func (r *Fig8Result) WriteTable(w io.Writer) {
	writeHeader(w, "Fig. 8 — effect of negotiation slots M (CDFs of OCR and ATP)")
	fmt.Fprintf(w, "%-5s  %-9s %-9s\n", "M", "mean OCR", "mean ATP")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "M=%-3d  %-9.3f %-9.3f\n", c.M, c.MeanOCR, c.MeanATP)
	}
	writeCDFs(w, "OCR CDF", r.Opts.CurvePoints, func(i int) (string, metrics.CDF) {
		return fmt.Sprintf("M=%d", r.Curves[i].M), r.Curves[i].OCRCDF
	}, len(r.Curves))
	writeCDFs(w, "ATP CDF", r.Opts.CurvePoints, func(i int) (string, metrics.CDF) {
		return fmt.Sprintf("M=%d", r.Curves[i].M), r.Curves[i].ATPCDF
	}, len(r.Curves))
}
