package experiments

import (
	"bytes"
	"testing"

	"mmv2v/internal/faults"
)

// TestFig9TableByteIdenticalAcrossWorkers pins the parallel-merge invariant
// at the experiment level: the rendered Fig. 9 table must be byte-identical
// whether the cells and trials run on one worker or eight.
func TestFig9TableByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment determinism test")
	}
	render := func(workers int) []byte {
		opts := Fig9Options{Seed: 1, Trials: 2, Densities: []float64{12}, Workers: workers}
		res, err := Fig9(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.WriteTable(&buf)
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("Fig. 9 output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFaultSweepByteIdenticalAcrossWorkers extends the invariant to the
// fault-injection layer: every fault decision is a pure function of
// (seed, entity, time), so the rendered fault-sweep table and CSV must be
// byte-identical whether trials run on one worker or eight.
func TestFaultSweepByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment determinism test")
	}
	render := func(workers int) []byte {
		opts := FaultsOptions{
			Seed:        1,
			Trials:      2,
			DensityVPL:  12,
			WindowSec:   0.2,
			Intensities: []float64{0, 1},
			Profile:     faults.DefaultConfig(),
			Workers:     workers,
		}
		res, err := FaultSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.WriteTable(&buf)
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fault sweep output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestCityTableByteIdenticalAcrossWorkers extends the parallel-merge
// invariant to the city-grid scenario: road-graph routing, the spatial-hash
// link table and pooled trials must render byte-identically whether the
// protocol cells run on one worker or eight.
func TestCityTableByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment determinism test")
	}
	render := func(workers int) []byte {
		opts := DefaultCityOptions()
		opts.Trials = 2
		opts.Grid.Vehicles = 90
		opts.Workers = workers
		res, err := City(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.WriteTable(&buf)
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("city output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
