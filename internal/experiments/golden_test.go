package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mmv2v/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the legacy-tables golden file")

// renderLegacyTables renders a reduced-scale version of every legacy
// straight-road figure (the -fig all composition) into one byte stream:
// table plus CSV for each. The options are scaled down so the whole suite
// runs in test time, but every rendering code path of the full suite is
// exercised.
func renderLegacyTables(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer

	t2, err := Theorem2(Theorem2Options{
		Seed: 1, Pairs: 5000, KValues: []int{1, 3}, PValues: []float64{0.5},
		MeasureInSim: true, ConvergenceFrames: 2, DensityVPL: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t2.WriteTable(&buf)
	if err := t2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	f6, err := Fig6(Fig6Options{
		Seed: 1, Trials: 1, Densities: []float64{12},
		CValues: []int{1, 7}, MaxSlots: 40, Frames: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f6.WriteTable(&buf)
	if err := f6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	f7, err := Fig7(Fig7Options{
		Seed: 1, Trials: 1, DensityVPL: 12, KValues: []int{1, 3}, M: 40, CurvePoints: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	f7.WriteTable(&buf)
	if err := f7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	f8, err := Fig8(Fig8Options{
		Seed: 1, Trials: 1, DensityVPL: 12, MValues: []int{20, 40}, K: 3, CurvePoints: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	f8.WriteTable(&buf)
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	f9, err := Fig9(Fig9Options{Seed: 1, Trials: 1, Densities: []float64{12, 15}})
	if err != nil {
		t.Fatal(err)
	}
	f9.WriteTable(&buf)
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	abl, err := Ablation(AblationOptions{Seed: 1, Trials: 1, DensityVPL: 10})
	if err != nil {
		t.Fatal(err)
	}
	abl.WriteTable(&buf)
	if err := abl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	tr, err := Trucks(TrucksOptions{
		Seed: 1, Trials: 1, DensityVPL: 12, Fractions: []float64{0, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.WriteTable(&buf)
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	wu, err := Warmup(WarmupOptions{Seed: 1, Trials: 1, DensityVPL: 12, Windows: 2})
	if err != nil {
		t.Fatal(err)
	}
	wu.WriteTable(&buf)

	return buf.Bytes()
}

// TestLegacyTablesByteIdentical is the road-graph refactor's byte-compat
// guard: the straight-road world is now the trivial one-road special case of
// the network/spatial-hash stack, and every legacy table must stay
// byte-identical to the goldens captured before the refactor. Regenerate
// (only for an intentional, reviewed output change) with
//
//	go test ./internal/experiments -run TestLegacyTablesByteIdentical -update
func TestLegacyTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the reduced full-figure suite")
	}
	got := renderLegacyTables(t)
	path := filepath.Join("testdata", "legacy_tables.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update at a known-good commit): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("legacy tables diverged from pre-refactor goldens (%d vs %d bytes)\n--- got ---\n%s",
			len(got), len(want), got)
	}
}

// TestDefaultScenarioUnchanged pins the legacy scenario constructor: the
// straight-road config the golden tables are built from must keep producing
// the same road geometry (1 km, 3 lanes/dir) regardless of how the traffic
// substrate is reorganized.
func TestDefaultScenarioUnchanged(t *testing.T) {
	cfg := sim.DefaultConfig(15, 1)
	if cfg.Traffic.Length != 1000 || cfg.Traffic.LanesPerDir != 3 {
		t.Fatalf("legacy scenario geometry changed: %+v", cfg.Traffic)
	}
}
