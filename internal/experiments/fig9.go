package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/baseline"
	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/obs"
	"mmv2v/internal/sim"
)

// Fig9Options parameterize the headline comparison of Fig. 9: OCR, ATP and
// DTP as functions of traffic density for mmV2V, ROP and IEEE 802.11ad,
// each vehicle running a 200 Mb/s HRIE task with α=30°, β=12°, θ=15°,
// C=7, K=3, M=40.
type Fig9Options struct {
	Seed      uint64
	Trials    int
	Densities []float64
	// IncludeOracle adds the centralized greedy upper bound as a fourth
	// series (not in the paper; useful context).
	IncludeOracle bool
	// Workers bounds concurrent trial simulations across all cells
	// (0 = GOMAXPROCS). The tables are identical for any value.
	Workers int
	// Stats enables per-cell layer statistics: each cell's pooled
	// obs.Registry lands in its Fig9Cell and StatsRows exports the whole
	// grid. Off (the default), cells carry a nil registry at zero cost.
	Stats bool
	// Series additionally samples each cell's registry at every window
	// boundary (implies the registry): the pooled series lands in the cell
	// and SeriesRows exports the whole grid.
	Series bool
	// Progress, when non-nil, is invoked once per completed (density,
	// protocol) cell with a short label. Cells complete on concurrent
	// goroutines, so the callback must be safe for concurrent use.
	Progress func(cell string)
}

// DefaultFig9Options returns the paper's configuration (densities 15–30
// vpl; fewer trials than the paper's repetitions by default).
func DefaultFig9Options() Fig9Options {
	return Fig9Options{
		Seed:      1,
		Trials:    3,
		Densities: []float64{15, 20, 25, 30},
	}
}

// Fig9Cell is one (density, protocol) measurement.
type Fig9Cell struct {
	Protocol string
	Summary  metrics.Summary
	// OCRCI95 is the half-width of the 95 % CI over per-vehicle OCR.
	OCRCI95 float64
	// Obs is the cell's pooled layer statistics (nil unless Options.Stats).
	Obs *obs.Registry
	// Series is the cell's pooled windowed samples (nil unless
	// Options.Series).
	Series *obs.Series
}

// Fig9Row is one density's measurements.
type Fig9Row struct {
	DensityVPL   float64
	AvgNeighbors float64
	Cells        []Fig9Cell
}

// Fig9Result is the full comparison.
type Fig9Result struct {
	Opts      Fig9Options
	Protocols []string
	Rows      []Fig9Row
}

// Fig9 runs the comparison.
func Fig9(opts Fig9Options) (*Fig9Result, error) {
	if opts.Trials <= 0 || len(opts.Densities) == 0 {
		return nil, fmt.Errorf("experiments: invalid Fig9 options %+v", opts)
	}
	factories := []sim.Factory{
		core.Factory(core.DefaultParams()),
		baseline.ROPFactory(baseline.DefaultROPParams()),
		baseline.ADFactory(baseline.DefaultADParams()),
	}
	if opts.IncludeOracle {
		factories = append(factories, core.OracleFactory(core.DefaultParams()))
	}
	// Every (density, protocol) cell is independent: all cells submit their
	// trials to one shared runner and write into a slot-per-cell buffer, so
	// the table assembly order below is fixed by the option lists, never by
	// completion order.
	runner := sim.NewRunner(opts.Workers)
	nf := len(factories)
	cells := make([]Fig9Cell, len(opts.Densities)*nf)
	avgN := make([]float64, len(cells))
	err := sim.Gather(len(cells), func(k int) error {
		di, fi := k/nf, k%nf
		cfg := scenario(opts.Densities[di], opts.Seed)
		cfg.Stats = opts.Stats
		cfg.Series = opts.Series
		pooled, err := runner.RunTrials(cfg, factories[fi], opts.Trials)
		if err != nil {
			return err
		}
		ocrs := make([]float64, 0, len(pooled.Stats))
		for _, st := range pooled.Stats {
			ocrs = append(ocrs, st.OCR)
		}
		_, ci := metrics.MeanCI95(ocrs)
		cells[k] = Fig9Cell{Protocol: pooled.Protocol, Summary: pooled.Summary, OCRCI95: ci, Obs: pooled.Obs, Series: pooled.Series}
		avgN[k] = pooled.AvgNeighbors
		reportProgress(opts.Progress, "fig9 density=%g %s", opts.Densities[di], pooled.Protocol)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Opts: opts}
	for di, density := range opts.Densities {
		row := Fig9Row{DensityVPL: density}
		for fi := 0; fi < nf; fi++ {
			k := di*nf + fi
			row.AvgNeighbors = avgN[k]
			row.Cells = append(row.Cells, cells[k])
			if di == 0 {
				res.Protocols = append(res.Protocols, cells[k].Protocol)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Get returns the summary of a protocol at a density.
func (r *Fig9Result) Get(density float64, protocol string) (metrics.Summary, bool) {
	for _, row := range r.Rows {
		//mmv2v:exact grid lookup: densities are exact sweep literals carried through unmodified
		if row.DensityVPL != density {
			continue
		}
		for _, c := range row.Cells {
			if c.Protocol == protocol {
				return c.Summary, true
			}
		}
	}
	return metrics.Summary{}, false
}

// StatsRows exports every cell's layer statistics (when the run had
// Options.Stats), each row scoped "fig9/density=<d>/<protocol>", sorted by
// (scope, name, kind). Nil-Obs cells contribute nothing.
func (r *Fig9Result) StatsRows() []obs.Row {
	var rows []obs.Row
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			scope := fmt.Sprintf("fig9/density=%g/%s", row.DensityVPL, c.Protocol)
			rows = append(rows, c.Obs.Rows(scope)...)
		}
	}
	obs.SortRows(rows)
	return rows
}

// SeriesRows exports every cell's windowed samples (when the run had
// Options.Series), each row scoped "fig9/density=<d>/<protocol>", sorted by
// (scope, window, name, kind). Nil-Series cells contribute nothing.
func (r *Fig9Result) SeriesRows() []obs.SeriesRow {
	var rows []obs.SeriesRow
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			scope := fmt.Sprintf("fig9/density=%g/%s", row.DensityVPL, c.Protocol)
			rows = append(rows, obs.SeriesRows(c.Series.Points(), scope)...)
		}
	}
	obs.SortSeriesRows(rows)
	return rows
}

// WriteTable prints the three sub-figures (a) OCR, (b) ATP, (c) DTP as
// density-by-protocol tables.
func (r *Fig9Result) WriteTable(w io.Writer) {
	writeHeader(w, "Fig. 9 — comparison of OHM protocols vs traffic density")
	metricsOf := []struct {
		name string
		get  func(metrics.Summary) float64
	}{
		{"(a) OCR", func(s metrics.Summary) float64 { return s.MeanOCR }},
		{"(b) ATP", func(s metrics.Summary) float64 { return s.MeanATP }},
		{"(c) DTP", func(s metrics.Summary) float64 { return s.MeanDTP }},
	}
	for _, m := range metricsOf {
		fmt.Fprintf(w, "%s:\n%-14s %-8s", m.name, "density (vpl)", "avg |N|")
		for _, p := range r.Protocols {
			fmt.Fprintf(w, "  %-14s", p)
		}
		fmt.Fprintln(w)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-14.0f %-8.1f", row.DensityVPL, row.AvgNeighbors)
			for _, c := range row.Cells {
				if m.name == "(a) OCR" {
					fmt.Fprintf(w, "  %-6.3f ±%-5.3f", m.get(c.Summary), c.OCRCI95)
				} else {
					fmt.Fprintf(w, "  %-14.3f", m.get(c.Summary))
				}
			}
			fmt.Fprintln(w)
		}
	}
}
