package experiments

import (
	"fmt"
	"io"

	"mmv2v/internal/baseline"
	"mmv2v/internal/core"
	"mmv2v/internal/metrics"
	"mmv2v/internal/sim"
)

// TrucksOptions parameterize the heavy-vehicle extension study (beyond the
// paper): how does mmV2V's completion ratio degrade as a share of the
// vehicles become trucks — 16 m × 2.5 m bodies that block far more mmWave
// line-of-sight paths than cars?
type TrucksOptions struct {
	Seed       uint64
	Trials     int
	DensityVPL float64
	// Fractions is the sweep of truck shares.
	Fractions []float64
	// IncludeBaselines also measures ROP and 802.11ad under each mix.
	IncludeBaselines bool
	// Workers bounds concurrent trial simulations across all cells
	// (0 = GOMAXPROCS). The table is identical for any value.
	Workers int
	// Progress, when non-nil, is invoked once per completed (fraction,
	// protocol) cell; must be safe for concurrent use.
	Progress func(cell string)
}

// DefaultTrucksOptions returns the standard sweep.
func DefaultTrucksOptions() TrucksOptions {
	return TrucksOptions{
		Seed:       1,
		Trials:     3,
		DensityVPL: 20,
		Fractions:  []float64{0, 0.1, 0.2, 0.3},
	}
}

// TrucksRow is one truck-share measurement.
type TrucksRow struct {
	Fraction     float64
	AvgNeighbors float64
	Cells        []Fig9Cell
}

// TrucksResult is the full study.
type TrucksResult struct {
	Opts      TrucksOptions
	Protocols []string
	Rows      []TrucksRow
}

// Trucks runs the study.
func Trucks(opts TrucksOptions) (*TrucksResult, error) {
	if opts.Trials <= 0 || len(opts.Fractions) == 0 {
		return nil, fmt.Errorf("experiments: invalid trucks options %+v", opts)
	}
	factories := []sim.Factory{core.Factory(core.DefaultParams())}
	if opts.IncludeBaselines {
		factories = append(factories,
			baseline.ROPFactory(baseline.DefaultROPParams()),
			baseline.ADFactory(baseline.DefaultADParams()))
	}
	// Every (fraction, protocol) cell submits its trials to a shared runner
	// and writes into a slot-per-cell buffer; the table assembly order below
	// is fixed by the option lists, never by completion order.
	runner := sim.NewRunner(opts.Workers)
	nf := len(factories)
	cells := make([]Fig9Cell, len(opts.Fractions)*nf)
	avgN := make([]float64, len(cells))
	err := sim.Gather(len(cells), func(k int) error {
		fr, fi := k/nf, k%nf
		cfg := scenario(opts.DensityVPL, opts.Seed)
		cfg.Traffic.TruckFraction = opts.Fractions[fr]
		pooled, err := runner.RunTrials(cfg, factories[fi], opts.Trials)
		if err != nil {
			return err
		}
		cells[k] = Fig9Cell{Protocol: pooled.Protocol, Summary: pooled.Summary}
		avgN[k] = pooled.AvgNeighbors
		reportProgress(opts.Progress, "trucks fraction=%g %s", opts.Fractions[fr], pooled.Protocol)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &TrucksResult{Opts: opts}
	for fr, frac := range opts.Fractions {
		row := TrucksRow{Fraction: frac}
		for fi := 0; fi < nf; fi++ {
			k := fr*nf + fi
			row.AvgNeighbors = avgN[k]
			row.Cells = append(row.Cells, cells[k])
			if fr == 0 {
				res.Protocols = append(res.Protocols, cells[k].Protocol)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Get returns the summary of a protocol at a truck fraction.
func (r *TrucksResult) Get(fraction float64, protocol string) (metrics.Summary, bool) {
	for _, row := range r.Rows {
		//mmv2v:exact grid lookup: fractions are exact sweep literals carried through unmodified
		if row.Fraction != fraction {
			continue
		}
		for _, c := range row.Cells {
			if c.Protocol == protocol {
				return c.Summary, true
			}
		}
	}
	return metrics.Summary{}, false
}

// WriteTable prints the study.
func (r *TrucksResult) WriteTable(w io.Writer) {
	writeHeader(w, "Extension — OHM under heavy-vehicle (truck) blockage")
	fmt.Fprintf(w, "%-10s %-8s", "trucks", "avg |N|")
	for _, p := range r.Protocols {
		fmt.Fprintf(w, "  %-9s", p+" OCR")
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10.0f%% %-8.1f", row.Fraction*100, row.AvgNeighbors)
		for _, c := range row.Cells {
			fmt.Fprintf(w, "  %-9.3f", c.Summary.MeanOCR)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits fraction, avg_neighbors, protocol, ocr, atp, dtp rows.
func (r *TrucksResult) WriteCSV(w io.Writer) error {
	res := &Fig9Result{Protocols: r.Protocols}
	for _, row := range r.Rows {
		res.Rows = append(res.Rows, Fig9Row{
			DensityVPL:   row.Fraction, // fraction in the density column
			AvgNeighbors: row.AvgNeighbors,
			Cells:        row.Cells,
		})
	}
	return res.WriteCSV(w)
}
