package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"mmv2v/internal/metrics"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFig6CSV(t *testing.T) {
	r := &Fig6Result{
		Opts: Fig6Options{MaxSlots: 2},
		Scenarios: []Fig6Scenario{{
			DensityVPL:   12,
			AvgNeighbors: 5.2,
			Series:       []Fig6Series{{C: 7, CapacityBps: []float64{1e9, 2e9}}},
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "density_vpl" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[2][3] != "2" || rows[2][4] != "2e+09" {
		t.Errorf("last row = %v", rows[2])
	}
}

func TestFig7CSV(t *testing.T) {
	r := &Fig7Result{
		Opts: Fig7Options{CurvePoints: 3},
		Curves: []Fig7Curve{{
			K: 3, MeanOCR: 0.7, MeanATP: 0.8,
			OCRCDF: metrics.NewCDF([]float64{0.5, 1.0}),
			ATPCDF: metrics.NewCDF([]float64{0.6, 0.9}),
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// header + 2 means + 3 points × 2 metrics = 9
	if len(rows) != 9 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][1] != "mean_ocr" || rows[1][3] != "0.7" {
		t.Errorf("mean row = %v", rows[1])
	}
}

func TestFig8CSV(t *testing.T) {
	r := &Fig8Result{
		Opts: Fig8Options{CurvePoints: 2},
		Curves: []Fig8Curve{{
			M: 40, MeanOCR: 0.6, MeanATP: 0.7,
			OCRCDF: metrics.NewCDF([]float64{1}),
			ATPCDF: metrics.NewCDF([]float64{1}),
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig9CSV(t *testing.T) {
	r := &Fig9Result{
		Protocols: []string{"mmV2V"},
		Rows: []Fig9Row{{
			DensityVPL:   15,
			AvgNeighbors: 6.7,
			Cells: []Fig9Cell{{
				Protocol: "mmV2V",
				Summary:  metrics.Summary{MeanOCR: 0.72, MeanATP: 0.73, MeanDTP: 0.39},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][2] != "mmV2V" || rows[1][3] != "0.72" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestTheorem2CSV(t *testing.T) {
	r := &Theorem2Result{
		Cells: []Theorem2Cell{
			{P: 0.5, K: 3, Analytic: 0.875, Empirical: 0.874},
			{P: 0.3, K: 3, Analytic: 0.8, Empirical: 0.81},
		},
		SimRatioPerK: map[int]float64{3: 0.62},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][4] != "0.62" {
		t.Errorf("p=0.5 row missing in-sim value: %v", rows[1])
	}
	if rows[2][4] != "" {
		t.Errorf("p=0.3 row should have empty in-sim: %v", rows[2])
	}
}

func TestAblationCSV(t *testing.T) {
	r := &AblationResult{
		Rows: []AblationRow{{
			Variant: "mmV2V (paper config)",
			Summary: metrics.Summary{MeanOCR: 0.6, MeanATP: 0.65, MeanDTP: 0.4},
		}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][0] != "mmV2V (paper config)" {
		t.Errorf("rows = %v", rows)
	}
}
