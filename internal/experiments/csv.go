package experiments

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
)

// The WriteCSV methods emit each experiment in long format (one observation
// per row), the layout plotting tools consume directly.

func writeAll(cw *csv.Writer, rows [][]string) error {
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits density, avg_neighbors, c, slot, capacity_bps rows.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"density_vpl", "avg_neighbors", "c", "slot", "capacity_bps"}}
	for _, sc := range r.Scenarios {
		for _, s := range sc.Series {
			for m, cap := range s.CapacityBps {
				rows = append(rows, []string{
					f(sc.DensityVPL), f(sc.AvgNeighbors),
					strconv.Itoa(s.C), strconv.Itoa(m + 1), f(cap),
				})
			}
		}
	}
	return writeAll(cw, rows)
}

// WriteCSV emits k, metric, x, cdf rows plus mean rows (x empty).
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"k", "metric", "x", "value"}}
	pts := r.Opts.CurvePoints
	if pts < 2 {
		pts = 11
	}
	for _, c := range r.Curves {
		rows = append(rows,
			[]string{strconv.Itoa(c.K), "mean_ocr", "", f(c.MeanOCR)},
			[]string{strconv.Itoa(c.K), "mean_atp", "", f(c.MeanATP)})
		for p := 0; p < pts; p++ {
			x := float64(p) / float64(pts-1)
			rows = append(rows,
				[]string{strconv.Itoa(c.K), "ocr_cdf", f(x), f(c.OCRCDF.P(x))},
				[]string{strconv.Itoa(c.K), "atp_cdf", f(x), f(c.ATPCDF.P(x))})
		}
	}
	return writeAll(cw, rows)
}

// WriteCSV emits m, metric, x, cdf rows plus mean rows (x empty).
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"m", "metric", "x", "value"}}
	pts := r.Opts.CurvePoints
	if pts < 2 {
		pts = 11
	}
	for _, c := range r.Curves {
		rows = append(rows,
			[]string{strconv.Itoa(c.M), "mean_ocr", "", f(c.MeanOCR)},
			[]string{strconv.Itoa(c.M), "mean_atp", "", f(c.MeanATP)})
		for p := 0; p < pts; p++ {
			x := float64(p) / float64(pts-1)
			rows = append(rows,
				[]string{strconv.Itoa(c.M), "ocr_cdf", f(x), f(c.OCRCDF.P(x))},
				[]string{strconv.Itoa(c.M), "atp_cdf", f(x), f(c.ATPCDF.P(x))})
		}
	}
	return writeAll(cw, rows)
}

// WriteCSV emits density, avg_neighbors, protocol, ocr, atp, dtp rows.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"density_vpl", "avg_neighbors", "protocol", "ocr", "atp", "dtp"}}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			rows = append(rows, []string{
				f(row.DensityVPL), f(row.AvgNeighbors), c.Protocol,
				f(c.Summary.MeanOCR), f(c.Summary.MeanATP), f(c.Summary.MeanDTP),
			})
		}
	}
	return writeAll(cw, rows)
}

// WriteCSV emits p, k, analytic, empirical, sim rows (sim only for p=0.5).
func (r *Theorem2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"p", "k", "analytic", "empirical", "in_sim"}}
	for _, c := range r.Cells {
		inSim := ""
		//mmv2v:exact grid lookup: cell P values are exact literals from the sweep definition, never computed
		if c.P == 0.5 {
			if v, ok := r.SimRatioPerK[c.K]; ok {
				inSim = f(v)
			}
		}
		rows = append(rows, []string{f(c.P), strconv.Itoa(c.K), f(c.Analytic), f(c.Empirical), inSim})
	}
	return writeAll(cw, rows)
}

// WriteCSV emits intensity, protocol, ocr, atp, dtp, latency_sec, trials,
// retried, failures rows.
func (r *FaultsResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"intensity", "protocol", "ocr", "atp", "dtp",
		"first_exchange_sec", "trials", "retried", "failures"}}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			lat := ""
			if !math.IsNaN(c.MeanLatencySec) {
				lat = f(c.MeanLatencySec)
			}
			rows = append(rows, []string{
				f(row.Intensity), c.Protocol,
				f(c.Summary.MeanOCR), f(c.Summary.MeanATP), f(c.Summary.MeanDTP),
				lat, strconv.Itoa(c.Trials), strconv.Itoa(c.Retried), strconv.Itoa(c.Failures),
			})
		}
	}
	return writeAll(cw, rows)
}

// WriteCSV emits variant, ocr, atp, dtp rows.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"variant", "ocr", "atp", "dtp"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant, f(row.Summary.MeanOCR), f(row.Summary.MeanATP), f(row.Summary.MeanDTP),
		})
	}
	return writeAll(cw, rows)
}
