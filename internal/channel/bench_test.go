package channel

import (
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/units"
)

func BenchmarkPatternGain(b *testing.B) {
	p := NewPattern(geom.Deg(12), 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Gain(units.Radian(float64(i%628) / 100))
	}
}

func BenchmarkPathLoss(b *testing.B) {
	m, err := NewModel(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.PathLossDB(units.Meter(float64(i%200)+1), i%3)
	}
}

func BenchmarkNewPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewPattern(geom.Deg(float64(i%30)+1), 20)
	}
}
