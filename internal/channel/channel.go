// Package channel implements the 60 GHz mmWave channel model the paper
// evaluates with: the Yamamoto long-distance path-loss model (Eq. 1), the
// 3GPP Gaussian main-lobe beam pattern (Eq. 2), and the directional SINR
// formulation (Eq. 3), plus vehicle-body blockage accounting.
//
// All gains are carried in linear scale internally; the internal/units
// conversion vocabulary (units.DB, units.DBm, units.MilliWatt, ...) types
// every log/linear boundary, so mixing a dB figure into a milliwatt sum is
// a compile error and the residual escape hatches are closed by the
// `unitcheck` lint pass.
package channel

import (
	"fmt"
	"math"

	"mmv2v/internal/units"
)

// Params configures the channel model. Defaults mirror Sec. IV-A of the
// paper; values the paper leaves unspecified are documented in DESIGN.md.
type Params struct {
	// PathLossExp is the exponent a in Eq. 1 (dimensionless). The Yamamoto
	// model the paper cites reports ≈2.66 for 60 GHz inter-vehicle LOS links.
	PathLossExp float64
	// LOSOffsetDB is the distance-independent part of O in Eq. 1 for an
	// unobstructed link (includes the first-meter free-space loss).
	LOSOffsetDB units.DB
	// BlockerLossDB is the additional attenuation per blocking vehicle body.
	BlockerLossDB units.DB
	// MaxBlockersCounted caps the per-blocker attenuation (deep blockage
	// saturates).
	MaxBlockersCounted int
	// AtmosphericDBPerKm is the 60 GHz oxygen-absorption term (Eq. 1 uses
	// 15 dB/km).
	AtmosphericDBPerKm units.DB
	// TxPowerDBm is each vehicle's transmission power (paper: 28 dBm).
	TxPowerDBm units.DBm
	// NoiseDensityDBmHz is N0 (paper: −174 dBm/Hz).
	NoiseDensityDBmHz units.DBm
	// BandwidthHz is the channel bandwidth B (paper: 2.16 GHz).
	BandwidthHz units.Hertz
	// SideLobeDB is how far the side-lobe gain g² sits below the main-lobe
	// peak g¹ (not given in the paper; 20 dB is typical for the 3GPP
	// pattern).
	SideLobeDB units.DB
	// ShadowSigmaDB is the standard deviation of an optional per-link
	// log-normal shadowing term added to Eq. 1 (the Yamamoto measurements
	// report several dB of spread; the paper uses the mean model, so the
	// default is 0). Shadowing is drawn per vehicle pair, static per run.
	ShadowSigmaDB units.DB
}

// DefaultParams returns the paper's channel configuration.
func DefaultParams() Params {
	return Params{
		PathLossExp:        2.66,
		LOSOffsetDB:        70,
		BlockerLossDB:      15,
		MaxBlockersCounted: 3,
		AtmosphericDBPerKm: 15,
		TxPowerDBm:         28,
		NoiseDensityDBmHz:  -174,
		BandwidthHz:        2.16e9,
		SideLobeDB:         20,
		ShadowSigmaDB:      0,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.PathLossExp <= 0:
		return fmt.Errorf("channel: non-positive path loss exponent %v", p.PathLossExp)
	case p.BandwidthHz <= 0:
		return fmt.Errorf("channel: non-positive bandwidth %v", p.BandwidthHz)
	case p.SideLobeDB <= 0:
		return fmt.Errorf("channel: side lobe must sit below main lobe (SideLobeDB=%v)", p.SideLobeDB)
	case p.BlockerLossDB < 0:
		return fmt.Errorf("channel: negative blocker loss %v", p.BlockerLossDB)
	case p.ShadowSigmaDB < 0:
		return fmt.Errorf("channel: negative shadowing sigma %v", p.ShadowSigmaDB)
	}
	return nil
}

// Model precomputes derived constants of the channel.
type Model struct {
	params  Params
	noiseMw units.MilliWatt
	txMw    units.MilliWatt
}

// NewModel validates params and builds a Model.
func NewModel(params Params) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		params:  params,
		noiseMw: units.DBmToMilliWatt(params.NoiseDensityDBmHz.Plus(units.LinearToDB(params.BandwidthHz.Hz()))),
		txMw:    units.DBmToMilliWatt(params.TxPowerDBm),
	}, nil
}

// Params returns the model's configuration.
func (m *Model) Params() Params { return m.params }

// NoiseMw returns the thermal noise power N0·B in milliwatts.
func (m *Model) NoiseMw() units.MilliWatt { return m.noiseMw }

// NoiseDBm returns the thermal noise power in dBm.
func (m *Model) NoiseDBm() units.DBm { return units.MilliWattToDBm(m.noiseMw) }

// TxPowerMw returns the transmit power in milliwatts.
func (m *Model) TxPowerMw() units.MilliWatt { return m.txMw }

// PathLossDB evaluates Eq. 1: a·10·log10(d) + O + 15·d/1000, where O is the
// LOS offset plus the per-blocker penalty. Distances below 1 m clamp to 1 m.
func (m *Model) PathLossDB(dist units.Meter, blockers int) units.DB {
	if dist < 1 {
		dist = 1
	}
	if blockers < 0 {
		blockers = 0
	}
	if blockers > m.params.MaxBlockersCounted {
		blockers = m.params.MaxBlockersCounted
	}
	o := m.params.LOSOffsetDB + m.params.BlockerLossDB.Times(float64(blockers))
	return units.DB(m.params.PathLossExp*10*math.Log10(dist.M())) + o +
		m.params.AtmosphericDBPerKm.Times(dist.M())/1000
}

// PathGainLin returns the linear channel power gain g^c for a link
// (always < 1, dimensionless).
func (m *Model) PathGainLin(dist units.Meter, blockers int) float64 {
	return (-m.PathLossDB(dist, blockers)).Linear()
}

// SNRdB returns the interference-free SNR of a link given linear beam gains.
func (m *Model) SNRdB(dist units.Meter, blockers int, txGainLin, rxGainLin float64) units.DB {
	rx := units.MilliWatt(m.txMw.MW() * txGainLin * m.PathGainLin(dist, blockers) * rxGainLin)
	return units.RatioDB(rx, m.noiseMw)
}

// SINR computes Eq. 3 from a desired received power and a sum of
// interference powers, all in milliwatts, returning the ratio in dB.
func (m *Model) SINR(desired, interference units.MilliWatt) units.DB {
	return units.RatioDB(desired, m.noiseMw+interference)
}

// gaussMainLobeConst is the 3 · ln(10) / 10 exponent constant of Eq. 2
// (10^{-0.3 x²} = e^{-c x²}).
const gaussMainLobeConst = 0.3 * math.Ln10

// Pattern is a 3GPP-style antenna pattern (Eq. 2) for one 3 dB beam width:
// a Gaussian main lobe of peak gain g1 and a flat side lobe g2, with the
// main/side boundary θ1 = (ω/2)·sqrt((10/3)·log10(g1/g2)) from the paper.
type Pattern struct {
	// Width is the 3 dB beam width ω.
	Width units.Radian
	// G1 is the main-lobe peak gain (linear, dimensionless).
	G1 float64
	// G2 is the side-lobe gain (linear, dimensionless).
	G2 float64
	// Theta1 is the main-lobe boundary.
	Theta1 units.Radian
}

// NewPattern derives a pattern for the given 3 dB beam width. The peak gain
// g1 is solved from 2-D energy conservation — the integral of the pattern
// over the full circle equals 2π — with the side lobe fixed sideLobe below
// the peak, so narrower beams get proportionally higher gain (the physical
// tradeoff the paper's heterogeneous Tx/Rx widths exploit).
func NewPattern(width units.Radian, sideLobe units.DB) Pattern {
	if width <= 0 || width > 2*math.Pi {
		//mmv2v:alloc cold panic path for a programmer error; never taken on a valid configuration
		panic(fmt.Sprintf("channel: invalid beam width %v rad", width))
	}
	rho := (-sideLobe).Linear() // g2/g1
	half := width.Rad() / 2
	// θ1 from the paper's boundary formula with g1/g2 = 1/rho.
	theta1 := half * math.Sqrt(10.0/3.0*math.Log10(1/rho))
	if theta1 > math.Pi {
		theta1 = math.Pi
	}
	// ∫_{-θ1}^{θ1} e^{-c (γ/half)²} dγ = half·sqrt(π/c)·erf(sqrt(c)·θ1/half)
	c := gaussMainLobeConst
	mainIntegral := half * math.Sqrt(math.Pi/c) * math.Erf(math.Sqrt(c)*theta1/half)
	g1 := 2 * math.Pi / (mainIntegral + rho*(2*math.Pi-2*theta1))
	return Pattern{Width: width, G1: g1, G2: g1 * rho, Theta1: units.Radian(theta1)}
}

// Gain evaluates Eq. 2 at off-boresight angle gamma (any sign), returning
// linear gain.
func (p Pattern) Gain(gamma units.Radian) float64 {
	g := math.Abs(gamma.Rad())
	if g > math.Pi {
		g = 2*math.Pi - g
	}
	if g < p.Theta1.Rad() {
		x := g / (p.Width.Rad() / 2)
		return p.G1 * math.Exp(-gaussMainLobeConst*x*x)
	}
	return p.G2
}

// PeakGainDB returns the boresight gain in dBi.
func (p Pattern) PeakGainDB() units.DB { return units.LinearToDB(p.G1) }

// OmniPattern returns an isotropic (0 dBi) pattern, used for quasi-omni
// listening in the 802.11ad baseline.
func OmniPattern() Pattern {
	// Theta1 of zero routes every angle to the flat G2 branch.
	return Pattern{Width: 2 * math.Pi, G1: 1, G2: 1, Theta1: 0}
}

// PatternCache memoizes patterns by beam width; the simulator uses only a
// handful of widths (α, β, θ_min, quasi-omni) but evaluates gains millions
// of times.
type PatternCache struct {
	sideLobe units.DB
	byWidth  map[units.Radian]Pattern
}

// NewPatternCache builds a cache with the given side-lobe level.
func NewPatternCache(sideLobe units.DB) *PatternCache {
	return &PatternCache{sideLobe: sideLobe, byWidth: make(map[units.Radian]Pattern)}
}

// Get returns the pattern for a beam width, deriving it on first use.
func (c *PatternCache) Get(width units.Radian) Pattern {
	if p, ok := c.byWidth[width]; ok {
		return p
	}
	p := NewPattern(width, c.sideLobe)
	//mmv2v:alloc memoization miss: each distinct beam width is derived and inserted once per run
	c.byWidth[width] = p
	return p
}
