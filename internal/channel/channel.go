// Package channel implements the 60 GHz mmWave channel model the paper
// evaluates with: the Yamamoto long-distance path-loss model (Eq. 1), the
// 3GPP Gaussian main-lobe beam pattern (Eq. 2), and the directional SINR
// formulation (Eq. 3), plus vehicle-body blockage accounting.
//
// All gains are carried in linear scale internally; dB helpers convert at
// the boundaries. Power quantities are in milliwatts (so dBm values convert
// directly).
package channel

import (
	"fmt"
	"math"
)

// DB converts a linear power ratio to decibels.
func DB(lin float64) float64 { return 10 * math.Log10(lin) }

// Lin converts decibels to a linear power ratio.
func Lin(db float64) float64 { return math.Pow(10, db/10) }

// DBmToMw converts dBm to milliwatts.
func DBmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MwToDBm converts milliwatts to dBm.
func MwToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// Params configures the channel model. Defaults mirror Sec. IV-A of the
// paper; values the paper leaves unspecified are documented in DESIGN.md.
type Params struct {
	// PathLossExp is the exponent a in Eq. 1. The Yamamoto model the paper
	// cites reports ≈2.66 for 60 GHz inter-vehicle LOS links.
	PathLossExp float64
	// LOSOffsetDB is the distance-independent part of O in Eq. 1 for an
	// unobstructed link (includes the first-meter free-space loss).
	LOSOffsetDB float64
	// BlockerLossDB is the additional attenuation per blocking vehicle body.
	BlockerLossDB float64
	// MaxBlockersCounted caps the per-blocker attenuation (deep blockage
	// saturates).
	MaxBlockersCounted int
	// AtmosphericDBPerKm is the 60 GHz oxygen-absorption term (Eq. 1 uses
	// 15 dB/km).
	AtmosphericDBPerKm float64
	// TxPowerDBm is each vehicle's transmission power (paper: 28 dBm).
	TxPowerDBm float64
	// NoiseDensityDBmHz is N0 (paper: −174 dBm/Hz).
	NoiseDensityDBmHz float64
	// BandwidthHz is the channel bandwidth B (paper: 2.16 GHz).
	BandwidthHz float64
	// SideLobeDB is how far the side-lobe gain g² sits below the main-lobe
	// peak g¹ (not given in the paper; 20 dB is typical for the 3GPP
	// pattern).
	SideLobeDB float64
	// ShadowSigmaDB is the standard deviation of an optional per-link
	// log-normal shadowing term added to Eq. 1 (the Yamamoto measurements
	// report several dB of spread; the paper uses the mean model, so the
	// default is 0). Shadowing is drawn per vehicle pair, static per run.
	ShadowSigmaDB float64
}

// DefaultParams returns the paper's channel configuration.
func DefaultParams() Params {
	return Params{
		PathLossExp:        2.66,
		LOSOffsetDB:        70,
		BlockerLossDB:      15,
		MaxBlockersCounted: 3,
		AtmosphericDBPerKm: 15,
		TxPowerDBm:         28,
		NoiseDensityDBmHz:  -174,
		BandwidthHz:        2.16e9,
		SideLobeDB:         20,
		ShadowSigmaDB:      0,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.PathLossExp <= 0:
		return fmt.Errorf("channel: non-positive path loss exponent %v", p.PathLossExp)
	case p.BandwidthHz <= 0:
		return fmt.Errorf("channel: non-positive bandwidth %v", p.BandwidthHz)
	case p.SideLobeDB <= 0:
		return fmt.Errorf("channel: side lobe must sit below main lobe (SideLobeDB=%v)", p.SideLobeDB)
	case p.BlockerLossDB < 0:
		return fmt.Errorf("channel: negative blocker loss %v", p.BlockerLossDB)
	case p.ShadowSigmaDB < 0:
		return fmt.Errorf("channel: negative shadowing sigma %v", p.ShadowSigmaDB)
	}
	return nil
}

// Model precomputes derived constants of the channel.
type Model struct {
	params  Params
	noiseMw float64
	txMw    float64
}

// NewModel validates params and builds a Model.
func NewModel(params Params) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		params:  params,
		noiseMw: DBmToMw(params.NoiseDensityDBmHz + DB(params.BandwidthHz)),
		txMw:    DBmToMw(params.TxPowerDBm),
	}, nil
}

// Params returns the model's configuration.
func (m *Model) Params() Params { return m.params }

// NoiseMw returns the thermal noise power N0·B in milliwatts.
func (m *Model) NoiseMw() float64 { return m.noiseMw }

// NoiseDBm returns the thermal noise power in dBm.
func (m *Model) NoiseDBm() float64 { return MwToDBm(m.noiseMw) }

// TxPowerMw returns the transmit power in milliwatts.
func (m *Model) TxPowerMw() float64 { return m.txMw }

// PathLossDB evaluates Eq. 1: a·10·log10(d) + O + 15·d/1000, where O is the
// LOS offset plus the per-blocker penalty. Distances below 1 m clamp to 1 m.
func (m *Model) PathLossDB(distM float64, blockers int) float64 {
	if distM < 1 {
		distM = 1
	}
	if blockers < 0 {
		blockers = 0
	}
	if blockers > m.params.MaxBlockersCounted {
		blockers = m.params.MaxBlockersCounted
	}
	o := m.params.LOSOffsetDB + float64(blockers)*m.params.BlockerLossDB
	return m.params.PathLossExp*10*math.Log10(distM) + o + m.params.AtmosphericDBPerKm*distM/1000
}

// PathGainLin returns the linear channel power gain g^c for a link
// (always < 1).
func (m *Model) PathGainLin(distM float64, blockers int) float64 {
	return Lin(-m.PathLossDB(distM, blockers))
}

// SNRdB returns the interference-free SNR of a link given beam gains.
func (m *Model) SNRdB(distM float64, blockers int, txGainLin, rxGainLin float64) float64 {
	rx := m.txMw * txGainLin * m.PathGainLin(distM, blockers) * rxGainLin
	return DB(rx / m.noiseMw)
}

// SINR computes Eq. 3 from a desired received power and a sum of
// interference powers, all in milliwatts, returning the ratio in dB.
func (m *Model) SINR(desiredMw, interferenceMw float64) float64 {
	return DB(desiredMw / (m.noiseMw + interferenceMw))
}

// gaussMainLobeConst is the 3 · ln(10) / 10 exponent constant of Eq. 2
// (10^{-0.3 x²} = e^{-c x²}).
const gaussMainLobeConst = 0.3 * math.Ln10

// Pattern is a 3GPP-style antenna pattern (Eq. 2) for one 3 dB beam width:
// a Gaussian main lobe of peak gain g1 and a flat side lobe g2, with the
// main/side boundary θ1 = (ω/2)·sqrt((10/3)·log10(g1/g2)) from the paper.
type Pattern struct {
	// Width is the 3 dB beam width ω in radians.
	Width float64
	// G1 is the main-lobe peak gain (linear).
	G1 float64
	// G2 is the side-lobe gain (linear).
	G2 float64
	// Theta1 is the main-lobe boundary in radians.
	Theta1 float64
}

// NewPattern derives a pattern for the given 3 dB beam width. The peak gain
// g1 is solved from 2-D energy conservation — the integral of the pattern
// over the full circle equals 2π — with the side lobe fixed SideLobeDB below
// the peak, so narrower beams get proportionally higher gain (the physical
// tradeoff the paper's heterogeneous Tx/Rx widths exploit).
func NewPattern(widthRad float64, sideLobeDB float64) Pattern {
	if widthRad <= 0 || widthRad > 2*math.Pi {
		panic(fmt.Sprintf("channel: invalid beam width %v rad", widthRad))
	}
	rho := Lin(-sideLobeDB) // g2/g1
	half := widthRad / 2
	// θ1 from the paper's boundary formula with g1/g2 = 1/rho.
	theta1 := half * math.Sqrt(10.0/3.0*math.Log10(1/rho))
	if theta1 > math.Pi {
		theta1 = math.Pi
	}
	// ∫_{-θ1}^{θ1} e^{-c (γ/half)²} dγ = half·sqrt(π/c)·erf(sqrt(c)·θ1/half)
	c := gaussMainLobeConst
	mainIntegral := half * math.Sqrt(math.Pi/c) * math.Erf(math.Sqrt(c)*theta1/half)
	g1 := 2 * math.Pi / (mainIntegral + rho*(2*math.Pi-2*theta1))
	return Pattern{Width: widthRad, G1: g1, G2: g1 * rho, Theta1: theta1}
}

// Gain evaluates Eq. 2 at off-boresight angle gamma (radians, any sign),
// returning linear gain.
func (p Pattern) Gain(gamma float64) float64 {
	gamma = math.Abs(gamma)
	if gamma > math.Pi {
		gamma = 2*math.Pi - gamma
	}
	if gamma < p.Theta1 {
		x := gamma / (p.Width / 2)
		return p.G1 * math.Exp(-gaussMainLobeConst*x*x)
	}
	return p.G2
}

// PeakGainDB returns the boresight gain in dBi.
func (p Pattern) PeakGainDB() float64 { return DB(p.G1) }

// OmniPattern returns an isotropic (0 dBi) pattern, used for quasi-omni
// listening in the 802.11ad baseline.
func OmniPattern() Pattern {
	// Theta1 of zero routes every angle to the flat G2 branch.
	return Pattern{Width: 2 * math.Pi, G1: 1, G2: 1, Theta1: 0}
}

// PatternCache memoizes patterns by beam width; the simulator uses only a
// handful of widths (α, β, θ_min, quasi-omni) but evaluates gains millions
// of times.
type PatternCache struct {
	sideLobeDB float64
	byWidth    map[float64]Pattern
}

// NewPatternCache builds a cache with the given side-lobe level.
func NewPatternCache(sideLobeDB float64) *PatternCache {
	return &PatternCache{sideLobeDB: sideLobeDB, byWidth: make(map[float64]Pattern)}
}

// Get returns the pattern for a beam width, deriving it on first use.
func (c *PatternCache) Get(widthRad float64) Pattern {
	if p, ok := c.byWidth[widthRad]; ok {
		return p
	}
	p := NewPattern(widthRad, c.sideLobeDB)
	c.byWidth[widthRad] = p
	return p
}
