package channel

import (
	"math"
	"testing"
	"testing/quick"

	"mmv2v/internal/geom"
	"mmv2v/internal/units"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDBLinRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200)
		return math.Abs(units.LinearToDB(units.DB(db).Linear()).Decibels()-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmMwConversions(t *testing.T) {
	if got := units.DBmToMilliWatt(0).MW(); math.Abs(got-1) > 1e-12 {
		t.Errorf("DBmToMw(0) = %v", got)
	}
	if got := units.DBmToMilliWatt(30).MW(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("DBmToMw(30) = %v", got)
	}
	if got := units.MilliWattToDBm(100).Decibels(); math.Abs(got-20) > 1e-12 {
		t.Errorf("MwToDBm(100) = %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero exponent", func(p *Params) { p.PathLossExp = 0 }},
		{"zero bandwidth", func(p *Params) { p.BandwidthHz = 0 }},
		{"zero side lobe", func(p *Params) { p.SideLobeDB = 0 }},
		{"negative blocker loss", func(p *Params) { p.BlockerLossDB = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if _, err := NewModel(p); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestNoiseFloor(t *testing.T) {
	// N0·B for −174 dBm/Hz over 2.16 GHz ≈ −80.65 dBm.
	m := newModel(t)
	if got := m.NoiseDBm().Decibels(); math.Abs(got-(-80.65)) > 0.05 {
		t.Errorf("noise floor = %v dBm, want ≈ -80.65", got)
	}
}

func TestPathLossMonotonicInDistance(t *testing.T) {
	m := newModel(t)
	prev := m.PathLossDB(1, 0)
	for d := units.Meter(2); d <= 1000; d *= 1.5 {
		cur := m.PathLossDB(d, 0)
		if cur <= prev {
			t.Fatalf("path loss not increasing at %v m: %v <= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestPathLossEquationValues(t *testing.T) {
	// Hand-computed Eq. 1 values with default params.
	m := newModel(t)
	tests := []struct {
		d        units.Meter
		blockers int
		want     units.DB
	}{
		{1, 0, 70.015},                      // 0 + 70 + 0.015
		{100, 0, 2.66*10*2 + 70 + 1.5},      // 124.7
		{100, 1, 2.66*10*2 + 85 + 1.5},      // +15 per blocker
		{100, 2, 2.66*10*2 + 100 + 1.5},     //
		{100, 9, 2.66*10*2 + 70 + 45 + 1.5}, // capped at 3 blockers
		{1000, 0, 2.66*10*3 + 70 + 15},      // 164.8
		{0.5, 0, 70.015},                    // sub-meter clamps to 1 m
	}
	for _, tt := range tests {
		if got := m.PathLossDB(tt.d, tt.blockers); math.Abs((got - tt.want).Decibels()) > 1e-9 {
			t.Errorf("PathLossDB(%v, %d) = %v, want %v", tt.d, tt.blockers, got, tt.want)
		}
	}
}

func TestNegativeBlockersClamped(t *testing.T) {
	m := newModel(t)
	if m.PathLossDB(50, -3) != m.PathLossDB(50, 0) {
		t.Error("negative blocker count should clamp to 0")
	}
}

func TestPathGainLinConsistent(t *testing.T) {
	m := newModel(t)
	d := units.Meter(66)
	if got, want := units.LinearToDB(m.PathGainLin(d, 0)), -m.PathLossDB(d, 0); math.Abs((got - want).Decibels()) > 1e-9 {
		t.Errorf("gain %v dB vs loss %v dB", got, want)
	}
}

func TestSNRLinkBudget(t *testing.T) {
	// Sanity-check the end-to-end link budget at the paper's geometry:
	// 28 dBm + two narrow-beam gains at 66 m must support a high MCS
	// (SNR > 20 dB), and discovery beams at 100 m must stay decodable
	// (SNR > 1 dB).
	m := newModel(t)
	narrow := NewPattern(geom.Deg(3), m.Params().SideLobeDB)
	tx := NewPattern(geom.Deg(30), m.Params().SideLobeDB)
	rx := NewPattern(geom.Deg(12), m.Params().SideLobeDB)

	if snr := m.SNRdB(66, 0, narrow.G1, narrow.G1); snr < 20 {
		t.Errorf("refined-beam SNR at 66 m = %.1f dB, want > 20", snr)
	}
	if snr := m.SNRdB(100, 0, tx.G1, rx.G1); snr < 1 {
		t.Errorf("discovery SNR at 100 m = %.1f dB, want > 1", snr)
	}
	// A fully blocked link at range should be undecodable.
	if snr := m.SNRdB(150, 3, tx.G1, rx.G1); snr > 0 {
		t.Errorf("3-blocker SNR at 150 m = %.1f dB, want < 0", snr)
	}
}

func TestSINRReducesToSNRWithoutInterference(t *testing.T) {
	m := newModel(t)
	desired := m.TxPowerMw().Times(m.PathGainLin(66, 0))
	if got, want := m.SINR(desired, 0), units.LinearToDB(desired.Over(m.NoiseMw())); math.Abs((got - want).Decibels()) > 1e-12 {
		t.Errorf("SINR = %v, want %v", got, want)
	}
}

func TestSINRDecreasesWithInterference(t *testing.T) {
	m := newModel(t)
	desired := m.TxPowerMw().Times(m.PathGainLin(66, 0))
	clean := m.SINR(desired, 0)
	dirty := m.SINR(desired, m.NoiseMw().Times(10))
	if dirty >= clean {
		t.Errorf("interference did not reduce SINR: %v vs %v", dirty, clean)
	}
	// 10× noise interference costs ≈10.4 dB.
	if diff := clean - dirty; math.Abs(diff.Decibels()-10.41) > 0.1 {
		t.Errorf("SINR delta = %v dB, want ≈10.41", diff)
	}
}

func TestPatternPeakAtBoresight(t *testing.T) {
	p := NewPattern(geom.Deg(30), 20)
	if got := p.Gain(0); math.Abs(got-p.G1) > 1e-12 {
		t.Errorf("boresight gain = %v, want %v", got, p.G1)
	}
}

func TestPatternHalfPowerAtHalfWidth(t *testing.T) {
	// Eq. 2 gives exactly −3 dB at γ = ω/2.
	for _, widthDeg := range []float64{3, 12, 30, 60} {
		p := NewPattern(geom.Deg(widthDeg), 20)
		got := units.LinearToDB(p.Gain(geom.Deg(widthDeg)/2) / p.G1)
		if math.Abs(got.Decibels()-(-3)) > 1e-9 {
			t.Errorf("width %v°: relative gain at ω/2 = %v dB, want −3", widthDeg, got)
		}
	}
}

func TestPatternSideLobeLevel(t *testing.T) {
	p := NewPattern(geom.Deg(12), 20)
	if got := units.LinearToDB(p.G1 / p.G2); math.Abs(got.Decibels()-20) > 1e-9 {
		t.Errorf("side lobe level = %v dB, want 20", got)
	}
	if got := p.Gain(math.Pi); got != p.G2 {
		t.Errorf("back-lobe gain = %v, want %v", got, p.G2)
	}
}

func TestPatternEnergyConservation(t *testing.T) {
	// ∮ Gain(γ) dγ over the circle must equal 2π for every width.
	for _, widthDeg := range []float64{3, 12, 30, 90, 180} {
		p := NewPattern(geom.Deg(widthDeg), 20)
		const steps = 200000
		sum := 0.0
		for i := 0; i < steps; i++ {
			gamma := -math.Pi + 2*math.Pi*(float64(i)+0.5)/steps
			sum += p.Gain(units.Radian(gamma))
		}
		integral := sum * 2 * math.Pi / steps
		if math.Abs(integral-2*math.Pi)/(2*math.Pi) > 0.01 {
			t.Errorf("width %v°: pattern integral = %v, want 2π≈%v", widthDeg, integral, 2*math.Pi)
		}
	}
}

func TestNarrowerBeamsHaveHigherPeakGain(t *testing.T) {
	widths := []float64{60, 30, 12, 6, 3}
	prev := 0.0
	for _, w := range widths {
		g := NewPattern(geom.Deg(w), 20).G1
		if g <= prev {
			t.Fatalf("peak gain not increasing as width shrinks: %v° → %v", w, g)
		}
		prev = g
	}
}

func TestPatternGainSymmetric(t *testing.T) {
	p := NewPattern(geom.Deg(30), 20)
	f := func(gamma float64) bool {
		gamma = math.Mod(gamma, math.Pi)
		return math.Abs(p.Gain(units.Radian(gamma))-p.Gain(units.Radian(-gamma))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternGainWrapsBeyondPi(t *testing.T) {
	p := NewPattern(geom.Deg(30), 20)
	// Gain at γ and 2π−γ must agree (angles measure the same direction).
	for _, g := range []float64{0.1, 1.0, 3.0} {
		if math.Abs(p.Gain(units.Radian(g))-p.Gain(units.Radian(2*math.Pi-g))) > 1e-12 {
			t.Errorf("gain not periodic at %v", g)
		}
	}
}

func TestInvalidPatternWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width should panic")
		}
	}()
	NewPattern(0, 20)
}

func TestOmniPattern(t *testing.T) {
	p := OmniPattern()
	for _, g := range []units.Radian{0, 1, math.Pi} {
		if p.Gain(g) != 1 {
			t.Errorf("omni gain at %v = %v", g, p.Gain(g))
		}
	}
}

func TestPatternCache(t *testing.T) {
	c := NewPatternCache(20)
	p1 := c.Get(geom.Deg(30))
	p2 := c.Get(geom.Deg(30))
	if p1 != p2 {
		t.Error("cache returned different patterns for same width")
	}
	if c.Get(geom.Deg(12)).G1 <= p1.G1 {
		t.Error("cached 12° beam should out-gain 30° beam")
	}
}

func TestExpectedPeakGains(t *testing.T) {
	// Regression-pin the derived peak gains (dBi) for the paper's widths.
	tests := []struct {
		widthDeg float64
		wantDBi  float64
	}{
		{30, 10.1},
		{12, 13.5},
		{3, 17.3},
	}
	for _, tt := range tests {
		got := NewPattern(geom.Deg(tt.widthDeg), 20).PeakGainDB()
		if math.Abs(got.Decibels()-tt.wantDBi) > 0.3 {
			t.Errorf("peak gain for %v° = %.2f dBi, want ≈%v", tt.widthDeg, got, tt.wantDBi)
		}
	}
}
