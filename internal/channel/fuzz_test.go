package channel

import (
	"math"
	"testing"

	"mmv2v/internal/units"
)

// FuzzSINR pins two properties of Eq. 3 evaluation that the interference
// bookkeeping in the medium relies on: the SINR of a positive desired
// signal is always finite, and removing an interferer never decreases it.
// Both hold exactly in floating point — non-negative addition is monotone,
// division by a larger positive denominator is smaller, and log10 is
// monotone — so the comparisons below use no tolerance.
func FuzzSINR(f *testing.F) {
	m, err := NewModel(DefaultParams())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(1e-6, 1e-7, 1e-8)
	f.Add(42.0, 0.0, 0.0)
	f.Add(1e-30, 5.0, 1e-3)
	f.Fuzz(func(t *testing.T, desiredMw, intf1Mw, intf2Mw float64) {
		for _, v := range []float64{desiredMw, intf1Mw, intf2Mw} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e12 {
				t.Skip()
			}
		}
		if desiredMw <= 0 {
			t.Skip()
		}
		full := m.SINR(units.MilliWatt(desiredMw), units.MilliWatt(intf1Mw+intf2Mw))
		if math.IsNaN(full.Decibels()) || math.IsInf(full.Decibels(), 0) {
			t.Fatalf("SINR(%v, %v) = %v, want finite", desiredMw, intf1Mw+intf2Mw, full)
		}
		one := m.SINR(units.MilliWatt(desiredMw), units.MilliWatt(intf1Mw))
		clean := m.SINR(units.MilliWatt(desiredMw), 0)
		if one < full {
			t.Fatalf("removing interferer decreased SINR: %v -> %v", full, one)
		}
		if clean < one {
			t.Fatalf("removing last interferer decreased SINR: %v -> %v", one, clean)
		}
	})
}
