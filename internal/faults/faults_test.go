package faults

import (
	"testing"
	"time"

	"mmv2v/internal/des"
)

// fakeClock drives an Injector without a simulator.
type fakeClock struct{ t des.Time }

func (c *fakeClock) Now() des.Time { return c.t }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{ControlLossP: -0.1},
		{ControlLossP: 1.5},
		{BlockageRatePerSec: -1},
		{BlockageRatePerSec: 0.5}, // rate without mean burst duration
		{RadioMeanUpSec: -2},
		{RadioMeanUpSec: 5}, // churn without mean outage duration
		{SlotJitterMax: -time.Microsecond},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

func TestEnabledAndScale(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	base := DefaultConfig()
	if !base.Enabled() {
		t.Error("default config reports disabled")
	}
	if got := base.Scale(0); got != (Config{}) {
		t.Errorf("Scale(0) = %+v, want zero config", got)
	}
	if got := base.Scale(1); got != base {
		t.Errorf("Scale(1) = %+v, want identity", got)
	}
	half := base.Scale(0.5)
	if half.ControlLossP != base.ControlLossP/2 ||
		half.BlockageRatePerSec != base.BlockageRatePerSec/2 ||
		half.RadioMeanUpSec != base.RadioMeanUpSec*2 ||
		half.SlotJitterMax != base.SlotJitterMax/2 {
		t.Errorf("Scale(0.5) frequencies wrong: %+v", half)
	}
	// Severity knobs are preserved: intensity changes how often faults
	// happen, not how bad each one is.
	if half.BlockageMeanSec != base.BlockageMeanSec ||
		half.BlockageExtraLossDB != base.BlockageExtraLossDB ||
		half.RadioMeanDownSec != base.RadioMeanDownSec {
		t.Errorf("Scale(0.5) altered severity: %+v", half)
	}
	if got := base.Scale(10).ControlLossP; got != 1 {
		t.Errorf("scaled loss probability %v not capped at 1", got)
	}
}

func TestZeroConfigIsNeutral(t *testing.T) {
	clk := &fakeClock{}
	inj := NewInjector(Config{}, 42, clk)
	for tick := 0; tick < 100; tick++ {
		clk.t = des.At(time.Duration(tick) * 5 * time.Millisecond)
		if g := inj.LinkFactorLin(1, 2); g != 1 {
			t.Fatalf("tick %d: link factor %v, want exactly 1", tick, g)
		}
		if !inj.RadioUp(3, clk.t) {
			t.Fatalf("tick %d: radio down under zero config", tick)
		}
		if inj.DropControl(1, 2, clk.t) {
			t.Fatalf("tick %d: frame dropped under zero config", tick)
		}
		if d := inj.TxDelay(1, clk.t); d != 0 {
			t.Fatalf("tick %d: jitter %v under zero config", tick, d)
		}
	}
}

// TestBlockageQueryOrderIndependence pins the determinism-by-construction
// property: a pair's blockage state at tick T is the same whether the pair
// was evaluated at every tick or only at T — so fault histories do not
// depend on when a pair first comes into range or on worker scheduling.
func TestBlockageQueryOrderIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockageRatePerSec = 20 // dense bursts so both states are exercised
	cfg.BlockageMeanSec = 0.05
	const seed, ticks = 99, 400

	eager := NewInjector(cfg, seed, &fakeClock{})
	trace := make([]float64, ticks)
	for k := 0; k < ticks; k++ {
		eager.clock.(*fakeClock).t = des.At(time.Duration(k) * 5 * time.Millisecond)
		trace[k] = eager.LinkFactorLin(3, 9)
	}
	if eager.BlockedTicks == 0 {
		t.Fatal("burst process never entered the blocked state; test is vacuous")
	}

	for _, k := range []int{0, 7, 123, ticks - 1} {
		lazy := NewInjector(cfg, seed, &fakeClock{t: des.At(time.Duration(k) * 5 * time.Millisecond)})
		if got := lazy.LinkFactorLin(3, 9); got != trace[k] {
			t.Errorf("tick %d: lazy factor %v != eager %v", k, got, trace[k])
		}
		// Endpoint order must not matter: (a, b) and (b, a) are one link.
		swapped := NewInjector(cfg, seed, &fakeClock{t: des.At(time.Duration(k) * 5 * time.Millisecond)})
		if got := swapped.LinkFactorLin(9, 3); got != trace[k] {
			t.Errorf("tick %d: swapped endpoints factor %v != %v", k, got, trace[k])
		}
	}
}

// TestRadioScheduleQueryOrderIndependence: the up/down schedule is fixed at
// seeding time, so sampling densely and jumping straight to a time agree.
func TestRadioScheduleQueryOrderIndependence(t *testing.T) {
	cfg := Config{RadioMeanUpSec: 0.3, RadioMeanDownSec: 0.1}
	const seed = 7
	eager := NewInjector(cfg, seed, &fakeClock{})
	const steps = 500
	states := make([]bool, steps)
	downs := 0
	for k := 0; k < steps; k++ {
		at := des.At(time.Duration(k) * 10 * time.Millisecond)
		states[k] = eager.RadioUp(4, at)
		if !states[k] {
			downs++
		}
	}
	if !states[0] {
		t.Error("radio must start up")
	}
	if downs == 0 {
		t.Fatal("radio never failed over 5 s with 0.3 s mean up-time; test is vacuous")
	}
	for _, k := range []int{0, 42, 250, steps - 1} {
		lazy := NewInjector(cfg, seed, &fakeClock{})
		if got := lazy.RadioUp(4, des.At(time.Duration(k)*10*time.Millisecond)); got != states[k] {
			t.Errorf("step %d: lazy state %v != eager %v", k, got, states[k])
		}
	}
}

func TestDropControlDeterministicWithExpectedRate(t *testing.T) {
	cfg := Config{ControlLossP: 0.2}
	a := NewInjector(cfg, 11, &fakeClock{})
	b := NewInjector(cfg, 11, &fakeClock{})
	other := NewInjector(cfg, 12, &fakeClock{})
	const frames = 20000
	drops, diverged := 0, false
	for k := 0; k < frames; k++ {
		at := des.At(time.Duration(k) * time.Microsecond)
		da := a.DropControl(1, 2, at)
		if da {
			drops++
		}
		if da != b.DropControl(1, 2, at) {
			t.Fatalf("same seed diverged at frame %d", k)
		}
		if da != other.DropControl(1, 2, at) {
			diverged = true
		}
	}
	rate := float64(drops) / frames
	if rate < 0.18 || rate > 0.22 {
		t.Errorf("empirical drop rate %v far from configured 0.2", rate)
	}
	if !diverged {
		t.Error("different seeds produced identical drop sequences")
	}
	if a.DroppedFrames != uint64(drops) {
		t.Errorf("DroppedFrames = %d, want %d", a.DroppedFrames, drops)
	}
}

func TestTxDelayBoundedAndDeterministic(t *testing.T) {
	cfg := Config{SlotJitterMax: 2 * time.Microsecond}
	a := NewInjector(cfg, 5, &fakeClock{})
	b := NewInjector(cfg, 5, &fakeClock{})
	nonzero := false
	for k := 0; k < 1000; k++ {
		at := des.At(time.Duration(k) * 20 * time.Millisecond)
		d := a.TxDelay(3, at)
		if d < 0 || d >= cfg.SlotJitterMax {
			t.Fatalf("jitter %v outside [0, %v)", d, cfg.SlotJitterMax)
		}
		if d != b.TxDelay(3, at) {
			t.Fatalf("same seed diverged at frame %d", k)
		}
		if d > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("jitter never fired")
	}
}
