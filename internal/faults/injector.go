package faults

import (
	"math"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/obs"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

// Clock exposes the simulation's current time; *des.Simulator satisfies it.
type Clock interface {
	Now() des.Time
}

// geTick is the sampling period of the Gilbert–Elliott blockage chains,
// aligned with the paper's 5 ms position/link refresh cadence.
const geTick = 5 * time.Millisecond

// Sub-stream labels, hashed once. Each fault process draws from its own
// stream family keyed by entity identity, so processes are mutually
// independent and stable under any query order.
var (
	opDrop   = xrand.HashString("faults.drop")
	opGE     = xrand.HashString("faults.blockage")
	opRadio  = xrand.HashString("faults.radio")
	opJitter = xrand.HashString("faults.jitter")
)

// unit maps a list of 64-bit identifiers to a uniform value in [0, 1).
func unit(vs ...uint64) float64 {
	return float64(xrand.Mix(vs...)>>11) / float64(uint64(1)<<53)
}

// geState is one pair's blockage chain position: the last evaluated tick and
// whether the pair is inside a burst. Chains always start clear at tick 0
// and advance with per-tick hashed coin flips, so the state at tick T is a
// pure function of (seed, pair, T) no matter when the pair is first queried.
type geState struct {
	tick    int64
	blocked bool
}

// radioState is one vehicle's position in its up/down renewal process: the
// current interval index, its end time, and whether the radio is up.
// Interval durations are exponential draws hashed from (seed, vehicle,
// interval index), so the whole schedule is fixed at seeding time.
type radioState struct {
	k   uint64
	end des.Time
	up  bool
}

// Injector evaluates the configured fault processes against the simulation
// clock. It implements the medium's FaultModel hook (radio churn, control
// loss, slot jitter) and the world's LinkFault hook (blockage bursts).
// Create one per trial with NewInjector; it is not safe for concurrent use
// (the DES is single-threaded) and, like the rest of the simulator, is
// deterministic: same config + seed ⇒ the same fault history, bit for bit.
type Injector struct {
	cfg   Config //mmv2v:derived construction parameter re-supplied by NewInjector on restore
	seed  uint64 //mmv2v:derived construction parameter; part of trial identity, not evolving state
	clock Clock  //mmv2v:derived wiring to the host simulator, re-injected on construction

	// Per-tick P(clear → blocked), P(blocked → clear), and the linear gain
	// factor inside a burst.
	pGoodBad float64 //mmv2v:derived precomputed from cfg by NewInjector
	pBadGood float64 //mmv2v:derived precomputed from cfg by NewInjector
	attenLin float64 //mmv2v:derived precomputed from cfg by NewInjector

	ge    map[uint64]*geState
	radio map[int]*radioState

	// Diagnostics (reset never; one Injector serves one trial).

	// DroppedFrames counts control frames killed by the loss process.
	DroppedFrames uint64
	// BlockedTicks counts pair-tick evaluations that landed inside a burst.
	BlockedTicks uint64

	// Statistics handles (nil-safe no-ops until SetObs installs a live
	// registry).
	obsDrops       *obs.Counter //mmv2v:derived statistics handle reinstalled by SetObs
	obsBlocked     *obs.Counter //mmv2v:derived statistics handle reinstalled by SetObs
	obsTransitions *obs.Counter //mmv2v:derived statistics handle reinstalled by SetObs
}

// SetObs installs the statistics registry. A nil registry (the default)
// hands out nil handles, so every fault evaluation stays a no-op.
func (f *Injector) SetObs(r *obs.Registry) {
	f.obsDrops = r.Counter("faults.control_drops")
	f.obsBlocked = r.Counter("faults.blocked_ticks")
	f.obsTransitions = r.Counter("faults.radio_transitions")
}

// NewInjector builds an Injector for a trial. The seed should be derived
// from the trial's scenario seed (the sim layer mixes in a dedicated label)
// so fault histories are independent across trials but reproducible from
// the scenario seed alone.
func NewInjector(cfg Config, seed uint64, clock Clock) *Injector {
	tickSec := geTick.Seconds()
	inj := &Injector{
		cfg:   cfg,
		seed:  seed,
		clock: clock,
		ge:    make(map[uint64]*geState),
		radio: make(map[int]*radioState),
	}
	if cfg.BlockageRatePerSec > 0 && cfg.BlockageMeanSec > 0 {
		inj.pGoodBad = min(1, cfg.BlockageRatePerSec*tickSec)
		inj.pBadGood = min(1, tickSec/cfg.BlockageMeanSec.S())
	}
	inj.attenLin = (-cfg.BlockageExtraLossDB).Linear()
	return inj
}

// pairKey folds an unordered vehicle pair into one stream identifier.
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// LinkFactorLin implements world.LinkFault: the extra linear gain factor on
// pair (a, b) at the current refresh — 1 in the clear state, the configured
// burst attenuation while blocked.
func (f *Injector) LinkFactorLin(a, b int) float64 {
	//mmv2v:exact disabled-feature sentinel: pGoodBad is exactly 0 iff blockage bursts were not configured
	if f.pGoodBad == 0 {
		return 1
	}
	tick := int64(f.clock.Now() / des.At(geTick))
	key := pairKey(a, b)
	st, ok := f.ge[key]
	if !ok {
		st = &geState{tick: -1}
		f.ge[key] = st
	}
	for st.tick < tick {
		st.tick++
		u := unit(f.seed, opGE, key, uint64(st.tick))
		if st.blocked {
			st.blocked = u >= f.pBadGood
		} else {
			st.blocked = u < f.pGoodBad
		}
	}
	if st.blocked {
		f.BlockedTicks++
		f.obsBlocked.Inc()
		return f.attenLin
	}
	return 1
}

// RadioUp implements part of medium.FaultModel: whether vehicle i's radio
// is alive at time `at`. Radios start up and alternate exponential up/down
// intervals; a down radio neither transmits, receives nor interferes.
func (f *Injector) RadioUp(i int, at des.Time) bool {
	if f.cfg.RadioMeanUpSec <= 0 {
		return true
	}
	st, ok := f.radio[i]
	if !ok {
		st = &radioState{up: true}
		st.end = f.expInterval(i, 0, f.cfg.RadioMeanUpSec)
		f.radio[i] = st
	}
	for at >= st.end {
		st.k++
		st.up = !st.up
		f.obsTransitions.Inc()
		mean := f.cfg.RadioMeanUpSec
		if !st.up {
			mean = f.cfg.RadioMeanDownSec
		}
		st.end += f.expInterval(i, st.k, mean)
	}
	return st.up
}

// expInterval draws vehicle i's k-th interval duration from an exponential
// with the given mean, as a pure function of (seed, i, k).
func (f *Injector) expInterval(i int, k uint64, mean units.Sec) des.Time {
	u := unit(f.seed, opRadio, uint64(i), k)
	sec := -mean.S() * math.Log(1-u)
	return des.At(time.Duration(sec * float64(time.Second)))
}

// DropControl implements part of medium.FaultModel: whether the control
// frame from → to resolving at time `at` is lost despite a decodable SINR.
func (f *Injector) DropControl(from, to int, at des.Time) bool {
	if f.cfg.ControlLossP <= 0 {
		return false
	}
	if unit(f.seed, opDrop, uint64(from), uint64(to), uint64(at)) < f.cfg.ControlLossP {
		f.DroppedFrames++
		f.obsDrops.Inc()
		return true
	}
	return false
}

// TxDelay implements part of medium.FaultModel: the slot-timing jitter added
// to vehicle `from`'s transmission starting at time `at`.
func (f *Injector) TxDelay(from int, at des.Time) time.Duration {
	if f.cfg.SlotJitterMax <= 0 {
		return 0
	}
	u := unit(f.seed, opJitter, uint64(from), uint64(at))
	return time.Duration(u * float64(f.cfg.SlotJitterMax))
}
