// Checkpoint support (DESIGN.md §11). The injector's chains are lazy: a
// pair's Gilbert–Elliott chain catches up from tick 0 on first query,
// incrementing the blocked-tick diagnostics for every blocked evaluation
// along the way. Restoring the chain maps (rather than letting them
// re-derive) is therefore required for resume exactness — a re-derivation
// would double-count diagnostics and re-advance chains past the
// checkpointed tick. Keys are encoded in sorted order so the bytes are
// canonical.
package faults

import (
	"slices"

	"mmv2v/internal/des"
	"mmv2v/internal/persist"
)

// SaveState appends the injector's mutable state: both lazy chain maps
// plus the drop/blockage diagnostics. Config-derived probabilities are
// rebuilt by NewInjector, not stored.
func (f *Injector) SaveState(e *persist.Encoder) {
	geKeys := make([]uint64, 0, len(f.ge))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for k := range f.ge {
		geKeys = append(geKeys, k)
	}
	slices.Sort(geKeys)
	e.U32(uint32(len(geKeys)))
	for _, k := range geKeys {
		st := f.ge[k]
		e.U64(k)
		e.I64(st.tick)
		e.Bool(st.blocked)
	}

	radioKeys := make([]int, 0, len(f.radio))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for k := range f.radio {
		radioKeys = append(radioKeys, k)
	}
	slices.Sort(radioKeys)
	e.U32(uint32(len(radioKeys)))
	for _, k := range radioKeys {
		st := f.radio[k]
		e.Int(k)
		e.U64(st.k)
		e.I64(int64(st.end))
		e.Bool(st.up)
	}

	e.U64(f.DroppedFrames)
	e.U64(f.BlockedTicks)
}

// LoadState restores state checkpointed by SaveState onto an injector
// rebuilt with the same (config, seed).
func (f *Injector) LoadState(d *persist.Decoder) error {
	nge := d.Count(8 + 8 + 1)
	ge := make(map[uint64]*geState, nge)
	for i := 0; i < nge; i++ {
		k := d.U64()
		st := &geState{tick: d.I64(), blocked: d.Bool()}
		if d.Err() != nil {
			return d.Err()
		}
		ge[k] = st
	}
	nr := d.Count(8 + 8 + 8 + 1)
	radio := make(map[int]*radioState, nr)
	for i := 0; i < nr; i++ {
		k := d.Int()
		st := &radioState{k: d.U64(), end: des.Time(d.I64()), up: d.Bool()}
		if d.Err() != nil {
			return d.Err()
		}
		radio[k] = st
	}
	dropped := d.U64()
	blocked := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	f.ge = ge
	f.radio = radio
	f.DroppedFrames = dropped
	f.BlockedTicks = blocked
	return nil
}
