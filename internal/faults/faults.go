// Package faults is the deterministic fault-injection layer: a seeded model
// of the hostile dynamics the paper's clean scenario generator leaves out —
// lossy control exchanges, transient pedestrian/weather blockage bursts,
// silent radio failures and slot-timing jitter.
//
// Every fault decision is a pure function of (fault seed, entity identity,
// time), derived with the same SplitMix64 hashing discipline as
// internal/xrand: vehicle 7's radio outage schedule or pair (3, 9)'s
// blockage burst at tick 41 is byte-identical no matter how many workers run
// trials, when a link is first queried, or in which order queries arrive.
// Protocols never see this package — an Injector plugs in behind the
// medium's FaultModel hook and the world's LinkFault hook, so mmV2V, ROP and
// 802.11ad are stressed identically and unknowingly.
package faults

import (
	"fmt"
	"time"

	"mmv2v/internal/units"
)

// Config parameterizes the four fault processes. The zero value disables
// everything and is an exact no-op (the simulator does not even construct an
// Injector for it).
type Config struct {
	// ControlLossP is the probability that an otherwise-decodable control
	// frame (SSW, negotiation, beacon) is independently lost at each
	// receiver — decoder/FCS failure beyond what Eq. 3 SINR explains.
	ControlLossP float64
	// BlockageRatePerSec is the per-pair rate (1/s) of entering a transient
	// blockage burst — a pedestrian, cyclist or rain fade crossing the link.
	// Bursts follow a Gilbert–Elliott on/off chain sampled every 5 ms.
	BlockageRatePerSec float64
	// BlockageMeanSec is the mean burst duration.
	BlockageMeanSec units.Sec
	// BlockageExtraLossDB is the extra attenuation applied to a pair's path
	// gain while the pair is inside a burst.
	BlockageExtraLossDB units.DB
	// RadioMeanUpSec is a vehicle radio's mean up-time before it silently
	// fails (exponential); 0 disables radio churn.
	RadioMeanUpSec units.Sec
	// RadioMeanDownSec is the mean outage duration before the radio
	// recovers (exponential). While down, the vehicle neither transmits,
	// receives nor interferes.
	RadioMeanDownSec units.Sec
	// SlotJitterMax delays every control transmission by an independent
	// uniform [0, SlotJitterMax) offset, modeling imperfect slot clocks;
	// late frames can spill past a receiver's re-aim and become undecodable.
	SlotJitterMax time.Duration
}

// DefaultConfig returns the intensity-1 stress profile used by the fault
// sweep: 20 % control loss, ~9 % per-pair blockage occupancy (a 200 ms
// burst every ~2 s) at 25 dB extra loss, a radio outage of ~250 ms every
// ~5 s per vehicle, and up to 2 µs of slot jitter (an eighth of the 16 µs
// sector slot).
func DefaultConfig() Config {
	return Config{
		ControlLossP:        0.2,
		BlockageRatePerSec:  0.5,
		BlockageMeanSec:     0.2,
		BlockageExtraLossDB: 25,
		RadioMeanUpSec:      5,
		RadioMeanDownSec:    0.25,
		SlotJitterMax:       2 * time.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ControlLossP < 0 || c.ControlLossP > 1:
		return fmt.Errorf("faults: control loss probability %v outside [0,1]", c.ControlLossP)
	case c.BlockageRatePerSec < 0:
		return fmt.Errorf("faults: negative blockage rate %v", c.BlockageRatePerSec)
	case c.BlockageRatePerSec > 0 && c.BlockageMeanSec <= 0:
		return fmt.Errorf("faults: blockage rate %v/s needs a positive mean burst duration", c.BlockageRatePerSec)
	case c.BlockageExtraLossDB < 0:
		return fmt.Errorf("faults: negative blockage loss %v dB", c.BlockageExtraLossDB)
	case c.RadioMeanUpSec < 0:
		return fmt.Errorf("faults: negative radio up-time %v", c.RadioMeanUpSec)
	case c.RadioMeanUpSec > 0 && c.RadioMeanDownSec <= 0:
		return fmt.Errorf("faults: radio churn needs a positive mean outage duration (got %v)", c.RadioMeanDownSec)
	case c.SlotJitterMax < 0:
		return fmt.Errorf("faults: negative slot jitter %v", c.SlotJitterMax)
	}
	return nil
}

// Enabled reports whether any fault process is active. A disabled config is
// an exact no-op: the simulator skips Injector construction entirely, so
// outputs are byte-identical to a build without this package.
func (c Config) Enabled() bool {
	return c.ControlLossP > 0 ||
		(c.BlockageRatePerSec > 0 && c.BlockageExtraLossDB > 0) ||
		c.RadioMeanUpSec > 0 ||
		c.SlotJitterMax > 0
}

// Scale returns the profile at a fault intensity in [0, ∞): event
// frequencies (control loss, burst arrivals, radio failures, jitter span)
// scale linearly with intensity while per-event severity (burst length and
// depth, outage length) is preserved. Scale(0) is the zero Config —
// disabled — and Scale(1) is c itself.
func (c Config) Scale(intensity float64) Config {
	if intensity <= 0 {
		return Config{}
	}
	//mmv2v:exact shortcut for the exact literal 1.0 (full intensity); near-1 values take the scaling path correctly
	if intensity == 1 {
		return c
	}
	out := c
	out.ControlLossP = min(1, c.ControlLossP*intensity)
	out.BlockageRatePerSec = c.BlockageRatePerSec * intensity
	if c.RadioMeanUpSec > 0 {
		out.RadioMeanUpSec = c.RadioMeanUpSec.Div(intensity)
	}
	out.SlotJitterMax = time.Duration(float64(c.SlotJitterMax) * intensity)
	return out
}
