package traffic_test

import (
	"testing"

	"mmv2v/internal/traffic"
	"mmv2v/internal/xrand"
)

// TestStepSteadyStateAllocFree pins the ring road's steady-state mobility
// tick at zero allocations: the per-direction groups are persistent scratch
// that reaches fleet capacity on the first Step, the (S, ID) sort is
// in-place, and directions never change, so every later Step reuses the
// same backing arrays.
func TestStepSteadyStateAllocFree(t *testing.T) {
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the first-step scratch growth and a few lane-change
	// cadence boundaries.
	for i := 0; i < 100; i++ {
		road.Step(0.005)
	}
	if n := testing.AllocsPerRun(200, func() { road.Step(0.005) }); n != 0 {
		t.Errorf("steady-state Road.Step allocates %v times per run, want 0", n)
	}
}
