// Package traffic is the microscopic road-traffic substrate replacing the
// paper's closed-source VENUS simulator. It models a multi-lane road segment
// with per-lane speed bands, the Intelligent Driver Model (IDM) for
// car-following and a MOBIL-style incentive/safety model for lane changing,
// exactly the two model classes the paper attributes to VENUS ("a
// car-following model and a lane-changing model").
//
// The road is a ring: vehicles leaving one end re-enter the other, which
// keeps the configured density (vehicles per lane per km, "vpl") constant —
// the steady-state equivalent of open-boundary spawning on the paper's 1 km
// segment. Density is what the paper sweeps (15–30 vpl), so holding it
// constant is the property that matters.
package traffic

import (
	"fmt"
	"math"

	"mmv2v/internal/geom"
	"mmv2v/internal/xrand"
)

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// Direction is the travel direction of a vehicle along the road axis.
type Direction int

// Travel directions. The road runs along the x axis; Eastbound vehicles
// move toward +x, Westbound toward -x.
const (
	Eastbound Direction = 1
	Westbound Direction = -1
)

func (d Direction) String() string {
	if d == Eastbound {
		return "east"
	}
	return "west"
}

// SpeedBand is a [low, high) desired-speed interval in m/s for one lane.
type SpeedBand struct {
	Low  float64
	High float64
}

// IDMParams are the Intelligent Driver Model parameters.
type IDMParams struct {
	// MaxAccel is the maximum acceleration a (m/s²).
	MaxAccel float64
	// ComfortDecel is the comfortable braking deceleration b (m/s², positive).
	ComfortDecel float64
	// Headway is the desired time headway T (s).
	Headway float64
	// MinGap is the jam distance s0 (m).
	MinGap float64
	// Delta is the acceleration exponent δ.
	Delta float64
}

// DefaultIDM returns IDM parameters typical for surface-road traffic in the
// paper's 40–80 km/h regime.
func DefaultIDM() IDMParams {
	return IDMParams{
		MaxAccel:     1.5,
		ComfortDecel: 2.0,
		Headway:      1.2,
		MinGap:       2.0,
		Delta:        4,
	}
}

// MOBILParams are the lane-change model parameters.
type MOBILParams struct {
	// Politeness weights the accelerations imposed on others.
	Politeness float64
	// Threshold is the net incentive (m/s²) required to change lanes.
	Threshold float64
	// SafeBraking is the maximum deceleration (m/s², positive) a lane change
	// may impose on the new follower.
	SafeBraking float64
	// Cooldown is the minimum time (s) between lane changes of one vehicle.
	Cooldown float64
}

// DefaultMOBIL returns standard MOBIL parameters.
func DefaultMOBIL() MOBILParams {
	return MOBILParams{
		Politeness:  0.3,
		Threshold:   0.2,
		SafeBraking: 3.0,
		Cooldown:    4.0,
	}
}

// Config describes a road scenario.
type Config struct {
	// Length is the road segment length in meters (paper: 1000 m).
	Length float64
	// LanesPerDir is the number of lanes in each direction (paper: 3).
	LanesPerDir int
	// LaneWidth in meters (paper: 5 m).
	LaneWidth float64
	// MedianGap is the gap between the two innermost opposing lanes (m).
	MedianGap float64
	// DensityVPL is vehicles per lane per km (the paper's density unit).
	DensityVPL float64
	// SpeedBands gives the desired-speed band per lane index; lane 0 is the
	// outermost (slow) lane. Paper: 40–60, 50–70, 60–80 km/h.
	SpeedBands []SpeedBand
	// VehicleLength and VehicleWidth are car body dimensions in meters.
	VehicleLength float64
	VehicleWidth  float64
	// TruckFraction is the share of vehicles generated as trucks (larger
	// bodies: TruckLength × TruckWidth, capped desired speed). Trucks are
	// the dominant mmWave blockers on real roads; the paper's evaluation
	// has cars only, so the default is 0.
	TruckFraction float64
	// TruckLength and TruckWidth are truck body dimensions in meters.
	TruckLength float64
	TruckWidth  float64
	// TruckMaxSpeed caps a truck's desired speed (m/s).
	TruckMaxSpeed float64
	IDM           IDMParams
	MOBIL         MOBILParams
	// LaneChangeCheckEvery is how often (s) each vehicle considers a lane
	// change. Zero disables lane changing.
	LaneChangeCheckEvery float64
}

// DefaultConfig returns the paper's road scenario at the given density.
func DefaultConfig(densityVPL float64) Config {
	return Config{
		Length:      1000,
		LanesPerDir: 3,
		LaneWidth:   5,
		MedianGap:   1,
		DensityVPL:  densityVPL,
		SpeedBands: []SpeedBand{
			{KmhToMs(40), KmhToMs(60)},
			{KmhToMs(50), KmhToMs(70)},
			{KmhToMs(60), KmhToMs(80)},
		},
		VehicleLength:        4.6,
		VehicleWidth:         1.8,
		TruckFraction:        0,
		TruckLength:          16,
		TruckWidth:           2.5,
		TruckMaxSpeed:        KmhToMs(80),
		IDM:                  DefaultIDM(),
		MOBIL:                DefaultMOBIL(),
		LaneChangeCheckEvery: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Length <= 0:
		return fmt.Errorf("traffic: non-positive road length %v", c.Length)
	case c.LanesPerDir <= 0:
		return fmt.Errorf("traffic: non-positive lanes per direction %d", c.LanesPerDir)
	case len(c.SpeedBands) < c.LanesPerDir:
		return fmt.Errorf("traffic: %d speed bands for %d lanes", len(c.SpeedBands), c.LanesPerDir)
	case c.DensityVPL < 0:
		return fmt.Errorf("traffic: negative density %v", c.DensityVPL)
	case c.VehicleLength <= 0 || c.VehicleWidth <= 0:
		return fmt.Errorf("traffic: non-positive vehicle dimensions %vx%v", c.VehicleLength, c.VehicleWidth)
	case c.TruckFraction < 0 || c.TruckFraction > 1:
		return fmt.Errorf("traffic: truck fraction %v outside [0,1]", c.TruckFraction)
	case c.TruckFraction > 0 && (c.TruckLength <= 0 || c.TruckWidth <= 0 || c.TruckMaxSpeed <= 0):
		return fmt.Errorf("traffic: invalid truck parameters")
	}
	for i, b := range c.SpeedBands {
		if b.Low <= 0 || b.High < b.Low {
			return fmt.Errorf("traffic: invalid speed band %d: [%v, %v]", i, b.Low, b.High)
		}
	}
	return nil
}

// Class distinguishes vehicle body types (cars vs trucks), which matters
// for mmWave blockage: truck bodies are much larger obstacles.
type Class int

// Vehicle classes.
const (
	ClassCar Class = iota + 1
	ClassTruck
)

func (c Class) String() string {
	if c == ClassTruck {
		return "truck"
	}
	return "car"
}

// Vehicle is the kinematic state of one vehicle. S is the arc position along
// its own direction of travel in [0, Length); V is speed (m/s, ≥0).
type Vehicle struct {
	ID    int
	Class Class
	Dir   Direction
	Lane  int
	S     float64
	V     float64
	A     float64
	// Seg is the directed road-graph segment the vehicle occupies; unused
	// (always 0) on the single ring Road. Hops counts completed segment
	// traversals and feeds the deterministic route hash at intersections.
	Seg  int
	Hops int
	// Quantile in [0,1) fixes the vehicle's aggressiveness: its desired
	// speed in lane l is Low_l + Quantile·(High_l − Low_l), so a vehicle
	// keeps its relative aggressiveness when it changes lanes.
	Quantile float64
	// DesiredV is the current desired speed, derived from Quantile and Lane.
	DesiredV float64
	// sinceLaneChange accumulates seconds since the last lane change.
	sinceLaneChange float64
}

// Road is a running traffic simulation. Create with New; not safe for
// concurrent use.
type Road struct {
	cfg      Config //mmv2v:derived construction parameter re-supplied by the restore caller
	vehicles []*Vehicle
	rng      *xrand.Source
	// groups[0] (westbound) and groups[1] (eastbound) hold the per-direction
	// vehicle lists sorted by S for leader lookups. They are scratch, rebuilt
	// from vehicles at the top of every Step; the backing arrays are reused
	// so the steady-state mobility tick allocates nothing.
	groups  [2][]*Vehicle //mmv2v:derived per-step sort scratch; rebuilt from vehicles at the top of every Step
	elapsed float64
}

// New creates a road populated at the configured density. Vehicles are
// placed with jittered even spacing per lane and speeds drawn from the
// lane's band.
func New(cfg Config, rng *xrand.Source) (*Road, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Road{cfg: cfg, rng: rng.Child("traffic")}
	perLane := int(math.Round(cfg.DensityVPL * cfg.Length / 1000))
	id := 0
	for _, dir := range []Direction{Eastbound, Westbound} {
		for lane := 0; lane < cfg.LanesPerDir; lane++ {
			spacing := cfg.Length / float64(max(perLane, 1))
			offset := r.rng.Child("laneoffset", uint64(dir+2), uint64(lane)).UniformRange(0, cfg.Length)
			for k := 0; k < perLane; k++ {
				vrng := r.rng.Child("veh", uint64(id))
				q := vrng.Float64()
				band := cfg.SpeedBands[lane]
				jitter := vrng.UniformRange(-0.3, 0.3) * spacing
				v := &Vehicle{
					ID:       id,
					Class:    ClassCar,
					Dir:      dir,
					Lane:     lane,
					S:        wrap(offset+float64(k)*spacing+jitter, cfg.Length),
					Quantile: q,
				}
				// Trucks keep to the slower half of the lanes ("keep right
				// except to pass"); the probability is scaled so the overall
				// share matches TruckFraction.
				truckLanes := (cfg.LanesPerDir + 1) / 2
				if cfg.TruckFraction > 0 && lane < truckLanes &&
					vrng.Bool(cfg.TruckFraction*float64(cfg.LanesPerDir)/float64(truckLanes)) {
					v.Class = ClassTruck
				}
				v.DesiredV = band.Low + q*(band.High-band.Low)
				if v.Class == ClassTruck && v.DesiredV > cfg.TruckMaxSpeed {
					v.DesiredV = cfg.TruckMaxSpeed
				}
				v.V = v.DesiredV * vrng.UniformRange(0.85, 1.0)
				r.vehicles = append(r.vehicles, v)
				id++
			}
		}
	}
	return r, nil
}

// Config returns the road configuration.
func (r *Road) Config() Config { return r.cfg }

// Add appends a hand-constructed vehicle (for deterministic scenarios and
// tests) and returns its index. The caller must set Dir, Lane, S, V and
// DesiredV; the ID is overwritten with the assigned index.
func (r *Road) Add(v *Vehicle) int {
	v.ID = len(r.vehicles)
	r.vehicles = append(r.vehicles, v)
	return v.ID
}

// Vehicles returns the live vehicle slice. Callers must not mutate it.
func (r *Road) Vehicles() []*Vehicle { return r.vehicles }

// NumVehicles returns the vehicle count.
func (r *Road) NumVehicles() int { return len(r.vehicles) }

// Elapsed returns total simulated seconds.
func (r *Road) Elapsed() float64 { return r.elapsed }

func wrap(s, length float64) float64 {
	s = math.Mod(s, length)
	if s < 0 {
		s += length
	}
	return s
}

// gapAhead returns the bumper-to-bumper gap (m) and speed of the nearest
// leader of v in the given lane, searching the ring. If the lane is empty
// apart from v, it returns an effectively infinite gap.
func (r *Road) gapAhead(v *Vehicle, lane int, sorted []*Vehicle) (gap float64, leaderV float64) {
	best := math.MaxFloat64
	leaderV = v.DesiredV
	for _, o := range sorted {
		if o == v || o.Lane != lane {
			continue
		}
		d := wrap(o.S-v.S, r.cfg.Length)
		//mmv2v:exact wrap returns exactly 0 only for identical ring positions (co-located sentinel)
		if d == 0 {
			d = r.cfg.Length // co-located treated as full lap ahead
		}
		if d < best {
			best = d
			leaderV = o.V
		}
	}
	//mmv2v:exact MaxFloat64 is an untouched initialization sentinel meaning "no leader found"
	if best == math.MaxFloat64 {
		return 1e9, leaderV
	}
	return best - r.cfg.VehicleLength, leaderV
}

// gapBehind returns the gap and the follower vehicle behind position s in a
// lane (nil if none).
func (r *Road) gapBehind(s float64, lane int, exclude *Vehicle, dirVehicles []*Vehicle) (gap float64, follower *Vehicle) {
	best := math.MaxFloat64
	for _, o := range dirVehicles {
		if o == exclude || o.Lane != lane {
			continue
		}
		d := wrap(s-o.S, r.cfg.Length)
		//mmv2v:exact wrap returns exactly 0 only for identical ring positions (self/co-located sentinel)
		if d == 0 {
			continue
		}
		if d < best {
			best = d
			follower = o
		}
	}
	if follower == nil {
		return 1e9, nil
	}
	return best - r.cfg.VehicleLength, follower
}

// idmAccel computes the IDM acceleration for speed v, desired speed v0, gap
// to leader and leader speed. The same kernel drives the ring road and the
// road-graph Network, so car-following dynamics are identical on both.
func (r *Road) idmAccel(v, v0, gap, leaderV float64) float64 {
	return idmAccel(r.cfg.IDM, v, v0, gap, leaderV)
}

func idmAccel(p IDMParams, v, v0, gap, leaderV float64) float64 {
	if gap < 0.1 {
		gap = 0.1
	}
	dv := v - leaderV
	sStar := p.MinGap + v*p.Headway + v*dv/(2*math.Sqrt(p.MaxAccel*p.ComfortDecel))
	if sStar < p.MinGap {
		sStar = p.MinGap
	}
	acc := p.MaxAccel * (1 - math.Pow(v/math.Max(v0, 0.1), p.Delta) - (sStar/gap)*(sStar/gap))
	// Bound braking at a physical emergency limit.
	const emergencyBrake = 8.0
	if acc < -emergencyBrake {
		acc = -emergencyBrake
	}
	return acc
}

// Step advances the simulation by dt seconds: one IDM acceleration update
// and integration for every vehicle, plus periodic MOBIL lane-change checks.
//
//mmv2v:hotpath the 5 ms mobility tick; pinned by BenchmarkStep*vpl
func (r *Road) Step(dt float64) {
	if dt <= 0 {
		return
	}
	// Rebuild the per-direction groups into reusable scratch slices:
	// westbound (index 0) before eastbound (index 1), the same order the old
	// per-direction map keys sorted into, so the update sequence is unchanged
	// and never depends on Go's randomized map iteration.
	for i := range r.groups {
		r.groups[i] = r.groups[i][:0]
	}
	for _, v := range r.vehicles {
		g := 0
		if v.Dir == Eastbound {
			g = 1
		}
		//mmv2v:alloc amortized: the scratch slice grows to fleet size on the first step and is reused afterwards
		r.groups[g] = append(r.groups[g], v)
	}
	for _, vs := range r.groups {
		sortVehiclesBySID(vs)
	}

	// Lane-change pass (MOBIL), evaluated at the configured cadence.
	if r.cfg.LaneChangeCheckEvery > 0 {
		for _, vs := range r.groups {
			for _, v := range vs {
				v.sinceLaneChange += dt
				due := math.Mod(r.elapsed+v.Quantile*r.cfg.LaneChangeCheckEvery, r.cfg.LaneChangeCheckEvery)
				if due < dt && v.sinceLaneChange >= r.cfg.MOBIL.Cooldown {
					r.maybeChangeLane(v, vs)
				}
			}
		}
	}

	// Acceleration pass.
	for _, vs := range r.groups {
		for _, v := range vs {
			gap, leaderV := r.gapAhead(v, v.Lane, vs)
			v.A = r.idmAccel(v.V, v.DesiredV, gap, leaderV)
		}
	}
	// Integration pass (semi-implicit Euler, speed clamped at 0).
	for _, v := range r.vehicles {
		newV := v.V + v.A*dt
		if newV < 0 {
			newV = 0
		}
		v.S = wrap(v.S+(v.V+newV)/2*dt, r.cfg.Length)
		v.V = newV
	}
	r.elapsed += dt
}

// maybeChangeLane applies the MOBIL incentive and safety criteria for moving
// v to an adjacent lane (same direction only).
func (r *Road) maybeChangeLane(v *Vehicle, dirVehicles []*Vehicle) {
	if v.Class == ClassTruck {
		return // trucks hold their lane
	}
	bestLane := v.Lane
	bestGainTotal := 0.0
	curGap, curLeaderV := r.gapAhead(v, v.Lane, dirVehicles)
	aCur := r.idmAccel(v.V, v.DesiredV, curGap, curLeaderV)
	for target := v.Lane - 1; target <= v.Lane+1; target += 2 {
		if target < 0 || target >= r.cfg.LanesPerDir {
			continue
		}
		band := r.cfg.SpeedBands[target]
		targetDesired := band.Low + v.Quantile*(band.High-band.Low)
		// Safety: new follower must not brake harder than SafeBraking.
		backGap, follower := r.gapBehind(v.S, target, v, dirVehicles)
		if backGap < r.cfg.IDM.MinGap {
			continue
		}
		if follower != nil {
			aFollower := r.idmAccel(follower.V, follower.DesiredV, backGap, v.V)
			if aFollower < -r.cfg.MOBIL.SafeBraking {
				continue
			}
		}
		newGap, newLeaderV := r.gapAhead(v, target, dirVehicles)
		if newGap < r.cfg.IDM.MinGap {
			continue
		}
		aNew := r.idmAccel(v.V, targetDesired, newGap, newLeaderV)
		// Incentive: own gain plus politeness-weighted effect on the new
		// follower, minus the switching threshold.
		gain := aNew - aCur
		if follower != nil {
			fGapBefore, _ := r.gapAhead(follower, target, dirVehicles)
			aFolBefore := r.idmAccel(follower.V, follower.DesiredV, fGapBefore, follower.V)
			backGapAfter := backGap
			aFolAfter := r.idmAccel(follower.V, follower.DesiredV, backGapAfter, v.V)
			gain += r.cfg.MOBIL.Politeness * (aFolAfter - aFolBefore)
		}
		if gain > r.cfg.MOBIL.Threshold && gain > bestGainTotal {
			bestGainTotal = gain
			bestLane = target
		}
	}
	if bestLane != v.Lane {
		v.Lane = bestLane
		band := r.cfg.SpeedBands[bestLane]
		v.DesiredV = band.Low + v.Quantile*(band.High-band.Low)
		v.sinceLaneChange = 0
	}
}

// vehicleLess orders vehicles by ascending position S, breaking exact ties
// by ID. The ID tiebreak makes the order total, so every sort of the same
// vehicle set yields the same permutation regardless of input order or sort
// algorithm — the property both the ring road's per-direction groups and the
// Network's per-lane groups rely on for determinism.
func vehicleLess(a, b *Vehicle) bool {
	if a.S < b.S {
		return true
	}
	if a.S > b.S {
		return false
	}
	return a.ID < b.ID
}

// sortVehiclesBySID sorts a vehicle slice by (S, ID) without allocating:
// sort.Slice would heap-allocate its closure and box the slice into an
// interface on every call, which the 5 ms mobility tick cannot afford.
// Short slices insertion-sort; longer ones go through a median-of-three
// quicksort with recursion on the smaller half, mirroring
// world.sortLinksByRank.
func sortVehiclesBySID(vs []*Vehicle) {
	for len(vs) > 24 {
		p := partitionVehicles(vs)
		// Recurse into the smaller half; loop on the larger to bound stack depth.
		if p < len(vs)-p-1 {
			sortVehiclesBySID(vs[:p])
			vs = vs[p+1:]
		} else {
			sortVehiclesBySID(vs[p+1:])
			vs = vs[:p]
		}
	}
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for j >= 0 && vehicleLess(v, vs[j]) {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

// partitionVehicles Lomuto-partitions vs around a median-of-three pivot and
// returns the pivot's final index.
func partitionVehicles(vs []*Vehicle) int {
	hi := len(vs) - 1
	m := hi / 2
	v0, vm, vh := vs[0], vs[m], vs[hi]
	var pi int
	switch {
	case vehicleLess(vm, v0) != vehicleLess(vh, v0):
		pi = 0
	case vehicleLess(vm, v0) != vehicleLess(vm, vh):
		pi = m
	default:
		pi = hi
	}
	vs[pi], vs[hi] = vs[hi], vs[pi]
	p := vs[hi]
	i := 0
	for j := 0; j < hi; j++ {
		if vehicleLess(vs[j], p) {
			vs[i], vs[j] = vs[j], vs[i]
			i++
		}
	}
	vs[i], vs[hi] = vs[hi], vs[i]
	return i
}

// laneCenterY returns the lateral (y) coordinate of a lane center.
// Eastbound lanes sit at negative y (right-hand traffic heading +x),
// westbound at positive y; lane 0 is outermost.
func (c Config) laneCenterY(dir Direction, lane int) float64 {
	// Innermost lane edge is MedianGap/2 from the road center line.
	inner := c.MedianGap / 2
	offset := inner + (float64(c.LanesPerDir-1-lane)+0.5)*c.LaneWidth
	if dir == Eastbound {
		return -offset
	}
	return offset
}

// Position returns the world-frame position of the vehicle center.
func (c Config) Position(v *Vehicle) geom.Vec {
	x := v.S
	if v.Dir == Westbound {
		x = c.Length - v.S
	}
	return geom.Vec{X: x, Y: c.laneCenterY(v.Dir, v.Lane)}
}

// Heading returns the compass bearing of travel: east is π/2, west is 3π/2.
func (c Config) Heading(v *Vehicle) geom.Bearing {
	if v.Dir == Eastbound {
		return geom.Bearing(math.Pi / 2)
	}
	return geom.Bearing(3 * math.Pi / 2)
}

// Dimensions returns the body length and width of a vehicle by class.
func (c Config) Dimensions(v *Vehicle) (length, width float64) {
	if v.Class == ClassTruck {
		return c.TruckLength, c.TruckWidth
	}
	return c.VehicleLength, c.VehicleWidth
}

// Body returns the oriented body rectangle of the vehicle for blockage tests.
func (c Config) Body(v *Vehicle) geom.Rect {
	l, wd := c.Dimensions(v)
	return geom.Rect{
		Center:  c.Position(v),
		Heading: c.Heading(v),
		HalfLen: l / 2,
		HalfWid: wd / 2,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
