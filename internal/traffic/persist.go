// Checkpoint support (DESIGN.md §11): both Fleet implementations can
// serialize their mutable state — per-vehicle kinematics plus the elapsed
// clock and RNG cursor — and restore it onto a freshly rebuilt instance.
//
// The restore contract is rebuild-then-load: the caller reconstructs the
// fleet from the same (config, seed) pair that produced the checkpoint, so
// structure (vehicle count, segment geometry, derived child streams) is
// regenerated deterministically, and LoadState then overwrites only the
// state that mobility steps mutate. Loaders validate every index they
// restore against the rebuilt structure, so a corrupted checkpoint yields
// a structured error, never a panic.
package traffic

import "mmv2v/internal/persist"

// saveVehicles appends the mutable fields of every vehicle.
func saveVehicles(e *persist.Encoder, vs []*Vehicle) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Int(v.ID)
		e.Int(int(v.Class))
		e.Int(int(v.Dir))
		e.Int(v.Lane)
		e.F64(v.S)
		e.F64(v.V)
		e.F64(v.A)
		e.Int(v.Seg)
		e.Int(v.Hops)
		e.F64(v.Quantile)
		e.F64(v.DesiredV)
		e.F64(v.sinceLaneChange)
	}
}

// vehicleWireBytes is the encoded size of one vehicle (12 fixed 8-byte
// fields), used to clamp the restored count against the input.
const vehicleWireBytes = 12 * 8

// loadVehicles restores the mutable fields of a rebuilt vehicle slice.
// The checkpointed count must match the rebuilt count exactly; validate is
// called per vehicle to reject structurally impossible indices.
func loadVehicles(d *persist.Decoder, vs []*Vehicle, validate func(v *Vehicle) bool) {
	n := d.Count(vehicleWireBytes)
	if d.Err() != nil {
		return
	}
	if n != len(vs) {
		d.Failf("checkpoint has %d vehicles, rebuilt fleet has %d", n, len(vs))
		return
	}
	for _, v := range vs {
		v.ID = d.Int()
		v.Class = Class(d.Int())
		v.Dir = Direction(d.Int())
		v.Lane = d.Int()
		v.S = d.F64()
		v.V = d.F64()
		v.A = d.F64()
		v.Seg = d.Int()
		v.Hops = d.Int()
		v.Quantile = d.F64()
		v.DesiredV = d.F64()
		v.sinceLaneChange = d.F64()
		if d.Err() != nil {
			return
		}
		if v.Class != ClassCar && v.Class != ClassTruck {
			d.Failf("vehicle %d has unknown class %d", v.ID, v.Class)
			return
		}
		if !validate(v) {
			d.Failf("vehicle %d has out-of-range lane/segment (%d, %d)", v.ID, v.Lane, v.Seg)
			return
		}
	}
}

// SaveState appends the road's mutable state: elapsed time, RNG cursor and
// every vehicle's kinematics.
func (r *Road) SaveState(e *persist.Encoder) {
	e.F64(r.elapsed)
	e.U64(r.rng.Cursor())
	saveVehicles(e, r.vehicles)
}

// LoadState restores state checkpointed by SaveState onto a road rebuilt
// from the same (config, seed).
func (r *Road) LoadState(d *persist.Decoder) error {
	elapsed := d.F64()
	cursor := d.U64()
	loadVehicles(d, r.vehicles, func(v *Vehicle) bool {
		return v.Lane >= 0 && v.Lane < r.cfg.LanesPerDir &&
			(v.Dir == Eastbound || v.Dir == Westbound)
	})
	if err := d.Err(); err != nil {
		return err
	}
	r.elapsed = elapsed
	r.rng.SetCursor(cursor)
	return nil
}

// SaveState appends the network's mutable state: elapsed time, RNG cursor
// and every vehicle's kinematics. Segment geometry, routing tables and the
// route seed are derived from (config, seed) and rebuilt, not stored.
func (nw *Network) SaveState(e *persist.Encoder) {
	e.F64(nw.elapsed)
	e.U64(nw.rng.Cursor())
	saveVehicles(e, nw.vehicles)
}

// LoadState restores state checkpointed by SaveState onto a network
// rebuilt from the same (config, seed).
func (nw *Network) LoadState(d *persist.Decoder) error {
	elapsed := d.F64()
	cursor := d.U64()
	loadVehicles(d, nw.vehicles, func(v *Vehicle) bool {
		return v.Seg >= 0 && v.Seg < len(nw.segs) &&
			v.Lane >= 0 && v.Lane < nw.segs[v.Seg].spec.Lanes
	})
	if err := d.Err(); err != nil {
		return err
	}
	nw.elapsed = elapsed
	nw.rng.SetCursor(cursor)
	return nil
}
