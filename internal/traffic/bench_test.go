package traffic

import (
	"testing"

	"mmv2v/internal/xrand"
)

func benchStep(b *testing.B, density float64) {
	b.Helper()
	r, err := New(DefaultConfig(density), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0.005)
	}
}

func BenchmarkStep15vpl(b *testing.B) { benchStep(b, 15) }
func BenchmarkStep30vpl(b *testing.B) { benchStep(b, 30) }

// BenchmarkStep60vpl matches the world bench ceiling: twice the paper's top
// density, exercising the per-lane group rebuild at its worst case.
func BenchmarkStep60vpl(b *testing.B) { benchStep(b, 60) }

// BenchmarkStepGrid10k measures one 5 ms mobility step of the 10k-vehicle
// city network — segment group rebuilds, IDM and intersection handoffs.
func BenchmarkStepGrid10k(b *testing.B) {
	nw, err := NewNetwork(DefaultGridConfig(10000).Network(), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step(0.005)
	}
}
