package traffic

import (
	"testing"

	"mmv2v/internal/xrand"
)

func benchStep(b *testing.B, density float64) {
	b.Helper()
	r, err := New(DefaultConfig(density), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0.005)
	}
}

func BenchmarkStep15vpl(b *testing.B) { benchStep(b, 15) }
func BenchmarkStep30vpl(b *testing.B) { benchStep(b, 30) }
