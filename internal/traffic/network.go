// Road-graph mobility: a Network of directed road segments joined at
// intersection nodes, with IDM car-following per (segment, lane) and
// deterministic multi-segment routing. This generalizes the single ring
// Road to city-scale topologies (grids, merges, arbitrary graphs) while
// keeping every update a pure function of (config, seed, time): route
// choices at intersections are hashes of (route seed, vehicle, hop count),
// never draws from a shared stream, so vehicle trajectories are independent
// of processing order and identical across worker counts.
//
// Segment frames: a directed segment runs from node From to node To; a
// vehicle's arc position S grows along the travel direction and its lane
// offset is measured to the right of travel (right-hand traffic), lane 0
// outermost. A Wrap segment closes on itself (a ring), which is how the
// legacy straight road is expressed as a trivial network: two opposing
// closed segments sharing one roadbed.
package traffic

import (
	"fmt"
	"math"

	"mmv2v/internal/geom"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

// SegSpec declares one directed road segment of a network.
type SegSpec struct {
	// From and To index NetworkConfig.Nodes.
	From, To int
	// Lanes is the lane count of this directed segment.
	Lanes int
	// Wrap closes the segment on itself: vehicles leaving the end re-enter
	// the start, holding density constant (the ring-road boundary trick).
	// A Wrap segment ignores node routing.
	Wrap bool
}

// NetworkConfig describes a road-graph scenario.
type NetworkConfig struct {
	// Nodes are intersection (or endpoint) positions in world meters.
	Nodes []geom.Vec
	// Segs are the directed segments joining them.
	Segs []SegSpec
	// LaneWidth is the lane width in meters.
	LaneWidth float64
	// HalfGap is the distance from a segment's centerline to the innermost
	// lane edge (half the median on a two-way roadbed).
	HalfGap float64
	// SpeedBands gives the desired-speed band per lane index, lane 0
	// outermost; must cover the widest segment.
	SpeedBands []SpeedBand
	// Vehicles is the total vehicle count placed by NewNetwork, spread
	// round-robin over (segment, lane) pairs with jittered even spacing.
	Vehicles int
	// VehicleLength and VehicleWidth are car body dimensions in meters.
	VehicleLength float64
	VehicleWidth  float64
	IDM           IDMParams
}

// Validate reports configuration errors.
func (c NetworkConfig) Validate() error {
	switch {
	case len(c.Nodes) == 0:
		return fmt.Errorf("traffic: network has no nodes")
	case len(c.Segs) == 0:
		return fmt.Errorf("traffic: network has no segments")
	case c.LaneWidth <= 0:
		return fmt.Errorf("traffic: non-positive lane width %v", c.LaneWidth)
	case c.HalfGap < 0:
		return fmt.Errorf("traffic: negative half gap %v", c.HalfGap)
	case c.Vehicles < 0:
		return fmt.Errorf("traffic: negative vehicle count %d", c.Vehicles)
	case c.VehicleLength <= 0 || c.VehicleWidth <= 0:
		return fmt.Errorf("traffic: non-positive vehicle dimensions %vx%v", c.VehicleLength, c.VehicleWidth)
	}
	for i, b := range c.SpeedBands {
		if b.Low <= 0 || b.High < b.Low {
			return fmt.Errorf("traffic: invalid speed band %d: [%v, %v]", i, b.Low, b.High)
		}
	}
	hasOut := make([]bool, len(c.Nodes))
	for _, s := range c.Segs {
		if s.From >= 0 && s.From < len(c.Nodes) {
			hasOut[s.From] = true
		}
	}
	for i, s := range c.Segs {
		switch {
		case s.From < 0 || s.From >= len(c.Nodes) || s.To < 0 || s.To >= len(c.Nodes):
			return fmt.Errorf("traffic: segment %d references missing node (%d -> %d)", i, s.From, s.To)
		case s.From == s.To:
			return fmt.Errorf("traffic: segment %d is a self-loop at node %d", i, s.From)
		case s.Lanes <= 0:
			return fmt.Errorf("traffic: segment %d has %d lanes", i, s.Lanes)
		case s.Lanes > len(c.SpeedBands):
			return fmt.Errorf("traffic: segment %d has %d lanes but only %d speed bands", i, s.Lanes, len(c.SpeedBands))
		case c.Nodes[s.From] == c.Nodes[s.To]:
			return fmt.Errorf("traffic: segment %d has zero length", i)
		case !s.Wrap && !hasOut[s.To]:
			return fmt.Errorf("traffic: segment %d ends at node %d with no outgoing segment", i, s.To)
		}
	}
	return nil
}

// segGeom is the precomputed frame of one directed segment.
type segGeom struct {
	spec    SegSpec
	start   geom.Vec
	u       geom.Vec // unit vector along travel
	n       geom.Vec // unit right-normal of travel (lane offsets grow this way)
	length  float64
	heading geom.Bearing
	// laneBase indexes this segment's lane 0 in the flat group table.
	laneBase int
	// rev is the index of the opposing segment on the same roadbed (-1 if
	// none); routing avoids immediate U-turns onto it when possible.
	rev int
}

// Network is a running road-graph traffic simulation. Create with
// NewNetwork; not safe for concurrent use. It implements Fleet.
type Network struct {
	cfg  NetworkConfig //mmv2v:derived construction parameter re-supplied by the restore caller
	segs []segGeom     //mmv2v:derived precomputed road-graph geometry derived from cfg by NewNetwork
	// outs holds outgoing segment indices per node, ascending.
	outs     [][]int //mmv2v:derived adjacency index derived from cfg topology by NewNetwork
	vehicles []*Vehicle
	rng      *xrand.Source
	// routeSeed drives the pure-hash route choice at intersections.
	routeSeed uint64 //mmv2v:derived derived from the rng construction seed; constant per trial
	elapsed   float64
	// groups[laneBase+lane] holds the segment-lane's vehicles sorted by S;
	// rebuilt each step from persistent scratch slices.
	groups [][]*Vehicle //mmv2v:derived per-step sort scratch; rebuilt from vehicles every Step
}

// NewNetwork builds a network and populates it with cfg.Vehicles vehicles
// spread round-robin over (segment, lane) pairs at jittered even spacing,
// with desired speeds drawn from the lane's band — the same placement
// discipline as the ring road's density fill.
func NewNetwork(cfg NetworkConfig, rng *xrand.Source) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nw := &Network{cfg: cfg, rng: rng.Child("network")}
	nw.routeSeed = xrand.Mix(nw.rng.Seed(), xrand.HashString("routes"))
	nw.outs = make([][]int, len(cfg.Nodes))
	lanes := 0
	for i, s := range cfg.Segs {
		a, b := cfg.Nodes[s.From], cfg.Nodes[s.To]
		d := b.Sub(a)
		length := d.Norm().M()
		u := d.Scale(1 / length)
		sg := segGeom{
			spec:     s,
			start:    a,
			u:        u,
			n:        geom.Vec{X: u.Y, Y: -u.X},
			length:   length,
			heading:  a.BearingTo(b),
			laneBase: lanes,
			rev:      -1,
		}
		lanes += s.Lanes
		nw.segs = append(nw.segs, sg)
		nw.outs[s.From] = append(nw.outs[s.From], i)
	}
	// Segments were appended in index order, so outs lists are ascending.
	for i := range nw.segs {
		for j := range nw.segs {
			if nw.segs[j].spec.From == nw.segs[i].spec.To && nw.segs[j].spec.To == nw.segs[i].spec.From {
				nw.segs[i].rev = j
				break
			}
		}
	}
	nw.groups = make([][]*Vehicle, lanes)
	nw.place(cfg.Vehicles)
	return nw, nil
}

// place fills the network with n vehicles: vehicle i goes to (segment, lane)
// pair i mod pairs at slot i div pairs, with per-vehicle child RNG streams
// for jitter, aggressiveness quantile and initial speed.
func (nw *Network) place(n int) {
	pairs := len(nw.groups)
	perPair := (n + pairs - 1) / max(pairs, 1)
	for id := 0; id < n; id++ {
		p := id % pairs
		seg, lane := nw.segLaneOf(p)
		sg := &nw.segs[seg]
		slot := id / pairs
		spacing := sg.length / float64(max(perPair, 1))
		vrng := nw.rng.Child("veh", uint64(id))
		q := vrng.Float64()
		jitter := vrng.UniformRange(-0.3, 0.3) * spacing
		band := nw.cfg.SpeedBands[lane]
		v := &Vehicle{
			ID:       id,
			Class:    ClassCar,
			Seg:      seg,
			Lane:     lane,
			S:        wrap(float64(slot)*spacing+jitter, sg.length),
			Quantile: q,
		}
		v.DesiredV = band.Low + q*(band.High-band.Low)
		v.V = v.DesiredV * vrng.UniformRange(0.85, 1.0)
		nw.vehicles = append(nw.vehicles, v)
	}
}

// segLaneOf inverts the flat (segment, lane) pair index.
func (nw *Network) segLaneOf(p int) (seg, lane int) {
	for i := range nw.segs {
		if p < nw.segs[i].laneBase+nw.segs[i].spec.Lanes {
			return i, p - nw.segs[i].laneBase
		}
	}
	last := len(nw.segs) - 1
	return last, nw.segs[last].spec.Lanes - 1
}

// Config returns the network configuration.
func (nw *Network) Config() NetworkConfig { return nw.cfg }

// NumSegments returns the directed segment count.
func (nw *Network) NumSegments() int { return len(nw.segs) }

// SegLength returns the length of segment s in meters.
func (nw *Network) SegLength(s int) units.Meter { return units.Meter(nw.segs[s].length) }

// Add appends a hand-constructed vehicle (for deterministic scenarios and
// tests) and returns its index. The caller sets Seg, Lane, S, V and
// DesiredV; the ID is overwritten with the assigned index.
func (nw *Network) Add(v *Vehicle) int {
	v.ID = len(nw.vehicles)
	nw.vehicles = append(nw.vehicles, v)
	return v.ID
}

// Vehicles returns the live vehicle slice. Callers must not mutate it.
func (nw *Network) Vehicles() []*Vehicle { return nw.vehicles }

// NumVehicles returns the vehicle count.
func (nw *Network) NumVehicles() int { return len(nw.vehicles) }

// Elapsed returns total simulated seconds.
func (nw *Network) Elapsed() float64 { return nw.elapsed }

// Pose returns the world-frame pose of vehicle i from its segment frame:
// start + S·u + offset·n, heading along the segment.
func (nw *Network) Pose(i int) (geom.Vec, geom.Bearing, units.MeterPerSec) {
	v := nw.vehicles[i]
	sg := &nw.segs[v.Seg]
	off := nw.laneOffset(sg, v.Lane)
	pos := geom.Vec{
		X: sg.start.X + sg.u.X*v.S + sg.n.X*off,
		Y: sg.start.Y + sg.u.Y*v.S + sg.n.Y*off,
	}
	return pos, sg.heading, units.MeterPerSec(v.V)
}

// laneOffset is the rightward offset of a lane center from the segment
// centerline; lane 0 is outermost, mirroring the ring road's lane geometry.
func (nw *Network) laneOffset(sg *segGeom, lane int) float64 {
	return nw.cfg.HalfGap + (float64(sg.spec.Lanes-1-lane)+0.5)*nw.cfg.LaneWidth
}

// BodyDims returns the body dimensions of vehicle i.
func (nw *Network) BodyDims(i int) (length, width float64) {
	return nw.cfg.VehicleLength, nw.cfg.VehicleWidth
}

// Bounds returns the static extent of the network: the node bounding box
// padded by the widest possible lane offset plus one body length.
func (nw *Network) Bounds() (min, max geom.Vec) {
	min, max = nw.cfg.Nodes[0], nw.cfg.Nodes[0]
	maxLanes := 0
	for _, s := range nw.cfg.Segs {
		if s.Lanes > maxLanes {
			maxLanes = s.Lanes
		}
	}
	for _, p := range nw.cfg.Nodes {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	pad := nw.cfg.HalfGap + float64(maxLanes)*nw.cfg.LaneWidth + nw.cfg.VehicleLength
	return geom.Vec{X: min.X - pad, Y: min.Y - pad}, geom.Vec{X: max.X + pad, Y: max.Y + pad}
}

// nextSeg returns the segment vehicle v continues onto when it reaches the
// end of segment s — a pure hash of (route seed, vehicle, hop count) over
// the node's outgoing segments, skipping the immediate U-turn when any
// other choice exists. Determinism does not depend on call order, so the
// leader-peek during the acceleration pass and the actual handoff always
// agree.
func (nw *Network) nextSeg(s int, v *Vehicle) int {
	sg := &nw.segs[s]
	if sg.spec.Wrap {
		return s
	}
	outs := nw.outs[sg.spec.To]
	if len(outs) == 1 {
		return outs[0]
	}
	n := len(outs)
	skip := -1
	if sg.rev >= 0 {
		for k, o := range outs {
			if o == sg.rev {
				skip, n = k, n-1
				break
			}
		}
	}
	pick := int(xrand.Mix(nw.routeSeed, uint64(v.ID), uint64(v.Hops)) % uint64(n))
	if skip >= 0 && pick >= skip {
		pick++
	}
	return outs[pick]
}

// rebuildGroups sorts vehicles into per-(segment, lane) groups ordered by
// arc position (ties by ID, so the order is total and deterministic).
func (nw *Network) rebuildGroups() {
	for i := range nw.groups {
		nw.groups[i] = nw.groups[i][:0]
	}
	for _, v := range nw.vehicles {
		g := nw.segs[v.Seg].laneBase + v.Lane
		//mmv2v:alloc amortized: group slices grow to steady-state lane occupancy and are reused afterwards
		nw.groups[g] = append(nw.groups[g], v)
	}
	for i := range nw.groups {
		sortVehiclesBySID(nw.groups[i])
	}
}

// leadGap returns the bumper-to-bumper gap and leader speed for the vehicle
// at index k of group g on segment s. The last vehicle of a wrap segment
// sees the first vehicle one lap ahead; on an open segment it peeks into
// its route's next segment (same lane, clamped), so platoons follow through
// intersections instead of teleport-braking.
func (nw *Network) leadGap(s int, vs []*Vehicle, k int) (gap, leaderV float64) {
	v := vs[k]
	sg := &nw.segs[s]
	if k+1 < len(vs) {
		return vs[k+1].S - v.S - nw.cfg.VehicleLength, vs[k+1].V
	}
	if sg.spec.Wrap {
		if len(vs) > 1 {
			return sg.length - v.S + vs[0].S - nw.cfg.VehicleLength, vs[0].V
		}
		return 1e9, v.DesiredV
	}
	ns := nw.nextSeg(s, v)
	nsg := &nw.segs[ns]
	lane := v.Lane
	if lane >= nsg.spec.Lanes {
		lane = nsg.spec.Lanes - 1
	}
	ahead := nw.groups[nsg.laneBase+lane]
	if len(ahead) == 0 {
		return 1e9, v.DesiredV
	}
	return sg.length - v.S + ahead[0].S - nw.cfg.VehicleLength, ahead[0].V
}

// Step advances the network by dt seconds: one IDM acceleration update per
// vehicle against its in-lane (or across-intersection) leader, semi-implicit
// Euler integration, and deterministic segment handoff at ends.
//
//mmv2v:hotpath the 5 ms city-grid mobility tick; pinned by BenchmarkStepGrid10k
func (nw *Network) Step(dt float64) {
	if dt <= 0 {
		return
	}
	nw.rebuildGroups()
	for s := range nw.segs {
		sg := &nw.segs[s]
		for lane := 0; lane < sg.spec.Lanes; lane++ {
			vs := nw.groups[sg.laneBase+lane]
			for k, v := range vs {
				gap, leaderV := nw.leadGap(s, vs, k)
				v.A = idmAccel(nw.cfg.IDM, v.V, v.DesiredV, gap, leaderV)
			}
		}
	}
	for _, v := range nw.vehicles {
		newV := v.V + v.A*dt
		if newV < 0 {
			newV = 0
		}
		v.S += (v.V + newV) / 2 * dt
		v.V = newV
		nw.handoff(v)
	}
	nw.elapsed += dt
}

// handoff moves a vehicle past segment ends: wrap segments fold S back into
// [0, length); open segments advance onto the hash-routed next segment,
// carrying the overshoot so arc progress is continuous through the node.
func (nw *Network) handoff(v *Vehicle) {
	for {
		sg := &nw.segs[v.Seg]
		if v.S < sg.length {
			return
		}
		if sg.spec.Wrap {
			v.S = wrap(v.S, sg.length)
			return
		}
		next := nw.nextSeg(v.Seg, v)
		v.S -= sg.length
		v.Seg = next
		v.Hops++
		if nsg := &nw.segs[next]; v.Lane >= nsg.spec.Lanes {
			v.Lane = nsg.spec.Lanes - 1
		}
		band := nw.cfg.SpeedBands[v.Lane]
		v.DesiredV = band.Low + v.Quantile*(band.High-band.Low)
	}
}
