package traffic

import (
	"mmv2v/internal/geom"
	"mmv2v/internal/persist"
	"mmv2v/internal/units"
)

// Fleet is the kinematic substrate the world layer binds to: any mobility
// model that can advance vehicles in time and report each vehicle's pose and
// body footprint. The straight ring road (Road) is the trivial special case
// — one road expressed as two closed directed segments — and Network is the
// general road-graph implementation. The world layer consumes only this
// interface, so channel, medium and protocol code is agnostic to whether
// vehicles drive a 1 km segment or a city grid.
type Fleet interface {
	// Step advances the mobility model by dt seconds.
	Step(dt float64)
	// NumVehicles returns the vehicle count (constant over a run).
	NumVehicles() int
	// Elapsed returns total simulated seconds.
	Elapsed() float64
	// Pose returns vehicle i's world-frame position, compass heading of
	// travel and speed.
	Pose(i int) (pos geom.Vec, heading geom.Bearing, speed units.MeterPerSec)
	// BodyDims returns vehicle i's body length and width in meters.
	BodyDims(i int) (length, width float64)
	// Bounds returns a static axis-aligned box containing every vehicle
	// center for the whole run (the world layer sizes its spatial-hash grid
	// from it).
	Bounds() (min, max geom.Vec)
	// SaveState appends the fleet's mutable state (kinematics, elapsed
	// time, RNG cursor) for a checkpoint (DESIGN.md §11).
	SaveState(e *persist.Encoder)
	// LoadState restores checkpointed state onto a fleet rebuilt from the
	// same (config, seed). Corrupted input returns a structured error.
	LoadState(d *persist.Decoder) error
}

// Pose returns the world-frame pose of vehicle i. It is the Fleet view of
// Config.Position/Config.Heading, so the straight road produces exactly the
// same coordinates through the interface as it did before the road-graph
// abstraction existed.
func (r *Road) Pose(i int) (geom.Vec, geom.Bearing, units.MeterPerSec) {
	v := r.vehicles[i]
	return r.cfg.Position(v), r.cfg.Heading(v), units.MeterPerSec(v.V)
}

// BodyDims returns the body dimensions of vehicle i by class.
func (r *Road) BodyDims(i int) (length, width float64) {
	return r.cfg.Dimensions(r.vehicles[i])
}

// Bounds returns the fixed extent of the ring road: x spans the segment,
// y spans the two lane decks around the median.
func (r *Road) Bounds() (min, max geom.Vec) {
	halfWidth := r.cfg.MedianGap/2 + float64(r.cfg.LanesPerDir)*r.cfg.LaneWidth
	return geom.Vec{X: 0, Y: -halfWidth}, geom.Vec{X: r.cfg.Length, Y: halfWidth}
}
