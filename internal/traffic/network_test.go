package traffic

import (
	"math"
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/xrand"
)

func testNetConfig() NetworkConfig {
	g := DefaultGridConfig(120)
	g.Rows, g.Cols = 3, 3
	g.BlockM = 200
	return g.Network()
}

func TestNetworkConfigValidate(t *testing.T) {
	base := testNetConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid grid config rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*NetworkConfig)
	}{
		{"no nodes", func(c *NetworkConfig) { c.Nodes = nil }},
		{"no segments", func(c *NetworkConfig) { c.Segs = nil }},
		{"self loop", func(c *NetworkConfig) { c.Segs[0].To = c.Segs[0].From }},
		{"missing node", func(c *NetworkConfig) { c.Segs[0].To = len(c.Nodes) }},
		{"zero lanes", func(c *NetworkConfig) { c.Segs[0].Lanes = 0 }},
		{"lanes exceed bands", func(c *NetworkConfig) { c.Segs[0].Lanes = len(c.SpeedBands) + 1 }},
		{"zero length", func(c *NetworkConfig) { c.Nodes[c.Segs[0].To] = c.Nodes[c.Segs[0].From] }},
		{"dead end", func(c *NetworkConfig) {
			// A node reachable by segment 0 but with every outgoing segment
			// removed strands vehicles.
			to := c.Segs[0].To
			kept := c.Segs[:0]
			for _, s := range c.Segs {
				if s.From != to {
					kept = append(kept, s)
				}
			}
			c.Segs = kept
		}},
		{"negative vehicles", func(c *NetworkConfig) { c.Vehicles = -1 }},
		{"bad lane width", func(c *NetworkConfig) { c.LaneWidth = 0 }},
	}
	for _, tc := range cases {
		c := testNetConfig()
		// Deep-copy the mutable slices so mutations stay local.
		c.Nodes = append([]geom.Vec(nil), c.Nodes...)
		c.Segs = append([]SegSpec(nil), c.Segs...)
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", tc.name)
		}
	}
}

// TestRoadNetworkPoseEquivalence pins the claim that the legacy straight
// road is the trivial two-wrap-segment network: for every (direction, lane,
// arc position), the network's segment-frame pose reproduces the ring
// road's world coordinates and heading bit-for-bit.
func TestRoadNetworkPoseEquivalence(t *testing.T) {
	roadCfg := DefaultConfig(15)
	nc := RoadNetwork(roadCfg, 0)
	nw, err := NewNetwork(nc, xrand.New(1))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for seg, dir := range []Direction{Eastbound, Westbound} {
		for lane := 0; lane < roadCfg.LanesPerDir; lane++ {
			for _, s := range []float64{0, 1.25, 499.5, 999.75} {
				rv := &Vehicle{Dir: dir, Lane: lane, S: s}
				wantPos := roadCfg.Position(rv)
				wantHead := roadCfg.Heading(rv)

				id := nw.Add(&Vehicle{Seg: seg, Lane: lane, S: s})
				gotPos, gotHead, _ := nw.Pose(id)
				if gotPos != wantPos || gotHead != wantHead {
					t.Fatalf("seg %d (%v) lane %d s %v: network pose (%v, %v) != road pose (%v, %v)",
						seg, dir, lane, s, gotPos, gotHead, wantPos, wantHead)
				}
			}
		}
	}
}

func TestNetworkStepDeterministic(t *testing.T) {
	build := func() *Network {
		nw, err := NewNetwork(testNetConfig(), xrand.New(42))
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		return nw
	}
	a, b := build(), build()
	for tick := 0; tick < 400; tick++ {
		a.Step(0.05)
		b.Step(0.05)
	}
	for i := range a.Vehicles() {
		va, vb := a.Vehicles()[i], b.Vehicles()[i]
		if *va != *vb {
			t.Fatalf("vehicle %d diverged after identical steps: %+v vs %+v", i, va, vb)
		}
	}
}

// TestNetworkStepInvariants drives the small grid long enough for many
// intersection handoffs and checks the kinematic contract: arc positions
// stay inside their segment, speeds stay non-negative, poses stay inside
// Bounds, and handoffs accumulate in Hops.
func TestNetworkStepInvariants(t *testing.T) {
	nw, err := NewNetwork(testNetConfig(), xrand.New(7))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	min, max := nw.Bounds()
	for tick := 0; tick < 2000; tick++ {
		nw.Step(0.05)
	}
	hops := 0
	for i, v := range nw.Vehicles() {
		if v.Seg < 0 || v.Seg >= nw.NumSegments() {
			t.Fatalf("vehicle %d on missing segment %d", i, v.Seg)
		}
		if v.S < 0 || v.S >= nw.SegLength(v.Seg).M() {
			t.Fatalf("vehicle %d arc position %v outside segment [0, %v)", i, v.S, nw.SegLength(v.Seg))
		}
		if v.V < 0 {
			t.Fatalf("vehicle %d has negative speed %v", i, v.V)
		}
		pos, _, _ := nw.Pose(i)
		if pos.X < min.X || pos.X > max.X || pos.Y < min.Y || pos.Y > max.Y {
			t.Fatalf("vehicle %d pose %v escaped bounds [%v, %v]", i, pos, min, max)
		}
		hops += v.Hops
	}
	if hops == 0 {
		t.Fatalf("no vehicle crossed an intersection in 100 simulated seconds")
	}
}

// TestNetworkHandoffContinuity checks that crossing a node never teleports
// a vehicle: per-tick displacement stays bounded by speed.
func TestNetworkHandoffContinuity(t *testing.T) {
	nw, err := NewNetwork(testNetConfig(), xrand.New(3))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	n := nw.NumVehicles()
	prev := make([]geom.Vec, n)
	prevSeg := make([]int, n)
	for i := 0; i < n; i++ {
		prev[i], _, _ = nw.Pose(i)
		prevSeg[i] = nw.Vehicles()[i].Seg
	}
	const dt = 0.05
	topV := 0.0
	for _, b := range nw.cfg.SpeedBands {
		topV = math.Max(topV, b.High)
	}
	// One tick advances at most topV·dt along the road (IDM never exceeds
	// the lane's desired-speed band for long, and handoffs carry overshoot
	// rather than re-seeding S).
	arcLimit := topV*dt*1.25 + 1e-9
	for tick := 0; tick < 1000; tick++ {
		nw.Step(dt)
		for i := 0; i < n; i++ {
			pos, _, _ := nw.Pose(i)
			seg := nw.Vehicles()[i].Seg
			limit := arcLimit
			if seg != prevSeg[i] {
				// Across a handoff the vehicle may also swing laterally into
				// the new segment's lane frame, but never further than one
				// full roadbed span.
				limit += 2 * (nw.cfg.HalfGap + float64(nw.segs[seg].spec.Lanes)*nw.cfg.LaneWidth)
			}
			if stepM := pos.Dist(prev[i]).M(); stepM > limit {
				t.Fatalf("tick %d vehicle %d moved %.3f m in one %.0f ms tick (limit %.3f)",
					tick, i, stepM, dt*1000, limit)
			}
			prev[i], prevSeg[i] = pos, seg
		}
	}
}

// TestNetworkRoutingAvoidsUTurn checks the hash router never picks the
// opposing segment of the one just finished when another exit exists.
func TestNetworkRoutingAvoidsUTurn(t *testing.T) {
	nw, err := NewNetwork(testNetConfig(), xrand.New(11))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for s := range nw.segs {
		if nw.segs[s].spec.Wrap {
			continue
		}
		rev := nw.segs[s].rev
		if rev < 0 || len(nw.outs[nw.segs[s].spec.To]) < 2 {
			continue
		}
		v := &Vehicle{ID: 917}
		for hops := 0; hops < 64; hops++ {
			v.Hops = hops
			if nw.nextSeg(s, v) == rev {
				t.Fatalf("segment %d: route hash picked U-turn onto %d at hops %d", s, rev, hops)
			}
		}
	}
}

// TestGridNetworkGeometry sanity-checks the grid expansion: node count,
// both-way segments per edge, and orthogonal headings.
func TestGridNetworkGeometry(t *testing.T) {
	g := DefaultGridConfig(0)
	g.Rows, g.Cols = 4, 5
	nc := g.Network()
	if len(nc.Nodes) != 20 {
		t.Fatalf("expected 20 nodes, got %d", len(nc.Nodes))
	}
	// Edges: horizontal 4*(5-1)=16, vertical 5*(4-1)=15, two directed segs each.
	if want := 2 * (16 + 15); len(nc.Segs) != want {
		t.Fatalf("expected %d segments, got %d", want, len(nc.Segs))
	}
	nw, err := NewNetwork(nc, xrand.New(5))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	quarter := math.Pi / 2
	for s := 0; s < nw.NumSegments(); s++ {
		h := float64(nw.segs[s].heading)
		k := math.Round(h / quarter)
		if math.Abs(h-k*quarter) > 1e-12 {
			t.Fatalf("segment %d heading %v is not axis-aligned", s, h)
		}
	}
}

func TestNetworkPlacementSpreads(t *testing.T) {
	nc := testNetConfig()
	nc.Vehicles = 240
	nw, err := NewNetwork(nc, xrand.New(9))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if nw.NumVehicles() != 240 {
		t.Fatalf("expected 240 vehicles, got %d", nw.NumVehicles())
	}
	occupied := make(map[int]int)
	for _, v := range nw.Vehicles() {
		occupied[nw.segs[v.Seg].laneBase+v.Lane]++
	}
	if len(occupied) != len(nw.groups) {
		t.Fatalf("round-robin placement left %d of %d segment-lanes empty",
			len(nw.groups)-len(occupied), len(nw.groups))
	}
}
