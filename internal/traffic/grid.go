package traffic

import (
	"fmt"

	"mmv2v/internal/geom"
)

// GridConfig describes a Manhattan-grid road network: Rows × Cols
// intersections spaced BlockM apart, every adjacent pair joined by one
// directed segment each way with Lanes lanes — the city-scale scenario the
// ROADMAP's urban road-graph item calls for.
type GridConfig struct {
	// Rows and Cols are intersection counts per side (≥ 2 each).
	Rows, Cols int
	// BlockM is the block edge length in meters.
	BlockM float64
	// Lanes per directed segment.
	Lanes int
	// LaneWidth in meters.
	LaneWidth float64
	// HalfGap is the centerline-to-innermost-lane-edge distance (m).
	HalfGap float64
	// Vehicles is the total vehicle count placed on the grid.
	Vehicles int
	// SpeedBands gives the desired-speed band per lane index.
	SpeedBands []SpeedBand
	// VehicleLength and VehicleWidth are car body dimensions in meters.
	VehicleLength float64
	VehicleWidth  float64
	IDM           IDMParams
}

// DefaultGridConfig returns an urban grid sized for the given vehicle
// count: 12×12 intersections, 500 m blocks, two lanes each way at 30–60
// km/h. The 264 km of directed roadway put 10k vehicles at ≈19 vehicles
// per lane-km — inside the paper's 15–30 vpl evaluation band, so per-street
// local density (which drives link-table and blockage cost) matches the
// straight-road scenarios while the fleet is ~28× larger.
func DefaultGridConfig(vehicles int) GridConfig {
	return GridConfig{
		Rows:      12,
		Cols:      12,
		BlockM:    500,
		Lanes:     2,
		LaneWidth: 3.5,
		HalfGap:   0.5,
		Vehicles:  vehicles,
		SpeedBands: []SpeedBand{
			{KmhToMs(30), KmhToMs(50)},
			{KmhToMs(40), KmhToMs(60)},
		},
		VehicleLength: 4.6,
		VehicleWidth:  1.8,
		IDM:           DefaultIDM(),
	}
}

// Validate reports configuration errors.
func (c GridConfig) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("traffic: grid needs at least 2x2 intersections, got %dx%d", c.Rows, c.Cols)
	}
	if c.BlockM <= 0 {
		return fmt.Errorf("traffic: non-positive block length %v", c.BlockM)
	}
	return c.Network().Validate()
}

// Network expands the grid into an explicit NetworkConfig: node (r, c) sits
// at (c·BlockM, r·BlockM) and every horizontal and vertical edge carries
// one directed segment per travel direction.
func (c GridConfig) Network() NetworkConfig {
	nodes := make([]geom.Vec, 0, c.Rows*c.Cols)
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			nodes = append(nodes, geom.Vec{X: float64(col) * c.BlockM, Y: float64(r) * c.BlockM})
		}
	}
	id := func(r, col int) int { return r*c.Cols + col }
	var segs []SegSpec
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			if col+1 < c.Cols {
				segs = append(segs,
					SegSpec{From: id(r, col), To: id(r, col+1), Lanes: c.Lanes},
					SegSpec{From: id(r, col+1), To: id(r, col), Lanes: c.Lanes})
			}
			if r+1 < c.Rows {
				segs = append(segs,
					SegSpec{From: id(r, col), To: id(r+1, col), Lanes: c.Lanes},
					SegSpec{From: id(r+1, col), To: id(r, col), Lanes: c.Lanes})
			}
		}
	}
	return NetworkConfig{
		Nodes:         nodes,
		Segs:          segs,
		LaneWidth:     c.LaneWidth,
		HalfGap:       c.HalfGap,
		SpeedBands:    c.SpeedBands,
		Vehicles:      c.Vehicles,
		VehicleLength: c.VehicleLength,
		VehicleWidth:  c.VehicleWidth,
		IDM:           c.IDM,
	}
}

// RoadNetwork expresses the legacy straight road as the trivial network:
// two opposing Wrap segments over one roadbed, same lane geometry, same
// speed bands — the special case the road-graph abstraction generalizes.
// (The optimized Road implementation remains the substrate legacy scenarios
// run on; this builder exists so the equivalence is a tested fact, not a
// comment.)
func RoadNetwork(cfg Config, vehicles int) NetworkConfig {
	return NetworkConfig{
		Nodes: []geom.Vec{{X: 0, Y: 0}, {X: cfg.Length, Y: 0}},
		Segs: []SegSpec{
			{From: 0, To: 1, Lanes: cfg.LanesPerDir, Wrap: true}, // eastbound deck
			{From: 1, To: 0, Lanes: cfg.LanesPerDir, Wrap: true}, // westbound deck
		},
		LaneWidth:     cfg.LaneWidth,
		HalfGap:       cfg.MedianGap / 2,
		SpeedBands:    cfg.SpeedBands,
		Vehicles:      vehicles,
		VehicleLength: cfg.VehicleLength,
		VehicleWidth:  cfg.VehicleWidth,
		IDM:           cfg.IDM,
	}
}
