package traffic

import (
	"math"
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/xrand"
)

func newRoad(t *testing.T, density float64, seed uint64) *Road {
	t.Helper()
	r, err := New(DefaultConfig(density), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpeedConversions(t *testing.T) {
	if got := KmhToMs(72); got != 20 {
		t.Errorf("KmhToMs(72) = %v", got)
	}
	if got := MsToKmh(20); got != 72 {
		t.Errorf("MsToKmh(20) = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative length", func(c *Config) { c.Length = -1 }},
		{"zero lanes", func(c *Config) { c.LanesPerDir = 0 }},
		{"missing bands", func(c *Config) { c.SpeedBands = c.SpeedBands[:1] }},
		{"negative density", func(c *Config) { c.DensityVPL = -5 }},
		{"zero vehicle length", func(c *Config) { c.VehicleLength = 0 }},
		{"inverted band", func(c *Config) { c.SpeedBands[0] = SpeedBand{20, 10} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(15)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := DefaultConfig(15).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestPopulationMatchesDensity(t *testing.T) {
	for _, density := range []float64{10, 15, 20, 30} {
		r := newRoad(t, density, 1)
		want := int(density) * 3 * 2 // vpl × lanes × directions on a 1 km road
		if got := r.NumVehicles(); got != want {
			t.Errorf("density %v: %d vehicles, want %d", density, got, want)
		}
	}
}

func TestInitialSpeedsWithinLaneBands(t *testing.T) {
	r := newRoad(t, 20, 2)
	cfg := r.Config()
	for _, v := range r.Vehicles() {
		band := cfg.SpeedBands[v.Lane]
		if v.DesiredV < band.Low || v.DesiredV > band.High {
			t.Errorf("vehicle %d desired speed %v outside lane %d band [%v,%v]",
				v.ID, v.DesiredV, v.Lane, band.Low, band.High)
		}
		if v.V <= 0 || v.V > band.High {
			t.Errorf("vehicle %d speed %v implausible", v.ID, v.V)
		}
	}
}

func TestDeterminism(t *testing.T) {
	r1 := newRoad(t, 15, 7)
	r2 := newRoad(t, 15, 7)
	for i := 0; i < 200; i++ {
		r1.Step(0.005)
		r2.Step(0.005)
	}
	v1, v2 := r1.Vehicles(), r2.Vehicles()
	for i := range v1 {
		if v1[i].S != v2[i].S || v1[i].V != v2[i].V || v1[i].Lane != v2[i].Lane {
			t.Fatalf("vehicle %d diverged: %+v vs %+v", i, v1[i], v2[i])
		}
	}
}

func TestStepAdvancesPositions(t *testing.T) {
	r := newRoad(t, 10, 3)
	before := make([]float64, r.NumVehicles())
	for i, v := range r.Vehicles() {
		before[i] = v.S
	}
	for i := 0; i < 100; i++ {
		r.Step(0.005) // 0.5 s total
	}
	moved := 0
	for i, v := range r.Vehicles() {
		if v.S != before[i] {
			moved++
		}
	}
	if moved != r.NumVehicles() {
		t.Errorf("only %d/%d vehicles moved", moved, r.NumVehicles())
	}
	if got := r.Elapsed(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Elapsed = %v", got)
	}
}

func TestNoCollisionsLongRun(t *testing.T) {
	// At the paper's highest density, simulate 30 s and verify no two
	// same-lane vehicles ever overlap (bumper-to-bumper gap > 0).
	r := newRoad(t, 30, 4)
	cfg := r.Config()
	for step := 0; step < 6000; step++ {
		r.Step(0.005)
		if step%200 != 0 {
			continue
		}
		for _, v := range r.Vehicles() {
			for _, o := range r.Vehicles() {
				if v == o || v.Dir != o.Dir || v.Lane != o.Lane {
					continue
				}
				d := math.Abs(v.S - o.S)
				d = math.Min(d, cfg.Length-d)
				if d < cfg.VehicleLength*0.9 {
					t.Fatalf("step %d: vehicles %d and %d overlap (d=%.2f m)", step, v.ID, o.ID, d)
				}
			}
		}
	}
}

func TestSpeedsStayNonNegativeAndBounded(t *testing.T) {
	r := newRoad(t, 30, 5)
	maxBand := r.Config().SpeedBands[2].High
	for step := 0; step < 4000; step++ {
		r.Step(0.005)
		for _, v := range r.Vehicles() {
			if v.V < 0 {
				t.Fatalf("negative speed %v", v.V)
			}
			if v.V > maxBand*1.2 {
				t.Fatalf("speed %v exceeds plausible max %v", v.V, maxBand*1.2)
			}
		}
	}
}

func TestIDMFreeRoadApproachesDesiredSpeed(t *testing.T) {
	cfg := DefaultConfig(0) // empty road
	cfg.LaneChangeCheckEvery = 0
	r, err := New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	v := &Vehicle{ID: 0, Dir: Eastbound, Lane: 1, S: 0, V: 5, Quantile: 0.5, DesiredV: 18}
	r.vehicles = append(r.vehicles, v)
	for i := 0; i < 12000; i++ { // 60 s
		r.Step(0.005)
	}
	if math.Abs(v.V-18) > 0.5 {
		t.Errorf("free-road speed %v, want ≈18", v.V)
	}
}

func TestIDMFollowerKeepsSafeGap(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.LaneChangeCheckEvery = 0
	r, err := New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	leader := &Vehicle{ID: 0, Dir: Eastbound, Lane: 1, S: 50, V: 10, Quantile: 0.5, DesiredV: 10}
	follower := &Vehicle{ID: 1, Dir: Eastbound, Lane: 1, S: 0, V: 20, Quantile: 0.5, DesiredV: 25}
	r.vehicles = append(r.vehicles, leader, follower)
	for i := 0; i < 20000; i++ { // 100 s
		r.Step(0.005)
		gap := wrap(leader.S-follower.S, cfg.Length) - cfg.VehicleLength
		if gap < 0.5 {
			t.Fatalf("follower collided: gap %.2f at step %d", gap, i)
		}
	}
	// Follower should have adapted toward leader speed.
	if math.Abs(follower.V-leader.V) > 1.0 {
		t.Errorf("follower speed %v, leader %v", follower.V, leader.V)
	}
}

func TestLaneChangesHappenUnderPressure(t *testing.T) {
	// A slow platoon in lane 0 with a fast vehicle behind should trigger at
	// least one lane change somewhere in a dense scenario.
	r := newRoad(t, 25, 11)
	changes := 0
	lanes := map[int]int{}
	for _, v := range r.Vehicles() {
		lanes[v.ID] = v.Lane
	}
	for i := 0; i < 10000; i++ { // 50 s
		r.Step(0.005)
	}
	for _, v := range r.Vehicles() {
		if lanes[v.ID] != v.Lane {
			changes++
		}
	}
	if changes == 0 {
		t.Error("no lane changes in 50 s of dense traffic")
	}
}

func TestDesiredSpeedUpdatesOnLaneChange(t *testing.T) {
	r := newRoad(t, 25, 13)
	cfg := r.Config()
	for i := 0; i < 10000; i++ {
		r.Step(0.005)
	}
	for _, v := range r.Vehicles() {
		band := cfg.SpeedBands[v.Lane]
		want := band.Low + v.Quantile*(band.High-band.Low)
		if math.Abs(v.DesiredV-want) > 1e-9 {
			t.Errorf("vehicle %d desired %v, want %v for lane %d", v.ID, v.DesiredV, want, v.Lane)
		}
	}
}

func TestPositionMapping(t *testing.T) {
	cfg := DefaultConfig(15)
	east := &Vehicle{Dir: Eastbound, Lane: 2, S: 100}
	west := &Vehicle{Dir: Westbound, Lane: 0, S: 100}
	pe := cfg.Position(east)
	pw := cfg.Position(west)
	if pe.X != 100 {
		t.Errorf("eastbound x = %v", pe.X)
	}
	if pw.X != cfg.Length-100 {
		t.Errorf("westbound x = %v", pw.X)
	}
	if pe.Y >= 0 {
		t.Errorf("eastbound y = %v, want negative", pe.Y)
	}
	if pw.Y <= 0 {
		t.Errorf("westbound y = %v, want positive", pw.Y)
	}
	// Lane 2 (innermost) must be closer to the center line than lane 0.
	eInner := cfg.Position(&Vehicle{Dir: Eastbound, Lane: 2})
	eOuter := cfg.Position(&Vehicle{Dir: Eastbound, Lane: 0})
	if math.Abs(eInner.Y) >= math.Abs(eOuter.Y) {
		t.Errorf("lane2 |y|=%v should be < lane0 |y|=%v", math.Abs(eInner.Y), math.Abs(eOuter.Y))
	}
}

func TestHeadings(t *testing.T) {
	cfg := DefaultConfig(15)
	if got := cfg.Heading(&Vehicle{Dir: Eastbound}); math.Abs(float64(got)-math.Pi/2) > 1e-12 {
		t.Errorf("east heading = %v", got)
	}
	if got := cfg.Heading(&Vehicle{Dir: Westbound}); math.Abs(float64(got)-3*math.Pi/2) > 1e-12 {
		t.Errorf("west heading = %v", got)
	}
}

func TestBodyFootprint(t *testing.T) {
	cfg := DefaultConfig(15)
	v := &Vehicle{Dir: Eastbound, Lane: 1, S: 500}
	body := cfg.Body(v)
	if body.HalfLen != cfg.VehicleLength/2 || body.HalfWid != cfg.VehicleWidth/2 {
		t.Errorf("body extents %v x %v", body.HalfLen, body.HalfWid)
	}
	center := cfg.Position(v)
	// The body must contain its center and a point near the front bumper.
	if !body.ContainsPoint(center) {
		t.Error("body does not contain center")
	}
	front := geom.Vec{X: center.X + cfg.VehicleLength/2 - 0.1, Y: center.Y}
	if !body.ContainsPoint(front) {
		t.Error("body does not contain front bumper point")
	}
}

func TestWrap(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0}, {1000, 0}, {1500, 500}, {-100, 900}, {2300, 300},
	}
	for _, tt := range tests {
		if got := wrap(tt.in, 1000); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("wrap(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestZeroDtStepIsNoop(t *testing.T) {
	r := newRoad(t, 10, 9)
	s0 := r.Vehicles()[0].S
	r.Step(0)
	if r.Vehicles()[0].S != s0 || r.Elapsed() != 0 {
		t.Error("Step(0) mutated state")
	}
}

func TestFasterInnerLanes(t *testing.T) {
	// After settling, mean speed should increase with lane index.
	r := newRoad(t, 20, 17)
	for i := 0; i < 6000; i++ {
		r.Step(0.005)
	}
	var sum [3]float64
	var n [3]int
	for _, v := range r.Vehicles() {
		sum[v.Lane] += v.V
		n[v.Lane]++
	}
	for lane := 0; lane < 2; lane++ {
		if n[lane] == 0 || n[lane+1] == 0 {
			continue
		}
		if sum[lane]/float64(n[lane]) >= sum[lane+1]/float64(n[lane+1])+2 {
			t.Errorf("lane %d mean speed not below lane %d", lane, lane+1)
		}
	}
}

func TestTruckGeneration(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.TruckFraction = 0.3
	r, err := New(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	trucks := 0
	for _, v := range r.Vehicles() {
		if v.Class != ClassTruck {
			continue
		}
		trucks++
		if v.Lane >= 2 {
			t.Errorf("truck %d generated in fast lane %d", v.ID, v.Lane)
		}
		if v.DesiredV > cfg.TruckMaxSpeed {
			t.Errorf("truck %d desired speed %v above cap", v.ID, v.DesiredV)
		}
	}
	total := r.NumVehicles()
	want := int(float64(total) * cfg.TruckFraction)
	if trucks < want/2 || trucks > want*2 {
		t.Errorf("trucks = %d of %d, want ≈%d", trucks, total, want)
	}
}

func TestTrucksStayInLaneZero(t *testing.T) {
	cfg := DefaultConfig(25)
	cfg.TruckFraction = 0.2
	r, err := New(cfg, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ { // 30 s
		r.Step(0.005)
	}
	start := map[int]int{}
	for _, v := range r.Vehicles() {
		start[v.ID] = v.Lane
	}
	for i := 0; i < 2000; i++ {
		r.Step(0.005)
	}
	for _, v := range r.Vehicles() {
		if v.Class == ClassTruck && v.Lane != start[v.ID] {
			t.Errorf("truck %d changed lanes", v.ID)
		}
	}
}

func TestTruckDimensions(t *testing.T) {
	cfg := DefaultConfig(10)
	car := &Vehicle{Class: ClassCar}
	truck := &Vehicle{Class: ClassTruck}
	zero := &Vehicle{} // hand-built vehicles default to car bodies
	if l, w := cfg.Dimensions(car); l != 4.6 || w != 1.8 {
		t.Errorf("car dims = %v×%v", l, w)
	}
	if l, w := cfg.Dimensions(truck); l != 16 || w != 2.5 {
		t.Errorf("truck dims = %v×%v", l, w)
	}
	if l, _ := cfg.Dimensions(zero); l != 4.6 {
		t.Errorf("zero-class dims = %v", l)
	}
	body := cfg.Body(&Vehicle{Class: ClassTruck, Dir: Eastbound, Lane: 0, S: 100})
	if body.HalfLen != 8 || body.HalfWid != 1.25 {
		t.Errorf("truck body = %+v", body)
	}
}

func TestTruckFractionValidate(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.TruckFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("fraction > 1 should fail")
	}
	cfg = DefaultConfig(10)
	cfg.TruckFraction = 0.2
	cfg.TruckLength = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero truck length with trucks enabled should fail")
	}
}
