package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"mmv2v/internal/channel"
	"mmv2v/internal/geom"
	"mmv2v/internal/phy"
	"mmv2v/internal/units"
)

func TestDiscoveryRatioTheorem2Values(t *testing.T) {
	tests := []struct {
		p    float64
		k    int
		want float64
	}{
		{0.5, 1, 0.5},
		{0.5, 2, 0.75},
		{0.5, 3, 0.875}, // the paper's "87.5% in a single frame"
		{0.5, 4, 0.9375},
		{0.5, 0, 0},
		{0.3, 1, 1 - (0.09 + 0.49)},
	}
	for _, tt := range tests {
		if got := DiscoveryRatio(tt.p, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DiscoveryRatio(%v, %d) = %v, want %v", tt.p, tt.k, got, tt.want)
		}
	}
}

func TestDiscoveryRatioHalfOptimalProperty(t *testing.T) {
	f := func(p float64, k uint8) bool {
		p = math.Mod(math.Abs(p), 1)
		if p == 0 || p == 0.5 {
			return true
		}
		kk := int(k)%5 + 1
		return DiscoveryRatio(0.5, kk) >= DiscoveryRatio(p, kk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundsForRatio(t *testing.T) {
	tests := []struct {
		target float64
		want   int
	}{
		{0.5, 1},
		{0.75, 2},
		{0.875, 3},
		{0.99, 7},
		{0, 0},
	}
	for _, tt := range tests {
		if got := RoundsForRatio(tt.target); got != tt.want {
			t.Errorf("RoundsForRatio(%v) = %d, want %d", tt.target, got, tt.want)
		}
	}
	// Achievability: the returned K actually reaches the target.
	for _, target := range []float64{0.6, 0.9, 0.998} {
		k := RoundsForRatio(target)
		if DiscoveryRatio(0.5, k) < target {
			t.Errorf("K=%d does not reach %v", k, target)
		}
		if k > 1 && DiscoveryRatio(0.5, k-1) >= target {
			t.Errorf("K=%d not minimal for %v", k, target)
		}
	}
}

func TestBudgetPaperOperatingPoint(t *testing.T) {
	b, err := Budget(phy.DefaultTiming(), phy.DefaultCodebook(), 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: one SND round 0.8 ms → 3 rounds ≈ 2.3 ms; DCM 40×0.03 = 1.2 ms.
	if got := b.SND.Seconds() * 1000; math.Abs(got-2.304) > 0.01 {
		t.Errorf("SND = %v ms, want ≈2.304", got)
	}
	if got := b.DCM.Seconds() * 1000; math.Abs(got-1.2) > 1e-9 {
		t.Errorf("DCM = %v ms, want 1.2", got)
	}
	// "neighbor discovery and distributed matching take less than 5 ms"
	if b.SND+b.DCM >= 5e6 {
		t.Errorf("SND+DCM = %v, paper says < 5 ms", b.SND+b.DCM)
	}
	if b.UDTFraction < 0.75 || b.UDTFraction > 0.95 {
		t.Errorf("UDT fraction = %v", b.UDTFraction)
	}
}

func TestBudgetErrors(t *testing.T) {
	if _, err := Budget(phy.DefaultTiming(), phy.DefaultCodebook(), 0, 40); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Budget(phy.DefaultTiming(), phy.DefaultCodebook(), 3, 0); err == nil {
		t.Error("M=0 should fail")
	}
	// A control plane bigger than the frame must be rejected.
	if _, err := Budget(phy.DefaultTiming(), phy.DefaultCodebook(), 20, 400); err == nil {
		t.Error("oversized control plane should fail")
	}
}

func TestLinkBudgetAgainstChannelModel(t *testing.T) {
	params := channel.DefaultParams()
	lb, err := Link(params, 66, geom.Deg(3), geom.Deg(3))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the channel model directly.
	model, err := channel.NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	tx := channel.NewPattern(geom.Deg(3), params.SideLobeDB)
	want := model.SNRdB(66, 0, tx.G1, tx.G1)
	if math.Abs((lb.SNRdB - want).Decibels()) > 1e-9 {
		t.Errorf("SNR = %v, model says %v", lb.SNRdB, want)
	}
	if lb.MCS != 12 {
		t.Errorf("MCS at 66 m narrow beams = %v, want MCS12", lb.MCS)
	}
	if lb.RateBps != 4.62e9 {
		t.Errorf("rate = %v", lb.RateBps)
	}
}

func TestLinkBudgetUndecodable(t *testing.T) {
	lb, err := Link(channel.DefaultParams(), 1500, geom.Deg(30), geom.Deg(30))
	if err != nil {
		t.Fatal(err)
	}
	if lb.MCS != -1 || lb.RateBps != 0 {
		t.Errorf("1.5 km wide-beam link should be dead: %+v", lb)
	}
}

func TestRangeForSNRInvertsLink(t *testing.T) {
	params := channel.DefaultParams()
	for _, snr := range []units.DB{1, 10, 16, 21} {
		r, err := RangeForSNR(params, geom.Deg(30), geom.Deg(12), snr)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 {
			t.Fatalf("no range for %v dB", snr)
		}
		at, err := Link(params, r, geom.Deg(30), geom.Deg(12))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs((at.SNRdB - snr).Decibels()) > 0.01 {
			t.Errorf("SNR at range(%v)=%.1f m is %v", snr, r, at.SNRdB)
		}
		beyond, _ := Link(params, r.Times(1.1), geom.Deg(30), geom.Deg(12))
		if beyond.SNRdB >= snr {
			t.Errorf("SNR beyond range still %v", beyond.SNRdB)
		}
	}
}

func TestRangeForSNRCalibratesDiscoveryThreshold(t *testing.T) {
	// The 16 dB discovery admission threshold in core should correspond to
	// roughly the 50 m world comm range with the α/β discovery beams.
	r, err := RangeForSNR(channel.DefaultParams(), geom.Deg(30), geom.Deg(12), 16)
	if err != nil {
		t.Fatal(err)
	}
	if r < 40 || r > 65 {
		t.Errorf("16 dB admission range = %.1f m, want ≈50", r)
	}
}

func TestRandomMatchYield(t *testing.T) {
	if got := RandomMatchYield(5); got != 0.2 {
		t.Errorf("yield(5) = %v", got)
	}
	if got := RandomMatchYield(0.5); got != 0 {
		t.Errorf("yield(<1) = %v", got)
	}
}

func TestFramesToCompleteHRIE(t *testing.T) {
	b, err := Budget(phy.DefaultTiming(), phy.DefaultCodebook(), 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	// At MCS12 a frame carries ≈75 Mb of UDT: the 200 Mb HRIE unit needs 3
	// dedicated frames — the arithmetic behind the paper's feasibility.
	perFrame := FrameThroughputBound(b, 4.62e9)
	if perFrame < 70e6 || perFrame > 80e6 {
		t.Errorf("per-frame bound = %v bits", perFrame)
	}
	if got := FramesToComplete(b, 4.62e9, 200e6); got != 3 {
		t.Errorf("frames to complete = %d, want 3", got)
	}
	if got := FramesToComplete(b, 0, 200e6); got != math.MaxInt32 {
		t.Errorf("zero rate should never complete, got %d", got)
	}
}

func TestOptimalRoleProbability(t *testing.T) {
	if OptimalRoleProbability() != 0.5 {
		t.Error("Theorem 2 says 0.5")
	}
}
