// Package analytic provides closed-form models of the mmV2V protocol's
// behaviour: the Theorem 2 discovery ratio, the frame airtime budget, the
// link budget of the Eq. 1/Eq. 2 channel (range ↔ SNR ↔ MCS), and the
// expected matching yield of random mutual-choice matching (the ROP
// baseline). The simulator cross-validates against these models in tests;
// users can size deployments (how many rounds? which beam widths? what
// demand fits a frame?) without running simulations.
package analytic

import (
	"fmt"
	"math"
	"time"

	"mmv2v/internal/channel"
	"mmv2v/internal/phy"
	"mmv2v/internal/units"
)

// DiscoveryRatio returns Theorem 2's expected ratio of neighbors identified
// after k discovery rounds with transmitter probability p:
// 1 − [p² + (1−p)²]^k.
func DiscoveryRatio(p float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	return 1 - math.Pow(p*p+(1-p)*(1-p), float64(k))
}

// OptimalRoleProbability returns the p that maximizes DiscoveryRatio for
// any K (Theorem 2: 0.5).
func OptimalRoleProbability() float64 { return 0.5 }

// RoundsForRatio returns the smallest K whose expected discovery ratio with
// p = 0.5 reaches the target (e.g. 0.875 → 3).
func RoundsForRatio(target float64) int {
	if target <= 0 {
		return 0
	}
	if target >= 1 {
		return math.MaxInt32
	}
	// 1 - 0.5^K ≥ target ⇔ K ≥ log2(1/(1-target)).
	return int(math.Ceil(math.Log2(1 / (1 - target))))
}

// FrameBudget decomposes one protocol frame into its phases.
type FrameBudget struct {
	SND        time.Duration
	DCM        time.Duration
	Refinement time.Duration
	UDT        time.Duration
	// UDTFraction is UDT / frame — the data-plane efficiency.
	UDTFraction float64
}

// Budget computes the frame airtime split for a timing + codebook + (K, M)
// operating point. It returns an error if the control plane does not fit
// the frame.
func Budget(t phy.Timing, cb phy.Codebook, k, m int) (FrameBudget, error) {
	if err := t.Validate(); err != nil {
		return FrameBudget{}, err
	}
	if err := cb.Validate(); err != nil {
		return FrameBudget{}, err
	}
	if k <= 0 || m <= 0 {
		return FrameBudget{}, fmt.Errorf("analytic: non-positive K=%d or M=%d", k, m)
	}
	var b FrameBudget
	b.SND = time.Duration(k) * 2 * time.Duration(cb.Sectors.Count) * t.SectorSlot()
	b.DCM = time.Duration(m) * t.NegotiationSlot
	b.Refinement = 2*time.Duration(cb.RefinementBeams())*t.SectorSlot() + 2*t.SIFS
	control := b.SND + b.DCM + b.Refinement
	if control >= t.Frame {
		return FrameBudget{}, fmt.Errorf("analytic: control plane %v exceeds frame %v", control, t.Frame)
	}
	b.UDT = t.Frame - control
	b.UDTFraction = float64(b.UDT) / float64(t.Frame)
	return b, nil
}

// LinkBudget evaluates the Eq. 1 + Eq. 2 link at one distance.
type LinkBudget struct {
	DistanceM  units.Meter
	PathLossDB units.DB
	TxGainDBi  units.DB
	RxGainDBi  units.DB
	RxPowerDBm units.DBm
	SNRdB      units.DB
	MCS        phy.MCS
	RateBps    float64
}

// Link computes the boresight-aligned link budget at a distance for given
// 3 dB beam widths, with no blockers and no interference.
func Link(params channel.Params, dist units.Meter, txWidth, rxWidth units.Radian) (LinkBudget, error) {
	model, err := channel.NewModel(params)
	if err != nil {
		return LinkBudget{}, err
	}
	tx := channel.NewPattern(txWidth, params.SideLobeDB)
	rx := channel.NewPattern(rxWidth, params.SideLobeDB)
	lb := LinkBudget{
		DistanceM:  dist,
		PathLossDB: model.PathLossDB(dist, 0),
		TxGainDBi:  tx.PeakGainDB(),
		RxGainDBi:  rx.PeakGainDB(),
	}
	lb.RxPowerDBm = params.TxPowerDBm.Plus(lb.TxGainDBi).Plus(lb.RxGainDBi).Plus(-lb.PathLossDB)
	lb.SNRdB = lb.RxPowerDBm.Minus(model.NoiseDBm())
	mcs, ok := phy.BestMCS(lb.SNRdB)
	if ok {
		lb.MCS = mcs
		lb.RateBps = phy.DataRate(lb.SNRdB)
	} else {
		lb.MCS = -1
	}
	return lb, nil
}

// RangeForSNR returns the largest distance at which the boresight-aligned
// link still reaches the given SNR, found by bisection on the monotone
// Eq. 1 loss. Returns 0 if even 1 m fails.
func RangeForSNR(params channel.Params, txWidth, rxWidth units.Radian, minSNR units.DB) (units.Meter, error) {
	lo, hi := units.Meter(1), units.Meter(2000)
	at := func(d units.Meter) (units.DB, error) {
		lb, err := Link(params, d, txWidth, rxWidth)
		if err != nil {
			return 0, err
		}
		return lb.SNRdB, nil
	}
	s, err := at(lo)
	if err != nil {
		return 0, err
	}
	if s < minSNR {
		return 0, nil
	}
	if s, _ := at(hi); s >= minSNR {
		return hi, nil
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		s, err := at(mid)
		if err != nil {
			return 0, err
		}
		if s >= minSNR {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// RandomMatchYield returns the expected fraction of vehicles matched by one
// round of random mutual choice when every vehicle has degree d (each picks
// a uniform neighbor; a pair matches iff they pick each other):
// P(matched) = d · (1/d) · (1/d) = 1/d.
func RandomMatchYield(degree float64) float64 {
	if degree < 1 {
		return 0
	}
	return 1 / degree
}

// FrameThroughputBound returns the maximum data (bits) one matched pair can
// exchange in a frame at an MCS rate, given the frame budget — the quantity
// that decides how many frames a pair needs to complete the paper's 200 Mb
// HRIE unit.
func FrameThroughputBound(b FrameBudget, rateBps float64) float64 {
	return rateBps * b.UDT.Seconds()
}

// FramesToComplete returns the number of dedicated frames a pair needs to
// exchange demandBits at an MCS rate.
func FramesToComplete(b FrameBudget, rateBps, demandBits float64) int {
	perFrame := FrameThroughputBound(b, rateBps)
	if perFrame <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(demandBits / perFrame))
}
