package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// sharecheck is the shared-mutable-state analysis (DESIGN.md §8). The
// runner's determinism argument is an ownership argument: every trial's
// state is owned by exactly one goroutine, results merge through
// slot-per-trial writes, and nothing else is shared. Three shapes of code
// silently break that discipline while still passing the expression-level
// passes, and this pass flags each:
//
//  1. writes to package-level variables outside init — cross-trial state
//     that survives between runs of a worker and couples trials through
//     scheduler order;
//  2. loop variables captured by a `go` closure — even with per-iteration
//     loop variables, reading a loop variable asynchronously couples the
//     goroutine to iteration timing; pass the value as an argument instead;
//  3. outside internal/sim, goroutine closures writing to variables they do
//     not own (declared outside the closure) — unsynchronized writes whose
//     interleaving the scheduler picks.
//
// internal/sim and internal/obs/live are exempt from check 3 only:
// sim's slot-per-trial merge (errs[i] = job(i)) is the sanctioned shared
// write this pass exists to protect, and live's serving goroutine is the
// sanctioned network boundary (snapshots cross it through an atomic pointer,
// publisher state stays behind a mutex). The //mmv2v:shared <justification>
// directive suppresses any sharecheck finding; the justification is
// mandatory, like every directive.

// writeTarget unwraps an assignment target to its root identifier: the
// variable being written, possibly through selectors, indexing, or pointer
// dereference. Returns nil for targets with no identifier root (function
// call results, blank identifier).
func writeTarget(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return nil
			}
			return t
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// writes calls fn with the root identifier of every assignment target in n,
// including := and += style compound assignment and ++/--. Declarations are
// included: the callers' scope filters discard them, since a variable := can
// declare is always local to the scope holding the statement.
func writes(n ast.Node, fn func(id *ast.Ident)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if id := writeTarget(lhs); id != nil {
					fn(id)
				}
			}
		case *ast.IncDecStmt:
			if id := writeTarget(stmt.X); id != nil {
				fn(id)
			}
		}
		return true
	})
}

// varOf resolves an identifier to the variable it denotes, whether this
// occurrence declares it or uses it.
func varOf(p *Package, id *ast.Ident) *types.Var {
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// loopVars collects every loop variable declared in the file: range clause
// key/value identifiers and variables declared by a for statement's init.
func loopVars(p *Package, f *ast.File) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := p.Info.Defs[id].(*types.Var); ok {
				vars[v] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Key != nil {
				add(s.Key)
			}
			if s.Value != nil {
				add(s.Value)
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					add(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// runShareCheck applies the three shared-state checks to one package.
func runShareCheck(p *Package) []Finding {
	var out []Finding
	pkgScope := p.Types.Scope()
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if seen[pos] || p.suppressed("shared", pos) {
			return
		}
		seen[pos] = true
		out = append(out, finding(p, pos, "sharecheck", msg))
	}

	for _, f := range p.Files {
		loops := loopVars(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Recv == nil && fd.Name.Name == "init"

			// Check 1: package-level variable writes outside init.
			if !isInit {
				writes(fd.Body, func(id *ast.Ident) {
					v := varOf(p, id)
					if v == nil || v.Parent() != pkgScope {
						return
					}
					report(id.Pos(), fmt.Sprintf(
						"write to package-level var %s outside init; cross-run mutable state breaks trial isolation — localize it or justify with //mmv2v:shared", v.Name()))
				})
			}

			// Checks 2 and 3 inspect go-statement closures.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				// Check 2: loop-variable capture. Arguments to the call
				// are evaluated at go-statement time and are safe; only
				// uses inside the closure body are captures.
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if v, ok := p.Info.Uses[id].(*types.Var); ok && loops[v] {
						report(id.Pos(), fmt.Sprintf(
							"go closure captures loop variable %s; pass it as an argument so the goroutine owns its copy, or justify with //mmv2v:shared", v.Name()))
					}
					return true
				})
				// Check 3: writes to captured variables. internal/sim's
				// slot-per-trial merge and internal/obs/live's serving
				// goroutine are the sanctioned exceptions; package-level
				// targets are already check 1's findings.
				if underSim(p) || underLive(p) {
					return true
				}
				writes(lit.Body, func(id *ast.Ident) {
					v := varOf(p, id)
					if v == nil || v.Parent() == pkgScope {
						return
					}
					if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
						return // declared inside the closure: locally owned
					}
					report(id.Pos(), fmt.Sprintf(
						"goroutine writes to captured variable %s it does not own; route the result through sim.Runner's merge or justify with //mmv2v:shared", v.Name()))
				})
				return true
			})
		}
	}
	return out
}
