package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// unitcheck is the physical-units analysis (DESIGN.md §8). The unit
// vocabulary is the set of defined float64 types declared in a package named
// "units" (internal/units in this repo): DB, DBm, MilliWatt, Meter, ... .
// Because they are defined types, the Go type checker already propagates
// them interprocedurally — through assignments, call arguments, returns and
// composite literals — and rejects cross-unit arithmetic outright. What the
// compiler cannot reject are the escape hatches that launder a dimension
// away, and those are exactly what this pass closes:
//
//   - a conversion from one unit type to another (units.DB → units.DBm)
//     relabels a dimension without arithmetic;
//   - a conversion from a unit type to a bare numeric type (float64(dist))
//     drops the dimension so downstream code can mix it with anything;
//   - a product or quotient of two same-unit values type-checks as that unit
//     but is dimensionally wrong (m·m is an area; dB·dB is meaningless —
//     log-domain values compose by addition);
//   - a sum or difference of two absolute dBm powers type-checks as dBm but
//     absolute powers do not add in the log domain;
//   - a raw numeric literal passed where a unit-typed parameter is expected
//     converts implicitly, hiding the dimension the caller asserted.
//
// Sanctioned boundaries never fire: named accessors (Meter.M, DB.Decibels)
// are method calls, not conversions; conversions INTO a unit type from a
// bare float64 are dimension assertions; conversions to a non-unit named
// type (geom.Bearing, time.Duration) cross into another package's own typed
// domain; scaling by an untyped constant is dimensionless. The zero literal
// is exempt everywhere (zero is zero in every unit). A //mmv2v:unitless
// directive with a one-line justification suppresses a finding on or
// directly above its line. The units package itself is the conversion
// authority and is exempt wholesale.

// unitTypeName returns the type's name if it is a defined float64 type from
// a package named "units".
func unitTypeName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "units" {
		return "", false
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return "", false
	}
	return obj.Name(), true
}

// runUnitCheck applies the physical-units checks to one package.
func runUnitCheck(p *Package) []Finding {
	if p.Types != nil && p.Types.Name() == "units" {
		return nil
	}
	var out []Finding
	inspect(p, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			out = append(out, unitConversion(p, e)...)
			out = append(out, unitRawArgs(p, e)...)
		case *ast.BinaryExpr:
			out = append(out, unitBinary(p, e)...)
		}
	})
	return out
}

// unitConversion flags conversions that take a unit-typed value out of its
// dimension: cross-unit relabeling and escapes to bare numeric types.
func unitConversion(p *Package, call *ast.CallExpr) []Finding {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	src := p.Info.TypeOf(call.Args[0])
	if src == nil {
		return nil
	}
	srcName, srcIsUnit := unitTypeName(src)
	if !srcIsUnit {
		return nil // converting into the unit system asserts a dimension
	}
	dstName, dstIsUnit := unitTypeName(tv.Type)
	if dstIsUnit {
		if srcName == dstName {
			return nil
		}
		if p.suppressed("unitless", call.Pos()) {
			return nil
		}
		return []Finding{finding(p, call.Pos(), "unitcheck",
			fmt.Sprintf("conversion %s(%s value) relabels one dimension as another; use a named conversion in the units package or justify with //mmv2v:unitless", dstName, srcName))}
	}
	if _, bare := tv.Type.Underlying().(*types.Basic); !bare {
		return nil
	}
	if _, named := tv.Type.(*types.Named); named {
		return nil // another package's own typed domain (geom.Bearing, ...)
	}
	if p.suppressed("unitless", call.Pos()) {
		return nil
	}
	return []Finding{finding(p, call.Pos(), "unitcheck",
		fmt.Sprintf("%s(%s value) drops the dimension; use the unit's named accessor or justify with //mmv2v:unitless", tv.Type, srcName))}
}

// unitBinary flags dimensionally wrong arithmetic that nevertheless
// type-checks because both operands share one unit type.
func unitBinary(p *Package, be *ast.BinaryExpr) []Finding {
	xName, xIsUnit := unitTypeName(p.Info.TypeOf(be.X))
	yName, yIsUnit := unitTypeName(p.Info.TypeOf(be.Y))
	if !xIsUnit || !yIsUnit || xName != yName {
		return nil
	}
	// An untyped-constant operand is a dimensionless scale (width/2): fine.
	if isConst(p, be.X) || isConst(p, be.Y) {
		return nil
	}
	logDomain := xName == "DB" || xName == "DBm"
	var msg string
	switch be.Op {
	case token.MUL:
		if logDomain {
			msg = fmt.Sprintf("product of two log-domain %s values is meaningless (dB quantities compose by +); convert with Linear() or justify with //mmv2v:unitless", xName)
		} else {
			msg = fmt.Sprintf("product of two %s values leaves the unit system (%s² has no type here); scale with Times or justify with //mmv2v:unitless", xName, xName)
		}
	case token.QUO:
		if logDomain {
			msg = fmt.Sprintf("quotient of two log-domain %s values is meaningless (dB ratios are differences); subtract or use RatioDB, or justify with //mmv2v:unitless", xName)
		} else {
			msg = fmt.Sprintf("quotient of two %s values is a dimensionless ratio typed as %s; use Over, or justify with //mmv2v:unitless", xName, xName)
		}
	case token.ADD, token.SUB:
		if xName != "DBm" {
			return nil
		}
		msg = "two absolute dBm powers do not add in the log domain; apply gains with Plus(DB), form ratios with Minus, or justify with //mmv2v:unitless"
	default:
		return nil
	}
	if p.suppressed("unitless", be.Pos()) {
		return nil
	}
	return []Finding{finding(p, be.Pos(), "unitcheck", msg)}
}

// unitRawArgs flags raw nonzero numeric literals passed where a unit-typed
// parameter is declared: the implicit conversion hides the dimension the
// caller is asserting. Named constants and constant expressions built from
// them are exempt (their declaration carries the intent), as is the zero
// literal.
func unitRawArgs(p *Package, call *ast.CallExpr) []Finding {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // a conversion is itself the dimension assertion
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil // builtin or type error
	}
	params := sig.Params()
	var out []Finding
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		name, isUnit := unitTypeName(pt)
		if !isUnit || !isRawNumericLiteral(arg) {
			continue
		}
		if v := p.Info.Types[arg].Value; v != nil {
			//mmv2v:exact the literal 0 is exactly representable; only the spelled-out zero literal is unit-free
			if f, _ := constant.Float64Val(constant.ToFloat(v)); f == 0 {
				continue // zero is zero in every unit
			}
		}
		if p.suppressed("unitless", arg.Pos()) {
			continue
		}
		out = append(out, finding(p, arg.Pos(), "unitcheck",
			fmt.Sprintf("raw literal converts implicitly to parameter type %s; write the dimension as units.%s(...) or justify with //mmv2v:unitless", name, name)))
	}
	return out
}

// isRawNumericLiteral reports whether the expression is a bare INT or FLOAT
// literal, possibly parenthesized or under unary +/-.
func isRawNumericLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.INT || v.Kind == token.FLOAT
	case *ast.ParenExpr:
		return isRawNumericLiteral(v.X)
	case *ast.UnaryExpr:
		return (v.Op == token.SUB || v.Op == token.ADD) && isRawNumericLiteral(v.X)
	}
	return false
}
