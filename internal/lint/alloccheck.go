package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// alloccheck is the hot-path allocation-discipline analysis (DESIGN.md §8,
// backing the ROADMAP perf trajectory). The bench gate diffs ns/op, but an
// accidental allocation on a hand-optimized hot path — an append that
// regrows, a value boxed into an interface argument, a closure capture —
// hides inside run-to-run noise for a long time before it shows up as a
// slowdown. This pass makes the zero-alloc property a static contract:
//
//   - a function annotated //mmv2v:hotpath <name> (directive trailing on,
//     or directly above, the func line — the last doc-comment line works)
//     is a root; every function in its static call closure is hot, and the
//     module index records the call-path witness chain from the root
//     (Refresh → rebuildIndex);
//   - every allocation site lexically inside a hot function is flagged
//     with that chain: make/new, slice and map composite literals,
//     &composite escapes, append, string concatenation, string↔[]byte/rune
//     conversions, calls that box a value into an interface parameter
//     (fmt/errors calls included), closures that capture locals, and map
//     writes;
//   - amortized or setup-time allocations carry the mandatory-justification
//     escape hatch //mmv2v:alloc <why> — persistent scratch reusing its
//     capacity across ticks, memoization-cache fills, cold panic paths.
//
// Like the rest of the suite, the walk is static and conservative: dynamic
// dispatch through an interface ends the closure (concrete implementations
// are hot only if separately annotated or reached directly), and a
// function literal's body belongs to its declarer. The detectors are
// syntactic may-allocate checks, not an escape analysis — the point is
// that every allocation construct on a hot path is either hoisted or
// carries a reviewed justification, exactly the derived/shared discipline
// applied to performance.

// runAllocCheck flags allocation sites in the hot functions declared in p.
func runAllocCheck(p *Package) []Finding {
	m := p.Mod
	if m == nil {
		return nil
	}
	var out []Finding
	for _, fi := range m.order {
		if fi.pkg != p {
			continue
		}
		chain, hot := m.hotChains[fi.obj]
		if !hot {
			continue
		}
		out = append(out, allocSites(p, fi.decl, chain)...)
	}
	return out
}

// allocSites walks one hot function body and emits a finding per
// unjustified allocation construct.
func allocSites(p *Package, fd *ast.FuncDecl, chain string) []Finding {
	var out []Finding
	flag := func(pos token.Pos, desc string) {
		if p.suppressed("alloc", pos) {
			return
		}
		out = append(out, finding(p, pos, "alloccheck",
			fmt.Sprintf("%s on hot path (%s); hoist it out of the hot loop or justify with //mmv2v:alloc", desc, chain)))
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkCall(p, e, flag)
		case *ast.CompositeLit:
			switch p.typeUnder(e).(type) {
			case *types.Slice:
				flag(e.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				flag(e.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, lit := e.X.(*ast.CompositeLit); lit {
					flag(e.Pos(), "&composite escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(p, e.X) && !(isConst(p, e.X) && isConst(p, e.Y)) {
				flag(e.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(p, e.Lhs[0]) {
				flag(e.Pos(), "string concatenation allocates")
			}
			for _, lhs := range e.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if _, isMap := p.typeUnder(ix.X).(*types.Map); isMap {
					flag(ix.Pos(), "map write may allocate a bucket")
				}
			}
		case *ast.FuncLit:
			if v := capturedLocal(p, fd, e); v != nil {
				flag(e.Pos(), fmt.Sprintf("closure captures %s, forcing a heap allocation", v.Name()))
			}
		}
		return true
	})
	return out
}

// checkCall flags the allocating call shapes: the make/new builtins, append,
// string↔[]byte/[]rune conversions, calls into fmt/errors (formatting and
// error construction allocate by design), and calls that box a non-interface
// value into an interface-typed parameter.
func checkCall(p *Package, call *ast.CallExpr, flag func(token.Pos, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion: string↔[]byte and string↔[]rune copy.
		if len(call.Args) == 1 {
			to, from := tv.Type.Underlying(), p.typeUnder(call.Args[0])
			if (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from)) {
				flag(call.Pos(), "string/byte-slice conversion copies and allocates")
			}
		}
		return
	}
	if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil {
		if path := fn.Pkg().Path(); path == "fmt" || path == "errors" {
			flag(call.Pos(), fmt.Sprintf("%s.%s allocates", path, fn.Name()))
			return
		}
	}
	sig, ok := p.typeUnder(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through ...; nothing is boxed here
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		flag(call.Pos(), fmt.Sprintf("argument %d boxes a %s into an interface parameter", i+1, at))
		return // one finding per call: every boxed argument shares the fix
	}
}

// capturedLocal returns a variable the function literal captures from its
// enclosing declaration — a local, parameter or receiver declared outside
// the literal — or nil when the closure is capture-free. Captured variables
// move the closure (and usually themselves) to the heap. The first captured
// identifier in source order names the finding.
func capturedLocal(p *Package, fd *ast.FuncDecl, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == p.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level vars are sharecheck's concern
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = v
		}
		return true
	})
	return captured
}

// typeUnder returns the underlying type of an expression, or nil.
func (p *Package) typeUnder(e ast.Expr) types.Type {
	t := p.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// calleeFunc resolves a call's target to a declared *types.Func via its
// ident or selector, or nil for indirect calls through function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

func isString(p *Package, e ast.Expr) bool {
	return isStringType(p.typeUnder(e))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
