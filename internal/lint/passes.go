package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Pass is one independently toggleable check of the determinism contract.
type Pass struct {
	Name string
	Doc  string
	run  func(p *Package) []Finding
}

// Passes lists every pass in the order findings are attributed, which is the
// catalog order of DESIGN.md §8.
func Passes() []Pass {
	return []Pass{
		{
			Name: "maprange",
			Doc:  "range over a map is an error unless //mmv2v:sorted justifies order-independence",
			run:  runMapRange,
		},
		{
			Name: "wallclock",
			Doc:  "time.Now/Since/Sleep and timer construction are forbidden outside cmd/ and internal/obs/live (simulation time comes from des)",
			run:  runWallClock,
		},
		{
			Name: "globalrand",
			Doc:  "math/rand is forbidden outside internal/xrand (randomness derives from split streams)",
			run:  runGlobalRand,
		},
		{
			Name: "goroutine",
			Doc:  "go statements and select are forbidden outside internal/sim and internal/obs/live (sim.Runner owns all parallelism; live only reads published snapshots)",
			run:  runGoroutine,
		},
		{
			Name: "floateq",
			Doc:  "==/!= between floating-point operands is an error unless //mmv2v:exact justifies it",
			run:  runFloatEq,
		},
		{
			Name: "errdrop",
			Doc:  "a call whose only result is error must not be a bare expression, defer or go statement",
			run:  runErrDrop,
		},
		{
			Name: "unitcheck",
			Doc:  "physical-units analysis over the internal/units types: no laundering conversions, raw literals into unit parameters, or dimensionally wrong same-unit arithmetic without //mmv2v:unitless",
			run:  runUnitCheck,
		},
		{
			Name: "persistcheck",
			Doc:  "checkpoint-codec field coverage: every field of a SaveState type is encoded or //mmv2v:derived, and every encoded field is restored by the load path",
			run:  runPersistCheck,
		},
		{
			Name: "sharecheck",
			Doc:  "shared mutable state across the goroutine boundary: package-level var writes outside init, loop-variable capture in go closures, and unowned writes from goroutines, unless //mmv2v:shared justifies them",
			run:  runShareCheck,
		},
		{
			Name: "alloccheck",
			Doc:  "hot-path allocation discipline: every allocation site in the call closure of a //mmv2v:hotpath root (make/new, composite literals, append, string concatenation and conversions, interface boxing, closure captures, map writes) must be hoisted or justified with //mmv2v:alloc",
			run:  runAllocCheck,
		},
	}
}

// inspect applies fn to every node of every file in the package.
func inspect(p *Package, fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// underCmd reports whether the package lives under cmd/.
func underCmd(p *Package) bool {
	return p.Rel == "cmd" || strings.HasPrefix(p.Rel, "cmd/")
}

// underSim reports whether the package is internal/sim or a child of it.
func underSim(p *Package) bool {
	return p.Rel == "internal/sim" || strings.HasPrefix(p.Rel, "internal/sim/")
}

// underLive reports whether the package is internal/obs/live — the sanctioned
// network boundary, exactly that one package (children are not exempt): its
// goroutines only serve published immutable snapshots, and its wall-clock
// reads (ETA) can never reach simulation state.
func underLive(p *Package) bool {
	return p.Rel == "internal/obs/live"
}

// runMapRange flags iteration over map-typed values. Map iteration order is
// randomized per run, so any map range on a path that feeds simulation state
// or rendered output breaks byte-identical reproducibility. A
// //mmv2v:sorted directive on or directly above the statement asserts the
// body is order-independent (pure accumulation into another map, commutative
// integer min/max/sum, ...).
func runMapRange(p *Package) []Finding {
	var out []Finding
	inspect(p, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if p.suppressed("sorted", rs.Pos()) {
			return
		}
		out = append(out, finding(p, rs.Pos(), "maprange",
			fmt.Sprintf("range over map %s has randomized order; iterate sorted keys or justify with //mmv2v:sorted", t)))
	})
	return out
}

// wallClockFuncs are the package time functions that read or schedule against
// the wall clock. Simulation time advances only through internal/des.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// runWallClock flags wall-clock reads and timer construction outside cmd/
// (allowed for progress printing only) and internal/obs/live (allowed for
// ETA estimation, which never reaches simulation state). The check is
// transitive over the module call graph: calling a helper that reaches
// time.Now — even one declared in the exempt cmd/ tree — is flagged at the
// call site with the witness chain, so the exemption cannot launder clock
// reads into simulation code. internal/obs/live is additionally sealed in
// the taint propagation (like internal/xrand for globalrand), so calling
// its clock-free API surface stays clean.
func runWallClock(p *Package) []Finding {
	if underCmd(p) || underLive(p) {
		return nil
	}
	var out []Finding
	inspect(p, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
			return
		}
		out = append(out, finding(p, id.Pos(), "wallclock",
			fmt.Sprintf("time.%s reads the wall clock; simulation time comes only from internal/des (cmd/ progress printing is exempt)", fn.Name())))
	})
	out = append(out, taintedCalls(p, "wallclock",
		func(m *Module) map[*types.Func]string { return m.wallclockTaint },
		"reaches the wall clock")...)
	return out
}

// taintedCalls emits one finding per call site in p whose callee carries
// taint of the given kind, annotated with the propagation witness chain.
// Call sites are visited in the module's position-sorted function order, so
// output is stable run to run.
func taintedCalls(p *Package, pass string, taintOf func(*Module) map[*types.Func]string, verb string) []Finding {
	if p.Mod == nil {
		return nil
	}
	taint := taintOf(p.Mod)
	var out []Finding
	for _, fi := range p.Mod.order {
		if fi.pkg != p {
			continue
		}
		for _, cs := range fi.calls {
			chain, tainted := taint[cs.callee]
			if !tainted {
				continue
			}
			out = append(out, finding(p, cs.pos, pass,
				fmt.Sprintf("call to %s transitively %s (%s)", cs.callee.Name(), verb, chain)))
		}
	}
	return out
}

// runGlobalRand flags any use of a math/rand function or method outside
// internal/xrand — including rand.New and methods on a leaked *rand.Rand —
// since all randomness must derive from per-entity xrand split streams.
// Like wallclock, the check is transitive: calling a helper that wraps
// math/rand is flagged at the call site. internal/xrand itself is the
// sanctioned boundary and neither seeds nor forwards taint, so consuming
// its split-stream API stays clean.
func runGlobalRand(p *Package) []Finding {
	if p.Rel == "internal/xrand" {
		return nil
	}
	var out []Finding
	inspect(p, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		out = append(out, finding(p, id.Pos(), "globalrand",
			fmt.Sprintf("%s.%s bypasses the seed discipline; derive randomness from internal/xrand split streams", path, fn.Name())))
	})
	out = append(out, taintedCalls(p, "globalrand",
		func(m *Module) map[*types.Func]string { return m.randTaint },
		"draws from math/rand")...)
	return out
}

// runGoroutine flags go statements and select outside internal/sim and
// internal/obs/live: sim.Runner owns all simulation parallelism (its
// slot-per-trial merge is what keeps concurrent output byte-identical), and
// live's network goroutines are sanctioned because they only read published
// immutable snapshots.
func runGoroutine(p *Package) []Finding {
	if underSim(p) || underLive(p) {
		return nil
	}
	var out []Finding
	inspect(p, func(n ast.Node) {
		switch n.(type) {
		case *ast.GoStmt:
			out = append(out, finding(p, n.Pos(), "goroutine",
				"go statement outside internal/sim; route parallelism through sim.Runner's deterministic merge"))
		case *ast.SelectStmt:
			out = append(out, finding(p, n.Pos(), "goroutine",
				"select outside internal/sim; channel races are scheduler-dependent and break reproducibility"))
		}
	})
	return out
}

// runFloatEq flags == and != between floating-point operands. Exact float
// equality is almost always a latent tolerance bug in accumulated SINR/
// throughput math; compare against an epsilon instead, or assert exactness
// with //mmv2v:exact where bit-identity is the point (sentinels, golden
// merges). Comparisons where both operands are compile-time constants are
// exempt.
func runFloatEq(p *Package) []Finding {
	var out []Finding
	inspect(p, func(n ast.Node) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		if !isFloat(p, be.X) && !isFloat(p, be.Y) {
			return
		}
		if isConst(p, be.X) && isConst(p, be.Y) {
			return
		}
		if p.suppressed("exact", be.Pos()) {
			return
		}
		out = append(out, finding(p, be.Pos(), "floateq",
			fmt.Sprintf("%s between floats; use a tolerance compare or justify with //mmv2v:exact", be.Op)))
	})
	return out
}

func isFloat(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(p *Package, e ast.Expr) bool {
	return p.Info.Types[e].Value != nil
}

// runErrDrop flags statements that call a function whose only result is an
// error and discard it: bare expression statements, and defer/go statements,
// where the deferred or spawned call's error vanishes silently. Handle it,
// or assign it away explicitly (_ = f(), defer func() { _ = f() }()) so the
// drop is visible in review.
func runErrDrop(p *Package) []Finding {
	errType := types.Universe.Lookup("error").Type()
	var out []Finding
	inspect(p, func(n ast.Node) {
		var (
			call *ast.CallExpr
			kind string
		)
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
			kind = "silently dropped"
		case *ast.DeferStmt:
			call = stmt.Call
			kind = "silently dropped by defer"
		case *ast.GoStmt:
			call = stmt.Call
			kind = "silently dropped by go"
		}
		if call == nil {
			return
		}
		t := p.Info.TypeOf(call)
		if t == nil || !types.Identical(t, errType) {
			return
		}
		out = append(out, finding(p, n.Pos(), "errdrop",
			fmt.Sprintf("result of type error is %s; handle it or assign it explicitly", kind)))
	})
	return out
}

func finding(p *Package, pos token.Pos, pass, msg string) Finding {
	return Finding{Pos: p.relPos(pos), Pass: pass, Msg: msg}
}
