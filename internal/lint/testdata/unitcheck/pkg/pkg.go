// Package pkg exercises the unitcheck pass: laundering conversions,
// dimensionally wrong same-unit arithmetic, and raw literals flowing into
// unit-typed parameters all fire; sanctioned boundaries (conversions into
// the unit system, named accessors, constant scales, other packages' named
// types, the zero literal, //mmv2v:unitless directives) stay silent.
package pkg

import "fixture/units"

// Bearing is this package's own typed domain: converting a unit into it is
// a sanctioned boundary crossing, not laundering.
type Bearing float64

// Relabel converts dB straight to dBm: one finding.
func Relabel(g units.DB) units.DBm {
	return units.DBm(g)
}

// Launder drops the dimension through float64: one finding.
func Launder(d units.Meter) float64 {
	return float64(d)
}

// LaunderJustified carries the directive on the line above: suppressed.
func LaunderJustified(d units.Meter) float64 {
	//mmv2v:unitless interop with a third-party math helper that takes bare floats
	return float64(d)
}

// Accessor leaves the unit system through the named accessor: no finding.
func Accessor(d units.Meter) float64 {
	return d.M()
}

// Assert converts a bare float into the unit system: no finding.
func Assert(x float64) units.Meter {
	return units.Meter(x)
}

// CrossDomain converts into another package's named type: no finding.
func CrossDomain(d units.Meter) Bearing {
	return Bearing(d)
}

// Area multiplies two distances: one finding (m² has no type here).
func Area(a, b units.Meter) units.Meter {
	return a * b
}

// LogProduct multiplies two log-domain gains: one finding.
func LogProduct(a, b units.DB) units.DB {
	return a * b
}

// Ratio divides two distances: one finding (use Over).
func Ratio(a, b units.Meter) units.Meter {
	return a / b
}

// RatioOver uses the sanctioned accessor: no finding.
func RatioOver(a, b units.Meter) float64 {
	return a.Over(b)
}

// AbsoluteSum adds two absolute dBm powers: one finding.
func AbsoluteSum(a, b units.DBm) units.DBm {
	return a + b
}

// GainSum adds two relative dB gains — log-domain composition: no finding.
func GainSum(a, b units.DB) units.DB {
	return a + b
}

// HalfWidth scales by an untyped constant: no finding.
func HalfWidth(w units.Meter) units.Meter {
	return w / 2
}

// take anchors the raw-literal parameter check.
func take(d units.Meter) units.Meter { return d }

// RawLiteral passes a bare nonzero literal where Meter is declared: one
// finding.
func RawLiteral() units.Meter {
	return take(50)
}

// NegativeRawLiteral fires through unary minus too: one finding.
func NegativeRawLiteral() units.Meter {
	return take(-50)
}

// ZeroLiteral is exempt — zero is zero in every unit: no finding.
func ZeroLiteral() units.Meter {
	return take(0)
}

// defaultRange carries the dimension at its declaration: no finding.
const defaultRange = 120.5

// NamedConstant passes a named constant: no finding.
func NamedConstant() units.Meter {
	return take(defaultRange)
}

// RawLiteralJustified carries the directive on its line: suppressed.
func RawLiteralJustified() units.Meter {
	return take(75) //mmv2v:unitless value echoed from a spec table that is unitless by construction
}
