// Package units is the fixture's miniature unit vocabulary: the pass keys
// on defined float64 types declared in a package named "units", so these
// four stand in for the real internal/units set.
package units

// DB is a relative log-domain power ratio.
type DB float64

// DBm is an absolute log-domain power.
type DBm float64

// MilliWatt is an absolute linear power.
type MilliWatt float64

// Meter is a distance.
type Meter float64

// M returns the raw value in meters.
func (m Meter) M() float64 { return float64(m) }

// Over returns the dimensionless ratio m/o.
func (m Meter) Over(o Meter) float64 { return float64(m) / float64(o) }
