// Package pkg exercises alloccheck: a hot root with every allocation
// detector, a transitive callee carrying a deeper witness chain, justified
// and unjustified suppressions, an interface dispatch that ends the walk,
// and a cold function that may allocate freely.
package pkg

import "fmt"

// State is the fixture's hot object.
type State struct {
	scratch []int
	cache   map[int]int
	total   string
}

// Stepper is dispatched dynamically; implementations are hot only if
// separately annotated or reached directly.
type Stepper interface{ Step() }

// DynAlloc allocates in Step, but is reached only through the Stepper
// interface, so the static walk ends at the dispatch and it stays clean.
type DynAlloc struct{}

func (DynAlloc) Step() { _ = make([]int, 4) }

// Tick is the fixture's hot root.
//
//mmv2v:hotpath the fixture's tick
func (s *State) Tick(n int) {
	buf := make([]int, n)
	q := new(State)
	s.scratch = append(s.scratch, n)
	lit := []int{1, 2, 3}
	mlit := map[int]int{}
	ptr := &State{}
	s.total = s.total + "x"
	s.total += "y"
	bs := []byte(s.total)
	s.cache[n] = n
	fmt.Sprintln(n)
	box(n)
	spread(n, n)
	f := func() int { return n }
	bare := make([]int, 1) //mmv2v:alloc
	var st Stepper = DynAlloc{}
	st.Step()
	_, _, _, _, _, _, _, _ = buf, q, lit, mlit, ptr, bs, f, bare
	s.helper(n)
}

// helper is hot transitively (Tick → helper); its append carries a
// justification on the preceding line, so only grow's make fires.
func (s *State) helper(n int) {
	//mmv2v:alloc amortized: scratch reuses its capacity across ticks
	s.scratch = append(s.scratch, n)
	grow(s)
}

// grow is hot at depth two; the finding's witness chain reads
// "Tick → helper → grow".
func grow(s *State) {
	s.scratch = make([]int, 8)
}

// box takes an interface parameter, so hot callers box concrete arguments.
func box(v interface{}) { _ = v }

// spread is variadic over an interface element; non-spread hot calls box.
func spread(vs ...interface{}) { _ = vs }

// Cold is never reached from a hotpath root and may allocate freely.
func Cold() []int {
	return append([]int{}, 1, 2)
}
