// Package pkg imports a module-internal package with no source directory:
// the loader must report it, not panic.
package pkg

import "fixture/nowhere"

var _ = nowhere.Missing
