// Package pkg fails to parse: the loader must surface the syntax error.
package pkg

func Broken( {
