// Package alpha is half of a deliberate import cycle.
package alpha

import "fixture/beta"

// A references beta so the import survives formatting.
const A = beta.B + 1
