// Package beta closes the cycle back through alpha.
package beta

import "fixture/alpha"

// B references alpha so the import survives formatting.
const B = alpha.A + 1
