// Package pkg exercises the maprange pass: an unordered map range fires, a
// //mmv2v:sorted directive (trailing or on the line above) suppresses, and
// slice ranges are ignored.
package pkg

import "sort"

// Keys iterates a map without a directive: one finding.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Count carries the directive on the line above: suppressed.
func Count(m map[int]string) int {
	n := 0
	//mmv2v:sorted commutative integer count
	for range m {
		n++
	}
	return n
}

// Sum carries a trailing directive: suppressed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { //mmv2v:sorted commutative integer sum
		total += v
	}
	return total
}

// Slices ranges over a slice: never a finding.
func Slices(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
