// Package clocked exercises the wallclock pass outside the cmd/ allowlist:
// wall-clock reads and timer construction fire; pure time.Duration
// arithmetic does not.
package clocked

import "time"

// Stamp reads the wall clock twice: two findings.
func Stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Nap sleeps and builds a ticker: two findings.
func Nap(d time.Duration) {
	time.Sleep(d)
	t := time.NewTicker(d)
	t.Stop()
}

// Scale only does duration arithmetic: no finding.
func Scale(d time.Duration) time.Duration {
	return 3 * d / 2
}
