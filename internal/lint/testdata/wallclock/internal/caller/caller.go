// Package caller exercises the transitive wallclock upgrade: calling a
// helper that reaches time.Now is flagged at the call site, whether the
// helper hides in the exempt cmd/ tree or in another internal package.
package caller

import (
	"time"

	"fixture/cmd/clockutil"
	"fixture/internal/clocked"
)

// Elapsed launders a wall-clock read through the cmd/ tree: one finding.
func Elapsed() float64 {
	return clockutil.NowSec()
}

// Twice launders through a module-internal tainted helper: one finding.
func Twice() time.Duration {
	return clocked.Stamp() * 2
}

// Scale calls an untainted helper: no finding.
func Scale(d time.Duration) time.Duration {
	return clocked.Scale(d)
}
