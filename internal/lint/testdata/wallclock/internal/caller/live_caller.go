package caller

import "fixture/internal/obs/live"

// Watch consumes the sealed internal/obs/live boundary: no finding — the
// clock read stays behind the sanctioned surface instead of laundering out.
func Watch() float64 {
	return live.Elapsed()
}
