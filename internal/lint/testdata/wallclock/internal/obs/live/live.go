// Package live mirrors the sanctioned introspection boundary: wall-clock
// reads are exempt exactly in internal/obs/live, and the taint propagation
// seals the package so callers of its API stay clean.
package live

import "time"

// Elapsed reads the wall clock for an ETA estimate: no findings.
func Elapsed() float64 {
	return time.Since(start()).Seconds()
}

// start reads the wall clock: no findings.
func start() time.Time {
	return time.Now()
}
