// Package obs is the parent of the exempt live package: the allowlist is
// exactly internal/obs/live, so wall-clock reads here still fire.
package obs

import "time"

// Stamp reads the wall clock twice on one line: two findings.
func Stamp() time.Duration {
	return time.Since(time.Now())
}
