// Command tool exercises the wallclock cmd/ allowlist: progress printing may
// read the wall clock.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println("elapsed:", time.Since(start))
}
