// Package clockutil is an importable wall-clock helper under the cmd/
// tree: exempt from the direct check, but a laundering vector the
// transitive upgrade closes at every internal call site.
package clockutil

import "time"

// NowSec reads the wall clock; no direct finding here (cmd/ exemption).
func NowSec() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
