// Package pkg exercises the floateq pass: float ==/!= fires, a
// //mmv2v:exact directive suppresses, and integer or constant-only compares
// are ignored.
package pkg

// Same compares floats exactly: one finding.
func Same(a, b float64) bool {
	return a == b
}

// Changed compares floats exactly with !=: one finding.
func Changed(a, b float32) bool {
	return a != b
}

// Sentinel carries the directive on the line above: suppressed.
func Sentinel(x float64) bool {
	//mmv2v:exact zero-value sentinel for an unset field
	return x == 0
}

// Ints compares integers: no finding.
func Ints(a, b int) bool {
	return a == b
}

// ConstGate compares two compile-time constants: no finding.
func ConstGate() bool {
	const eps = 1e-9
	return eps == 1e-9
}
