// Package state exercises persistcheck's codec field coverage. Expected
// findings are pinned by line in lint_test.go.
package state

import "fixture/internal/persist"

// Counter is fully covered: n encoded directly, total through a helper
// (the interprocedural closure), cache justified as derived. No findings.
type Counter struct {
	n     uint64
	total uint64
	cache float64 //mmv2v:derived recomputed from n on first use
}

func (c *Counter) SaveState(e *persist.Encoder) {
	e.U64(c.n)
	c.saveTotal(e)
}

func (c *Counter) saveTotal(e *persist.Encoder) { e.U64(c.total) }

func (c *Counter) LoadState(d *persist.Decoder) error {
	c.n = d.U64()
	c.total = d.U64()
	return nil
}

// Drifted gained fields after its codec was written: skew is uncovered (one
// finding), and bare's directive carries no justification, so it does not
// suppress (one finding).
type Drifted struct {
	n    uint64
	skew float64
	//mmv2v:derived
	bare int
}

func (m *Drifted) SaveState(e *persist.Encoder) { e.U64(m.n) }

func (m *Drifted) LoadState(d *persist.Decoder) error {
	m.n = d.U64()
	return nil
}

// Halflife encodes bits but its loader never restores it: one finding at
// the field.
type Halflife struct {
	n    uint64
	bits float64
}

func (h *Halflife) SaveState(e *persist.Encoder) {
	e.U64(h.n)
	e.F64(h.bits)
}

func (h *Halflife) LoadState(d *persist.Decoder) error {
	h.n = d.U64()
	return nil
}

// Orphan has a save side but no restore path at all: one finding at
// SaveState.
type Orphan struct {
	n uint64
}

func (o *Orphan) SaveState(e *persist.Encoder) { e.U64(o.n) }
