// Package ctor exercises the restore-constructor shape: no LoadState
// method; the package-level Restore function taking a *persist.Decoder and
// returning the type is the load path. Fully covered, no findings — open is
// referenced through a composite-literal key on the load side.
package ctor

import "fixture/internal/persist"

// Session restores through Restore rather than a LoadState method.
type Session struct {
	open  bool
	pairs int
}

func (s *Session) SaveState(e *persist.Encoder) {
	if s.open {
		e.U64(1)
	}
	e.U64(uint64(s.pairs))
}

// Restore rebuilds a Session from a checkpoint.
func Restore(d *persist.Decoder) (*Session, error) {
	s := &Session{open: d.U64() == 1}
	s.pairs = int(d.U64())
	return s, nil
}
