// Package persist stubs the checkpoint codec vocabulary: persistcheck
// matches Encoder/Decoder by name and package name, so fixtures need not
// import the real codec.
package persist

// Encoder is the save-side codec stub.
type Encoder struct{}

func (e *Encoder) U64(v uint64)  {}
func (e *Encoder) F64(v float64) {}

// Decoder is the load-side codec stub.
type Decoder struct{}

func (d *Decoder) U64() uint64  { return 0 }
func (d *Decoder) F64() float64 { return 0 }
