// Package global exercises sharecheck's package-level write check: writes
// outside init fire (including through index expressions), init is exempt,
// and a justified //mmv2v:shared directive suppresses.
package global

var hits uint64
var limit = 8
var registry = map[string]int{}

func init() { limit = 16 }

// Bump writes a package-level counter: one finding.
func Bump() {
	hits++
}

// Configure writes a package-level knob with a justification: no finding.
func Configure(n int) {
	limit = n //mmv2v:shared test-only knob, set before any trial starts
}

// Register writes through a package-level map: one finding.
func Register(k string) {
	registry[k] = len(registry)
}
