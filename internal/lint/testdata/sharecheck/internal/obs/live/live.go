// Package live mirrors the sanctioned network boundary: a serving
// goroutine's captured-variable write is exempt from check 3 exactly in
// internal/obs/live.
package live

// Serve writes a captured counter from its goroutine: no findings.
func Serve() *int {
	n := new(int)
	go func() {
		*n = 1
	}()
	return n
}
