// Package obs is the parent of the exempt live package: the allowlist is
// exactly internal/obs/live, so a goroutine writing a captured variable
// here still fires.
package obs

// Leak writes a captured counter from its goroutine: one finding.
func Leak() *int {
	n := new(int)
	go func() {
		*n = 1
	}()
	return n
}
