// Package sim exercises the internal/sim exemption from the captured-write
// check: the slot-per-trial merge — each goroutine writing only its own
// index of a shared results slice — is the sanctioned pattern the real
// sim.Runner uses. No findings.
package sim

// Gather runs job(i) concurrently and merges results slot-per-trial.
func Gather(n int, job func(int) int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = job(i)
		}(i)
	}
	return out
}
