// Package spawn exercises sharecheck's goroutine checks: loop-variable
// capture and writes to captured variables fire; passing values as call
// arguments (evaluated at go-statement time) is clean, and //mmv2v:shared
// suppresses a justified shared write.
package spawn

// Fan captures the loop variables i and job and writes the captured slice
// out from each goroutine: three findings on the closure body line.
func Fan(jobs []func() int) []int {
	out := make([]int, len(jobs))
	for i, job := range jobs {
		go func() {
			out[i] = job()
		}()
	}
	return out
}

// FanSafe passes the loop variables and the destination as arguments, so
// each goroutine owns its copies: no findings.
func FanSafe(jobs []func() int) []int {
	out := make([]int, len(jobs))
	for i, job := range jobs {
		go func(i int, job func() int, slot []int) {
			slot[0] = job()
		}(i, job, out[i:i+1])
	}
	return out
}

// Background writes a captured pointer target with a justification: no
// finding.
func Background(log *[]string) {
	go func() {
		//mmv2v:shared single background writer; reader joins only after Wait
		*log = append(*log, "spawned")
	}()
}
