// Package consumer exercises the transitive globalrand upgrade: calling a
// helper that wraps math/rand is flagged at the call site, while consuming
// the sanctioned internal/xrand boundary stays clean (xrand is sealed —
// neither a taint source nor a propagator).
package consumer

import (
	"fixture/internal/seeded"
	"fixture/internal/xrand"
)

// Roll launders a draw through a tainted helper: one finding.
func Roll(n int) int {
	return seeded.Draw(n)
}

// Split consumes the sanctioned wrapper: no finding.
func Split(seed int64) float64 {
	return xrand.Unit(xrand.New(seed))
}
