// Package xrand exercises the globalrand allowlist: the split-stream package
// itself may wrap math/rand.
package xrand

import "math/rand"

// New wraps a math/rand generator: no finding here.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Unit draws from a wrapped generator: the sanctioned boundary is sealed,
// so callers of Unit are not tainted.
func Unit(r *rand.Rand) float64 {
	return r.Float64()
}
