// Package seeded exercises the globalrand pass outside the internal/xrand
// allowlist: the global Intn, rand.New and a method on a leaked *rand.Rand
// all fire.
package seeded

import "math/rand"

// Draw uses the global source: one finding.
func Draw(n int) int {
	return rand.Intn(n)
}

// Fresh constructs an unsanctioned generator and draws from it: three
// findings (rand.New, rand.NewSource and the Float64 method).
func Fresh(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
