// Package pkg exercises the errdrop pass: a bare call dropping a lone error
// result fires; explicit assignment, handling, and multi-result calls are
// ignored.
package pkg

import "errors"

// Close returns only an error.
func Close() error {
	return errors.New("boom")
}

// Write returns a count and an error.
func Write(p []byte) (int, error) {
	return len(p), nil
}

// Dropped discards Close's error silently: one finding.
func Dropped() {
	Close()
}

// Assigned makes the drop explicit: no finding.
func Assigned() {
	_ = Close()
}

// Handled checks the error: no finding.
func Handled() error {
	if err := Close(); err != nil {
		return err
	}
	return nil
}

// MultiResult drops a (count, error) pair: outside this pass's contract, no
// finding.
func MultiResult() {
	Write(nil)
}

// DeferredDrop discards Close's error through defer: one finding.
func DeferredDrop() {
	defer Close()
}

// DeferredHandled wraps the deferred call so the drop is explicit: no
// finding.
func DeferredHandled() {
	defer func() { _ = Close() }()
}

// GoDrop discards Close's error in a spawned goroutine: one finding (the
// goroutine pass flags the go statement separately).
func GoDrop() {
	go Close()
}

// DeferredMultiResult defers a (count, error) call: outside this pass's
// contract, no finding.
func DeferredMultiResult() {
	defer Write(nil)
}
