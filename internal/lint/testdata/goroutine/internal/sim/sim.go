// Package sim exercises the goroutine allowlist: the runner package owns all
// parallelism.
package sim

// Fan launches workers and merges by slot: no findings here.
func Fan(n int) []int {
	out := make([]int, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = i * i
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		}
	}
	return out
}
