// Package spawner exercises the goroutine pass outside the internal/sim
// allowlist: a go statement and a select both fire.
package spawner

// Spawn launches a goroutine and races two channels: two findings.
func Spawn(a, b chan int) int {
	go func() { a <- 1 }()
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
