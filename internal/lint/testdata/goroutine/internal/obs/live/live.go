// Package live mirrors the sanctioned network boundary: go statements and
// select are exempt exactly in internal/obs/live.
package live

// Serve spawns a worker and races two channels: no findings.
func Serve(a, b chan int) int {
	go func() { a <- 1 }()
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
