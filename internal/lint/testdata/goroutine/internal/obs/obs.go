// Package obs is the parent of the exempt live package: the allowlist is
// exactly internal/obs/live, so a go statement here still fires.
package obs

// Leak spawns a goroutine: one finding.
func Leak(c chan int) {
	go func() { c <- 1 }()
}
