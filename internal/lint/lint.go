// Package lint implements mmv2v-lint, the repo's determinism and
// simulation-hygiene analyzer (DESIGN.md §8).
//
// The evaluation pipeline's core invariant — runs are byte-identical for any
// -workers value and any seed — is enforced mechanically by ten passes over
// the type-checked source of every non-test package: maprange, wallclock,
// globalrand, goroutine, floateq, errdrop, unitcheck, persistcheck,
// sharecheck and alloccheck. The analyzer is stdlib-only (go/parser,
// go/ast, go/types with go/importer's source importer; no x/tools),
// honoring the repo's no-external-dependency rule.
//
// Source directives suppress a finding when placed on, or on the line
// directly above, the offending statement or field, and must carry a
// one-line justification:
//
//	//mmv2v:sorted   <why the loop body is order-independent>
//	//mmv2v:exact    <why exact float equality is intended>
//	//mmv2v:unitless <why the quantity is genuinely dimensionless>
//	//mmv2v:derived  <how restore rebuilds the field>
//	//mmv2v:shared   <why the cross-goroutine write is safe>
//	//mmv2v:alloc    <why the hot-path allocation is amortized or setup-time>
//
// //mmv2v:hotpath <name> is not a suppression but a root marker: placed on
// a function declaration, it seeds alloccheck's call-closure walk.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one violation of the determinism contract.
type Finding struct {
	Pos  token.Position `json:"-"`
	Pass string         `json:"pass"`
	Msg  string         `json:"msg"`

	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the canonical "file:line: pass: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Msg)
}

// Options configures an analysis run.
type Options struct {
	// Passes selects a subset of pass names; nil or empty runs all passes.
	Passes []string
	// Dirs restricts analysis to packages whose root-relative directory
	// equals, or is under, one of the given slash-separated prefixes
	// ("" matches everything). Loading is still whole-module so
	// type-checking sees every dependency.
	Dirs []string
}

// Run loads the module rooted at root and applies the selected passes,
// returning findings sorted by file, line, column, pass and message.
func Run(root string, opts Options) ([]Finding, error) {
	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	buildModule(pkgs)
	passes, err := selectPasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, p := range pkgs {
		if !dirSelected(p.Rel, opts.Dirs) {
			continue
		}
		for _, pass := range passes {
			out = append(out, pass.run(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	for i := range out {
		out[i].File = out[i].Pos.Filename
		out[i].Line = out[i].Pos.Line
		out[i].Col = out[i].Pos.Column
	}
	return out, nil
}

// selectPasses resolves pass names to passes, rejecting unknown names.
func selectPasses(names []string) ([]Pass, error) {
	all := Passes()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Pass
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q (have %s)", n, strings.Join(passNames(all), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

func passNames(ps []Pass) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// dirSelected reports whether a package directory matches the Dirs filter.
func dirSelected(rel string, dirs []string) bool {
	if len(dirs) == 0 {
		return true
	}
	for _, d := range dirs {
		if d == "" || rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}
