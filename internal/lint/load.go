package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked, non-test package of the module under analysis.
// Test files (*_test.go) are never loaded: the determinism contract governs
// simulation code, and tests are exempt from every pass by construction.
type Package struct {
	// Path is the full import path (module path + "/" + Rel).
	Path string
	// Rel is the slash-separated directory relative to the module root
	// ("" for the root package, "internal/world", "cmd/mmv2v-sim", ...).
	Rel   string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package

	// Mod is the whole-module call-graph and struct-model index shared by
	// every package of one Run (see callgraph.go).
	Mod *Module

	root       string
	directives map[directiveKey]bool
}

// directiveKey identifies one //mmv2v:<name> directive occurrence by the
// source line that carries it.
type directiveKey struct {
	name string
	file string
	line int
}

// suppressed reports whether a //mmv2v:<name> directive covers the node
// starting at pos: either trailing on the same line or on the line
// immediately above.
func (p *Package) suppressed(name string, pos token.Pos) bool {
	at := p.Fset.Position(pos)
	return p.directives[directiveKey{name, at.Filename, at.Line}] ||
		p.directives[directiveKey{name, at.Filename, at.Line - 1}]
}

// relPos converts a token.Pos to a Position whose Filename is relative to
// the module root and slash-separated, for stable, machine-independent
// output.
func (p *Package) relPos(pos token.Pos) token.Position {
	at := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.root, at.Filename); err == nil {
		at.Filename = filepath.ToSlash(rel)
	}
	return at
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", filepath.Join(root, "go.mod"))
}

// sourceDirs walks the module tree and returns every directory (relative,
// slash-separated, "" for the root) holding at least one non-test .go file.
// testdata, hidden, and underscore-prefixed directories are skipped, so
// analyzer fixtures with deliberate violations are never loaded.
func sourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isSourceFile(e.Name()) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parsedPkg is one package after parsing, before type-checking.
type parsedPkg struct {
	rel     string
	path    string
	files   []*ast.File
	imports []string // module-internal import paths only
}

// parseDir parses the non-test .go files of one directory.
func parseDir(fset *token.FileSet, root, rel, module string) (*parsedPkg, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{rel: rel, path: module}
	if rel != "" {
		p.path = module + "/" + rel
	}
	name := ""
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: mixed package names %q and %q", dir, name, f.Name.Name)
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if ipath == module || strings.HasPrefix(ipath, module+"/") {
				p.imports = append(p.imports, ipath)
			}
		}
	}
	return p, nil
}

// chainImporter resolves module-internal imports from the packages loaded so
// far and delegates everything else (the standard library) to go/importer's
// source importer — keeping the analyzer stdlib-only per the repo rule.
type chainImporter struct {
	module   string
	loaded   map[string]*types.Package
	fallback types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == c.module || strings.HasPrefix(path, c.module+"/") {
		if p, ok := c.loaded[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: internal package %s imported before it was loaded", path)
	}
	return c.fallback.ImportFrom(path, dir, mode)
}

// Load parses and type-checks every non-test package under root, which must
// be a module root (contain go.mod). Packages are returned in a
// deterministic topological order (dependencies first, ties broken by path).
func Load(root string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := sourceDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*parsedPkg, len(dirs))
	var order []*parsedPkg
	for _, rel := range dirs {
		p, err := parseDir(fset, root, rel, module)
		if err != nil {
			return nil, err
		}
		byPath[p.path] = p
		order = append(order, p)
	}
	sorted, err := topoSort(order, byPath)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		module:   module,
		loaded:   make(map[string]*types.Package, len(sorted)),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var out []*Package
	for _, p := range sorted {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.path, err)
		}
		imp.loaded[p.path] = tpkg
		pkg := &Package{
			Path:       p.path,
			Rel:        p.rel,
			Fset:       fset,
			Files:      p.files,
			Info:       info,
			Types:      tpkg,
			root:       root,
			directives: make(map[directiveKey]bool),
		}
		collectDirectives(pkg)
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders packages dependencies-first; input order (sorted by path)
// breaks ties, so the result is deterministic.
func topoSort(pkgs []*parsedPkg, byPath map[string]*parsedPkg) ([]*parsedPkg, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var out []*parsedPkg
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		}
		state[p.path] = visiting
		for _, dep := range p.imports {
			d, ok := byPath[dep]
			if !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source directory", p.path, dep)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p.path] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// collectDirectives records every //mmv2v:<name> comment line in the
// package's files. A directive only suppresses findings when it carries a
// non-empty one-line justification after the name; a bare directive is
// recorded as false and leaves the finding in place.
func collectDirectives(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//mmv2v:")
				if !ok {
					continue
				}
				name, just, _ := strings.Cut(rest, " ")
				if i := strings.IndexAny(name, "\t"); i >= 0 {
					name, just = name[:i], name[i+1:]
				}
				if strings.TrimSpace(just) == "" {
					continue
				}
				at := p.Fset.Position(c.Pos())
				p.directives[directiveKey{name, at.Filename, at.Line}] = true
			}
		}
	}
}
