package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPassesOnFixtures runs each pass against its fixture module and checks
// the exact set of findings — including that directive suppression and the
// cmd//xrand/sim allowlists keep their sites clean.
func TestPassesOnFixtures(t *testing.T) {
	cases := []struct {
		pass string
		want []string // "file:line: pass" for every expected finding, sorted
	}{
		{
			pass: "maprange",
			want: []string{
				"pkg/pkg.go:11: maprange",
			},
		},
		{
			// Lines 15 and 20 are the transitive upgrade: call sites of
			// helpers that reach time.Now through the cmd/ tree
			// (clockutil.NowSec) or another internal package
			// (clocked.Stamp); the untainted clocked.Scale call stays
			// clean. internal/obs/live is exempt and sealed (caller.Watch
			// consuming it stays clean), but the allowlist is exactly that
			// package: its parent internal/obs still fires (obs.go:9 ×2).
			pass: "wallclock",
			want: []string{
				"internal/caller/caller.go:15: wallclock",
				"internal/caller/caller.go:20: wallclock",
				"internal/clocked/clocked.go:10: wallclock",
				"internal/clocked/clocked.go:11: wallclock",
				"internal/clocked/clocked.go:16: wallclock",
				"internal/clocked/clocked.go:17: wallclock",
				"internal/obs/obs.go:9: wallclock",
				"internal/obs/obs.go:9: wallclock",
			},
		},
		{
			// Line 14 is the transitive upgrade: the call site of a helper
			// wrapping math/rand; consuming the sealed internal/xrand
			// boundary (consumer.Split) stays clean.
			pass: "globalrand",
			want: []string{
				"internal/consumer/consumer.go:14: globalrand",
				"internal/seeded/seeded.go:10: globalrand",
				"internal/seeded/seeded.go:16: globalrand",
				"internal/seeded/seeded.go:16: globalrand",
				"internal/seeded/seeded.go:17: globalrand",
			},
		},
		{
			// internal/obs/live's go + select are exempt; the allowlist is
			// exactly that package, so its parent internal/obs still fires.
			pass: "goroutine",
			want: []string{
				"internal/obs/obs.go:7: goroutine",
				"internal/spawner/spawner.go:7: goroutine",
				"internal/spawner/spawner.go:8: goroutine",
			},
		},
		{
			pass: "floateq",
			want: []string{
				"pkg/pkg.go:8: floateq",
				"pkg/pkg.go:13: floateq",
			},
		},
		{
			pass: "errdrop",
			want: []string{
				"pkg/pkg.go:20: errdrop",
				"pkg/pkg.go:44: errdrop",
				"pkg/pkg.go:56: errdrop",
			},
		},
		{
			pass: "unitcheck",
			want: []string{
				"pkg/pkg.go:16: unitcheck",
				"pkg/pkg.go:21: unitcheck",
				"pkg/pkg.go:47: unitcheck",
				"pkg/pkg.go:52: unitcheck",
				"pkg/pkg.go:57: unitcheck",
				"pkg/pkg.go:67: unitcheck",
				"pkg/pkg.go:86: unitcheck",
				"pkg/pkg.go:91: unitcheck",
			},
		},
		{
			// 33: uncovered field; 35: //mmv2v:derived without justification
			// does not suppress; 49: encoded but never restored; 68: no
			// load path at all. Counter (helper save + justified derived)
			// and ctor.Session (free-function restore, composite-literal
			// key coverage) stay clean.
			pass: "persistcheck",
			want: []string{
				"internal/state/state.go:33: persistcheck",
				"internal/state/state.go:35: persistcheck",
				"internal/state/state.go:49: persistcheck",
				"internal/state/state.go:68: persistcheck",
			},
		},
		{
			// global.go: package-level writes outside init (init and the
			// justified knob stay clean); spawn.go:13: a captured-slice
			// write plus two loop-variable captures on one closure line
			// (FanSafe's argument-passing and the fixture's internal/sim
			// slot merge stay clean). internal/obs/live's serving-goroutine
			// write is exempt from check 3; the allowlist is exactly that
			// package, so the same shape in its parent internal/obs fires.
			pass: "sharecheck",
			want: []string{
				"internal/global/global.go:14: sharecheck",
				"internal/global/global.go:24: sharecheck",
				"internal/obs/obs.go:10: sharecheck",
				"internal/spawn/spawn.go:13: sharecheck",
				"internal/spawn/spawn.go:13: sharecheck",
				"internal/spawn/spawn.go:13: sharecheck",
			},
		},
		{
			// Tick is the hot root: one finding per detector (30–43), plus 44
			// where a bare //mmv2v:alloc without justification does not
			// suppress, plus grow's make at 62 carrying the depth-two witness
			// chain "Tick → helper → grow". helper's justified append, the
			// interface-dispatched DynAlloc.Step, and the unreached Cold stay
			// clean.
			pass: "alloccheck",
			want: []string{
				"pkg/pkg.go:30: alloccheck",
				"pkg/pkg.go:31: alloccheck",
				"pkg/pkg.go:32: alloccheck",
				"pkg/pkg.go:33: alloccheck",
				"pkg/pkg.go:34: alloccheck",
				"pkg/pkg.go:35: alloccheck",
				"pkg/pkg.go:36: alloccheck",
				"pkg/pkg.go:37: alloccheck",
				"pkg/pkg.go:38: alloccheck",
				"pkg/pkg.go:39: alloccheck",
				"pkg/pkg.go:40: alloccheck",
				"pkg/pkg.go:41: alloccheck",
				"pkg/pkg.go:42: alloccheck",
				"pkg/pkg.go:43: alloccheck",
				"pkg/pkg.go:44: alloccheck",
				"pkg/pkg.go:62: alloccheck",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.pass, func(t *testing.T) {
			root := filepath.Join("testdata", tc.pass)
			findings, err := Run(root, Options{Passes: []string{tc.pass}})
			if err != nil {
				t.Fatalf("Run(%s): %v", root, err)
			}
			var got []string
			for _, f := range findings {
				got = append(got, fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pass))
			}
			if !equalStrings(got, tc.want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, tc.want)
			}

			// Findings must be reproducible verbatim across runs.
			again, err := Run(root, Options{Passes: []string{tc.pass}})
			if err != nil {
				t.Fatalf("second Run(%s): %v", root, err)
			}
			for i := range findings {
				if i < len(again) && findings[i].String() != again[i].String() {
					t.Errorf("run-to-run drift at %d: %q vs %q", i, findings[i], again[i])
				}
			}
			if len(findings) != len(again) {
				t.Errorf("run-to-run count drift: %d vs %d", len(findings), len(again))
			}
		})
	}
}

// TestAllPassesTogether runs every pass at once over one fixture to confirm
// pass selection defaults to all and findings stay sorted by position.
func TestAllPassesTogether(t *testing.T) {
	findings, err := Run(filepath.Join("testdata", "floateq"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of order: %q before %q", a, b)
		}
	}
}

// TestUnknownPass rejects pass names that do not exist.
func TestUnknownPass(t *testing.T) {
	_, err := Run(filepath.Join("testdata", "floateq"), Options{Passes: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Fatalf("want unknown-pass error, got %v", err)
	}
}

// TestDirFilter restricts analysis to a directory subtree.
func TestDirFilter(t *testing.T) {
	root := filepath.Join("testdata", "wallclock")
	findings, err := Run(root, Options{Passes: []string{"wallclock"}, Dirs: []string{"cmd"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("cmd/ subtree should be clean, got %v", findings)
	}
	findings, err = Run(root, Options{Passes: []string{"wallclock"}, Dirs: []string{"internal/clocked"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Errorf("internal/clocked should have 4 findings, got %v", findings)
	}
}

// TestLoadErrors covers the loader's failure paths: a syntax-error file, an
// import of a module-internal package with no source directory, and an
// import cycle must each come back as a load error — the cmd's exit-2
// contract — never as a panic or as findings.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		fixture string
		want    string // substring of the load error
	}{
		{"syntax", "expected"},
		{"missing", "no source directory"},
		{"cycle", "import cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			root := filepath.Join("testdata", "broken", tc.fixture)
			findings, err := Run(root, Options{})
			if err == nil {
				t.Fatalf("Run(%s) = %v findings, want load error", root, findings)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Run(%s) error %q does not mention %q", root, err, tc.want)
			}
		})
	}
}

// TestRepoIsClean is the determinism meta-test: the analyzer runs over the
// real repository source, so a contract regression in any package fails
// `go test ./...` — not just the separate `make lint` gate. DESIGN.md §8.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; covered by make lint in short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	findings, err := Run(root, Options{})
	if err != nil {
		t.Fatalf("Run over repo: %v", err)
	}
	if len(findings) != 0 {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Errorf("determinism contract violated:\n%s", strings.Join(lines, "\n"))
	}
}

// copyModule copies a module's go.mod and .go files into dst, preserving
// directory structure and skipping VCS, hidden, and testdata trees.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// injectField inserts a field declaration right after the opening brace of
// the named struct type in file.
func injectField(t *testing.T, file, typeName, fieldDecl string) {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	marker := "type " + typeName + " struct {"
	if !strings.Contains(string(data), marker) {
		t.Fatalf("%s: no %q", file, marker)
	}
	mutated := strings.Replace(string(data), marker, marker+"\n\t"+fieldDecl, 1)
	if err := os.WriteFile(file, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistCheckMutation is the codec-drift mutation test: adding a field
// to a covered fixture struct must produce a persistcheck finding, and the
// same field annotated //mmv2v:derived with a justification must not.
func TestPersistCheckMutation(t *testing.T) {
	cases := []struct {
		name     string
		field    string
		findings int
	}{
		{"uncovered-field", "ghost int", 1},
		{"derived-annotation", "ghost int //mmv2v:derived rebuilt lazily on first use", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, filepath.Join("testdata", "persistcheck"), tmp)
			target := filepath.Join(tmp, "internal", "ctor", "ctor.go")
			injectField(t, target, "Session", tc.field)
			findings, err := Run(tmp, Options{Passes: []string{"persistcheck"}})
			if err != nil {
				t.Fatal(err)
			}
			var hits []string
			for _, f := range findings {
				if strings.Contains(f.Msg, "ghost") {
					hits = append(hits, f.String())
				}
			}
			if len(hits) != tc.findings {
				t.Errorf("ghost-field findings = %v, want %d", hits, tc.findings)
			}
		})
	}
}

// injectBefore inserts stmt on its own line immediately before the first
// occurrence of marker in file, inheriting the marker's indentation.
func injectBefore(t *testing.T, file, marker, stmt string) {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), marker) {
		t.Fatalf("%s: no %q", file, marker)
	}
	mutated := strings.Replace(string(data), marker, stmt+"\n\t"+marker, 1)
	if err := os.WriteFile(file, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAllocCheckMutation is the allocation-discipline mutation table: an
// allocation construct injected into a transitively hot fixture function
// must add exactly one finding — unless it carries a justified //mmv2v:alloc
// directive, in which case the finding count must not move.
func TestAllocCheckMutation(t *testing.T) {
	const baseline = 16 // fixture findings with no mutation
	cases := []struct {
		name  string
		stmt  string // injected before helper's grow(s) call; "" = clean
		extra int
	}{
		{"clean", "", 0},
		{"injected-make", "leak := make([]int, n)\n\t_ = leak", 1},
		{"boxing", "box(n)", 1},
		{"closure-capture", "g := func() int { return n }\n\t_ = g", 1},
		{"directive-suppressed", "leak := make([]int, n) //mmv2v:alloc one-time growth on the first tick\n\t_ = leak", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, filepath.Join("testdata", "alloccheck"), tmp)
			if tc.stmt != "" {
				injectBefore(t, filepath.Join(tmp, "pkg", "pkg.go"), "grow(s)", tc.stmt)
			}
			findings, err := Run(tmp, Options{Passes: []string{"alloccheck"}})
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) != baseline+tc.extra {
				var lines []string
				for _, f := range findings {
					lines = append(lines, f.String())
				}
				t.Errorf("findings = %d, want %d:\n%s", len(findings), baseline+tc.extra, strings.Join(lines, "\n"))
			}
		})
	}
}

// TestRepoHotAllocIsCaught is the deliberate-injection meta-test for the
// allocation contract: a copy of the real repository with one make planted
// inside world.Refresh must fail alloccheck with exactly that finding,
// proving the pass — and therefore TestRepoIsClean and make lint — would
// catch a real allocation regression on the pinned hot path.
func TestRepoHotAllocIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyModule(t, root, tmp)
	injectBefore(t, filepath.Join(tmp, "internal", "world", "world.go"),
		"w.obsRefreshes.Inc()", "hotLeak := make([]int, w.n)\n\t_ = hotLeak")
	findings, err := Run(tmp, Options{Passes: []string{"alloccheck"}})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range findings {
		if strings.Contains(f.Msg, "make allocates on hot path (Refresh)") {
			hit = true
		} else {
			t.Errorf("unexpected extra finding: %s", f)
		}
	}
	if !hit {
		t.Error("injected make inside world.Refresh produced no alloccheck finding")
	}
}

// TestRepoCodecDriftIsCaught is the deliberate-injection meta-test (the
// PR 5 laundered-dB pattern): a copy of the real repository with one
// unannotated field added to a codec-bearing struct must fail persistcheck,
// proving the pass — and therefore TestRepoIsClean and make lint — would
// catch real add-a-field drift in internal/medium's checkpoint codec.
func TestRepoCodecDriftIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyModule(t, root, tmp)
	injectField(t, filepath.Join(tmp, "internal", "medium", "medium.go"),
		"Medium", "driftDemo uint64")
	findings, err := Run(tmp, Options{Passes: []string{"persistcheck"}})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range findings {
		if strings.Contains(f.Msg, "driftDemo") {
			hit = true
		} else {
			t.Errorf("unexpected extra finding: %s", f)
		}
	}
	if !hit {
		t.Error("injected uncovered field Medium.driftDemo produced no persistcheck finding")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
