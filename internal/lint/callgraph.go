package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural substrate of the analyzer (DESIGN.md §8):
// a lightweight, stdlib-only call-graph and struct-model layer built once
// per Run over every loaded package. Passes that reason beyond a single
// expression — persistcheck's codec field coverage, and the transitive
// wallclock/globalrand taint — consume it through Package.Mod.
//
// The model is deliberately static and conservative:
//
//   - call edges are recorded only for direct references to named module
//     functions and methods (idents and selector expressions resolving to a
//     *types.Func declared in this module). A bare reference counts as an
//     edge even without a call — a function value that escapes is assumed
//     to be invoked eventually;
//   - interface method calls resolve to the interface's method object,
//     which has no body here, so dynamic dispatch conservatively ends the
//     walk (every concrete implementation is still analyzed at its own
//     declaration);
//   - function literals are attributed to their enclosing declaration:
//     anything a closure does, its declarer is considered to do.
//
// Package-level var initializer expressions run outside any declared
// function and are not modeled; the repo's determinism passes govern
// executable simulation paths, which all live in declared functions.

// callSite is one static reference from a function body to a module
// function or method.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

// directUse is one direct use of a forbidden stdlib function (time.Now,
// math/rand.Intn, ...) inside a function body.
type directUse struct {
	name string // qualified, e.g. "time.Now"
	pos  token.Pos
}

// funcInfo is the per-function row of the module call graph.
type funcInfo struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	// calls lists static references to module functions in source order.
	calls []callSite
	// wallclock and rand list direct uses of wall-clock and math/rand
	// functions in source order.
	wallclock []directUse
	rand      []directUse
	// fieldRefs is the set of struct fields this function's body mentions —
	// selections, composite-literal keys — reads and writes alike.
	fieldRefs map[*types.Var]bool
}

// Module is the whole-module analysis index shared by every package of one
// Run. Maps are used as sets and lookup tables only; every iteration that
// could influence output order goes through the sorted funcs slice.
type Module struct {
	pkgs  []*Package
	funcs map[*types.Func]*funcInfo
	// order lists every declared function sorted by source position, the
	// canonical iteration order for deterministic taint propagation.
	order []*funcInfo

	wallclockTaint map[*types.Func]string // func -> witness chain
	randTaint      map[*types.Func]string

	// hotChains maps every function statically reachable from a
	// //mmv2v:hotpath root to its call-path witness chain from that root
	// ("Refresh → rebuildIndex"), consumed by alloccheck. Roots map to
	// their own name; when several roots reach a function, the first root
	// in position order wins, so chains are identical run to run.
	hotChains map[*types.Func]string
}

// buildModule indexes every declared function of the loaded packages and
// links each package back to the shared module model.
func buildModule(pkgs []*Package) *Module {
	m := &Module{pkgs: pkgs, funcs: make(map[*types.Func]*funcInfo)}
	for _, p := range pkgs {
		p.Mod = m
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, pkg: p, decl: fd, fieldRefs: make(map[*types.Var]bool)}
				collectBody(p, fd, fi)
				m.funcs[obj] = fi
				m.order = append(m.order, fi)
			}
		}
	}
	sort.Slice(m.order, func(i, j int) bool {
		a, b := m.order[i].pkg.relPos(m.order[i].decl.Pos()), m.order[j].pkg.relPos(m.order[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	// internal/obs/live is the sanctioned introspection boundary: its
	// wall-clock reads feed only the HTTP progress/ETA surface and can never
	// flow back into simulation state, so taint neither originates in nor
	// propagates through it. Everything else reaching the clock outside cmd/
	// is laundering.
	m.wallclockTaint = m.propagate(
		func(fi *funcInfo) []directUse { return fi.wallclock },
		func(fi *funcInfo) bool { return underLive(fi.pkg) },
	)
	// internal/xrand is the sanctioned randomness wrapper: its direct
	// math/rand use is the boundary itself, so taint neither originates in
	// nor propagates through it. Callers consume split streams through its
	// API; everything else wrapping math/rand is laundering.
	m.randTaint = m.propagate(
		func(fi *funcInfo) []directUse { return fi.rand },
		func(fi *funcInfo) bool { return fi.pkg.Rel == "internal/xrand" },
	)
	m.hotChains = m.hotpaths()
	return m
}

// hotpaths seeds every //mmv2v:hotpath-annotated declaration (directive
// trailing on, or on the line directly above, the func keyword — the last
// doc-comment line works) and walks its static call closure breadth-first,
// recording the call-path witness chain from the root. Roots are visited in
// position order and a function keeps the first chain that reaches it, so
// the map — and every alloccheck finding message built from it — is
// deterministic.
func (m *Module) hotpaths() map[*types.Func]string {
	chains := make(map[*types.Func]string)
	for _, root := range m.order {
		if !root.pkg.suppressed("hotpath", root.decl.Pos()) {
			continue
		}
		if _, seen := chains[root.obj]; !seen {
			chains[root.obj] = root.obj.Name()
		}
		frontier := []*types.Func{root.obj}
		for len(frontier) > 0 {
			fn := frontier[0]
			frontier = frontier[1:]
			fi, ok := m.funcs[fn]
			if !ok {
				continue
			}
			for _, cs := range fi.calls {
				if _, seen := chains[cs.callee]; seen {
					continue
				}
				chains[cs.callee] = chains[fn] + " → " + cs.callee.Name()
				frontier = append(frontier, cs.callee)
			}
		}
	}
	return chains
}

// collectBody walks one declared function (closures included) and records
// call edges, direct forbidden-stdlib uses, and struct-field references.
func collectBody(p *Package, fd *ast.FuncDecl, fi *funcInfo) {
	record := func(id *ast.Ident) {
		obj := p.Info.Uses[id]
		fn, ok := obj.(*types.Func)
		if !ok {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				fi.fieldRefs[v] = true // composite-literal key
			}
			return
		}
		if fn.Pkg() == nil {
			return
		}
		switch path := fn.Pkg().Path(); {
		case path == "time" && wallClockFuncs[fn.Name()]:
			fi.wallclock = append(fi.wallclock, directUse{"time." + fn.Name(), id.Pos()})
		case path == "math/rand" || path == "math/rand/v2":
			fi.rand = append(fi.rand, directUse{path + "." + fn.Name(), id.Pos()})
		case moduleInternal(p, path):
			fi.calls = append(fi.calls, callSite{fn, id.Pos()})
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			record(e)
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					fi.fieldRefs[v] = true
				}
			}
		}
		return true
	})
}

// moduleInternal reports whether an import path belongs to the module under
// analysis.
func moduleInternal(p *Package, path string) bool {
	module := p.Path
	if p.Rel != "" {
		module = strings.TrimSuffix(p.Path, "/"+p.Rel)
	}
	return path == module || strings.HasPrefix(path, module+"/")
}

// propagate computes the transitive taint relation for one source kind: a
// function is tainted when it directly uses a forbidden stdlib function or
// statically references a tainted module function. sealed marks functions
// that are a sanctioned boundary: they neither seed nor forward taint.
//
// The result maps each tainted function to a human-readable witness chain
// ("NowSec → time.Now"). Propagation is a breadth-first fixpoint over the
// position-sorted function order, so chains — and therefore finding
// messages — are identical run to run.
func (m *Module) propagate(sources func(*funcInfo) []directUse, sealed func(*funcInfo) bool) map[*types.Func]string {
	taint := make(map[*types.Func]string, 8)
	var frontier []*funcInfo
	for _, fi := range m.order {
		if sealed(fi) {
			continue
		}
		if uses := sources(fi); len(uses) > 0 {
			taint[fi.obj] = fi.obj.Name() + " → " + uses[0].name
			frontier = append(frontier, fi)
		}
	}
	for len(frontier) > 0 {
		var next []*funcInfo
		for _, fi := range m.order {
			if _, done := taint[fi.obj]; done || sealed(fi) {
				continue
			}
			for _, cs := range fi.calls {
				chain, tainted := taint[cs.callee]
				if !tainted {
					continue
				}
				taint[fi.obj] = fi.obj.Name() + " → " + chain
				next = append(next, fi)
				break
			}
		}
		frontier = next
	}
	return taint
}

// closure returns the functions statically reachable from root (inclusive)
// through module call edges, in deterministic breadth-first order.
func (m *Module) closure(root *types.Func) []*types.Func {
	seen := map[*types.Func]bool{root: true}
	out := []*types.Func{root}
	for i := 0; i < len(out); i++ {
		fi, ok := m.funcs[out[i]]
		if !ok {
			continue
		}
		for _, cs := range fi.calls {
			if !seen[cs.callee] {
				seen[cs.callee] = true
				out = append(out, cs.callee)
			}
		}
	}
	return out
}

// fieldRefsOf unions the field-reference sets of every function in the
// closure of root. The result is consumed by membership lookups only.
func (m *Module) fieldRefsOf(root *types.Func) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	for _, fn := range m.closure(root) {
		if fi, ok := m.funcs[fn]; ok {
			//mmv2v:sorted pure set union; membership-only consumer
			for v := range fi.fieldRefs {
				refs[v] = true
			}
		}
	}
	return refs
}
