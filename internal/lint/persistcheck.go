package lint

import (
	"fmt"
	"go/types"
)

// persistcheck is the checkpoint-codec field-coverage analysis (DESIGN.md
// §8, guarding the §11 persistence contract). The snapshot layer's
// SaveState/LoadState codecs are hand-maintained across every stateful
// package; the classic drift is adding a struct field without a matching
// encode/decode, which keeps compiling, keeps passing unit tests, and only
// surfaces weeks later as a replay-digest divergence. This pass turns that
// drift into a lint finding at the field declaration:
//
//   - for every named struct type with a SaveState(*persist.Encoder)
//     method, each field must either be referenced somewhere in SaveState's
//     static call closure (the interprocedural part: helpers like
//     saveVehicles or Registry.Counter count) or carry a
//     //mmv2v:derived <justification> directive asserting it is rebuilt on
//     restore (construction parameters, caches, statistics handles);
//   - the type must have a restore path: a LoadState(*persist.Decoder)
//     method, or a package-level restore function taking a *persist.Decoder
//     and producing (or mutating) the type — the udt.Restore shape;
//   - every field SaveState references must also be referenced in the
//     restore path's closure, assigned or validated — a field encoded but
//     never touched on decode is the other half of the same drift.
//
// The Encoder/Decoder vocabulary is matched by name — pointer to a type
// named Encoder/Decoder declared in a package named "persist" — so fixture
// modules exercise the pass without importing the real codec.

// persistParam reports whether t is *persist.<name>.
func persistParam(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "persist"
}

// isSaveState reports whether fn has the SaveState(*persist.Encoder) shape.
func isSaveState(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Name() != "SaveState" {
		return false
	}
	return sig.Params().Len() == 1 && sig.Results().Len() == 0 &&
		persistParam(sig.Params().At(0).Type(), "Encoder")
}

// isLoadState reports whether fn has the LoadState(*persist.Decoder) error
// shape.
func isLoadState(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Name() != "LoadState" {
		return false
	}
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		persistParam(sig.Params().At(0).Type(), "Decoder") &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

// mentionsType reports whether t (or *t) appears among the tuple's entries.
func mentionsType(tuple *types.Tuple, t *types.Named) bool {
	for i := 0; i < tuple.Len(); i++ {
		at := tuple.At(i).Type()
		if ptr, ok := at.(*types.Pointer); ok {
			at = ptr.Elem()
		}
		if named, ok := at.(*types.Named); ok && named.Obj() == t.Obj() {
			return true
		}
	}
	return false
}

// restoreFunc finds the restore path for a type that lacks a LoadState
// method: a package-level function in the type's package whose signature
// takes a *persist.Decoder and mentions the type in its parameters or
// results (the `func Restore(env, d) (*T, error)` constructor shape).
// Functions are scanned in the module's position-sorted order, so the
// choice is deterministic.
func restoreFunc(m *Module, p *Package, named *types.Named) *types.Func {
	for _, fi := range m.order {
		if fi.pkg != p || fi.decl.Recv != nil {
			continue
		}
		sig, ok := fi.obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		hasDecoder := false
		for i := 0; i < sig.Params().Len(); i++ {
			if persistParam(sig.Params().At(i).Type(), "Decoder") {
				hasDecoder = true
				break
			}
		}
		if !hasDecoder {
			continue
		}
		if mentionsType(sig.Params(), named) || mentionsType(sig.Results(), named) {
			return fi.obj
		}
	}
	return nil
}

// runPersistCheck applies the codec field-coverage checks to the types
// declared in one package.
func runPersistCheck(p *Package) []Finding {
	m := p.Mod
	if m == nil || p.Types == nil {
		return nil
	}
	var out []Finding
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var save, load *types.Func
		for i := 0; i < named.NumMethods(); i++ {
			switch fn := named.Method(i); {
			case isSaveState(fn):
				save = fn
			case isLoadState(fn):
				load = fn
			}
		}
		if save == nil {
			continue
		}
		saved := m.fieldRefsOf(save)

		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || saved[f] || p.suppressed("derived", f.Pos()) {
				continue
			}
			out = append(out, finding(p, f.Pos(), "persistcheck",
				fmt.Sprintf("field %s.%s is not referenced by SaveState; encode it, or annotate //mmv2v:derived with how restore rebuilds it", name, f.Name())))
		}

		if load == nil {
			load = restoreFunc(m, p, named)
		}
		if load == nil {
			if fi, ok := m.funcs[save]; ok {
				out = append(out, finding(p, fi.decl.Pos(), "persistcheck",
					fmt.Sprintf("type %s has SaveState but no LoadState method or *persist.Decoder restore function; its checkpoints cannot be restored", name)))
			}
			continue
		}
		loaded := m.fieldRefsOf(load)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !saved[f] || loaded[f] || p.suppressed("derived", f.Pos()) {
				continue
			}
			out = append(out, finding(p, f.Pos(), "persistcheck",
				fmt.Sprintf("field %s.%s is encoded by SaveState but never assigned or validated by %s; checkpointed runs resume without it", name, f.Name(), load.Name())))
		}
	}
	return out
}
