package units

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func close(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestLogLinearRoundTrips(t *testing.T) {
	close(t, "LinearToDB(100)", LinearToDB(100).Decibels(), 20)
	close(t, "DB(20).Linear()", DB(20).Linear(), 100)
	close(t, "DBmToMilliWatt(0)", DBmToMilliWatt(0).MW(), 1)
	close(t, "DBmToMilliWatt(30)", DBmToMilliWatt(30).MW(), 1000)
	close(t, "MilliWattToDBm(1000)", MilliWattToDBm(1000).Decibels(), 30)
	close(t, "DBm(28).Plus(DB(-70))", DBm(28).Plus(DB(-70)).Decibels(), -42)
	close(t, "RatioDB(100, 1)", RatioDB(100, 1).Decibels(), 20)
	close(t, "MilliWatt(6).Over(3)", MilliWatt(6).Over(3), 2)
}

func TestGeometryAndTime(t *testing.T) {
	close(t, "Degrees(180)", Degrees(180).Rad(), math.Pi)
	close(t, "Radian(pi).Deg()", Radian(math.Pi).Deg(), 180)
	close(t, "Meter(1500).Km()", Meter(1500).Km(), 1.5)
	close(t, "Meter(10).Over(4)", Meter(10).Over(4), 2.5)
	close(t, "Sec(0.003).Micros()", Sec(0.003).Micros(), 3000)
	close(t, "Sec(0.25).Millis()", Sec(0.25).Millis(), 250)
	close(t, "Sec(2).Over(0.5)", Sec(2).Over(0.5), 4)
	if got := Sec(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Sec(1.5).Duration() = %v", got)
	}
	close(t, "FromDuration(250ms)", FromDuration(250*time.Millisecond).S(), 0.25)
	close(t, "MeterPerSec(20).Times(2)", MeterPerSec(20).Times(2).MPS(), 40)
	close(t, "Hertz(2.16e9).Hz()", Hertz(2.16e9).Hz(), 2.16e9)
}

func TestScaling(t *testing.T) {
	close(t, "DB(15).Times(3)", DB(15).Times(3).Decibels(), 45)
	close(t, "DB(30).Div(2)", DB(30).Div(2).Decibels(), 15)
	close(t, "MilliWatt(8).Times(0.5)", MilliWatt(8).Times(0.5).MW(), 4)
	close(t, "Meter(7).Times(2)", Meter(7).Times(2).M(), 14)
	close(t, "Sec(10).Div(4)", Sec(10).Div(4).S(), 2.5)
	close(t, "Radian(1).Times(0.5)", Radian(1).Times(0.5).Rad(), 0.5)
	close(t, "Radian(3).Over(2)", Radian(3).Over(2), 1.5)
}

// TestNoStringers pins the byte-compat invariant: unit types must format
// exactly like raw float64, so none of them may implement fmt.Stringer.
// Adding a String method would silently change every %v of every table the
// experiments print.
func TestNoStringers(t *testing.T) {
	vals := []any{DB(1.5), DBm(1.5), MilliWatt(1.5), Meter(1.5),
		MeterPerSec(1.5), Sec(1.5), Hertz(1.5), Radian(1.5)}
	for _, v := range vals {
		if _, ok := v.(fmt.Stringer); ok {
			t.Errorf("%T implements fmt.Stringer; unit types must render as raw floats", v)
		}
		if got := fmt.Sprintf("%v", v); got != "1.5" {
			t.Errorf("%%v of %T = %q, want \"1.5\"", v, got)
		}
	}
}
