// Package units declares the dimensioned quantities of the mmV2V physics
// stack as defined float64 types, and is the single conversion authority
// between them (DESIGN.md §8). The paper's arithmetic mixes log-domain gains
// (Eq. 1 path loss, Eq. 2 beam gains, Eq. 3 SINR, all in dB), absolute
// powers (dBm configs, milliwatt link budgets), geometry (meters, radians)
// and timings (seconds at several scales) — exactly the class of silent
// unit-mixing bugs end-to-end mmWave simulators warn about. Giving each
// quantity its own defined type makes the Go compiler reject cross-unit
// arithmetic outright, and the `unitcheck` lint pass closes the remaining
// escape hatches (bare float64 conversions, raw constants, log×linear
// products).
//
// Conventions:
//
//   - Every type has underlying float64, so unit-typed arithmetic compiles
//     to exactly the float64 ops it replaces (see bench_test.go) and fmt
//     renders values byte-identically to plain floats — none of these types
//     may ever grow a String method.
//   - Leaving the unit system goes through a named accessor (Meter.M,
//     DB.Decibels, Sec.Micros, ...): an audited, greppable boundary.
//     Entering it is a plain conversion (units.Meter(50)); `unitcheck` flags
//     raw float64(x) escapes and cross-unit conversions instead.
//   - Dimensionless scalars (linear antenna/path gains, probabilities,
//     ratios) stay bare float64. Scaling a quantity by a scalar uses
//     Times/Div; a same-unit quotient uses Over, which returns the bare
//     ratio instead of a nonsensically re-typed value.
package units

import (
	"math"
	"time"
)

// DB is a relative power quantity in decibels: path loss, antenna gain,
// SINR, shadowing spread. Log-domain: add DBs to compose gains, never
// multiply two DB values.
type DB float64

// DBm is an absolute power in decibels referenced to one milliwatt
// (transmit power, noise floor). DBm + DB yields DBm via Plus.
type DBm float64

// MilliWatt is an absolute power in linear scale, the domain Eq. 3's SINR
// numerators and interference sums live in.
type MilliWatt float64

// Meter is a distance or length.
type Meter float64

// MeterPerSec is a speed.
type MeterPerSec float64

// Sec is a time span in seconds (for rate/mean-duration style parameters;
// event timestamps use des.Time and frame timings use time.Duration).
type Sec float64

// Hertz is a frequency or bandwidth.
type Hertz float64

// Radian is an angle or angular width. Compass bearings keep their own
// geom.Bearing type; Radian covers beam widths, pitches and angle
// differences.
type Radian float64

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(ratio float64) DB { return DB(10 * math.Log10(ratio)) }

// Linear converts a decibel ratio to linear scale.
func (d DB) Linear() float64 { return math.Pow(10, float64(d)/10) }

// Decibels returns the raw dB value for formatting, histograms and
// threshold tables.
func (d DB) Decibels() float64 { return float64(d) }

// Times scales the dB quantity by a dimensionless factor (per-blocker
// penalties, per-km absorption, σ·z shadowing draws).
func (d DB) Times(f float64) DB { return DB(float64(d) * f) }

// Div divides the dB quantity by a dimensionless factor.
func (d DB) Div(f float64) DB { return DB(float64(d) / f) }

// RatioDB returns num/den as a decibel ratio — the Eq. 3 SINR form. The
// quotient of two absolute powers is dimensionless, so this is the only
// sanctioned way to divide MilliWatt by MilliWatt into the log domain.
func RatioDB(num, den MilliWatt) DB {
	return DB(10 * math.Log10(float64(num)/float64(den)))
}

// DBmToMilliWatt converts an absolute power from dBm to milliwatts.
func DBmToMilliWatt(p DBm) MilliWatt { return MilliWatt(math.Pow(10, float64(p)/10)) }

// MilliWattToDBm converts an absolute power from milliwatts to dBm.
func MilliWattToDBm(p MilliWatt) DBm { return DBm(10 * math.Log10(float64(p))) }

// Plus applies a log-domain gain to an absolute power: dBm + dB = dBm.
func (p DBm) Plus(g DB) DBm { return DBm(float64(p) + float64(g)) }

// Minus returns the log-domain ratio of two absolute powers:
// dBm − dBm = dB (the link-budget SNR form).
func (p DBm) Minus(q DBm) DB { return DB(float64(p) - float64(q)) }

// Decibels returns the raw dBm value.
func (p DBm) Decibels() float64 { return float64(p) }

// MW returns the raw milliwatt value.
func (p MilliWatt) MW() float64 { return float64(p) }

// Times scales the power by a dimensionless factor (linear beam and path
// gains).
func (p MilliWatt) Times(f float64) MilliWatt { return MilliWatt(float64(p) * f) }

// Over returns the dimensionless ratio p/q of two absolute powers.
func (p MilliWatt) Over(q MilliWatt) float64 { return float64(p) / float64(q) }

// M returns the raw value in meters.
func (m Meter) M() float64 { return float64(m) }

// Km returns the distance in kilometers.
func (m Meter) Km() float64 { return float64(m) / 1000 }

// Times scales the distance by a dimensionless factor.
func (m Meter) Times(f float64) Meter { return Meter(float64(m) * f) }

// Over returns the dimensionless ratio m/o of two distances.
func (m Meter) Over(o Meter) float64 { return float64(m) / float64(o) }

// MPS returns the raw value in meters per second.
func (v MeterPerSec) MPS() float64 { return float64(v) }

// Times scales the speed by a dimensionless factor.
func (v MeterPerSec) Times(f float64) MeterPerSec { return MeterPerSec(float64(v) * f) }

// S returns the raw value in seconds.
func (s Sec) S() float64 { return float64(s) }

// Micros returns the span in microseconds.
func (s Sec) Micros() float64 { return float64(s) * 1e6 }

// Millis returns the span in milliseconds.
func (s Sec) Millis() float64 { return float64(s) * 1e3 }

// Duration converts the span to a time.Duration (nanosecond granularity).
func (s Sec) Duration() time.Duration { return time.Duration(float64(s) * float64(time.Second)) }

// FromDuration converts a time.Duration to seconds.
func FromDuration(d time.Duration) Sec { return Sec(d.Seconds()) }

// Times scales the span by a dimensionless factor.
func (s Sec) Times(f float64) Sec { return Sec(float64(s) * f) }

// Div divides the span by a dimensionless factor (intensity scaling).
func (s Sec) Div(f float64) Sec { return Sec(float64(s) / f) }

// Over returns the dimensionless ratio s/o of two spans.
func (s Sec) Over(o Sec) float64 { return float64(s) / float64(o) }

// Hz returns the raw value in hertz.
func (h Hertz) Hz() float64 { return float64(h) }

// Rad returns the raw value in radians.
func (r Radian) Rad() float64 { return float64(r) }

// Deg returns the angle in degrees.
func (r Radian) Deg() float64 { return float64(r) * 180 / math.Pi }

// Degrees converts an angle from degrees to radians.
func Degrees(deg float64) Radian { return Radian(deg * math.Pi / 180) }

// Times scales the angle by a dimensionless factor.
func (r Radian) Times(f float64) Radian { return Radian(float64(r) * f) }

// Over returns the dimensionless ratio r/o of two angles.
func (r Radian) Over(o Radian) float64 { return float64(r) / float64(o) }
