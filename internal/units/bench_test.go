package units

import (
	"math"
	"testing"
)

// The benchmark pairs below pin the zero-overhead guarantee: a defined
// float64 type is erased at compile time, so the units-typed form of the
// Eq. 1 / Eq. 3 hot-path arithmetic must run at the same speed as the raw
// float64 form it replaced (and the whole-pipeline world Refresh15vpl and
// channel SINR benchmarks must show no delta either). Run both halves with
//
//	go test -bench=UnitOverhead -count=5 ./internal/units/
//
// and compare ns/op; any measurable gap is a regression in the units layer.

var (
	sinkF  float64
	sinkDB DB
)

// rawPathLoss is Eq. 1 in bare float64, the pre-refactor form.
func rawPathLoss(exp, offset, perBlocker, atmPerKm, dist float64, blockers int) float64 {
	o := offset + float64(blockers)*perBlocker
	return exp*10*math.Log10(dist) + o + atmPerKm*dist/1000
}

// typedPathLoss is Eq. 1 through the units vocabulary.
func typedPathLoss(exp float64, offset, perBlocker DB, atmPerKm DB, dist Meter, blockers int) DB {
	o := offset + perBlocker.Times(float64(blockers))
	return DB(exp*10*math.Log10(dist.M())) + o + atmPerKm.Times(dist.M())/1000
}

func BenchmarkUnitOverheadPathLossRaw(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += rawPathLoss(2.66, 70, 15, 15, float64(1+i%250), i%4)
	}
	sinkF = acc
}

func BenchmarkUnitOverheadPathLossTyped(b *testing.B) {
	acc := DB(0)
	for i := 0; i < b.N; i++ {
		acc += typedPathLoss(2.66, 70, 15, 15, Meter(1+i%250), i%4)
	}
	sinkDB = acc
}

func BenchmarkUnitOverheadSINRRaw(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		desired := 1e-6 * float64(1+i%7)
		interference := 1e-8 * float64(i%11)
		acc += 10 * math.Log10(desired/(3.4e-8+interference))
	}
	sinkF = acc
}

func BenchmarkUnitOverheadSINRTyped(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		desired := MilliWatt(1e-6 * float64(1+i%7))
		interference := MilliWatt(1e-8 * float64(i%11))
		acc += RatioDB(desired, 3.4e-8+interference).Decibels()
	}
	sinkF = acc
}
