package world

import (
	"math"
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

func newWorld(t *testing.T, density float64, seed uint64) *World {
	t.Helper()
	road, err := traffic.New(traffic.DefaultConfig(density), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommRange = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero comm range should fail")
	}
	cfg = DefaultConfig()
	cfg.InterferenceRange = cfg.CommRange - 1
	if err := cfg.Validate(); err == nil {
		t.Error("interference < comm range should fail")
	}
	cfg = DefaultConfig()
	cfg.Channel.BandwidthHz = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid channel params should fail")
	}
}

func TestLinkSymmetry(t *testing.T) {
	w := newWorld(t, 15, 1)
	n := w.NumVehicles()
	for i := 0; i < n; i++ {
		for _, l := range w.Links(i) {
			back, ok := w.Link(l.J, i)
			if !ok {
				t.Fatalf("link %d→%d exists but %d→%d missing", i, l.J, l.J, i)
			}
			if back.Dist != l.Dist || back.Blockers != l.Blockers || back.PathGainLin != l.PathGainLin {
				t.Fatalf("asymmetric link %d↔%d", i, l.J)
			}
			// Reverse bearing must be 180° off.
			if geom.AbsAngleDiff(back.Bearing, l.Bearing+geom.Bearing(math.Pi)) > 1e-9 {
				t.Fatalf("bearings not opposite for %d↔%d", i, l.J)
			}
		}
	}
}

func TestLinkDistanceMatchesPositions(t *testing.T) {
	w := newWorld(t, 15, 2)
	for i := 0; i < w.NumVehicles(); i++ {
		for _, l := range w.Links(i) {
			want := w.Position(i).Dist(w.Position(l.J))
			if math.Abs((l.Dist - want).M()) > 1e-9 {
				t.Fatalf("link %d→%d dist %v, want %v", i, l.J, l.Dist, want)
			}
			if l.Dist > w.Config().InterferenceRange {
				t.Fatalf("link %d→%d beyond interference range", i, l.J)
			}
		}
	}
}

func TestNeighborsAreLOSWithinRange(t *testing.T) {
	w := newWorld(t, 20, 3)
	for i := 0; i < w.NumVehicles(); i++ {
		for _, j := range w.Neighbors(i) {
			l, ok := w.Link(i, j)
			if !ok {
				t.Fatalf("neighbor %d→%d has no link", i, j)
			}
			if !l.LOS() {
				t.Fatalf("neighbor %d→%d is blocked (%d blockers)", i, j, l.Blockers)
			}
			if l.Dist > w.Config().CommRange {
				t.Fatalf("neighbor %d→%d at %v m beyond comm range", i, j, l.Dist)
			}
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	w := newWorld(t, 20, 4)
	for i := 0; i < w.NumVehicles(); i++ {
		for _, j := range w.Neighbors(i) {
			found := false
			for _, k := range w.Neighbors(j) {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d→%d", i, j)
			}
		}
	}
}

func TestBlockageReducesNeighborCount(t *testing.T) {
	// Same-lane vehicles beyond the immediate leader/follower should mostly
	// be blocked, so neighbor sets must be far smaller than the disk census.
	w := newWorld(t, 20, 5)
	inDisk := 0
	losNeighbors := 0
	n := w.NumVehicles()
	for i := 0; i < n; i++ {
		losNeighbors += len(w.Neighbors(i))
		for _, l := range w.Links(i) {
			if l.Dist <= w.Config().CommRange {
				inDisk++
			}
		}
	}
	if losNeighbors >= inDisk {
		t.Errorf("LOS neighbors %d not below disk population %d", losNeighbors, inDisk)
	}
	if losNeighbors == 0 {
		t.Error("no LOS neighbors at all")
	}
}

func TestAvgNeighborCountPlausible(t *testing.T) {
	// The paper's Fig. 6 scenarios have 5–8 average neighbors; our default
	// geometry should land in that ballpark for mid densities.
	w := newWorld(t, 15, 6)
	avg := w.AvgNeighborCount()
	if avg < 3 || avg > 10 {
		t.Errorf("average neighbor count %v implausible for 15 vpl", avg)
	}
}

func TestRefreshTracksMotion(t *testing.T) {
	w := newWorld(t, 15, 7)
	p0 := w.Position(0)
	for k := 0; k < 200; k++ { // 1 s
		w.Road().Step(0.005)
	}
	w.Refresh()
	p1 := w.Position(0)
	if p0.Dist(p1) < 1 {
		t.Errorf("vehicle 0 moved only %v m in 1 s", p0.Dist(p1))
	}
}

func TestRxPowerAlignedVsMisaligned(t *testing.T) {
	w := newWorld(t, 15, 8)
	// Find any linked pair.
	var i, j int
	found := false
	for i = 0; i < w.NumVehicles() && !found; i++ {
		for _, l := range w.Links(i) {
			if l.LOS() && l.Dist < 80 {
				j = l.J
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no close LOS pair in scenario")
	}
	i--
	lnk, _ := w.Link(i, j)
	back, _ := w.Link(j, i)
	width := geom.Deg(30)
	aligned := w.RxPowerMw(i, j, phy.Beam{Bearing: lnk.Bearing, Width: width}, phy.Beam{Bearing: back.Bearing, Width: width})
	away := w.RxPowerMw(i, j,
		phy.Beam{Bearing: lnk.Bearing + geom.Bearing(math.Pi), Width: width},
		phy.Beam{Bearing: back.Bearing, Width: width})
	if aligned <= away {
		t.Errorf("aligned power %v not above misaligned %v", aligned, away)
	}
	// Side-lobe ratio: misaligned Tx costs the side-lobe level (~20 dB).
	if ratio := 10 * math.Log10(aligned.Over(away)); ratio < 15 {
		t.Errorf("alignment gain only %v dB", ratio)
	}
}

func TestRxPowerOutOfRangeIsZero(t *testing.T) {
	w := newWorld(t, 15, 9)
	// Find two vehicles beyond interference range.
	for i := 0; i < w.NumVehicles(); i++ {
		for j := 0; j < w.NumVehicles(); j++ {
			if i == j {
				continue
			}
			if _, ok := w.Link(i, j); !ok {
				if p := w.RxPowerMw(i, j, phy.Omni, phy.Omni); p != 0 {
					t.Fatalf("out-of-range power %v", p)
				}
				return
			}
		}
	}
	t.Skip("all pairs within interference range")
}

func TestSNRdBOmniVsDirectional(t *testing.T) {
	w := newWorld(t, 15, 10)
	for i := 0; i < w.NumVehicles(); i++ {
		for _, l := range w.Links(i) {
			if !l.LOS() || l.Dist > 60 {
				continue
			}
			back, _ := w.Link(l.J, i)
			omni := w.SNRdB(i, l.J, phy.Omni, phy.Omni)
			dir := w.SNRdB(i, l.J,
				phy.Beam{Bearing: l.Bearing, Width: geom.Deg(3)},
				phy.Beam{Bearing: back.Bearing, Width: geom.Deg(3)})
			if dir <= omni {
				t.Fatalf("directional SNR %v not above omni %v", dir, omni)
			}
			return
		}
	}
	t.Skip("no close LOS pair")
}

func TestNeighborSnapshotIsDeepCopy(t *testing.T) {
	w := newWorld(t, 15, 11)
	snap := w.NeighborSnapshot()
	for k := 0; k < 400; k++ { // 2 s: topology will drift
		w.Road().Step(0.005)
	}
	w.Refresh()
	// The snapshot must be unaffected by refresh (even if values coincide,
	// mutating it must not touch the live set).
	if len(snap) != w.NumVehicles() {
		t.Fatalf("snapshot length %d", len(snap))
	}
	if len(snap[0]) > 0 {
		snap[0][0] = -99
		for _, v := range w.Neighbors(0) {
			if v == -99 {
				t.Fatal("snapshot aliases live neighbor slice")
			}
		}
	}
}

func TestDirectBlockerScenario(t *testing.T) {
	// Construct a deterministic 3-in-a-row same-lane scenario by probing a
	// generated world: any same-lane pair with a vehicle strictly between
	// them must report ≥1 blocker.
	w := newWorld(t, 25, 12)
	checked := 0
	for i := 0; i < w.NumVehicles(); i++ {
		pi := w.Position(i)
		for _, l := range w.Links(i) {
			pj := w.Position(l.J)
			if math.Abs(pi.Y-pj.Y) > 0.1 || l.Dist > 100 {
				continue // different lanes or far
			}
			// Is someone strictly between them in the same lane?
			between := false
			for k := 0; k < w.NumVehicles(); k++ {
				if k == i || k == l.J {
					continue
				}
				pk := w.Position(k)
				if math.Abs(pk.Y-pi.Y) > 0.1 {
					continue
				}
				lo, hi := math.Min(pi.X, pj.X), math.Max(pi.X, pj.X)
				if pk.X > lo+1 && pk.X < hi-1 {
					between = true
					break
				}
			}
			if between {
				checked++
				if l.Blockers == 0 {
					t.Fatalf("pair %d–%d has an in-lane vehicle between but 0 blockers", i, l.J)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no same-lane sandwiched pair found")
	}
}

func TestRefreshSweepMatchesBruteForce(t *testing.T) {
	// The x-sweep pair enumeration must find exactly the pairs a brute
	// force O(N²) scan finds.
	w := newWorld(t, 25, 21)
	n := w.NumVehicles()
	for i := 0; i < n; i++ {
		got := map[int]bool{}
		for _, l := range w.Links(i) {
			got[l.J] = true
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := w.Position(i).Dist(w.Position(j))
			want := d <= w.Config().InterferenceRange && d > 0
			if got[j] != want {
				t.Fatalf("pair (%d,%d) d=%.1f: in table=%v, want %v", i, j, d, got[j], want)
			}
		}
	}
}

func TestShadowingDisabledByDefault(t *testing.T) {
	w1 := newWorld(t, 15, 31)
	w2 := newWorld(t, 15, 31)
	for i := 0; i < w1.NumVehicles(); i++ {
		for k, l := range w1.Links(i) {
			if l.PathGainLin != w2.Links(i)[k].PathGainLin {
				t.Fatal("gains differ with shadowing disabled")
			}
		}
	}
}

func TestShadowingPerturbsGainsDeterministically(t *testing.T) {
	build := func(sigma units.DB, shadowSeed uint64) *World {
		road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(31))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Channel.ShadowSigmaDB = sigma
		cfg.ShadowSeed = shadowSeed
		w, err := New(cfg, road)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	clean := build(0, 1)
	shadowA := build(4, 1)
	shadowB := build(4, 1)
	shadowC := build(4, 2)

	changed := 0
	higher := 0
	total := 0
	for i := 0; i < clean.NumVehicles(); i++ {
		for k, l := range clean.Links(i) {
			a := shadowA.Links(i)[k]
			b := shadowB.Links(i)[k]
			c := shadowC.Links(i)[k]
			if a.PathGainLin != b.PathGainLin {
				t.Fatal("shadowing not deterministic for same seed")
			}
			total++
			if a.PathGainLin != l.PathGainLin {
				changed++
			}
			if a.PathGainLin > l.PathGainLin {
				higher++
			}
			_ = c
		}
	}
	if changed < total*9/10 {
		t.Errorf("only %d/%d links shadowed", changed, total)
	}
	// Zero-mean in dB: roughly half the links gain, half lose.
	if higher < total/4 || higher > total*3/4 {
		t.Errorf("shadowing not balanced: %d/%d links gained", higher, total)
	}
	// Symmetry preserved under shadowing.
	for i := 0; i < shadowA.NumVehicles(); i++ {
		for _, l := range shadowA.Links(i) {
			back, _ := shadowA.Link(l.J, i)
			if back.PathGainLin != l.PathGainLin {
				t.Fatal("shadowing broke link symmetry")
			}
		}
	}
}

func TestShadowSeedChangesDraws(t *testing.T) {
	road1, _ := traffic.New(traffic.DefaultConfig(15), xrand.New(31))
	road2, _ := traffic.New(traffic.DefaultConfig(15), xrand.New(31))
	cfg := DefaultConfig()
	cfg.Channel.ShadowSigmaDB = 4
	cfg.ShadowSeed = 1
	w1, _ := New(cfg, road1)
	cfg.ShadowSeed = 2
	w2, _ := New(cfg, road2)
	diff := false
	for i := 0; i < w1.NumVehicles() && !diff; i++ {
		for k, l := range w1.Links(i) {
			if l.PathGainLin != w2.Links(i)[k].PathGainLin {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different shadow seeds produced identical gains")
	}
}

func TestTrucksIncreaseBlockage(t *testing.T) {
	build := func(truckFrac float64) *World {
		cfg := traffic.DefaultConfig(20)
		cfg.TruckFraction = truckFrac
		road, err := traffic.New(cfg, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 1000; k++ {
			road.Step(0.005)
		}
		w, err := New(DefaultConfig(), road)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	carsOnly := build(0)
	withTrucks := build(0.3)
	if got, base := withTrucks.AvgNeighborCount(), carsOnly.AvgNeighborCount(); got >= base {
		t.Errorf("trucks did not reduce LOS neighbors: %v vs %v", got, base)
	}
}
