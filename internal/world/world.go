// Package world binds the traffic substrate to the channel model. It owns
// the per-snapshot state every protocol consumes: vehicle positions and
// headings, the pairwise link table (distance, bearing, blocker count, path
// gain) for all pairs within interference range, and the line-of-sight
// one-hop neighbor sets that define the OHM problem (Sec. II-B).
//
// The world is generic over the mobility substrate (traffic.Fleet): the
// paper's straight ring road and city-scale road-graph networks bind
// identically. Pair discovery and blocker lookups run on a deterministic
// spatial-hash grid keyed on cell coordinates — candidates are culled to
// the 2-D cell neighborhood of each vehicle before any channel math, so a
// Refresh costs O(vehicles × local density) regardless of topology, where
// the previous global x-sorted sweep degenerated toward O(n²) on 2-D road
// graphs. Per-vehicle link slices stay sorted by partner x-rank, so the
// straight-road special case produces byte-identical tables to the sweep
// it replaced.
//
// The table is refreshed at the paper's 5 ms cadence ("vehicle position and
// link quality is updated every 5 ms"); between refreshes all queries are
// O(1) probes into per-vehicle sorted link slices via compact rank-window
// indexes (total size O(links), never O(n²)), which is what makes the
// event-driven control plane (144 sector slots + 40 negotiation slots per
// frame) affordable and lets vehicle counts scale without a dense pair
// matrix.
package world

import (
	"fmt"
	"math"

	"mmv2v/internal/channel"
	"mmv2v/internal/geom"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

// Config parameterizes link-table construction.
type Config struct {
	// CommRange is the one-hop neighbor disk radius (the paper's "dotted
	// disk"; DESIGN.md: 50 m default, calibrated so the Fig. 6 densities
	// yield the paper's 5–8 average LOS neighbors).
	CommRange units.Meter
	// InterferenceRange bounds which transmitters contribute interference
	// (beyond it, even main-lobe power is far below noise).
	InterferenceRange units.Meter
	// Channel is the propagation model configuration.
	Channel channel.Params
	// ShadowSeed drives the per-pair shadowing draws when
	// Channel.ShadowSigmaDB > 0.
	ShadowSeed uint64
}

// DefaultConfig returns the paper-calibrated world configuration.
func DefaultConfig() Config {
	return Config{
		CommRange:         50,
		InterferenceRange: 250,
		Channel:           channel.DefaultParams(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CommRange <= 0 {
		return fmt.Errorf("world: non-positive comm range %v", c.CommRange)
	}
	if c.InterferenceRange < c.CommRange {
		return fmt.Errorf("world: interference range %v below comm range %v",
			c.InterferenceRange, c.CommRange)
	}
	return c.Channel.Validate()
}

// CellSizeM returns the spatial-hash cell edge the configuration implies:
// at least CommRange, so every LOS neighbor candidate sits in the 3×3 cell
// neighborhood, and at least a quarter of InterferenceRange, so the pair
// scan never walks more than a 9×9 neighborhood (DESIGN.md §10).
func (c Config) CellSizeM() float64 {
	return math.Max(c.CommRange.M(), c.InterferenceRange.M()/4)
}

// Link is one directed entry of the pair table: the link from a vehicle to
// peer J. Dist, Blockers and PathGainLin are symmetric; Bearing is the
// compass bearing from the owning vehicle toward J.
type Link struct {
	J           int
	Dist        units.Meter
	Bearing     geom.Bearing
	Blockers    int
	PathGainLin float64
}

// LOS reports whether the link has an unobstructed line of sight.
func (l Link) LOS() bool { return l.Blockers == 0 }

// World is the live geometric + radio state. Create with New; refresh with
// Refresh after advancing traffic. Not safe for concurrent use.
type World struct {
	cfg      Config                //mmv2v:derived construction parameter re-supplied by the restore caller
	fleet    traffic.Fleet         //mmv2v:derived wiring to the traffic model, re-injected on construction; the fleet checkpoints itself
	model    *channel.Model        //mmv2v:derived stateless channel evaluator rebuilt from cfg by New
	patterns *channel.PatternCache //mmv2v:derived memoization cache; repopulates on demand with identical values

	n         int
	pos       []geom.Vec          //mmv2v:derived kinematics re-read from the fleet by the post-restore Refresh
	heading   []geom.Bearing      //mmv2v:derived kinematics re-read from the fleet by the post-restore Refresh
	speed     []units.MeterPerSec //mmv2v:derived kinematics re-read from the fleet by the post-restore Refresh
	links     [][]Link
	neighbors [][]int //mmv2v:derived LOS adjacency recomputed from links by the post-restore Refresh
	// halfLen/halfWid/halfDiag cache per-vehicle body half extents and the
	// half-diagonal bound used to prune blocker candidates; frames cache
	// each body's corner geometry for the blockage tests (one sincos per
	// vehicle per refresh instead of one per candidate test).
	halfLen  []float64        //mmv2v:derived body-extent cache derived from cfg by New
	halfWid  []float64        //mmv2v:derived body-extent cache derived from cfg by New
	halfDiag []float64        //mmv2v:derived body-extent cache derived from cfg by New
	frames   []geom.BodyFrame //mmv2v:derived per-refresh corner-geometry scratch; rebuilt every Refresh

	// order is the x-sorted vehicle permutation; rank its inverse. They
	// persist across Refresh calls: positions move only micrometers per
	// 5 ms tick, so re-sorting the previous permutation is nearly free.
	// Ranks give links their canonical per-vehicle order (ascending
	// partner rank) — the order the legacy x-sweep produced — and key the
	// rank-window slot index below.
	order []int
	rank  []int32 //mmv2v:derived inverse of the checkpointed order permutation; rebuilt on restore
	// slotLo/slots form the O(1) link lookup: when vehicle i's partners
	// occupy a narrow band of consecutive x-ranks (always true on a 1-D
	// road), slots[i][rank[j]-slotLo[i]] holds the index of the i→j entry
	// in links[i] (-1 when absent). When the band is wide relative to the
	// link count (2-D road graphs), slotLo[i] is -1 and Link falls back to
	// a binary search of the rank-sorted slice, keeping total index memory
	// O(links) on every topology.
	slotLo []int32   //mmv2v:derived rank-window link index rebuilt from links by the post-restore Refresh
	slots  [][]int32 //mmv2v:derived rank-window link index rebuilt from links by the post-restore Refresh

	// Spatial hash: a dense grid of cells over the fleet's static bounds.
	// cells[cy*cellsX+cx] lists the vehicles whose center lies in the cell,
	// in ascending vehicle index; rebuilt every Refresh into persistent
	// buckets. reach is the cell radius of the pair scan.
	cellM          float64   //mmv2v:derived spatial-hash parameter derived from cfg by New
	invCellM       float64   //mmv2v:derived spatial-hash parameter derived from cfg by New
	gridMin        geom.Vec  //mmv2v:derived spatial-hash bound derived from the fleet static extents by New
	cellsX, cellsY int       //mmv2v:derived spatial-hash dimensions derived from cfg and fleet bounds by New
	cells          [][]int32 //mmv2v:derived spatial-hash buckets rebuilt every Refresh
	reach          int       //mmv2v:derived pair-scan radius derived from cfg by New

	// linkFault, when non-nil, multiplies every refreshed link's path gain
	// by an extra factor (transient blockage bursts; see internal/faults).
	linkFault LinkFault //mmv2v:derived fault wiring re-attached by SetLinkFault; the injector checkpoints its own state

	// Refresh statistics handles (nil-safe no-ops until SetObs installs a
	// live registry).
	obsRefreshes    *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
	obsRefreshLinks *obs.Histogram //mmv2v:derived statistics handle reinstalled by SetObs
	obsNLOSLinks    *obs.Counter   //mmv2v:derived statistics handle reinstalled by SetObs
}

// LinkFault is the world's fault-injection hook: an extra linear gain
// factor (≤ 1) applied to pair (a, b) at each refresh. The LOS neighbor
// sets — the OHM task definition — are unaffected, so faults degrade what
// protocols achieve, never what they are asked to achieve.
type LinkFault interface {
	LinkFactorLin(a, b int) float64
}

// SetLinkFault installs a link-fault hook; nil restores the clean channel.
// Takes effect at the next Refresh.
func (w *World) SetLinkFault(f LinkFault) { w.linkFault = f }

// SetObs installs the statistics registry. A nil registry (the default)
// hands out nil handles, so the Refresh hot path stays a no-op.
func (w *World) SetObs(r *obs.Registry) {
	w.obsRefreshes = r.Counter("world.refreshes")
	w.obsRefreshLinks = r.Histogram("world.refresh_links", obs.ExpBuckets(16, 2, 11))
	w.obsNLOSLinks = r.Counter("world.nlos_links")
}

// New builds a World over a mobility substrate (the ring road or a road
// graph). Refresh is called once so the world is immediately queryable.
func New(cfg Config, fleet traffic.Fleet) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := channel.NewModel(cfg.Channel)
	if err != nil {
		return nil, err
	}
	n := fleet.NumVehicles()
	w := &World{
		cfg:       cfg,
		fleet:     fleet,
		model:     model,
		patterns:  channel.NewPatternCache(cfg.Channel.SideLobeDB),
		n:         n,
		pos:       make([]geom.Vec, n),
		heading:   make([]geom.Bearing, n),
		speed:     make([]units.MeterPerSec, n),
		links:     make([][]Link, n),
		neighbors: make([][]int, n),
		halfLen:   make([]float64, n),
		halfWid:   make([]float64, n),
		halfDiag:  make([]float64, n),
		frames:    make([]geom.BodyFrame, n),
		order:     make([]int, n),
		rank:      make([]int32, n),
		slotLo:    make([]int32, n),
		slots:     make([][]int32, n),
	}
	for i := range w.order {
		w.order[i] = i
	}
	w.initGrid()
	w.Refresh()
	return w, nil
}

// initGrid sizes the dense cell grid from the fleet's static bounds. Cell
// edges come from Config.CellSizeM, floored so the grid never exceeds a
// bounded cell count on extreme bounds.
func (w *World) initGrid() {
	min, max := w.fleet.Bounds()
	w.gridMin = min
	spanX := math.Max(max.X-min.X, 1)
	spanY := math.Max(max.Y-min.Y, 1)
	cell := w.cfg.CellSizeM()
	// Bound the grid to ~2M cells: beyond that, coarser cells cost less
	// than the per-refresh clear of an enormous dense grid.
	const maxCells = 1 << 21
	for float64(int(spanX/cell)+1)*float64(int(spanY/cell)+1) > maxCells {
		cell *= 2
	}
	w.cellM = cell
	w.invCellM = 1 / cell
	w.cellsX = int(spanX/cell) + 1
	w.cellsY = int(spanY/cell) + 1
	w.cells = make([][]int32, w.cellsX*w.cellsY)
	w.reach = int(math.Ceil(w.cfg.InterferenceRange.M() / cell))
}

// cellX maps a world x coordinate to a clamped cell column (cellY likewise
// for rows). Queries may probe beyond the bounds (bbox pads); clamping
// keeps them on the grid without wrapping.
func (w *World) cellX(x float64) int {
	c := int((x - w.gridMin.X) * w.invCellM)
	if c < 0 {
		return 0
	}
	if c >= w.cellsX {
		return w.cellsX - 1
	}
	return c
}

func (w *World) cellY(y float64) int {
	c := int((y - w.gridMin.Y) * w.invCellM)
	if c < 0 {
		return 0
	}
	if c >= w.cellsY {
		return w.cellsY - 1
	}
	return c
}

// NumVehicles returns the vehicle count.
func (w *World) NumVehicles() int { return w.n }

// Config returns the world configuration.
func (w *World) Config() Config { return w.cfg }

// Fleet returns the underlying mobility substrate.
func (w *World) Fleet() traffic.Fleet { return w.fleet }

// Road returns the underlying ring-road simulation, or nil when the world
// runs over a road-graph network (use Fleet for substrate-agnostic access).
func (w *World) Road() *traffic.Road {
	r, _ := w.fleet.(*traffic.Road)
	return r
}

// Network returns the underlying road-graph network, or nil when the world
// runs over the legacy ring road.
func (w *World) Network() *traffic.Network {
	nw, _ := w.fleet.(*traffic.Network)
	return nw
}

// Channel returns the channel model.
func (w *World) Channel() *channel.Model { return w.model }

// Position returns vehicle i's current position.
func (w *World) Position(i int) geom.Vec { return w.pos[i] }

// Heading returns vehicle i's current travel bearing (its GPS heading).
func (w *World) Heading(i int) geom.Bearing { return w.heading[i] }

// Speed returns vehicle i's current speed.
func (w *World) Speed(i int) units.MeterPerSec { return w.speed[i] }

// loadPoses copies the fleet's current poses into the world's pose arrays.
func (w *World) loadPoses() {
	for i := 0; i < w.n; i++ {
		w.pos[i], w.heading[i], w.speed[i] = w.fleet.Pose(i)
	}
}

// rebuildGeometry refreshes the per-vehicle body extents and corner frames
// from the current poses, returning the largest body half-diagonal (the
// blocker-candidate padding bound).
func (w *World) rebuildGeometry() float64 {
	maxDiag := 0.0
	for i := 0; i < w.n; i++ {
		l, wd := w.fleet.BodyDims(i)
		w.halfLen[i] = l / 2
		w.halfWid[i] = wd / 2
		w.halfDiag[i] = math.Hypot(l/2, wd/2)
		if w.halfDiag[i] > maxDiag {
			maxDiag = w.halfDiag[i]
		}
		w.frames[i] = geom.NewBodyFrame(geom.Rect{
			Center: w.pos[i], Heading: w.heading[i], HalfLen: l / 2, HalfWid: wd / 2,
		})
	}
	return maxDiag
}

// rebuildCells re-bins every vehicle into the spatial hash (ascending
// vehicle index per bucket).
func (w *World) rebuildCells() {
	for c := range w.cells {
		w.cells[c] = w.cells[c][:0]
	}
	for i := 0; i < w.n; i++ {
		c := w.cellY(w.pos[i].Y)*w.cellsX + w.cellX(w.pos[i].X)
		//mmv2v:alloc amortized: buckets grow to steady-state occupancy and are reused across refreshes
		w.cells[c] = append(w.cells[c], int32(i))
	}
}

// Refresh recomputes positions and the pair table from the fleet state.
// Call after every traffic step (the paper's 5 ms update).
//
//mmv2v:hotpath the 5 ms link-table rebuild; pinned by BenchmarkRefresh*
func (w *World) Refresh() {
	w.loadPoses()

	// Re-sort the cached x-order permutation. The previous tick's order is
	// nearly sorted, so the insertion sort is O(n) amortized and
	// allocation-free. Ranks define the canonical link order below.
	w.sortOrderByX()
	for k, i := range w.order {
		w.rank[i] = int32(k)
	}

	for i := range w.links {
		w.links[i] = w.links[i][:0]
		w.neighbors[i] = w.neighbors[i][:0]
	}

	maxDiag := w.rebuildGeometry()
	w.rebuildCells()

	// Enumerate pairs: each vehicle scans its cell neighborhood out to the
	// interference range and processes exactly the partners of higher
	// x-rank, so every unordered pair is handled once, from its lower-rank
	// side — the orientation the legacy x-sweep used. Candidates beyond
	// range are culled on cheap coordinate deltas before any channel math.
	// Statistics accumulate in locals and are observed once per refresh.
	entries, nlos := 0, 0
	rangeM := w.cfg.InterferenceRange.M()
	for a := 0; a < w.n; a++ {
		pa := w.pos[a]
		ra := w.rank[a]
		cx, cy := w.cellX(pa.X), w.cellY(pa.Y)
		x0, x1 := maxInt(cx-w.reach, 0), minInt(cx+w.reach, w.cellsX-1)
		y0, y1 := maxInt(cy-w.reach, 0), minInt(cy+w.reach, w.cellsY-1)
		for gy := y0; gy <= y1; gy++ {
			for gx := x0; gx <= x1; gx++ {
				for _, bi := range w.cells[gy*w.cellsX+gx] {
					b := int(bi)
					if w.rank[b] <= ra {
						continue
					}
					pb := w.pos[b]
					if pb.X-pa.X > rangeM || pa.X-pb.X > rangeM ||
						pb.Y-pa.Y > rangeM || pa.Y-pb.Y > rangeM {
						continue
					}
					d := pa.Dist(pb)
					//mmv2v:exact Dist is exactly 0 only for identical coordinates (co-located sentinel)
					if d > w.cfg.InterferenceRange || d == 0 {
						continue
					}
					blockers := w.countBlockers(a, b, d.M(), maxDiag)
					gain := w.model.PathGainLin(d, blockers) * w.shadowFactor(a, b)
					if w.linkFault != nil {
						gain *= w.linkFault.LinkFactorLin(a, b)
					}
					bAB := pa.BearingTo(pb)
					bBA := geom.NormalizeBearing(bAB + geom.Bearing(math.Pi))
					//mmv2v:alloc amortized: per-vehicle link tables grow to steady-state degree and are reused across refreshes
					w.links[a] = append(w.links[a], Link{J: b, Dist: d, Bearing: bAB, Blockers: blockers, PathGainLin: gain})
					//mmv2v:alloc amortized: same reused backing array, mirror entry of the pair
					w.links[b] = append(w.links[b], Link{J: a, Dist: d, Bearing: bBA, Blockers: blockers, PathGainLin: gain})
					entries += 2
					if blockers > 0 {
						nlos++
					}
				}
			}
		}
	}
	w.obsRefreshes.Inc()
	w.obsRefreshLinks.Observe(float64(entries))
	w.obsNLOSLinks.Add(uint64(nlos))

	w.rebuildIndex()
}

// rebuildIndex canonicalizes per-vehicle link order (ascending partner rank
// — what the x-sweep produced by construction), derives the LOS neighbor
// sets, and rebuilds the rank-window slot tables. It consumes only
// w.links/w.rank, so checkpoint restore reuses it to rebuild the query
// index from a restored link table without re-enumerating pairs.
func (w *World) rebuildIndex() {
	for i := range w.neighbors {
		w.neighbors[i] = w.neighbors[i][:0]
	}
	for i, ls := range w.links {
		w.sortLinksByRank(ls)
		for _, l := range ls {
			if l.Blockers == 0 && l.Dist <= w.cfg.CommRange {
				//mmv2v:alloc amortized: neighbor sets grow to steady-state degree and are reused across refreshes
				w.neighbors[i] = append(w.neighbors[i], l.J)
			}
		}
		if len(ls) == 0 {
			w.slotLo[i] = 0
			w.slots[i] = w.slots[i][:0]
			continue
		}
		lo := w.rank[ls[0].J]
		width := int(w.rank[ls[len(ls)-1].J]-lo) + 1
		if width > 8*len(ls)+32 {
			// Sparse rank band (2-D road graph): binary-search fallback
			// keeps index memory O(links).
			w.slotLo[i] = -1
			w.slots[i] = w.slots[i][:0]
			continue
		}
		s := w.slots[i]
		if cap(s) < width {
			//mmv2v:alloc amortized: slot tables are regrown only when a vehicle's rank window widens past every previous refresh
			s = make([]int32, width)
		} else {
			s = s[:width]
		}
		for k := range s {
			s[k] = -1
		}
		for k, l := range ls {
			s[w.rank[l.J]-lo] = int32(k)
		}
		w.slotLo[i] = lo
		w.slots[i] = s
	}
}

// sortLinksByRank sorts a link slice by ascending partner x-rank. Ranks are
// unique, so the order is total and independent of both the cell
// enumeration order that produced the slice and the sort algorithm. Short
// slices insertion-sort; the long per-vehicle tables of dense road-graph
// worlds go through a median-of-three quicksort so the canonicalization
// pass stays O(k log k).
func (w *World) sortLinksByRank(ls []Link) {
	for len(ls) > 24 {
		p := w.partitionLinks(ls)
		// Recurse into the smaller half; loop on the larger to bound stack depth.
		if p < len(ls)-p-1 {
			w.sortLinksByRank(ls[:p])
			ls = ls[p+1:]
		} else {
			w.sortLinksByRank(ls[p+1:])
			ls = ls[:p]
		}
	}
	for i := 1; i < len(ls); i++ {
		l := ls[i]
		r := w.rank[l.J]
		j := i - 1
		for j >= 0 && w.rank[ls[j].J] > r {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = l
	}
}

// partitionLinks Lomuto-partitions ls around a median-of-three pivot rank
// and returns the pivot's final index.
func (w *World) partitionLinks(ls []Link) int {
	hi := len(ls) - 1
	m := hi / 2
	r0, rm, rh := w.rank[ls[0].J], w.rank[ls[m].J], w.rank[ls[hi].J]
	var pi int
	switch {
	case (rm <= r0) == (r0 <= rh):
		pi = 0
	case (r0 <= rm) == (rm <= rh):
		pi = m
	default:
		pi = hi
	}
	ls[pi], ls[hi] = ls[hi], ls[pi]
	p := w.rank[ls[hi].J]
	i := 0
	for j := 0; j < hi; j++ {
		if w.rank[ls[j].J] < p {
			ls[i], ls[j] = ls[j], ls[i]
			i++
		}
	}
	ls[i], ls[hi] = ls[hi], ls[i]
	return i
}

// sortOrderByX insertion-sorts the cached vehicle permutation by x
// coordinate. The sort is stable, so ties keep vehicle-index order.
func (w *World) sortOrderByX() {
	order := w.order
	for i := 1; i < len(order); i++ {
		v := order[i]
		x := w.pos[v].X
		j := i - 1
		for j >= 0 && w.pos[order[j]].X > x {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// shadowFactor returns the linear per-pair log-normal shadowing factor, or
// 1 when shadowing is disabled. The draw is a pure function of (seed, pair)
// — static for a run, independent across pairs (quasi-static shadowing from
// the pair's surrounding geometry).
func (w *World) shadowFactor(a, b int) float64 {
	sigma := w.cfg.Channel.ShadowSigmaDB
	//mmv2v:exact disabled-feature sentinel: sigma is exactly 0 iff shadowing was not configured
	if sigma == 0 {
		return 1
	}
	if a > b {
		a, b = b, a
	}
	// Box–Muller from two uniform hashes of the pair identity.
	u1 := float64(xrand.Mix(w.cfg.ShadowSeed, 0x5ad0, uint64(a), uint64(b))%(1<<52)+1) / float64(int64(1)<<52)
	u2 := float64(xrand.Mix(w.cfg.ShadowSeed, 0x5ad1, uint64(a), uint64(b))%(1<<52)) / float64(int64(1)<<52)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return sigma.Times(z).Linear()
}

// countBlockers counts vehicle bodies crossing the a–b segment, excluding
// the endpoints' own bodies. Candidates come from the spatial-hash cells
// overlapping the segment's bounding box padded by the largest body
// half-diagonal, then pass two per-candidate culls — center inside the
// padded bounding box, and center within its own half-diagonal of the LOS
// line — before the exact oriented-rectangle test. Both culls are sound
// supersets on any body heading, so counts are identical to an exhaustive
// scan. dM is the a–b distance in meters.
func (w *World) countBlockers(a, b int, dM, maxDiag float64) int {
	pa, pb := w.pos[a], w.pos[b]
	lox, hix := math.Min(pa.X, pb.X), math.Max(pa.X, pb.X)
	loy, hiy := math.Min(pa.Y, pb.Y), math.Max(pa.Y, pb.Y)
	x0, x1 := w.cellX(lox-maxDiag), w.cellX(hix+maxDiag)
	y0, y1 := w.cellY(loy-maxDiag), w.cellY(hiy+maxDiag)
	abx, aby := pb.X-pa.X, pb.Y-pa.Y
	pos, halfDiag, frames := w.pos, w.halfDiag, w.frames
	blockers := 0
	for gy := y0; gy <= y1; gy++ {
		for gx := x0; gx <= x1; gx++ {
			for _, ci := range w.cells[gy*w.cellsX+gx] {
				c := int(ci)
				if c == a || c == b {
					continue
				}
				pc := pos[c]
				diag := halfDiag[c]
				if pc.X < lox-diag || pc.X > hix+diag || pc.Y < loy-diag || pc.Y > hiy+diag {
					continue
				}
				// Perpendicular distance from the candidate's center to the
				// LOS line exceeds its half-diagonal → no part of the body
				// can reach the segment.
				cross := abx*(pc.Y-pa.Y) - aby*(pc.X-pa.X)
				if cross > diag*dM || -cross > diag*dM {
					continue
				}
				if frames[c].SegmentIntersects(pa, pb) {
					blockers++
				}
			}
		}
	}
	return blockers
}

// Link returns the pair-table entry from i toward j, if within interference
// range. When vehicle i's partners occupy a contiguous band of x-ranks (1-D
// roads) the lookup is one O(1) probe of i's rank-window slot table; on
// sparse rank bands (road graphs) it binary-searches the rank-sorted link
// slice.
//
//mmv2v:hotpath the per-slot link probe; pinned by BenchmarkLinkLookup
func (w *World) Link(i, j int) (Link, bool) {
	if lo := w.slotLo[i]; lo >= 0 {
		r := w.rank[j] - lo
		s := w.slots[i]
		if uint(r) >= uint(len(s)) {
			return Link{}, false
		}
		k := s[r]
		if k < 0 {
			return Link{}, false
		}
		return w.links[i][k], true
	}
	ls := w.links[i]
	rj := w.rank[j]
	lo, hi := 0, len(ls)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.rank[ls[mid].J] < rj {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ls) && ls[lo].J == j {
		return ls[lo], true
	}
	return Link{}, false
}

// Links returns all pair-table entries of vehicle i (within interference
// range). Callers must not retain the slice across Refresh.
func (w *World) Links(i int) []Link { return w.links[i] }

// Neighbors returns vehicle i's current one-hop neighbor set: LOS vehicles
// within CommRange (the OHM task set, Sec. II-B). Callers must not retain
// the slice across Refresh.
func (w *World) Neighbors(i int) []int { return w.neighbors[i] }

// NeighborSnapshot deep-copies all neighbor sets, for freezing the metric
// denominator at a window boundary.
func (w *World) NeighborSnapshot() [][]int {
	out := make([][]int, w.n)
	for i := range out {
		out[i] = append([]int(nil), w.neighbors[i]...)
	}
	return out
}

// AvgNeighborCount returns the mean LOS neighbor set size — the quantity the
// paper's Fig. 6 scenarios are labeled with (5, 6, 7, 8).
func (w *World) AvgNeighborCount() float64 {
	if w.n == 0 {
		return 0
	}
	total := 0
	for i := 0; i < w.n; i++ {
		total += len(w.neighbors[i])
	}
	return float64(total) / float64(w.n)
}

// TotalLinks returns the number of directed link-table entries of the
// current snapshot (diagnostics for scale scenarios).
func (w *World) TotalLinks() int {
	total := 0
	for i := range w.links {
		total += len(w.links[i])
	}
	return total
}

// beamGain evaluates the antenna gain of a beam toward a target bearing.
func (w *World) beamGain(beam phy.Beam, toward geom.Bearing) float64 {
	if beam.IsOmni() {
		return 1
	}
	return w.patterns.Get(beam.Width).Gain(geom.AngleDiff(beam.Bearing, toward))
}

// RxPowerMw returns the power vehicle rx receives from tx given both beam
// configurations, or 0 if the pair is out of interference range.
func (w *World) RxPowerMw(tx, rx int, txBeam, rxBeam phy.Beam) units.MilliWatt {
	lnk, ok := w.Link(tx, rx)
	if !ok {
		return 0
	}
	back, _ := w.Link(rx, tx)
	gTx := w.beamGain(txBeam, lnk.Bearing)  // tx's gain toward rx
	gRx := w.beamGain(rxBeam, back.Bearing) // rx's gain toward tx
	return units.MilliWatt(w.model.TxPowerMw().MW() * gTx * lnk.PathGainLin * gRx)
}

// SNRdB returns the interference-free SNR of a directed link with the given
// beams, or -Inf when out of range.
func (w *World) SNRdB(tx, rx int, txBeam, rxBeam phy.Beam) units.DB {
	p := w.RxPowerMw(tx, rx, txBeam, rxBeam)
	//mmv2v:exact RxPowerMw returns exactly 0 as its out-of-range/beam-miss sentinel
	if p == 0 {
		return units.DB(math.Inf(-1))
	}
	return units.RatioDB(p, w.model.NoiseMw())
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
