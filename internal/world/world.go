// Package world binds the traffic substrate to the channel model. It owns
// the per-snapshot state every protocol consumes: vehicle positions and
// headings, the pairwise link table (distance, bearing, blocker count, path
// gain) for all pairs within interference range, and the line-of-sight
// one-hop neighbor sets that define the OHM problem (Sec. II-B).
//
// The table is refreshed at the paper's 5 ms cadence ("vehicle position and
// link quality is updated every 5 ms"); between refreshes all queries are
// O(1) probes into per-vehicle sorted link slices via compact rank-window
// indexes (total size O(links), never O(n²)), which is what makes the
// event-driven control plane (144 sector slots + 40 negotiation slots per
// frame) affordable and lets vehicle counts scale without a dense pair
// matrix.
package world

import (
	"fmt"
	"math"
	"sort"

	"mmv2v/internal/channel"
	"mmv2v/internal/geom"
	"mmv2v/internal/obs"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

// Config parameterizes link-table construction.
type Config struct {
	// CommRange is the one-hop neighbor disk radius (the paper's "dotted
	// disk"; DESIGN.md: 50 m default, calibrated so the Fig. 6 densities
	// yield the paper's 5–8 average LOS neighbors).
	CommRange units.Meter
	// InterferenceRange bounds which transmitters contribute interference
	// (beyond it, even main-lobe power is far below noise).
	InterferenceRange units.Meter
	// Channel is the propagation model configuration.
	Channel channel.Params
	// ShadowSeed drives the per-pair shadowing draws when
	// Channel.ShadowSigmaDB > 0.
	ShadowSeed uint64
}

// DefaultConfig returns the paper-calibrated world configuration.
func DefaultConfig() Config {
	return Config{
		CommRange:         50,
		InterferenceRange: 250,
		Channel:           channel.DefaultParams(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CommRange <= 0 {
		return fmt.Errorf("world: non-positive comm range %v", c.CommRange)
	}
	if c.InterferenceRange < c.CommRange {
		return fmt.Errorf("world: interference range %v below comm range %v",
			c.InterferenceRange, c.CommRange)
	}
	return c.Channel.Validate()
}

// Link is one directed entry of the pair table: the link from a vehicle to
// peer J. Dist, Blockers and PathGainLin are symmetric; Bearing is the
// compass bearing from the owning vehicle toward J.
type Link struct {
	J           int
	Dist        units.Meter
	Bearing     geom.Bearing
	Blockers    int
	PathGainLin float64
}

// LOS reports whether the link has an unobstructed line of sight.
func (l Link) LOS() bool { return l.Blockers == 0 }

// World is the live geometric + radio state. Create with New; refresh with
// Refresh after advancing traffic. Not safe for concurrent use.
type World struct {
	cfg      Config
	road     *traffic.Road
	model    *channel.Model
	patterns *channel.PatternCache

	n         int
	pos       []geom.Vec
	heading   []geom.Bearing
	speed     []units.MeterPerSec
	links     [][]Link
	neighbors [][]int
	// halfLen/halfWid cache per-vehicle body half extents (cars vs trucks).
	halfLen []float64
	halfWid []float64
	// order/xs are the x-sorted vehicle permutation and its x coordinates.
	// They persist across Refresh calls: positions move only micrometers per
	// 5 ms tick, so re-sorting the previous permutation is nearly free, and
	// reusing the buffers keeps the refresh hot path allocation-free.
	order []int
	xs    []float64
	// rank is the inverse of order: rank[v] is v's position in x order.
	// slotLo/slots form the O(1) link lookup: vehicle i's partners occupy a
	// narrow band of consecutive x-ranks, so slots[i][rank[j]-slotLo[i]]
	// holds the index of the i→j entry in links[i] (-1 when absent). Total
	// size is O(links), never the O(n²) of a dense pair matrix.
	rank   []int32
	slotLo []int32
	slots  [][]int32

	// linkFault, when non-nil, multiplies every refreshed link's path gain
	// by an extra factor (transient blockage bursts; see internal/faults).
	linkFault LinkFault

	// Refresh statistics handles (nil-safe no-ops until SetObs installs a
	// live registry).
	obsRefreshes    *obs.Counter
	obsRefreshLinks *obs.Histogram
	obsNLOSLinks    *obs.Counter
}

// LinkFault is the world's fault-injection hook: an extra linear gain
// factor (≤ 1) applied to pair (a, b) at each refresh. The LOS neighbor
// sets — the OHM task definition — are unaffected, so faults degrade what
// protocols achieve, never what they are asked to achieve.
type LinkFault interface {
	LinkFactorLin(a, b int) float64
}

// SetLinkFault installs a link-fault hook; nil restores the clean channel.
// Takes effect at the next Refresh.
func (w *World) SetLinkFault(f LinkFault) { w.linkFault = f }

// SetObs installs the statistics registry. A nil registry (the default)
// hands out nil handles, so the Refresh hot path stays a no-op.
func (w *World) SetObs(r *obs.Registry) {
	w.obsRefreshes = r.Counter("world.refreshes")
	w.obsRefreshLinks = r.Histogram("world.refresh_links", obs.ExpBuckets(16, 2, 11))
	w.obsNLOSLinks = r.Counter("world.nlos_links")
}

// New builds a World over a road. Refresh is called once so the world is
// immediately queryable.
func New(cfg Config, road *traffic.Road) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := channel.NewModel(cfg.Channel)
	if err != nil {
		return nil, err
	}
	n := road.NumVehicles()
	w := &World{
		cfg:       cfg,
		road:      road,
		model:     model,
		patterns:  channel.NewPatternCache(cfg.Channel.SideLobeDB),
		n:         n,
		pos:       make([]geom.Vec, n),
		heading:   make([]geom.Bearing, n),
		speed:     make([]units.MeterPerSec, n),
		links:     make([][]Link, n),
		neighbors: make([][]int, n),
		halfLen:   make([]float64, n),
		halfWid:   make([]float64, n),
		order:     make([]int, n),
		xs:        make([]float64, n),
		rank:      make([]int32, n),
		slotLo:    make([]int32, n),
		slots:     make([][]int32, n),
	}
	for i := range w.order {
		w.order[i] = i
	}
	w.Refresh()
	return w, nil
}

// NumVehicles returns the vehicle count.
func (w *World) NumVehicles() int { return w.n }

// Config returns the world configuration.
func (w *World) Config() Config { return w.cfg }

// Road returns the underlying traffic simulation.
func (w *World) Road() *traffic.Road { return w.road }

// Channel returns the channel model.
func (w *World) Channel() *channel.Model { return w.model }

// Position returns vehicle i's current position.
func (w *World) Position(i int) geom.Vec { return w.pos[i] }

// Heading returns vehicle i's current travel bearing (its GPS heading).
func (w *World) Heading(i int) geom.Bearing { return w.heading[i] }

// Speed returns vehicle i's current speed.
func (w *World) Speed(i int) units.MeterPerSec { return w.speed[i] }

// Refresh recomputes positions and the pair table from the road state. Call
// after every traffic step (the paper's 5 ms update).
func (w *World) Refresh() {
	rcfg := w.road.Config()
	vehicles := w.road.Vehicles()
	for i, v := range vehicles {
		w.pos[i] = rcfg.Position(v)
		w.heading[i] = rcfg.Heading(v)
		w.speed[i] = units.MeterPerSec(v.V)
	}

	// Re-sort the cached x-order permutation for the blocker prune. The
	// previous tick's order is nearly sorted, so the insertion sort is O(n)
	// amortized and allocation-free.
	order, xs := w.order, w.xs
	w.sortOrderByX()
	for k, i := range order {
		xs[k] = w.pos[i].X
		w.rank[i] = int32(k)
	}

	for i := range w.links {
		w.links[i] = w.links[i][:0]
		w.neighbors[i] = w.neighbors[i][:0]
	}

	maxLen := 0.0
	for i, v := range vehicles {
		l, wd := rcfg.Dimensions(v)
		w.halfLen[i] = l / 2
		w.halfWid[i] = wd / 2
		if l > maxLen {
			maxLen = l
		}
	}
	// Sweep pairs in x order: only vehicles within the interference range
	// along x can be in range at all, which cuts the pair scan from O(N²)
	// to O(N·k) at the paper's densities. Statistics accumulate in locals
	// and are observed once per refresh, off the inner loop.
	entries, nlos := 0, 0
	for ka := 0; ka < w.n; ka++ {
		a := order[ka]
		for kb := ka + 1; kb < w.n; kb++ {
			b := order[kb]
			if w.pos[b].X-w.pos[a].X > w.cfg.InterferenceRange.M() {
				break
			}
			d := w.pos[a].Dist(w.pos[b])
			//mmv2v:exact Dist is exactly 0 only for identical coordinates (co-located sentinel)
			if d > w.cfg.InterferenceRange || d == 0 {
				continue
			}
			blockers := w.countBlockers(a, b, order, xs, maxLen)
			gain := w.model.PathGainLin(d, blockers) * w.shadowFactor(a, b)
			if w.linkFault != nil {
				gain *= w.linkFault.LinkFactorLin(a, b)
			}
			bAB := w.pos[a].BearingTo(w.pos[b])
			bBA := geom.NormalizeBearing(bAB + geom.Bearing(math.Pi))
			w.links[a] = append(w.links[a], Link{J: b, Dist: d, Bearing: bAB, Blockers: blockers, PathGainLin: gain})
			w.links[b] = append(w.links[b], Link{J: a, Dist: d, Bearing: bBA, Blockers: blockers, PathGainLin: gain})
			entries += 2
			if blockers > 0 {
				nlos++
			}
			if blockers == 0 && d <= w.cfg.CommRange {
				w.neighbors[a] = append(w.neighbors[a], b)
				w.neighbors[b] = append(w.neighbors[b], a)
			}
		}
	}
	w.obsRefreshes.Inc()
	w.obsRefreshLinks.Observe(float64(entries))
	w.obsNLOSLinks.Add(uint64(nlos))

	// Rebuild the per-vehicle rank-window slot tables. The sweep appended
	// each vehicle's links in ascending partner-rank order, so the first and
	// last entries bound the band of x-ranks its partners occupy.
	for i, ls := range w.links {
		if len(ls) == 0 {
			w.slotLo[i] = 0
			w.slots[i] = w.slots[i][:0]
			continue
		}
		lo := w.rank[ls[0].J]
		width := int(w.rank[ls[len(ls)-1].J]-lo) + 1
		s := w.slots[i]
		if cap(s) < width {
			s = make([]int32, width)
		} else {
			s = s[:width]
		}
		for k := range s {
			s[k] = -1
		}
		for k, l := range ls {
			s[w.rank[l.J]-lo] = int32(k)
		}
		w.slotLo[i] = lo
		w.slots[i] = s
	}
}

// sortOrderByX insertion-sorts the cached vehicle permutation by x
// coordinate. The sort is stable, so ties keep vehicle-index order.
func (w *World) sortOrderByX() {
	order := w.order
	for i := 1; i < len(order); i++ {
		v := order[i]
		x := w.pos[v].X
		j := i - 1
		for j >= 0 && w.pos[order[j]].X > x {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// shadowFactor returns the linear per-pair log-normal shadowing factor, or
// 1 when shadowing is disabled. The draw is a pure function of (seed, pair)
// — static for a run, independent across pairs (quasi-static shadowing from
// the pair's surrounding geometry).
func (w *World) shadowFactor(a, b int) float64 {
	sigma := w.cfg.Channel.ShadowSigmaDB
	//mmv2v:exact disabled-feature sentinel: sigma is exactly 0 iff shadowing was not configured
	if sigma == 0 {
		return 1
	}
	if a > b {
		a, b = b, a
	}
	// Box–Muller from two uniform hashes of the pair identity.
	u1 := float64(xrand.Mix(w.cfg.ShadowSeed, 0x5ad0, uint64(a), uint64(b))%(1<<52)+1) / float64(int64(1)<<52)
	u2 := float64(xrand.Mix(w.cfg.ShadowSeed, 0x5ad1, uint64(a), uint64(b))%(1<<52)) / float64(int64(1)<<52)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return sigma.Times(z).Linear()
}

// countBlockers counts vehicle bodies crossing the a–b segment, excluding
// the endpoints' own bodies. Candidates are pruned to vehicles whose x lies
// within the segment's x-extent (padded by the longest body on the road).
func (w *World) countBlockers(a, b int, order []int, xs []float64, maxLen float64) int {
	pa, pb := w.pos[a], w.pos[b]
	lox := math.Min(pa.X, pb.X) - maxLen
	hix := math.Max(pa.X, pb.X) + maxLen
	loY := math.Min(pa.Y, pb.Y) - 3
	hiY := math.Max(pa.Y, pb.Y) + 3
	start := sort.SearchFloat64s(xs, lox)
	blockers := 0
	for k := start; k < len(xs) && xs[k] <= hix; k++ {
		c := order[k]
		if c == a || c == b {
			continue
		}
		pc := w.pos[c]
		if pc.Y < loY || pc.Y > hiY {
			continue
		}
		body := geom.Rect{Center: pc, Heading: w.heading[c], HalfLen: w.halfLen[c], HalfWid: w.halfWid[c]}
		if geom.SegmentIntersectsRect(pa, pb, body) {
			blockers++
		}
	}
	return blockers
}

// Link returns the pair-table entry from i toward j, if within interference
// range. Vehicle i's partners occupy a contiguous band of x-ranks, so the
// lookup is one O(1) probe of i's rank-window slot table — as fast as the
// dense O(n²) pair matrix it replaced, at O(links) memory.
func (w *World) Link(i, j int) (Link, bool) {
	r := w.rank[j] - w.slotLo[i]
	s := w.slots[i]
	if uint(r) >= uint(len(s)) {
		return Link{}, false
	}
	k := s[r]
	if k < 0 {
		return Link{}, false
	}
	return w.links[i][k], true
}

// Links returns all pair-table entries of vehicle i (within interference
// range). Callers must not retain the slice across Refresh.
func (w *World) Links(i int) []Link { return w.links[i] }

// Neighbors returns vehicle i's current one-hop neighbor set: LOS vehicles
// within CommRange (the OHM task set, Sec. II-B). Callers must not retain
// the slice across Refresh.
func (w *World) Neighbors(i int) []int { return w.neighbors[i] }

// NeighborSnapshot deep-copies all neighbor sets, for freezing the metric
// denominator at a window boundary.
func (w *World) NeighborSnapshot() [][]int {
	out := make([][]int, w.n)
	for i := range out {
		out[i] = append([]int(nil), w.neighbors[i]...)
	}
	return out
}

// AvgNeighborCount returns the mean LOS neighbor set size — the quantity the
// paper's Fig. 6 scenarios are labeled with (5, 6, 7, 8).
func (w *World) AvgNeighborCount() float64 {
	if w.n == 0 {
		return 0
	}
	total := 0
	for i := 0; i < w.n; i++ {
		total += len(w.neighbors[i])
	}
	return float64(total) / float64(w.n)
}

// beamGain evaluates the antenna gain of a beam toward a target bearing.
func (w *World) beamGain(beam phy.Beam, toward geom.Bearing) float64 {
	if beam.IsOmni() {
		return 1
	}
	return w.patterns.Get(beam.Width).Gain(geom.AngleDiff(beam.Bearing, toward))
}

// RxPowerMw returns the power vehicle rx receives from tx given both beam
// configurations, or 0 if the pair is out of interference range.
func (w *World) RxPowerMw(tx, rx int, txBeam, rxBeam phy.Beam) units.MilliWatt {
	lnk, ok := w.Link(tx, rx)
	if !ok {
		return 0
	}
	back, _ := w.Link(rx, tx)
	gTx := w.beamGain(txBeam, lnk.Bearing)  // tx's gain toward rx
	gRx := w.beamGain(rxBeam, back.Bearing) // rx's gain toward tx
	return units.MilliWatt(w.model.TxPowerMw().MW() * gTx * lnk.PathGainLin * gRx)
}

// SNRdB returns the interference-free SNR of a directed link with the given
// beams, or -Inf when out of range.
func (w *World) SNRdB(tx, rx int, txBeam, rxBeam phy.Beam) units.DB {
	p := w.RxPowerMw(tx, rx, txBeam, rxBeam)
	//mmv2v:exact RxPowerMw returns exactly 0 as its out-of-range/beam-miss sentinel
	if p == 0 {
		return units.DB(math.Inf(-1))
	}
	return units.RatioDB(p, w.model.NoiseMw())
}
