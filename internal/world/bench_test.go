package world

import (
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/phy"
	"mmv2v/internal/traffic"
	"mmv2v/internal/xrand"
)

// beamOf builds a 3° beam at a bearing.
func beamOf(bearing geom.Bearing) phy.Beam {
	return phy.Beam{Bearing: bearing, Width: geom.Deg(3)}
}

func benchRefresh(b *testing.B, density float64) {
	b.Helper()
	road, err := traffic.New(traffic.DefaultConfig(density), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(DefaultConfig(), road)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		road.Step(0.005)
		w.Refresh()
	}
}

// BenchmarkRefresh measures the 5 ms snapshot rebuild — the simulator's
// per-tick fixed cost (pair table + blocker counting). The 60 vpl case is
// beyond the paper's densities and exercises the scalability of the sweep
// (no dense O(n²) index, reused scratch buffers).
func BenchmarkRefresh15vpl(b *testing.B) { benchRefresh(b, 15) }
func BenchmarkRefresh30vpl(b *testing.B) { benchRefresh(b, 30) }
func BenchmarkRefresh60vpl(b *testing.B) { benchRefresh(b, 60) }

// BenchmarkLinkLookup measures the Link(i, j) rank-window slot probe that
// replaced the dense pair index.
func BenchmarkLinkLookup(b *testing.B) {
	road, err := traffic.New(traffic.DefaultConfig(30), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(DefaultConfig(), road)
	if err != nil {
		b.Fatal(err)
	}
	var tx, rx int
	found := false
	for i := 0; i < w.NumVehicles() && !found; i++ {
		if ls := w.Links(i); len(ls) > 0 {
			tx, rx = i, ls[len(ls)/2].J
			found = true
		}
	}
	if !found {
		b.Skip("no links")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.Link(tx, rx); !ok {
			b.Fatal("link vanished")
		}
	}
}

func BenchmarkRxPower(b *testing.B) {
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(DefaultConfig(), road)
	if err != nil {
		b.Fatal(err)
	}
	// Pick a linked pair.
	var tx, rx int
	found := false
	for i := 0; i < w.NumVehicles() && !found; i++ {
		if ls := w.Links(i); len(ls) > 0 {
			tx, rx = i, ls[0].J
			found = true
		}
	}
	if !found {
		b.Skip("no links")
	}
	lnk, _ := w.Link(tx, rx)
	back, _ := w.Link(rx, tx)
	beamA := beamOf(lnk.Bearing)
	beamB := beamOf(back.Bearing)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.RxPowerMw(tx, rx, beamA, beamB)
	}
}

func benchGridRefresh(b *testing.B, rows, cols, vehicles int) {
	b.Helper()
	grid := traffic.DefaultGridConfig(vehicles)
	grid.Rows, grid.Cols = rows, cols
	nw, err := traffic.NewNetwork(grid.Network(), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(DefaultConfig(), nw)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step(0.005)
		w.Refresh()
	}
}

// BenchmarkRefresh1k / BenchmarkRefresh10k measure the snapshot rebuild on
// city grids at matched street-level density (≈19–21 vehicles per lane-km,
// the paper's evaluation band): 1k vehicles on a 4×4 grid, 10k on the
// default 12×12. The spatial-hash pair index makes Refresh O(vehicles ×
// local density), so growing the fleet and the map together must scale far
// sub-quadratically — the 10k run must come in well under 100× the 1k run.
func BenchmarkRefresh1k(b *testing.B)  { benchGridRefresh(b, 4, 4, 1000) }
func BenchmarkRefresh10k(b *testing.B) { benchGridRefresh(b, 12, 12, 10000) }
