package world

import (
	"testing"

	"mmv2v/internal/traffic"
	"mmv2v/internal/xrand"
)

// TestLinkLookupMatchesDenseIndex pins the rank-window slot Link lookup
// against a brute-force dense index rebuilt from Links(i), across randomized
// worlds and several refresh steps — the equivalence the O(n²) matrix it
// replaced provided by construction.
func TestLinkLookupMatchesDenseIndex(t *testing.T) {
	scenarios := []struct {
		density float64
		trucks  float64
		seed    uint64
	}{
		{8, 0, 1},
		{15, 0, 2},
		{15, 0.3, 3},
		{25, 0.1, 4},
	}
	for _, sc := range scenarios {
		tc := traffic.DefaultConfig(sc.density)
		tc.TruckFraction = sc.trucks
		road, err := traffic.New(tc, xrand.New(sc.seed))
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(DefaultConfig(), road)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3; step++ {
			if step > 0 {
				road.Step(0.005)
				w.Refresh()
			}
			checkLinkLookup(t, w)
		}
	}
}

func checkLinkLookup(t *testing.T, w *World) {
	t.Helper()
	n := w.NumVehicles()
	for i := 0; i < n; i++ {
		// Links(i) must be in ascending partner-x order — the invariant the
		// rank-window slot build relies on.
		dense := make(map[int]Link, len(w.Links(i)))
		for k, l := range w.Links(i) {
			if k > 0 && w.pos[l.J].X < w.pos[w.Links(i)[k-1].J].X {
				t.Fatalf("vehicle %d links not sorted by partner x", i)
			}
			dense[l.J] = l
		}
		for j := 0; j < n; j++ {
			got, ok := w.Link(i, j)
			want, wantOK := dense[j]
			if ok != wantOK || got != want {
				t.Fatalf("Link(%d, %d) = %+v, %v; dense index says %+v, %v",
					i, j, got, ok, want, wantOK)
			}
		}
	}
}
