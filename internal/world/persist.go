// Checkpoint support (DESIGN.md §11). The world snapshots its x-order
// permutation and the full link table rather than re-deriving them on
// restore: a restore-time Refresh would re-query the link-fault hook for
// every in-range pair, advancing the injector's Gilbert–Elliott chains and
// double-counting fault diagnostics. LoadState instead restores the saved
// table and rebuilds every derived structure (poses, body frames, spatial
// hash, neighbor sets, rank-window slots) from the already-restored fleet
// — the exact state the next window's first Refresh would have seen.
package world

import (
	"mmv2v/internal/geom"
	"mmv2v/internal/persist"
	"mmv2v/internal/units"
)

// linkWireBytes is the minimum encoded size of one Link (J, Dist, Bearing,
// Blockers, PathGainLin), used to clamp hostile link counts.
const linkWireBytes = 5 * 8

// SaveState appends the world's durable snapshot state: the x-order
// permutation (its incremental re-sort history is not reconstructible from
// poses alone once ties have occurred) and the link table. Everything else
// is rebuilt from the fleet on restore.
func (w *World) SaveState(e *persist.Encoder) {
	e.Int(w.n)
	for _, i := range w.order {
		e.Int(i)
	}
	for i := 0; i < w.n; i++ {
		ls := w.links[i]
		e.U32(uint32(len(ls)))
		for _, l := range ls {
			e.Int(l.J)
			e.F64(l.Dist.M())
			e.F64(float64(l.Bearing))
			e.Int(l.Blockers)
			e.F64(l.PathGainLin)
		}
	}
}

// LoadState restores state checkpointed by SaveState onto a world rebuilt
// over the restored fleet. The vehicle count must match, the saved order
// must be a permutation of [0, n), and every link partner must be a valid
// vehicle index other than the owner. On success all derived state is
// rebuilt; on any error the world is left untouched.
func (w *World) LoadState(d *persist.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != w.n {
		d.Failf("checkpoint world sized for %d vehicles, this run has %d", n, w.n)
		return d.Err()
	}
	order := make([]int, n)
	seen := make([]bool, n)
	for k := range order {
		i := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if i < 0 || i >= n || seen[i] {
			d.Failf("world order[%d]=%d is not part of a [0,%d) permutation", k, i, n)
			return d.Err()
		}
		seen[i] = true
		order[k] = i
	}
	links := make([][]Link, n)
	for i := 0; i < n; i++ {
		nl := d.Count(linkWireBytes)
		if d.Err() != nil {
			return d.Err()
		}
		ls := make([]Link, 0, nl)
		for k := 0; k < nl; k++ {
			l := Link{
				J:           d.Int(),
				Dist:        units.Meter(d.F64()),
				Bearing:     geom.Bearing(d.F64()),
				Blockers:    d.Int(),
				PathGainLin: d.F64(),
			}
			if d.Err() != nil {
				return d.Err()
			}
			if l.J < 0 || l.J >= n || l.J == i {
				d.Failf("world link %d of vehicle %d targets invalid vehicle %d", k, i, l.J)
				return d.Err()
			}
			ls = append(ls, l)
		}
		links[i] = ls
	}

	w.order = order
	for k, i := range w.order {
		w.rank[i] = int32(k)
	}
	w.links = links
	w.loadPoses()
	w.rebuildGeometry()
	w.rebuildCells()
	for i := range w.links {
		// Saved tables are already rank-canonical; re-sorting is idempotent
		// there and restores the Link() lookup invariant on hostile input.
		w.sortLinksByRank(w.links[i])
	}
	w.rebuildIndex()
	return nil
}
