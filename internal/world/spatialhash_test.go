package world

import (
	"math"
	"testing"

	"mmv2v/internal/geom"
	"mmv2v/internal/traffic"
	"mmv2v/internal/xrand"
)

// randomNetwork builds a random road-graph fleet: a grid of random shape
// with a random block length and vehicle count, stepped a random number of
// ticks so vehicles sit mid-segment and mid-intersection.
func randomNetwork(t *testing.T, rng *xrand.Source) traffic.Fleet {
	t.Helper()
	g := traffic.DefaultGridConfig(40 + rng.Intn(160))
	g.Rows = 2 + rng.Intn(3)
	g.Cols = 2 + rng.Intn(3)
	g.BlockM = 80 + 40*float64(rng.Intn(4))
	nw, err := traffic.NewNetwork(g.Network(), rng.Child("net"))
	if err != nil {
		t.Fatal(err)
	}
	for k, steps := 0, rng.Intn(200); k < steps; k++ {
		nw.Step(0.05)
	}
	return nw
}

// TestSpatialHashMatchesBruteForce checks, on random road graphs, that the
// cell-grid pair enumeration and blocker pruning are exactly equivalent to
// an exhaustive O(n²)/O(n³) recomputation: same pair set, same distances
// and bearings, same blocker counts, neighbors exactly the LOS ∩ CommRange
// subset, links rank-sorted, and Link(i,j) agreeing with a linear scan.
func TestSpatialHashMatchesBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence sweep")
	}
	for trial := 0; trial < 8; trial++ {
		rng := xrand.New(0xC0FFEE).Child("trial", uint64(trial))
		fleet := randomNetwork(t, rng)
		cfg := DefaultConfig()
		if trial%2 == 1 {
			cfg.InterferenceRange = 120
			cfg.CommRange = 60
		}
		w, err := New(cfg, fleet)
		if err != nil {
			t.Fatal(err)
		}
		n := w.NumVehicles()

		// Brute force: every unordered pair, every possible blocker.
		type pairKey struct{ i, j int }
		want := make(map[pairKey]int) // pair -> exhaustive blocker count
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := w.pos[i].Dist(w.pos[j])
				if d > cfg.InterferenceRange || d == 0 { // same co-located sentinel check as Refresh
					continue
				}
				blockers := 0
				for c := 0; c < n; c++ {
					if c == i || c == j {
						continue
					}
					body := geom.Rect{Center: w.pos[c], Heading: w.heading[c], HalfLen: w.halfLen[c], HalfWid: w.halfWid[c]}
					if geom.SegmentIntersectsRect(w.pos[i], w.pos[j], body) {
						blockers++
					}
				}
				want[pairKey{i, j}] = blockers
			}
		}

		got := 0
		for i := 0; i < n; i++ {
			prevRank := int32(-1)
			for _, l := range w.Links(i) {
				if w.rank[l.J] <= prevRank {
					t.Fatalf("trial %d: links[%d] not strictly rank-sorted", trial, i)
				}
				prevRank = w.rank[l.J]
				if i < l.J {
					got++
					blockers, ok := want[pairKey{i, l.J}]
					if !ok {
						t.Fatalf("trial %d: hash produced pair (%d,%d) outside interference range", trial, i, l.J)
					}
					if l.Blockers != blockers {
						t.Fatalf("trial %d: pair (%d,%d) blockers %d, exhaustive scan says %d",
							trial, i, l.J, l.Blockers, blockers)
					}
				}
				if l.Dist != w.pos[i].Dist(w.pos[l.J]) {
					t.Fatalf("trial %d: link (%d,%d) distance mismatch", trial, i, l.J)
				}
				// Bearings are computed once from the lower-rank side; the
				// reverse entry is the forward bearing rotated exactly π.
				if w.rank[i] < w.rank[l.J] {
					if l.Bearing != w.pos[i].BearingTo(w.pos[l.J]) {
						t.Fatalf("trial %d: link (%d,%d) forward bearing mismatch", trial, i, l.J)
					}
				} else {
					fwd := w.pos[l.J].BearingTo(w.pos[i])
					if l.Bearing != geom.NormalizeBearing(fwd+geom.Bearing(math.Pi)) {
						t.Fatalf("trial %d: link (%d,%d) reverse bearing mismatch", trial, i, l.J)
					}
				}
				if !(l.PathGainLin > 0) {
					t.Fatalf("trial %d: link (%d,%d) non-positive gain %v", trial, i, l.J, l.PathGainLin)
				}
				// Link lookup (slot probe or binary search) must agree with
				// the slice entry itself.
				ll, ok := w.Link(i, l.J)
				if !ok || ll != l {
					t.Fatalf("trial %d: Link(%d,%d) lookup disagrees with links slice", trial, i, l.J)
				}
			}
			// Neighbors are exactly the LOS links within CommRange, in order.
			var wantN []int
			for _, l := range w.Links(i) {
				if l.Blockers == 0 && l.Dist <= cfg.CommRange {
					wantN = append(wantN, l.J)
				}
			}
			gotN := w.Neighbors(i)
			if len(gotN) != len(wantN) {
				t.Fatalf("trial %d: vehicle %d neighbor count %d, want %d", trial, i, len(gotN), len(wantN))
			}
			for k := range gotN {
				if gotN[k] != wantN[k] {
					t.Fatalf("trial %d: vehicle %d neighbor[%d] = %d, want %d", trial, i, k, gotN[k], wantN[k])
				}
			}
		}
		if got != len(want) {
			t.Fatalf("trial %d: hash found %d pairs, exhaustive scan found %d", trial, got, len(want))
		}
		// Absent pairs must miss the lookup in both directions.
		for i := 0; i < n && i < 40; i++ {
			for j := 0; j < n && j < 40; j++ {
				if i == j {
					continue
				}
				if _, ok := want[pairKey{minInt(i, j), maxInt(i, j)}]; ok {
					continue
				}
				if _, hit := w.Link(i, j); hit {
					t.Fatalf("trial %d: Link(%d,%d) hit for an out-of-range pair", trial, i, j)
				}
			}
		}
	}
}

// TestGridWorldRefreshStable steps a city grid with its world attached and
// re-checks the pair-table invariants after motion (the persistent order
// and bucket state must stay coherent across refreshes).
func TestGridWorldRefreshStable(t *testing.T) {
	g := traffic.DefaultGridConfig(150)
	g.Rows, g.Cols = 3, 3
	g.BlockM = 150
	nw, err := traffic.NewNetwork(g.Network(), xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(DefaultConfig(), nw)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		nw.Step(0.05)
		w.Refresh()
	}
	checkLinkLookup(t, w)
	if w.AvgNeighborCount() <= 0 {
		t.Fatal("city grid produced no LOS neighbors")
	}
	if w.Network() != nw {
		t.Fatal("Network accessor lost the fleet")
	}
	if w.Road() != nil {
		t.Fatal("Road accessor should be nil on a network world")
	}
}

// FuzzCellCoord fuzzes the cell-coordinate mapping: for any finite query
// point and any grid shape, the clamped cell must stay on the grid, agree
// with the floor of the offset, and be monotone in the coordinate — the
// properties pair enumeration and blocker pruning rely on.
func FuzzCellCoord(f *testing.F) {
	f.Add(0.0, 0.0, 62.5, 17, 1, 310.0, -4.0)
	f.Add(-1208.1, -1208.1, 100.0, 34, 34, 3200.0, 3200.0)
	f.Add(0.0, -9.0, 50.0, 1, 1, 1e9, -1e9)
	f.Fuzz(func(t *testing.T, minX, minY, cell float64, cellsX, cellsY int, x, y float64) {
		if !(cell > 1e-3) || math.IsInf(cell, 0) ||
			math.IsNaN(minX) || math.IsInf(minX, 0) || math.IsNaN(minY) || math.IsInf(minY, 0) ||
			math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Skip()
		}
		if cellsX < 1 || cellsX > 1<<12 || cellsY < 1 || cellsY > 1<<12 {
			t.Skip()
		}
		w := &World{gridMin: geom.Vec{X: minX, Y: minY}, cellM: cell, invCellM: 1 / cell, cellsX: cellsX, cellsY: cellsY}
		cx, cy := w.cellX(x), w.cellY(y)
		if cx < 0 || cx >= cellsX || cy < 0 || cy >= cellsY {
			t.Fatalf("cell (%d,%d) off the %dx%d grid", cx, cy, cellsX, cellsY)
		}
		// Interior points (strictly inside the grid's span) must land on the
		// floor cell, un-clamped.
		off := (x - minX) * w.invCellM
		if off >= 0 && off < float64(cellsX) {
			if cx != int(off) {
				t.Fatalf("interior x %v: cell %d != floor %d", x, cx, int(off))
			}
		}
		// Monotonicity: a point one full cell further right never maps left.
		if x2 := x + cell; !math.IsInf(x2, 0) {
			if cx2 := w.cellX(x2); cx2 < cx {
				t.Fatalf("cellX not monotone: %v->%d but %v->%d", x, cx, x2, cx2)
			}
		}
	})
}
