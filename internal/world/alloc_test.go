package world

import (
	"testing"

	"mmv2v/internal/traffic"
	"mmv2v/internal/xrand"
)

// TestLinkLookupAllocFree pins the Link(i, j) zero-alloc contract
// independently of the alloccheck lint pass and the benchmark gate: the
// rank-window slot probe (and its binary-search fallback) must never touch
// the heap, whatever the protocol layers do around it.
func TestLinkLookupAllocFree(t *testing.T) {
	road, err := traffic.New(traffic.DefaultConfig(30), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	var tx, rx int
	found := false
	for i := 0; i < w.NumVehicles() && !found; i++ {
		if ls := w.Links(i); len(ls) > 0 {
			tx, rx = i, ls[len(ls)/2].J
			found = true
		}
	}
	if !found {
		t.Skip("no links")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := w.Link(tx, rx); !ok {
			t.Fatal("link vanished")
		}
	}); n != 0 {
		t.Errorf("Link lookup allocates %v times per run, want 0", n)
	}
}
