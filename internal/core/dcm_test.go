package core

import (
	"testing"
)

// Targeted DCM behavior tests on hand-built scenarios.

func TestDCMBreakupFreesPreviousCandidate(t *testing.T) {
	// Chain: v0 –20m– v1 –25m– v2 –20m– v3 across lanes (all LOS).
	// SNR(0,1) and SNR(2,3) are the strong links; (1,2) weaker. Optimal
	// matching pairs (0,1) and (2,3). If v1 first matched v2 (their slot
	// comes up), the later (0,1) or (2,3) negotiations must break it up and
	// re-pair, so by frame end both strong pairs stream.
	env := buildEnv(t, 1e12, []int{0, 1, 2, 1}, []float64{0, 15, 30, 45})
	p := New(env, DefaultParams())
	runFrames(env, p, 3)
	d01 := env.Ledger.Exchanged(0, 1)
	d23 := env.Ledger.Exchanged(2, 3)
	d12 := env.Ledger.Exchanged(1, 2)
	if d01 == 0 || d23 == 0 {
		t.Errorf("strong pairs starved: d01=%v d23=%v d12=%v", d01, d23, d12)
	}
	if d12 > d01 || d12 > d23 {
		t.Errorf("weak middle link dominated: d01=%v d23=%v d12=%v", d01, d23, d12)
	}
}

func TestDCMHashCollisionStillMatches(t *testing.T) {
	// Force C=1: every neighbor lands in the same bucket, so vehicles pick
	// random peers each cycle. With M=40 slots the pair must still match
	// eventually within the frame.
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	params := DefaultParams()
	params.C = 1
	p := New(env, params)
	runFrames(env, p, 2)
	if got := env.Ledger.Exchanged(0, 1); got == 0 {
		t.Error("C=1 prevented any matching")
	}
}

func TestDiscoveredExpiresWhenStale(t *testing.T) {
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	params := DefaultParams()
	params.StalenessFrames = 2
	p := New(env, params)
	env.DriveFrames(p, 0, 2)
	if len(p.Discovered(0)) == 0 {
		t.Fatal("nothing discovered")
	}
	// Teleport vehicle 1 far away and continue the frame sequence: the
	// stale entry must age out of the working set.
	env.World.Road().Vehicles()[1].S = 600
	env.World.Refresh()
	env.DriveFrames(p, 2, 4)
	if d := p.Discovered(0); len(d) != 0 {
		t.Errorf("stale neighbor still in working set: %v", d)
	}
}

func TestEligibleExcludesDonePairs(t *testing.T) {
	env := buildEnv(t, 50e6, []int{1, 1, 2}, []float64{0, 30, 15})
	p := New(env, DefaultParams())
	runFrames(env, p, 1)
	// Force-complete (0,1).
	if !env.PairDone(0, 1) {
		env.Ledger.Add(0, 1, 50e6)
	}
	if elig := p.eligibleNeighbors(0); contains(elig, 1) {
		t.Errorf("done pair still eligible: %v", elig)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestNegotiationMessagesCounted(t *testing.T) {
	env := buildEnv(t, 1e12, []int{1, 1}, []float64{0, 30})
	p := New(env, DefaultParams())
	runFrames(env, p, 3)
	if p.Negotiations == 0 {
		t.Error("no negotiation messages sent")
	}
	if p.Matches == 0 {
		t.Error("no matches recorded")
	}
}
