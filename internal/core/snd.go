package core

import (
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/phy"
	"mmv2v/internal/trace"
)

// sswMsg is the payload of a Sector Sweep frame: the transmitter's ID and
// the sector it is currently sweeping (Sec. III-B2: "a transmitter sends out
// its ID (e.g., MAC address) and the sector ID").
type sswMsg struct {
	from   int
	sector int
}

// scheduleSND schedules the Synchronized Neighbor Discovery phase
// (Sec. III-B): K independent rounds, each with probabilistic role
// selection, a synchronized sweep/sense half-round, and a role-swapped
// second half-round.
//
// With perfect GPS synchronization (SyncJitter = 0) all vehicles share each
// slot's two events; with jitter, every vehicle's aim/sweep is shifted by
// its private clock offset, so misaligned sweep/sense windows emerge.
func (p *Protocol) scheduleSND(start des.Time) {
	slot := p.env.Timing.SectorSlot()
	s := p.cfg.Codebook.Sectors.Count
	for round := 0; round < p.cfg.K; round++ {
		roundStart := start.Add(time.Duration(round) * p.SNDRoundDuration())
		round := round
		p.env.Sim.ScheduleAt(roundStart, "mmv2v.snd.roles", func() { p.selectRoles(round) })
		for half := 0; half < 2; half++ {
			for sector := 0; sector < s; sector++ {
				slotStart := roundStart.Add(time.Duration(half*s+sector) * slot)
				half, sector := half, sector
				// Both sides spend the beam-switch time retuning, so
				// receivers aim at slotStart+BeamSwitch — scheduled before
				// the sweep at the same instant, and after the previous
				// slot's frame has resolved at slotStart.
				aimAt := slotStart.Add(p.env.Timing.BeamSwitch)
				if p.cfg.SyncJitter == 0 {
					p.env.Sim.ScheduleAt(aimAt, "mmv2v.snd.aim", func() { p.sndAim(half, sector) })
					p.env.Sim.ScheduleAt(aimAt, "mmv2v.snd.sweep", func() { p.sndSweep(half, sector) })
					continue
				}
				// Under clock jitter each vehicle acts on its own clock:
				// receivers retune halfway through the beam-switch guard
				// (so they are settled before a well-synchronized peer's
				// SSW begins), transmitters fire after the full guard.
				for i := 0; i < p.env.N(); i++ {
					i := i
					off := p.clockOffset(i)
					rxAt := slotStart.Add(p.env.Timing.BeamSwitch / 2).Add(off)
					txAt := slotStart.Add(p.env.Timing.BeamSwitch).Add(off)
					p.env.Sim.ScheduleAt(rxAt, "mmv2v.snd.aim1", func() { p.sndAimOne(i, half, sector) })
					p.env.Sim.ScheduleAt(txAt, "mmv2v.snd.sweep1", func() { p.sndSweepOne(i, half, sector) })
				}
			}
		}
	}
}

// clockOffset returns vehicle i's fixed clock error, a uniform draw in
// [-SyncJitter, +SyncJitter] clamped so no event lands before frame start.
func (p *Protocol) clockOffset(i int) time.Duration {
	if p.cfg.SyncJitter == 0 {
		return 0
	}
	// Offsets are drawn in [0, 2·SyncJitter): relative offsets are what
	// matter, and the DES cannot schedule into the past.
	j := float64(p.cfg.SyncJitter)
	return time.Duration(p.env.Rand.Child("mmv2v.clock", uint64(i)).UniformRange(0, 2*j))
}

// sndAimOne aims one receiver under clock jitter.
func (p *Protocol) sndAimOne(i, half, sector int) {
	if p.isTransmitter(i, half) {
		return
	}
	cb := p.cfg.Codebook
	senseSector := cb.Sectors.Opposite(sector)
	beam := phy.Beam{Bearing: cb.Sectors.Center(senseSector), Width: cb.RxWidth}
	p.env.Medium.StartListen(i, beam, func(d medium.Delivery) { p.onSSW(i, senseSector, d) })
}

// sndSweepOne fires one transmitter's SSW under clock jitter.
func (p *Protocol) sndSweepOne(i, half, sector int) {
	if !p.isTransmitter(i, half) {
		return
	}
	cb := p.cfg.Codebook
	beam := phy.Beam{Bearing: cb.Sectors.Center(sector), Width: cb.TxWidth}
	p.env.Medium.Transmit(i, beam, p.env.Timing.SSW, sswMsg{from: i, sector: sector})
	p.obsSSWTx.Inc()
}

// selectRoles performs Probabilistic Role Selection (Sec. III-B1): each
// vehicle independently becomes a transmitter with probability P. The coin
// is a private per-(vehicle, frame, round) stream — no coordination.
func (p *Protocol) selectRoles(round int) {
	for i := 0; i < p.env.N(); i++ {
		coin := p.env.Rand.Child("mmv2v.role", uint64(i), uint64(p.frame), uint64(round))
		p.roleTx[i] = coin.Bool(p.cfg.P)
	}
}

// isTransmitter reports vehicle i's effective role in a half-round: roles
// swap in the second half (Sec. III-B4).
func (p *Protocol) isTransmitter(i, half int) bool {
	if half == 0 {
		return p.roleTx[i]
	}
	return !p.roleTx[i]
}

// sndAim points every receiver's sensing beam at the opposite sector
// (Sec. III-B3: if the sweeping sector is i, the sensing sector is
// (i + S/2) mod S). Receivers must be aimed before the SSW frame starts.
func (p *Protocol) sndAim(half, sector int) {
	cb := p.cfg.Codebook
	senseSector := cb.Sectors.Opposite(sector)
	beam := phy.Beam{Bearing: cb.Sectors.Center(senseSector), Width: cb.RxWidth}
	for i := 0; i < p.env.N(); i++ {
		if p.isTransmitter(i, half) {
			continue
		}
		i := i
		p.env.Medium.StartListen(i, beam, func(d medium.Delivery) { p.onSSW(i, senseSector, d) })
	}
}

// sndSweep fires every transmitter's SSW frame on the current sweep sector.
func (p *Protocol) sndSweep(half, sector int) {
	cb := p.cfg.Codebook
	beam := phy.Beam{Bearing: cb.Sectors.Center(sector), Width: cb.TxWidth}
	for i := 0; i < p.env.N(); i++ {
		if !p.isTransmitter(i, half) {
			continue
		}
		p.env.Medium.Transmit(i, beam, p.env.Timing.SSW, sswMsg{from: i, sector: sector})
		p.obsSSWTx.Inc()
	}
}

// onSSW records a decoded SSW frame: the receiver now knows the transmitter,
// the link SNR and which of its own sectors points at the transmitter
// (the sensing sector it was aimed at).
func (p *Protocol) onSSW(me, senseSector int, d medium.Delivery) {
	msg, ok := d.Payload.(sswMsg)
	if !ok {
		return // other protocol traffic
	}
	if d.SINRdB < p.cfg.MinLinkSNRdB {
		return // too weak to be a one-hop neighbor (out of the task disk)
	}
	info := p.discovered[me][msg.from]
	if info == nil {
		info = &neighborInfo{}
		p.discovered[me][msg.from] = info
		p.DiscoveredTotal++
		p.obsDiscoveries.Inc()
		p.env.Trace.Emit(trace.Event{
			At: d.At, Frame: p.frame, Kind: trace.KindDiscovery,
			A: me, B: msg.from, Value: d.SNRdB.Decibels(),
		})
	}
	// A sweep can be heard on adjacent sensing sectors through the Gaussian
	// roll-off; keep the strongest reception of the frame — that sector is
	// the true pointing direction (what a real receiver selects from an SLS
	// sweep).
	if info.lastFrame == p.frame && info.snrDB >= d.SINRdB {
		return
	}
	info.snrDB = d.SINRdB
	info.towardSector = senseSector
	info.lastFrame = p.frame
}
