// Checkpoint support (DESIGN.md §11). A checkpoint lands at a drained
// window boundary, which for the protocol engine is between teardownUDT of
// the previous frame (not yet run) and the next RunFrame: the durable state
// is the discovered-neighbor sets, the frame counter, the diagnostics, and
// a possibly-still-open UDT session whose final cross-boundary accrual the
// next window's first refresh hook performs. Per-slot working state (cand,
// roleTx, negPeer, gotMsg, pendingBreak) is reset by RunFrame and is not
// serialized. Map keys are encoded sorted so the bytes are canonical.
package core

import (
	"sort"

	"mmv2v/internal/des"
	"mmv2v/internal/persist"
	"mmv2v/internal/udt"
	"mmv2v/internal/units"
)

// neighborWireBytes is the minimum encoded size of one discovered-neighbor
// entry, used to clamp hostile entry counts.
const neighborWireBytes = 8 + 8 + 8 + 8

// saveDiscovered appends one vehicle's neighbor map in ascending key order.
func saveDiscovered(e *persist.Encoder, m map[int]*neighborInfo) {
	keys := make([]int, 0, len(m))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for j := range m {
		keys = append(keys, j)
	}
	sort.Ints(keys)
	e.U32(uint32(len(keys)))
	for _, j := range keys {
		info := m[j]
		e.Int(j)
		e.F64(info.snrDB.Decibels())
		e.Int(info.towardSector)
		e.Int(info.lastFrame)
	}
}

// loadDiscovered restores one vehicle's neighbor map. Peers must be valid
// vehicle indices other than the owner; sectors must index the codebook.
func loadDiscovered(d *persist.Decoder, owner, n, sectors int) map[int]*neighborInfo {
	cnt := d.Count(neighborWireBytes)
	m := make(map[int]*neighborInfo, cnt)
	for k := 0; k < cnt; k++ {
		j := d.Int()
		info := &neighborInfo{
			snrDB:        units.DB(d.F64()),
			towardSector: d.Int(),
			lastFrame:    d.Int(),
		}
		if d.Err() != nil {
			return m
		}
		if j < 0 || j >= n || j == owner {
			d.Failf("vehicle %d discovered invalid peer %d (of %d vehicles)", owner, j, n)
			return m
		}
		if info.towardSector < 0 || info.towardSector >= sectors {
			d.Failf("vehicle %d sector %d toward peer %d outside [0, %d)", owner, info.towardSector, j, sectors)
			return m
		}
		m[j] = info
	}
	return m
}

// SaveState appends the engine's durable state (sim.Stateful).
func (p *Protocol) SaveState(e *persist.Encoder) {
	e.Int(p.frame)
	e.I64(int64(p.frameEnd))
	e.U64(p.DiscoveredTotal)
	e.U64(p.Negotiations)
	e.U64(p.Matches)
	e.U64(p.BreakupsSent)
	e.U64(p.RefineFailures)
	for i := range p.discovered {
		saveDiscovered(e, p.discovered[i])
	}
	e.Bool(p.udt.session != nil)
	if p.udt.session != nil {
		p.udt.session.SaveState(e)
	}
}

// LoadState restores state checkpointed by SaveState (sim.Stateful).
func (p *Protocol) LoadState(d *persist.Decoder) error {
	frame := d.Int()
	frameEnd := des.Time(d.I64())
	discoveredTotal := d.U64()
	negotiations := d.U64()
	matches := d.U64()
	breakups := d.U64()
	refineFailures := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	n := p.env.N()
	discovered := make([]map[int]*neighborInfo, n)
	for i := 0; i < n; i++ {
		discovered[i] = loadDiscovered(d, i, n, p.cfg.Codebook.Sectors.Count)
		if d.Err() != nil {
			return d.Err()
		}
	}
	var session *udt.Session
	if d.Bool() {
		var err error
		if session, err = udt.Restore(p.env, d); err != nil {
			return err
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.frame = frame
	p.frameEnd = frameEnd
	p.DiscoveredTotal = discoveredTotal
	p.Negotiations = negotiations
	p.Matches = matches
	p.BreakupsSent = breakups
	p.RefineFailures = refineFailures
	p.discovered = discovered
	p.udt.session = session
	return nil
}

// SaveState appends the oracle's durable state (sim.Stateful).
func (o *Oracle) SaveState(e *persist.Encoder) {
	e.Int(o.frame)
	e.Bool(o.session != nil)
	if o.session != nil {
		o.session.SaveState(e)
	}
}

// LoadState restores state checkpointed by SaveState (sim.Stateful).
func (o *Oracle) LoadState(d *persist.Decoder) error {
	frame := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	var session *udt.Session
	if d.Bool() {
		var err error
		if session, err = udt.Restore(o.env, d); err != nil {
			return err
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	o.frame = frame
	o.session = session
	return nil
}
