package core

import (
	"math"
	"sort"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/phy"
	"mmv2v/internal/trace"
	"mmv2v/internal/units"
)

// negMsg is a DCM candidate-information message (first half of a slot):
// the sender tells its designated peer the SNR it measured on their mutual
// link and the quality of its current candidate link, if any (Sec. III-C2).
type negMsg struct {
	from, to int
	// linkSNR is the sender's SSW measurement of the (from, to) link.
	linkSNR units.DB
	// candSNR is the sender's current candidate link quality.
	candSNR units.DB
	hasCand bool
}

// breakMsg informs a previous candidate that the sender has switched away
// (second half of a slot).
type breakMsg struct {
	from, to int
}

// scheduleDCM schedules the Distributed Consensual Matching phase
// (Sec. III-C): M negotiation slots, each serving CNS bucket (slot mod C).
//
// Slot micro-structure (fits the paper's 30 µs with the 4.3 µs control
// preamble and 3 µs SIFS):
//
//	t+0        first sender (larger ID) transmits its negMsg
//	t+pre+SIFS second sender replies (only if it decoded the first message)
//	t+half     decision point; break-up notifications transmitted
func (p *Protocol) scheduleDCM(start des.Time) {
	slotDur := p.env.Timing.NegotiationSlot
	pre := p.env.Timing.ControlPreamble
	sifs := p.env.Timing.SIFS
	for m := 0; m < p.cfg.M; m++ {
		slotStart := start.Add(time.Duration(m) * slotDur)
		m := m
		p.env.Sim.ScheduleAt(slotStart, "mmv2v.dcm.first", func() { p.dcmSlotBegin(m) })
		p.env.Sim.ScheduleAt(slotStart.Add(pre+sifs), "mmv2v.dcm.reply", p.dcmReply)
		p.env.Sim.ScheduleAt(slotStart.Add(slotDur/2), "mmv2v.dcm.decide", func() { p.dcmDecide(m) })
	}
}

// eligibleNeighbors returns i's sorted working set: discovered, fresh, and
// with the task not yet complete.
func (p *Protocol) eligibleNeighbors(i int) []int {
	out := make([]int, 0, len(p.discovered[i]))
	//mmv2v:sorted pure key collection with order-free filter; sorted below before returning
	for j, info := range p.discovered[i] {
		if p.frame-info.lastFrame >= p.cfg.StalenessFrames {
			continue
		}
		if p.env.PairDone(i, j) {
			continue
		}
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// dcmSlotBegin assigns each vehicle its designated peer for slot m via the
// CNS (Sec. III-C1), then lets the first senders (larger ID of each
// designated pair) transmit while their peers listen.
func (p *Protocol) dcmSlotBegin(m int) {
	bucket := m % p.cfg.C
	n := p.env.N()
	for i := 0; i < n; i++ {
		p.negPeer[i] = -1
		p.gotMsg[i] = negotiationState{}
		var inBucket []int
		for _, j := range p.eligibleNeighbors(i) {
			if p.Bucket(i, j) == bucket {
				inBucket = append(inBucket, j)
			}
		}
		switch len(inBucket) {
		case 0:
		case 1:
			p.negPeer[i] = inBucket[0]
		default:
			// Hash collision or small C: pick one at random (Sec. III-C1).
			pick := p.env.Rand.Child("mmv2v.dcm.pick", uint64(i), uint64(p.frame), uint64(m))
			p.negPeer[i] = inBucket[pick.Intn(len(inBucket))]
		}
	}
	// First half: larger ID transmits, peer listens (footnote 1: "the
	// vehicle with a larger MAC address does first").
	for i := 0; i < n; i++ {
		j := p.negPeer[i]
		if j < 0 {
			p.env.Medium.StopListen(i)
			continue
		}
		if i > j {
			p.transmitNeg(i, j)
		} else {
			p.listenToward(i, j)
		}
	}
}

// dcmReply lets second senders (smaller ID) respond — but only if they
// decoded the first message, so the reply doubles as an acknowledgement.
func (p *Protocol) dcmReply() {
	n := p.env.N()
	for i := 0; i < n; i++ {
		j := p.negPeer[i]
		if j < 0 {
			continue
		}
		if i < j {
			if p.gotMsg[i].got {
				p.transmitNeg(i, j)
			}
		} else {
			p.listenToward(i, j)
		}
	}
}

// pairQuality scores a prospective pair for the DCM update rule: the
// conservative minimum of the two SSW measurements, plus the optional
// fairness bias toward pairs with less completed work.
func (p *Protocol) pairQuality(i, j int, mySNR, theirSNR units.DB) units.DB {
	q := units.DB(math.Min(mySNR.Decibels(), theirSNR.Decibels()))
	//mmv2v:exact config gate: the bias term is enabled iff the knob was set to a nonzero literal
	if p.cfg.FairnessBiasDB != 0 {
		q += p.cfg.FairnessBiasDB.Times(1 - p.env.Ledger.Progress(i, j, p.env.DemandBits))
	}
	return q
}

// transmitNeg sends vehicle i's negotiation message to j with a sector beam.
func (p *Protocol) transmitNeg(i, j int) {
	info := p.discovered[i][j]
	if info == nil {
		return
	}
	beam := phy.Beam{Bearing: p.cfg.Codebook.Sectors.Center(info.towardSector), Width: p.cfg.Codebook.TxWidth}
	msg := negMsg{from: i, to: j, linkSNR: info.snrDB}
	if p.cand[i].valid {
		msg.hasCand = true
		msg.candSNR = p.cand[i].snrDB
	}
	p.env.Medium.Transmit(i, beam, p.env.Timing.ControlPreamble, msg)
	p.Negotiations++
	p.obsNegTx.Inc()
}

// listenToward aims vehicle i's receive beam at neighbor j for negotiation
// traffic.
func (p *Protocol) listenToward(i, j int) {
	info := p.discovered[i][j]
	if info == nil {
		return
	}
	beam := phy.Beam{Bearing: p.cfg.Codebook.Sectors.Center(info.towardSector), Width: p.cfg.Codebook.RxWidth}
	me := i
	p.env.Medium.StartListen(me, beam, func(d medium.Delivery) { p.onNegTraffic(me, d) })
}

// onNegTraffic handles negotiation-plane receptions at vehicle me.
func (p *Protocol) onNegTraffic(me int, d medium.Delivery) {
	switch msg := d.Payload.(type) {
	case negMsg:
		if msg.to != me || msg.from != p.negPeer[me] {
			return // overheard someone else's negotiation
		}
		p.gotMsg[me] = negotiationState{
			got:     true,
			linkSNR: msg.linkSNR,
			candSNR: msg.candSNR,
			hasCand: msg.hasCand,
		}
	case breakMsg:
		if msg.to != me {
			return
		}
		// Our candidate has switched to someone better (Sec. III-C2,
		// condition 2 update): we are single again.
		if p.cand[me].valid && p.cand[me].peer == msg.from {
			p.cand[me] = candidate{}
			p.obsBreakupsRecv.Inc()
			p.env.Trace.Emit(trace.Event{
				At: d.At, Frame: p.frame, Kind: trace.KindBreakup,
				A: msg.from, B: me,
			})
		}
	}
}

// dcmDecide applies the candidate link setup/update rule (Sec. III-C2) at
// each vehicle that completed a message exchange this slot, then transmits
// break-up notifications in the slot's second half.
//
// Both endpoints evaluate the same rule on the same inputs (each side's
// measured link SNR travels in the messages; both use the conservative
// minimum), so their decisions agree whenever both messages were decoded.
func (p *Protocol) dcmDecide(slot int) {
	n := p.env.N()
	type breakup struct{ from, to int }
	var breakups []breakup
	for i := 0; i < n; i++ {
		j := p.negPeer[i]
		st := p.gotMsg[i]
		if j < 0 || !st.got {
			continue
		}
		// For the larger-ID side the decoded message was the reply, which
		// only exists if the peer decoded our message: full information.
		// For the smaller-ID side, decoding the first message plus sending
		// the reply is its best knowledge (the reply could still be lost at
		// the peer — a rare inconsistency the protocol tolerates).
		mine := p.discovered[i][j]
		if mine == nil {
			continue
		}
		pairQ := p.pairQuality(i, j, mine.snrDB, st.linkSNR)
		myOK := !p.cand[i].valid || pairQ > p.cand[i].snrDB
		theirOK := !st.hasCand || pairQ > st.candSNR
		if !(myOK && theirOK) {
			continue
		}
		if p.cand[i].valid && p.cand[i].peer != j {
			breakups = append(breakups, breakup{from: i, to: p.cand[i].peer})
		}
		p.cand[i] = candidate{peer: j, snrDB: pairQ, valid: true}
		p.Matches++
		p.obsMatches.Inc()
		p.env.Trace.Emit(trace.Event{
			At: p.env.Sim.Now(), Frame: p.frame, Kind: trace.KindMatch,
			A: i, B: j, Value: pairQ.Decibels(),
		})
	}
	// Second half: break-up senders transmit; everyone else with a
	// candidate listens toward it (a vehicle's previous candidate still has
	// its beam schedule pointed here, which is what makes the notification
	// deliverable).
	sent := make(map[int]bool, len(breakups))
	for _, b := range breakups {
		p.transmitBreak(b.from, b.to)
		sent[b.from] = true
		p.BreakupsSent++
	}
	for i := 0; i < n; i++ {
		if sent[i] || !p.cand[i].valid {
			continue
		}
		p.listenToward(i, p.cand[i].peer)
	}
	if p.slotObserver != nil {
		p.slotObserver(p.frame, slot)
	}
}

// transmitBreak sends a break-up notification from i to its previous
// candidate.
func (p *Protocol) transmitBreak(i, to int) {
	info := p.discovered[i][to]
	if info == nil {
		return
	}
	beam := phy.Beam{Bearing: p.cfg.Codebook.Sectors.Center(info.towardSector), Width: p.cfg.Codebook.TxWidth}
	p.env.Medium.Transmit(i, beam, p.env.Timing.ControlPreamble, breakMsg{from: i, to: to})
	p.obsBreakTx.Inc()
}

// Bucket exposes the CNS bucket of a pair (for tests).
func (p *Protocol) Bucket(i, j int) int { return p.cfg.Bucket(i, j) }
