package core

import (
	"fmt"
	"sort"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/obs"
	"mmv2v/internal/sim"
	"mmv2v/internal/units"
)

// neighborInfo is what a vehicle knows about a discovered neighbor.
type neighborInfo struct {
	// snrDB is the most recent SSW measurement of the link.
	snrDB units.DB
	// towardSector is the owner's sector index pointing at the neighbor
	// (the sensing sector it decoded the neighbor on).
	towardSector int
	// lastFrame is the frame index of the latest (re-)discovery.
	lastFrame int
}

// candidate is a vehicle's current DCM communication candidate.
type candidate struct {
	peer  int
	snrDB units.DB
	valid bool
}

// Protocol is the mmV2V protocol engine: one instance drives all vehicles'
// synchronized frames (phase boundaries are global because vehicles are
// GPS-synchronized; per-vehicle decisions remain local).
type Protocol struct {
	env *sim.Env //mmv2v:derived construction parameter re-supplied by New on restore
	cfg Params   //mmv2v:derived construction parameter; config is run identity, not state

	// discovered[i] is vehicle i's working neighbor set ∪_f N_i^f.
	discovered []map[int]*neighborInfo
	// cand[i] is vehicle i's current DCM candidate (reset each frame).
	cand []candidate //mmv2v:derived per-frame DCM scratch; reset at every frame boundary
	// roleTx[i] is vehicle i's role in the current discovery round.
	roleTx []bool //mmv2v:derived per-round discovery scratch; redrawn each discovery round
	// negPeer[i] is the neighbor i negotiates with in the current slot
	// (-1 when idle).
	negPeer []int //mmv2v:derived per-slot negotiation scratch; reassigned every DCM slot
	// gotMsg[i] holds the peer message i decoded in the current slot.
	gotMsg []negotiationState //mmv2v:derived per-slot decode scratch; overwritten every DCM slot
	// pendingBreak[i] is a queued break-up notification target (-1 none).
	pendingBreak []int //mmv2v:derived queued within one frame; drained before the frame boundary checkpoints land

	frame    int
	frameEnd des.Time
	udt      udtState
	// slotObserver, when set, is invoked after every DCM negotiation slot
	// (experiment instrumentation, e.g. Fig. 6's capacity-vs-slots curve).
	slotObserver func(frame, slot int) //mmv2v:derived experiment instrumentation hook re-attached by the harness, not protocol state

	// Diagnostics.
	DiscoveredTotal uint64
	Negotiations    uint64
	Matches         uint64
	BreakupsSent    uint64
	RefineFailures  uint64

	// Statistics handles (nil-safe no-ops when Env.Obs is nil).
	obsSSWTx        *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
	obsDiscoveries  *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
	obsNegTx        *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
	obsBreakTx      *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
	obsMatches      *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
	obsBreakupsRecv *obs.Counter //mmv2v:derived statistics handle re-acquired from Env.Obs by New
}

// negotiationState records the peer negotiation message decoded in a slot.
type negotiationState struct {
	got     bool
	linkSNR units.DB
	candSNR units.DB
	hasCand bool
}

// New builds the mmV2V protocol over an environment. It panics on invalid
// params (programmer error); use Params.Validate to pre-check user input.
func New(env *sim.Env, cfg Params) *Protocol {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid mmV2V params for scenario seed %#x (%d vehicles): %v",
			env.Seed, env.N(), err))
	}
	n := env.N()
	p := &Protocol{
		env:          env,
		cfg:          cfg,
		discovered:   make([]map[int]*neighborInfo, n),
		cand:         make([]candidate, n),
		roleTx:       make([]bool, n),
		negPeer:      make([]int, n),
		gotMsg:       make([]negotiationState, n),
		pendingBreak: make([]int, n),
	}
	for i := range p.discovered {
		p.discovered[i] = make(map[int]*neighborInfo)
	}
	p.obsSSWTx = env.Obs.Counter("snd.ssw_tx")
	p.obsDiscoveries = env.Obs.Counter("snd.discoveries")
	p.obsNegTx = env.Obs.Counter("dcm.neg_tx")
	p.obsBreakTx = env.Obs.Counter("dcm.break_tx")
	p.obsMatches = env.Obs.Counter("dcm.matches")
	p.obsBreakupsRecv = env.Obs.Counter("dcm.breakups_recv")
	env.OnRefresh(p.onRefresh)
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "mmV2V" }

// Factory returns a sim.Factory for this configuration.
func Factory(cfg Params) sim.Factory {
	return func(env *sim.Env) sim.Protocol { return New(env, cfg) }
}

// SNDRoundDuration returns the length of one discovery round:
// two half-rounds of S sector slots each.
func (p *Protocol) SNDRoundDuration() time.Duration {
	return 2 * time.Duration(p.cfg.Codebook.Sectors.Count) * p.env.Timing.SectorSlot()
}

// SNDDuration returns the length of the whole SND phase (K rounds).
func (p *Protocol) SNDDuration() time.Duration {
	return time.Duration(p.cfg.K) * p.SNDRoundDuration()
}

// DCMDuration returns the length of the DCM phase (M negotiation slots).
func (p *Protocol) DCMDuration() time.Duration {
	return time.Duration(p.cfg.M) * p.env.Timing.NegotiationSlot
}

// RefinementDuration returns the length of the UDT beam-refinement cross
// search: each side sweeps its s narrow beams once while the other listens,
// plus a turnaround (or the explicit probe + feedback schedule when
// ExplicitRefinement is on).
func (p *Protocol) RefinementDuration() time.Duration {
	if p.cfg.ExplicitRefinement {
		return p.explicitRefinementDuration()
	}
	s := time.Duration(p.cfg.Codebook.RefinementBeams())
	return 2*s*p.env.Timing.SectorSlot() + 2*p.env.Timing.SIFS
}

// ControlOverhead returns the non-UDT portion of a frame.
func (p *Protocol) ControlOverhead() time.Duration {
	return p.SNDDuration() + p.DCMDuration() + p.RefinementDuration()
}

// RunFrame implements sim.Protocol: it schedules the SND, DCM and UDT phases
// of one 20 ms frame.
func (p *Protocol) RunFrame(frame int) {
	p.teardownUDT()
	p.frame = frame
	now := p.env.Sim.Now()
	p.frameEnd = now.Add(p.env.Timing.Frame)
	for i := range p.cand {
		p.cand[i] = candidate{}
		p.pendingBreak[i] = -1
	}
	p.scheduleSND(now)
	dcmStart := now.Add(p.SNDDuration())
	p.scheduleDCM(dcmStart)
	udtStart := dcmStart.Add(p.DCMDuration())
	p.env.Sim.ScheduleAt(udtStart, "mmv2v.udt", p.startUDT)
}

// Discovered returns a sorted copy of vehicle i's currently known neighbor
// IDs (for tests and diagnostics).
func (p *Protocol) Discovered(i int) []int {
	out := make([]int, 0, len(p.discovered[i]))
	//mmv2v:sorted pure key collection; sorted below before returning
	for j, info := range p.discovered[i] {
		if p.frame-info.lastFrame < p.cfg.StalenessFrames {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// CandidateOf returns vehicle i's current candidate (peer, ok) — for tests.
func (p *Protocol) CandidateOf(i int) (int, bool) {
	return p.cand[i].peer, p.cand[i].valid
}

// SetSlotObserver installs a callback invoked after each DCM negotiation
// slot completes (used by the Fig. 6 experiment).
func (p *Protocol) SetSlotObserver(fn func(frame, slot int)) { p.slotObserver = fn }

// MutualPairs returns the currently agreed candidate pairs (i < j with
// mutual candidacy).
func (p *Protocol) MutualPairs() [][2]int {
	var out [][2]int
	for i := range p.cand {
		ci := p.cand[i]
		if !ci.valid || ci.peer <= i {
			continue
		}
		if cj := p.cand[ci.peer]; cj.valid && cj.peer == i {
			out = append(out, [2]int{i, ci.peer})
		}
	}
	return out
}
