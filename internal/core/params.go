// Package core implements the mmV2V protocol — the paper's contribution
// (Sec. III): Synchronized Neighbor Discovery (SND), Distributed Consensual
// Matching (DCM) with the Consensual Neighbor Schedule (CNS) hash slotting,
// and Unicast Data Transmission (UDT) with beam refinement. It also provides
// the centralized greedy oracle used as the matching upper bound in
// ablations (the OHM schedule itself is NP-hard, Theorem 1).
//
// All protocol decisions use only locally observable state: a vehicle's own
// random stream, GPS time/heading (vehicles are GPS-synchronized in the
// system model), and control frames it actually decoded over the shared
// medium.
package core

import (
	"fmt"
	"time"

	"mmv2v/internal/phy"
	"mmv2v/internal/units"
	"mmv2v/internal/xrand"
)

// Params are the mmV2V protocol parameters (Sec. III and IV-B).
type Params struct {
	// P is the transmitter-role probability in SND (Theorem 2: 0.5 is
	// optimal).
	P float64
	// K is the number of discovery rounds per frame (paper sweep: 1–4,
	// chosen 3).
	K int
	// M is the number of DCM negotiation slots (paper sweep: 20–80,
	// chosen 40).
	M int
	// C is the CNS hash modulus separating neighbors into slots (paper
	// sweep: 1–12, chosen 7).
	C int
	// Codebook is the beam configuration (S=24 sectors, α=30°, β=12°,
	// θ_min=3°).
	Codebook phy.Codebook
	// HashSeed seeds the common hash function H shared by all vehicles.
	HashSeed uint64
	// StalenessFrames bounds how long a discovered neighbor stays in the
	// working set ∪_f N_i^f without being re-discovered. The paper keeps
	// the union over all frames; mobility makes stale entries useless, so
	// we expire them (15 frames = 300 ms by default).
	StalenessFrames int
	// MinLinkSNRdB is the admission threshold for discovery: SSW receptions
	// below it are ignored. It is the radio-level embodiment of the paper's
	// "communication range" — the default corresponds to the SNR of an
	// unblocked link at the world's 50 m neighbor radius with the α/β
	// discovery beams.
	MinLinkSNRdB units.DB
	// ExplicitRefinement runs the Sec. III-D cross search as real probe and
	// feedback transmissions over the shared medium instead of the
	// closed-form model: concurrent pairs interfere and a failed search
	// idles the pair for the frame. Slightly slower to simulate; default
	// off (the closed-form outcome is what the search converges to when it
	// succeeds).
	ExplicitRefinement bool
	// SyncJitter is an extension beyond the paper's perfect-GPS assumption:
	// each vehicle's clock is offset by a fixed uniform draw in
	// [-SyncJitter, +SyncJitter], shifting its SND sweep/sense timing. The
	// paper argues GPS keeps vehicles within 100 ns — far below the 1 µs
	// beam switch — so the default is 0; the ablation quantifies how much
	// synchronization the discovery design actually needs.
	SyncJitter time.Duration
	// BeamTracking is an extension beyond the paper: when set, UDT re-runs
	// the narrow-beam cross search at every 5 ms link refresh instead of
	// holding the frame-start beams, modeling receivers that track their
	// peer through the frame (cf. the beam-tracking literature the paper
	// cites in related work).
	BeamTracking bool
	// FairnessBiasDB is an extension beyond the paper: DCM candidate
	// quality becomes linkSNR + bias·(1 − η), where η is the pair's task
	// progress, steering matches toward under-served neighbors. The paper's
	// pure-SNR objective (bias = 0, the default) maximizes throughput but
	// yields high DTP at high density (Sec. IV-C); a positive bias trades
	// throughput for fairness. Both endpoints know D_{i,j}, so the biased
	// quality stays consensual.
	FairnessBiasDB units.DB
}

// DefaultParams returns the paper's chosen configuration
// (Sec. IV-C: α=30°, β=12°, θ=15°, C=7, K=3, M=40).
func DefaultParams() Params {
	return Params{
		P:               0.5,
		K:               3,
		M:               40,
		C:               7,
		Codebook:        phy.DefaultCodebook(),
		HashSeed:        0x6d6d565256, // "mmV2V"
		StalenessFrames: 15,
		MinLinkSNRdB:    16,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.P <= 0 || p.P >= 1:
		return fmt.Errorf("core: role probability %v outside (0,1)", p.P)
	case p.K <= 0:
		return fmt.Errorf("core: non-positive discovery rounds %d", p.K)
	case p.M <= 0:
		return fmt.Errorf("core: non-positive negotiation slots %d", p.M)
	case p.C <= 0:
		return fmt.Errorf("core: non-positive hash modulus %d", p.C)
	case p.StalenessFrames <= 0:
		return fmt.Errorf("core: non-positive staleness %d", p.StalenessFrames)
	case p.SyncJitter < 0:
		return fmt.Errorf("core: negative sync jitter %v", p.SyncJitter)
	}
	return p.Codebook.Validate()
}

// Hash is the common hash function H of the CNS: every vehicle evaluates the
// same H, so a pair (i, j) lands in the same negotiation slot on both sides.
func (p Params) Hash(id int) uint64 {
	return xrand.Mix(p.HashSeed, uint64(id))
}

// Bucket returns the CNS bucket of pair (i, j):
// (H(i) + H(j)) mod C (Fig. 4). Negotiation slot m serves bucket m mod C,
// so a pair recurs every C slots while m < M.
func (p Params) Bucket(i, j int) int {
	return int((p.Hash(i) + p.Hash(j)) % uint64(p.C))
}
