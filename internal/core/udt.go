package core

import (
	"mmv2v/internal/udt"
)

// udtState tracks the UDT phase of the current frame.
type udtState struct {
	session *udt.Session
}

// startUDT runs at the end of DCM (Sec. III-D): mutually agreed pairs
// refine beams via the cross search (a fixed time cost, outcome modeled by
// udt.RefineBeams) and then stream data for the remainder of the frame.
//
// A vehicle whose candidate did not reciprocate (a rare DCM inconsistency)
// gets no response to its refinement probes and idles the frame.
func (p *Protocol) startUDT() {
	var mutual [][2]int
	n := p.env.N()
	for i := 0; i < n; i++ {
		ci := p.cand[i]
		if !ci.valid || ci.peer <= i {
			continue
		}
		j := ci.peer
		if !p.cand[j].valid || p.cand[j].peer != i {
			continue
		}
		if p.env.PairDone(i, j) {
			continue
		}
		mutual = append(mutual, [2]int{i, j})
	}
	streamStart := p.env.Sim.Now().Add(p.RefinementDuration())
	if streamStart >= p.frameEnd || len(mutual) == 0 {
		return
	}
	if p.cfg.ExplicitRefinement {
		p.scheduleExplicitRefinement(mutual, p.env.Sim.Now(), func(pairs []udt.Pair) {
			p.openSession(pairs)
		})
		return
	}
	var pairs []udt.Pair
	for _, pr := range mutual {
		i, j := pr[0], pr[1]
		coarseI, coarseJ := -1, -1
		if info := p.discovered[i][j]; info != nil {
			coarseI = info.towardSector
		}
		if info := p.discovered[j][i]; info != nil {
			coarseJ = info.towardSector
		}
		beamI, beamJ := udt.RefineBeams(p.env, i, j, p.cfg.Codebook, coarseI, coarseJ)
		pairs = append(pairs, udt.Pair{A: i, B: j, BeamA: beamI, BeamB: beamJ})
	}
	p.env.Sim.ScheduleAt(streamStart, "mmv2v.udt.stream", func() { p.openSession(pairs) })
}

// openSession starts the UDT data plane for refined pairs.
func (p *Protocol) openSession(pairs []udt.Pair) {
	if len(pairs) == 0 {
		return
	}
	p.udt.session = udt.Start(p.env, pairs, p.frame)
	if p.cfg.BeamTracking {
		p.udt.session.EnableTracking(p.cfg.Codebook)
	}
}

// onRefresh is the 5 ms link-refresh hook driving UDT rate adaptation.
func (p *Protocol) onRefresh() {
	if p.udt.session != nil {
		p.udt.session.OnRefresh()
	}
}

// teardownUDT settles the ledger and removes all streams at a frame
// boundary.
func (p *Protocol) teardownUDT() {
	if p.udt.session != nil {
		p.udt.session.Stop()
		p.udt.session = nil
	}
}

// ActivePairs returns the number of streaming pairs (for tests).
func (p *Protocol) ActivePairs() int {
	if p.udt.session == nil {
		return 0
	}
	return p.udt.session.ActivePairs()
}
