package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/metrics"
	"mmv2v/internal/phy"
	"mmv2v/internal/sim"
	"mmv2v/internal/traffic"
	"mmv2v/internal/world"
	"mmv2v/internal/xrand"
)

// buildEnv assembles a simulation environment over hand-placed eastbound
// vehicles (lane, arc-position pairs).
func buildEnv(t *testing.T, demandBits float64, lanes []int, positions []float64) *sim.Env {
	t.Helper()
	cfg := traffic.DefaultConfig(0)
	cfg.LaneChangeCheckEvery = 0
	road, err := traffic.New(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := range positions {
		road.Add(&traffic.Vehicle{Dir: traffic.Eastbound, Lane: lanes[k], S: positions[k], V: 14, DesiredV: 14, Quantile: 0.5})
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	s := des.New()
	return &sim.Env{
		Sim:        s,
		World:      w,
		Medium:     medium.New(s, w),
		Ledger:     metrics.NewLedger(w.NumVehicles()),
		Rand:       xrand.New(7),
		Timing:     phy.DefaultTiming(),
		DemandBits: demandBits,
	}
}

// runFrames drives the environment exactly like sim.Run: a 5 ms tick that
// steps traffic, refreshes the world, fires refresh hooks, and starts a
// frame every 4 ticks.
func runFrames(env *sim.Env, proto sim.Protocol, frames int) {
	ticksPerFrame := int(env.Timing.Frame / env.Timing.PositionUpdate)
	total := frames * ticksPerFrame
	dt := env.Timing.PositionUpdate.Seconds()
	start := env.Sim.Now()
	end := start.Add(env.Timing.Frame * time.Duration(frames))
	env.Sim.Every(start, env.Timing.PositionUpdate, end, "test.tick", func(tick int) {
		if tick > 0 {
			env.World.Road().Step(dt)
			env.World.Refresh()
		}
		env.FireRefreshHooks()
		if tick%ticksPerFrame == 0 && tick/ticksPerFrame < frames {
			proto.RunFrame(tick / ticksPerFrame)
		}
	})
	_ = total
	env.Sim.Run(end)
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"p zero", func(p *Params) { p.P = 0 }},
		{"p one", func(p *Params) { p.P = 1 }},
		{"k zero", func(p *Params) { p.K = 0 }},
		{"m zero", func(p *Params) { p.M = 0 }},
		{"c zero", func(p *Params) { p.C = 0 }},
		{"staleness zero", func(p *Params) { p.StalenessFrames = 0 }},
		{"bad codebook", func(p *Params) { p.Codebook.Sectors.Count = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultParams()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestBucketSymmetricAndBounded(t *testing.T) {
	cfg := DefaultParams()
	f := func(i, j uint16) bool {
		b1 := cfg.Bucket(int(i), int(j))
		b2 := cfg.Bucket(int(j), int(i))
		return b1 == b2 && b1 >= 0 && b1 < cfg.C
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketSpreadsPairs(t *testing.T) {
	// Hash buckets should be roughly uniform over C.
	cfg := DefaultParams()
	counts := make([]int, cfg.C)
	total := 0
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			counts[cfg.Bucket(i, j)]++
			total++
		}
	}
	want := total / cfg.C
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d count %d, want ≈%d", b, c, want)
		}
	}
}

func TestTheorem2RoleSelection(t *testing.T) {
	// Theorem 2: with p = 0.5, the probability that a specific neighbor
	// pair picks identical roles K times in a row is 0.5^K, so the expected
	// identified ratio is 1 − 0.5^K. Validate the role-coin machinery by
	// Monte Carlo over the same streams the protocol uses.
	rand := xrand.New(42)
	const pairs = 20000
	for _, k := range []int{1, 2, 3, 4} {
		missed := 0
		for pr := 0; pr < pairs; pr++ {
			allSame := true
			for round := 0; round < k; round++ {
				a := rand.Child("mmv2v.role", uint64(2*pr), 0, uint64(round)).Bool(0.5)
				b := rand.Child("mmv2v.role", uint64(2*pr+1), 0, uint64(round)).Bool(0.5)
				if a != b {
					allSame = false
					break
				}
			}
			if allSame {
				missed++
			}
		}
		got := 1 - float64(missed)/pairs
		want := 1 - math.Pow(0.5, float64(k))
		if math.Abs(got-want) > 0.02 {
			t.Errorf("K=%d: identified ratio %v, want %v", k, got, want)
		}
	}
}

func TestTheorem2HalfIsOptimal(t *testing.T) {
	// f(p,K) = (p² + (1−p)²)^K is minimized at p = 0.5.
	f := func(p float64, k int) float64 {
		return math.Pow(p*p+(1-p)*(1-p), float64(k))
	}
	for _, k := range []int{1, 3} {
		best := f(0.5, k)
		for _, p := range []float64{0.1, 0.3, 0.4, 0.6, 0.7, 0.9} {
			if f(p, k) <= best {
				t.Errorf("K=%d: f(%v)=%v not above f(0.5)=%v", k, p, f(p, k), best)
			}
		}
	}
}

func TestTwoVehiclesDiscoverAndExchange(t *testing.T) {
	env := buildEnv(t, 200e6, []int{1, 1}, []float64{0, 30})
	p := New(env, DefaultParams())
	runFrames(env, p, 2)
	// Both must have discovered each other.
	if d := p.Discovered(0); len(d) != 1 || d[0] != 1 {
		t.Errorf("vehicle 0 discovered %v", d)
	}
	if d := p.Discovered(1); len(d) != 1 || d[0] != 0 {
		t.Errorf("vehicle 1 discovered %v", d)
	}
	// And exchanged a substantial amount of data (≥ 1 frame's worth at a
	// high MCS: tens of Mb).
	if got := env.Ledger.Exchanged(0, 1); got < 10e6 {
		t.Errorf("exchanged %v bits, want > 10 Mb", got)
	}
}

func TestCompletionStopsTransfer(t *testing.T) {
	// Tiny demand: the pair completes in the first frame and must not
	// accumulate much beyond the demand afterwards.
	env := buildEnv(t, 1e6, []int{1, 1}, []float64{0, 30})
	p := New(env, DefaultParams())
	runFrames(env, p, 3)
	if !env.PairDone(0, 1) {
		t.Fatal("pair not complete")
	}
	got := env.Ledger.Exchanged(0, 1)
	// One 5 ms accrual interval at max rate ≈ 23 Mb bounds the overshoot.
	if got > 1e6+25e6 {
		t.Errorf("exchanged %v bits, overshoot too large", got)
	}
	stats := metrics.Compute(env.World.NeighborSnapshot(), env.Ledger, env.DemandBits)
	for _, s := range stats {
		if s.OCR != 1 {
			t.Errorf("vehicle %d OCR = %v, want 1", s.Vehicle, s.OCR)
		}
	}
}

func TestDCMPrefersBetterLink(t *testing.T) {
	// v1 can pair with v0 (≈21 m) or v2 (≈30 m): the shorter link has
	// clearly higher SNR, so across frames DCM must prefer v1–v0. (A single
	// frame can miss a discovery with probability 0.5³, so we run several
	// and compare cumulative flows; a huge demand keeps both links wanting.)
	env := buildEnv(t, 1e12, []int{0, 1, 2}, []float64{0, 20, 50})
	p := New(env, DefaultParams())
	runFrames(env, p, 4)
	d01 := env.Ledger.Exchanged(0, 1)
	d12 := env.Ledger.Exchanged(1, 2)
	if d01 == 0 {
		t.Fatalf("no data on the best link; d01=%v d12=%v", d01, d12)
	}
	if d12 >= d01 {
		t.Errorf("v1 preferred the worse neighbor: d01=%v d12=%v", d01, d12)
	}
}

func TestIsolatedVehicleIdles(t *testing.T) {
	env := buildEnv(t, 200e6, []int{1, 1, 1}, []float64{0, 30, 500})
	p := New(env, DefaultParams())
	runFrames(env, p, 1)
	if d := p.Discovered(2); len(d) != 0 {
		t.Errorf("isolated vehicle discovered %v", d)
	}
	if got := env.Ledger.Exchanged(0, 2) + env.Ledger.Exchanged(1, 2); got != 0 {
		t.Errorf("isolated vehicle exchanged %v bits", got)
	}
}

func TestDiscoveryRatioDenseScenario(t *testing.T) {
	// In a generated scenario, after one frame with K=3 the fraction of
	// true LOS neighbors discovered is Theorem 2's 87.5% (role coins)
	// times the channel/admission success rate — disk-edge neighbors sit
	// right at the 16 dB admission threshold, so assert a loose ≥40%
	// after one frame and growth over further frames.
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		road.Step(0.005)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	s := des.New()
	env := &sim.Env{
		Sim:        s,
		World:      w,
		Medium:     medium.New(s, w),
		Ledger:     metrics.NewLedger(w.NumVehicles()),
		Rand:       xrand.New(7),
		Timing:     phy.DefaultTiming(),
		DemandBits: 200e6,
	}
	p := New(env, DefaultParams())
	ratioNow := func() float64 {
		trueLinks, found := 0, 0
		for i := 0; i < w.NumVehicles(); i++ {
			disc := map[int]bool{}
			for _, j := range p.Discovered(i) {
				disc[j] = true
			}
			for _, j := range w.Neighbors(i) {
				trueLinks++
				if disc[j] {
					found++
				}
			}
		}
		if trueLinks == 0 {
			t.Fatal("no LOS links in scenario")
		}
		return float64(found) / float64(trueLinks)
	}
	runFrames(env, p, 1)
	after1 := ratioNow()
	if after1 < 0.4 || after1 > 1.0 {
		t.Errorf("discovery ratio after 1 frame = %.2f, want in [0.4, 1]", after1)
	}
	runFrames(env, p, 3)
	after4 := ratioNow()
	if after4 < after1 {
		t.Errorf("discovery ratio shrank: %.2f after 1 frame, %.2f after 4", after1, after4)
	}
	if after4 < 0.55 {
		t.Errorf("discovery ratio after 4 frames = %.2f, want ≥ 0.55", after4)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		env := buildEnv(t, 200e6, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		p := New(env, DefaultParams())
		runFrames(env, p, 3)
		return env.Ledger.TotalBits()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Error("no data exchanged at all")
	}
}

func TestPhaseDurationsFitFrame(t *testing.T) {
	env := buildEnv(t, 200e6, []int{1, 1}, []float64{0, 30})
	p := New(env, DefaultParams())
	if got := p.SNDRoundDuration(); got != 768*1000*800/1000 {
		// 2 × 24 × 16 µs = 768 µs
		if got.Microseconds() != 768 {
			t.Errorf("SND round = %v, want 768 µs", got)
		}
	}
	if got := p.SNDDuration().Microseconds(); got != 3*768 {
		t.Errorf("SND = %v µs, want 2304", got)
	}
	if got := p.DCMDuration().Microseconds(); got != 1200 {
		t.Errorf("DCM = %v µs, want 1200", got)
	}
	if overhead := p.ControlOverhead(); overhead >= env.Timing.Frame/2 {
		t.Errorf("control overhead %v eats most of the frame", overhead)
	}
}

func TestGreedyMatchingValid(t *testing.T) {
	road, err := traffic.New(traffic.DefaultConfig(20), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	m := GreedyMatching(w, nil)
	seen := map[int]bool{}
	for _, pr := range m {
		if pr[0] == pr[1] {
			t.Fatalf("self-match %v", pr)
		}
		if seen[pr[0]] || seen[pr[1]] {
			t.Fatalf("vehicle matched twice: %v", pr)
		}
		seen[pr[0]] = true
		seen[pr[1]] = true
		// Matched pairs must be LOS neighbors.
		lnk, ok := w.Link(pr[0], pr[1])
		if !ok || !lnk.LOS() || lnk.Dist > w.Config().CommRange {
			t.Fatalf("matched non-neighbors %v", pr)
		}
	}
	if len(m) == 0 {
		t.Error("no matches in dense scenario")
	}
}

func TestGreedyMatchingMaximal(t *testing.T) {
	// No two unmatched vehicles may remain who are eligible neighbors.
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	m := GreedyMatching(w, nil)
	matched := map[int]bool{}
	for _, pr := range m {
		matched[pr[0]] = true
		matched[pr[1]] = true
	}
	for i := 0; i < w.NumVehicles(); i++ {
		if matched[i] {
			continue
		}
		for _, j := range w.Neighbors(i) {
			if !matched[j] {
				t.Fatalf("unmatched eligible pair (%d, %d) remains", i, j)
			}
		}
	}
}

func TestGreedyMatchingRespectsEligible(t *testing.T) {
	road, err := traffic.New(traffic.DefaultConfig(15), xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(world.DefaultConfig(), road)
	if err != nil {
		t.Fatal(err)
	}
	m := GreedyMatching(w, func(i, j int) bool { return false })
	if len(m) != 0 {
		t.Errorf("matches %v despite nothing eligible", m)
	}
}

func TestOracleBeatsNothing(t *testing.T) {
	env := buildEnv(t, 200e6, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
	o := NewOracle(env, DefaultParams())
	runFrames(env, o, 2)
	if env.Ledger.TotalBits() == 0 {
		t.Error("oracle moved no data")
	}
}

func TestOracleOutperformsDistributedOnControlOverhead(t *testing.T) {
	// On the same tiny scenario, the zero-overhead oracle must move at
	// least as much data as mmV2V.
	runWith := func(factory sim.Factory) float64 {
		env := buildEnv(t, 1e12, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		p := factory(env)
		runFrames(env, p, 3)
		return env.Ledger.TotalBits()
	}
	oracle := runWith(OracleFactory(DefaultParams()))
	dist := runWith(Factory(DefaultParams()))
	if dist > oracle {
		t.Errorf("distributed %v beat oracle %v", dist, oracle)
	}
	if dist == 0 {
		t.Error("distributed protocol moved no data")
	}
}

func TestLedgerBoundedByPhysicalCapacity(t *testing.T) {
	// Invariant: total exchanged bits can never exceed the physical bound
	// ⌊N/2⌋ concurrent pairs × top MCS rate × elapsed time.
	env := buildEnv(t, 1e15, []int{0, 1, 2, 1, 0, 2}, []float64{0, 20, 40, 60, 80, 100})
	p := New(env, DefaultParams())
	const frames = 5
	runFrames(env, p, frames)
	elapsed := float64(frames) * env.Timing.Frame.Seconds()
	bound := float64(env.N()/2) * 4.62e9 * elapsed
	if got := env.Ledger.TotalBits(); got > bound {
		t.Errorf("ledger %v bits exceeds physical bound %v", got, bound)
	}
}

func TestPairLedgerBoundedByLinkCapacity(t *testing.T) {
	// Per-pair invariant: a single pair cannot exceed its own link's
	// airtime × top rate.
	env := buildEnv(t, 1e15, []int{1, 1}, []float64{0, 30})
	p := New(env, DefaultParams())
	const frames = 5
	runFrames(env, p, frames)
	elapsed := float64(frames) * env.Timing.Frame.Seconds()
	if got := env.Ledger.Exchanged(0, 1); got > 4.62e9*elapsed {
		t.Errorf("pair exchanged %v bits > link capacity bound", got)
	}
}
