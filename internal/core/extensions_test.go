package core

import (
	"testing"
	"time"

	"mmv2v/internal/sim"
	"mmv2v/internal/units"
)

// Tests for the documented extensions beyond the paper: fairness-biased
// matching and UDT beam tracking.

func TestFairnessBiasImprovesFairness(t *testing.T) {
	// A dense-ish generated scenario where the pure-SNR objective starves
	// weaker links: the biased objective must reduce DTP (fairness) without
	// collapsing ATP.
	run := func(bias units.DB) (atp, dtp float64) {
		cfg := sim.DefaultConfig(20, 5)
		cfg.WindowSec = 0.6
		params := DefaultParams()
		params.FairnessBiasDB = bias
		res, err := sim.Run(cfg, Factory(params))
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.MeanATP, res.Summary.MeanDTP
	}
	atp0, dtp0 := run(0)
	atp10, dtp10 := run(10)
	if dtp10 >= dtp0 {
		t.Errorf("fairness bias did not reduce DTP: %.3f → %.3f", dtp0, dtp10)
	}
	if atp10 < atp0*0.6 {
		t.Errorf("fairness bias collapsed ATP: %.3f → %.3f", atp0, atp10)
	}
}

func TestFairnessBiasQuality(t *testing.T) {
	env := buildEnv(t, 100e6, []int{1, 1}, []float64{0, 30})
	params := DefaultParams()
	params.FairnessBiasDB = 10
	p := New(env, params)
	// No progress yet: quality = SNR + full bias.
	if got, want := p.pairQuality(0, 1, 20, 25), units.DB(30); got != want {
		t.Errorf("quality = %v, want %v", got, want)
	}
	// Half done: half the bias.
	env.Ledger.Add(0, 1, 50e6)
	if got, want := p.pairQuality(0, 1, 20, 25), units.DB(25); got != want {
		t.Errorf("quality = %v, want %v", got, want)
	}
	// Zero bias reduces to the paper's min-SNR rule.
	p2 := New(env, DefaultParams())
	if got := p2.pairQuality(0, 1, 20, 25); got != 20 {
		t.Errorf("unbiased quality = %v, want 20", got)
	}
}

func TestBeamTrackingRunsAndKeepsThroughput(t *testing.T) {
	run := func(tracking bool) float64 {
		cfg := sim.DefaultConfig(12, 8)
		cfg.WindowSec = 0.4
		params := DefaultParams()
		params.BeamTracking = tracking
		res, err := sim.Run(cfg, Factory(params))
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.MeanATP
	}
	fixed := run(false)
	tracked := run(true)
	if tracked <= 0 {
		t.Fatal("tracking run made no progress")
	}
	// Tracking can only help or match within noise: it must not lose more
	// than a small margin (the beams it re-derives are at least as good as
	// the frame-start beams).
	if tracked < fixed*0.9 {
		t.Errorf("tracking hurt throughput: %.3f vs %.3f", tracked, fixed)
	}
}

func TestSyncJitterDegradesDiscovery(t *testing.T) {
	// Perfect sync vs a clock error comparable to the SSW duration: the
	// jittered run must identify fewer neighbors (sweep/sense windows no
	// longer line up), which is why the paper leans on GPS sync.
	discovered := func(jitterUS int) int {
		env := buildEnv(t, 1e12, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		params := DefaultParams()
		params.SyncJitter = time.Duration(jitterUS) * time.Microsecond
		p := New(env, params)
		runFrames(env, p, 2)
		total := 0
		for i := 0; i < env.N(); i++ {
			total += len(p.Discovered(i))
		}
		return total
	}
	clean := discovered(0)
	dirty := discovered(12) // ±12 µs ≈ most of a 16 µs sector slot
	if clean == 0 {
		t.Fatal("no discoveries without jitter")
	}
	if dirty >= clean {
		t.Errorf("jitter did not hurt discovery: %d vs %d", dirty, clean)
	}
}

func TestSmallJitterHarmless(t *testing.T) {
	// The paper's point: 100 ns GPS error is negligible against the 1 µs
	// beam switch. Sub-microsecond jitter must not change throughput much.
	run := func(jitter time.Duration) float64 {
		env := buildEnv(t, 1e12, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		params := DefaultParams()
		params.SyncJitter = jitter
		p := New(env, params)
		runFrames(env, p, 2)
		return env.Ledger.TotalBits()
	}
	clean := run(0)
	tiny := run(100 * time.Nanosecond)
	if clean == 0 {
		t.Fatal("no data without jitter")
	}
	if tiny < clean*0.8 {
		t.Errorf("100 ns jitter collapsed throughput: %v vs %v", tiny, clean)
	}
}

func TestExplicitRefinementProducesComparableThroughput(t *testing.T) {
	// The on-air cross search should converge to (nearly) the closed-form
	// beams when it succeeds, so end-to-end throughput must be in the same
	// ballpark — somewhat lower is fine (failures idle pairs), zero is not.
	run := func(explicit bool) float64 {
		env := buildEnv(t, 1e12, []int{0, 1, 2, 1}, []float64{0, 20, 40, 70})
		params := DefaultParams()
		params.ExplicitRefinement = explicit
		p := New(env, params)
		runFrames(env, p, 3)
		return env.Ledger.TotalBits()
	}
	closed := run(false)
	explicit := run(true)
	if closed == 0 {
		t.Fatal("closed-form run moved no data")
	}
	if explicit < closed*0.5 {
		t.Errorf("explicit refinement collapsed throughput: %v vs %v", explicit, closed)
	}
	if explicit > closed*1.1 {
		t.Errorf("explicit refinement impossibly above closed form: %v vs %v", explicit, closed)
	}
}

func TestExplicitRefinementDenseScenario(t *testing.T) {
	// At scale with concurrent pairs probing simultaneously, the search
	// must still succeed for most pairs.
	cfg := sim.DefaultConfig(12, 8)
	cfg.WindowSec = 0.2
	params := DefaultParams()
	params.ExplicitRefinement = true
	res, err := sim.Run(cfg, Factory(params))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanATP <= 0.05 {
		t.Errorf("explicit refinement at scale: ATP = %v", res.Summary.MeanATP)
	}
}
