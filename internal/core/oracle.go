package core

import (
	"fmt"
	"sort"

	"mmv2v/internal/sim"
	"mmv2v/internal/udt"
	"mmv2v/internal/world"
)

// GreedyMatching computes a centralized greedy maximum-weight matching over
// the current LOS neighbor graph: edges sorted by SNR-proxy weight
// (path gain) descending, added while both endpoints are free and the
// eligible predicate admits the pair. Greedy matching is a 1/2-approximation
// of the NP-hard optimum (Theorem 1), which makes it a meaningful
// upper-bound oracle for what DCM's distributed negotiation can achieve.
func GreedyMatching(w *world.World, eligible func(i, j int) bool) [][2]int {
	type edge struct {
		i, j int
		gain float64
	}
	var edges []edge
	n := w.NumVehicles()
	for i := 0; i < n; i++ {
		for _, j := range w.Neighbors(i) {
			if j <= i {
				continue
			}
			if eligible != nil && !eligible(i, j) {
				continue
			}
			lnk, ok := w.Link(i, j)
			if !ok {
				continue
			}
			edges = append(edges, edge{i: i, j: j, gain: lnk.PathGainLin})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		//mmv2v:exact deterministic comparator tie-break: bit-equal gains fall through to the index order
		if edges[a].gain != edges[b].gain {
			return edges[a].gain > edges[b].gain
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	matched := make([]bool, n)
	var out [][2]int
	for _, e := range edges {
		if matched[e.i] || matched[e.j] {
			continue
		}
		matched[e.i] = true
		matched[e.j] = true
		out = append(out, [2]int{e.i, e.j})
	}
	return out
}

// Oracle is the centralized upper-bound protocol used in ablations: each
// frame it matches vehicles with GreedyMatching over the true LOS graph
// (perfect discovery, zero negotiation overhead, free beam refinement) and
// streams for the entire frame. It bounds what any distributed OHM scheme
// on the same substrate can achieve.
type Oracle struct {
	env     *sim.Env //mmv2v:derived construction parameter re-supplied by NewOracle on restore
	cfg     Params   //mmv2v:derived construction parameter; config is run identity, not state
	frame   int
	session *udt.Session
}

// NewOracle builds the oracle protocol.
func NewOracle(env *sim.Env, cfg Params) *Oracle {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid oracle params for scenario seed %#x (%d vehicles): %v",
			env.Seed, env.N(), err))
	}
	o := &Oracle{env: env, cfg: cfg}
	env.OnRefresh(o.onRefresh)
	return o
}

// Name implements sim.Protocol.
func (o *Oracle) Name() string { return "oracle" }

// OracleFactory returns a sim.Factory for the oracle.
func OracleFactory(cfg Params) sim.Factory {
	return func(env *sim.Env) sim.Protocol { return NewOracle(env, cfg) }
}

// RunFrame implements sim.Protocol.
func (o *Oracle) RunFrame(frame int) {
	if o.session != nil {
		o.session.Stop()
		o.session = nil
	}
	o.frame = frame
	matches := GreedyMatching(o.env.World, func(i, j int) bool { return !o.env.PairDone(i, j) })
	if len(matches) == 0 {
		return
	}
	pairs := make([]udt.Pair, 0, len(matches))
	for _, m := range matches {
		beamA, beamB := udt.RefineBeams(o.env, m[0], m[1], o.cfg.Codebook, -1, -1)
		pairs = append(pairs, udt.Pair{A: m[0], B: m[1], BeamA: beamA, BeamB: beamB})
	}
	o.session = udt.Start(o.env, pairs, frame)
}

func (o *Oracle) onRefresh() {
	if o.session != nil {
		o.session.OnRefresh()
	}
}
