package core

import (
	"time"

	"mmv2v/internal/des"
	"mmv2v/internal/medium"
	"mmv2v/internal/phy"
	"mmv2v/internal/udt"
	"mmv2v/internal/units"
)

// Explicit beam refinement: when Params.ExplicitRefinement is set, the
// Sec. III-D cross search runs as real transmissions over the shared medium
// instead of the closed-form model — each side probes its s narrow beams
// while the peer listens on its wide discovery beam, then the sides exchange
// feedback naming the best probe. Concurrent pairs interfere, probes and
// feedback can be lost, and a pair whose search fails idles the frame.
//
// Slot layout (all pairs synchronized, A = smaller ID):
//
//	s slots: A probes narrow beams 0..s-1; B listens wide
//	s slots: B probes; A listens wide
//	1 slot:  A sends feedback (B's best probe index); B listens
//	1 slot:  B sends feedback; A listens
//
// Success for a side = decoded ≥1 peer probe (fixes its receive beam) and
// decoded the peer's feedback (fixes its transmit beam; by array
// reciprocity both are the same index, so one confirmed index suffices).

// refineProbe is a narrow-beam training frame.
type refineProbe struct {
	from, to int
	beamIdx  int
}

// refineFeedback reports the best received probe index back to the prober.
type refineFeedback struct {
	from, to int
	bestIdx  int
	ok       bool
}

// refineState tracks one vehicle's cross-search progress in a frame.
type refineState struct {
	peer int
	// coarse is the discovery sector toward the peer.
	coarse int
	// bestIdx/bestSNR track the strongest decoded peer probe.
	bestIdx int
	bestSNR units.DB
	gotAny  bool
	// fbIdx is the beam index the peer reported back (-1 until received).
	fbIdx int
}

// explicitRefinementDuration is the on-air cross search length:
// two probe sweeps plus two feedback exchanges.
func (p *Protocol) explicitRefinementDuration() time.Duration {
	s := time.Duration(p.cfg.Codebook.RefinementBeams())
	probe := 2 * s * p.env.Timing.SectorSlot()
	feedback := 2 * (p.env.Timing.ControlPreamble + p.env.Timing.SIFS)
	return probe + feedback
}

// scheduleExplicitRefinement runs the cross search for the given mutual
// pairs and calls done with the pairs whose search succeeded on both sides.
func (p *Protocol) scheduleExplicitRefinement(pairs [][2]int, start des.Time, done func([]udt.Pair)) {
	n := p.env.N()
	states := make([]*refineState, n)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		ca, cb := -1, -1
		if info := p.discovered[a][b]; info != nil {
			ca = info.towardSector
		}
		if info := p.discovered[b][a]; info != nil {
			cb = info.towardSector
		}
		if ca < 0 || cb < 0 {
			continue
		}
		states[a] = &refineState{peer: b, coarse: ca, bestIdx: -1, fbIdx: -1}
		states[b] = &refineState{peer: a, coarse: cb, bestIdx: -1, fbIdx: -1}
	}

	slot := p.env.Timing.SectorSlot()
	s := p.cfg.Codebook.RefinementBeams()
	// Phase 1: smaller IDs probe. Phase 2: larger IDs probe.
	for phase := 0; phase < 2; phase++ {
		for k := 0; k < s; k++ {
			at := start.Add(time.Duration(phase*s+k) * slot).Add(p.env.Timing.BeamSwitch)
			phase, k := phase, k
			p.env.Sim.ScheduleAt(at, "mmv2v.refine.probe", func() {
				p.refineProbeSlot(states, phase, k)
			})
		}
	}
	fbStart := start.Add(2 * time.Duration(s) * slot)
	fbStep := p.env.Timing.ControlPreamble + p.env.Timing.SIFS
	p.env.Sim.ScheduleAt(fbStart, "mmv2v.refine.fb0", func() { p.refineFeedbackSlot(states, 0) })
	p.env.Sim.ScheduleAt(fbStart.Add(fbStep), "mmv2v.refine.fb1", func() { p.refineFeedbackSlot(states, 1) })
	p.env.Sim.ScheduleAt(fbStart.Add(2*fbStep), "mmv2v.refine.done", func() {
		done(p.collectRefined(states, pairs))
	})
}

// refineProbeSlot fires probe k of every prober in the phase while peers
// listen on their wide discovery beams.
func (p *Protocol) refineProbeSlot(states []*refineState, phase, k int) {
	cb := p.cfg.Codebook
	// Listeners first (must be aimed before probes start resolving).
	for i, st := range states {
		if st == nil || p.probesInPhase(i, st.peer, phase) {
			continue
		}
		beam := phy.Beam{Bearing: cb.Sectors.Center(st.coarse), Width: cb.RxWidth}
		i := i
		p.env.Medium.StartListen(i, beam, func(d medium.Delivery) { p.onProbe(i, states, d) })
	}
	for i, st := range states {
		if st == nil || !p.probesInPhase(i, st.peer, phase) {
			continue
		}
		coarse := cb.Sectors.Center(st.coarse)
		beam := phy.Beam{Bearing: cb.NarrowBeamBearing(coarse, k), Width: cb.NarrowWidth}
		p.env.Medium.Transmit(i, beam, p.env.Timing.SSW, refineProbe{from: i, to: st.peer, beamIdx: k})
	}
}

// probesInPhase reports whether vehicle i transmits probes in the phase
// (smaller ID probes first).
func (p *Protocol) probesInPhase(i, peer, phase int) bool {
	if phase == 0 {
		return i < peer
	}
	return i > peer
}

// onProbe records the strongest decoded probe from the expected peer.
func (p *Protocol) onProbe(me int, states []*refineState, d medium.Delivery) {
	st := states[me]
	if st == nil {
		return
	}
	probe, ok := d.Payload.(refineProbe)
	if !ok || probe.to != me || probe.from != st.peer {
		return
	}
	if !st.gotAny || d.SINRdB > st.bestSNR {
		st.gotAny = true
		st.bestSNR = d.SINRdB
		st.bestIdx = probe.beamIdx
	}
}

// refineFeedbackSlot sends each side's feedback (sub-slot 0: smaller IDs;
// 1: larger IDs) while the peer listens.
func (p *Protocol) refineFeedbackSlot(states []*refineState, sub int) {
	cb := p.cfg.Codebook
	for i, st := range states {
		if st == nil {
			continue
		}
		sends := (sub == 0) == (i < st.peer)
		if sends {
			continue
		}
		beam := phy.Beam{Bearing: cb.Sectors.Center(st.coarse), Width: cb.RxWidth}
		i := i
		p.env.Medium.StartListen(i, beam, func(d medium.Delivery) {
			fb, ok := d.Payload.(refineFeedback)
			if !ok || fb.to != i || !fb.ok {
				return
			}
			if s := states[i]; s != nil && fb.from == s.peer {
				s.fbIdx = fb.bestIdx
			}
		})
	}
	for i, st := range states {
		if st == nil {
			continue
		}
		sends := (sub == 0) == (i < st.peer)
		if !sends {
			continue
		}
		beam := phy.Beam{Bearing: cb.Sectors.Center(st.coarse), Width: cb.TxWidth}
		p.env.Medium.Transmit(i, beam, p.env.Timing.ControlPreamble,
			refineFeedback{from: i, to: st.peer, bestIdx: st.bestIdx, ok: st.gotAny})
	}
}

// collectRefined returns the pairs whose cross search succeeded on both
// sides, with the trained narrow beams.
func (p *Protocol) collectRefined(states []*refineState, pairs [][2]int) []udt.Pair {
	cb := p.cfg.Codebook
	var out []udt.Pair
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		sa, sb := states[a], states[b]
		if sa == nil || sb == nil {
			continue
		}
		// Each side needs its transmit beam confirmed by the peer's
		// feedback; by reciprocity the same index serves for receive.
		if sa.fbIdx < 0 || sb.fbIdx < 0 {
			p.RefineFailures++
			continue
		}
		beamA := phy.Beam{Bearing: cb.NarrowBeamBearing(cb.Sectors.Center(sa.coarse), sa.fbIdx), Width: cb.NarrowWidth}
		beamB := phy.Beam{Bearing: cb.NarrowBeamBearing(cb.Sectors.Center(sb.coarse), sb.fbIdx), Width: cb.NarrowWidth}
		out = append(out, udt.Pair{A: a, B: b, BeamA: beamA, BeamB: beamB})
	}
	return out
}
