package metrics

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestMergeMatchesSerialAppend pins the pooling contract parallel runners
// rely on: Merge over per-trial slots equals a serial append loop, and the
// result depends only on slot order.
func TestMergeMatchesSerialAppend(t *testing.T) {
	parts := [][]VehicleStats{
		{{Vehicle: 0, Neighbors: 2, OCR: 0.5, ATP: 0.25, DTP: 0.1}},
		nil,
		{{Vehicle: 1, Neighbors: 3, OCR: 1, ATP: 0.75, DTP: 0}, {Vehicle: 2, Neighbors: 1, OCR: 0, ATP: 0.5, DTP: 0.2}},
	}
	var serial []VehicleStats
	for _, p := range parts {
		serial = append(serial, p...)
	}
	pooled, summary := Merge(parts)
	if !reflect.DeepEqual(pooled, serial) {
		t.Errorf("Merge pooled %+v, want %+v", pooled, serial)
	}
	if want := Summarize(serial); summary != want {
		t.Errorf("Merge summary %+v, want %+v", summary, want)
	}
	if pooled, summary := Merge(nil); len(pooled) != 0 || summary != (Summary{}) {
		t.Errorf("Merge(nil) = %+v, %+v", pooled, summary)
	}
}

func TestLedgerAddAndExchanged(t *testing.T) {
	l := NewLedger(10)
	l.Add(1, 2, 100)
	l.Add(2, 1, 50) // order-insensitive
	if got := l.Exchanged(1, 2); got != 150 {
		t.Errorf("Exchanged = %v", got)
	}
	if got := l.Exchanged(2, 1); got != 150 {
		t.Errorf("Exchanged reversed = %v", got)
	}
	if got := l.Exchanged(3, 4); got != 0 {
		t.Errorf("untouched pair = %v", got)
	}
	if l.Pairs() != 1 {
		t.Errorf("Pairs = %d", l.Pairs())
	}
	if l.TotalBits() != 150 {
		t.Errorf("TotalBits = %v", l.TotalBits())
	}
}

func TestLedgerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative add should panic")
		}
	}()
	NewLedger(5).Add(0, 1, -1)
}

func TestLedgerSelfExchangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self exchange should panic")
		}
	}()
	NewLedger(5).Add(3, 3, 10)
}

func TestProgressCappedAtOne(t *testing.T) {
	l := NewLedger(5)
	l.Add(0, 1, 500)
	if got := l.Progress(0, 1, 200); got != 1 {
		t.Errorf("Progress = %v, want capped 1", got)
	}
	if got := l.Progress(0, 1, 1000); got != 0.5 {
		t.Errorf("Progress = %v", got)
	}
	if !l.Complete(0, 1, 500) || l.Complete(0, 1, 501) {
		t.Error("Complete thresholds wrong")
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger(5)
	l.Add(0, 1, 10)
	l.Reset()
	if l.Pairs() != 0 || l.Exchanged(0, 1) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestComputePaperDefinitions(t *testing.T) {
	// Vehicle 0 has neighbors 1,2,3; demand 100 bits each.
	// Exchanged: 100 (done), 50, 0 → OCR=1/3, ATP=(1+0.5+0)/3=0.5,
	// DTP = sqrt(((0.5)²+0²+(0.5)²)/3) = sqrt(1/6).
	l := NewLedger(4)
	l.Add(0, 1, 100)
	l.Add(0, 2, 50)
	neighbors := [][]int{{1, 2, 3}, {0}, {0}, {0}}
	stats := Compute(neighbors, l, 100)
	if len(stats) != 4 {
		t.Fatalf("stats len = %d", len(stats))
	}
	s := stats[0]
	if s.Neighbors != 3 {
		t.Errorf("Neighbors = %d", s.Neighbors)
	}
	if math.Abs(s.OCR-1.0/3) > 1e-12 {
		t.Errorf("OCR = %v", s.OCR)
	}
	if math.Abs(s.ATP-0.5) > 1e-12 {
		t.Errorf("ATP = %v", s.ATP)
	}
	if want := math.Sqrt(1.0 / 6); math.Abs(s.DTP-want) > 1e-12 {
		t.Errorf("DTP = %v, want %v", s.DTP, want)
	}
}

func TestComputeSkipsIsolatedVehicles(t *testing.T) {
	l := NewLedger(3)
	neighbors := [][]int{{1}, {0}, {}}
	stats := Compute(neighbors, l, 100)
	if len(stats) != 2 {
		t.Fatalf("stats len = %d, isolated vehicle must be omitted", len(stats))
	}
	for _, s := range stats {
		if s.Vehicle == 2 {
			t.Error("isolated vehicle present")
		}
	}
}

func TestComputeZeroProgress(t *testing.T) {
	l := NewLedger(3)
	stats := Compute([][]int{{1, 2}}, l, 100)
	s := stats[0]
	if s.OCR != 0 || s.ATP != 0 || s.DTP != 0 {
		t.Errorf("zero-progress stats = %+v", s)
	}
}

func TestComputeAllComplete(t *testing.T) {
	l := NewLedger(3)
	l.Add(0, 1, 100)
	l.Add(0, 2, 100)
	s := Compute([][]int{{1, 2}}, l, 100)[0]
	if s.OCR != 1 || s.ATP != 1 || s.DTP != 0 {
		t.Errorf("complete stats = %+v", s)
	}
}

func TestSummarize(t *testing.T) {
	stats := []VehicleStats{
		{OCR: 1, ATP: 1, DTP: 0},
		{OCR: 0, ATP: 0.5, DTP: 0.2},
	}
	s := Summarize(stats)
	if s.Vehicles != 2 || s.MeanOCR != 0.5 || s.MeanATP != 0.75 || math.Abs(s.MeanDTP-0.1) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := c.P(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Q(0) = %v", got)
	}
	if got := c.Quantile(0.5); got != 20 {
		t.Errorf("Q(0.5) = %v", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Errorf("Q(1) = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestCDFCurve(t *testing.T) {
	c := NewCDF([]float64{0, 0.5, 1})
	pts := c.Curve(5)
	if len(pts) != 5 {
		t.Fatalf("curve len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 1 {
		t.Errorf("curve endpoints = %v, %v", pts[0], pts[4])
	}
	// Monotone non-decreasing Y.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF curve not monotone at %d", i)
		}
	}
	if pts[4].Y != 1 {
		t.Errorf("final Y = %v", pts[4].Y)
	}
	if got := NewCDF(nil).Curve(5); got != nil {
		t.Error("empty CDF curve should be nil")
	}
	// Degenerate single-value sample.
	one := NewCDF([]float64{2}).Curve(5)
	if len(one) != 1 || one[0].Y != 1 {
		t.Errorf("degenerate curve = %v", one)
	}
}

func TestCDFPMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] = math.Mod(vals[i], 100)
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		if a > b {
			a, b = b, a
		}
		c := NewCDF(vals)
		return c.P(a) <= c.P(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{1, 3}); got != 1 {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty Mean/StdDev should be NaN")
	}
}

func TestSampleStdDev(t *testing.T) {
	if got := SampleStdDev([]float64{1, 3}); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("SampleStdDev = %v", got)
	}
	if !math.IsNaN(SampleStdDev([]float64{1})) {
		t.Error("single sample should be NaN")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, hw := MeanCI95([]float64{2, 2, 2, 2})
	if mean != 2 || hw != 0 {
		t.Errorf("constant sample CI = %v ± %v", mean, hw)
	}
	mean, hw = MeanCI95([]float64{0, 1, 0, 1})
	if math.Abs(mean-0.5) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
	want := 1.96 * SampleStdDev([]float64{0, 1, 0, 1}) / 2
	if math.Abs(hw-want) > 1e-12 {
		t.Errorf("half-width = %v, want %v", hw, want)
	}
	if _, hw := MeanCI95([]float64{7}); hw != 0 {
		t.Errorf("single-sample half-width = %v", hw)
	}
}
