package metrics

import (
	"math"
	"testing"
)

func FuzzLedgerProgressInvariants(f *testing.F) {
	f.Add(uint8(1), uint8(2), 100.0, 50.0)
	f.Fuzz(func(t *testing.T, i, j uint8, bits, demand float64) {
		if i == j || math.IsNaN(bits) || math.IsInf(bits, 0) || bits < 0 || bits > 1e18 {
			t.Skip()
		}
		if math.IsNaN(demand) || math.IsInf(demand, 0) || demand > 1e18 {
			t.Skip()
		}
		l := NewLedger(256)
		l.Add(int(i), int(j), bits)
		p := l.Progress(int(i), int(j), demand)
		if p < 0 || p > 1 {
			t.Fatalf("progress %v outside [0,1]", p)
		}
		if l.Exchanged(int(i), int(j)) != l.Exchanged(int(j), int(i)) {
			t.Fatal("ledger not symmetric")
		}
		if demand > 0 && l.Complete(int(i), int(j), demand) != (bits >= demand) {
			t.Fatalf("Complete inconsistent: bits=%v demand=%v", bits, demand)
		}
	})
}

func FuzzCDFBounds(f *testing.F) {
	f.Add(0.5, 0.25, 0.75, 0.1)
	f.Fuzz(func(t *testing.T, a, b, c, x float64) {
		for _, v := range []float64{a, b, c, x} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		cdf := NewCDF([]float64{a, b, c})
		p := cdf.P(x)
		if p < 0 || p > 1 {
			t.Fatalf("P = %v", p)
		}
		q := cdf.Quantile(0.5)
		if q != a && q != b && q != c {
			t.Fatalf("median %v not a sample value", q)
		}
	})
}
