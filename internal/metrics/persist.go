// Checkpoint support (DESIGN.md §11): the ledger serializes its pair maps
// with sorted keys so the encoding is canonical — two ledgers with equal
// contents always produce identical bytes, which the snapshot CRC and the
// run-log digests rely on.
package metrics

import (
	"slices"

	"mmv2v/internal/persist"
)

// saveMap appends a map keyed by pair index in ascending key order.
func saveMap(e *persist.Encoder, m map[int64]float64) {
	keys := make([]int64, 0, len(m))
	//mmv2v:sorted pure key collection; sorted below before encoding
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.I64(k)
		e.F64(m[k])
	}
}

// loadMap restores a map appended by saveMap, rejecting keys outside
// [0, limit) as it decodes — the wire order is sorted, so the first error
// reported is deterministic.
func loadMap(d *persist.Decoder, limit int64) map[int64]float64 {
	n := d.Count(16)
	m := make(map[int64]float64, n)
	for i := 0; i < n; i++ {
		k := d.I64()
		v := d.F64()
		if d.Err() != nil {
			return m
		}
		if k < 0 || k >= limit {
			d.Failf("ledger pair key %d outside [0, %d)", k, limit)
			return m
		}
		m[k] = v
	}
	return m
}

// SaveState appends the ledger's full contents.
func (l *Ledger) SaveState(e *persist.Encoder) {
	e.Int(l.n)
	saveMap(e, l.bits)
	saveMap(e, l.first)
}

// LoadState restores contents checkpointed by SaveState. The vehicle count
// must match the ledger's; pair keys outside [0, n²) are rejected.
func (l *Ledger) LoadState(d *persist.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != l.n {
		d.Failf("checkpoint ledger sized for %d vehicles, this run has %d", n, l.n)
		return d.Err()
	}
	limit := int64(l.n) * int64(l.n)
	bits := loadMap(d, limit)
	first := loadMap(d, limit)
	if err := d.Err(); err != nil {
		return err
	}
	l.bits = bits
	l.first = first
	return nil
}
