// Package metrics implements the paper's three evaluation metrics
// (Sec. IV-A) — OHM Completion Ratio (OCR), Average of Transmission
// Progress (ATP) and Deviation of Transmission Progress (DTP) — over a
// per-pair data-exchange ledger, plus empirical CDFs for the Fig. 7/8
// presentations and simple aggregation helpers.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Ledger accumulates the amount of data exchanged between unordered vehicle
// pairs (the paper's D_{i,j}), in bits, and remembers when each pair first
// exchanged anything (the discovery + matching latency observable).
type Ledger struct {
	n     int
	bits  map[int64]float64
	first map[int64]float64
}

// NewLedger creates a ledger for n vehicles.
func NewLedger(n int) *Ledger {
	return &Ledger{n: n, bits: make(map[int64]float64), first: make(map[int64]float64)}
}

func (l *Ledger) key(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)*int64(l.n) + int64(j)
}

// Add records bits exchanged between i and j (either direction; D_{i,j} is
// the pair total). Negative amounts panic. Callers with a timestamp should
// prefer AddAt so first-exchange latency is recorded.
func (l *Ledger) Add(i, j int, bits float64) {
	if bits < 0 {
		panic(fmt.Sprintf("metrics: negative exchange %v", bits))
	}
	if i == j {
		panic(fmt.Sprintf("metrics: self-exchange for vehicle %d", i))
	}
	l.bits[l.key(i, j)] += bits
}

// AddAt records bits exchanged between i and j at simulation time atSec
// (seconds), stamping the pair's first-exchange time on its first positive
// credit. Aggregate metrics are identical to Add.
func (l *Ledger) AddAt(i, j int, bits, atSec float64) {
	l.Add(i, j, bits)
	if bits > 0 {
		k := l.key(i, j)
		if _, seen := l.first[k]; !seen {
			l.first[k] = atSec
		}
	}
}

// FirstExchangeSec returns the simulation time (seconds) of the pair's
// first exchange recorded via AddAt, if any.
func (l *Ledger) FirstExchangeSec(i, j int) (float64, bool) {
	at, ok := l.first[l.key(i, j)]
	return at, ok
}

// Exchanged returns D_{i,j} in bits.
func (l *Ledger) Exchanged(i, j int) float64 { return l.bits[l.key(i, j)] }

// Progress returns η_{i,j} = min(D_{i,j}/D, 1) for demand D bits.
func (l *Ledger) Progress(i, j int, demandBits float64) float64 {
	if demandBits <= 0 {
		return 1
	}
	p := l.Exchanged(i, j) / demandBits
	if p > 1 {
		return 1
	}
	return p
}

// Complete reports whether the pair has exchanged at least the demand.
func (l *Ledger) Complete(i, j int, demandBits float64) bool {
	return l.Exchanged(i, j) >= demandBits
}

// Pairs returns the number of pairs with any recorded exchange.
func (l *Ledger) Pairs() int { return len(l.bits) }

// TotalBits returns the sum of all pair exchanges. Keys are summed in
// sorted order: float addition is not associative, so accumulating in map
// order would make the total depend on Go's randomized iteration.
func (l *Ledger) TotalBits() float64 {
	keys := make([]int64, 0, len(l.bits))
	//mmv2v:sorted pure key collection; sorted before the order-sensitive float sum below
	for k := range l.bits {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	total := 0.0
	for _, k := range keys {
		total += l.bits[k]
	}
	return total
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.bits = make(map[int64]float64)
	l.first = make(map[int64]float64)
}

// VehicleStats holds the paper's per-vehicle metrics for one measurement
// window.
type VehicleStats struct {
	Vehicle   int
	Neighbors int
	// OCR = |N_i^C| / |N_i|: fraction of neighbors with completed exchange.
	OCR float64
	// ATP = mean over neighbors of η_{i,j}.
	ATP float64
	// DTP = population standard deviation of η_{i,j} over neighbors.
	DTP float64
}

// Compute evaluates OCR/ATP/DTP for every vehicle against its neighbor set
// (the metric denominator N_i — the paper's true LOS neighbor set) and a
// per-neighbor demand in bits. Vehicles with no neighbors are omitted: the
// metrics are undefined for them.
func Compute(neighbors [][]int, l *Ledger, demandBits float64) []VehicleStats {
	out := make([]VehicleStats, 0, len(neighbors))
	for i, ns := range neighbors {
		if len(ns) == 0 {
			continue
		}
		completed := 0
		sum := 0.0
		etas := make([]float64, len(ns))
		for k, j := range ns {
			eta := l.Progress(i, j, demandBits)
			etas[k] = eta
			sum += eta
			if l.Complete(i, j, demandBits) {
				completed++
			}
		}
		mean := sum / float64(len(ns))
		varsum := 0.0
		for _, eta := range etas {
			d := eta - mean
			varsum += d * d
		}
		out = append(out, VehicleStats{
			Vehicle:   i,
			Neighbors: len(ns),
			OCR:       float64(completed) / float64(len(ns)),
			ATP:       mean,
			DTP:       math.Sqrt(varsum / float64(len(ns))),
		})
	}
	return out
}

// Summary aggregates per-vehicle stats across a window (and across trials
// when stats from several runs are concatenated).
type Summary struct {
	Vehicles int
	MeanOCR  float64
	MeanATP  float64
	MeanDTP  float64
}

// Summarize averages per-vehicle stats. An empty slice yields a zero
// Summary.
func Summarize(stats []VehicleStats) Summary {
	if len(stats) == 0 {
		return Summary{}
	}
	var s Summary
	s.Vehicles = len(stats)
	for _, st := range stats {
		s.MeanOCR += st.OCR
		s.MeanATP += st.ATP
		s.MeanDTP += st.DTP
	}
	n := float64(len(stats))
	s.MeanOCR /= n
	s.MeanATP /= n
	s.MeanDTP /= n
	return s
}

// Merge concatenates per-slot stat slices in slot order and summarizes the
// pool. Parallel trial runners hand it one slot per trial, so the pooled
// stats and Summary depend only on the slot order — never on which trial
// finished first — and are bit-identical to a serial append loop.
func Merge(parts [][]VehicleStats) ([]VehicleStats, Summary) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	pooled := make([]VehicleStats, 0, total)
	for _, p := range parts {
		pooled = append(pooled, p...)
	}
	return pooled, Summarize(pooled)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	xs []float64
}

// NewCDF builds a CDF from a sample (copied and sorted).
func NewCDF(values []float64) CDF {
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	return CDF{xs: xs}
}

// Len returns the sample size.
func (c CDF) Len() int { return len(c.xs) }

// P returns the empirical probability of a value ≤ x.
func (c CDF) P(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	// Index of first element > x.
	idx := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.xs))
}

// Quantile returns the q-th quantile (q in [0,1]) of the sample.
func (c CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.xs[idx]
}

// Point is one (x, P(X≤x)) sample of a CDF curve.
type Point struct {
	X float64
	Y float64
}

// Curve samples the CDF at k evenly spaced x positions spanning the sample
// range, suitable for plotting the paper's Fig. 7/8 style curves.
func (c CDF) Curve(k int) []Point {
	if len(c.xs) == 0 || k <= 0 {
		return nil
	}
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	out := make([]Point, 0, k)
	//mmv2v:exact lo and hi are copies of elements of the same sorted slice; equality means a degenerate single-value span
	if k == 1 || hi == lo {
		return append(out, Point{X: lo, Y: c.P(lo)})
	}
	for i := 0; i < k; i++ {
		x := lo + (hi-lo)*float64(i)/float64(k-1)
		out = append(out, Point{X: x, Y: c.P(x)})
	}
	return out
}

// Mean returns the arithmetic mean of a slice (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (NaN for empty input).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SampleStdDev returns the Bessel-corrected (n−1) standard deviation.
// It is NaN for fewer than two samples.
func SampleStdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanCI95 returns the sample mean and the half-width of its normal-
// approximation 95 % confidence interval (1.96·s/√n). The half-width is 0
// for fewer than two samples.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
}
