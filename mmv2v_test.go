package mmv2v_test

import (
	"testing"

	"mmv2v"
)

func TestFacadeRunMMV2V(t *testing.T) {
	cfg := mmv2v.DefaultScenario(10, 42)
	cfg.WindowSec = 0.2 // 10 frames: fast smoke
	res, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "mmV2V" {
		t.Errorf("protocol = %q", res.Protocol)
	}
	if len(res.Stats) == 0 {
		t.Error("no per-vehicle stats")
	}
	if res.Summary.MeanATP <= 0 {
		t.Errorf("ATP = %v, want progress in 200 ms", res.Summary.MeanATP)
	}
}

func TestFacadeBaselines(t *testing.T) {
	cfg := mmv2v.DefaultScenario(10, 42)
	cfg.WindowSec = 0.2
	for _, tc := range []struct {
		name string
		f    mmv2v.Factory
	}{
		{"ROP", mmv2v.ROP(mmv2v.DefaultROPParams())},
		{"802.11ad", mmv2v.AD(mmv2v.DefaultADParams())},
		{"oracle", mmv2v.Oracle(mmv2v.DefaultParams())},
	} {
		res, err := mmv2v.Run(cfg, tc.f)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Protocol != tc.name {
			t.Errorf("protocol = %q, want %q", res.Protocol, tc.name)
		}
	}
}

func TestFacadeRunTrialsPoolsStats(t *testing.T) {
	cfg := mmv2v.DefaultScenario(10, 7)
	cfg.WindowSec = 0.1
	res, err := mmv2v.RunTrials(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Errorf("windows = %d, want one per trial", len(res.Windows))
	}
}

func TestFacadeRunCustomPlatoon(t *testing.T) {
	cfg := mmv2v.DefaultScenario(0, 11)
	cfg.WindowSec = 0.2
	cfg.WarmupSec = 0
	specs := []mmv2v.VehicleSpec{
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 0, SpeedMS: 15},
		{Dir: mmv2v.Eastbound, Lane: 2, PositionM: 25, SpeedMS: 15},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 50, SpeedMS: 15},
		{Dir: mmv2v.Westbound, Lane: 0, PositionM: 930, SpeedMS: 14},
	}
	res, err := mmv2v.RunCustom(cfg, specs, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanATP <= 0 {
		t.Errorf("custom platoon made no progress: %+v", res.Summary)
	}
}

func TestFacadeRunCustomValidation(t *testing.T) {
	cfg := mmv2v.DefaultScenario(0, 1)
	if _, err := mmv2v.RunCustom(cfg, nil, mmv2v.MMV2V(mmv2v.DefaultParams())); err == nil {
		t.Error("empty vehicle list should fail")
	}
	bad := []mmv2v.VehicleSpec{{Dir: mmv2v.Eastbound, Lane: 9, PositionM: 0, SpeedMS: 10}}
	if _, err := mmv2v.RunCustom(cfg, bad, mmv2v.MMV2V(mmv2v.DefaultParams())); err == nil {
		t.Error("out-of-range lane should fail")
	}
}

func TestFacadeDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		cfg := mmv2v.DefaultScenario(10, 99)
		cfg.WindowSec = 0.2
		res, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()))
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.MeanATP
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic facade run: %v vs %v", a, b)
	}
}

func TestFacadeTracing(t *testing.T) {
	ring := mmv2v.NewTraceRing(10000)
	cfg := mmv2v.DefaultScenario(10, 42)
	cfg.WindowSec = 0.2
	cfg.Trace = mmv2v.NewTraceRecorder(ring)
	if _, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	counts := ring.CountByKind()
	if counts[mmv2v.TraceDiscovery] == 0 {
		t.Error("no discovery events traced")
	}
	if counts[mmv2v.TraceMatch] == 0 {
		t.Error("no match events traced")
	}
	if counts[mmv2v.TraceStreamStart] == 0 {
		t.Error("no stream events traced")
	}
	// Events carry plausible vehicle ids.
	for _, e := range ring.Events() {
		if e.A < 0 || e.A >= 120 {
			t.Fatalf("event with bad vehicle id: %+v", e)
		}
	}
}

func TestPlatoonSpec(t *testing.T) {
	specs := mmv2v.PlatoonSpec(mmv2v.Eastbound, 1, 5, 100, 25, 16)
	if len(specs) != 5 {
		t.Fatalf("len = %d", len(specs))
	}
	for i, s := range specs {
		if s.Lane != 1 || s.Dir != mmv2v.Eastbound || s.SpeedMS != 16 {
			t.Errorf("spec %d = %+v", i, s)
		}
		if want := 100 + float64(i)*25; s.PositionM != want {
			t.Errorf("spec %d position %v, want %v", i, s.PositionM, want)
		}
	}
}

func TestConvoySpecEscorts(t *testing.T) {
	specs := mmv2v.ConvoySpec(mmv2v.Eastbound, 1, 4, 0, 25, 16)
	if len(specs) != 4+3 {
		t.Fatalf("len = %d, want platoon 4 + escorts 3", len(specs))
	}
	lanes := map[int]int{}
	for _, s := range specs {
		lanes[s.Lane]++
	}
	if lanes[1] != 4 {
		t.Errorf("platoon lane count = %d", lanes[1])
	}
	if lanes[0]+lanes[2] != 3 {
		t.Errorf("escort count = %d", lanes[0]+lanes[2])
	}
}

func TestOncomingSpecDirectionFlipped(t *testing.T) {
	specs := mmv2v.OncomingSpec(mmv2v.Eastbound, 6, 800, 30, 17, 3)
	if len(specs) != 6 {
		t.Fatalf("len = %d", len(specs))
	}
	laneSeen := map[int]bool{}
	for _, s := range specs {
		if s.Dir != mmv2v.Westbound {
			t.Errorf("oncoming spec has wrong direction: %+v", s)
		}
		laneSeen[s.Lane] = true
	}
	if len(laneSeen) != 3 {
		t.Errorf("lanes used = %v, want all 3", laneSeen)
	}
}

func TestJamSpecRunsEndToEnd(t *testing.T) {
	cfg := mmv2v.DefaultScenario(0, 3)
	cfg.WarmupSec = 0
	cfg.WindowSec = 0.2
	specs := mmv2v.JamSpec(mmv2v.Eastbound, 3, 6, 0, 12, 2)
	res, err := mmv2v.RunCustom(cfg, specs, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Vehicles == 0 {
		t.Error("jam produced no measurable vehicles")
	}
	if res.Summary.MeanATP <= 0 {
		t.Error("jam scenario moved no data")
	}
}

func TestConvoyBeatsBarePlatoonOnConnectivity(t *testing.T) {
	cfg := mmv2v.DefaultScenario(0, 5)
	cfg.WarmupSec = 0
	cfg.WindowSec = 0.2
	run := func(specs []mmv2v.VehicleSpec) float64 {
		res, err := mmv2v.RunCustom(cfg, specs, mmv2v.MMV2V(mmv2v.DefaultParams()))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgNeighbors
	}
	plain := run(mmv2v.PlatoonSpec(mmv2v.Eastbound, 1, 6, 0, 25, 16))
	convoy := run(mmv2v.ConvoySpec(mmv2v.Eastbound, 1, 6, 0, 25, 16))
	// Escorts add diagonal LOS links, so the convoy's average neighbor
	// count must exceed the bare platoon's.
	if convoy <= plain {
		t.Errorf("convoy avgN %v not above platoon %v", convoy, plain)
	}
}
