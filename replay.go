// Run logs and byte-identical replay (DESIGN.md §11). A run log is an
// append-only record file (internal/persist log format) that captures a
// pooled RunTrials execution completely enough to re-render its results
// without re-simulating — and to re-verify them against a live re-execution:
//
//   - a header record holding the scenario recipe (world, density or grid,
//     seed, windows, demand, fault intensity, protocol and its parameters)
//     plus the config fingerprint the recipe must reconstruct;
//   - one window record per (trial, window) in trial-major order, carrying
//     the window's results in canonical encoding plus an FNV-1a digest;
//   - one trial record per successful trial with the per-trial pooled stats
//     the trial merge needs;
//   - an end record with the successful-trial count.
//
// Every record is CRC-framed by the container, so torn tails (a crash
// mid-append) are detected and earlier records survive; interior bit flips
// surface as structured checksum errors, never panics. Replay reconstructs
// the per-trial results and re-pools them through the same merge the live
// run used, so the rendered tables are byte-identical. Verification re-runs
// every trial from the recipe and diffs per-window digests, reporting the
// first divergence in (trial, window) order.
package mmv2v

import (
	"fmt"
	"os"

	"mmv2v/internal/persist"
	"mmv2v/internal/sim"
)

// Run-log record types.
const (
	runLogHeaderRec uint8 = 1
	runLogWindowRec uint8 = 2
	runLogTrialRec  uint8 = 3
	runLogEndRec    uint8 = 4
)

// runLogMaxTrials bounds the trial count a log header may declare, so a
// corrupted header cannot demand an absurd allocation.
const runLogMaxTrials = 1 << 20

// RunLogHeader is the scenario recipe stored in a run log: everything
// needed to rebuild the exact ScenarioConfig and protocol factory of the
// recorded run. It mirrors the mmv2v-sim command line rather than the full
// config struct — the log stores how the scenario was asked for, and the
// reconstruction is cross-checked against the recorded config fingerprint
// so a recipe that no longer reproduces the config fails loudly.
type RunLogHeader struct {
	// Protocol is the factory key: "mmv2v", "rop", "ad" or "oracle".
	Protocol string
	// K, M, C are the mmV2V parameters (used by "mmv2v" and "oracle";
	// recorded verbatim for the others).
	K, M, C int
	// Grid selects the Manhattan-grid world; when false the scenario is the
	// paper's straight road at DensityVPL.
	Grid       bool
	DensityVPL float64
	// GridRows, GridCols, GridBlockM, GridVehicles size the grid world
	// (zero when Grid is false).
	GridRows, GridCols int
	GridBlockM         float64
	GridVehicles       int
	// Seed, Trials, WindowSec, Windows, DemandBits, FaultIntensity complete
	// the recipe (FaultIntensity scales DefaultFaultConfig; 0 = clean).
	Seed           uint64
	Trials         int
	WindowSec      float64
	Windows        int
	DemandBits     float64
	FaultIntensity float64
}

// Config rebuilds the scenario the header describes.
func (h RunLogHeader) Config() (ScenarioConfig, error) {
	var cfg ScenarioConfig
	if h.Grid {
		g := DefaultGridConfig(h.GridVehicles)
		g.Rows, g.Cols = h.GridRows, h.GridCols
		g.BlockM = h.GridBlockM
		cfg = GridScenario(g, h.Seed)
	} else {
		cfg = DefaultScenario(h.DensityVPL, h.Seed)
	}
	cfg.WindowSec = h.WindowSec
	cfg.Windows = h.Windows
	cfg.DemandBits = h.DemandBits
	if h.FaultIntensity < 0 {
		return cfg, fmt.Errorf("mmv2v: run log has negative fault intensity %v", h.FaultIntensity)
	}
	if h.FaultIntensity > 0 {
		profile := DefaultFaultConfig().Scale(h.FaultIntensity)
		cfg.Faults = &profile
	}
	if h.Trials <= 0 || h.Trials > runLogMaxTrials {
		return cfg, fmt.Errorf("mmv2v: run log declares invalid trial count %d", h.Trials)
	}
	return cfg, cfg.Validate()
}

// Factory rebuilds the protocol factory the header describes.
func (h RunLogHeader) Factory() (Factory, error) {
	switch h.Protocol {
	case "mmv2v", "oracle":
		p := DefaultParams()
		p.K, p.M, p.C = h.K, h.M, h.C
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if h.Protocol == "oracle" {
			return Oracle(p), nil
		}
		return MMV2V(p), nil
	case "rop":
		return ROP(DefaultROPParams()), nil
	case "ad":
		return AD(DefaultADParams()), nil
	}
	return nil, fmt.Errorf("mmv2v: run log names unknown protocol %q", h.Protocol)
}

// encodeRunLogHeader writes the header record payload: the recipe plus the
// fingerprint of the config it reconstructs.
func encodeRunLogHeader(h RunLogHeader, fingerprint uint64) []byte {
	var e persist.Encoder
	e.U64(fingerprint)
	e.String(h.Protocol)
	e.Int(h.K)
	e.Int(h.M)
	e.Int(h.C)
	e.Bool(h.Grid)
	e.F64(h.DensityVPL)
	e.Int(h.GridRows)
	e.Int(h.GridCols)
	e.F64(h.GridBlockM)
	e.Int(h.GridVehicles)
	e.U64(h.Seed)
	e.Int(h.Trials)
	e.F64(h.WindowSec)
	e.Int(h.Windows)
	e.F64(h.DemandBits)
	e.F64(h.FaultIntensity)
	return e.Bytes()
}

// decodeRunLogHeader reads the header record payload.
func decodeRunLogHeader(d *persist.Decoder) (RunLogHeader, uint64) {
	fingerprint := d.U64()
	h := RunLogHeader{
		Protocol: d.String(),
		K:        d.Int(),
		M:        d.Int(),
		C:        d.Int(),
		Grid:     d.Bool(),
	}
	h.DensityVPL = d.F64()
	h.GridRows = d.Int()
	h.GridCols = d.Int()
	h.GridBlockM = d.F64()
	h.GridVehicles = d.Int()
	h.Seed = d.U64()
	h.Trials = d.Int()
	h.WindowSec = d.F64()
	h.Windows = d.Int()
	h.DemandBits = d.F64()
	h.FaultIntensity = d.F64()
	return h, fingerprint
}

// encodeTrialTail writes a trial record payload: the per-trial fields the
// trial merge consumes beyond the window records.
func encodeTrialTail(trial int, r *Result) []byte {
	var e persist.Encoder
	e.Int(trial)
	e.String(r.Protocol)
	e.U32(uint32(len(r.Stats)))
	for _, vs := range r.Stats {
		e.Int(vs.Vehicle)
		e.Int(vs.Neighbors)
		e.F64(vs.OCR)
		e.F64(vs.ATP)
		e.F64(vs.DTP)
	}
	e.F64(r.AvgNeighbors)
	e.F64(r.LatencySumSec)
	e.Int(r.LatencyPairs)
	e.U64(r.Events)
	return e.Bytes()
}

// RunTrialsLogged runs like RunTrials and additionally writes a run log to
// path: the scenario recipe in h, then every successful trial's per-window
// results with digests. h must reconstruct exactly the scenario being run —
// mismatches fail before any simulation, because a log that cannot replay
// its own run is worse than no log. The file is written atomically after
// the pool drains.
func RunTrialsLogged(cfg ScenarioConfig, f Factory, trials int, h RunLogHeader, path string) (*Result, error) {
	if h.Trials != trials {
		return nil, fmt.Errorf("mmv2v: run-log header declares %d trials, running %d", h.Trials, trials)
	}
	hcfg, err := h.Config()
	if err != nil {
		return nil, err
	}
	fingerprint := sim.Fingerprint(cfg)
	if got := sim.Fingerprint(hcfg); got != fingerprint {
		return nil, fmt.Errorf("mmv2v: run-log header does not reconstruct this scenario (recipe fingerprint %#x, config %#x)", got, fingerprint)
	}
	if _, err := h.Factory(); err != nil {
		return nil, err
	}
	log := persist.NewLog()
	log = persist.AppendRecord(log, runLogHeaderRec, encodeRunLogHeader(h, fingerprint))
	res, err := sim.NewRunner(cfg.Workers).RunTrialsEach(cfg, f, trials, func(tr int, r *sim.Result) {
		for _, w := range r.Windows {
			var e persist.Encoder
			e.Int(tr)
			e.U64(sim.WindowDigest(tr, w))
			sim.EncodeWindowResult(&e, w)
			log = persist.AppendRecord(log, runLogWindowRec, e.Bytes())
		}
		log = persist.AppendRecord(log, runLogTrialRec, encodeTrialTail(tr, r))
	})
	if err != nil {
		return nil, err
	}
	var e persist.Encoder
	e.Int(res.Trials)
	log = persist.AppendRecord(log, runLogEndRec, e.Bytes())
	if err := persist.WriteFileAtomic(path, log); err != nil {
		return nil, fmt.Errorf("mmv2v: run log %s: %w", path, err)
	}
	return res, nil
}

// RunLog is a parsed run log.
type RunLog struct {
	// Header is the scenario recipe; Fingerprint is the recorded config
	// fingerprint the recipe reconstructed when the log was written.
	Header      RunLogHeader
	Fingerprint uint64
	// PerTrial holds the reconstructed per-trial results, indexed by trial;
	// nil slots are trials the recorded run lost (or that a torn tail cut
	// off). Digests holds the recorded per-window digests per trial.
	PerTrial []*Result
	Digests  [][]uint64
	// Truncated reports that the log ended in a torn tail (crash mid-
	// append); the records before the tear are still loaded.
	Truncated bool
}

// ReadRunLog parses and validates a run log file. Window records are
// re-digested on load, so any corruption that slipped past the per-record
// CRC still surfaces as a structured error. Corrupted input returns an
// error, never panics.
func ReadRunLog(path string) (*RunLog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmv2v: run log: %w", err)
	}
	recs, truncated, err := persist.ReadLog(data)
	if err != nil {
		return nil, fmt.Errorf("mmv2v: run log %s: %w", path, err)
	}
	if len(recs) == 0 || recs[0].Type != runLogHeaderRec {
		return nil, fmt.Errorf("mmv2v: run log %s: %w: missing header record", path, persist.ErrCorrupt)
	}
	hd := persist.NewDecoder(recs[0].Payload)
	header, fingerprint := decodeRunLogHeader(hd)
	if err := hd.Err(); err != nil {
		return nil, fmt.Errorf("mmv2v: run log %s header: %w", path, err)
	}
	if header.Trials <= 0 || header.Trials > runLogMaxTrials {
		return nil, fmt.Errorf("mmv2v: run log %s: %w: invalid trial count %d", path, persist.ErrCorrupt, header.Trials)
	}
	if header.Windows <= 0 {
		return nil, fmt.Errorf("mmv2v: run log %s: %w: invalid window count %d", path, persist.ErrCorrupt, header.Windows)
	}
	rl := &RunLog{
		Header:      header,
		Fingerprint: fingerprint,
		PerTrial:    make([]*Result, header.Trials),
		Digests:     make([][]uint64, header.Trials),
		Truncated:   truncated,
	}
	// windows accumulates per-trial window records until the trial record
	// seals them into PerTrial.
	windows := make([][]sim.WindowResult, header.Trials)
	digests := make([][]uint64, header.Trials)
	sealed := 0
	ended := false
	for i, rec := range recs[1:] {
		if ended {
			return nil, fmt.Errorf("mmv2v: run log %s: %w: record after end record", path, persist.ErrCorrupt)
		}
		d := persist.NewDecoder(rec.Payload)
		switch rec.Type {
		case runLogWindowRec:
			tr := d.Int()
			digest := d.U64()
			w := sim.DecodeWindowResult(d)
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w", path, i+1, err)
			}
			if tr < 0 || tr >= header.Trials {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: trial %d outside [0, %d)", path, i+1, persist.ErrCorrupt, tr, header.Trials)
			}
			if rl.PerTrial[tr] != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: window record after trial %d was sealed", path, i+1, persist.ErrCorrupt, tr)
			}
			if w.Window != len(windows[tr]) || w.Window >= header.Windows {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: trial %d window %d out of sequence (have %d of %d)",
					path, i+1, persist.ErrCorrupt, tr, w.Window, len(windows[tr]), header.Windows)
			}
			if got := sim.WindowDigest(tr, w); got != digest {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: trial %d window %d digest %#x, recorded %#x",
					path, i+1, persist.ErrChecksum, tr, w.Window, got, digest)
			}
			windows[tr] = append(windows[tr], w)
			digests[tr] = append(digests[tr], digest)
		case runLogTrialRec:
			tr := d.Int()
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w", path, i+1, err)
			}
			if tr < 0 || tr >= header.Trials {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: trial %d outside [0, %d)", path, i+1, persist.ErrCorrupt, tr, header.Trials)
			}
			if rl.PerTrial[tr] != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: duplicate trial record %d", path, i+1, persist.ErrCorrupt, tr)
			}
			if len(windows[tr]) != header.Windows {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: trial %d sealed with %d of %d windows",
					path, i+1, persist.ErrCorrupt, tr, len(windows[tr]), header.Windows)
			}
			res := &Result{Protocol: d.String(), Windows: windows[tr], Trials: 1}
			ns := d.Count(5 * 8)
			for k := 0; k < ns; k++ {
				res.Stats = append(res.Stats, VehicleStats{
					Vehicle:   d.Int(),
					Neighbors: d.Int(),
					OCR:       d.F64(),
					ATP:       d.F64(),
					DTP:       d.F64(),
				})
				if d.Err() != nil {
					break
				}
			}
			res.AvgNeighbors = d.F64()
			res.LatencySumSec = d.F64()
			res.LatencyPairs = d.Int()
			res.Events = d.U64()
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w", path, i+1, err)
			}
			rl.PerTrial[tr] = res
			rl.Digests[tr] = digests[tr]
			sealed++
		case runLogEndRec:
			count := d.Int()
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("mmv2v: run log %s record %d: %w", path, i+1, err)
			}
			if count != sealed {
				return nil, fmt.Errorf("mmv2v: run log %s: %w: end record counts %d trials, log carries %d", path, persist.ErrCorrupt, count, sealed)
			}
			ended = true
		default:
			return nil, fmt.Errorf("mmv2v: run log %s record %d: %w: unknown record type %d", path, i+1, persist.ErrCorrupt, rec.Type)
		}
	}
	if !ended {
		// A torn tail legitimately loses the end record (and possibly the
		// last trial's seal); anything else is corruption.
		if !truncated {
			return nil, fmt.Errorf("mmv2v: run log %s: %w: missing end record without a torn tail", path, persist.ErrCorrupt)
		}
	}
	if sealed == 0 {
		return nil, fmt.Errorf("mmv2v: run log %s: %w: no complete trial", path, persist.ErrCorrupt)
	}
	return rl, nil
}

// Result re-pools the logged per-trial results through the same trial merge
// a live RunTrials uses, re-rendering the recorded run byte-identically.
func (rl *RunLog) Result() *Result {
	return sim.MergeTrials(rl.PerTrial)
}

// Divergence locates the first difference between a run log and a live
// re-execution, in (trial, window) order. Window == -1 means the trial's
// window count or presence differed rather than a specific window's bytes.
type Divergence struct {
	Trial, Window  int
	Recorded, Live uint64
}

// String renders the divergence for reports.
func (v *Divergence) String() string {
	if v.Window < 0 {
		return fmt.Sprintf("trial %d diverged: window count or trial outcome differs from the log", v.Trial)
	}
	return fmt.Sprintf("trial %d window %d diverged: recorded digest %#x, live %#x", v.Trial, v.Window, v.Recorded, v.Live)
}

// Verify re-executes the logged run from its recipe on a pool of the given
// worker count (0 = GOMAXPROCS) and diffs the live per-window digests
// against the recorded ones. It returns the first divergence in (trial,
// window) order, or nil when every recorded digest matches — the replay
// contract of DESIGN.md §11. Trials the recorded run lost are skipped.
func (rl *RunLog) Verify(workers int) (*Divergence, error) {
	cfg, err := rl.Header.Config()
	if err != nil {
		return nil, err
	}
	if got := sim.Fingerprint(cfg); got != rl.Fingerprint {
		return nil, fmt.Errorf("mmv2v: run-log recipe no longer reconstructs the recorded scenario (recipe fingerprint %#x, recorded %#x)", got, rl.Fingerprint)
	}
	factory, err := rl.Header.Factory()
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	live := make([][]uint64, rl.Header.Trials)
	if _, err := sim.NewRunner(workers).RunTrialsEach(cfg, factory, rl.Header.Trials, func(tr int, r *sim.Result) {
		ds := make([]uint64, len(r.Windows))
		for i, w := range r.Windows {
			ds[i] = sim.WindowDigest(tr, w)
		}
		live[tr] = ds
	}); err != nil {
		return nil, err
	}
	for tr, recorded := range rl.Digests {
		if rl.PerTrial[tr] == nil {
			continue // the recorded run lost this trial; nothing to compare
		}
		got := live[tr]
		for i, want := range recorded {
			if i >= len(got) {
				return &Divergence{Trial: tr, Window: -1}, nil
			}
			if got[i] != want {
				return &Divergence{Trial: tr, Window: i, Recorded: want, Live: got[i]}, nil
			}
		}
		if len(got) != len(recorded) {
			return &Divergence{Trial: tr, Window: -1}, nil
		}
	}
	return nil, nil
}
