package mmv2v

import (
	"io"

	"mmv2v/internal/trace"
)

// Tracing: set ScenarioConfig.Trace to a Recorder to receive structured
// protocol events (discoveries, matches, break-ups, stream starts, rate
// changes, completions, PBSS associations). A nil recorder disables tracing
// at zero cost.

// TraceEvent is one recorded protocol occurrence.
type TraceEvent = trace.Event

// TraceKind classifies trace events.
type TraceKind = trace.Kind

// Trace event kinds.
const (
	TraceDiscovery   = trace.KindDiscovery
	TraceNegotiation = trace.KindNegotiation
	TraceMatch       = trace.KindMatch
	TraceBreakup     = trace.KindBreakup
	TraceStreamStart = trace.KindStreamStart
	TraceStreamStop  = trace.KindStreamStop
	TraceRate        = trace.KindRate
	TraceCompletion  = trace.KindCompletion
	TraceAssociation = trace.KindAssociation
)

// TraceRecorder fans protocol events out to sinks.
type TraceRecorder = trace.Recorder

// TraceSink consumes trace events.
type TraceSink = trace.Sink

// TraceRing is an in-memory most-recent-events sink.
type TraceRing = trace.Ring

// NewTraceRecorder builds a recorder over sinks.
func NewTraceRecorder(sinks ...TraceSink) *TraceRecorder { return trace.New(sinks...) }

// NewTraceRing builds a fixed-capacity in-memory sink.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// NewTraceJSONL builds a sink writing one JSON object per event.
func NewTraceJSONL(w io.Writer) *trace.JSONL { return trace.NewJSONL(w) }
