package mmv2v_test

// One benchmark per paper table/figure (see DESIGN.md §4). Each bench runs
// a reduced-scale but structurally complete version of the experiment —
// same code paths as `mmv2v-experiments`, smaller trial counts and windows
// so `go test -bench=.` finishes in minutes. The absolute figures printed
// by the harness come from cmd/mmv2v-experiments at full scale.

import (
	"testing"

	"mmv2v"
)

// BenchmarkTheorem2Validation regenerates the Theorem 2 discovery-ratio
// check: empirical role-coin Monte Carlo vs 1 − [p²+(1−p)²]^K.
func BenchmarkTheorem2Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.DefaultTheorem2Options()
		opts.Seed = uint64(i + 1)
		opts.Pairs = 5000
		opts.MeasureInSim = false
		if _, err := mmv2v.ValidateTheorem2(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CapacityVsSlots regenerates Fig. 6: capacity per vehicle as
// a function of negotiation slots for small/large CNS constants.
func BenchmarkFig6CapacityVsSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.Fig6Options{
			Seed:      uint64(i + 1),
			Trials:    1,
			Densities: []float64{12},
			CValues:   []int{1, 7, 12},
			MaxSlots:  40,
			Frames:    1,
		}
		if _, err := mmv2v.ReproduceFig6(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7DiscoveryRounds regenerates Fig. 7: OCR/ATP CDFs across
// discovery round counts K.
func BenchmarkFig7DiscoveryRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.Fig7Options{
			Seed:        uint64(i + 1),
			Trials:      1,
			DensityVPL:  12,
			KValues:     []int{1, 3},
			M:           40,
			CurvePoints: 11,
		}
		if _, err := mmv2v.ReproduceFig7(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8NegotiationSlots regenerates Fig. 8: OCR/ATP CDFs across
// negotiation slot counts M.
func BenchmarkFig8NegotiationSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.Fig8Options{
			Seed:        uint64(i + 1),
			Trials:      1,
			DensityVPL:  12,
			MValues:     []int{20, 40},
			K:           3,
			CurvePoints: 11,
		}
		if _, err := mmv2v.ReproduceFig8(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Comparison regenerates Fig. 9: the three-protocol comparison
// at one density (the full density sweep is cmd/mmv2v-experiments -fig 9).
func BenchmarkFig9Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.Fig9Options{
			Seed:      uint64(i + 1),
			Trials:    1,
			Densities: []float64{15},
		}
		if _, err := mmv2v.ReproduceFig9(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation at reduced
// scale.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := mmv2v.AblationOptions{Seed: uint64(i + 1), Trials: 1, DensityVPL: 10}
		if _, err := mmv2v.RunAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProtocolSecond measures the cost of simulating one full second of a
// protocol at a density — the simulator's core workload.
func benchProtocolSecond(b *testing.B, density float64, f mmv2v.Factory) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := mmv2v.DefaultScenario(density, uint64(i+1))
		if _, err := mmv2v.Run(cfg, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMV2VSecond15vpl(b *testing.B) {
	benchProtocolSecond(b, 15, mmv2v.MMV2V(mmv2v.DefaultParams()))
}

func BenchmarkMMV2VSecond30vpl(b *testing.B) {
	benchProtocolSecond(b, 30, mmv2v.MMV2V(mmv2v.DefaultParams()))
}

func BenchmarkROPSecond15vpl(b *testing.B) {
	benchProtocolSecond(b, 15, mmv2v.ROP(mmv2v.DefaultROPParams()))
}

func BenchmarkADSecond15vpl(b *testing.B) {
	benchProtocolSecond(b, 15, mmv2v.AD(mmv2v.DefaultADParams()))
}

func BenchmarkOracleSecond15vpl(b *testing.B) {
	benchProtocolSecond(b, 15, mmv2v.Oracle(mmv2v.DefaultParams()))
}
