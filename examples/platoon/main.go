// Platoon: the cooperative-driving workload from the paper's introduction —
// a platoon of automated vehicles exchanging LIDAR point clouds with every
// line-of-sight neighbor, plus oncoming traffic that blocks and interferes.
//
// Vehicles are hand-placed with RunCustom, which is how downstream users
// build controlled scenarios (convoys, intersections, merging lanes).
//
//	go run ./examples/platoon
package main

import (
	"fmt"
	"log"

	"mmv2v"
)

func main() {
	// A 6-vehicle platoon in the middle eastbound lane at ~25 m headway,
	// flanked by two escorts in adjacent lanes, with three oncoming
	// vehicles: same-lane platoon members beyond the immediate leader are
	// body-blocked, so the platoon's OHM graph is a chain plus diagonals.
	specs := []mmv2v.VehicleSpec{
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 0, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 25, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 50, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 75, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 100, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 1, PositionM: 125, SpeedMS: 16},
		{Dir: mmv2v.Eastbound, Lane: 0, PositionM: 40, SpeedMS: 16}, // escort right
		{Dir: mmv2v.Eastbound, Lane: 2, PositionM: 85, SpeedMS: 18}, // escort left
		{Dir: mmv2v.Westbound, Lane: 1, PositionM: 830, SpeedMS: 17},
		{Dir: mmv2v.Westbound, Lane: 2, PositionM: 870, SpeedMS: 19},
		{Dir: mmv2v.Westbound, Lane: 0, PositionM: 910, SpeedMS: 14},
	}

	cfg := mmv2v.DefaultScenario(0, 7)
	cfg.WarmupSec = 0      // keep the formation exactly as placed
	cfg.DemandBits = 100e6 // a 100 Mb point-cloud unit per neighbor pair

	res, err := mmv2v.RunCustom(cfg, specs, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("platoon scenario — 11 vehicles, 100 Mb per neighbor, 1 s")
	fmt.Printf("network: OCR=%.3f ATP=%.3f DTP=%.3f (avg %.1f LOS neighbors)\n\n",
		res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP, res.AvgNeighbors)

	fmt.Printf("%-8s %-10s %-7s %-7s %-7s\n", "vehicle", "neighbors", "OCR", "ATP", "DTP")
	for _, s := range res.Stats {
		fmt.Printf("%-8d %-10d %-7.3f %-7.3f %-7.3f\n", s.Vehicle, s.Neighbors, s.OCR, s.ATP, s.DTP)
	}
	fmt.Println("\nVehicles 0–5 are the platoon (lane 1); 6–7 escorts; 8–10 oncoming.")
	fmt.Println("Same-lane members see ~2 LOS neighbors (bodies block the rest);")
	fmt.Println("escorts bridge the chain diagonally across lanes.")
}
