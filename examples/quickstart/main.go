// Quickstart: run the mmV2V protocol on the paper's standard scenario and
// print the three OHM metrics, side by side with the two baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mmv2v"
)

func main() {
	// The paper's "normal traffic condition": 15 vehicles per lane per km
	// (≈66 m headway), each vehicle running a 200 Mb/s high-resolution
	// image exchange (HRIE) task with every line-of-sight neighbor.
	cfg := mmv2v.DefaultScenario(15, 42)

	fmt.Println("mmV2V quickstart — 15 vpl, 200 Mb/s HRIE task, 1 s window")
	fmt.Printf("%-10s %-8s %-8s %-8s\n", "protocol", "OCR", "ATP", "DTP")

	for _, p := range []struct {
		name    string
		factory mmv2v.Factory
	}{
		{"mmV2V", mmv2v.MMV2V(mmv2v.DefaultParams())},
		{"ROP", mmv2v.ROP(mmv2v.DefaultROPParams())},
		{"802.11ad", mmv2v.AD(mmv2v.DefaultADParams())},
	} {
		res, err := mmv2v.Run(cfg, p.factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8.3f %-8.3f %-8.3f\n",
			p.name, res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.MeanDTP)
	}

	fmt.Println("\nOCR = fraction of neighbors whose exchange completed;")
	fmt.Println("ATP = mean transfer progress; DTP = progress deviation (fairness).")
	fmt.Println("Paper reference at 15 vpl: mmV2V 0.742, ROP 0.319, 802.11ad 0.465.")
}
