// Tuning: sweep the mmV2V protocol knobs (K discovery rounds, M negotiation
// slots, C hash constant, p role probability) on one scenario — the
// single-scenario version of the paper's Sec. IV-B parameter studies.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"mmv2v"
)

func main() {
	cfg := mmv2v.DefaultScenario(20, 3)
	cfg.WindowSec = 0.5 // half-second windows keep the sweep quick

	run := func(mutate func(*mmv2v.Params)) mmv2v.Summary {
		params := mmv2v.DefaultParams()
		mutate(&params)
		if err := params.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := mmv2v.Run(cfg, mmv2v.MMV2V(params))
		if err != nil {
			log.Fatal(err)
		}
		return res.Summary
	}

	fmt.Println("mmV2V parameter tuning at 20 vpl (0.5 s windows)")

	fmt.Println("\ndiscovery rounds K (paper Fig. 7; more rounds find more neighbors")
	fmt.Println("but cost airtime — the paper picks K=3):")
	for _, k := range []int{1, 2, 3, 4} {
		s := run(func(p *mmv2v.Params) { p.K = k })
		fmt.Printf("  K=%d  OCR=%.3f ATP=%.3f\n", k, s.MeanOCR, s.MeanATP)
	}

	fmt.Println("\nnegotiation slots M (paper Fig. 8; too few → bad matching, too")
	fmt.Println("many → wasted airtime — the paper picks M=40):")
	for _, m := range []int{10, 20, 40, 80} {
		s := run(func(p *mmv2v.Params) { p.M = m })
		fmt.Printf("  M=%-2d OCR=%.3f ATP=%.3f\n", m, s.MeanOCR, s.MeanATP)
	}

	fmt.Println("\nCNS constant C (paper Fig. 6; ideal C ≈ average neighbor count —")
	fmt.Println("the paper picks C=7):")
	for _, c := range []int{2, 4, 7, 10} {
		s := run(func(p *mmv2v.Params) { p.C = c })
		fmt.Printf("  C=%-2d OCR=%.3f ATP=%.3f\n", c, s.MeanOCR, s.MeanATP)
	}

	fmt.Println("\nrole probability p (Theorem 2: p=0.5 maximizes the discovery ratio):")
	for _, prob := range []float64{0.3, 0.5, 0.7} {
		s := run(func(p *mmv2v.Params) { p.P = prob })
		fmt.Printf("  p=%.1f OCR=%.3f ATP=%.3f\n", prob, s.MeanOCR, s.MeanATP)
	}
}
