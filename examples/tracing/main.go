// Tracing: run one second of mmV2V with the structured event recorder
// attached and mine the event stream — how long discovery takes to
// converge, how often matches are broken by better candidates, and how the
// per-pair MCS rates are distributed. The same stream can be written as
// JSON Lines with mmv2v.NewTraceJSONL for external tools
// (see `mmv2v-sim -trace events.jsonl`).
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"sort"

	"mmv2v"
)

func main() {
	ring := mmv2v.NewTraceRing(200000)
	cfg := mmv2v.DefaultScenario(15, 42)
	cfg.Trace = mmv2v.NewTraceRecorder(ring)

	res, err := mmv2v.Run(cfg, mmv2v.MMV2V(mmv2v.DefaultParams()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: OCR=%.3f ATP=%.3f over %d vehicles\n\n",
		res.Summary.MeanOCR, res.Summary.MeanATP, res.Summary.Vehicles)

	events := ring.Events()
	counts := ring.CountByKind()
	fmt.Println("event volume over 1 s:")
	for _, k := range []mmv2v.TraceKind{
		mmv2v.TraceDiscovery, mmv2v.TraceMatch, mmv2v.TraceBreakup,
		mmv2v.TraceStreamStart, mmv2v.TraceRate, mmv2v.TraceCompletion,
	} {
		fmt.Printf("  %-13s %6d\n", k, counts[k])
	}

	// Discovery convergence: new (vehicle, peer) identifications per frame.
	perFrame := map[int]int{}
	for _, e := range events {
		if e.Kind == mmv2v.TraceDiscovery {
			perFrame[e.Frame]++
		}
	}
	fmt.Println("\nnew discoveries per frame (working set converges, then only")
	fmt.Println("re-entries from churn):")
	for _, f := range []int{0, 1, 2, 3, 5, 10, 20, 40} {
		fmt.Printf("  frame %-3d %4d\n", f, perFrame[f])
	}

	// Matching churn: breakups per match (the DCM update rule in action).
	if counts[mmv2v.TraceMatch] > 0 {
		fmt.Printf("\nmatch churn: %d matches, %d break-ups (%.2f break-ups/match)\n",
			counts[mmv2v.TraceMatch], counts[mmv2v.TraceBreakup],
			float64(counts[mmv2v.TraceBreakup])/float64(counts[mmv2v.TraceMatch]))
	}

	// Rate distribution over all repricing events.
	var rates []float64
	for _, e := range events {
		if e.Kind == mmv2v.TraceRate && e.Value > 0 {
			rates = append(rates, e.Value)
		}
	}
	if len(rates) > 0 {
		sort.Float64s(rates)
		q := func(p float64) float64 { return rates[int(p*float64(len(rates)-1))] }
		fmt.Printf("\nlink rate distribution at repricing (Gb/s): p10=%.2f p50=%.2f p90=%.2f\n",
			q(0.1)/1e9, q(0.5)/1e9, q(0.9)/1e9)
	}
}
