// Densitysweep: a compact version of the paper's Fig. 9(a) — OHM completion
// ratio versus traffic density for mmV2V, the two baselines and the
// centralized greedy oracle, rendered as an ASCII chart.
//
//	go run ./examples/densitysweep
package main

import (
	"fmt"
	"log"
	"strings"

	"mmv2v"
)

func main() {
	densities := []float64{10, 15, 20, 25, 30}
	protocols := []struct {
		name    string
		factory mmv2v.Factory
	}{
		{"mmV2V", mmv2v.MMV2V(mmv2v.DefaultParams())},
		{"ROP", mmv2v.ROP(mmv2v.DefaultROPParams())},
		{"802.11ad", mmv2v.AD(mmv2v.DefaultADParams())},
		{"oracle", mmv2v.Oracle(mmv2v.DefaultParams())},
	}

	fmt.Println("OCR vs traffic density (vehicles/lane/km) — cf. paper Fig. 9(a)")
	ocr := make(map[string][]float64, len(protocols))
	for _, d := range densities {
		cfg := mmv2v.DefaultScenario(d, 1)
		for _, p := range protocols {
			res, err := mmv2v.Run(cfg, p.factory)
			if err != nil {
				log.Fatal(err)
			}
			ocr[p.name] = append(ocr[p.name], res.Summary.MeanOCR)
		}
		fmt.Printf("  density %2.0f done\n", d)
	}

	fmt.Printf("\n%-10s", "density")
	for _, d := range densities {
		fmt.Printf(" %6.0f", d)
	}
	fmt.Println()
	for _, p := range protocols {
		fmt.Printf("%-10s", p.name)
		for _, v := range ocr[p.name] {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}

	fmt.Println("\nOCR (each column one density; # = mmV2V, r = ROP, a = 802.11ad):")
	for level := 10; level >= 1; level-- {
		y := float64(level) / 10
		row := make([]string, len(densities))
		for i := range densities {
			cell := " "
			if ocr["802.11ad"][i] >= y {
				cell = "a"
			}
			if ocr["ROP"][i] >= y {
				cell = "r"
			}
			if ocr["mmV2V"][i] >= y {
				cell = "#"
			}
			row[i] = cell
		}
		fmt.Printf("%4.1f | %s\n", y, strings.Join(row, "     "))
	}
	fmt.Printf("     +-%s\n      ", strings.Repeat("------", len(densities)))
	for _, d := range densities {
		fmt.Printf("%-6.0f", d)
	}
	fmt.Println("\n\nmmV2V holds its completion ratio as density grows; the random and")
	fmt.Println("PBSS-based schemes degrade much faster — the paper's central claim.")
}
