package mmv2v

import "mmv2v/internal/experiments"

// The Reproduce* functions regenerate the paper's evaluation (Sec. IV).
// Each takes an options struct preset to the paper's configuration and
// returns a typed result that can print itself as a text table whose
// rows/series mirror the corresponding figure.

// Fig6Options parameterize the Fig. 6 study (CNS constant C).
type Fig6Options = experiments.Fig6Options

// Fig6Result holds the Fig. 6 capacity-vs-slots curves.
type Fig6Result = experiments.Fig6Result

// DefaultFig6Options returns the paper's Fig. 6 configuration.
func DefaultFig6Options() Fig6Options { return experiments.DefaultFig6Options() }

// ReproduceFig6 regenerates Fig. 6: capacity per vehicle vs negotiation
// slots for C = 1..12 under four traffic scenarios.
func ReproduceFig6(opts Fig6Options) (*Fig6Result, error) { return experiments.Fig6(opts) }

// Fig7Options parameterize the Fig. 7 study (discovery rounds K).
type Fig7Options = experiments.Fig7Options

// Fig7Result holds the Fig. 7 OCR/ATP CDFs.
type Fig7Result = experiments.Fig7Result

// DefaultFig7Options returns the paper's Fig. 7 configuration.
func DefaultFig7Options() Fig7Options { return experiments.DefaultFig7Options() }

// ReproduceFig7 regenerates Fig. 7: CDFs of OCR and ATP for K = 1..4.
func ReproduceFig7(opts Fig7Options) (*Fig7Result, error) { return experiments.Fig7(opts) }

// Fig8Options parameterize the Fig. 8 study (negotiation slots M).
type Fig8Options = experiments.Fig8Options

// Fig8Result holds the Fig. 8 OCR/ATP CDFs.
type Fig8Result = experiments.Fig8Result

// DefaultFig8Options returns the paper's Fig. 8 configuration.
func DefaultFig8Options() Fig8Options { return experiments.DefaultFig8Options() }

// ReproduceFig8 regenerates Fig. 8: CDFs of OCR and ATP for M = 20..80.
func ReproduceFig8(opts Fig8Options) (*Fig8Result, error) { return experiments.Fig8(opts) }

// Fig9Options parameterize the Fig. 9 comparison (protocols vs density).
type Fig9Options = experiments.Fig9Options

// Fig9Result holds the Fig. 9 OCR/ATP/DTP tables.
type Fig9Result = experiments.Fig9Result

// DefaultFig9Options returns the paper's Fig. 9 configuration.
func DefaultFig9Options() Fig9Options { return experiments.DefaultFig9Options() }

// ReproduceFig9 regenerates Fig. 9: OCR, ATP and DTP vs traffic density for
// mmV2V, ROP and IEEE 802.11ad.
func ReproduceFig9(opts Fig9Options) (*Fig9Result, error) { return experiments.Fig9(opts) }

// Theorem2Options parameterize the Theorem 2 validation.
type Theorem2Options = experiments.Theorem2Options

// Theorem2Result holds the analytic-vs-empirical discovery ratios.
type Theorem2Result = experiments.Theorem2Result

// DefaultTheorem2Options returns the standard Theorem 2 validation setting.
func DefaultTheorem2Options() Theorem2Options { return experiments.DefaultTheorem2Options() }

// ValidateTheorem2 checks the identified-neighbor ratio 1 − [p²+(1−p)²]^K
// against Monte Carlo role coins and (optionally) a full simulation frame.
func ValidateTheorem2(opts Theorem2Options) (*Theorem2Result, error) {
	return experiments.Theorem2(opts)
}

// TrucksOptions parameterize the heavy-vehicle blockage extension study.
type TrucksOptions = experiments.TrucksOptions

// TrucksResult holds the truck-share sweep.
type TrucksResult = experiments.TrucksResult

// DefaultTrucksOptions returns the standard truck-share sweep.
func DefaultTrucksOptions() TrucksOptions { return experiments.DefaultTrucksOptions() }

// RunTrucks measures OHM performance as a growing share of the vehicles are
// trucks (16 m bodies that dominate mmWave blockage) — an extension beyond
// the paper's cars-only evaluation.
func RunTrucks(opts TrucksOptions) (*TrucksResult, error) {
	return experiments.Trucks(opts)
}

// WarmupOptions parameterize the cold-start vs warm-window study.
type WarmupOptions = experiments.WarmupOptions

// WarmupResult holds per-window metrics.
type WarmupResult = experiments.WarmupResult

// DefaultWarmupOptions returns the standard cold-start study setting.
func DefaultWarmupOptions() WarmupOptions { return experiments.DefaultWarmupOptions() }

// RunWarmup measures how much consecutive windows benefit from the
// discovery state accumulated in earlier windows.
func RunWarmup(opts WarmupOptions) (*WarmupResult, error) {
	return experiments.Warmup(opts)
}

// AblationOptions parameterize the design-choice ablation study.
type AblationOptions = experiments.AblationOptions

// AblationResult holds the ablation rows.
type AblationResult = experiments.AblationResult

// DefaultAblationOptions returns the standard ablation setting.
func DefaultAblationOptions() AblationOptions { return experiments.DefaultAblationOptions() }

// RunAblation compares mmV2V against the centralized greedy oracle and
// against variants disabling one design choice at a time.
func RunAblation(opts AblationOptions) (*AblationResult, error) {
	return experiments.Ablation(opts)
}

// FaultsOptions parameterize the graceful-degradation fault sweep.
type FaultsOptions = experiments.FaultsOptions

// FaultsResult holds the fault-sweep table.
type FaultsResult = experiments.FaultsResult

// DefaultFaultsOptions returns the standard sweep: the 20 vpl scenario
// under the default stress profile at intensities 0, ¼, ½ and 1.
func DefaultFaultsOptions() FaultsOptions { return experiments.DefaultFaultsOptions() }

// RunFaultSweep measures how mmV2V, ROP and IEEE 802.11ad degrade as
// deterministic channel/radio faults intensify (our addition beyond the
// paper; see internal/faults for the fault model).
func RunFaultSweep(opts FaultsOptions) (*FaultsResult, error) {
	return experiments.FaultSweep(opts)
}

// CityOptions parameterize the city-grid protocol comparison: the OHM
// schemes evaluated on a Manhattan road-graph network instead of the
// paper's straight road (our extension; see GridConfig for the topology).
type CityOptions = experiments.CityOptions

// CityResult holds the city-grid comparison.
type CityResult = experiments.CityResult

// DefaultCityOptions returns the standard downtown setting: a 3×3
// intersection grid with 200 m blocks and 180 vehicles.
func DefaultCityOptions() CityOptions { return experiments.DefaultCityOptions() }

// ReproduceCity runs the OHM protocol comparison on a city road-graph
// network — intersections, cross-street blockage and turning traffic
// replace the highway platooning of the straight-road scenarios.
func ReproduceCity(opts CityOptions) (*CityResult, error) {
	return experiments.City(opts)
}
